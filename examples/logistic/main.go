// Logistic inference on encrypted data — the MLaaS scenario that
// motivates HEAX (Section 1): the server scores encrypted feature vectors
// against a plaintext model without ever decrypting them.
//
// Layout: feature-major batching. Slot s of ciphertext j holds feature j
// of sample s, so one ciphertext batch scores n/2 samples at once and the
// dot product needs no rotations. The sigmoid is the standard degree-3
// least-squares approximation σ(t) ≈ 0.5 + 0.197·t − 0.004·t³, evaluated
// as 0.5 + t·(0.197 − 0.004·t²) to spend only two multiplicative levels
// after the dot product.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"heax"
)

const (
	features = 8
	samples  = 16 // shown; the batch actually scores n/2 samples
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("logistic: ")

	// Set-B: k = 4 gives the three rescaling levels this circuit needs.
	params, err := heax.NewParams(heax.SetB)
	if err != nil {
		log.Fatal(err)
	}
	kg := heax.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	evk := &heax.EvaluationKeySet{Relin: kg.GenRelinearizationKey(sk)}
	enc := heax.NewEncoder(params)
	encryptor := heax.NewEncryptor(params, pk, 2)
	decryptor := heax.NewDecryptor(params, sk)
	eval := heax.NewEvaluator(params, evk)

	// A fixed model and a random batch.
	rng := rand.New(rand.NewSource(3))
	w := make([]float64, features)
	for j := range w {
		w[j] = rng.Float64()*2 - 1
	}
	bias := 0.25
	x := make([][]float64, features) // x[j][s]: feature j of sample s
	for j := range x {
		x[j] = make([]float64, samples)
		for s := range x[j] {
			x[j][s] = rng.Float64()*2 - 1
		}
	}

	level := params.MaxLevel()
	scale := params.DefaultScale()

	// Client: encrypt each feature column.
	cts := make([]*heax.Ciphertext, features)
	for j := range cts {
		pt, err := enc.EncodeReal(x[j], level, scale)
		if err != nil {
			log.Fatal(err)
		}
		cts[j], err = encryptor.Encrypt(pt)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Server: t = Σ_j w_j ⊙ ct_j + b (one plaintext mult level).
	var acc *heax.Ciphertext
	for j := range cts {
		wj := constVec(w[j], samples)
		ptW, err := enc.EncodeReal(wj, level, scale)
		if err != nil {
			log.Fatal(err)
		}
		term, err := eval.MulPlain(cts[j], ptW)
		if err != nil {
			log.Fatal(err)
		}
		if acc == nil {
			acc = term
		} else if acc, err = eval.Add(acc, term); err != nil {
			log.Fatal(err)
		}
	}
	// Rescale the Δ²-scaled accumulator first, then add the bias encoded
	// at exactly the rescaled scale so the addition is exact.
	t, err := eval.Rescale(acc)
	if err != nil {
		log.Fatal(err)
	}
	ptBias, err := enc.EncodeReal(constVec(bias, samples), t.Level, t.Scale)
	if err != nil {
		log.Fatal(err)
	}
	if t, err = eval.AddPlain(t, ptBias); err != nil {
		log.Fatal(err)
	}

	// Cubic term as ((c·t)·t²): each factor is rescaled so the final
	// result lands at a small scale that fits the level-0 modulus — the
	// scale management a CKKS application must do by hand.
	tt, err := eval.MulRelin(t, t) // t², scale s_t²
	if err != nil {
		log.Fatal(err)
	}
	if tt, err = eval.Rescale(tt); err != nil { // level 1
		log.Fatal(err)
	}
	ptC3, err := enc.EncodeReal(constVec(-0.004, samples), t.Level, scale)
	if err != nil {
		log.Fatal(err)
	}
	u, err := eval.MulPlain(t, ptC3) // -0.004·t
	if err != nil {
		log.Fatal(err)
	}
	if u, err = eval.Rescale(u); err != nil { // level 1
		log.Fatal(err)
	}
	y3, err := eval.MulRelin(u, tt) // -0.004·t³
	if err != nil {
		log.Fatal(err)
	}
	if y3, err = eval.Rescale(y3); err != nil { // level 0, small scale
		log.Fatal(err)
	}

	// Linear term at a scale engineered to match y3 exactly after one
	// rescale: s_a = s_u·s_tt/s_t makes (s_t·s_a)/q1 == (s_u·s_tt)/q1.
	tL1, err := eval.DropLevel(t, 1)
	if err != nil {
		log.Fatal(err)
	}
	ptA, err := enc.EncodeReal(constVec(0.197, samples), tL1.Level, u.Scale*tt.Scale/t.Scale)
	if err != nil {
		log.Fatal(err)
	}
	v, err := eval.MulPlain(tL1, ptA) // 0.197·t
	if err != nil {
		log.Fatal(err)
	}
	if v, err = eval.Rescale(v); err != nil { // level 0, same scale as y3
		log.Fatal(err)
	}

	y, err := eval.Add(y3, v)
	if err != nil {
		log.Fatal(err)
	}
	ptHalf, err := enc.EncodeReal(constVec(0.5, samples), y.Level, y.Scale)
	if err != nil {
		log.Fatal(err)
	}
	if y, err = eval.AddPlain(y, ptHalf); err != nil {
		log.Fatal(err)
	}

	// Client: decrypt and compare with the cleartext pipeline.
	ptOut, err := decryptor.Decrypt(y)
	if err != nil {
		log.Fatal(err)
	}
	got := enc.Decode(ptOut)
	fmt.Println("sample   encrypted-score   cleartext-score   |diff|")
	worst := 0.0
	for s := 0; s < samples; s++ {
		tPlain := bias
		for j := 0; j < features; j++ {
			tPlain += w[j] * x[j][s]
		}
		want := 0.5 + 0.197*tPlain - 0.004*tPlain*tPlain*tPlain
		g := real(got[s])
		d := math.Abs(g - want)
		if d > worst {
			worst = d
		}
		fmt.Printf("%4d     %12.6f      %12.6f      %.2e\n", s, g, want, d)
	}
	fmt.Printf("max error over batch: %.2e (scores %d samples per batch)\n", worst, params.Slots())
}

func constVec(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
