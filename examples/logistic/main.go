// Logistic inference on encrypted data — the MLaaS scenario that
// motivates HEAX (Section 1): the server scores encrypted feature vectors
// against a plaintext model without ever decrypting them.
//
// Layout: feature-major batching. Slot s of ciphertext j holds feature j
// of sample s, so one ciphertext batch scores n/2 samples at once and the
// dot product needs no rotations. The sigmoid is the standard degree-3
// least-squares approximation σ(t) ≈ 0.5 + 0.197·t − 0.004·t³.
//
// The whole pipeline is declared once as a heax.Circuit — no Rescale, no
// Relinearize, no level or scale bookkeeping anywhere below: Compile
// infers the level/scale assignment, inserts the maintenance operations
// and bakes the model weights in as compile-time plaintexts, and the
// resulting Plan then scores every incoming batch (compile once, run
// many — the paper's fixed-dataflow host model).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"heax"
)

const (
	features = 8
	samples  = 16 // shown; the batch actually scores n/2 samples
	batches  = 3  // encrypted batches streamed through the one plan
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("logistic: ")

	// Set-B: enough modulus for the sigmoid's multiplicative depth.
	params, err := heax.NewParams(heax.SetB)
	if err != nil {
		log.Fatal(err)
	}
	kg := heax.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	evk := &heax.EvaluationKeySet{Relin: kg.GenRelinearizationKey(sk)}
	enc := heax.NewEncoder(params)
	encryptor := heax.NewEncryptor(params, pk, 2)
	decryptor := heax.NewDecryptor(params, sk)

	// A fixed model.
	rng := rand.New(rand.NewSource(3))
	w := make([]float64, features)
	for j := range w {
		w[j] = rng.Float64()*2 - 1
	}
	bias := 0.25

	// Declare the dataflow: t = Σ_j w_j·x_j + b, then the sigmoid
	// approximation 0.5 + t·(0.197 − 0.004·t²) written directly — the
	// compiler decides where every rescale goes.
	c := heax.NewCircuit()
	var t heax.Node
	for j := 0; j < features; j++ {
		term := c.MulConst(c.Input(fmt.Sprintf("x%d", j)), w[j])
		if j == 0 {
			t = term
		} else {
			t = c.Add(t, term)
		}
	}
	t = c.AddConst(t, bias)
	cubic := c.MulRelin(c.MulConst(t, -0.004), c.MulRelin(t, t))
	c.Output("score", c.AddConst(c.Add(cubic, c.MulConst(t, 0.197)), 0.5))

	plan, err := c.Compile(params, evk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d steps for %d inputs (levels and scales inferred)\n",
		plan.NumSteps(), len(plan.InputNames()))

	// Client: encrypt several feature batches; server: stream them all
	// through the one compiled plan.
	x := make([][][]float64, batches) // x[b][j][s]: feature j of sample s
	ins := make([]map[string]*heax.Ciphertext, batches)
	for b := range ins {
		x[b] = make([][]float64, features)
		ins[b] = make(map[string]*heax.Ciphertext, features)
		for j := 0; j < features; j++ {
			col := make([]float64, samples)
			for s := range col {
				col[s] = rng.Float64()*2 - 1
			}
			x[b][j] = col
			pt, err := enc.EncodeReal(col, params.MaxLevel(), params.DefaultScale())
			if err != nil {
				log.Fatal(err)
			}
			if ins[b][fmt.Sprintf("x%d", j)], err = encryptor.Encrypt(pt); err != nil {
				log.Fatal(err)
			}
		}
	}
	outs, err := plan.RunBatch(ins)
	if err != nil {
		log.Fatal(err)
	}

	// Client: decrypt and compare with the cleartext pipeline.
	fmt.Println("batch sample   encrypted-score   cleartext-score   |diff|")
	worst := 0.0
	for b, out := range outs {
		ptOut, err := decryptor.Decrypt(out["score"])
		if err != nil {
			log.Fatal(err)
		}
		got := enc.Decode(ptOut)
		for s := 0; s < samples; s++ {
			tPlain := bias
			for j := 0; j < features; j++ {
				tPlain += w[j] * x[b][j][s]
			}
			want := 0.5 + 0.197*tPlain - 0.004*tPlain*tPlain*tPlain
			g := real(got[s])
			d := math.Abs(g - want)
			if d > worst {
				worst = d
			}
			if b == 0 {
				fmt.Printf("%5d %6d     %12.6f      %12.6f      %.2e\n", b, s, g, want, d)
			}
		}
	}
	fmt.Printf("max error over %d batches: %.2e (scores %d samples per batch)\n",
		batches, worst, params.Slots())
}
