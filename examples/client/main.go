// Encrypted matrix-vector multiplication served over the wire: the
// client half of the heax-serve story. The client fetches the daemon's
// parameter set, generates its own keys, registers as a tenant by
// uploading the serialized evaluation keys, ships the matvec circuit
// DAG for server-side compilation, streams three encrypted batches
// through the cached plan, and finally diffs the decrypted results
// against an in-process Plan.RunBatch oracle — the wire results must
// be bit-identical, because both sides run the same deterministic
// pipeline on the same key material.
//
// Run against a daemon:
//
//	heax-serve -params A &
//	go run ./examples/client -addr localhost:7609
//
// With no -addr, the demo starts an in-process server on a loopback
// port so it is self-contained.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"

	"heax"
	"heax/serve"
)

const dim = 8

func main() {
	log.SetFlags(0)
	log.SetPrefix("client: ")
	addr := flag.String("addr", "", "heax-serve address (empty: start an in-process server)")
	skipRegister := flag.Bool("skip-register", false, "do not upload evaluation keys (tenant \"demo\" is already registered, e.g. restored from a -state-dir after a restart)")
	keepTenant := flag.Bool("keep-tenant", false, "leave tenant \"demo\" registered on exit (so a daemon with -state-dir can restore it later)")
	flag.Parse()

	target := *addr
	if target == "" {
		params, err := heax.NewParams(heax.SetA)
		if err != nil {
			log.Fatal(err)
		}
		srv, err := serve.NewServer(params)
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve(ln)
		defer srv.Close()
		target = ln.Addr().String()
		fmt.Printf("no -addr given: in-process heax-serve on %s (Set-A)\n", target)
	}

	cl, err := serve.Dial(target)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	params := cl.Params()
	fmt.Printf("server parameters: LogN=%d, %d primes, %d slots\n", params.LogN, params.K(), params.Slots())

	// Client-side key material; only evaluation keys leave the machine.
	kg := heax.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	steps := make([]int, 0, dim-1)
	for d := 1; d < dim; d++ {
		steps = append(steps, d)
	}
	evk := heax.GenEvaluationKeys(kg, sk, steps, false)
	enc := heax.NewEncoder(params)
	encryptor := heax.NewEncryptor(params, pk, 2)
	decryptor := heax.NewDecryptor(params, sk)

	// All key material is derived from fixed seeds, so a client started
	// with -skip-register regenerates byte-identical keys to the ones a
	// previous invocation uploaded — which is what lets a daemon restart
	// with -state-dir serve this client with no re-registration at all.
	if *skipRegister {
		fmt.Println("skipping registration: tenant \"demo\" must already be live (e.g. restored from durable state)")
	} else {
		if err := cl.Register("demo", evk); err != nil {
			log.Fatal(err)
		}
		fmt.Println("registered tenant \"demo\" (uploaded relinearization + 7 rotation keys)")
	}

	// The matvec circuit by the diagonal method (see examples/matvec).
	rng := rand.New(rand.NewSource(4))
	m := make([][]float64, dim)
	for i := range m {
		m[i] = make([]float64, dim)
		for j := range m[i] {
			m[i][j] = rng.Float64()*2 - 1
		}
	}
	c := heax.NewCircuit()
	in := c.Input("x")
	var acc heax.Node
	for d := 0; d < dim; d++ {
		diag := make([]float64, dim)
		for i := 0; i < dim; i++ {
			diag[i] = m[i][(i+d)%dim]
		}
		term := c.MulPlain(c.Rotate(in, d), diag)
		if d == 0 {
			acc = term
		} else {
			acc = c.Add(acc, term)
		}
	}
	c.Output("y", acc)

	info, err := cl.Compile("demo", c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled server-side: plan %s… (%d steps, cache hit: %v)\n", info.ID.String()[:12], info.Steps, info.Cached)

	// Three input batches: encrypt [x | x | 0...] so rotations wrap.
	batches := make([]map[string]*heax.Ciphertext, 3)
	vecs := make([][]float64, 3)
	for b := range batches {
		x := make([]float64, dim)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		vecs[b] = x
		rep := make([]float64, 2*dim)
		copy(rep, x)
		copy(rep[dim:], x)
		pt, err := enc.EncodeReal(rep, params.MaxLevel(), params.DefaultScale())
		if err != nil {
			log.Fatal(err)
		}
		ct, err := encryptor.Encrypt(pt)
		if err != nil {
			log.Fatal(err)
		}
		batches[b] = map[string]*heax.Ciphertext{"x": ct}
	}

	got, err := cl.Run("demo", info.ID, batches)
	if err != nil {
		log.Fatal(err)
	}

	// In-process oracle: same circuit, same keys, no network.
	oracle, err := c.Compile(params, evk)
	if err != nil {
		log.Fatal(err)
	}
	want, err := oracle.RunBatch(batches)
	if err != nil {
		log.Fatal(err)
	}

	identical := true
	worst := 0.0
	for b := range batches {
		if !ctEqual(got[b]["y"], want[b]["y"]) {
			identical = false
		}
		pt, err := decryptor.Decrypt(got[b]["y"])
		if err != nil {
			log.Fatal(err)
		}
		dec := enc.Decode(pt)
		for i := 0; i < dim; i++ {
			cleartext := 0.0
			for j := 0; j < dim; j++ {
				cleartext += m[i][j] * vecs[b][j]
			}
			if d := math.Abs(real(dec[i]) - cleartext); d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("streamed %d batches over the wire; max error vs cleartext: %.2e\n", len(batches), worst)
	fmt.Printf("bit-identical to the in-process Plan.RunBatch oracle: %v\n", identical)
	if !identical {
		log.Fatal("wire results diverged from the in-process oracle")
	}
	if *keepTenant {
		fmt.Println("tenant left registered; done")
		return
	}
	if err := cl.Unregister("demo"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tenant evicted; done")
}

func ctEqual(a, b *heax.Ciphertext) bool {
	if a == nil || b == nil || a.Scale != b.Scale || a.Level != b.Level || len(a.Polys) != len(b.Polys) {
		return false
	}
	for i := range a.Polys {
		if !a.Polys[i].Equal(b.Polys[i]) {
			return false
		}
	}
	return true
}
