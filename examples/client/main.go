// Encrypted matrix-vector multiplication served over the wire: the
// client half of the heax-serve story. The client fetches the daemon's
// parameter set, generates its own keys, registers as a tenant by
// uploading the serialized evaluation keys, ships the matvec circuit
// DAG for server-side compilation, streams three encrypted batches
// through the cached plan, and finally diffs the decrypted results
// against an in-process Plan.RunBatch oracle — the wire results must
// be bit-identical, because both sides run the same deterministic
// pipeline on the same key material.
//
// Run against a daemon:
//
//	heax-serve -params A &
//	go run ./examples/client -addr localhost:7609
//
// With no -addr, the demo starts an in-process server on a loopback
// port so it is self-contained — including a live /metrics endpoint,
// which the demo scrapes after the batches to print the server-side
// run-latency histogram for the tenant (client-visible observability).
// Against a remote daemon started with -metrics-addr, pass the same
// endpoint via -metrics to get the same summary.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"heax"
	"heax/serve"
)

const dim = 8

func main() {
	log.SetFlags(0)
	log.SetPrefix("client: ")
	addr := flag.String("addr", "", "heax-serve address (empty: start an in-process server)")
	skipRegister := flag.Bool("skip-register", false, "do not upload evaluation keys (tenant \"demo\" is already registered, e.g. restored from a -state-dir after a restart)")
	keepTenant := flag.Bool("keep-tenant", false, "leave tenant \"demo\" registered on exit (so a daemon with -state-dir can restore it later)")
	metricsURL := flag.String("metrics", "", "server /metrics URL to scrape after the batches (e.g. http://localhost:9090/metrics); automatic for the in-process server")
	flag.Parse()

	target := *addr
	if target == "" {
		params, err := heax.NewParams(heax.SetA)
		if err != nil {
			log.Fatal(err)
		}
		srv, err := serve.NewServer(params)
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve(ln)
		defer srv.Close()
		target = ln.Addr().String()
		fmt.Printf("no -addr given: in-process heax-serve on %s (Set-A)\n", target)
		if *metricsURL == "" {
			// A real loopback /metrics endpoint, so the scrape below is
			// the same HTTP round trip a Prometheus agent would make.
			mln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			mux := http.NewServeMux()
			mux.Handle("/metrics", srv.MetricsRegistry().Handler())
			go http.Serve(mln, mux)
			defer mln.Close()
			*metricsURL = fmt.Sprintf("http://%s/metrics", mln.Addr())
		}
	}

	cl, err := serve.Dial(target)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	params := cl.Params()
	fmt.Printf("server parameters: LogN=%d, %d primes, %d slots\n", params.LogN, params.K(), params.Slots())

	// Client-side key material; only evaluation keys leave the machine.
	kg := heax.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	steps := make([]int, 0, dim-1)
	for d := 1; d < dim; d++ {
		steps = append(steps, d)
	}
	evk := heax.GenEvaluationKeys(kg, sk, steps, false)
	enc := heax.NewEncoder(params)
	encryptor := heax.NewEncryptor(params, pk, 2)
	decryptor := heax.NewDecryptor(params, sk)

	// All key material is derived from fixed seeds, so a client started
	// with -skip-register regenerates byte-identical keys to the ones a
	// previous invocation uploaded — which is what lets a daemon restart
	// with -state-dir serve this client with no re-registration at all.
	if *skipRegister {
		fmt.Println("skipping registration: tenant \"demo\" must already be live (e.g. restored from durable state)")
	} else {
		if err := cl.Register("demo", evk); err != nil {
			log.Fatal(err)
		}
		fmt.Println("registered tenant \"demo\" (uploaded relinearization + 7 rotation keys)")
	}

	// The matvec circuit by the diagonal method (see examples/matvec).
	rng := rand.New(rand.NewSource(4))
	m := make([][]float64, dim)
	for i := range m {
		m[i] = make([]float64, dim)
		for j := range m[i] {
			m[i][j] = rng.Float64()*2 - 1
		}
	}
	c := heax.NewCircuit()
	in := c.Input("x")
	var acc heax.Node
	for d := 0; d < dim; d++ {
		diag := make([]float64, dim)
		for i := 0; i < dim; i++ {
			diag[i] = m[i][(i+d)%dim]
		}
		term := c.MulPlain(c.Rotate(in, d), diag)
		if d == 0 {
			acc = term
		} else {
			acc = c.Add(acc, term)
		}
	}
	c.Output("y", acc)

	info, err := cl.Compile("demo", c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled server-side: plan %s… (%d steps, cache hit: %v)\n", info.ID.String()[:12], info.Steps, info.Cached)

	// Three input batches: encrypt [x | x | 0...] so rotations wrap.
	batches := make([]map[string]*heax.Ciphertext, 3)
	vecs := make([][]float64, 3)
	for b := range batches {
		x := make([]float64, dim)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		vecs[b] = x
		rep := make([]float64, 2*dim)
		copy(rep, x)
		copy(rep[dim:], x)
		pt, err := enc.EncodeReal(rep, params.MaxLevel(), params.DefaultScale())
		if err != nil {
			log.Fatal(err)
		}
		ct, err := encryptor.Encrypt(pt)
		if err != nil {
			log.Fatal(err)
		}
		batches[b] = map[string]*heax.Ciphertext{"x": ct}
	}

	got, err := cl.Run("demo", info.ID, batches)
	if err != nil {
		log.Fatal(err)
	}

	// In-process oracle: same circuit, same keys, no network.
	oracle, err := c.Compile(params, evk)
	if err != nil {
		log.Fatal(err)
	}
	want, err := oracle.RunBatch(batches)
	if err != nil {
		log.Fatal(err)
	}

	identical := true
	worst := 0.0
	for b := range batches {
		if !ctEqual(got[b]["y"], want[b]["y"]) {
			identical = false
		}
		pt, err := decryptor.Decrypt(got[b]["y"])
		if err != nil {
			log.Fatal(err)
		}
		dec := enc.Decode(pt)
		for i := 0; i < dim; i++ {
			cleartext := 0.0
			for j := 0; j < dim; j++ {
				cleartext += m[i][j] * vecs[b][j]
			}
			if d := math.Abs(real(dec[i]) - cleartext); d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("streamed %d batches over the wire; max error vs cleartext: %.2e\n", len(batches), worst)
	fmt.Printf("bit-identical to the in-process Plan.RunBatch oracle: %v\n", identical)
	if !identical {
		log.Fatal("wire results diverged from the in-process oracle")
	}
	if *metricsURL != "" {
		printRunLatency(*metricsURL, "demo")
	}
	if *keepTenant {
		fmt.Println("tenant left registered; done")
		return
	}
	if err := cl.Unregister("demo"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tenant evicted; done")
}

// printRunLatency scrapes the server's Prometheus exposition and
// prints the tenant's heax_serve_run_seconds histogram: run count,
// mean latency, and the populated buckets of the latency distribution
// — exactly what a fleet dashboard would chart, read straight off the
// wire.
func printRunLatency(url, tenant string) {
	resp, err := http.Get(url)
	if err != nil {
		log.Printf("scraping %s: %v", url, err)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Printf("scraping %s: %v", url, err)
		return
	}
	sel := fmt.Sprintf("tenant=%q", tenant)
	var count, sum float64
	type bucket struct{ le, cum float64 }
	var buckets []bucket
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "heax_serve_run_seconds") || !strings.Contains(line, sel) {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			continue
		}
		switch {
		case strings.HasPrefix(name, "heax_serve_run_seconds_count"):
			count = v
		case strings.HasPrefix(name, "heax_serve_run_seconds_sum"):
			sum = v
		case strings.HasPrefix(name, "heax_serve_run_seconds_bucket"):
			if i := strings.Index(name, `le="`); i >= 0 {
				leStr := name[i+4:]
				leStr = leStr[:strings.IndexByte(leStr, '"')]
				le := math.Inf(1)
				if leStr != "+Inf" {
					le, _ = strconv.ParseFloat(leStr, 64)
				}
				buckets = append(buckets, bucket{le: le, cum: v})
			}
		}
	}
	if count == 0 {
		fmt.Printf("no %s run-latency samples for tenant %q yet\n", url, tenant)
		return
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	fmt.Printf("server run-latency for tenant %q (scraped from %s):\n", tenant, url)
	fmt.Printf("  %d runs, mean %.2fms\n", int(count), sum/count*1e3)
	prev := 0.0
	for _, b := range buckets {
		if n := b.cum - prev; n > 0 {
			if math.IsInf(b.le, 1) {
				fmt.Printf("    > last bucket: %d\n", int(n))
			} else {
				fmt.Printf("    <= %gms: %d\n", b.le*1e3, int(n))
			}
		}
		prev = b.cum
	}
}

func ctEqual(a, b *heax.Ciphertext) bool {
	if a == nil || b == nil || a.Scale != b.Scale || a.Level != b.Level || len(a.Polys) != len(b.Polys) {
		return false
	}
	for i := range a.Polys {
		if !a.Polys[i].Equal(b.Polys[i]) {
			return false
		}
	}
	return true
}
