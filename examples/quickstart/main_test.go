package main

import (
	"fmt"
	"os"
)

// Example pins the quickstart's output: all randomness is seeded and the
// arithmetic is deterministic, so any drift in the public API surface or
// in the numerics shows up as a golden-output diff under go test ./...
func Example() {
	if err := run(os.Stdout); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// parameters: n=4096, k=2, log(qp)+1=109, scale=2^30
	// x + y    :   3.5000  -1.7500   2.2500   4.5000   (max err 3.46e-06)
	// after rescale: level 0, scale 2^24.0
	// x * y    :   2.9999  -0.4999  -3.2500   2.0000   (max err 9.81e-05)
	// rot(x,1) :  -2.0000   3.2500   0.5000   0.0000   (max err 4.21e-05)
}
