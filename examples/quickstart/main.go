// Quickstart: the full CKKS round trip this library accelerates — encode,
// encrypt, add, multiply, relinearize, rescale, rotate, decrypt — on the
// paper's Set-A parameters (n = 2^12, 109-bit modulus), driven entirely
// through the public heax API: keys are bound to the evaluator at
// construction, not threaded through every call.
package main

import (
	"fmt"
	"io"
	"math"
	"os"

	"heax"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	params, err := heax.NewParams(heax.SetA)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "parameters: n=%d, k=%d, log(qp)+1=%d, scale=2^%d\n",
		params.N, params.K(), params.TotalModulusBits(), params.LogScale)

	kg := heax.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	evk := heax.GenEvaluationKeys(kg, sk, []int{1}, false)

	enc := heax.NewEncoder(params)
	encryptor := heax.NewEncryptor(params, pk, 2)
	decryptor := heax.NewDecryptor(params, sk)
	eval := heax.NewEvaluator(params, evk)

	// Two small real vectors in the first few of the n/2 = 2048 slots.
	x := []float64{1.5, -2.0, 3.25, 0.5}
	y := []float64{2.0, 0.25, -1.0, 4.0}
	ptX, err := enc.EncodeReal(x, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		return err
	}
	ptY, err := enc.EncodeReal(y, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		return err
	}
	ctX, err := encryptor.Encrypt(ptX)
	if err != nil {
		return err
	}
	ctY, err := encryptor.Encrypt(ptY)
	if err != nil {
		return err
	}

	// (x + y) -------------------------------------------------------------
	sum, err := eval.Add(ctX, ctY)
	if err != nil {
		return err
	}
	if err := show(w, decryptor, enc, sum, "x + y", func(i int) float64 { return x[i] + y[i] }); err != nil {
		return err
	}

	// (x * y), relinearized and rescaled ----------------------------------
	prod, err := eval.MulRelin(ctX, ctY)
	if err != nil {
		return err
	}
	if prod, err = eval.Rescale(prod); err != nil {
		return err
	}
	fmt.Fprintf(w, "after rescale: level %d, scale 2^%.1f\n", prod.Level, math.Log2(prod.Scale))
	if err := show(w, decryptor, enc, prod, "x * y", func(i int) float64 { return x[i] * y[i] }); err != nil {
		return err
	}

	// rotate(x, 1) ---------------------------------------------------------
	rot, err := eval.RotateLeft(ctX, 1)
	if err != nil {
		return err
	}
	return show(w, decryptor, enc, rot, "rot(x,1)", func(i int) float64 {
		if i+1 < len(x) {
			return x[i+1]
		}
		return 0
	})
}

func show(w io.Writer, d *heax.Decryptor, enc *heax.Encoder, ct *heax.Ciphertext, label string, want func(int) float64) error {
	pt, err := d.Decrypt(ct)
	if err != nil {
		return err
	}
	got := enc.Decode(pt)
	fmt.Fprintf(w, "%-9s:", label)
	worst := 0.0
	for i := 0; i < 4; i++ {
		fmt.Fprintf(w, " %8.4f", real(got[i]))
		if e := math.Abs(real(got[i]) - want(i)); e > worst {
			worst = e
		}
	}
	fmt.Fprintf(w, "   (max err %.2e)\n", worst)
	return nil
}
