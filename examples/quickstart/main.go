// Quickstart: the full CKKS round trip this library accelerates — encode,
// encrypt, add, multiply, relinearize, rescale, rotate, decrypt — on the
// paper's Set-A parameters (n = 2^12, 109-bit modulus).
package main

import (
	"fmt"
	"log"
	"math"

	"heax/internal/ckks"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	params, err := ckks.NewParams(ckks.SetA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parameters: n=%d, k=%d, log(qp)+1=%d, scale=2^%d\n",
		params.N, params.K(), params.TotalModulusBits(), params.LogScale)

	kg := ckks.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	gks := kg.GenGaloisKeySet(sk, []int{1}, false)

	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptor(params, pk, 2)
	decryptor := ckks.NewDecryptor(params, sk)
	eval := ckks.NewEvaluator(params)

	// Two small real vectors in the first few of the n/2 = 2048 slots.
	x := []float64{1.5, -2.0, 3.25, 0.5}
	y := []float64{2.0, 0.25, -1.0, 4.0}
	ptX, err := enc.EncodeReal(x, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		log.Fatal(err)
	}
	ptY, err := enc.EncodeReal(y, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		log.Fatal(err)
	}
	ctX, err := encryptor.Encrypt(ptX)
	if err != nil {
		log.Fatal(err)
	}
	ctY, err := encryptor.Encrypt(ptY)
	if err != nil {
		log.Fatal(err)
	}

	// (x + y) -------------------------------------------------------------
	sum, err := eval.Add(ctX, ctY)
	if err != nil {
		log.Fatal(err)
	}
	show(decode(decryptor, enc, sum), "x + y", func(i int) float64 { return x[i] + y[i] })

	// (x * y), relinearized and rescaled ----------------------------------
	prod, err := eval.MulRelin(ctX, ctY, rlk)
	if err != nil {
		log.Fatal(err)
	}
	prod, err = eval.Rescale(prod)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after rescale: level %d, scale 2^%.1f\n", prod.Level, math.Log2(prod.Scale))
	show(decode(decryptor, enc, prod), "x * y", func(i int) float64 { return x[i] * y[i] })

	// rotate(x, 1) ---------------------------------------------------------
	rot, err := eval.RotateLeft(ctX, 1, gks)
	if err != nil {
		log.Fatal(err)
	}
	show(decode(decryptor, enc, rot), "rot(x,1)", func(i int) float64 {
		if i+1 < len(x) {
			return x[i+1]
		}
		return 0
	})
}

func decode(d *ckks.Decryptor, enc *ckks.Encoder, ct *ckks.Ciphertext) []complex128 {
	pt, err := d.Decrypt(ct)
	if err != nil {
		log.Fatal(err)
	}
	return enc.Decode(pt)
}

func show(got []complex128, label string, want func(int) float64) {
	fmt.Printf("%-9s:", label)
	worst := 0.0
	for i := 0; i < 4; i++ {
		fmt.Printf(" %8.4f", real(got[i]))
		if e := math.Abs(real(got[i]) - want(i)); e > worst {
			worst = e
		}
	}
	fmt.Printf("   (max err %.2e)\n", worst)
}
