// Encrypted matrix-vector multiplication by the diagonal method — the
// rotation workload that motivates HEAX's Galois-key KeySwitch: for a
// D×D matrix M, y = Σ_d diag_d(M) ⊙ rot(x, d), one rotation and one
// plaintext multiplication per diagonal.
//
// The encrypted vector is replicated ([x | x | 0...]) so that slot
// rotations realize the cyclic index arithmetic of the method. The
// circuit below simply writes the seven rotations; the compiler groups
// them — they share the source x — into a single hoisted-decomposition
// batch, paying the expensive half of Algorithm 7 once for all of them.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"strings"

	"heax"
)

const dim = 8

func main() {
	log.SetFlags(0)
	log.SetPrefix("matvec: ")

	params, err := heax.NewParams(heax.SetA)
	if err != nil {
		log.Fatal(err)
	}
	kg := heax.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	steps := make([]int, 0, dim-1)
	for d := 1; d < dim; d++ { // step 0 needs no key
		steps = append(steps, d)
	}
	evk := heax.GenEvaluationKeys(kg, sk, steps, false)
	enc := heax.NewEncoder(params)
	encryptor := heax.NewEncryptor(params, pk, 2)
	decryptor := heax.NewDecryptor(params, sk)

	rng := rand.New(rand.NewSource(4))
	m := make([][]float64, dim)
	for i := range m {
		m[i] = make([]float64, dim)
		for j := range m[i] {
			m[i][j] = rng.Float64()*2 - 1
		}
	}
	x := make([]float64, dim)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}

	// Declare y = Σ_d diag_d ⊙ rot(x, d); the diagonals are compile-time
	// plaintexts, encoded at whatever level and scale inference picks.
	c := heax.NewCircuit()
	in := c.Input("x")
	var acc heax.Node
	for d := 0; d < dim; d++ {
		diag := make([]float64, dim)
		for i := 0; i < dim; i++ {
			diag[i] = m[i][(i+d)%dim]
		}
		term := c.MulPlain(c.Rotate(in, d), diag)
		if d == 0 {
			acc = term
		} else {
			acc = c.Add(acc, term)
		}
	}
	c.Output("y", acc)
	plan, err := c.Compile(params, evk)
	if err != nil {
		log.Fatal(err)
	}
	hoisted := strings.Contains(plan.Describe(), "RotateHoisted")
	fmt.Printf("compiled: %d steps; %d rotations hoisted into one batch: %v\n",
		plan.NumSteps(), dim-1, hoisted)

	// Encrypt [x | x | 0...] so rotations wrap within the replica.
	rep := make([]float64, 2*dim)
	copy(rep, x)
	copy(rep[dim:], x)
	pt, err := enc.EncodeReal(rep, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		log.Fatal(err)
	}
	ct, err := encryptor.Encrypt(pt)
	if err != nil {
		log.Fatal(err)
	}

	out, err := plan.Run(map[string]*heax.Ciphertext{"x": ct})
	if err != nil {
		log.Fatal(err)
	}
	ptOut, err := decryptor.Decrypt(out["y"])
	if err != nil {
		log.Fatal(err)
	}
	got := enc.Decode(ptOut)

	fmt.Println("row   encrypted y      cleartext y      |diff|")
	worst := 0.0
	for i := 0; i < dim; i++ {
		want := 0.0
		for j := 0; j < dim; j++ {
			want += m[i][j] * x[j]
		}
		g := real(got[i])
		diff := math.Abs(g - want)
		if diff > worst {
			worst = diff
		}
		fmt.Printf("%3d   %12.6f     %12.6f     %.2e\n", i, g, want, diff)
	}
	fmt.Printf("max error: %.2e (%d rotations + %d plaintext mults, depth 1)\n", worst, dim-1, dim)
}
