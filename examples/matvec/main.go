// Encrypted matrix-vector multiplication by the diagonal method — the
// rotation workload that motivates HEAX's Galois-key KeySwitch: for a
// D×D matrix M, y = Σ_d diag_d(M) ⊙ rot(x, d), one rotation and one
// plaintext multiplication per diagonal.
//
// The encrypted vector is replicated ([x | x | 0...]) so that slot
// rotations realize the cyclic index arithmetic of the method.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"heax/internal/ckks"
)

const dim = 8

func main() {
	log.SetFlags(0)
	log.SetPrefix("matvec: ")

	params, err := ckks.NewParams(ckks.SetA)
	if err != nil {
		log.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	steps := make([]int, dim)
	for d := range steps {
		steps[d] = d
	}
	gks := kg.GenGaloisKeySet(sk, steps[1:], false) // step 0 needs no key
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptor(params, pk, 2)
	decryptor := ckks.NewDecryptor(params, sk)
	eval := ckks.NewEvaluator(params)

	rng := rand.New(rand.NewSource(4))
	m := make([][]float64, dim)
	for i := range m {
		m[i] = make([]float64, dim)
		for j := range m[i] {
			m[i][j] = rng.Float64()*2 - 1
		}
	}
	x := make([]float64, dim)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}

	// Encrypt [x | x | 0...] so rotations wrap within the replica.
	rep := make([]float64, 2*dim)
	copy(rep, x)
	copy(rep[dim:], x)
	pt, err := enc.EncodeReal(rep, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		log.Fatal(err)
	}
	ct, err := encryptor.Encrypt(pt)
	if err != nil {
		log.Fatal(err)
	}

	// Server: Σ_d diag_d ⊙ rot(x, d).
	var acc *ckks.Ciphertext
	for d := 0; d < dim; d++ {
		rot := ct
		if d > 0 {
			if rot, err = eval.RotateLeft(ct, d, gks); err != nil {
				log.Fatal(err)
			}
		}
		diag := make([]float64, dim)
		for i := 0; i < dim; i++ {
			diag[i] = m[i][(i+d)%dim]
		}
		ptDiag, err := enc.EncodeReal(diag, params.MaxLevel(), params.DefaultScale())
		if err != nil {
			log.Fatal(err)
		}
		term, err := eval.MulPlain(rot, ptDiag)
		if err != nil {
			log.Fatal(err)
		}
		if acc == nil {
			acc = term
		} else if acc, err = eval.Add(acc, term); err != nil {
			log.Fatal(err)
		}
	}
	acc, err = eval.Rescale(acc)
	if err != nil {
		log.Fatal(err)
	}

	ptOut, err := decryptor.Decrypt(acc)
	if err != nil {
		log.Fatal(err)
	}
	got := enc.Decode(ptOut)

	fmt.Println("row   encrypted y      cleartext y      |diff|")
	worst := 0.0
	for i := 0; i < dim; i++ {
		want := 0.0
		for j := 0; j < dim; j++ {
			want += m[i][j] * x[j]
		}
		g := real(got[i])
		diff := math.Abs(g - want)
		if diff > worst {
			worst = diff
		}
		fmt.Printf("%3d   %12.6f     %12.6f     %.2e\n", i, g, want, diff)
	}
	fmt.Printf("max error: %.2e (%d rotations + %d plaintext mults, depth 1)\n", worst, dim-1, dim)
}
