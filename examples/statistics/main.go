// Encrypted descriptive statistics: the server computes the mean and
// variance of n/2 = 4096 encrypted samples without decrypting them, using
// slot rotations (InnerSum) for the reductions — another rotation-heavy
// workload served by HEAX's KeySwitch engine.
//
//	mean = Σx / N,  var = Σx² / N − mean²
//
// Both reductions are declared in one heax.Circuit with two named
// outputs; the compiled Plan executes them concurrently on the worker
// pool (the Σx reduction overlaps the square→Σx² chain exactly as the
// paper's Figure 7 enqueue model overlaps independent operations), and
// the same plan serves every subsequent sample batch.
//
// Everything left of the final division stays encrypted; the client
// decrypts two numbers.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"heax"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("statistics: ")

	// Set-B rather than Set-A: the slot sum Σx² ≈ slots·E[x²] needs
	// log2(slots) headroom above the squared scale, which Set-A's short
	// modulus chain cannot hold.
	params, err := heax.NewParams(heax.SetB)
	if err != nil {
		log.Fatal(err)
	}
	slots := params.Slots()

	kg := heax.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	// InnerSum over all slots needs keys for every power-of-two step.
	var steps []int
	for s := 1; s < slots; s <<= 1 {
		steps = append(steps, s)
	}
	evk := heax.GenEvaluationKeys(kg, sk, steps, false)

	enc := heax.NewEncoder(params)
	encryptor := heax.NewEncryptor(params, pk, 2)
	decryptor := heax.NewDecryptor(params, sk)

	// Declare both reductions once; Compile plans them, Run overlaps
	// them.
	c := heax.NewCircuit()
	x := c.Input("x")
	c.Output("sum", c.InnerSum(x, slots))
	c.Output("sumsq", c.InnerSum(c.MulRelin(x, x), slots))
	plan, err := c.Compile(params, evk)
	if err != nil {
		log.Fatal(err)
	}

	// A batch of samples from a known distribution.
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, slots)
	for i := range vals {
		vals[i] = rng.NormFloat64()*0.5 + 1.25
	}
	pt, err := enc.EncodeReal(vals, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		log.Fatal(err)
	}
	ct, err := encryptor.Encrypt(pt)
	if err != nil {
		log.Fatal(err)
	}

	out, err := plan.Run(map[string]*heax.Ciphertext{"x": ct})
	if err != nil {
		log.Fatal(err)
	}

	// Client: decrypt slot 0 of each aggregate and finish in the clear.
	n := float64(slots)
	decSum, err := decryptor.Decrypt(out["sum"])
	if err != nil {
		log.Fatal(err)
	}
	decSum2, err := decryptor.Decrypt(out["sumsq"])
	if err != nil {
		log.Fatal(err)
	}
	encMean := real(enc.Decode(decSum)[0]) / n
	encVar := real(enc.Decode(decSum2)[0])/n - encMean*encMean

	var mean, m2 float64
	for _, v := range vals {
		mean += v
	}
	mean /= n
	for _, v := range vals {
		m2 += (v - mean) * (v - mean)
	}
	m2 /= n

	fmt.Printf("samples: %d (one ciphertext), rotations: %d per reduction, plan steps: %d\n",
		slots, len(steps), plan.NumSteps())
	fmt.Printf("mean     encrypted %.6f   cleartext %.6f   |diff| %.2e\n", encMean, mean, math.Abs(encMean-mean))
	fmt.Printf("variance encrypted %.6f   cleartext %.6f   |diff| %.2e\n", encVar, m2, math.Abs(encVar-m2))
}
