// Encrypted descriptive statistics: the server computes the mean and
// variance of n/2 = 2048 encrypted samples without decrypting them, using
// slot rotations (InnerSum) for the reductions — another rotation-heavy
// workload served by HEAX's KeySwitch engine.
//
//	mean = Σx / N,  var = Σx² / N − mean²
//
// The two reductions are independent, so the server submits them as an
// asynchronous batch through heax.Session — the paper's Figure 7
// enqueue model: Σx runs concurrently with the square→rescale→Σx² chain,
// whose internal dependency edges are expressed by plugging futures into
// the next operation.
//
// Everything left of the final division stays encrypted; the client
// decrypts two numbers.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"heax"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("statistics: ")

	// Set-B rather than Set-A: after squaring and rescaling, the slot sum
	// Σx² ≈ slots·E[x²] needs log2(slots)+log2(E[x²]) extra headroom above
	// the scale, which Set-A's single remaining 36-bit prime cannot hold.
	params, err := heax.NewParams(heax.SetB)
	if err != nil {
		log.Fatal(err)
	}
	slots := params.Slots()

	kg := heax.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	// InnerSum over all slots needs keys for every power-of-two step.
	var steps []int
	for s := 1; s < slots; s <<= 1 {
		steps = append(steps, s)
	}
	evk := heax.GenEvaluationKeys(kg, sk, steps, false)

	enc := heax.NewEncoder(params)
	encryptor := heax.NewEncryptor(params, pk, 2)
	decryptor := heax.NewDecryptor(params, sk)
	eval := heax.NewEvaluator(params, evk)

	// A batch of samples from a known distribution.
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, slots)
	for i := range x {
		x[i] = rng.NormFloat64()*0.5 + 1.25
	}
	pt, err := enc.EncodeReal(x, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		log.Fatal(err)
	}
	ct, err := encryptor.Encrypt(pt)
	if err != nil {
		log.Fatal(err)
	}

	// Server: Σx and Σx² as one asynchronous submission batch. The Σx
	// reduction and the Σx² chain execute concurrently; within the chain
	// each op starts when the future it consumes resolves.
	sess := heax.NewSession(eval)
	fSum := sess.Submit(heax.InnerSumOp(heax.Arg(ct), slots))
	fSq := sess.Submit(heax.MulRelinOp(heax.Arg(ct), heax.Arg(ct)))
	fSqRescaled := sess.Submit(heax.RescaleOp(fSq))
	fSum2 := sess.Submit(heax.InnerSumOp(fSqRescaled, slots))
	if err := sess.Flush(); err != nil {
		log.Fatal(err)
	}
	sumX, _ := fSum.Wait()
	sumX2, _ := fSum2.Wait()

	// Client: decrypt slot 0 of each aggregate and finish in the clear.
	n := float64(slots)
	decSum, err := decryptor.Decrypt(sumX)
	if err != nil {
		log.Fatal(err)
	}
	decSum2, err := decryptor.Decrypt(sumX2)
	if err != nil {
		log.Fatal(err)
	}
	encMean := real(enc.Decode(decSum)[0]) / n
	encVar := real(enc.Decode(decSum2)[0])/n - encMean*encMean

	var mean, m2 float64
	for _, v := range x {
		mean += v
	}
	mean /= n
	for _, v := range x {
		m2 += (v - mean) * (v - mean)
	}
	m2 /= n

	fmt.Printf("samples: %d (one ciphertext), rotations: %d per reduction\n", slots, len(steps))
	fmt.Printf("mean     encrypted %.6f   cleartext %.6f   |diff| %.2e\n", encMean, mean, math.Abs(encMean-mean))
	fmt.Printf("variance encrypted %.6f   cleartext %.6f   |diff| %.2e\n", encVar, m2, math.Abs(encVar-m2))
}
