// Encrypted descriptive statistics: the server computes the mean and
// variance of n/2 = 2048 encrypted samples without decrypting them, using
// slot rotations (InnerSum) for the reductions — another rotation-heavy
// workload served by HEAX's KeySwitch engine.
//
//	mean = Σx / N,  var = Σx² / N − mean²
//
// Everything left of the final division stays encrypted; the client
// decrypts two numbers.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"heax/internal/ckks"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("statistics: ")

	// Set-B rather than Set-A: after squaring and rescaling, the slot sum
	// Σx² ≈ slots·E[x²] needs log2(slots)+log2(E[x²]) extra headroom above
	// the scale, which Set-A's single remaining 36-bit prime cannot hold.
	params, err := ckks.NewParams(ckks.SetB)
	if err != nil {
		log.Fatal(err)
	}
	slots := params.Slots()

	kg := ckks.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	// InnerSum over all slots needs keys for every power-of-two step.
	var steps []int
	for s := 1; s < slots; s <<= 1 {
		steps = append(steps, s)
	}
	gks := kg.GenGaloisKeySet(sk, steps, false)

	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptor(params, pk, 2)
	decryptor := ckks.NewDecryptor(params, sk)
	eval := ckks.NewEvaluator(params)

	// A batch of samples from a known distribution.
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, slots)
	for i := range x {
		x[i] = rng.NormFloat64()*0.5 + 1.25
	}
	pt, err := enc.EncodeReal(x, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		log.Fatal(err)
	}
	ct, err := encryptor.Encrypt(pt)
	if err != nil {
		log.Fatal(err)
	}

	// Server: Σx and Σx², each reduced with log2(slots) rotations.
	sumX, err := eval.InnerSum(ct, slots, gks)
	if err != nil {
		log.Fatal(err)
	}
	sq, err := eval.MulRelin(ct, ct, rlk)
	if err != nil {
		log.Fatal(err)
	}
	if sq, err = eval.Rescale(sq); err != nil {
		log.Fatal(err)
	}
	sumX2, err := eval.InnerSum(sq, slots, gks)
	if err != nil {
		log.Fatal(err)
	}

	// Client: decrypt slot 0 of each aggregate and finish in the clear.
	n := float64(slots)
	decSum, err := decryptor.Decrypt(sumX)
	if err != nil {
		log.Fatal(err)
	}
	decSum2, err := decryptor.Decrypt(sumX2)
	if err != nil {
		log.Fatal(err)
	}
	encMean := real(enc.Decode(decSum)[0]) / n
	encVar := real(enc.Decode(decSum2)[0])/n - encMean*encMean

	var mean, m2 float64
	for _, v := range x {
		mean += v
	}
	mean /= n
	for _, v := range x {
		m2 += (v - mean) * (v - mean)
	}
	m2 /= n

	fmt.Printf("samples: %d (one ciphertext), rotations: %d per reduction\n", slots, len(steps))
	fmt.Printf("mean     encrypted %.6f   cleartext %.6f   |diff| %.2e\n", encMean, mean, math.Abs(encMean-mean))
	fmt.Printf("variance encrypted %.6f   cleartext %.6f   |diff| %.2e\n", encVar, m2, math.Abs(encVar-m2))
}
