// hwpipeline runs a relinearization KeySwitch through the simulated HEAX
// hardware — INTT0 → NTT0 layer → DyadMult banks → INTT1 → NTT1 → MS —
// verifies the result against the software evaluator bit for bit, and
// prints the Figure-6-style pipeline occupancy of back-to-back operations.
// Everything runs through the public surfaces: the CKKS engine from heax,
// the hardware model and simulator from heax/arch.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"heax"
	"heax/arch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hwpipeline: ")

	// A small HEAX-shaped parameter set keeps the functional simulation
	// quick; the pipeline timing below uses the real Set-B architecture.
	spec := heax.ParamSpec{Name: "demo", LogN: 11, QBits: []int{43, 40, 40, 40}, PBits: 46, LogScale: 40}
	params, err := heax.NewParams(spec)
	if err != nil {
		log.Fatal(err)
	}
	kg := heax.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinearizationKey(sk)
	eval := heax.NewEvaluator(params, &heax.EvaluationKeySet{Relin: rlk})

	set := arch.ParamSet{Name: spec.Name, LogN: spec.LogN, K: len(spec.QBits)}
	a := arch.DeriveArch(arch.BoardStratix10, set, 8)
	fmt.Printf("architecture: %s (f1=%d, f2=%d)\n", a, a.F1(), a.F2(set.LogN))

	// Functional run: hardware vs software on a random polynomial.
	ctx := params.RingQP
	rng := rand.New(rand.NewSource(2))
	c := ctx.NewPoly(params.K())
	for i := range c.Coeffs {
		p := ctx.Basis.Primes[i]
		for j := range c.Coeffs[i] {
			c.Coeffs[i][j] = rng.Uint64() % p
		}
	}
	sim := arch.NewKeySwitchSim(ctx, a)
	hw0, hw1, err := sim.Run(c, rlk.SwitchingKey.Digits)
	if err != nil {
		log.Fatal(err)
	}
	sw0, sw1 := eval.KeySwitchPoly(c, &rlk.SwitchingKey)
	fmt.Printf("hardware == software: %v\n", hw0.Equal(sw0) && hw1.Equal(sw1))
	fmt.Printf("module work (cycles): INTT0 %d, NTT0 %d, Dyad %d, INTT1 %d, NTT1 %d, MS %d\n",
		sim.INTT0Cycles, sim.NTT0Cycles, sim.DyadCycles, sim.INTT1Cycles, sim.NTT1Cycles, sim.MSCycles)

	// Timing run on the paper's Stratix 10 / Set-B configuration.
	setB := arch.ParamSetB
	archB, err := arch.GenerateArch(arch.BoardStratix10, setB)
	if err != nil {
		log.Fatal(err)
	}
	rep := arch.SimulateKeySwitchPipeline(arch.PipelineConfig{Arch: archB, Set: setB}, 64, false)
	closed := archB.KeySwitchCycles(setB)
	fmt.Printf("\nStratix 10 / Set-B pipeline: interval %.0f cycles (closed form %d) -> %.0f KeySwitch/s @300MHz\n",
		rep.Interval, closed, 300e6/rep.Interval)

	var names []string
	for name := range rep.Utilization {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("module utilization:")
	for _, name := range names {
		fmt.Printf("  %-8s %5.1f%%\n", name, 100*rep.Utilization[name])
	}

	trace := arch.SimulateKeySwitchPipeline(arch.PipelineConfig{Arch: archB, Set: setB}, 6, true)
	fmt.Println("\npipeline occupancy (6 ops, digit colored by op number):")
	fmt.Print(arch.RenderGantt(trace, int64(rep.Interval)/12+1, 100))
}
