// Encrypted logistic-regression inference served over the wire: the
// capstone of the circuits layer. The model's weight vector becomes a
// circuits.BatchedDot linear transform (one score per 8-slot feature
// block), the sigmoid becomes a degree-7 Chebyshev polynomial evaluated
// with the Paterson–Stockmeyer structure, and the whole pipeline is a
// single heax.Circuit compiled *server-side* by heax-serve and streamed
// through the cached plan. Circuit.RequiredRotations reports exactly
// the Galois keys the client must generate and upload — no guessing,
// no over-provisioning.
//
// Accuracy contract, checked at the end against the cleartext model:
//
//   - the wire results must be bit-identical to an in-process
//     Plan.RunBatch oracle (both sides run the same deterministic
//     pipeline on the same key material);
//   - every decrypted score must match σ(w·x+b) within 3.2e-2 — the
//     pinned 3.1e-2 sup-norm error of the degree-7 Chebyshev sigmoid
//     on [-8, 8] (see circuits.Sigmoid) plus ~1e-3 of CKKS noise.
//
// Run against a daemon with `heax-serve -params C` and -addr, or with
// no flags for a self-contained in-process server on a loopback port.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"

	"heax"
	"heax/circuits"
	"heax/serve"
)

const (
	features = 8
	degree   = 7
	errBound = 3.2e-2
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lrserve: ")
	addr := flag.String("addr", "", "heax-serve address (empty: start an in-process server)")
	flag.Parse()

	// The degree-7 sigmoid needs Set-C's modulus chain: three levels of
	// Paterson–Stockmeyer products on top of the dot product's one.
	params, err := heax.NewParams(heax.SetC)
	if err != nil {
		log.Fatal(err)
	}
	target := *addr
	if target == "" {
		srv, err := serve.NewServer(params)
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve(ln)
		defer srv.Close()
		target = ln.Addr().String()
		fmt.Printf("no -addr given: in-process heax-serve on %s (Set-C)\n", target)
	}

	cl, err := serve.Dial(target)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	params = cl.Params()
	samples := params.Slots() / features

	// A fixed toy model: weights small enough that every score lands
	// well inside the sigmoid's approximation interval.
	rng := rand.New(rand.NewSource(9))
	w := make([]float64, features)
	for i := range w {
		w[i] = rng.Float64() - 0.5
	}
	bias := 0.25

	// The full inference circuit: score = w·x + b per feature block,
	// then the degree-7 Chebyshev sigmoid.
	dot, err := circuits.BatchedDot(w)
	if err != nil {
		log.Fatal(err)
	}
	sigmoid := circuits.Sigmoid(degree)
	c := heax.NewCircuit()
	scores, err := dot.Apply(c, c.Input("x"))
	if err != nil {
		log.Fatal(err)
	}
	prob, err := sigmoid.Apply(c, c.AddConst(scores, bias))
	if err != nil {
		log.Fatal(err)
	}
	c.Output("p", prob)

	// RequiredRotations is the key contract: generate exactly the Galois
	// keys the compiled plan will look up.
	steps, err := c.RequiredRotations(params)
	if err != nil {
		log.Fatal(err)
	}
	kg := heax.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	evk := heax.GenEvaluationKeys(kg, sk, steps, false)
	enc := heax.NewEncoder(params)
	encryptor := heax.NewEncryptor(params, pk, 2)
	decryptor := heax.NewDecryptor(params, sk)
	fmt.Printf("model: %d features, degree-%d sigmoid; RequiredRotations: %v\n", features, degree, steps)

	if err := cl.Register("lr", evk); err != nil {
		log.Fatal(err)
	}
	info, err := cl.Compile("lr", c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled server-side: plan %s… (%d steps, cache hit: %v)\n", info.ID.String()[:12], info.Steps, info.Cached)

	// Two batches of slots/8 samples each, one sample per feature block.
	const nBatches = 2
	batches := make([]map[string]*heax.Ciphertext, nBatches)
	data := make([][][]float64, nBatches)
	for bi := range batches {
		data[bi] = make([][]float64, samples)
		packed := make([]float64, params.Slots())
		for s := 0; s < samples; s++ {
			x := make([]float64, features)
			for j := range x {
				x[j] = rng.Float64()*4 - 2
			}
			data[bi][s] = x
			copy(packed[s*features:], x)
		}
		pt, err := enc.EncodeReal(packed, params.MaxLevel(), params.DefaultScale())
		if err != nil {
			log.Fatal(err)
		}
		ct, err := encryptor.Encrypt(pt)
		if err != nil {
			log.Fatal(err)
		}
		batches[bi] = map[string]*heax.Ciphertext{"x": ct}
	}

	got, err := cl.Run("lr", info.ID, batches)
	if err != nil {
		log.Fatal(err)
	}

	// In-process oracle: same circuit, same keys, no network.
	oracle, err := c.Compile(params, evk)
	if err != nil {
		log.Fatal(err)
	}
	want, err := oracle.RunBatch(batches)
	if err != nil {
		log.Fatal(err)
	}

	identical := true
	worst := 0.0
	for bi := range batches {
		if !ctEqual(got[bi]["p"], want[bi]["p"]) {
			identical = false
		}
		pt, err := decryptor.Decrypt(got[bi]["p"])
		if err != nil {
			log.Fatal(err)
		}
		dec := enc.Decode(pt)
		for s, x := range data[bi] {
			score := bias
			for j, v := range x {
				score += w[j] * v
			}
			cleartext := 1 / (1 + math.Exp(-score))
			if d := math.Abs(real(dec[s*features]) - cleartext); d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("scored %d samples in %d wire batches; max |p - σ(w·x+b)| = %.2e (bound %.1e)\n",
		nBatches*samples, nBatches, worst, errBound)
	fmt.Printf("bit-identical to the in-process Plan.RunBatch oracle: %v\n", identical)
	if !identical {
		log.Fatal("wire results diverged from the in-process oracle")
	}
	if worst > errBound {
		log.Fatalf("max error %.2e exceeds the documented bound %.1e", worst, errBound)
	}
	if err := cl.Unregister("lr"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tenant evicted; done")
}

// ctEqual reports bit-identity of two ciphertexts.
func ctEqual(a, b *heax.Ciphertext) bool {
	if a == nil || b == nil || a.Scale != b.Scale || a.Level != b.Level || len(a.Polys) != len(b.Polys) {
		return false
	}
	for i := range a.Polys {
		if !a.Polys[i].Equal(b.Polys[i]) {
			return false
		}
	}
	return true
}
