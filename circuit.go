package heax

import (
	"fmt"
	"math"
	"sort"
)

// Circuit is the build stage of the compile-once / run-many pipeline —
// the host-side analogue of fixing the dataflow a HEAX board will
// stream batches through (Section 5.2). A circuit is a DAG of symbolic
// nodes over named encrypted inputs and plaintext constants, with *no*
// rescale, relinearization or level bookkeeping: Compile infers a
// (level, scale) assignment for every node, inserts the maintenance
// operations itself, and returns an immutable Plan that can execute
// arbitrarily many input batches.
//
//	c := heax.NewCircuit()
//	x := c.Input("x")
//	y := c.Output("y", c.AddConst(c.MulRelin(x, x), 1))
//	plan, err := c.Compile(params, evk)
//	out, err := plan.Run(map[string]*heax.Ciphertext{"x": ct})
//
// Builder methods never fail mid-chain: misuse (a Node from another
// circuit, a bad width) is recorded and surfaced by Compile.
type Circuit struct {
	nodes   []cnode
	inputs  []string       // input names in declaration order
	inputID map[string]int // input name -> node id
	outputs []circuitOut
	outSet  map[string]bool
	err     error
}

type circuitOut struct {
	name string
	node int
}

// Node is an opaque handle to a circuit value. The zero Node is
// invalid; Nodes are only produced by the builder methods of the
// Circuit that owns them.
type Node struct {
	c  *Circuit
	id int
}

type nodeKind uint8

const (
	kindInput nodeKind = iota
	kindAdd
	kindSub
	kindMulRelin
	kindMulPlain
	kindAddPlain
	kindRotate
	kindConjugate
	kindInnerSum
)

var nodeKindNames = [...]string{
	kindInput:     "Input",
	kindAdd:       "Add",
	kindSub:       "Sub",
	kindMulRelin:  "MulRelin",
	kindMulPlain:  "MulPlain",
	kindAddPlain:  "AddPlain",
	kindRotate:    "Rotate",
	kindConjugate: "ConjugateSlots",
	kindInnerSum:  "InnerSum",
}

// cnode is one symbolic operation as the user built it; Compile lowers
// these into plan steps with the maintenance operations inserted.
type cnode struct {
	kind nodeKind
	args []int
	// Plaintext payload for MulPlain/AddPlain: an explicit slot vector,
	// or a scalar broadcast across all slots (the width is only known
	// at Compile, when the parameter set fixes the slot count). A
	// periodic vector is tiled across all slots at compile time (its
	// length must divide the slot count), which is how a circuit that
	// does not know the parameter set expresses "this pattern in every
	// block" — the plaintext layout BSGS linear transforms need.
	vals      []complex128
	scalar    float64
	broadcast bool
	periodic  bool
	name      string // input name
	step      int    // rotation step
	n2        int    // InnerSum width
}

// NewCircuit returns an empty circuit builder.
func NewCircuit() *Circuit {
	return &Circuit{inputID: make(map[string]int), outSet: make(map[string]bool)}
}

func (c *Circuit) fail(format string, args ...any) Node {
	if c.err == nil {
		c.err = fmt.Errorf("heax: "+format, args...)
	}
	// A self-owned dummy keeps call chains alive; Compile reports err.
	return Node{c: c, id: 0}
}

func (c *Circuit) push(n cnode) Node {
	c.nodes = append(c.nodes, n)
	return Node{c: c, id: len(c.nodes) - 1}
}

func (c *Circuit) arg(n Node, op string) (int, bool) {
	if n.c != c {
		c.fail("%s: operand is the zero Node or belongs to another circuit", op)
		return 0, false
	}
	return n.id, true
}

func (c *Circuit) args2(a, b Node, op string) ([]int, bool) {
	ia, ok1 := c.arg(a, op)
	ib, ok2 := c.arg(b, op)
	return []int{ia, ib}, ok1 && ok2
}

// Input declares a named encrypted input. Inputs enter at the parameter
// set's top level and default scale; Plan.Run validates the ciphertexts
// it is handed against that. Declaring the same name twice returns the
// same node.
func (c *Circuit) Input(name string) Node {
	if name == "" {
		return c.fail("Input: empty name")
	}
	if id, ok := c.inputID[name]; ok {
		return Node{c: c, id: id}
	}
	n := c.push(cnode{kind: kindInput, name: name})
	c.inputID[name] = n.id
	c.inputs = append(c.inputs, name)
	return n
}

// Add returns a + b. Operand levels and scales need not match: the
// compiler reconciles them.
func (c *Circuit) Add(a, b Node) Node {
	ids, ok := c.args2(a, b, "Add")
	if !ok {
		return Node{c: c}
	}
	return c.push(cnode{kind: kindAdd, args: ids})
}

// Sub returns a - b.
func (c *Circuit) Sub(a, b Node) Node {
	ids, ok := c.args2(a, b, "Sub")
	if !ok {
		return Node{c: c}
	}
	return c.push(cnode{kind: kindSub, args: ids})
}

// MulRelin returns the relinearized product a · b. The compiler
// rescales the operands to the level's canonical scale first and keeps
// every intermediate at degree 1.
func (c *Circuit) MulRelin(a, b Node) Node {
	ids, ok := c.args2(a, b, "MulRelin")
	if !ok {
		return Node{c: c}
	}
	return c.push(cnode{kind: kindMulRelin, args: ids})
}

// MulPlain returns a ⊙ values (slot-wise product with a plaintext
// vector, encoded by the compiler at the level and scale inference
// assigns). len(values) must not exceed the parameter set's slot count.
func (c *Circuit) MulPlain(a Node, values []float64) Node {
	return c.plainNode(kindMulPlain, a, realToComplex(values), false)
}

// AddPlain returns a + values, slot-wise.
func (c *Circuit) AddPlain(a Node, values []float64) Node {
	return c.plainNode(kindAddPlain, a, realToComplex(values), false)
}

// MulPlainComplex is MulPlain with a complex payload, exercising both
// halves of the canonical embedding.
func (c *Circuit) MulPlainComplex(a Node, values []complex128) Node {
	return c.plainNode(kindMulPlain, a, append([]complex128(nil), values...), false)
}

// AddPlainComplex is AddPlain with a complex payload.
func (c *Circuit) AddPlainComplex(a Node, values []complex128) Node {
	return c.plainNode(kindAddPlain, a, append([]complex128(nil), values...), false)
}

// MulPlainPeriodic returns a ⊙ tile(values): the payload is repeated
// across all message slots at compile time, so a circuit built without
// knowing the parameter set can still express a block-periodic plaintext
// (the diagonal layout of heax/circuits.LinearTransform). len(values)
// must divide the slot count once the circuit is compiled; Compile
// rejects lengths that do not.
func (c *Circuit) MulPlainPeriodic(a Node, values []complex128) Node {
	return c.plainNode(kindMulPlain, a, append([]complex128(nil), values...), true)
}

// AddPlainPeriodic returns a + tile(values), slot-wise.
func (c *Circuit) AddPlainPeriodic(a Node, values []complex128) Node {
	return c.plainNode(kindAddPlain, a, append([]complex128(nil), values...), true)
}

func realToComplex(values []float64) []complex128 {
	vals := make([]complex128, len(values))
	for i, v := range values {
		vals[i] = complex(v, 0)
	}
	return vals
}

// plainNode records a vector-payload plain operation. vals is already a
// private copy owned by the node.
func (c *Circuit) plainNode(kind nodeKind, a Node, vals []complex128, periodic bool) Node {
	op := nodeKindNames[kind]
	id, ok := c.arg(a, op)
	if !ok {
		return Node{c: c}
	}
	if len(vals) == 0 {
		return c.fail("%s: empty plaintext vector", op)
	}
	for i, v := range vals {
		if !isFinite(real(v)) || !isFinite(imag(v)) {
			return c.fail("%s: value %d is %g", op, i, v)
		}
	}
	return c.push(cnode{kind: kind, args: []int{id}, vals: vals, periodic: periodic})
}

// MulConst returns v · a — MulPlain with v broadcast across all slots.
func (c *Circuit) MulConst(a Node, v float64) Node {
	return c.constNode(kindMulPlain, a, v)
}

// AddConst returns a + v in every slot.
func (c *Circuit) AddConst(a Node, v float64) Node {
	return c.constNode(kindAddPlain, a, v)
}

func (c *Circuit) constNode(kind nodeKind, a Node, v float64) Node {
	op := nodeKindNames[kind]
	id, ok := c.arg(a, op)
	if !ok {
		return Node{c: c}
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return c.fail("%s: constant is %g", op, v)
	}
	return c.push(cnode{kind: kind, args: []int{id}, scalar: v, broadcast: true})
}

// Rotate rotates message slots left by step positions (negative steps
// rotate right). Rotations sharing a source are compiled into one
// hoisted-decomposition batch. Rotate by 0 is the identity; Compile
// reduces every step modulo the parameter set's slot count, so
// Rotate(a, 1) and Rotate(a, 1−slots) dedupe to the same step, share
// one Galois key, and a step that normalizes to 0 compiles to nothing.
func (c *Circuit) Rotate(a Node, step int) Node {
	id, ok := c.arg(a, "Rotate")
	if !ok {
		return Node{c: c}
	}
	if step == 0 {
		return Node{c: c, id: id}
	}
	return c.push(cnode{kind: kindRotate, args: []int{id}, step: step})
}

// ConjugateSlots applies complex conjugation to every slot.
func (c *Circuit) ConjugateSlots(a Node) Node {
	id, ok := c.arg(a, "ConjugateSlots")
	if !ok {
		return Node{c: c}
	}
	return c.push(cnode{kind: kindConjugate, args: []int{id}})
}

// InnerSum replaces every slot with the sum of n2 consecutive slots
// (n2 a power of two), compiled onto log2(n2) rotations.
func (c *Circuit) InnerSum(a Node, n2 int) Node {
	id, ok := c.arg(a, "InnerSum")
	if !ok {
		return Node{c: c}
	}
	if n2 < 1 || n2&(n2-1) != 0 {
		return c.fail("InnerSum: width %d must be a power of two", n2)
	}
	if n2 == 1 {
		return Node{c: c, id: id}
	}
	return c.push(cnode{kind: kindInnerSum, args: []int{id}, n2: n2})
}

// Output names a node as a circuit result and returns the node
// unchanged, so it can close a build chain. Each output name must be
// unique.
func (c *Circuit) Output(name string, a Node) Node {
	id, ok := c.arg(a, "Output")
	if !ok {
		return Node{c: c}
	}
	if name == "" {
		return c.fail("Output: empty name")
	}
	if c.outSet[name] {
		return c.fail("Output: duplicate name %q", name)
	}
	c.outSet[name] = true
	c.outputs = append(c.outputs, circuitOut{name: name, node: id})
	return Node{c: c, id: id}
}

// RequiredRotations reports the distinct rotation steps the circuit
// needs Galois keys for under the given parameter set: every live
// Rotate step reduced by Params.NormalizeRotation plus the power-of-two
// spans InnerSum lowers onto, after the same deduplication and
// dead-node pruning Compile performs — so rotations that normalize to
// the identity, collapse onto each other, or feed no output are not
// reported. The result is sorted ascending and contains no zero; pass
// it to GenEvaluationKeys to generate exactly the keys a Plan compiled
// from this circuit will look up, instead of guessing.
//
// ConjugateSlots needs the separate conjugation key (the conjugate
// argument of GenEvaluationKeys), not a rotation step, and is not
// reported here.
func (c *Circuit) RequiredRotations(params *Params) ([]int, error) {
	if c.err != nil {
		return nil, c.err
	}
	if len(c.outputs) == 0 {
		return nil, fmt.Errorf("heax: circuit has no outputs: %w", ErrInvalidCircuit)
	}
	rep := c.eliminateCommon(params)
	reach := c.reachable(rep)
	need := make(map[int]bool)
	for id, n := range c.nodes {
		if rep[id] != id || !reach[id] {
			continue
		}
		switch n.kind {
		case kindRotate:
			// eliminateCommon collapsed normalized-0 rotations onto their
			// operand, so the normalized step here is always nonzero.
			need[params.NormalizeRotation(n.step)] = true
		case kindInnerSum:
			for span := n.n2 >> 1; span >= 1; span >>= 1 {
				if norm := params.NormalizeRotation(span); norm != 0 {
					need[norm] = true
				}
			}
		}
	}
	steps := make([]int, 0, len(need))
	for s := range need {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	return steps, nil
}
