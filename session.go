package heax

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ErrDependency marks a submitted operation that never ran because one
// of its input futures failed; the cause is joined into the error chain,
// so errors.Is also matches the root sentinel.
var ErrDependency = errors.New("dependent operation failed")

// Operand is an input to a submitted operation: either a ready
// ciphertext (Arg) or the Future of a previously submitted operation —
// passing a Future is how dependency edges are expressed.
type Operand interface {
	await() (*Ciphertext, error)
}

type ctOperand struct{ ct *Ciphertext }

func (o ctOperand) await() (*Ciphertext, error) { return o.ct, nil }

// Arg wraps a ready ciphertext as an operation input.
func Arg(ct *Ciphertext) Operand { return ctOperand{ct: ct} }

// Future is the pending result of a submitted operation. Futures
// resolve out of order as the session's in-flight window allows.
type Future struct {
	done chan struct{}
	ct   *Ciphertext
	err  error
}

// Done returns a channel closed when the operation has resolved.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks until the operation resolves and returns its result.
func (f *Future) Wait() (*Ciphertext, error) {
	<-f.done
	return f.ct, f.err
}

func (f *Future) await() (*Ciphertext, error) { return f.Wait() }

// Op is one homomorphic operation to submit to a Session, built with
// the *Op constructors below.
type Op struct {
	name string
	args []Operand
	run  func(e *Evaluator, in []*Ciphertext) (*Ciphertext, error)
}

// AddOp is a + b.
func AddOp(a, b Operand) Op {
	return Op{name: "Add", args: []Operand{a, b},
		run: func(e *Evaluator, in []*Ciphertext) (*Ciphertext, error) { return e.Add(in[0], in[1]) }}
}

// SubOp is a - b.
func SubOp(a, b Operand) Op {
	return Op{name: "Sub", args: []Operand{a, b},
		run: func(e *Evaluator, in []*Ciphertext) (*Ciphertext, error) { return e.Sub(in[0], in[1]) }}
}

// MulRelinOp is the relinearized product of a and b.
func MulRelinOp(a, b Operand) Op {
	return Op{name: "MulRelin", args: []Operand{a, b},
		run: func(e *Evaluator, in []*Ciphertext) (*Ciphertext, error) { return e.MulRelin(in[0], in[1]) }}
}

// MulPlainOp is a ⊙ pt.
func MulPlainOp(a Operand, pt *Plaintext) Op {
	return Op{name: "MulPlain", args: []Operand{a},
		run: func(e *Evaluator, in []*Ciphertext) (*Ciphertext, error) { return e.MulPlain(in[0], pt) }}
}

// AddPlainOp is a + pt.
func AddPlainOp(a Operand, pt *Plaintext) Op {
	return Op{name: "AddPlain", args: []Operand{a},
		run: func(e *Evaluator, in []*Ciphertext) (*Ciphertext, error) { return e.AddPlain(in[0], pt) }}
}

// RescaleOp divides a by its last prime, dropping one level.
func RescaleOp(a Operand) Op {
	return Op{name: "Rescale", args: []Operand{a},
		run: func(e *Evaluator, in []*Ciphertext) (*Ciphertext, error) { return e.Rescale(in[0]) }}
}

// RotateOp rotates a's slots left by step positions.
func RotateOp(a Operand, step int) Op {
	return Op{name: "Rotate", args: []Operand{a},
		run: func(e *Evaluator, in []*Ciphertext) (*Ciphertext, error) { return e.RotateLeft(in[0], step) }}
}

// InnerSumOp sums n2 consecutive slots of a into every slot.
func InnerSumOp(a Operand, n2 int) Op {
	return Op{name: "InnerSum", args: []Operand{a},
		run: func(e *Evaluator, in []*Ciphertext) (*Ciphertext, error) { return e.InnerSum(in[0], n2) }}
}

// SessionOption configures a Session at construction.
type SessionOption func(*Session)

// WithMaxInFlight bounds how many submitted operations may execute
// concurrently — the software analogue of the paper's bounded device
// buffers (double buffering for MULT, f1-deep for KeySwitch). Defaults
// to 2×GOMAXPROCS.
func WithMaxInFlight(n int) SessionOption {
	return func(s *Session) {
		if n < 1 {
			n = 1
		}
		s.sem = make(chan struct{}, n)
	}
}

// Session is the asynchronous submission front end of the paper's
// system view (Section 5.2, Figure 7): applications enqueue operations
// with Submit, a bounded number execute concurrently on the evaluator's
// worker-pool scheduler, and futures resolve out of order. An operation
// whose input is another operation's Future starts only once that
// future resolves, so dependency chains are expressed by plugging
// futures into *Op constructors.
//
// A Session is safe for concurrent Submit from multiple goroutines;
// Flush waits for every operation submitted before the call.
type Session struct {
	eval *Evaluator
	sem  chan struct{}

	mu      sync.Mutex
	pending []*Future
}

// NewSession builds a session submitting onto eval.
func NewSession(eval *Evaluator, opts ...SessionOption) *Session {
	s := &Session{
		eval: eval,
		sem:  make(chan struct{}, 2*runtime.GOMAXPROCS(0)),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Submit enqueues op and returns its Future immediately. The operation
// runs as soon as all of its operands have resolved and an in-flight
// slot is free; independent submissions complete out of order.
func (s *Session) Submit(op Op) *Future {
	return s.SubmitContext(context.Background(), op)
}

// SubmitContext is Submit bound to a context: an operation whose
// context is cancelled before it starts — while waiting on operand
// futures or on an in-flight slot — resolves its future with the
// context's error instead of running (operations already executing
// finish normally). This is how a serving front end abandons a
// disconnected client's queued work; dependents of an abandoned
// operation poison with ErrDependency as usual.
func (s *Session) SubmitContext(ctx context.Context, op Op) *Future {
	f := &Future{done: make(chan struct{})}
	s.mu.Lock()
	s.pending = append(s.pending, f)
	s.mu.Unlock()
	go func() {
		defer close(f.done)
		in := make([]*Ciphertext, len(op.args))
		for i, a := range op.args {
			ct, err := awaitOperand(ctx, a)
			if err != nil {
				f.err = fmt.Errorf("heax: %s input %d: %w", op.name, i, errors.Join(ErrDependency, err))
				return
			}
			in[i] = ct
		}
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			f.err = fmt.Errorf("heax: %s: %w", op.name, ctx.Err())
			return
		}
		defer func() { <-s.sem }()
		if err := ctx.Err(); err != nil {
			f.err = fmt.Errorf("heax: %s: %w", op.name, err)
			return
		}
		ct, err := op.run(s.eval, in)
		if err != nil {
			f.err = fmt.Errorf("heax: %s: %w", op.name, err)
			return
		}
		f.ct = ct
	}()
	return f
}

// awaitOperand waits for an operand, abandoning the wait when ctx is
// cancelled (ready ciphertexts resolve immediately either way).
func awaitOperand(ctx context.Context, a Operand) (*Ciphertext, error) {
	fut, ok := a.(*Future)
	if !ok || ctx.Done() == nil {
		return a.await()
	}
	select {
	case <-fut.done:
		return fut.ct, fut.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Flush blocks until every operation submitted before the call has
// resolved and returns the first error among them (in submission
// order), or nil — deterministically the earliest-submitted failure,
// so a poisoned dependency chain reports its root cause rather than
// whichever ErrDependency casualty happened to finish first. Flush is
// safe to call concurrently (every call waits for the work submitted
// before it — a second Flush does not return early just because the
// first one holds the same futures) and to call again after more
// Submits: the session keeps working batch after batch. Resolved
// futures are released from the session's bookkeeping; their results
// remain available through the Future.
func (s *Session) Flush() error {
	s.mu.Lock()
	futs := append([]*Future(nil), s.pending...)
	s.mu.Unlock()
	var first error
	for _, f := range futs {
		if _, err := f.Wait(); err != nil && first == nil {
			first = err
		}
	}
	// Prune exactly the futures this call waited on (all resolved and
	// error-checked above). Anything else — later Submits, work another
	// concurrent Flush snapshotted but this one never examined — stays
	// tracked, so no failure is discarded before some Flush reports it.
	waited := make(map[*Future]bool, len(futs))
	for _, f := range futs {
		waited[f] = true
	}
	s.mu.Lock()
	kept := s.pending[:0]
	for _, f := range s.pending {
		if !waited[f] {
			kept = append(kept, f)
		}
	}
	for i := len(kept); i < len(s.pending); i++ {
		s.pending[i] = nil
	}
	s.pending = kept
	s.mu.Unlock()
	return first
}
