// Package heax_test is the top-level benchmark harness: one bench target
// per table and figure of the paper's evaluation (see DESIGN.md's
// per-experiment index). CPU benches measure this repo's CKKS baseline;
// HEAX benches report the cycle-exact model/simulator rates so that a
// single `go test -bench=. -benchmem` regenerates every comparison.
package heax_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"heax"
	"heax/internal/bench"
	"heax/internal/ckks"
	"heax/internal/core"
	"heax/internal/hwsim"
	"heax/internal/ring"
)

var (
	paramsMu    sync.Mutex
	paramsCache = map[string]*ckks.Params{}
	kitCache    = map[string]*benchKit{}
)

type benchKit struct {
	params *ckks.Params
	rlk    *ckks.RelinearizationKey
	eval   *ckks.Evaluator
}

func getParams(b *testing.B, spec ckks.ParamSpec) *ckks.Params {
	b.Helper()
	paramsMu.Lock()
	defer paramsMu.Unlock()
	if p, ok := paramsCache[spec.Name]; ok {
		return p
	}
	p, err := ckks.NewParams(spec)
	if err != nil {
		b.Fatal(err)
	}
	paramsCache[spec.Name] = p
	return p
}

func getKit(b *testing.B, spec ckks.ParamSpec) *benchKit {
	b.Helper()
	params := getParams(b, spec)
	paramsMu.Lock()
	defer paramsMu.Unlock()
	if k, ok := kitCache[spec.Name]; ok {
		return k
	}
	kg := ckks.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	k := &benchKit{params: params, rlk: kg.GenRelinearizationKey(sk), eval: ckks.NewEvaluator(params)}
	kitCache[spec.Name] = k
	return k
}

func randomRow(params *ckks.Params, rng *rand.Rand) []uint64 {
	p := params.RingQP.Basis.Primes[0]
	row := make([]uint64, params.N)
	for i := range row {
		row[i] = rng.Uint64() % p
	}
	return row
}

func randomPoly(params *ckks.Params, rows int, rng *rand.Rand) *ring.Poly {
	poly := params.RingQP.NewPoly(rows)
	for i := 0; i < rows; i++ {
		p := params.RingQP.Basis.Primes[i]
		for j := range poly.Coeffs[i] {
			poly.Coeffs[i][j] = rng.Uint64() % p
		}
	}
	return poly
}

func randomCt(params *ckks.Params, rng *rand.Rand) *ckks.Ciphertext {
	return &ckks.Ciphertext{
		Polys: []*ring.Poly{randomPoly(params, params.K(), rng), randomPoly(params, params.K(), rng)},
		Scale: params.DefaultScale(),
		Level: params.MaxLevel(),
	}
}

// --- Table 7 CPU columns -------------------------------------------------

func BenchmarkTable7_CPU_NTT(b *testing.B) {
	for _, spec := range ckks.StandardSets {
		b.Run(spec.Name, func(b *testing.B) {
			params := getParams(b, spec)
			row := randomRow(params, rand.New(rand.NewSource(1)))
			tb := params.RingQP.Tables[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tb.Forward(row)
			}
		})
	}
}

func BenchmarkTable7_CPU_INTT(b *testing.B) {
	for _, spec := range ckks.StandardSets {
		b.Run(spec.Name, func(b *testing.B) {
			params := getParams(b, spec)
			row := randomRow(params, rand.New(rand.NewSource(2)))
			tb := params.RingQP.Tables[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tb.Inverse(row)
			}
		})
	}
}

// Strict-reduction oracles, kept as the baseline column so the recorded
// BENCH_1.json shows the lazy-engine speedup directly.

func BenchmarkTable7_CPU_NTT_Strict(b *testing.B) {
	for _, spec := range ckks.StandardSets {
		b.Run(spec.Name, func(b *testing.B) {
			params := getParams(b, spec)
			row := randomRow(params, rand.New(rand.NewSource(1)))
			tb := params.RingQP.Tables[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tb.ForwardStrict(row)
			}
		})
	}
}

func BenchmarkTable7_CPU_INTT_Strict(b *testing.B) {
	for _, spec := range ckks.StandardSets {
		b.Run(spec.Name, func(b *testing.B) {
			params := getParams(b, spec)
			row := randomRow(params, rand.New(rand.NewSource(2)))
			tb := params.RingQP.Tables[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tb.InverseStrict(row)
			}
		})
	}
}

func BenchmarkTable7_CPU_Dyadic(b *testing.B) {
	for _, spec := range ckks.StandardSets {
		b.Run(spec.Name, func(b *testing.B) {
			params := getParams(b, spec)
			rng := rand.New(rand.NewSource(3))
			x, y := randomRow(params, rng), randomRow(params, rng)
			out := make([]uint64, params.N)
			mod := params.RingQP.Basis.Mods[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range out {
					out[j] = mod.MulMod(x[j], y[j])
				}
			}
		})
	}
}

// --- Table 8 CPU columns -------------------------------------------------

func BenchmarkTable8_CPU_KeySwitch(b *testing.B) {
	for _, spec := range ckks.StandardSets {
		b.Run(spec.Name, func(b *testing.B) {
			kit := getKit(b, spec)
			c := randomPoly(kit.params, kit.params.K(), rand.New(rand.NewSource(4)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kit.eval.KeySwitchPoly(c, &kit.rlk.SwitchingKey)
			}
		})
	}
}

func BenchmarkTable8_CPU_MulRelin(b *testing.B) {
	for _, spec := range ckks.StandardSets {
		b.Run(spec.Name, func(b *testing.B) {
			kit := getKit(b, spec)
			rng := rand.New(rand.NewSource(5))
			ct1, ct2 := randomCt(kit.params, rng), randomCt(kit.params, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := kit.eval.MulRelin(ct1, ct2, kit.rlk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Multi-op key-switch *throughput* at GOMAXPROCS: many concurrent
// key-switch operations share one evaluator and the ring context's
// persistent worker pool — the serving-shape metric (ops/sec under
// load) as opposed to the single-op latency above. The evaluator is
// safe for concurrent use; per-call state is pooled.

func BenchmarkTable8_CPU_KeySwitchThroughput(b *testing.B) {
	for _, spec := range ckks.StandardSets {
		b.Run(spec.Name, func(b *testing.B) {
			kit := getKit(b, spec)
			c := randomPoly(kit.params, kit.params.K(), rand.New(rand.NewSource(8)))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					kit.eval.KeySwitchPoly(c, &kit.rlk.SwitchingKey)
				}
			})
		})
	}
}

func BenchmarkTable8_CPU_MulRelinThroughput(b *testing.B) {
	for _, spec := range ckks.StandardSets {
		b.Run(spec.Name, func(b *testing.B) {
			kit := getKit(b, spec)
			rng := rand.New(rand.NewSource(9))
			ct1, ct2 := randomCt(kit.params, rng), randomCt(kit.params, rng)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := kit.eval.MulRelin(ct1, ct2, kit.rlk); err != nil {
						b.Error(err) // Fatal must not be called off the benchmark goroutine
						return
					}
				}
			})
		})
	}
}

// --- HEAX model columns (Tables 7 and 8) ---------------------------------

func BenchmarkTable7_HEAX_Model(b *testing.B) {
	for _, cfg := range core.EvaluatedConfigs() {
		b.Run(cfg.Board.Name+"/"+cfg.Set.Name, func(b *testing.B) {
			d, err := core.StandardDesign(cfg.Board, cfg.Set)
			if err != nil {
				b.Fatal(err)
			}
			p := core.Perf{Design: d}
			var ops float64
			for i := 0; i < b.N; i++ {
				ops = p.NTTOps()
			}
			b.ReportMetric(ops, "NTT-ops/s")
			b.ReportMetric(p.DyadicOps(), "Dyadic-ops/s")
		})
	}
}

func BenchmarkTable8_HEAX_Model(b *testing.B) {
	for _, cfg := range core.EvaluatedConfigs() {
		b.Run(cfg.Board.Name+"/"+cfg.Set.Name, func(b *testing.B) {
			d, err := core.StandardDesign(cfg.Board, cfg.Set)
			if err != nil {
				b.Fatal(err)
			}
			p := core.Perf{Design: d}
			var ops float64
			for i := 0; i < b.N; i++ {
				ops = p.KeySwitchOps()
			}
			b.ReportMetric(ops, "KeySwitch-ops/s")
		})
	}
}

// --- Static/model tables -------------------------------------------------

func BenchmarkTable1_Boards(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := bench.Table1Boards(); len(got.Rows) != 2 {
			b.Fatal("bad table 1")
		}
	}
}

func BenchmarkTable2_ParamSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2Params(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_Cores(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := bench.Table3Cores(); len(got.Rows) != 3 {
			b.Fatal("bad table 3")
		}
	}
}

func BenchmarkTable4_Modules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := bench.Table4Modules(); len(got.Rows) != 12 {
			b.Fatal("bad table 4")
		}
	}
}

func BenchmarkTable5_ArchGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cfg := range core.EvaluatedConfigs() {
			if _, err := core.GenerateArch(cfg.Board, cfg.Set); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable6_FullDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table6Designs(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures and ablations -----------------------------------------------

func BenchmarkFig2_AccessPattern(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig2AccessPattern(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_PipelineAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig4PipelineAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6_KeySwitchPipeline(b *testing.B) {
	for _, cfg := range core.PaperArchitectures {
		b.Run(cfg.Board+"/"+cfg.Set, func(b *testing.B) {
			var set core.ParamSet
			for _, s := range core.ParamSets {
				if s.Name == cfg.Set {
					set = s
				}
			}
			var interval float64
			for i := 0; i < b.N; i++ {
				rep := hwsim.SimulateKeySwitchPipeline(hwsim.PipelineConfig{Arch: cfg.Arch, Set: set}, 64, false)
				interval = rep.Interval
			}
			b.ReportMetric(interval, "cycles/op")
		})
	}
}

func BenchmarkAblation_WordSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := core.WordSizeAblationTable(); len(rows) != 3 {
			b.Fatal("bad ablation")
		}
	}
}

func BenchmarkAblation_Buffers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationBuffers(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSec5_DRAMStreaming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Sec5System(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSec5_HostStreaming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.HostStreamingTable(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweep_INTT0(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cfg := range core.EvaluatedConfigs() {
			if pts := core.SweepINTT0(cfg.Board, cfg.Set); len(pts) != 6 {
				b.Fatal("bad sweep")
			}
		}
	}
}

func BenchmarkScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ScalabilityTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Multithreaded CPU ablation -------------------------------------------
// The paper's CPU baseline is single-threaded SEAL; full-RNS rows
// parallelize trivially (Section 2), so a multicore CPU closes part of
// the gap. This bench quantifies it for the full-basis NTT of Set-C.

func BenchmarkAblation_CPUThreads(b *testing.B) {
	params := getParams(b, ckks.SetC)
	ctx := params.RingQP
	rng := rand.New(rand.NewSource(7))
	poly := randomPoly(params, params.QPRows(), rng)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx.NTTParallel(poly, workers)
			}
		})
	}
}

// --- Public API: *Into hot path and Session submission ---------------------
// The serving-shape benchmarks of the public surface: the in-place
// operation variants (whose allocs/op column is the zero-steady-state-
// allocation gate) and Session.Submit batch throughput vs direct
// evaluator calls on the same workload.

type apiBenchKit struct {
	params *heax.Params
	eval   *heax.Evaluator
	x, y   *heax.Ciphertext
}

var (
	apiBenchMu    sync.Mutex
	apiBenchCache = map[string]*apiBenchKit{}
)

func getAPIBenchKit(b *testing.B, spec heax.ParamSpec) *apiBenchKit {
	b.Helper()
	apiBenchMu.Lock()
	defer apiBenchMu.Unlock()
	if k, ok := apiBenchCache[spec.Name]; ok {
		return k
	}
	params, err := heax.NewParams(spec)
	if err != nil {
		b.Fatal(err)
	}
	kg := heax.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	evk := heax.GenEvaluationKeys(kg, sk, []int{1}, false)
	enc := heax.NewEncoder(params)
	encryptor := heax.NewEncryptor(params, pk, 2)
	encrypt := func(seed int64) *heax.Ciphertext {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, 16)
		for i := range vals {
			vals[i] = rng.Float64()*2 - 1
		}
		pt, err := enc.EncodeReal(vals, params.MaxLevel(), params.DefaultScale())
		if err != nil {
			b.Fatal(err)
		}
		ct, err := encryptor.Encrypt(pt)
		if err != nil {
			b.Fatal(err)
		}
		return ct
	}
	k := &apiBenchKit{
		params: params,
		eval:   heax.NewEvaluator(params, evk, heax.WithScratchPool(8)),
		x:      encrypt(10),
		y:      encrypt(11),
	}
	apiBenchCache[spec.Name] = k
	return k
}

func BenchmarkAPI_AddInto(b *testing.B) {
	for _, spec := range heax.StandardSets {
		b.Run(spec.Name, func(b *testing.B) {
			k := getAPIBenchKit(b, spec)
			out, err := heax.NewCiphertext(k.params, 1, k.params.MaxLevel(), 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := k.eval.AddInto(k.x, k.y, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAPI_MulRelinInto(b *testing.B) {
	for _, spec := range heax.StandardSets {
		b.Run(spec.Name, func(b *testing.B) {
			k := getAPIBenchKit(b, spec)
			out, err := heax.NewCiphertext(k.params, 1, k.params.MaxLevel(), 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := k.eval.MulRelinInto(k.x, k.y, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAPI_RescaleInto(b *testing.B) {
	for _, spec := range heax.StandardSets {
		b.Run(spec.Name, func(b *testing.B) {
			k := getAPIBenchKit(b, spec)
			prod, err := k.eval.MulRelin(k.x, k.y)
			if err != nil {
				b.Fatal(err)
			}
			out, err := heax.NewCiphertext(k.params, 1, k.params.MaxLevel()-1, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := k.eval.RescaleInto(prod, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAPI_RotateInto(b *testing.B) {
	for _, spec := range heax.StandardSets {
		b.Run(spec.Name, func(b *testing.B) {
			k := getAPIBenchKit(b, spec)
			out, err := heax.NewCiphertext(k.params, 1, k.params.MaxLevel(), 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := k.eval.RotateInto(k.x, 1, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSession_SubmitMulRelin measures batch submission throughput:
// MulRelin operations enqueued through Session.Submit, resolving out of
// order on the worker-pool scheduler, flushed in windows like a serving
// loop would.
func BenchmarkSession_SubmitMulRelin(b *testing.B) {
	for _, spec := range heax.StandardSets {
		b.Run(spec.Name, func(b *testing.B) {
			k := getAPIBenchKit(b, spec)
			sess := heax.NewSession(k.eval)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sess.Submit(heax.MulRelinOp(heax.Arg(k.x), heax.Arg(k.y)))
				if i%64 == 63 {
					if err := sess.Flush(); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := sess.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkSession_DirectMulRelin is the comparison baseline: the same
// workload as synchronous evaluator calls on one goroutine.
func BenchmarkSession_DirectMulRelin(b *testing.B) {
	for _, spec := range heax.StandardSets {
		b.Run(spec.Name, func(b *testing.B) {
			k := getAPIBenchKit(b, spec)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.eval.MulRelin(k.x, k.y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Hardware-simulator throughput (how fast the simulator itself runs) --

func BenchmarkHWSim_NTTModule(b *testing.B) {
	params := getParams(b, ckks.SetA)
	tb := params.RingQP.Tables[0]
	sim, err := hwsim.NewNTTModuleSim(tb, 16, false)
	if err != nil {
		b.Fatal(err)
	}
	row := randomRow(params, rand.New(rand.NewSource(6)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Transform(row)
	}
}
