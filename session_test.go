package heax_test

import (
	"errors"
	"sync"
	"testing"

	"heax"
)

// TestSessionDependencyChain submits the statistics-shaped DAG — two
// independent chains, one with internal dependency edges — and pins
// every future's result to the direct synchronous computation.
func TestSessionDependencyChain(t *testing.T) {
	k := newAPIKit(t)
	x := k.encrypt(t, []float64{1.5, 2.5, -0.5})
	y := k.encrypt(t, []float64{0.5, -1.0, 2.0})

	// Direct reference results.
	wantProd, err := k.eval.MulRelin(x, y)
	if err != nil {
		t.Fatal(err)
	}
	wantRescaled, err := k.eval.Rescale(wantProd)
	if err != nil {
		t.Fatal(err)
	}
	wantRot, err := k.eval.RotateLeft(wantRescaled, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantSum, err := k.eval.Add(x, y)
	if err != nil {
		t.Fatal(err)
	}

	sess := heax.NewSession(k.eval, heax.WithMaxInFlight(4))
	fProd := sess.Submit(heax.MulRelinOp(heax.Arg(x), heax.Arg(y)))
	fRescaled := sess.Submit(heax.RescaleOp(fProd))
	fRot := sess.Submit(heax.RotateOp(fRescaled, 1))
	fSum := sess.Submit(heax.AddOp(heax.Arg(x), heax.Arg(y)))
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		f    *heax.Future
		want *heax.Ciphertext
	}{
		{"MulRelin", fProd, wantProd},
		{"Rescale", fRescaled, wantRescaled},
		{"Rotate", fRot, wantRot},
		{"Add", fSum, wantSum},
	} {
		got, err := tc.f.Wait()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !ctEqual(tc.want, got) {
			t.Fatalf("%s: session result differs from direct call", tc.name)
		}
	}
}

// TestSessionManyInFlight floods the session with independent work plus
// dependent tails — the out-of-order resolution path under load (and
// under -race in CI).
func TestSessionManyInFlight(t *testing.T) {
	k := newAPIKit(t)
	x := k.encrypt(t, []float64{1, 2, 3})
	y := k.encrypt(t, []float64{4, 5, 6})
	want, err := k.eval.MulRelin(x, y)
	if err != nil {
		t.Fatal(err)
	}
	wantRescaled, err := k.eval.Rescale(want)
	if err != nil {
		t.Fatal(err)
	}

	sess := heax.NewSession(k.eval, heax.WithMaxInFlight(3))
	const ops = 24
	tails := make([]*heax.Future, ops)
	for i := range tails {
		head := sess.Submit(heax.MulRelinOp(heax.Arg(x), heax.Arg(y)))
		tails[i] = sess.Submit(heax.RescaleOp(head))
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, f := range tails {
		got, err := f.Wait()
		if err != nil {
			t.Fatalf("tail %d: %v", i, err)
		}
		if !ctEqual(wantRescaled, got) {
			t.Fatalf("tail %d diverged", i)
		}
	}
}

// TestSessionConcurrentSubmit races many submitting goroutines against
// one session.
func TestSessionConcurrentSubmit(t *testing.T) {
	k := newAPIKit(t)
	x := k.encrypt(t, []float64{1, 2})
	y := k.encrypt(t, []float64{3, 4})
	want, err := k.eval.Add(x, y)
	if err != nil {
		t.Fatal(err)
	}

	sess := heax.NewSession(k.eval)
	var wg sync.WaitGroup
	futs := make([]*heax.Future, 16)
	for i := range futs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			futs[i] = sess.Submit(heax.AddOp(heax.Arg(x), heax.Arg(y)))
		}(i)
	}
	wg.Wait()
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		got, err := f.Wait()
		if err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		if !ctEqual(want, got) {
			t.Fatalf("future %d diverged", i)
		}
	}
}

// TestSessionSubmitAfterFlush: Flush is a barrier, not a close — the
// session accepts and completes new batches after each Flush, and an
// empty Flush (double Flush included) returns nil.
func TestSessionSubmitAfterFlush(t *testing.T) {
	k := newAPIKit(t)
	x := k.encrypt(t, []float64{1, 2})
	y := k.encrypt(t, []float64{3, 4})
	want, err := k.eval.Add(x, y)
	if err != nil {
		t.Fatal(err)
	}

	sess := heax.NewSession(k.eval)
	if err := sess.Flush(); err != nil {
		t.Fatalf("empty Flush: %v", err)
	}
	for batch := 0; batch < 3; batch++ {
		f := sess.Submit(heax.AddOp(heax.Arg(x), heax.Arg(y)))
		if err := sess.Flush(); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		got, err := f.Wait()
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if !ctEqual(want, got) {
			t.Fatalf("batch %d diverged", batch)
		}
		// Double Flush: nothing pending, must return nil.
		if err := sess.Flush(); err != nil {
			t.Fatalf("batch %d double Flush: %v", batch, err)
		}
	}
}

// TestSessionFlushRootFailureDeterministic: with a poisoned dependency
// chain and a later independent failure in flight, Flush always reports
// the chain's root (the earliest-submitted failure) — not a dependent,
// not the later failure.
func TestSessionFlushRootFailureDeterministic(t *testing.T) {
	k := newAPIKit(t)
	x := k.encrypt(t, []float64{1, 2})
	bottom, err := k.eval.DropLevel(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := k.enc.EncodeReal([]float64{1}, k.params.MaxLevel(), 2*k.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	offScale, err := k.encryptor.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}

	sess := heax.NewSession(k.eval)
	for round := 0; round < 10; round++ {
		fBad := sess.Submit(heax.RescaleOp(heax.Arg(bottom)))    // root: ErrLevelMismatch
		sess.Submit(heax.RotateOp(fBad, 1))                      // poisoned dependent
		sess.Submit(heax.AddOp(heax.Arg(x), heax.Arg(offScale))) // later, independent: ErrScaleMismatch
		err := sess.Flush()
		if !errors.Is(err, heax.ErrLevelMismatch) {
			t.Fatalf("round %d: got %v, want the root ErrLevelMismatch", round, err)
		}
		if errors.Is(err, heax.ErrDependency) || errors.Is(err, heax.ErrScaleMismatch) {
			t.Fatalf("round %d: Flush reported a non-root failure: %v", round, err)
		}
	}
}

// TestSessionErrorPropagation: a failing op poisons its dependents with
// ErrDependency while the root cause stays reachable through errors.Is,
// and Flush surfaces the failure.
func TestSessionErrorPropagation(t *testing.T) {
	k := newAPIKit(t)
	x := k.encrypt(t, []float64{1, 2})
	bottom, err := k.eval.DropLevel(x, 0)
	if err != nil {
		t.Fatal(err)
	}

	sess := heax.NewSession(k.eval)
	fBad := sess.Submit(heax.RescaleOp(heax.Arg(bottom))) // level 0: must fail
	fDep := sess.Submit(heax.RotateOp(fBad, 1))
	fDepDep := sess.Submit(heax.RescaleOp(fDep))

	if _, err := fBad.Wait(); !errors.Is(err, heax.ErrLevelMismatch) {
		t.Fatalf("root failure: got %v, want ErrLevelMismatch", err)
	}
	for name, f := range map[string]*heax.Future{"direct dependent": fDep, "transitive dependent": fDepDep} {
		_, err := f.Wait()
		if !errors.Is(err, heax.ErrDependency) {
			t.Fatalf("%s: got %v, want ErrDependency", name, err)
		}
		if !errors.Is(err, heax.ErrLevelMismatch) {
			t.Fatalf("%s: root cause not in chain: %v", name, err)
		}
	}
	if err := sess.Flush(); !errors.Is(err, heax.ErrLevelMismatch) {
		t.Fatalf("Flush: got %v, want the root failure", err)
	}
	// The session remains usable after a failed batch.
	fOK := sess.Submit(heax.AddOp(heax.Arg(x), heax.Arg(x)))
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := fOK.Wait(); err != nil {
		t.Fatal(err)
	}
}
