package heax

// Circuit DAG export/import: a small, versioned JSON encoding of the
// symbolic graph, so a circuit built in one process can be compiled in
// another — the description a client ships to a plan-serving host
// (cmd/heax-serve), which compiles it against the tenant's keys and
// caches the resulting Plan. The encoding carries exactly what the
// builder recorded (no inferred levels or scales: those are the
// compiling side's job), and the importer re-validates everything a
// builder call would have, so a hostile or hand-written description
// can fail but never panic or smuggle in an ill-formed graph.

import (
	"encoding/json"
	"fmt"
	"math"
)

const circuitEncodingVersion = 1

// circuitJSON is the interchange form of a Circuit DAG.
type circuitJSON struct {
	Version int          `json:"version"`
	Nodes   []nodeJSON   `json:"nodes"`
	Outputs []outputJSON `json:"outputs"`
}

type nodeJSON struct {
	Op   string `json:"op"`
	Args []int  `json:"args,omitempty"`
	// Values and Scalar are mutually exclusive payloads of MulPlain /
	// AddPlain: an explicit slot vector, or a broadcast constant (a
	// pointer so that broadcasting 0 survives the round trip).
	// ValuesIm, when present, carries the imaginary parts of Values
	// (same length); it is omitted for real payloads, so circuits built
	// before complex payloads existed encode byte-identically.
	Values   []float64 `json:"values,omitempty"`
	ValuesIm []float64 `json:"values_im,omitempty"`
	Scalar   *float64  `json:"scalar,omitempty"`
	// Periodic marks a vector payload that Compile tiles across all
	// message slots (its length must divide the slot count).
	Periodic bool   `json:"periodic,omitempty"`
	Name     string `json:"name,omitempty"`
	Step     int    `json:"step,omitempty"`
	N2       int    `json:"n2,omitempty"`
}

type outputJSON struct {
	Name string `json:"name"`
	Node int    `json:"node"`
}

// kindByName inverts nodeKindNames for the importer.
var kindByName = func() map[string]nodeKind {
	m := make(map[string]nodeKind, len(nodeKindNames))
	for k, name := range nodeKindNames {
		m[name] = nodeKind(k)
	}
	return m
}()

// argCount is the operand arity of each node kind.
func argCount(kind nodeKind) int {
	switch kind {
	case kindInput:
		return 0
	case kindAdd, kindSub, kindMulRelin:
		return 2
	default:
		return 1
	}
}

// MarshalJSON encodes the circuit DAG. A circuit whose builder chain
// already failed refuses to encode with that recorded error, exactly
// as Compile would.
func (c *Circuit) MarshalJSON() ([]byte, error) {
	if c.err != nil {
		return nil, c.err
	}
	enc := circuitJSON{
		Version: circuitEncodingVersion,
		Nodes:   make([]nodeJSON, len(c.nodes)),
		Outputs: make([]outputJSON, len(c.outputs)),
	}
	for i, n := range c.nodes {
		nj := nodeJSON{
			Op:   nodeKindNames[n.kind],
			Name: n.name,
			Step: n.step,
			N2:   n.n2,
		}
		if len(n.args) > 0 {
			nj.Args = append([]int(nil), n.args...)
		}
		if n.broadcast {
			s := n.scalar
			nj.Scalar = &s
		} else if len(n.vals) > 0 {
			nj.Values = make([]float64, len(n.vals))
			anyIm := false
			for j, v := range n.vals {
				nj.Values[j] = real(v)
				if imag(v) != 0 {
					anyIm = true
				}
			}
			if anyIm {
				nj.ValuesIm = make([]float64, len(n.vals))
				for j, v := range n.vals {
					nj.ValuesIm[j] = imag(v)
				}
			}
			nj.Periodic = n.periodic
		}
		enc.Nodes[i] = nj
	}
	for i, o := range c.outputs {
		enc.Outputs[i] = outputJSON{Name: o.name, Node: o.node}
	}
	return json.Marshal(enc)
}

// UnmarshalJSON decodes and validates a circuit DAG encoded by
// MarshalJSON (or written by hand / another implementation): node kinds
// must exist, operands must reference earlier nodes (so the graph is
// acyclic by construction), inputs must be uniquely named, plaintext
// payloads must be finite and well-formed, and output names must be
// unique. The decoded circuit behaves exactly like one assembled
// through the builder: Compile on both yields the same plan.
func (c *Circuit) UnmarshalJSON(data []byte) error {
	var enc circuitJSON
	if err := json.Unmarshal(data, &enc); err != nil {
		return fmt.Errorf("heax: circuit decode: %w", err)
	}
	if enc.Version != circuitEncodingVersion {
		return fmt.Errorf("heax: circuit decode: unsupported version %d (want %d): %w", enc.Version, circuitEncodingVersion, ErrCorrupt)
	}
	dec := Circuit{inputID: make(map[string]int), outSet: make(map[string]bool)}
	for i, nj := range enc.Nodes {
		kind, ok := kindByName[nj.Op]
		if !ok {
			return fmt.Errorf("heax: circuit decode: node %d has unknown op %q: %w", i, nj.Op, ErrCorrupt)
		}
		if len(nj.Args) != argCount(kind) {
			return fmt.Errorf("heax: circuit decode: node %d (%s) has %d operands, want %d: %w", i, nj.Op, len(nj.Args), argCount(kind), ErrCorrupt)
		}
		for _, a := range nj.Args {
			if a < 0 || a >= i {
				return fmt.Errorf("heax: circuit decode: node %d (%s) references node %d (operands must reference earlier nodes): %w", i, nj.Op, a, ErrCorrupt)
			}
		}
		n := cnode{kind: kind, step: nj.Step, n2: nj.N2, name: nj.Name}
		if len(nj.Args) > 0 {
			n.args = append([]int(nil), nj.Args...)
		}
		switch kind {
		case kindInput:
			if nj.Name == "" {
				return fmt.Errorf("heax: circuit decode: node %d: input with empty name: %w", i, ErrCorrupt)
			}
			if _, dup := dec.inputID[nj.Name]; dup {
				return fmt.Errorf("heax: circuit decode: node %d: duplicate input %q: %w", i, nj.Name, ErrCorrupt)
			}
			dec.inputID[nj.Name] = i
			dec.inputs = append(dec.inputs, nj.Name)
		case kindMulPlain, kindAddPlain:
			switch {
			case nj.Scalar != nil && (len(nj.Values) > 0 || len(nj.ValuesIm) > 0):
				return fmt.Errorf("heax: circuit decode: node %d (%s) carries both a scalar and a vector payload: %w", i, nj.Op, ErrCorrupt)
			case nj.Scalar != nil:
				if nj.Periodic {
					return fmt.Errorf("heax: circuit decode: node %d (%s): a broadcast constant cannot be periodic: %w", i, nj.Op, ErrCorrupt)
				}
				if !isFinite(*nj.Scalar) {
					return fmt.Errorf("heax: circuit decode: node %d (%s): constant is %g: %w", i, nj.Op, *nj.Scalar, ErrCorrupt)
				}
				n.scalar, n.broadcast = *nj.Scalar, true
			case len(nj.Values) > 0:
				if len(nj.ValuesIm) > 0 && len(nj.ValuesIm) != len(nj.Values) {
					return fmt.Errorf("heax: circuit decode: node %d (%s) has %d imaginary parts for %d values: %w",
						i, nj.Op, len(nj.ValuesIm), len(nj.Values), ErrCorrupt)
				}
				n.vals = make([]complex128, len(nj.Values))
				for j, v := range nj.Values {
					im := 0.0
					if len(nj.ValuesIm) > 0 {
						im = nj.ValuesIm[j]
					}
					if !isFinite(v) || !isFinite(im) {
						return fmt.Errorf("heax: circuit decode: node %d (%s): value %d is %g: %w", i, nj.Op, j, complex(v, im), ErrCorrupt)
					}
					n.vals[j] = complex(v, im)
				}
				n.periodic = nj.Periodic
			default:
				return fmt.Errorf("heax: circuit decode: node %d (%s) has no plaintext payload: %w", i, nj.Op, ErrCorrupt)
			}
		case kindInnerSum:
			if nj.N2 < 1 || nj.N2&(nj.N2-1) != 0 {
				return fmt.Errorf("heax: circuit decode: node %d: InnerSum width %d must be a power of two: %w", i, nj.N2, ErrCorrupt)
			}
		}
		if kind != kindInput && nj.Name != "" {
			return fmt.Errorf("heax: circuit decode: node %d (%s) must not carry an input name: %w", i, nj.Op, ErrCorrupt)
		}
		dec.nodes = append(dec.nodes, n)
	}
	for _, oj := range enc.Outputs {
		if oj.Name == "" {
			return fmt.Errorf("heax: circuit decode: output with empty name: %w", ErrCorrupt)
		}
		if dec.outSet[oj.Name] {
			return fmt.Errorf("heax: circuit decode: duplicate output %q: %w", oj.Name, ErrCorrupt)
		}
		if oj.Node < 0 || oj.Node >= len(dec.nodes) {
			return fmt.Errorf("heax: circuit decode: output %q references node %d of %d: %w", oj.Name, oj.Node, len(dec.nodes), ErrCorrupt)
		}
		dec.outSet[oj.Name] = true
		dec.outputs = append(dec.outputs, circuitOut{name: oj.Name, node: oj.Node})
	}
	*c = dec
	return nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
