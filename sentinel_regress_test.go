package heax_test

// Regression tests for the sentinel-wrapping fixes heaxlint forced:
// every error site the suite flagged must now be branchable with
// errors.Is — string matching was the only option before.

import (
	"encoding/json"
	"errors"
	"testing"

	"heax"
)

// TestCircuitDecodeWrapsErrCorrupt: every structural rejection in
// UnmarshalJSON is errors.Is(err, heax.ErrCorrupt) — serving layers
// map that to the wire's corrupt code instead of an internal error.
func TestCircuitDecodeWrapsErrCorrupt(t *testing.T) {
	blobs := map[string]string{
		"bad version":       `{"version":7,"nodes":[],"outputs":[]}`,
		"unknown op":        `{"version":1,"nodes":[{"op":"Bootstrap"}],"outputs":[]}`,
		"forward reference": `{"version":1,"nodes":[{"op":"Rotate","args":[1],"step":1},{"op":"Input","name":"x"}],"outputs":[]}`,
		"wrong arity":       `{"version":1,"nodes":[{"op":"Input","name":"x"},{"op":"Add","args":[0]}],"outputs":[]}`,
		"empty input name":  `{"version":1,"nodes":[{"op":"Input"}],"outputs":[]}`,
		"duplicate input":   `{"version":1,"nodes":[{"op":"Input","name":"x"},{"op":"Input","name":"x"}],"outputs":[]}`,
		"missing payload":   `{"version":1,"nodes":[{"op":"Input","name":"x"},{"op":"MulPlain","args":[0]}],"outputs":[]}`,
		"double payload":    `{"version":1,"nodes":[{"op":"Input","name":"x"},{"op":"MulPlain","args":[0],"values":[1],"scalar":2}],"outputs":[]}`,
		"bad width":         `{"version":1,"nodes":[{"op":"Input","name":"x"},{"op":"InnerSum","args":[0],"n2":3}],"outputs":[]}`,
		"stray name":        `{"version":1,"nodes":[{"op":"Input","name":"x"},{"op":"Rotate","args":[0],"step":1,"name":"x"}],"outputs":[]}`,
		"bad output node":   `{"version":1,"nodes":[{"op":"Input","name":"x"}],"outputs":[{"name":"y","node":3}]}`,
		"duplicate output":  `{"version":1,"nodes":[{"op":"Input","name":"x"}],"outputs":[{"name":"y","node":0},{"name":"y","node":0}]}`,
		"empty output name": `{"version":1,"nodes":[{"op":"Input","name":"x"}],"outputs":[{"name":"","node":0}]}`,
	}
	for name, blob := range blobs {
		var c heax.Circuit
		err := json.Unmarshal([]byte(blob), &c)
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if !errors.Is(err, heax.ErrCorrupt) {
			t.Errorf("%s: error %q does not wrap ErrCorrupt", name, err)
		}
	}
}

// TestCompileSentinels: structural Compile rejections carry
// ErrInvalidCircuit.
func TestCompileSentinels(t *testing.T) {
	k := newAPIKit(t)

	if _, err := heax.NewCircuit().Compile(k.params, k.evk); !errors.Is(err, heax.ErrInvalidCircuit) {
		t.Errorf("Compile with no outputs: %v, want ErrInvalidCircuit", err)
	}
	if _, err := heax.NewCircuit().RequiredRotations(k.params); !errors.Is(err, heax.ErrInvalidCircuit) {
		t.Errorf("RequiredRotations with no outputs: %v, want ErrInvalidCircuit", err)
	}

	// A periodic payload that does not divide the slot count.
	c := heax.NewCircuit()
	x := c.Input("x")
	c.Output("y", c.MulPlainPeriodic(x, []complex128{1, 2, 3}))
	if _, err := c.Compile(k.params, k.evk); !errors.Is(err, heax.ErrInvalidCircuit) {
		t.Errorf("periodic non-divisor payload: %v, want ErrInvalidCircuit", err)
	}
}

// TestPlanLookupSentinels: unknown outputs and missing inputs are
// typed, not stringly.
func TestPlanLookupSentinels(t *testing.T) {
	k := newAPIKit(t)
	c := heax.NewCircuit()
	x := c.Input("x")
	c.Output("y", c.Add(x, x))
	plan, err := c.Compile(k.params, k.evk)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := plan.OutputLevel("nope"); !errors.Is(err, heax.ErrUnknownOutput) {
		t.Errorf("OutputLevel(nope): %v, want ErrUnknownOutput", err)
	}
	if _, err := plan.Run(map[string]*heax.Ciphertext{}); !errors.Is(err, heax.ErrInputMissing) {
		t.Errorf("Run without inputs: %v, want ErrInputMissing", err)
	}
}
