package heax

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"heax/internal/ckks"
)

// Tracer receives the wall-clock latency of every executed plan step,
// keyed by step kind ("MulRelin", "Rotate", "Rescale", ... — see
// StepKinds). It is the software analogue of HEAX's per-core occupancy
// counters: aggregate step latency tells you which kernel class bounds
// a circuit's throughput. Implementations must be safe for concurrent
// use — steps from one run (and from overlapping runs) report in
// parallel. ObserveStep must be cheap; it runs inside the executor's
// kernel slot.
type Tracer interface {
	ObserveStep(kind string, d time.Duration)
}

// tracerBox wraps a Tracer so the Plan can hold it in an
// atomic.Pointer: the executor's fast path is a single pointer load
// and nil check, adding zero allocations and no synchronization when
// tracing is off.
type tracerBox struct{ t Tracer }

// SetTracer installs (or, with nil, removes) the plan's step tracer.
// Safe to call concurrently with running steps; in-flight steps may
// report to either the old or new tracer.
func (p *Plan) SetTracer(t Tracer) {
	if t == nil {
		p.tracer.Store(nil)
		return
	}
	p.tracer.Store(&tracerBox{t: t})
}

// StepKinds returns the canonical step-kind names a Tracer may
// observe, in a fixed order suitable for pre-registering metric
// children.
func StepKinds() []string {
	out := make([]string, len(stepKindNames))
	copy(out, stepKindNames[:])
	return out
}

// Plan is a compiled circuit: an immutable step list with every level,
// scale, rescale and rotation batch fixed at compile time. A Plan is
// safe for concurrent use — Run may be called from many goroutines and
// RunBatch streams many input sets through the same bounded in-flight
// window, mirroring the paper's double-buffered host queue (Section
// 5.2): steps execute as their operands resolve, out of order across
// independent branches, on the evaluator's worker-pool scheduler, and
// every intermediate lives in a pooled buffer reshaped in place by the
// *Into kernels.
type Plan struct {
	params  *Params
	eval    *Evaluator
	steps   []planStep
	nSlots  int
	inputs  []planInput
	outputs []planOutput
	// consumers[slot] is how many steps read the slot; the executor
	// refcounts it down and recycles non-escaping buffers at zero.
	consumers []int
	// escapes[slot]: the slot is a named output, so its ciphertext is
	// caller-owned and never pooled.
	escapes []bool
	// inputSlot[slot]: the slot is fed by a caller ciphertext and needs
	// no per-run signalling state.
	inputSlot []bool
	// sem bounds concurrently executing steps across all runs.
	sem chan struct{}
	// window bounds how many input sets RunBatch keeps in flight.
	window int
	// bufs pools full-basis intermediate ciphertexts. Ownership protocol
	// (audited by TestPlanFailingStepPoolIntegrity with an instrumented
	// pool): a buffer is held by exactly one party at a time — the pool,
	// exec between get and the slot handoff (on kernel failure exec puts
	// it straight back), or the run slot until the last consumer's
	// refcount decrement puts it back. Poisoned steps never draw
	// buffers, and failed steps publish no ciphertext, so dependents
	// can never return a buffer their producer already reclaimed.
	bufs ctBufPool
	// slotStates recycles the per-run slot-state slices across Run
	// calls, so a steady serving loop does not reallocate executor
	// state per request (the done channels are per-run by construction:
	// a closed channel cannot be reused).
	slotStates sync.Pool
	// tracer, when set, observes per-step kernel latency. Held boxed
	// behind an atomic pointer so the untraced hot path costs one load.
	tracer atomic.Pointer[tracerBox]
	// failStep, when non-nil, injects an error into the named step
	// after its output buffers are drawn — a test seam for exercising
	// the executor's error paths (buffer recycling, ErrDependency
	// poisoning) with real kernels otherwise unable to fail.
	failStep func(idx int) error
}

// ctBufPool is the plan's intermediate-buffer pool behind an interface,
// so tests can swap in an instrumented implementation that detects
// double-put and leaked buffers.
type ctBufPool interface {
	get() *Ciphertext
	put(*Ciphertext)
}

type syncCtPool struct{ p sync.Pool }

func (s *syncCtPool) get() *Ciphertext   { return s.p.Get().(*Ciphertext) }
func (s *syncCtPool) put(ct *Ciphertext) { s.p.Put(ct) }

type planInput struct {
	name string
	slot int
}

type planOutput struct {
	name  string
	slot  int
	level int
	scale float64
}

type stepKind uint8

const (
	stepAdd stepKind = iota
	stepSub
	stepMulRelin
	stepMulPlain
	stepAddPlain
	stepRescale
	stepRotate
	stepRotateHoisted
	stepConjugate
	stepInnerSum
	stepCopy
)

var stepKindNames = [...]string{
	stepAdd:           "Add",
	stepSub:           "Sub",
	stepMulRelin:      "MulRelin",
	stepMulPlain:      "MulPlain",
	stepAddPlain:      "AddPlain",
	stepRescale:       "Rescale",
	stepRotate:        "Rotate",
	stepRotateHoisted: "RotateHoisted",
	stepConjugate:     "ConjugateSlots",
	stepInnerSum:      "InnerSum",
	stepCopy:          "Copy",
}

// planStep is one executable operation of a compiled plan.
type planStep struct {
	kind stepKind
	args []int
	outs []int
	// pt is the payload of plain operations, encoded once at compile
	// time at the inferred level and scale.
	pt     *Plaintext
	rots   []int // rotation step (len 1) or hoisted batch (len > 1)
	n2     int
	level  int
	scale  float64
	lifted bool // compiler-inserted multiply-by-one
}

// Params returns the parameter set the plan was compiled for.
func (p *Plan) Params() *Params { return p.params }

// NumSteps reports how many executable steps the plan holds after CSE,
// pruning and hoisting.
func (p *Plan) NumSteps() int { return len(p.steps) }

// InputNames lists the circuit inputs the plan requires, in declaration
// order. Inputs that do not reach any output are pruned with the rest
// of the dead graph and are not required (Run ignores them if passed).
func (p *Plan) InputNames() []string {
	names := make([]string, len(p.inputs))
	for i, in := range p.inputs {
		names[i] = in.name
	}
	return names
}

// OutputNames lists the circuit outputs in declaration order.
func (p *Plan) OutputNames() []string {
	names := make([]string, len(p.outputs))
	for i, o := range p.outputs {
		names[i] = o.name
	}
	return names
}

func (p *Plan) output(name string) (planOutput, error) {
	for _, o := range p.outputs {
		if o.name == name {
			return o, nil
		}
	}
	return planOutput{}, fmt.Errorf("heax: plan has no output %q: %w", name, ErrUnknownOutput)
}

// OutputLevel reports the level inference assigned to a named output.
func (p *Plan) OutputLevel(name string) (int, error) {
	o, err := p.output(name)
	return o.level, err
}

// OutputScale reports the scale inference assigned to a named output.
func (p *Plan) OutputScale(name string) (float64, error) {
	o, err := p.output(name)
	return o.scale, err
}

// Describe renders the compiled step list — one line per step with its
// slots, level and log2 scale — the plan analogue of an assembly
// listing, for tests and debugging.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %d steps, %d slots, inputs %v\n", len(p.steps), p.nSlots, p.InputNames())
	for i, s := range p.steps {
		fmt.Fprintf(&b, "%3d  %-14s %v -> %v  @L%d scale=2^%.2f", i, stepKindNames[s.kind], s.args, s.outs, s.level, math.Log2(s.scale))
		if len(s.rots) > 0 {
			fmt.Fprintf(&b, " rot%v", s.rots)
		}
		if s.n2 > 0 {
			fmt.Fprintf(&b, " n2=%d", s.n2)
		}
		if s.lifted {
			b.WriteString(" (lift)")
		}
		b.WriteByte('\n')
	}
	outs := make([]string, len(p.outputs))
	for i, o := range p.outputs {
		outs[i] = fmt.Sprintf("%s=s%d@L%d", o.name, o.slot, o.level)
	}
	sort.Strings(outs)
	fmt.Fprintf(&b, "outputs: %s\n", strings.Join(outs, " "))
	return b.String()
}

// runSlot is the per-run state of one value slot.
type runSlot struct {
	done   chan struct{}
	ct     *Ciphertext
	err    error
	refs   int32
	pooled bool
}

// resolvedSlot is the shared already-closed done channel of input slots.
var resolvedSlot = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

func (p *Plan) validateInputs(in map[string]*Ciphertext) error {
	for _, pi := range p.inputs {
		ct, ok := in[pi.name]
		if !ok || ct == nil {
			return fmt.Errorf("heax: plan input %q missing: %w", pi.name, ErrInputMissing)
		}
		if ct.Degree() != 1 {
			return fmt.Errorf("heax: plan input %q has degree %d, want 1: %w", pi.name, ct.Degree(), ErrDegreeMismatch)
		}
		if ct.Level != p.params.MaxLevel() {
			return fmt.Errorf("heax: plan input %q at level %d, want the top level %d: %w",
				pi.name, ct.Level, p.params.MaxLevel(), ErrLevelMismatch)
		}
		if !ckks.ScalesClose(ct.Scale, p.params.DefaultScale()) {
			return fmt.Errorf("heax: plan input %q at scale %g, want the default scale %g: %w",
				pi.name, ct.Scale, p.params.DefaultScale(), ErrScaleMismatch)
		}
	}
	return nil
}

// Run executes the plan on one input set and returns the named output
// ciphertexts (always freshly allocated — inputs are never modified).
// Concurrent Runs share the plan's in-flight window and buffer pool.
func (p *Plan) Run(in map[string]*Ciphertext) (map[string]*Ciphertext, error) {
	return p.RunContext(context.Background(), in)
}

// RunContext is Run with cancellation: when ctx is cancelled, steps
// that have not started skip their kernels and resolve with ctx's
// error (wrapping context.Canceled / DeadlineExceeded), steps already
// executing run to completion, and every pooled buffer is still
// reclaimed — cancellation aborts the dataflow, never its accounting.
// This is how a serving front end drops a plan mid-flight when the
// client disconnects.
func (p *Plan) RunContext(ctx context.Context, in map[string]*Ciphertext) (map[string]*Ciphertext, error) {
	if err := p.validateInputs(in); err != nil {
		return nil, err
	}
	slots := p.getSlots()
	defer p.putSlots(slots)
	for i := range slots {
		slots[i].refs = int32(p.consumers[i])
		// Input slots share the one resolved channel; slots nobody reads
		// (pure outputs) need no signal at all — wg.Wait already orders
		// the final scan after every step.
		switch {
		case p.inputSlot[i]:
			slots[i].done = resolvedSlot
		case p.consumers[i] > 0:
			slots[i].done = make(chan struct{})
		}
	}
	for _, pi := range p.inputs {
		slots[pi.slot].ct = in[pi.name]
	}
	// Every step but the last gets a goroutine; the last (which nothing
	// depends on, by topological order) runs inline, so a single-step
	// plan spawns nothing.
	var wg sync.WaitGroup
	last := len(p.steps) - 1 // always >= 0: binding an output emits at least one step
	wg.Add(last)
	for i := 0; i < last; i++ {
		go func(idx int) {
			defer wg.Done()
			p.runStep(ctx, idx, slots)
		}(i)
	}
	p.runStep(ctx, last, slots)
	wg.Wait()
	// The first failing step in plan order is the root cause: dependents
	// always appear after the step that poisoned them.
	for i := range p.steps {
		if err := slots[p.steps[i].outs[0]].err; err != nil {
			return nil, err
		}
	}
	out := make(map[string]*Ciphertext, len(p.outputs))
	for _, o := range p.outputs {
		out[o.name] = slots[o.slot].ct
	}
	return out, nil
}

// getSlots draws a zeroed per-run slot-state slice from the recycler.
func (p *Plan) getSlots() []runSlot {
	if s, ok := p.slotStates.Get().([]runSlot); ok {
		return s
	}
	return make([]runSlot, p.nSlots)
}

// putSlots clears a run's slot states (dropping ciphertext and channel
// references so they do not outlive the run) and recycles the slice.
func (p *Plan) putSlots(slots []runSlot) {
	for i := range slots {
		slots[i] = runSlot{}
	}
	p.slotStates.Put(slots)
}

// RunBatch streams many input sets through the plan, keeping the
// configured window of them in flight at once (WithBatchWindow,
// default 2 — double buffering). Results are returned in input order;
// on failure the first failing batch's error is returned and the
// corresponding result entries are nil.
func (p *Plan) RunBatch(batches []map[string]*Ciphertext) ([]map[string]*Ciphertext, error) {
	return p.RunBatchContext(context.Background(), batches)
}

// RunBatchContext is RunBatch with cancellation: input sets not yet
// started when ctx is cancelled fail immediately with ctx's error, and
// in-flight sets abort as RunContext does.
func (p *Plan) RunBatchContext(ctx context.Context, batches []map[string]*Ciphertext) ([]map[string]*Ciphertext, error) {
	results := make([]map[string]*Ciphertext, len(batches))
	errs := make([]error, len(batches))
	// A fixed crew of window workers drains the queue in order — the
	// double-buffered host loop: while one input set executes, the next
	// is already being fed in.
	var next atomic.Int64
	next.Store(-1)
	workers := min(p.window, len(batches))
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(batches) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = p.RunContext(ctx, batches[i])
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("heax: plan batch %d: %w", i, err)
		}
	}
	return results, nil
}

func (p *Plan) runStep(ctx context.Context, idx int, slots []runSlot) {
	st := &p.steps[idx]
	var inBuf [2]*Ciphertext
	in := inBuf[:0]
	if len(st.args) > len(inBuf) {
		in = make([]*Ciphertext, 0, len(st.args))
	}
	// Always wait for every operand, even when poisoned or cancelled:
	// the refcount release below must not race the producer's handoff,
	// and upstream steps resolve promptly under cancellation anyway.
	var depErr error
	for _, a := range st.args {
		<-slots[a].done
		if err := slots[a].err; err != nil && depErr == nil {
			depErr = err
		}
		in = append(in, slots[a].ct)
	}
	var err error
	if depErr != nil {
		err = fmt.Errorf("heax: plan step %d (%s): %w", idx, stepKindNames[st.kind], errors.Join(ErrDependency, depErr))
	} else {
		select {
		case p.sem <- struct{}{}:
			// Re-check after the (possibly long) semaphore wait so a
			// cancelled run stops admitting kernels.
			if err = ctx.Err(); err == nil {
				// Timed only around kernel execution (inside the
				// semaphore), so the tracer sees compute latency, not
				// queueing.
				if tb := p.tracer.Load(); tb != nil {
					t0 := time.Now()
					err = p.exec(idx, st, in, slots)
					tb.t.ObserveStep(stepKindNames[st.kind], time.Since(t0))
				} else {
					err = p.exec(idx, st, in, slots)
				}
			}
			<-p.sem
		case <-ctx.Done():
			err = ctx.Err()
		}
		if err != nil {
			err = fmt.Errorf("heax: plan step %d (%s): %w", idx, stepKindNames[st.kind], err)
		}
	}
	for _, o := range st.outs {
		if err != nil {
			slots[o].err = err
		}
		if slots[o].done != nil {
			close(slots[o].done)
		}
	}
	// Release operand references; a non-escaping buffer with no readers
	// left returns to the pool for a later step (or the next run). This
	// runs on every path — success, kernel failure, poisoning and
	// cancellation — and is the ONLY place consumed buffers are
	// reclaimed: a failed producer puts its own drawn outputs back in
	// exec and publishes ct == nil, so the guard below cannot return a
	// buffer twice.
	for _, a := range st.args {
		if atomic.AddInt32(&slots[a].refs, -1) == 0 && slots[a].pooled && slots[a].ct != nil {
			p.bufs.put(slots[a].ct)
		}
	}
}

// exec runs one step's kernel, drawing output storage from the buffer
// pool (intermediates) or allocating it fresh (named outputs).
func (p *Plan) exec(idx int, st *planStep, in []*Ciphertext, slots []runSlot) error {
	var outBuf [1]*Ciphertext
	outs := outBuf[:0]
	if len(st.outs) > len(outBuf) {
		outs = make([]*Ciphertext, 0, len(st.outs))
	}
	outs = outs[:len(st.outs)]
	for i, o := range st.outs {
		if p.escapes[o] {
			// Named outputs are allocated exactly at their compiled level
			// (one shared backing array), like the allocating evaluator
			// calls; the *Into kernel fills in scale and level.
			c0, c1 := p.params.RingQP.NewPolyPair(st.level + 1)
			outs[i] = &Ciphertext{Polys: []*Poly{c0, c1}}
		} else {
			//heax:owns handed to the run slot: execKernel publishes it and the consumers' refcount release repools it
			outs[i] = p.bufs.get()
		}
	}
	err := p.execKernel(idx, st, in, outs)
	if err != nil {
		// A failed step owns its drawn buffers and must return every one
		// exactly once, publishing no ciphertext: dependents observe
		// ct == nil and their refcount release skips the pool, so the
		// buffers cannot come back a second time.
		for i, o := range st.outs {
			if !p.escapes[o] {
				p.bufs.put(outs[i])
			}
		}
		return err
	}
	for i, o := range st.outs {
		slots[o].ct = outs[i]
		slots[o].pooled = !p.escapes[o]
	}
	return nil
}

// execKernel dispatches one step to its kernel behind a recover
// boundary: a panicking kernel (or injected fault) becomes a returned
// error wrapping ErrInternal, so the run poisons through the normal
// dependency path — buffers recycled, dependents resolved — instead of
// killing the process. This is the step-goroutine's own boundary; a
// serving front end cannot recover for it.
func (p *Plan) execKernel(idx int, st *planStep, in, outs []*Ciphertext) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("recovered panic in %s kernel: %v: %w", stepKindNames[st.kind], r, ErrInternal)
		}
	}()
	e := p.eval
	if p.failStep != nil {
		// Injected failure (test seam): taken after the output buffers
		// are drawn, so it exercises exactly the recycling a real kernel
		// failure would. It may also panic, to drive the recover path.
		err = p.failStep(idx)
	}
	if err == nil {
		switch st.kind {
		case stepAdd:
			err = e.inner.AddInto(in[0], in[1], outs[0])
		case stepSub:
			err = e.inner.SubInto(in[0], in[1], outs[0])
		case stepMulRelin:
			err = e.inner.MulRelinInto(in[0], in[1], e.keys.Relin, outs[0])
		case stepMulPlain:
			err = e.inner.MulPlainInto(in[0], st.pt, outs[0])
		case stepAddPlain:
			err = e.inner.AddPlainInto(in[0], st.pt, outs[0])
		case stepRescale:
			err = e.inner.RescaleInto(in[0], outs[0])
		case stepRotate:
			err = e.inner.RotateLeftInto(in[0], st.rots[0], e.keys.Galois, outs[0])
		case stepRotateHoisted:
			err = e.inner.RotateHoistedInto(in[0], st.rots, e.keys.Galois, outs)
		case stepConjugate:
			err = e.inner.ConjugateSlotsInto(in[0], e.keys.Galois, outs[0])
		case stepInnerSum:
			err = e.inner.InnerSumInto(in[0], st.n2, e.keys.Galois, outs[0])
		case stepCopy:
			err = e.inner.CopyInto(in[0], outs[0])
		default:
			err = fmt.Errorf("unknown step kind %d: %w", st.kind, ErrInternal)
		}
	}
	return err
}

// FootprintBytes is a conservative estimate of one run's working set:
// every value slot holding a pooled full-basis degree-1 ciphertext at
// once (2 polynomials × K rows × N coefficients × 8 bytes). Serving
// front ends budget per-tenant memory against it before admitting a
// run.
func (p *Plan) FootprintBytes() int64 {
	return int64(p.nSlots) * 2 * int64(p.params.K()) * int64(p.params.N) * 8
}
