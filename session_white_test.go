package heax

// White-box session tests: by constructing gate futures directly, these
// pin down scheduling-order semantics that black-box tests could only
// probe probabilistically — that every Flush waits for the work
// submitted before it even when another Flush holds the same futures,
// and that the first ErrDependency-poisoned failure (in submission
// order) is the one Flush reports.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

var tinySpec = ParamSpec{Name: "tiny", LogN: 4, QBits: []int{36, 36}, PBits: 37, LogScale: 30}

func tinySession(t *testing.T) *Session {
	t.Helper()
	params, err := NewParams(tinySpec)
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(NewEvaluator(params, nil))
}

// gate returns an unresolved Future and a function resolving it with
// the given error.
func gate() (*Future, func(error)) {
	f := &Future{done: make(chan struct{})}
	return f, func(err error) {
		f.err = err
		close(f.done)
	}
}

// TestSessionConcurrentFlushBothWait: two concurrent Flushes must both
// wait for (and report) an operation submitted before either of them —
// a second Flush may not return early just because the first snapshot
// claimed the pending futures.
func TestSessionConcurrentFlushBothWait(t *testing.T) {
	sess := tinySession(t)
	g, resolve := gate()
	sess.Submit(RescaleOp(g))

	errs := make([]error, 2)
	var started, finished sync.WaitGroup
	for i := range errs {
		started.Add(1)
		finished.Add(1)
		go func(i int) {
			started.Done()
			errs[i] = sess.Flush()
			finished.Done()
		}(i)
	}
	started.Wait()
	time.Sleep(10 * time.Millisecond) // let both flushes block on the gate
	resolve(errors.New("gate failed"))
	finished.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrDependency) {
			t.Fatalf("flush %d: got %v, want the gated failure", i, err)
		}
	}
}

// TestSessionFlushFirstPoisonedDeterministic: when one failure poisons
// several submitted operations, Flush reports the earliest-submitted
// one — every time, regardless of resolution timing.
func TestSessionFlushFirstPoisonedDeterministic(t *testing.T) {
	for round := 0; round < 50; round++ {
		sess := tinySession(t)
		g, resolve := gate()
		sess.Submit(RescaleOp(g))     // first poisoned: Rescale
		sess.Submit(RotateOp(g, 1))   // second poisoned: Rotate
		sess.Submit(InnerSumOp(g, 2)) // third poisoned: InnerSum
		resolve(errors.New("gate failed"))
		err := sess.Flush()
		if !errors.Is(err, ErrDependency) {
			t.Fatalf("round %d: got %v, want ErrDependency", round, err)
		}
		if !strings.Contains(err.Error(), "Rescale") {
			t.Fatalf("round %d: Flush reported %q, want the first-submitted (Rescale) failure", round, err)
		}
	}
}

// TestSessionFlushPrunesOnlyItsSnapshot: a Flush may prune only the
// futures it actually waited on. An operation submitted (and failed)
// while another goroutine's Flush is mid-wait must survive that
// Flush's bookkeeping, so the submitter's own later Flush still
// reports the failure.
func TestSessionFlushPrunesOnlyItsSnapshot(t *testing.T) {
	sess := tinySession(t)
	g1, resolve1 := gate()
	sess.Submit(AddOp(g1, g1)) // future A: blocks the first Flush

	flushDone := make(chan error, 1)
	go func() { flushDone <- sess.Flush() }()
	time.Sleep(10 * time.Millisecond) // first Flush snapshots [A] and blocks

	// Future B resolves with a failure while the first Flush is waiting.
	g2, resolve2 := gate()
	resolve2(errors.New("late failure"))
	fB := sess.Submit(RescaleOp(g2))
	if _, err := fB.Wait(); !errors.Is(err, ErrDependency) {
		t.Fatalf("B: got %v, want ErrDependency", err)
	}

	resolve1(errors.New("gate 1 failed"))
	if err := <-flushDone; !errors.Is(err, ErrDependency) {
		t.Fatalf("first Flush: got %v, want A's failure", err)
	}
	// B was not in the first Flush's snapshot, so it must still be
	// tracked: the second Flush reports it rather than returning nil.
	if err := sess.Flush(); !errors.Is(err, ErrDependency) {
		t.Fatalf("second Flush: got %v, want B's failure", err)
	}
}

// TestSessionFlushReleasesResolved: after a Flush, resolved futures are
// pruned from the session's bookkeeping while unresolved ones stay.
func TestSessionFlushReleasesResolved(t *testing.T) {
	sess := tinySession(t)
	g1, resolve1 := gate()
	resolve1(errors.New("already failed"))
	sess.Submit(AddOp(g1, g1))
	if err := sess.Flush(); !errors.Is(err, ErrDependency) {
		t.Fatalf("got %v, want the gated failure", err)
	}
	sess.mu.Lock()
	left := len(sess.pending)
	sess.mu.Unlock()
	if left != 0 {
		t.Fatalf("resolved futures not pruned: %d left", left)
	}

	g2, resolve2 := gate()
	f := sess.Submit(RescaleOp(g2))
	done := make(chan error, 1)
	go func() { done <- sess.Flush() }()
	select {
	case err := <-done:
		t.Fatalf("Flush returned %v before the pending op resolved", err)
	case <-time.After(10 * time.Millisecond):
	}
	resolve2(errors.New("late"))
	if err := <-done; !errors.Is(err, ErrDependency) {
		t.Fatalf("got %v, want the gated failure", err)
	}
	if _, err := f.Wait(); err == nil {
		t.Fatal("dependent op must carry the gate failure")
	}
}

// TestSessionSubmitContext: a cancelled context abandons queued work —
// while waiting on operands or on the in-flight window — with the
// context's error, and dependents poison as usual.
func TestSessionSubmitContext(t *testing.T) {
	sess := tinySession(t)
	g, resolve := gate()
	ctx, cancel := context.WithCancel(context.Background())

	blocked := sess.SubmitContext(ctx, RescaleOp(g))
	dependent := sess.Submit(RescaleOp(blocked))
	cancel()
	if _, err := blocked.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submission must carry context.Canceled, got %v", err)
	}
	if _, err := dependent.Wait(); !errors.Is(err, ErrDependency) || !errors.Is(err, context.Canceled) {
		t.Fatalf("dependent must poison with ErrDependency wrapping the cancellation, got %v", err)
	}
	resolve(nil) // the gate resolving later must not disturb anything
	if err := sess.Flush(); err == nil {
		t.Fatal("Flush must report the cancelled chain")
	}

	// A fresh, uncancelled context still runs.
	g2, resolve2 := gate()
	f := sess.SubmitContext(context.Background(), RescaleOp(g2))
	resolve2(errors.New("operand failed"))
	if _, err := f.Wait(); !errors.Is(err, ErrDependency) {
		t.Fatalf("want ErrDependency, got %v", err)
	}
	sess.Flush()
}
