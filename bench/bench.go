// Package bench exports the reproduction's table harness: every table
// and figure of the HEAX evaluation (Section 6) regenerated from the
// resource models, the architecture generator, the cycle-level pipeline
// simulator, and the Go CKKS baseline measured on the local machine —
// each next to the paper's reported numbers. cmd/heax-bench is a thin
// driver over this package.
package bench

import (
	ibench "heax/internal/bench"
)

// CPUMeasurements holds the locally measured CPU-baseline timings that
// fill the Tables 7-8 CPU columns.
type CPUMeasurements = ibench.CPUMeasurements

// Table is a rendered-comparison table (Render pretty-prints it).
type Table = ibench.Table

// MeasureCPU measures the CPU baseline for the Table 2 parameter sets;
// quick shortens the measurement windows.
func MeasureCPU(quick bool) (CPUMeasurements, error) { return ibench.MeasureCPU(quick) }

// AllTables renders every table and figure of the evaluation, using the
// supplied CPU measurements for the CPU columns (empty maps leave those
// columns blank).
func AllTables(cpu CPUMeasurements) (string, error) { return ibench.AllTables(cpu) }

// WorkerSweepTable sweeps the ring worker count (1, 2, 4, ..., NumCPU)
// and reports KeySwitch/MulRelin scaling for the pipelined tile
// scheduler.
func WorkerSweepTable(quick bool) (Table, error) { return ibench.WorkerSweepTable(quick) }

// EmptyCPUMeasurements returns a CPUMeasurements with all maps
// initialized and no samples — the -nocpu path of heax-bench.
func EmptyCPUMeasurements() CPUMeasurements {
	return CPUMeasurements{
		NTT: map[string]float64{}, INTT: map[string]float64{}, Dyadic: map[string]float64{},
		KeySwitch: map[string]float64{}, MulRelin: map[string]float64{},
	}
}
