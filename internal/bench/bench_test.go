package bench

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}, {"wide-cell", "3"}},
	}
	out := tb.Render()
	for _, want := range []string{"== demo ==", "long-header", "wide-cell", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestStaticTables(t *testing.T) {
	if got := Table1Boards(); len(got.Rows) != 2 {
		t.Fatalf("Table 1 rows = %d", len(got.Rows))
	}
	if got := Table3Cores(); len(got.Rows) != 3 {
		t.Fatalf("Table 3 rows = %d", len(got.Rows))
	}
	if got := Table4Modules(); len(got.Rows) != 12 {
		t.Fatalf("Table 4 rows = %d", len(got.Rows))
	}
	if got := WordSizeAblationTable(); len(got.Rows) != 3 {
		t.Fatalf("word-size rows = %d", len(got.Rows))
	}
}

func TestGeneratedTables(t *testing.T) {
	t2, err := Table2Params()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t2.Rows {
		if row[2] != row[3] {
			t.Errorf("Table 2 %s: modulus bits %s != paper %s", row[0], row[3], row[2])
		}
		if row[5] != "true" || row[6] != "true" {
			t.Errorf("Table 2 %s: constraint violated: %v", row[0], row)
		}
	}
	t5, err := Table5Architectures()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t5.Rows {
		if row[4] != "true" {
			t.Errorf("Table 5 %s/%s: generated %q != paper %q", row[0], row[1], row[2], row[3])
		}
	}
	if _, err := Table6Designs(); err != nil {
		t.Fatal(err)
	}
	f2t, err := Fig2AccessPattern()
	if err != nil {
		t.Fatal(err)
	}
	if len(f2t.Rows) != 12 {
		t.Fatalf("Fig 2 trace rows = %d, want 12", len(f2t.Rows))
	}
	f4, err := Fig4PipelineAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Rows) != 4 {
		t.Fatalf("Fig 4 rows = %d", len(f4.Rows))
	}
	f6, gantt, err := Fig6Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Rows) != 4 || gantt == "" {
		t.Fatalf("Fig 6: rows %d, gantt empty=%v", len(f6.Rows), gantt == "")
	}
	ab, err := AblationBuffers()
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Rows) != 5 {
		t.Fatalf("buffer ablation rows = %d", len(ab.Rows))
	}
	s5, err := Sec5System()
	if err != nil {
		t.Fatal(err)
	}
	if len(s5.Rows) != 4 {
		t.Fatalf("Sec 5 rows = %d", len(s5.Rows))
	}
	sc, err := ScalabilityTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Rows) != 2 {
		t.Fatalf("scalability rows = %d", len(sc.Rows))
	}
}

// Tables 7/8 with and without CPU measurements; the quick CPU measurement
// exercises the whole baseline across all three parameter sets.
func TestPerfTablesWithCPU(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU measurement skipped in -short mode")
	}
	cpu, err := MeasureCPU(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range []string{"Set-A", "Set-B", "Set-C"} {
		for name, m := range map[string]map[string]float64{
			"NTT": cpu.NTT, "INTT": cpu.INTT, "Dyadic": cpu.Dyadic,
			"KeySwitch": cpu.KeySwitch, "MulRelin": cpu.MulRelin,
		} {
			if m[set] <= 0 {
				t.Errorf("%s %s: no measurement", set, name)
			}
		}
	}
	// Larger parameter sets must be slower per ciphertext op.
	if cpu.KeySwitch["Set-A"] <= cpu.KeySwitch["Set-C"] {
		t.Error("Set-A KeySwitch should be faster than Set-C")
	}
	t7, err := Table7LowLevel(cpu)
	if err != nil {
		t.Fatal(err)
	}
	if len(t7.Rows) != 12 {
		t.Fatalf("Table 7 rows = %d", len(t7.Rows))
	}
	t8, err := Table8HighLevel(cpu)
	if err != nil {
		t.Fatal(err)
	}
	if len(t8.Rows) != 8 {
		t.Fatalf("Table 8 rows = %d", len(t8.Rows))
	}
	// Empty measurements must render placeholders, not crash.
	empty := CPUMeasurements{
		NTT: map[string]float64{}, INTT: map[string]float64{}, Dyadic: map[string]float64{},
		KeySwitch: map[string]float64{}, MulRelin: map[string]float64{},
	}
	if _, err := Table7LowLevel(empty); err != nil {
		t.Fatal(err)
	}
	if _, err := Table8HighLevel(empty); err != nil {
		t.Fatal(err)
	}
}
