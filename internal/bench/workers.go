package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"heax/internal/ckks"
)

// SweepWorkerCounts returns the worker counts the scaling sweep visits:
// 1, 2, 4, ... capped at NumCPU, always including NumCPU itself.
func SweepWorkerCounts() []int {
	max := runtime.NumCPU()
	var counts []int
	for w := 1; w < max; w <<= 1 {
		counts = append(counts, w)
	}
	return append(counts, max)
}

// WorkerSweepTable measures KeySwitch and MulRelin at every sweep worker
// count for each Table 2 parameter set — the CPU analogue of the paper's
// core-count scaling discussion (Section 6.4): how far the 2-D
// digit×prime tile scheduler converts cores into single-op latency.
// quick mode shortens the measurement windows.
func WorkerSweepTable(quick bool) (Table, error) {
	window := 300 * time.Millisecond
	if quick {
		window = 30 * time.Millisecond
	}
	tb := Table{
		Title: "Worker scaling — pipelined key switch (2-D digit×prime tiles)",
		Note: fmt.Sprintf("GOMAXPROCS=%d NumCPU=%d; workers=1 is the sequential oracle path",
			runtime.GOMAXPROCS(0), runtime.NumCPU()),
		Header: []string{"set", "workers", "KeySwitch ms", "KS ops/s", "KS speedup", "MulRelin ms", "MR ops/s", "MR speedup"},
	}
	for _, spec := range ckks.StandardSets {
		params, err := ckks.NewParams(spec)
		if err != nil {
			return tb, fmt.Errorf("bench: %s: %w", spec.Name, err)
		}
		kg := ckks.NewKeyGenerator(params, 1)
		sk := kg.GenSecretKey()
		rlk := kg.GenRelinearizationKey(sk)
		eval := ckks.NewEvaluator(params)
		ctx := params.RingQP
		rng := rand.New(rand.NewSource(2))
		c := randomPoly(ctx, params.K(), rng)
		ct1 := randomCiphertext(params, rng)
		ct2 := randomCiphertext(params, rng)

		var baseKS, baseMR float64
		for _, workers := range SweepWorkerCounts() {
			ctx.SetWorkers(workers)
			ks := opsPerSec(window, func() {
				eval.KeySwitchPoly(c, &rlk.SwitchingKey)
			})
			mr := opsPerSec(window, func() {
				if _, err := eval.MulRelin(ct1, ct2, rlk); err != nil {
					panic(err)
				}
			})
			if workers == 1 {
				baseKS, baseMR = ks, mr
			}
			tb.Rows = append(tb.Rows, []string{
				spec.Name,
				fmt.Sprintf("%d", workers),
				fmt.Sprintf("%.2f", 1e3/ks),
				fmt.Sprintf("%.1f", ks),
				fmt.Sprintf("%.2fx", ks/baseKS),
				fmt.Sprintf("%.2f", 1e3/mr),
				fmt.Sprintf("%.1f", mr),
				fmt.Sprintf("%.2fx", mr/baseMR),
			})
		}
		ctx.Close() // this set's context is done; release its pool workers
	}
	return tb, nil
}
