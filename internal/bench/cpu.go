package bench

import (
	"fmt"
	"math/rand"
	"time"

	"heax/internal/ckks"
	"heax/internal/ring"
)

// CPUMeasurements holds measured single-thread throughput (operations per
// second) of the Go CKKS baseline, per parameter set name — the "CPU"
// columns of Tables 7 and 8. (The paper measured SEAL 3.3 on a 1.8 GHz
// Xeon Silver 4108; absolute numbers differ with hardware and language,
// the comparison shape is what must hold.)
type CPUMeasurements struct {
	NTT, INTT, Dyadic, KeySwitch, MulRelin map[string]float64
}

// MeasureCPU times the baseline for every Table 2 set. quick mode uses
// shorter measurement windows (for tests); full mode gives steadier
// numbers for reports.
func MeasureCPU(quick bool) (CPUMeasurements, error) {
	window := 400 * time.Millisecond
	if quick {
		window = 40 * time.Millisecond
	}
	m := CPUMeasurements{
		NTT: map[string]float64{}, INTT: map[string]float64{}, Dyadic: map[string]float64{},
		KeySwitch: map[string]float64{}, MulRelin: map[string]float64{},
	}
	for _, spec := range ckks.StandardSets {
		params, err := ckks.NewParams(spec)
		if err != nil {
			return m, fmt.Errorf("bench: %s: %w", spec.Name, err)
		}
		kg := ckks.NewKeyGenerator(params, 1)
		sk := kg.GenSecretKey()
		rlk := kg.GenRelinearizationKey(sk)
		eval := ckks.NewEvaluator(params)
		ctx := params.RingQP
		rng := rand.New(rand.NewSource(2))

		// Low-level ops are per single residue polynomial, as in Table 7.
		tb := ctx.Tables[0]
		poly := make([]uint64, params.N)
		for i := range poly {
			poly[i] = rng.Uint64() % tb.Mod.P
		}
		m.NTT[spec.Name] = opsPerSec(window, func() { tb.Forward(poly) })
		m.INTT[spec.Name] = opsPerSec(window, func() { tb.Inverse(poly) })

		a := append([]uint64(nil), poly...)
		out := make([]uint64, params.N)
		mod := tb.Mod
		m.Dyadic[spec.Name] = opsPerSec(window, func() {
			for i := range out {
				out[i] = mod.MulMod(a[i], poly[i])
			}
		})

		// High-level ops (Table 8) at the top level.
		c := randomPoly(ctx, params.K(), rng)
		m.KeySwitch[spec.Name] = opsPerSec(window, func() {
			eval.KeySwitchPoly(c, &rlk.SwitchingKey)
		})

		ct1 := randomCiphertext(params, rng)
		ct2 := randomCiphertext(params, rng)
		m.MulRelin[spec.Name] = opsPerSec(window, func() {
			if _, err := eval.MulRelin(ct1, ct2, rlk); err != nil {
				panic(err)
			}
		})
	}
	return m, nil
}

func randomPoly(ctx *ring.Context, rows int, rng *rand.Rand) *ring.Poly {
	p := ctx.NewPoly(rows)
	for i := 0; i < rows; i++ {
		prime := ctx.Basis.Primes[i]
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = rng.Uint64() % prime
		}
	}
	return p
}

func randomCiphertext(params *ckks.Params, rng *rand.Rand) *ckks.Ciphertext {
	rows := params.K()
	return &ckks.Ciphertext{
		Polys: []*ring.Poly{randomPoly(params.RingQP, rows, rng), randomPoly(params.RingQP, rows, rng)},
		Scale: params.DefaultScale(),
		Level: params.MaxLevel(),
	}
}

// opsPerSec runs f repeatedly for at least the window and returns the
// rate.
func opsPerSec(window time.Duration, f func()) float64 {
	// Warm up once.
	f()
	start := time.Now()
	n := 0
	for time.Since(start) < window {
		f()
		n++
	}
	return float64(n) / time.Since(start).Seconds()
}
