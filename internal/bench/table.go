// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section 6) from this reproduction's
// models, simulators and CPU baseline, side by side with the paper's
// reported numbers. cmd/heax-bench prints the tables; bench_test.go wires
// them into `go test -bench`.
package bench

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Render formats the table as aligned ASCII.
func (t Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

func f0(x float64) string { return fmt.Sprintf("%.0f", x) }
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func d(x int) string      { return fmt.Sprintf("%d", x) }
