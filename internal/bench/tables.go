package bench

import (
	"fmt"
	"strings"

	"heax/internal/ckks"
	"heax/internal/core"
	"heax/internal/host"
	"heax/internal/hwsim"
	"heax/internal/ntt"
	"heax/internal/primes"
	"heax/internal/xfer"
)

// Table1Boards renders the board inventory (paper Table 1).
func Table1Boards() Table {
	t := Table{
		Title:  "Table 1: FPGA boards",
		Header: []string{"board", "chip", "DSP", "REG", "ALM", "BRAM bits", "M20K", "DRAM chnl", "DRAM GB/s", "PCIe GB/s", "clock MHz"},
	}
	for _, b := range core.Boards {
		t.Rows = append(t.Rows, []string{
			b.Name, b.Chip, d(b.DSP), d(b.REG), d(b.ALM), d(b.BRAMBits), d(b.M20K),
			d(b.DRAMChannels), d(b.DRAMGBps), f2(b.PCIeGBps), d(b.FreqMHz),
		})
	}
	return t
}

// Table2Params realizes each parameter set and verifies the Table 2
// constraints (prime count, total modulus bits, 52-bit primes, NTT
// friendliness).
func Table2Params() (Table, error) {
	t := Table{
		Title:  "Table 2: HE parameter sets",
		Header: []string{"set", "n", "log(qp)+1 paper", "log(qp)+1 built", "k", "primes < 2^52", "all ≡ 1 mod 2n"},
	}
	for i, spec := range ckks.StandardSets {
		params, err := ckks.NewParams(spec)
		if err != nil {
			return t, err
		}
		all := append(append([]uint64{}, params.Q...), params.P)
		small, friendly := true, true
		for _, p := range all {
			if p >= 1<<52 {
				small = false
			}
			if p%(2*uint64(params.N)) != 1 {
				friendly = false
			}
		}
		t.Rows = append(t.Rows, []string{
			spec.Name, d(params.N), d(core.ParamSets[i].ModulusBits()), d(params.TotalModulusBits()),
			d(params.K()), fmt.Sprint(small), fmt.Sprint(friendly),
		})
	}
	return t, nil
}

// Table3Cores renders the per-core costs (calibration data from the
// paper's synthesis).
func Table3Cores() Table {
	t := Table{
		Title:  "Table 3: computation cores",
		Note:   "per-core DSP/REG/ALM are synthesis results transcribed from the paper (no RTL toolchain in this reproduction); pipeline depths feed the simulator",
		Header: []string{"core", "DSP", "REG", "ALM", "stages"},
	}
	for _, k := range []core.CoreKind{core.DyadicCore, core.NTTCore, core.INTTCore} {
		c := core.PaperCoreCosts[k]
		t.Rows = append(t.Rows, []string{k.String(), d(c.DSP), d(c.REG), d(c.ALM), d(c.Stages)})
	}
	return t
}

// Table4Modules compares the module model against the paper's module
// table, and the simulator's measured cycles against both.
func Table4Modules() Table {
	t := Table{
		Title: "Table 4: basic modules (BRAM at n=2^13, cycles at n=2^12)",
		Note:  "cycles(model) come from the closed forms validated by hwsim; the paper's MULT cycle entries for 16/32 cores disagree with its own Table 7 throughput (see EXPERIMENTS.md)",
		Header: []string{"module", "cores", "DSP", "DSP(paper)", "REG", "REG(paper)", "ALM", "ALM(paper)",
			"BRAM bits", "BRAM(paper)", "cycles", "cycles(paper)"},
	}
	for _, kind := range []core.ModuleKind{core.MULTModule, core.NTTModule, core.INTTModule} {
		for _, row := range core.PaperModules[kind] {
			r := core.ModuleResources(kind, row.Cores, 1<<13)
			cyc := core.ModuleCycles(kind, row.Cores, 1<<12)
			t.Rows = append(t.Rows, []string{
				kind.String(), d(row.Cores), d(r.DSP), d(row.DSP), d(r.REG), d(row.REG),
				d(r.ALM), d(row.ALM), d(r.BRAMBits), d(row.BRAMBits), d(cyc), d(row.Cycles),
			})
		}
	}
	return t
}

// Table5Architectures runs the generator for each evaluated configuration
// and compares with the paper's architecture strings.
func Table5Architectures() (Table, error) {
	t := Table{
		Title:  "Table 5: KeySwitch architectures (generated vs paper)",
		Header: []string{"board", "set", "generated", "paper", "match"},
	}
	for _, cfg := range core.PaperArchitectures {
		b, err := core.BoardByName(cfg.Board)
		if err != nil {
			return t, err
		}
		set, err := paramSetByName(cfg.Set)
		if err != nil {
			return t, err
		}
		got, err := core.GenerateArch(b, set)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			cfg.Board, cfg.Set, got.String(), cfg.Arch.String(), fmt.Sprint(got == cfg.Arch),
		})
	}
	return t, nil
}

// Table6Designs compares full-design resources with the paper.
func Table6Designs() (Table, error) {
	t := Table{
		Title: "Table 6: complete-design resource utilization",
		Note:  "DSP/REG/ALM are module sums (the paper's totals are too); BRAM columns follow the memory-inventory model; Arria 10 deviations reflect Stratix-calibrated module costs",
		Header: []string{"board", "set", "DSP", "DSP(paper)", "REG", "REG(paper)", "ALM", "ALM(paper)",
			"BRAM bits", "BRAM(paper)", "M20K", "M20K(paper)", "MHz"},
	}
	for _, row := range core.PaperDesigns {
		des, err := designFor(row.Board, row.Set)
		if err != nil {
			return t, err
		}
		r := des.Resources()
		t.Rows = append(t.Rows, []string{
			row.Board, row.Set, d(r.DSP), d(row.DSP), d(r.REG), d(row.REG), d(r.ALM), d(row.ALM),
			d(r.BRAMBits), d(row.BRAMBits), d(r.M20K), d(row.M20K), d(row.FreqMHz),
		})
	}
	return t, nil
}

// Table7LowLevel builds the low-level throughput comparison. cpu may be
// zero-valued maps, in which case only model and paper columns appear.
func Table7LowLevel(cpu CPUMeasurements) (Table, error) {
	t := Table{
		Title: "Table 7: low-level operations (ops/sec)",
		Note:  "CPU(go) is this repo's baseline on this machine; CPU(paper) is SEAL 3.3 on a 1.8 GHz Xeon; HEAX(model) is cycle-exact and matches HEAX(paper)",
		Header: []string{"board", "set", "op", "CPU(go)", "CPU(paper)", "HEAX(model)", "HEAX(paper)",
			"speedup(go)", "speedup(paper)"},
	}
	for _, row := range core.PaperLowLevel {
		des, err := designFor(row.Board, row.Set)
		if err != nil {
			return t, err
		}
		p := core.Perf{Design: des}
		add := func(op string, cpuGo, cpuPaper, model, paper float64) {
			sp := "-"
			if cpuGo > 0 {
				sp = f1(model / cpuGo)
			}
			t.Rows = append(t.Rows, []string{
				row.Board, row.Set, op, f0(cpuGo), f0(cpuPaper), f0(model), f0(paper),
				sp, f1(paper / cpuPaper),
			})
		}
		add("NTT", cpu.NTT[row.Set], row.NTTCPU, p.NTTOps(), row.NTTHEAX)
		add("INTT", cpu.INTT[row.Set], row.INTTCPU, p.INTTOps(), row.INTTHEAX)
		add("Dyadic", cpu.Dyadic[row.Set], row.DyadicCPU, p.DyadicOps(), row.DyadicHEAX)
	}
	return t, nil
}

// Table8HighLevel builds the high-level throughput comparison.
func Table8HighLevel(cpu CPUMeasurements) (Table, error) {
	t := Table{
		Title: "Table 8: high-level operations (ops/sec)",
		Note:  "same conventions as Table 7; KeySwitch interval additionally validated by the pipeline simulator",
		Header: []string{"board", "set", "op", "CPU(go)", "CPU(paper)", "HEAX(model)", "HEAX(paper)",
			"speedup(go)", "speedup(paper)"},
	}
	for _, row := range core.PaperHighLevel {
		des, err := designFor(row.Board, row.Set)
		if err != nil {
			return t, err
		}
		p := core.Perf{Design: des}
		add := func(op string, cpuGo, cpuPaper, model, paper float64) {
			sp := "-"
			if cpuGo > 0 {
				sp = f1(model / cpuGo)
			}
			t.Rows = append(t.Rows, []string{
				row.Board, row.Set, op, f0(cpuGo), f0(cpuPaper), f0(model), f0(paper),
				sp, f1(paper / cpuPaper),
			})
		}
		add("KeySwitch", cpu.KeySwitch[row.Set], row.KeySwitchCPU, p.KeySwitchOps(), row.KeySwitchHEAX)
		add("MULT+ReLin", cpu.MulRelin[row.Set], row.MulRelinCPU, p.MulRelinOps(), row.MulRelinHEAX)
	}
	return t, nil
}

// Fig2AccessPattern renders the NTT access-pattern trace for a small
// instance (the Figure 2 diagram).
func Fig2AccessPattern() (Table, error) {
	ps, err := primes.NTTPrimes(30, 16, 1)
	if err != nil {
		return Table{}, err
	}
	tb, err := ntt.NewTables(ps[0], 16)
	if err != nil {
		return Table{}, err
	}
	sim, err := hwsim.NewNTTModuleSim(tb, 2, false)
	if err != nil {
		return Table{}, err
	}
	sim.Record = true
	a := make([]uint64, 16)
	sim.Transform(a)
	t := Table{
		Title:  "Figure 2: NTT access pattern (n=16, nc=2, ME width 4)",
		Header: []string{"stage", "step", "type", "ME rows read"},
	}
	for _, rec := range sim.Trace {
		typ := "Type 2"
		if rec.Type1 {
			typ = "Type 1"
		}
		t.Rows = append(t.Rows, []string{d(rec.Stage), d(rec.Step), typ, fmt.Sprint(rec.MEAddrs)})
	}
	return t, nil
}

// Fig4PipelineAblation measures the basic-vs-optimized pipeline cost on
// real transforms (the Figure 4 optimization).
func Fig4PipelineAblation() (Table, error) {
	t := Table{
		Title:  "Figure 4: NTT pipeline ablation (n=2^12)",
		Header: []string{"cores", "optimized cycles", "basic cycles", "slowdown", "paper bound (logn+t1)/logn"},
	}
	ps, err := primes.NTTPrimes(44, 1<<12, 1)
	if err != nil {
		return t, err
	}
	tb, err := ntt.NewTables(ps[0], 1<<12)
	if err != nil {
		return t, err
	}
	for _, nc := range []int{4, 8, 16, 32} {
		opt, err := hwsim.NewNTTModuleSim(tb, nc, false)
		if err != nil {
			return t, err
		}
		basic, err := hwsim.NewNTTModuleSim(tb, nc, false)
		if err != nil {
			return t, err
		}
		basic.Mode = hwsim.BasicPipeline
		a := make([]uint64, 1<<12)
		b := make([]uint64, 1<<12)
		opt.Transform(a)
		basic.Transform(b)
		logn := 12
		logw := 0
		for 1<<logw < 2*nc {
			logw++
		}
		t1 := logn - logw
		bound := float64(logn+t1) / float64(logn)
		t.Rows = append(t.Rows, []string{
			d(nc), d(int(opt.Cycles)), d(int(basic.Cycles)),
			f2(float64(basic.Cycles) / float64(opt.Cycles)), f2(bound),
		})
	}
	return t, nil
}

// Fig6Pipeline simulates the KeySwitch pipeline per configuration and
// returns the interval comparison plus a Gantt rendering for Set-B.
func Fig6Pipeline() (Table, string, error) {
	t := Table{
		Title:  "Figure 6: KeySwitch pipeline simulation",
		Header: []string{"board", "set", "interval (sim)", "interval (closed form)", "INTT0 util", "ops/s @ clock"},
	}
	var gantt string
	for _, cfg := range core.PaperArchitectures {
		set, err := paramSetByName(cfg.Set)
		if err != nil {
			return t, "", err
		}
		b, err := core.BoardByName(cfg.Board)
		if err != nil {
			return t, "", err
		}
		rep := hwsim.SimulateKeySwitchPipeline(hwsim.PipelineConfig{Arch: cfg.Arch, Set: set}, 64, false)
		closed := cfg.Arch.KeySwitchCycles(set)
		ops := float64(b.FreqMHz) * 1e6 / rep.Interval
		t.Rows = append(t.Rows, []string{
			cfg.Board, cfg.Set, f0(rep.Interval), d(closed),
			f2(rep.Utilization["INTT0"]), f0(ops),
		})
		if cfg.Board == core.BoardStratix10.Name && cfg.Set == "Set-B" {
			tr := hwsim.SimulateKeySwitchPipeline(hwsim.PipelineConfig{Arch: cfg.Arch, Set: set}, 6, true)
			gantt = hwsim.RenderGantt(tr, int64(rep.Interval)/12+1, 100)
		}
	}
	return t, gantt, nil
}

// AblationBuffers quantifies the f1/f2 buffer sizing (the Section 4.3
// data dependencies): undersized buffers reintroduce pipeline stalls.
func AblationBuffers() (Table, error) {
	t := Table{
		Title:  "Ablation: KeySwitch buffer sizing (Stratix 10, Set-B)",
		Header: []string{"f1", "f2", "interval", "vs closed form"},
	}
	set := core.ParamSetB
	arch := core.DeriveArch(core.BoardStratix10, set, 16)
	closed := float64(arch.KeySwitchCycles(set))
	for _, c := range []struct{ f1, f2 int }{{1, 1}, {2, 15}, {4, 2}, {4, 15}, {0, 0}} {
		rep := hwsim.SimulateKeySwitchPipeline(hwsim.PipelineConfig{Arch: arch, Set: set, F1: c.f1, F2: c.f2}, 48, false)
		f1s, f2s := d(c.f1), d(c.f2)
		if c.f1 == 0 {
			f1s, f2s = d(arch.F1()), d(arch.F2(set.LogN))
		}
		t.Rows = append(t.Rows, []string{f1s, f2s, f0(rep.Interval), f2(rep.Interval / closed)})
	}
	return t, nil
}

// WordSizeAblationTable renders the Section 4 word-size study.
func WordSizeAblationTable() Table {
	t := Table{
		Title:  "Ablation: native word size (Section 4)",
		Header: []string{"set", "k @ w=54", "k @ w=64", "DSP bank @54", "DSP bank @64", "net DSP reduction"},
		Note:   "paper reports 1.4-2.25x depending on parameters",
	}
	for _, r := range core.WordSizeAblationTable() {
		t.Rows = append(t.Rows, []string{
			r.Set.Name, d(r.K54), d(r.K64), d(r.DSP54), d(r.DSP64), f2(r.NetReduction),
		})
	}
	return t
}

// Sec5System renders the DRAM streaming and PCIe feasibility analyses.
func Sec5System() (Table, error) {
	t := Table{
		Title: "Section 5: system data flow",
		Header: []string{"board", "set", "keys", "ksk Mb/op", "interval µs", "DRAM GB/s needed",
			"DRAM GB/s avail", "MULT PCIe-bound", "f1 buffers"},
	}
	for _, cfg := range core.EvaluatedConfigs() {
		des, err := core.StandardDesign(cfg.Board, cfg.Set)
		if err != nil {
			return t, err
		}
		inv := des.MemoryInventory()
		where := "BRAM"
		if inv.KeysOnDRAM {
			where = "DRAM"
		}
		dram := xfer.DRAMStreaming(des)
		feed := xfer.MULTFeed(des)
		t.Rows = append(t.Rows, []string{
			cfg.Board.Name, cfg.Set.Name, where,
			f1(float64(dram.BitsPerKeySwitch) / 1e6),
			f1(dram.IntervalSec * 1e6), f2(dram.RequiredGBps), f0(dram.AvailableGBps),
			fmt.Sprint(feed.PCIeBound), d(des.Arch.F1()),
		})
	}
	return t, nil
}

// HostStreamingTable quantifies the Section 5 host-side design: achieved
// throughput when streaming operations over PCIe, with and without the
// DRAM memory map, against the compute bound of Tables 7-8.
func HostStreamingTable() (Table, error) {
	t := Table{
		Title: "Section 5.2: host streaming (ops/s achieved vs compute bound)",
		Note:  "'mapped' keeps results (then operands too) in device DRAM via the Section 5.1 memory map",
		Header: []string{"board", "set", "op", "compute bound", "PCIe both ways", "mapped results",
			"mapped both", "bound (plain)"},
	}
	for _, cfg := range core.EvaluatedConfigs() {
		d, err := core.StandardDesign(cfg.Board, cfg.Set)
		if err != nil {
			return t, err
		}
		for _, kind := range []host.OpKind{host.OpMult, host.OpKeySwitch} {
			s, err := host.StudyMemoryMap(d, kind, 128)
			if err != nil {
				return t, err
			}
			boundBy := "compute"
			if s.Plain.TransferBound {
				boundBy = "PCIe"
			}
			t.Rows = append(t.Rows, []string{
				cfg.Board.Name, cfg.Set.Name, kind.String(),
				f0(s.Plain.ComputeBoundOps), f0(s.Plain.AchievedOps),
				f0(s.MapResults.AchievedOps), f0(s.MapBoth.AchievedOps), boundBy,
			})
		}
	}
	return t, nil
}

// SweepTable renders the INTT0-width sweep behind the scalability claim:
// throughput doubles with module width until a board resource runs out,
// and the widest feasible point is exactly the paper's configuration.
func SweepTable() Table {
	t := Table{
		Title:  "Sweep: KeySwitch throughput vs INTT0 width",
		Header: []string{"board", "set", "ncINTT0", "KeySwitch ops/s", "DSP", "ALM", "feasible", "limited by"},
	}
	for _, cfg := range core.EvaluatedConfigs() {
		for _, p := range core.SweepINTT0(cfg.Board, cfg.Set) {
			lim := p.LimitedBy
			if lim == "" {
				lim = "-"
			}
			t.Rows = append(t.Rows, []string{
				cfg.Board.Name, cfg.Set.Name, d(p.NcINTT0), f0(p.KeySwitchOps),
				d(p.Resources.DSP), d(p.Resources.ALM), fmt.Sprint(p.Feasible), lim,
			})
		}
	}
	return t
}

// ScalabilityTable renders the Section 6.3 scalability claim.
func ScalabilityTable() (Table, error) {
	t := Table{
		Title:  "Section 6.3: scalability (Set-A on both boards)",
		Header: []string{"metric", "Arria 10", "Stratix 10", "ratio"},
	}
	a10, err := designFor("Arria10", "Set-A")
	if err != nil {
		return t, err
	}
	s10, err := designFor("Stratix10", "Set-A")
	if err != nil {
		return t, err
	}
	ra, rs := a10.Resources(), s10.Resources()
	pa := core.Perf{Design: a10}
	ps := core.Perf{Design: s10}
	t.Rows = append(t.Rows, []string{"DSP", d(ra.DSP), d(rs.DSP), f2(float64(rs.DSP) / float64(ra.DSP))})
	t.Rows = append(t.Rows, []string{"KeySwitch ops/s", f0(pa.KeySwitchOps()), f0(ps.KeySwitchOps()),
		f2(ps.KeySwitchOps() / pa.KeySwitchOps())})
	return t, nil
}

// AllTables renders every experiment, optionally with CPU measurements.
func AllTables(cpu CPUMeasurements) (string, error) {
	var parts []string
	add := func(t Table, err error) error {
		if err != nil {
			return err
		}
		parts = append(parts, t.Render())
		return nil
	}
	if err := add(Table1Boards(), nil); err != nil {
		return "", err
	}
	t2, err := Table2Params()
	if err := add(t2, err); err != nil {
		return "", err
	}
	if err := add(Table3Cores(), nil); err != nil {
		return "", err
	}
	if err := add(Table4Modules(), nil); err != nil {
		return "", err
	}
	t5, err := Table5Architectures()
	if err := add(t5, err); err != nil {
		return "", err
	}
	t6, err := Table6Designs()
	if err := add(t6, err); err != nil {
		return "", err
	}
	t7, err := Table7LowLevel(cpu)
	if err := add(t7, err); err != nil {
		return "", err
	}
	t8, err := Table8HighLevel(cpu)
	if err := add(t8, err); err != nil {
		return "", err
	}
	f2t, err := Fig2AccessPattern()
	if err := add(f2t, err); err != nil {
		return "", err
	}
	f4, err := Fig4PipelineAblation()
	if err := add(f4, err); err != nil {
		return "", err
	}
	f6, gantt, err := Fig6Pipeline()
	if err := add(f6, err); err != nil {
		return "", err
	}
	parts = append(parts, "Figure 6 Gantt (Stratix 10 Set-B, 6 ops, digits by op number):\n"+gantt)
	ab, err := AblationBuffers()
	if err := add(ab, err); err != nil {
		return "", err
	}
	if err := add(WordSizeAblationTable(), nil); err != nil {
		return "", err
	}
	s5, err := Sec5System()
	if err := add(s5, err); err != nil {
		return "", err
	}
	hs, err := HostStreamingTable()
	if err := add(hs, err); err != nil {
		return "", err
	}
	if err := add(SweepTable(), nil); err != nil {
		return "", err
	}
	sc, err := ScalabilityTable()
	if err := add(sc, err); err != nil {
		return "", err
	}
	return strings.Join(parts, "\n"), nil
}

func designFor(board, set string) (*core.Design, error) {
	b, err := core.BoardByName(board)
	if err != nil {
		return nil, err
	}
	ps, err := paramSetByName(set)
	if err != nil {
		return nil, err
	}
	return core.StandardDesign(b, ps)
}

func paramSetByName(name string) (core.ParamSet, error) {
	for _, s := range core.ParamSets {
		if s.Name == name {
			return s, nil
		}
	}
	return core.ParamSet{}, fmt.Errorf("bench: unknown parameter set %q", name)
}
