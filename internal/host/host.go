// Package host models the CPU side of the system view (Section 5.2 and
// Figure 7): applications enqueue homomorphic operations, polynomials are
// batched onto PCIe by a pool of transfer threads, device buffers admit a
// bounded number of in-flight operations (double buffering for MULT,
// f1-deep quadruple buffering for KeySwitch), and the DRAM "memory map"
// lets intermediate results stay on the board instead of round-tripping
// over PCIe.
//
// The model answers the throughput question the paper's system design
// exists to answer: when is an operation compute-bound vs transfer-bound,
// and how much of the gap do batching and the memory map close?
package host

import (
	"fmt"

	"heax/internal/core"
	"heax/internal/xfer"
)

// OpKind selects the accelerator operation being streamed.
type OpKind int

const (
	// OpMult is a ciphertext-ciphertext multiplication on the MULT
	// module: two ciphertexts in, three components out.
	OpMult OpKind = iota
	// OpKeySwitch is a KeySwitch (relinearization/rotation): one
	// polynomial vector in, two out; keys are already on the board.
	OpKeySwitch
)

func (k OpKind) String() string {
	if k == OpMult {
		return "MULT"
	}
	return "KeySwitch"
}

// Config parameterizes a streaming simulation.
type Config struct {
	Design *core.Design
	Kind   OpKind
	// Threads is the number of PCIe transfer threads (8 in HEAX).
	Threads int
	// BufferDepth is the number of device-side input buffers; zero means
	// the paper's values (2 for MULT, f1 for KeySwitch).
	BufferDepth int
	// MemoryMapResults keeps operation outputs in device DRAM (the
	// Section 5.1 memory map) instead of returning them over PCIe.
	MemoryMapResults bool
	// MemoryMapOperands serves operand fetches from device DRAM (operands
	// produced by earlier operations).
	MemoryMapOperands bool
}

// Report summarizes a streaming run.
type Report struct {
	Kind             OpKind
	Ops              int
	ComputeCyclesOp  int
	ComputeBoundOps  float64 // fclk / compute cycles
	TransferSecPerOp float64
	TransferBoundOps float64
	AchievedOps      float64
	TransferBound    bool    // whether PCIe limits the achieved rate
	ComputeIdleFrac  float64 // bubbles in the compute pipeline
}

// bytesPerOp returns (input, output) PCIe bytes for one operation.
func bytesPerOp(cfg Config) (in, out int) {
	set := cfg.Design.Set
	switch cfg.Kind {
	case OpMult:
		in = 2 * xfer.CiphertextBytes(set)    // two ciphertexts
		out = 3 * set.K * xfer.PolyBytes(set) // three components
	default:
		in = set.K * xfer.PolyBytes(set)      // the switched polynomial
		out = 2 * set.K * xfer.PolyBytes(set) // resulting pair
	}
	if cfg.MemoryMapOperands {
		in = 0
	}
	if cfg.MemoryMapResults {
		out = 0
	}
	return in, out
}

// computeCycles returns the module initiation interval for the op.
func computeCycles(cfg Config) int {
	d := cfg.Design
	set := d.Set
	switch cfg.Kind {
	case OpMult:
		// All pairwise component products over every RNS row.
		return 4 * set.K * core.ModuleCycles(core.MULTModule, d.StandaloneMULTCores, set.N())
	default:
		return d.Arch.KeySwitchCycles(set)
	}
}

// Simulate streams ops operations through the transfer/compute pipeline
// with the configured buffer depth and returns the achieved steady-state
// throughput. The schedule is the classic two-stage bounded-buffer
// pipeline: transfer o must finish before compute o starts, compute is
// serial on the module, and transfer o+depth cannot start before compute
// o has drained its buffer.
func Simulate(cfg Config, ops int) (Report, error) {
	if ops < 2 {
		return Report{}, fmt.Errorf("host: need at least 2 operations")
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 8
	}
	depth := cfg.BufferDepth
	if depth == 0 {
		if cfg.Kind == OpMult {
			depth = 2 // double buffering (Section 5.2)
		} else {
			depth = cfg.Design.Arch.F1() // quadruple buffering
		}
	}

	pcie := xfer.NewPCIeModel(cfg.Design.Board)
	pcie.Threads = cfg.Threads
	inBytes, outBytes := bytesPerOp(cfg)
	msg := xfer.PolyBytes(cfg.Design.Set) // ≥1 polynomial per request
	txSec := pcie.TransferSec(inBytes+outBytes, msg)

	cyc := computeCycles(cfg)
	freq := float64(cfg.Design.Board.FreqMHz) * 1e6
	compSec := float64(cyc) / freq

	// Event-driven schedule.
	txFree := 0.0
	compFree := 0.0
	compDone := make([]float64, ops)
	var busy float64
	for o := 0; o < ops; o++ {
		txReady := txFree
		if o >= depth {
			// The device buffer for this op frees when op o-depth has
			// been consumed by compute.
			if compDone[o-depth] > txReady {
				txReady = compDone[o-depth]
			}
		}
		txEnd := txReady + txSec
		txFree = txEnd
		start := txEnd
		if compFree > start {
			start = compFree
		}
		compDone[o] = start + compSec
		compFree = compDone[o]
		busy += compSec
	}

	warm := ops / 2
	interval := (compDone[ops-1] - compDone[warm]) / float64(ops-1-warm)
	r := Report{
		Kind:             cfg.Kind,
		Ops:              ops,
		ComputeCyclesOp:  cyc,
		ComputeBoundOps:  1 / compSec,
		TransferSecPerOp: txSec,
		AchievedOps:      1 / interval,
	}
	if txSec > 0 {
		r.TransferBoundOps = 1 / txSec
	}
	r.TransferBound = txSec > compSec
	total := compDone[ops-1]
	r.ComputeIdleFrac = 1 - busy/total
	return r, nil
}

// MemoryMapStudy contrasts streaming with and without the DRAM memory
// map for a design — quantifying why Section 5.1 stores results on the
// board.
type MemoryMapStudy struct {
	Plain, MapResults, MapBoth Report
}

// StudyMemoryMap runs the three configurations.
func StudyMemoryMap(d *core.Design, kind OpKind, ops int) (MemoryMapStudy, error) {
	var s MemoryMapStudy
	var err error
	if s.Plain, err = Simulate(Config{Design: d, Kind: kind}, ops); err != nil {
		return s, err
	}
	if s.MapResults, err = Simulate(Config{Design: d, Kind: kind, MemoryMapResults: true}, ops); err != nil {
		return s, err
	}
	s.MapBoth, err = Simulate(Config{Design: d, Kind: kind, MemoryMapResults: true, MemoryMapOperands: true}, ops)
	return s, err
}
