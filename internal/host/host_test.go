package host

import (
	"testing"

	"heax/internal/core"
)

func design(t testing.TB, b core.Board, set core.ParamSet) *core.Design {
	t.Helper()
	d, err := core.StandardDesign(b, set)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSimulateErrors(t *testing.T) {
	d := design(t, core.BoardStratix10, core.ParamSetB)
	if _, err := Simulate(Config{Design: d}, 1); err == nil {
		t.Fatal("ops < 2 should fail")
	}
}

// The MULT module is transfer-bound over PCIe; with full double buffering
// the achieved rate must equal the transfer bound, not the compute bound.
func TestMULTIsTransferBound(t *testing.T) {
	d := design(t, core.BoardStratix10, core.ParamSetB)
	r, err := Simulate(Config{Design: d, Kind: OpMult}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !r.TransferBound {
		t.Fatal("C-C MULT should be PCIe-bound")
	}
	if ratio := r.AchievedOps / r.TransferBoundOps; ratio < 0.98 || ratio > 1.02 {
		t.Fatalf("achieved %.0f should track the transfer bound %.0f", r.AchievedOps, r.TransferBoundOps)
	}
	if r.AchievedOps >= r.ComputeBoundOps {
		t.Fatal("achieved rate cannot exceed the compute bound")
	}
	if r.ComputeIdleFrac <= 0 {
		t.Fatal("a transfer-bound pipeline must show compute bubbles")
	}
}

// The DRAM memory map closes the gap: with results (and then operands)
// kept on the board, throughput climbs toward the compute bound.
func TestMemoryMapStudy(t *testing.T) {
	d := design(t, core.BoardStratix10, core.ParamSetB)
	s, err := StudyMemoryMap(d, OpMult, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !(s.Plain.AchievedOps < s.MapResults.AchievedOps) {
		t.Fatalf("memory-mapped results should help: %.0f vs %.0f",
			s.Plain.AchievedOps, s.MapResults.AchievedOps)
	}
	if !(s.MapResults.AchievedOps < s.MapBoth.AchievedOps) {
		t.Fatalf("memory-mapped operands should help further: %.0f vs %.0f",
			s.MapResults.AchievedOps, s.MapBoth.AchievedOps)
	}
	if ratio := s.MapBoth.AchievedOps / s.MapBoth.ComputeBoundOps; ratio < 0.98 {
		t.Fatalf("fully on-device streaming should be compute-bound (%.2f)", ratio)
	}
}

// KeySwitch on Set-B: streaming the input and returning both outputs
// exceeds the PCIe budget, but with results consumed on the device the
// operation runs at its compute rate — the quantitative reason for the
// memory map.
func TestKeySwitchNeedsMemoryMap(t *testing.T) {
	d := design(t, core.BoardStratix10, core.ParamSetB)
	plain, err := Simulate(Config{Design: d, Kind: OpKeySwitch}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.TransferBound {
		t.Fatal("full-result streaming should be PCIe-bound for Set-B KeySwitch")
	}
	mapped, err := Simulate(Config{Design: d, Kind: OpKeySwitch, MemoryMapResults: true}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if mapped.TransferBound {
		t.Fatal("with results on the device, KeySwitch should be compute-bound")
	}
	want := core.Perf{Design: d}.KeySwitchOps()
	if ratio := mapped.AchievedOps / want; ratio < 0.98 || ratio > 1.02 {
		t.Fatalf("achieved %.0f should equal the Table 8 rate %.0f", mapped.AchievedOps, want)
	}
}

// Buffer-depth ablation: a single buffer serializes transfer and compute.
func TestBufferDepthAblation(t *testing.T) {
	d := design(t, core.BoardStratix10, core.ParamSetB)
	single, err := Simulate(Config{Design: d, Kind: OpKeySwitch, BufferDepth: 1, MemoryMapResults: true}, 200)
	if err != nil {
		t.Fatal(err)
	}
	double, err := Simulate(Config{Design: d, Kind: OpKeySwitch, BufferDepth: 4, MemoryMapResults: true}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if single.AchievedOps >= double.AchievedOps {
		t.Fatalf("single buffering should be slower: %.0f vs %.0f",
			single.AchievedOps, double.AchievedOps)
	}
	// Serialized interval = Tc + Tx.
	wantInterval := 1/single.ComputeBoundOps + single.TransferSecPerOp
	if ratio := (1 / single.AchievedOps) / wantInterval; ratio < 0.99 || ratio > 1.01 {
		t.Fatalf("single-buffer interval off: %.2f", ratio)
	}
}

// More transfer threads help until the link saturates.
func TestThreadScaling(t *testing.T) {
	d := design(t, core.BoardStratix10, core.ParamSetB)
	one, err := Simulate(Config{Design: d, Kind: OpMult, Threads: 1}, 200)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Simulate(Config{Design: d, Kind: OpMult, Threads: 8}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if one.AchievedOps >= eight.AchievedOps {
		t.Fatalf("8 transfer threads should beat 1: %.0f vs %.0f", eight.AchievedOps, one.AchievedOps)
	}
}

func TestOpKindString(t *testing.T) {
	if OpMult.String() != "MULT" || OpKeySwitch.String() != "KeySwitch" {
		t.Fatal("bad op names")
	}
}
