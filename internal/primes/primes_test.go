package primes

import (
	"math/big"
	"testing"
	"testing/quick"

	"heax/internal/uintmod"
)

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{
		0: false, 1: false, 2: true, 3: true, 4: false, 5: true,
		6: false, 7: true, 9: false, 11: true, 25: false, 97: true,
		561: false /* Carmichael */, 1105: false, 1729: false,
		65537: true, 65539: true, 65533: false,
	}
	for n, want := range primes {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestIsPrimeAgainstBig(t *testing.T) {
	// Cross-check against math/big's ProbablyPrime on a range straddling
	// word sizes.
	for _, base := range []uint64{1 << 20, 1 << 36, 1 << 52, 1 << 61} {
		for d := uint64(0); d < 200; d++ {
			n := base + d
			want := new(big.Int).SetUint64(n).ProbablyPrime(20)
			if got := IsPrime(n); got != want {
				t.Fatalf("IsPrime(%d) = %v, want %v", n, got, want)
			}
		}
	}
}

func TestQuickIsPrimeMatchesBig(t *testing.T) {
	f := func(n uint64) bool {
		return IsPrime(n) == new(big.Int).SetUint64(n).ProbablyPrime(20)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNTTPrimes(t *testing.T) {
	cases := []struct {
		bits, n, count int
	}{
		{36, 4096, 3},  // Set-A-like
		{44, 8192, 5},  // Set-B-like
		{52, 16384, 9}, // Set-C at the HEAX word-size limit
		{60, 4096, 3},  // CPU/SEAL-like
	}
	for _, c := range cases {
		ps, err := NTTPrimes(c.bits, c.n, c.count)
		if err != nil {
			t.Fatalf("NTTPrimes(%d,%d,%d): %v", c.bits, c.n, c.count, err)
		}
		if len(ps) != c.count {
			t.Fatalf("got %d primes, want %d", len(ps), c.count)
		}
		seen := map[uint64]bool{}
		for _, p := range ps {
			if seen[p] {
				t.Fatalf("duplicate prime %d", p)
			}
			seen[p] = true
			if !IsPrime(p) {
				t.Fatalf("%d is not prime", p)
			}
			if p%(2*uint64(c.n)) != 1 {
				t.Fatalf("%d is not 1 mod 2n", p)
			}
			if p>>uint(c.bits-1) != 1 {
				t.Fatalf("%d is not exactly %d bits", p, c.bits)
			}
		}
	}
}

func TestNTTPrimesErrors(t *testing.T) {
	if _, err := NTTPrimes(1, 4096, 1); err == nil {
		t.Error("bitSize=1 should fail")
	}
	if _, err := NTTPrimes(63, 4096, 1); err == nil {
		t.Error("bitSize=63 should fail")
	}
	if _, err := NTTPrimes(40, 1000, 1); err == nil {
		t.Error("non-power-of-two n should fail")
	}
	if _, err := NTTPrimes(40, 4096, 0); err == nil {
		t.Error("count=0 should fail")
	}
	// 14-bit primes ≡ 1 mod 2^13: step 8192 leaves candidates {8193=3*2731,
	// 16385>2^14}; demand more than can exist.
	if _, err := NTTPrimes(14, 4096, 5); err == nil {
		t.Error("impossible request should fail")
	}
}

func TestPrimitiveRoot2N(t *testing.T) {
	for _, c := range []struct {
		bits, n int
	}{{36, 4096}, {44, 8192}, {52, 16384}} {
		ps, err := NTTPrimes(c.bits, c.n, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ps {
			psi, err := PrimitiveRoot2N(p, c.n)
			if err != nil {
				t.Fatal(err)
			}
			m := uintmod.NewModulus(p)
			if m.PowMod(psi, uint64(c.n)) != p-1 {
				t.Fatalf("psi^n != -1 for p=%d", p)
			}
			if m.PowMod(psi, uint64(2*c.n)) != 1 {
				t.Fatalf("psi^2n != 1 for p=%d", p)
			}
			// Order is exactly 2n: psi^n = -1 ensures no smaller even
			// order; check odd divisors by confirming psi^(2n/q) != 1 for
			// q = 2 covered above; a root with psi^n = -1 has order 2n.
		}
	}
}

func TestMinimalPrimitiveRoot(t *testing.T) {
	ps, err := NTTPrimes(20, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := ps[0]
	n := 64
	minRoot, err := MinimalPrimitiveRoot2N(p, n)
	if err != nil {
		t.Fatal(err)
	}
	m := uintmod.NewModulus(p)
	if m.PowMod(minRoot, uint64(n)) != p-1 {
		t.Fatal("minimal root is not primitive")
	}
	// Exhaustively confirm minimality for this small case.
	for x := uint64(1); x < minRoot; x++ {
		if m.PowMod(x, uint64(n)) == p-1 && m.PowMod(x, uint64(2*n)) == 1 {
			t.Fatalf("found smaller primitive root %d < %d", x, minRoot)
		}
	}
}

func TestPrimitiveRootErrors(t *testing.T) {
	if _, err := PrimitiveRoot2N(97, 4096); err == nil {
		t.Error("p not ≡ 1 mod 2n should fail")
	}
}

func BenchmarkIsPrime52(b *testing.B) {
	ps, err := NTTPrimes(52, 16384, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IsPrime(ps[0])
	}
}

func BenchmarkNTTPrimesSetB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NTTPrimes(44, 8192, 5); err != nil {
			b.Fatal(err)
		}
	}
}
