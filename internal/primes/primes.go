// Package primes generates the NTT-friendly prime moduli HEAX computes
// with and finds primitive roots of unity in their multiplicative groups.
//
// Section 4 of the paper requires every ciphertext modulus p_i to satisfy
// two constraints: p_i < 2^52 (so the 54-bit datapath of Algorithm 2 is
// correct) and p_i ≡ 1 (mod 2n) (so a negacyclic NTT of length n exists).
// The CPU baseline relaxes the first constraint to p_i < 2^62.
package primes

import (
	"fmt"
	"math/bits"

	"heax/internal/uintmod"
)

// millerRabinBases is a deterministic witness set for all 64-bit integers
// (Sinclair, 2011; verified for n < 3.3*10^24).
var millerRabinBases = []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// IsPrime reports whether p is prime, deterministically for all uint64.
func IsPrime(p uint64) bool {
	if p < 2 {
		return false
	}
	for _, small := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if p == small {
			return true
		}
		if p%small == 0 {
			return false
		}
	}
	// p-1 = d * 2^s with d odd.
	d := p - 1
	s := 0
	for d&1 == 0 {
		d >>= 1
		s++
	}
	for _, a := range millerRabinBases {
		x := powModAny(a, d, p)
		if x == 1 || x == p-1 {
			continue
		}
		composite := true
		for r := 1; r < s; r++ {
			x = mulModAny(x, x, p)
			if x == p-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// mulModAny returns a*b mod p for any p >= 2 (including p >= 2^62, where
// the Barrett routines in uintmod do not apply) via 128-bit division.
func mulModAny(a, b, p uint64) uint64 {
	hi, lo := bits.Mul64(a%p, b%p)
	_, rem := bits.Div64(hi, lo, p) // hi < p, so the quotient fits
	return rem
}

// powModAny returns base^exp mod p for any p >= 2.
func powModAny(base, exp, p uint64) uint64 {
	result := uint64(1 % p)
	b := base % p
	for exp > 0 {
		if exp&1 == 1 {
			result = mulModAny(result, b, p)
		}
		b = mulModAny(b, b, p)
		exp >>= 1
	}
	return result
}

// NTTPrimes returns count primes of exactly bitSize bits with
// p ≡ 1 (mod 2n), searching downward from 2^bitSize. It returns an error
// if the search space is exhausted or the arguments are out of range.
func NTTPrimes(bitSize, n, count int) ([]uint64, error) {
	if bitSize < 2 || bitSize > 62 {
		return nil, fmt.Errorf("primes: bitSize %d out of range [2,62]", bitSize)
	}
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("primes: n = %d must be a power of two >= 2", n)
	}
	if count < 1 {
		return nil, fmt.Errorf("primes: count %d must be positive", count)
	}
	step := uint64(2 * n)
	upper := uint64(1) << uint(bitSize)
	lower := uint64(1) << uint(bitSize-1)
	// Largest candidate ≡ 1 mod 2n below 2^bitSize.
	c := (upper-2)/step*step + 1
	var out []uint64
	for ; c > lower; c -= step {
		if IsPrime(c) {
			out = append(out, c)
			if len(out) == count {
				return out, nil
			}
		}
	}
	return nil, fmt.Errorf("primes: only found %d of %d %d-bit primes ≡ 1 mod %d",
		len(out), count, bitSize, 2*n)
}

// PrimitiveRoot2N returns a primitive 2n-th root of unity ψ modulo p, i.e.
// ψ^n ≡ -1 (mod p). p must be prime with p ≡ 1 (mod 2n).
func PrimitiveRoot2N(p uint64, n int) (uint64, error) {
	if (p-1)%uint64(2*n) != 0 {
		return 0, fmt.Errorf("primes: p = %d is not ≡ 1 mod %d", p, 2*n)
	}
	m := uintmod.NewModulus(p)
	exp := (p - 1) / uint64(2*n)
	// Deterministic scan: raise candidates to the (p-1)/2n power; the
	// result is a 2n-th root of unity, primitive iff its n-th power is -1.
	for g := uint64(2); g < p; g++ {
		psi := m.PowMod(g, exp)
		if m.PowMod(psi, uint64(n)) == p-1 {
			return psi, nil
		}
	}
	return 0, fmt.Errorf("primes: no primitive 2n-th root mod %d", p)
}

// MinimalPrimitiveRoot2N returns the numerically smallest primitive 2n-th
// root of unity mod p, which makes precomputed tables reproducible across
// runs and platforms (mirrors SEAL's choice of a canonical root).
func MinimalPrimitiveRoot2N(p uint64, n int) (uint64, error) {
	psi, err := PrimitiveRoot2N(p, n)
	if err != nil {
		return 0, err
	}
	m := uintmod.NewModulus(p)
	// All primitive 2n-th roots are psi^k for odd k; walk the orbit via
	// psi^2 steps and keep the minimum.
	gen := m.MulMod(psi, psi)
	best := psi
	cur := psi
	for i := 1; i < n; i++ {
		cur = m.MulMod(cur, gen) // psi^(2i+1)
		if cur < best {
			best = cur
		}
	}
	return best, nil
}
