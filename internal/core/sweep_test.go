package core

import "testing"

// The sweep must (a) double throughput with each doubling of the INTT0
// width, (b) mark exactly the paper's chosen widths as the widest
// feasible points, and (c) attribute infeasibility to a real resource.
func TestSweepINTT0(t *testing.T) {
	cases := []struct {
		board     Board
		set       ParamSet
		wantWidth int
	}{
		{BoardArria10, ParamSetA, 8},
		{BoardStratix10, ParamSetA, 16},
		{BoardStratix10, ParamSetB, 16},
		{BoardStratix10, ParamSetC, 8},
	}
	for _, c := range cases {
		points := SweepINTT0(c.board, c.set)
		if len(points) != 6 {
			t.Fatalf("%s/%s: %d points", c.board.Name, c.set.Name, len(points))
		}
		widest := 0
		for i, p := range points {
			if i > 0 && points[i-1].Feasible && p.NcINTT0 == 2*points[i-1].NcINTT0 {
				ratio := p.KeySwitchOps / points[i-1].KeySwitchOps
				if ratio < 1.99 || ratio > 2.01 {
					t.Errorf("%s/%s nc=%d: throughput ratio %.2f, want 2",
						c.board.Name, c.set.Name, p.NcINTT0, ratio)
				}
			}
			if p.Feasible {
				widest = p.NcINTT0
				if p.LimitedBy != "" {
					t.Errorf("feasible point labeled limited by %s", p.LimitedBy)
				}
			} else if p.LimitedBy == "" {
				t.Errorf("%s/%s nc=%d: infeasible without a limiting resource", c.board.Name, c.set.Name, p.NcINTT0)
			}
		}
		if widest != c.wantWidth {
			t.Errorf("%s/%s: widest feasible %d, want %d", c.board.Name, c.set.Name, widest, c.wantWidth)
		}
	}
}

// Throughput scaling claim in its pure form: ops ∝ ncINTT0.
func TestSweepThroughputLinear(t *testing.T) {
	points := SweepINTT0(BoardStratix10, ParamSetB)
	base := points[0].KeySwitchOps
	for i, p := range points {
		want := base * float64(int(1)<<i)
		if diff := p.KeySwitchOps/want - 1; diff > 0.001 || diff < -0.001 {
			t.Fatalf("nc=%d: ops %.0f, want %.0f", p.NcINTT0, p.KeySwitchOps, want)
		}
	}
}
