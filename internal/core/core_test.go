package core

import (
	"math"
	"testing"
)

func TestBoardByName(t *testing.T) {
	b, err := BoardByName("Arria10")
	if err != nil || b.Chip != "Arria 10 GX 1150" {
		t.Fatalf("BoardByName: %v %v", b, err)
	}
	if _, err := BoardByName("Virtex"); err == nil {
		t.Fatal("unknown board should fail")
	}
}

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{DSP: 1, REG: 2, ALM: 3, BRAMBits: 4, M20K: 5}
	b := a.Add(a)
	if b.DSP != 2 || b.M20K != 10 {
		t.Fatalf("Add wrong: %+v", b)
	}
	c := a.Scale(3)
	if c.REG != 6 || c.BRAMBits != 12 {
		t.Fatalf("Scale wrong: %+v", c)
	}
	if !a.FitsIn(BoardArria10) {
		t.Fatal("small bundle should fit")
	}
	if (Resources{DSP: 1 << 30}).FitsIn(BoardArria10) {
		t.Fatal("huge bundle should not fit")
	}
	if s := a.Utilization(BoardArria10); s == "" {
		t.Fatal("empty utilization string")
	}
}

// Module DSP counts are structural: cores × Table 3 per-core DSP.
func TestModuleDSPMatchesTable4(t *testing.T) {
	for kind, rows := range PaperModules {
		for _, row := range rows {
			got := ModuleResources(kind, row.Cores, 1<<13)
			if got.DSP != row.DSP {
				t.Errorf("%v(%d): DSP %d want %d", kind, row.Cores, got.DSP, row.DSP)
			}
		}
	}
}

// At the synthesized core counts the model must return Table 4's REG/ALM
// exactly (they are calibration points).
func TestModuleREGALMAtCalibrationPoints(t *testing.T) {
	for kind, rows := range PaperModules {
		for _, row := range rows {
			got := ModuleResources(kind, row.Cores, 1<<13)
			if got.REG != row.REG || got.ALM != row.ALM {
				t.Errorf("%v(%d): REG/ALM %d/%d want %d/%d",
					kind, row.Cores, got.REG, got.ALM, row.REG, row.ALM)
			}
		}
	}
}

// Off calibration points the fitted curve must be monotone and within a
// sane envelope (interpolation sanity, not a paper claim).
func TestModuleREGALMFitSanity(t *testing.T) {
	for _, kind := range []ModuleKind{MULTModule, NTTModule, INTTModule} {
		prev := 0
		for _, nc := range []int{1, 2, 4, 6, 8, 12, 16, 24, 32, 64} {
			r := ModuleResources(kind, nc, 1<<13)
			if r.ALM <= 0 {
				t.Fatalf("%v(%d): non-positive ALM", kind, nc)
			}
			if r.ALM < prev && nc > 2 {
				t.Fatalf("%v(%d): ALM %d not monotone (prev %d)", kind, nc, r.ALM, prev)
			}
			prev = r.ALM
		}
	}
}

func TestModuleBRAMBitsMatchTable4(t *testing.T) {
	// Table 4's BRAM bits are quoted at n = 2^13.
	for kind, rows := range PaperModules {
		want := rows[0].BRAMBits
		got := ModuleResources(kind, rows[0].Cores, 1<<13)
		if math.Abs(float64(got.BRAMBits-want))/float64(want) > 0.01 {
			t.Errorf("%v: BRAM bits %d want %d", kind, got.BRAMBits, want)
		}
	}
}

// Table 4 cycle counts (n = 2^12). The MULT rows for 16/32 cores are
// inconsistent in the paper (see paperdata.go); the model follows the
// measured throughput of Table 7, so we check those two via Table 7
// instead.
func TestModuleCyclesMatchTable4(t *testing.T) {
	n := 1 << 12
	for kind, rows := range PaperModules {
		for _, row := range rows {
			if kind == MULTModule && row.Cores >= 16 {
				continue
			}
			if got := ModuleCycles(kind, row.Cores, n); got != row.Cycles {
				t.Errorf("%v(%d): cycles %d want %d", kind, row.Cores, got, row.Cycles)
			}
		}
	}
}

// The architecture generator must reproduce every Table 5 row.
func TestGenerateArchMatchesTable5(t *testing.T) {
	for _, want := range PaperArchitectures {
		b, err := BoardByName(want.Board)
		if err != nil {
			t.Fatal(err)
		}
		var set ParamSet
		for _, s := range ParamSets {
			if s.Name == want.Set {
				set = s
			}
		}
		got, err := GenerateArch(b, set)
		if err != nil {
			t.Fatalf("%s/%s: %v", want.Board, want.Set, err)
		}
		if got != want.Arch {
			t.Errorf("%s/%s:\n got  %v\n want %v", want.Board, want.Set, got, want.Arch)
		}
	}
}

// The f1 buffer depth must be 4 for every evaluated configuration — the
// Section 5.2 quadruple-buffering claim.
func TestF1QuadrupleBuffering(t *testing.T) {
	for _, cfg := range PaperArchitectures {
		if f1 := cfg.Arch.F1(); f1 != 4 {
			t.Errorf("%s/%s: f1 = %d, want 4", cfg.Board, cfg.Set, f1)
		}
	}
}

// f2 values implied by Section 4.3's formula for the evaluated configs.
func TestF2Values(t *testing.T) {
	want := map[string]int{
		"Arria10/Set-A":   26,
		"Stratix10/Set-A": 26,
		"Stratix10/Set-B": 15,
		"Stratix10/Set-C": 5,
	}
	for _, cfg := range PaperArchitectures {
		var set ParamSet
		for _, s := range ParamSets {
			if s.Name == cfg.Set {
				set = s
			}
		}
		key := cfg.Board + "/" + cfg.Set
		if got := cfg.Arch.F2(set.LogN); got != want[key] {
			t.Errorf("%s: f2 = %d, want %d", key, got, want[key])
		}
	}
}

// Table 6 DSP totals: module sums plus shell DSP. Exact for three rows;
// Set-C is 62 DSP short of the printed value (≈2.6%), a residual the
// paper does not itemize — we assert the documented tolerance.
func TestDesignDSPMatchesTable6(t *testing.T) {
	for _, row := range PaperDesigns {
		d := designFor(t, row.Board, row.Set)
		got := d.Resources().DSP
		if row.Set == "Set-C" {
			if math.Abs(float64(got-row.DSP))/float64(row.DSP) > 0.03 {
				t.Errorf("%s/%s: DSP %d want %d (±3%%)", row.Board, row.Set, got, row.DSP)
			}
			continue
		}
		if got != row.DSP {
			t.Errorf("%s/%s: DSP %d want %d", row.Board, row.Set, got, row.DSP)
		}
	}
}

// Table 6 REG/ALM: Stratix 10 rows must match closely (the paper totals
// are module sums); Arria 10's synthesis differs from the S10-calibrated
// module table, so it gets a wide envelope.
func TestDesignREGALMNearTable6(t *testing.T) {
	for _, row := range PaperDesigns {
		d := designFor(t, row.Board, row.Set)
		r := d.Resources()
		tol := 0.08
		if row.Board == BoardArria10.Name {
			// Table 4's module costs are Stratix-10 synthesis results; an
			// Arria 10 build of the same RTL maps to ALMs differently, so
			// the module-sum model over-predicts the A10 row by ~25-37%.
			tol = 0.40
		}
		if e := relErr(r.REG, row.REG); e > tol {
			t.Errorf("%s/%s: REG %d want %d (err %.1f%% > %.0f%%)", row.Board, row.Set, r.REG, row.REG, e*100, tol*100)
		}
		if e := relErr(r.ALM, row.ALM); e > tol {
			t.Errorf("%s/%s: ALM %d want %d (err %.1f%% > %.0f%%)", row.Board, row.Set, r.ALM, row.ALM, e*100, tol*100)
		}
	}
}

// The memory inventory must reproduce the Section 5.1 split: keys resident
// for Set-A/Set-B, keys on DRAM for Set-C; totals within the board.
func TestMemoryInventory(t *testing.T) {
	for _, row := range PaperDesigns {
		d := designFor(t, row.Board, row.Set)
		inv := d.MemoryInventory()
		if row.Set == "Set-C" {
			if !inv.KeysOnDRAM {
				t.Errorf("Set-C must spill keys to DRAM")
			}
			if inv.ResidentKeyBits != 0 {
				t.Errorf("Set-C resident keys should be 0")
			}
		} else if inv.KeysOnDRAM {
			t.Errorf("%s/%s: keys should be resident", row.Board, row.Set)
		}
		if inv.TotalBits > d.Board.BRAMBits {
			t.Errorf("%s/%s: inventory %d bits exceeds board %d", row.Board, row.Set, inv.TotalBits, d.Board.BRAMBits)
		}
		if inv.TotalBits <= 0 || inv.TotalM20K <= 0 {
			t.Errorf("%s/%s: degenerate inventory %+v", row.Board, row.Set, inv)
		}
	}
}

// Ksk size formula: Section 5.1 works out ≈151 Mb for two Set-C key sets.
func TestKskBitsSetC(t *testing.T) {
	// The paper counts k(k+1) vectors per set at 64 bits per word:
	// 2 · 8·9 · 2^14 · 64 = 150,994,944 bits ≈ 151 Mb. Our words are 54
	// bits on the wire; check both the paper's arithmetic and ours.
	paperBits := 2 * 8 * 9 * (1 << 14) * 64
	if paperBits != 150994944 {
		t.Fatalf("paper arithmetic: %d", paperBits)
	}
	got := KskBits(ParamSetC)
	want := 2 * 8 * 9 * (1 << 14) * WordBits
	if got != want {
		t.Fatalf("KskBits = %d want %d", got, want)
	}
}

// The performance model must reproduce the HEAX columns of Table 7.
func TestPerfMatchesTable7(t *testing.T) {
	for _, row := range PaperLowLevel {
		p := Perf{Design: designFor(t, row.Board, row.Set)}
		checkOps(t, row.Board+"/"+row.Set+" NTT", p.NTTOps(), row.NTTHEAX)
		checkOps(t, row.Board+"/"+row.Set+" INTT", p.INTTOps(), row.INTTHEAX)
		checkOps(t, row.Board+"/"+row.Set+" Dyadic", p.DyadicOps(), row.DyadicHEAX)
	}
}

// The performance model must reproduce the HEAX columns of Table 8.
func TestPerfMatchesTable8(t *testing.T) {
	for _, row := range PaperHighLevel {
		p := Perf{Design: designFor(t, row.Board, row.Set)}
		checkOps(t, row.Board+"/"+row.Set+" KeySwitch", p.KeySwitchOps(), row.KeySwitchHEAX)
		checkOps(t, row.Board+"/"+row.Set+" MulRelin", p.MulRelinOps(), row.MulRelinHEAX)
	}
}

// Scalability (Section 6.3): the Stratix 10 Set-A instantiation has ~2×
// the resources and exactly 2× the throughput of the Arria 10 one.
func TestScalabilityClaim(t *testing.T) {
	a10 := Perf{Design: designFor(t, "Arria10", "Set-A")}
	s10 := Perf{Design: designFor(t, "Stratix10", "Set-A")}
	ratio := s10.KeySwitchOps() / a10.KeySwitchOps()
	// 2× cores at 300/275 clock: 2·300/275 ≈ 2.18.
	if ratio < 2.0 || ratio > 2.3 {
		t.Fatalf("S10/A10 Set-A throughput ratio %.2f outside [2.0, 2.3]", ratio)
	}
	ra := a10.Design.Resources()
	rs := s10.Design.Resources()
	if f := float64(rs.DSP) / float64(ra.DSP); f < 1.5 || f > 2.2 {
		t.Fatalf("S10/A10 DSP ratio %.2f outside [1.5, 2.2]", f)
	}
}

// Word-size ablation (Section 4): 1.4×–2.25× DSP reduction from 64→54-bit
// words, net of extra RNS components.
func TestWordSizeAblation(t *testing.T) {
	rows := WordSizeAblationTable()
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.NetReduction < 1.4 || r.NetReduction > 2.25 {
			t.Errorf("%s: net DSP reduction %.2f outside the paper's 1.4-2.25 range",
				r.Set.Name, r.NetReduction)
		}
		if r.K54 < r.K64 {
			t.Errorf("%s: k54 %d < k64 %d", r.Set.Name, r.K54, r.K64)
		}
	}
	if _, err := WordSizeDSP(32); err == nil {
		t.Error("unsupported word size should fail")
	}
}

func TestDeriveArchRejectsNothing(t *testing.T) {
	// DeriveArch is total; GenerateArch only fails when nothing fits.
	tiny := Board{Name: "tiny", DSP: 1, REG: 1, ALM: 1, BRAMBits: 1, M20K: 1}
	if _, err := GenerateArch(tiny, ParamSetA); err == nil {
		t.Fatal("impossible board should fail")
	}
}

func TestKindStrings(t *testing.T) {
	if NTTModule.String() != "NTT" || MULTModule.String() != "MULT" || INTTModule.String() != "INTT" {
		t.Fatal("module names wrong")
	}
	if DyadicCore.String() != "Dyadic" || NTTCore.String() != "NTT" || INTTCore.String() != "INTT" {
		t.Fatal("core names wrong")
	}
	if CoreKind(9).String() == "" || ModuleKind(9).String() == "" {
		t.Fatal("unknown kinds should still format")
	}
	if MULTModule.CoreOf() != DyadicCore || NTTModule.CoreOf() != NTTCore || INTTModule.CoreOf() != INTTCore {
		t.Fatal("CoreOf mapping wrong")
	}
}

func TestArchString(t *testing.T) {
	arch := PaperArchitectures[2].Arch // S10 Set-B
	want := "1×INTT(16)→4×NTT(16)→5×Dyad(8)→2×INTT(4)→2×NTT(16)→2×Mult(4)"
	if got := arch.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func designFor(t testing.TB, board, set string) *Design {
	t.Helper()
	b, err := BoardByName(board)
	if err != nil {
		t.Fatal(err)
	}
	var ps ParamSet
	for _, s := range ParamSets {
		if s.Name == set {
			ps = s
		}
	}
	d, err := StandardDesign(b, ps)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func relErr(got, want int) float64 {
	return math.Abs(float64(got-want)) / float64(want)
}

// checkOps allows 0.1% numeric slack (the paper prints rounded integers).
func checkOps(t *testing.T, label string, got, want float64) {
	t.Helper()
	if math.Abs(got-want)/want > 0.001 {
		t.Errorf("%s: %.0f ops/s, want %.0f", label, got, want)
	}
}
