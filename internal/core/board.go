// Package core models the HEAX architecture itself — the paper's primary
// contribution: the parameterizable NTT/INTT/MULT/KeySwitch modules, the
// rules that size and balance them (Section 4), the resource model that
// maps an architecture onto an FPGA (Tables 3, 4, 6), the architecture
// generator that reproduces the paper's configurations (Table 5), and the
// performance model behind Tables 7 and 8.
//
// Because this reproduction has no synthesis toolchain, per-core and
// per-module resource costs are calibrated to the paper's reported
// synthesis results, while cycle counts and throughput are derived from
// the dataflow (and cross-checked against the cycle-accurate simulator in
// internal/hwsim). DESIGN.md discusses this substitution.
package core

import "fmt"

// Resources is a bundle of FPGA resource quantities (Section 6.1).
type Resources struct {
	DSP      int // 27-bit multiplier blocks
	REG      int // 1-bit registers
	ALM      int // adaptive logic modules
	BRAMBits int // on-chip memory bits in use
	M20K     int // 20kb BRAM units in use
}

// Add returns r + s componentwise.
func (r Resources) Add(s Resources) Resources {
	return Resources{
		DSP:      r.DSP + s.DSP,
		REG:      r.REG + s.REG,
		ALM:      r.ALM + s.ALM,
		BRAMBits: r.BRAMBits + s.BRAMBits,
		M20K:     r.M20K + s.M20K,
	}
}

// Scale returns r scaled by an integer factor.
func (r Resources) Scale(k int) Resources {
	return Resources{
		DSP:      r.DSP * k,
		REG:      r.REG * k,
		ALM:      r.ALM * k,
		BRAMBits: r.BRAMBits * k,
		M20K:     r.M20K * k,
	}
}

// FitsIn reports whether r fits within a board's resources.
func (r Resources) FitsIn(b Board) bool {
	return r.DSP <= b.DSP && r.REG <= b.REG && r.ALM <= b.ALM &&
		r.BRAMBits <= b.BRAMBits && r.M20K <= b.M20K
}

// Utilization formats r as percentages of a board, like Table 6 does.
func (r Resources) Utilization(b Board) string {
	pct := func(x, of int) int {
		if of == 0 {
			return 0
		}
		return 100 * x / of
	}
	return fmt.Sprintf("DSP %d (%d%%), REG %d (%d%%), ALM %d (%d%%), BRAM %d bits (%d%%), M20K %d (%d%%)",
		r.DSP, pct(r.DSP, b.DSP), r.REG, pct(r.REG, b.REG), r.ALM, pct(r.ALM, b.ALM),
		r.BRAMBits, pct(r.BRAMBits, b.BRAMBits), r.M20K, pct(r.M20K, b.M20K))
}

// Board describes an FPGA accelerator card (Table 1).
type Board struct {
	Name     string
	Chip     string
	DSP      int
	REG      int
	ALM      int
	BRAMBits int
	M20K     int
	// DRAM subsystem.
	DRAMChannels int
	DRAMGBps     int // aggregate bandwidth, GB/s
	DRAMBytes    int64
	// PCIe link, unidirectional GB/s.
	PCIeGBps float64
	// FreqMHz is the achieved design clock (Section 6.3).
	FreqMHz int
}

// M20KBits is the capacity of one M20K block: 512 words of 40 bits.
const M20KBits = 512 * 40

// M20KDepth and M20KWidth describe the native geometry of an M20K block.
const (
	M20KDepth = 512
	M20KWidth = 40
)

// Table 1 boards. Chip resources are as printed (BRAM given in bits:
// 53 Mb and 229 Mb).
var (
	BoardArria10 = Board{
		Name: "Arria10", Chip: "Arria 10 GX 1150",
		DSP: 1518, REG: 1_710_000, ALM: 427_000,
		BRAMBits: 53_000_000, M20K: 2700,
		DRAMChannels: 2, DRAMGBps: 34, DRAMBytes: 4 << 30,
		PCIeGBps: 7.88, FreqMHz: 275,
	}
	BoardStratix10 = Board{
		Name: "Stratix10", Chip: "Stratix 10 GX 2800",
		DSP: 5760, REG: 3_730_000, ALM: 933_000,
		BRAMBits: 229_000_000, M20K: 11_721,
		DRAMChannels: 4, DRAMGBps: 64, DRAMBytes: 64 << 30,
		PCIeGBps: 15.75, FreqMHz: 300,
	}
)

// Boards lists the evaluation boards in paper order.
var Boards = []Board{BoardArria10, BoardStratix10}

// BoardByName finds a board.
func BoardByName(name string) (Board, error) {
	for _, b := range Boards {
		if b.Name == name {
			return b, nil
		}
	}
	return Board{}, fmt.Errorf("core: unknown board %q", name)
}

// ParamSet is the slice of Table 2 the hardware model needs: ring degree
// and RNS component count. (The cryptographic realization lives in
// internal/ckks; the hardware model only needs shapes.)
type ParamSet struct {
	Name string
	LogN int
	K    int // number of RNS components of q
}

// N returns the ring degree.
func (p ParamSet) N() int { return 1 << p.LogN }

// ModulusBits returns ⌊log qp⌋+1 as listed in Table 2 (fixed per set).
func (p ParamSet) ModulusBits() int {
	switch p.Name {
	case "Set-A":
		return 109
	case "Set-B":
		return 218
	case "Set-C":
		return 438
	}
	return 0
}

// Table 2 parameter sets.
var (
	ParamSetA = ParamSet{Name: "Set-A", LogN: 12, K: 2}
	ParamSetB = ParamSet{Name: "Set-B", LogN: 13, K: 4}
	ParamSetC = ParamSet{Name: "Set-C", LogN: 14, K: 8}
)

// ParamSets lists the Table 2 sets in order.
var ParamSets = []ParamSet{ParamSetA, ParamSetB, ParamSetC}

// WordBits is the HEAX native word size (Section 4).
const WordBits = 54

// DSPPerMul54 and DSPPerMul64 count 27-bit DSP blocks per multiplier for
// the two candidate word sizes (Section 4: "a naive construction of a
// 64-bit multiplier requires nine 27-bit DSPs, whereas a 54-bit multiplier
// requires only four").
const (
	DSPPerMul54 = 4
	DSPPerMul64 = 9
	// DSPPerMul64ToomCook is the Karatsuba/Toom-Cook alternative the
	// paper mentions: five 27-bit multipliers plus extra logic.
	DSPPerMul64ToomCook = 5
)
