package core

import (
	"fmt"
	"math"
	"math/bits"
)

// CoreKind identifies the three computation core types of Section 4.
type CoreKind int

const (
	DyadicCore CoreKind = iota
	NTTCore
	INTTCore
)

func (k CoreKind) String() string {
	switch k {
	case DyadicCore:
		return "Dyadic"
	case NTTCore:
		return "NTT"
	case INTTCore:
		return "INTT"
	}
	return fmt.Sprintf("CoreKind(%d)", int(k))
}

// CoreCost is the per-core resource cost and pipeline depth (Table 3).
type CoreCost struct {
	DSP    int
	REG    int
	ALM    int
	Stages int // pipeline stages (latency in cycles)
}

// ModuleKind identifies the module types built from cores.
type ModuleKind int

const (
	MULTModule ModuleKind = iota
	NTTModule
	INTTModule
)

func (k ModuleKind) String() string {
	switch k {
	case MULTModule:
		return "MULT"
	case NTTModule:
		return "NTT"
	case INTTModule:
		return "INTT"
	}
	return fmt.Sprintf("ModuleKind(%d)", int(k))
}

// CoreOf returns the core type a module is built from.
func (k ModuleKind) CoreOf() CoreKind {
	switch k {
	case MULTModule:
		return DyadicCore
	case NTTModule:
		return NTTCore
	default:
		return INTTCore
	}
}

// ModuleResources returns the resource cost of a module with nc cores for
// ring degree n.
//
// DSP is structural (cores × per-core DSP). REG and ALM use the paper's
// synthesized values (Table 4) at the measured core counts and a fitted
// structural curve elsewhere: a fixed control part plus a per-core part
// plus the customized multiplexer network, which Section 4.2 says grows as
// O(nc·log nc). BRAM is an inventory model: see moduleBRAM.
func ModuleResources(kind ModuleKind, nc, n int) Resources {
	cost := PaperCoreCosts[kind.CoreOf()]
	res := Resources{DSP: cost.DSP * nc}
	if row, ok := paperRow(kind, nc); ok {
		res.REG = row.REG
		res.ALM = row.ALM
	} else {
		res.REG = fitRegALM(kind, nc, true)
		res.ALM = fitRegALM(kind, nc, false)
	}
	bits, m20k := moduleBRAM(kind, nc, n)
	res.BRAMBits = bits
	res.M20K = m20k
	return res
}

func paperRow(kind ModuleKind, nc int) (PaperModuleRow, bool) {
	for _, row := range PaperModules[kind] {
		if row.Cores == nc {
			return row, true
		}
	}
	return PaperModuleRow{}, false
}

// fitRegALM evaluates a least-squares fit of
// cost(nc) = a + b·nc + c·nc·log2(nc) through the four Table 4 points.
// The structural form follows Section 4.2: control logic (a), per-core
// datapath (b·nc), and the MUX network (c·nc·log nc).
func fitRegALM(kind ModuleKind, nc int, reg bool) int {
	rows := PaperModules[kind]
	// Solve the 3-parameter least squares via normal equations.
	var x [][3]float64
	var y []float64
	for _, r := range rows {
		f := float64(r.Cores)
		x = append(x, [3]float64{1, f, f * math.Log2(f)})
		if reg {
			y = append(y, float64(r.REG))
		} else {
			y = append(y, float64(r.ALM))
		}
	}
	coef := solveNormal3(x, y)
	f := float64(nc)
	var l float64
	if nc > 1 {
		l = f * math.Log2(f)
	}
	v := coef[0] + coef[1]*f + coef[2]*l
	if v < 0 {
		v = 0
	}
	return int(v)
}

// solveNormal3 solves min ||X·c - y|| for 3 coefficients by Gaussian
// elimination on the normal equations.
func solveNormal3(x [][3]float64, y []float64) [3]float64 {
	var a [3][4]float64
	for i := range x {
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				a[r][c] += x[i][r] * x[i][c]
			}
			a[r][3] += x[i][r] * y[i]
		}
	}
	for col := 0; col < 3; col++ {
		// Partial pivot.
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		a[col], a[p] = a[p], a[col]
		if a[col][col] == 0 {
			continue
		}
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < 4; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	var out [3]float64
	for i := 0; i < 3; i++ {
		if a[i][i] != 0 {
			out[i] = a[i][3] / a[i][i]
		}
	}
	return out
}

// moduleBRAM returns the memory inventory of one module: BRAM bits and
// M20K units, for ring degree n.
//
// Inventory (Section 4.2): an NTT/INTT module holds its data memory (one
// polynomial, in place), two twiddle-factor tables (Y and Y′, each one
// polynomial's worth of 54-bit words), and an output memory; a MULT module
// holds the two input operand banks and an output bank, with the operand
// banks double-buffered against PCIe (Section 5.2), amounting to 2.5
// polynomials' worth of storage as reported in Table 4
// (1104384 = 2.5 · 54 · 2^13).
//
// M20K usage follows the word-packing rule of Section 4.2: β packed words
// occupy ceil(β·54/40) M20K lanes, each lane ceil(depth/512) deep; the
// remainder of Table 4's M20K counts comes from replicated small buffers,
// which we absorb into a calibrated per-core constant.
func moduleBRAM(kind ModuleKind, nc, n int) (bitsUsed, m20k int) {
	words := func(polys float64) int {
		return int(polys * WordBits * float64(n))
	}
	switch kind {
	case MULTModule:
		bitsUsed = words(2.5)
	default:
		// Data + 2 twiddle tables + output ≈ 3.42 polys matches the
		// synthesized 1514496 bits at n = 2^13 (the output memory is
		// down-scale converted, Section 4.3, so it is narrower than a
		// full polynomial).
		bitsUsed = words(3.42)
	}
	if row, ok := paperRow(kind, nc); ok {
		// Scale the measured M20K count with depth: Table 4 is quoted at
		// n = 2^13; halving/doubling n changes the number of depth banks
		// once a lane exceeds 512 rows.
		scale := float64(n) / float64(1<<13)
		if scale < 1 {
			scale = 1 // lanes cannot shrink below one M20K each
		}
		m20k = int(float64(row.M20K) * scale)
		if n < 1<<13 {
			m20k = row.M20K // width-bound at small n
		}
		return bitsUsed, m20k
	}
	// Structural estimate for core counts outside Table 4.
	beta := 2 * nc
	lanes := ceilDiv(beta*WordBits, M20KWidth)
	depthBanks := ceilDiv(ceilDiv(n, beta), M20KDepth)
	memories := 3 // data, twiddles, output
	if kind == MULTModule {
		memories = 3
	}
	m20k = lanes * depthBanks * memories * 2
	return bitsUsed, m20k
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// ModuleCycles returns the cycles a module needs to process one
// polynomial (NTT/INTT: Section 4.2's n·log n / (2·nc)) or one dyadic
// multiplication of a polynomial pair (MULT: n/nc, the rate implied by
// Table 7's measured throughput).
func ModuleCycles(kind ModuleKind, nc, n int) int {
	logn := bits.Len(uint(n)) - 1
	switch kind {
	case MULTModule:
		return n / nc
	default:
		return n * logn / (2 * nc)
	}
}

// WordSizeDSP returns the DSP count a single modular-multiplier datapath
// needs under the given native word size (Section 4's word-size
// discussion). Algorithm 2 uses three multipliers per modular
// multiplication.
func WordSizeDSP(wordBits int) (int, error) {
	const mulsPerModMul = 3
	switch wordBits {
	case 54:
		return mulsPerModMul * DSPPerMul54, nil
	case 64:
		return mulsPerModMul * DSPPerMul64, nil
	default:
		return 0, fmt.Errorf("core: unsupported word size %d", wordBits)
	}
}

// WordSizeAblation quantifies the Section 4 claim that moving from 64-bit
// to 54-bit native words cuts DSP usage by 1.4-2.25×, net of the extra
// RNS components the narrower word may require.
type WordSizeAblationRow struct {
	Set          ParamSet
	K54, K64     int     // RNS components needed at each word size
	DSP54, DSP64 int     // DSP per full modular-multiplier bank
	NetReduction float64 // (DSP64·K64)/(DSP54·K54)
}

// WordSizeAblationTable derives the ablation for the Table 2 sets: the
// ciphertext modulus bits are fixed, so narrower words may need more
// primes (ceil(bits/52) vs ceil(bits/62) usable bits per word).
func WordSizeAblationTable() []WordSizeAblationRow {
	var out []WordSizeAblationRow
	for _, set := range ParamSets {
		bitsTotal := set.ModulusBits()
		k54 := ceilDiv(bitsTotal, 52)
		k64 := ceilDiv(bitsTotal, 62)
		d54, _ := WordSizeDSP(54)
		d64, _ := WordSizeDSP(64)
		out = append(out, WordSizeAblationRow{
			Set: set, K54: k54, K64: k64,
			DSP54: d54 * k54, DSP64: d64 * k64,
			NetReduction: float64(d64*k64) / float64(d54*k54),
		})
	}
	return out
}
