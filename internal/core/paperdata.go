package core

// This file transcribes the evaluation data HEAX reports (Tables 1-8) so
// that models and benchmarks can compare against the paper. Values are
// copied verbatim from the paper text; known internal inconsistencies are
// flagged where they occur.

// PaperCoreCosts is Table 3: per-core resource consumption and pipeline
// depth.
var PaperCoreCosts = map[CoreKind]CoreCost{
	DyadicCore: {DSP: 22, REG: 4526, ALM: 1663, Stages: 23},
	NTTCore:    {DSP: 10, REG: 6297, ALM: 2066, Stages: 50},
	INTTCore:   {DSP: 10, REG: 5449, ALM: 2119, Stages: 49},
}

// PaperModuleRow is one row of Table 4.
type PaperModuleRow struct {
	Cores    int
	DSP      int
	REG      int
	ALM      int
	BRAMBits int // reported for Set-B (n = 2^13)
	M20K     int
	Cycles   int // reported for n = 2^12 (see note below)
}

// PaperModules is Table 4. Note on the Cycles column: the MULT rows for 16
// and 32 cores (128 and 64) are inconsistent with the measured throughput
// of Table 7, which implies cycles = n/cores (256 and 128 at n = 2^12);
// we keep the printed values here and the corrected formula in the model.
var PaperModules = map[ModuleKind][]PaperModuleRow{
	MULTModule: {
		{Cores: 4, DSP: 88, REG: 42817, ALM: 15795, BRAMBits: 1104384, M20K: 65, Cycles: 1024},
		{Cores: 8, DSP: 176, REG: 61878, ALM: 22160, BRAMBits: 1104384, M20K: 65, Cycles: 512},
		{Cores: 16, DSP: 352, REG: 93594, ALM: 35257, BRAMBits: 1104384, M20K: 164, Cycles: 128},
		{Cores: 32, DSP: 704, REG: 181503, ALM: 62157, BRAMBits: 1104384, M20K: 293, Cycles: 64},
	},
	NTTModule: {
		{Cores: 4, DSP: 40, REG: 61670, ALM: 22316, BRAMBits: 1514496, M20K: 86, Cycles: 6144},
		{Cores: 8, DSP: 80, REG: 96919, ALM: 36336, BRAMBits: 1514496, M20K: 185, Cycles: 3072},
		{Cores: 16, DSP: 160, REG: 196205, ALM: 67865, BRAMBits: 1514496, M20K: 380, Cycles: 1536},
		{Cores: 32, DSP: 320, REG: 387357, ALM: 142300, BRAMBits: 1514496, M20K: 725, Cycles: 768},
	},
	INTTModule: {
		{Cores: 4, DSP: 40, REG: 63917, ALM: 22700, BRAMBits: 1514496, M20K: 86, Cycles: 6144},
		{Cores: 8, DSP: 80, REG: 104575, ALM: 37331, BRAMBits: 1514496, M20K: 185, Cycles: 3072},
		{Cores: 16, DSP: 160, REG: 182478, ALM: 68645, BRAMBits: 1514496, M20K: 380, Cycles: 1536},
		{Cores: 32, DSP: 320, REG: 384267, ALM: 144957, BRAMBits: 1514496, M20K: 724, Cycles: 768},
	},
}

// PaperShell is the static platform shell of Table 4 per board.
var PaperShell = map[string]Resources{
	BoardArria10.Name:   {DSP: 1, REG: 79203, ALM: 39222, BRAMBits: 886496, M20K: 144},
	BoardStratix10.Name: {DSP: 2, REG: 86984, ALM: 45612, BRAMBits: 1201096, M20K: 173},
}

// PaperArchitectures is Table 5: the KeySwitch architecture parameter set
// per (board, parameter set).
var PaperArchitectures = []struct {
	Board string
	Set   string
	Arch  KeySwitchArch
}{
	{BoardArria10.Name, "Set-A", KeySwitchArch{
		NcINTT0: 8, NumNTT0: 2, NcNTT0: 8, NumDyad: 3, NcDyad: 4,
		NumINTT1: 2, NcINTT1: 4, NumNTT1: 2, NcNTT1: 8, NumMS: 2, NcMS: 2}},
	{BoardStratix10.Name, "Set-A", KeySwitchArch{
		NcINTT0: 16, NumNTT0: 2, NcNTT0: 16, NumDyad: 3, NcDyad: 8,
		NumINTT1: 2, NcINTT1: 8, NumNTT1: 2, NcNTT1: 16, NumMS: 2, NcMS: 4}},
	{BoardStratix10.Name, "Set-B", KeySwitchArch{
		NcINTT0: 16, NumNTT0: 4, NcNTT0: 16, NumDyad: 5, NcDyad: 8,
		NumINTT1: 2, NcINTT1: 4, NumNTT1: 2, NcNTT1: 16, NumMS: 2, NcMS: 4}},
	{BoardStratix10.Name, "Set-C", KeySwitchArch{
		NcINTT0: 8, NumNTT0: 4, NcNTT0: 16, NumDyad: 5, NcDyad: 8,
		NumINTT1: 2, NcINTT1: 1, NumNTT1: 2, NcNTT1: 8, NumMS: 2, NcMS: 4}},
}

// PaperDesignRow is one row of Table 6.
type PaperDesignRow struct {
	Board    string
	Set      string
	DSP      int
	REG      int
	ALM      int
	BRAMBits int
	M20K     int
	FreqMHz  int
}

// PaperDesigns is Table 6.
var PaperDesigns = []PaperDesignRow{
	{BoardArria10.Name, "Set-A", 1185, 723188, 246323, 26596320, 1731, 275},
	{BoardStratix10.Name, "Set-A", 2018, 1554005, 582148, 26907592, 3986, 300},
	{BoardStratix10.Name, "Set-B", 2610, 1976162, 698884, 201332624, 10340, 300},
	{BoardStratix10.Name, "Set-C", 2370, 1746384, 599715, 182847524, 9329, 300},
}

// PaperLowLevelRow is one row of Table 7 (operations per second).
type PaperLowLevelRow struct {
	Board                 string
	Set                   string
	NTTCPU, NTTHEAX       float64
	INTTCPU, INTTHEAX     float64
	DyadicCPU, DyadicHEAX float64
}

// PaperLowLevel is Table 7.
var PaperLowLevel = []PaperLowLevelRow{
	{BoardArria10.Name, "Set-A", 7222, 89518, 7568, 89518, 36931, 1074219},
	{BoardStratix10.Name, "Set-A", 7222, 195313, 7568, 195313, 36931, 1171875},
	{BoardStratix10.Name, "Set-B", 3437, 90144, 3539, 90144, 18362, 585938},
	{BoardStratix10.Name, "Set-C", 1631, 41853, 1659, 41853, 9117, 292969},
}

// PaperHighLevelRow is one row of Table 8 (operations per second).
type PaperHighLevelRow struct {
	Board                       string
	Set                         string
	KeySwitchCPU, KeySwitchHEAX float64
	MulRelinCPU, MulRelinHEAX   float64
}

// PaperHighLevel is Table 8.
var PaperHighLevel = []PaperHighLevelRow{
	{BoardArria10.Name, "Set-A", 488, 44759, 420, 44759},
	{BoardStratix10.Name, "Set-A", 488, 97656, 420, 97656},
	{BoardStratix10.Name, "Set-B", 97, 22536, 84, 22536},
	{BoardStratix10.Name, "Set-C", 16, 2616, 15, 2616},
}
