package core

import (
	"fmt"
	"math/bits"
)

// KeySwitchArch is one row of Table 5: the module composition of a
// KeySwitch pipeline (Section 4.3 and Figure 5):
//
//	1×INTT(NcINTT0) → NumNTT0×NTT(NcNTT0) → NumDyad×Dyad(NcDyad)
//	→ NumINTT1×INTT(NcINTT1) → NumNTT1×NTT(NcNTT1) → NumMS×Mult(NcMS)
type KeySwitchArch struct {
	NcINTT0  int // cores of the first INTT module
	NumNTT0  int // m0: first-layer NTT module count
	NcNTT0   int // cores per first-layer NTT module
	NumDyad  int // DyadMult module count (m0 key modules + 1 input-poly module)
	NcDyad   int
	NumINTT1 int // second-layer INTT modules (one per output bank)
	NcINTT1  int
	NumNTT1  int
	NcNTT1   int
	NumMS    int // final multiply-subtract modules
	NcMS     int
}

// String renders the architecture in Table 5 notation.
func (a KeySwitchArch) String() string {
	return fmt.Sprintf("1×INTT(%d)→%d×NTT(%d)→%d×Dyad(%d)→%d×INTT(%d)→%d×NTT(%d)→%d×Mult(%d)",
		a.NcINTT0, a.NumNTT0, a.NcNTT0, a.NumDyad, a.NcDyad,
		a.NumINTT1, a.NcINTT1, a.NumNTT1, a.NcNTT1, a.NumMS, a.NcMS)
}

// F1 is the input-polynomial buffer count of Section 4.3
// ("Data Dependency 1"): f1 = ceil(3 + ncINTT0/ncNTT0). Its value of 4 for
// every evaluated configuration is why Section 5.2 quadruple-buffers the
// KeySwitch input.
func (a KeySwitchArch) F1() int {
	return 3 + ceilDiv(a.NcINTT0, a.NcNTT0)
}

// F2 is the DyadMult output buffer count of Section 4.3
// ("Data Dependency 2"):
// f2 = ceil(1 + m0·ncINTT1/ncNTT1 + ncINTT1·logn/ncMS).
func (a KeySwitchArch) F2(logn int) int {
	num := a.NumNTT0*a.NcINTT1*a.NcMS + a.NcINTT1*logn*a.NcNTT1
	den := a.NcNTT1 * a.NcMS
	return 1 + ceilDiv(num, den)
}

// nextPow2 rounds up to a power of two.
func nextPow2(x int) int {
	if x <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(x-1))
}

// maxNTTCores is the per-module NTT core cap: Section 4.3 reports
// place-and-route failures beyond 32 cores and super-linear ALM growth;
// the evaluated designs cap NTT modules at 16 cores on Stratix 10 and 8
// on the smaller Arria 10.
func maxNTTCores(b Board) int {
	if b.Name == BoardArria10.Name {
		return 8
	}
	return 16
}

// DeriveArch applies the throughput-balancing rules of Section 4.3 to a
// chosen INTT0 width:
//
//   - NTT0 must run k NTTs per INTT (ncNTT0·m0 = k·ncINTT0), split into m0
//     modules of at most maxNTTCores cores;
//   - DyadMult keeps pace when ncDYD ≥ 4·ncNTT0/log n (rounded to a power
//     of two), with one module per NTT0 module plus one for the input
//     polynomial;
//   - the second layer uses ncINTT1 = ceil(ncINTT0/k), ncNTT1 = ncINTT0,
//     and ncMS = max(ceil(2·ncNTT1/log n) rounded up to a power of two,
//     ncDYD/2), duplicated per output bank.
func DeriveArch(b Board, set ParamSet, ncINTT0 int) KeySwitchArch {
	k := set.K
	logn := set.LogN
	cap16 := maxNTTCores(b)

	ncNTT0 := k * ncINTT0
	if ncNTT0 > cap16 {
		ncNTT0 = cap16
	}
	m0 := ceilDiv(k*ncINTT0, ncNTT0)
	ncDyad := nextPow2(ceilDiv(4*ncNTT0, logn))
	ncINTT1 := ceilDiv(ncINTT0, k)
	ncNTT1 := ncINTT0
	ncMS := nextPow2(ceilDiv(2*ncNTT1, logn))
	if half := ncDyad / 2; ncMS < half {
		ncMS = half
	}
	return KeySwitchArch{
		NcINTT0: ncINTT0,
		NumNTT0: m0, NcNTT0: ncNTT0,
		NumDyad: m0 + 1, NcDyad: ncDyad,
		NumINTT1: 2, NcINTT1: ncINTT1,
		NumNTT1: 2, NcNTT1: ncNTT1,
		NumMS: 2, NcMS: ncMS,
	}
}

// GenerateArch picks the widest feasible INTT0 and derives the rest,
// reproducing the paper's "automatically instantiated at different scales
// with no manual tuning" claim (Section 6.3). Feasibility is judged by the
// design resource model against the board's DSP, REG and ALM capacity.
func GenerateArch(b Board, set ParamSet) (KeySwitchArch, error) {
	for nc := 32; nc >= 1; nc >>= 1 {
		arch := DeriveArch(b, set, nc)
		d := NewDesign(b, set, arch)
		r := d.Resources()
		if r.DSP <= b.DSP && r.REG <= b.REG && r.ALM <= b.ALM {
			return arch, nil
		}
	}
	return KeySwitchArch{}, fmt.Errorf("core: no feasible architecture for %s on %s", set.Name, b.Name)
}

// KeySwitchCycles is the steady-state initiation interval of the pipeline
// in cycles: the INTT0 stage processes the k RNS components of one input
// polynomial back to back, so one key switch completes every
// k · n·log n / (2·ncINTT0) cycles (Section 4.3; this reproduces every
// HEAX column of Table 8).
func (a KeySwitchArch) KeySwitchCycles(set ParamSet) int {
	n := set.N()
	return set.K * ModuleCycles(INTTModule, a.NcINTT0, n)
}
