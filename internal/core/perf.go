package core

// Perf computes HEAX throughput (operations per second) for a design from
// the module cycle counts and the board clock — the model behind the HEAX
// columns of Tables 7 and 8. The cycle counts themselves are validated
// against the dataflow simulator in internal/hwsim.
type Perf struct {
	Design *Design
}

// cyclesToOps converts a steady-state initiation interval into ops/s.
func (p Perf) cyclesToOps(cycles int) float64 {
	return float64(p.Design.Board.FreqMHz) * 1e6 / float64(cycles)
}

// NTTOps is the standalone NTT throughput: requests from the CPU are
// served by the (shared) NTT modules inside KeySwitch (Section 6.2), so
// one module of NcNTT0 cores transforms a polynomial in
// n·log n/(2·ncNTT0) cycles.
func (p Perf) NTTOps() float64 {
	n := p.Design.Set.N()
	return p.cyclesToOps(ModuleCycles(NTTModule, p.Design.Arch.NcNTT0, n))
}

// INTTOps is the standalone INTT throughput. The paper reports the same
// figure as NTT: INTT requests are also served at the NTT-module width.
func (p Perf) INTTOps() float64 {
	n := p.Design.Set.N()
	return p.cyclesToOps(ModuleCycles(INTTModule, p.Design.Arch.NcNTT0, n))
}

// DyadicOps is the dyadic-multiplication throughput of the standalone
// MULT module for one polynomial pair: n/ncDYD cycles.
func (p Perf) DyadicOps() float64 {
	n := p.Design.Set.N()
	return p.cyclesToOps(ModuleCycles(MULTModule, p.Design.StandaloneMULTCores, n))
}

// KeySwitchOps is the KeySwitch throughput (Table 8): the pipeline accepts
// a new operation every k·n·log n/(2·ncINTT0) cycles.
func (p Perf) KeySwitchOps() float64 {
	return p.cyclesToOps(p.Design.Arch.KeySwitchCycles(p.Design.Set))
}

// MulRelinOps is the ciphertext-multiply-plus-relinearize throughput.
// The MULT module overlaps fully with KeySwitch (its dyadic products take
// n/ncDYD cycles ≪ the KeySwitch interval), so the composite rate equals
// the KeySwitch rate — as Table 8 reports.
func (p Perf) MulRelinOps() float64 {
	return p.KeySwitchOps()
}

// StandardDesign builds the paper's design for a board/parameter set by
// running the architecture generator.
func StandardDesign(b Board, set ParamSet) (*Design, error) {
	arch, err := GenerateArch(b, set)
	if err != nil {
		return nil, err
	}
	return NewDesign(b, set, arch), nil
}

// EvaluatedConfigs enumerates the four (board, set) pairs of the paper's
// evaluation (Tables 6-8).
func EvaluatedConfigs() []struct {
	Board Board
	Set   ParamSet
} {
	return []struct {
		Board Board
		Set   ParamSet
	}{
		{BoardArria10, ParamSetA},
		{BoardStratix10, ParamSetA},
		{BoardStratix10, ParamSetB},
		{BoardStratix10, ParamSetC},
	}
}
