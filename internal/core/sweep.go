package core

// SweepPoint is one candidate scale of the architecture (one INTT0 width)
// with its derived composition, resource footprint, feasibility on the
// board, and modeled KeySwitch throughput. Sweeping ncINTT0 exposes the
// scaling behaviour behind Section 6.3: throughput doubles with the
// module width until a chip resource runs out.
type SweepPoint struct {
	NcINTT0      int
	Arch         KeySwitchArch
	Resources    Resources
	Feasible     bool
	LimitedBy    string // first exhausted resource ("" when feasible)
	KeySwitchOps float64
}

// SweepINTT0 evaluates every power-of-two INTT0 width from 1 to 32.
func SweepINTT0(b Board, set ParamSet) []SweepPoint {
	var out []SweepPoint
	for nc := 1; nc <= 32; nc <<= 1 {
		arch := DeriveArch(b, set, nc)
		d := NewDesign(b, set, arch)
		r := d.Resources()
		p := SweepPoint{
			NcINTT0:      nc,
			Arch:         arch,
			Resources:    r,
			Feasible:     true,
			KeySwitchOps: Perf{Design: d}.KeySwitchOps(),
		}
		switch {
		case r.DSP > b.DSP:
			p.Feasible, p.LimitedBy = false, "DSP"
		case r.REG > b.REG:
			p.Feasible, p.LimitedBy = false, "REG"
		case r.ALM > b.ALM:
			p.Feasible, p.LimitedBy = false, "ALM"
		case r.BRAMBits > b.BRAMBits:
			p.Feasible, p.LimitedBy = false, "BRAM"
		}
		out = append(out, p)
	}
	return out
}
