package core

// Design is a full HEAX instantiation: the KeySwitch pipeline plus the
// standalone MULT module, on a specific board for a specific parameter
// set ("The complete design encompasses the KeySwitch module along with
// the MULT module", Section 6.2).
type Design struct {
	Board Board
	Set   ParamSet
	Arch  KeySwitchArch
	// StandaloneMULTCores is the width of the separate MULT module used
	// for C-C and C-P multiplication; 16 in every evaluated design
	// (Section 6.3).
	StandaloneMULTCores int
}

// NewDesign assembles a design with the paper's standalone 16-core MULT.
func NewDesign(b Board, set ParamSet, arch KeySwitchArch) *Design {
	return &Design{Board: b, Set: set, Arch: arch, StandaloneMULTCores: 16}
}

// moduleInstance pairs a module type/width with a count, for inventories.
type moduleInstance struct {
	Kind  ModuleKind
	Cores int
	Count int
}

func (d *Design) modules() []moduleInstance {
	a := d.Arch
	return []moduleInstance{
		{INTTModule, a.NcINTT0, 1},
		{NTTModule, a.NcNTT0, a.NumNTT0},
		{MULTModule, a.NcDyad, a.NumDyad}, // DyadMult modules
		{INTTModule, a.NcINTT1, a.NumINTT1},
		{NTTModule, a.NcNTT1, a.NumNTT1},
		{MULTModule, a.NcMS, a.NumMS}, // final multiply-subtract
		{MULTModule, d.StandaloneMULTCores, 1},
	}
}

// Resources sums the compute-module resources of the design (the Table 6
// aggregate: Table 6's DSP/REG/ALM columns are, to within rounding, the
// sum of the Table 4 module rows for the Table 5 composition).
func (d *Design) Resources() Resources {
	n := d.Set.N()
	var total Resources
	for _, m := range d.modules() {
		total = total.Add(ModuleResources(m.Kind, m.Cores, n).Scale(m.Count))
	}
	// The platform shell's DSP blocks are counted in Table 6 (its
	// REG/ALM are not; the printed totals match the bare module sums).
	total.DSP += PaperShell[d.Board.Name].DSP
	// Replace the module-internal BRAM sum with the full memory
	// inventory (accumulator banks, buffers, resident keys).
	inv := d.MemoryInventory()
	total.BRAMBits = inv.TotalBits
	total.M20K = inv.TotalM20K
	return total
}

// MemoryInventory itemizes design-level BRAM use (Sections 4.3 and 5.1).
type MemoryInventory struct {
	ModuleBits      int // internal memories of all modules
	AccumBits       int // the two KeySwitch accumulation bank sets (f2-deep)
	InputBufBits    int // f1-deep input-polynomial buffers
	ResidentKeyBits int // switching keys held on chip (0 when spilled to DRAM)
	KeysOnDRAM      bool
	TotalBits       int
	TotalM20K       int
}

// KskBits returns the size of one switching key in bits:
// 2 columns × k digits × (k+1) moduli × n words (Section 5.1's O(nk²)
// growth).
func KskBits(set ParamSet) int {
	return 2 * set.K * (set.K + 1) * set.N() * WordBits
}

// MemoryInventory derives the design's on-chip memory plan. Keys are kept
// resident while the total fits in the board's BRAM; otherwise they move
// to DRAM (the Section 5.1 decision that Set-C forces).
func (d *Design) MemoryInventory() MemoryInventory {
	n := d.Set.N()
	polyBits := n * WordBits
	var inv MemoryInventory
	var m20k int
	for _, m := range d.modules() {
		b, u := moduleBRAM(m.Kind, m.Cores, n)
		inv.ModuleBits += b * m.Count
		m20k += u * m.Count
	}
	// Two bank sets, each holding (k+1) residue polynomials, f2-buffered
	// against "Data Dependency 2" (Section 4.3).
	inv.AccumBits = 2 * (d.Set.K + 1) * d.Arch.F2(d.Set.LogN) * polyBits
	// Quadruple-buffered input polynomial (f1) plus PCIe staging for the
	// standalone MULT (double-buffered operand pair, Section 5.2).
	inv.InputBufBits = d.Arch.F1()*polyBits + 2*2*polyBits

	// One switching key resides on chip when it fits alongside the fixed
	// inventory; otherwise keys stream from DRAM. This reproduces the
	// Section 5.1 decision: Set-A and Set-B keys stay in BRAM, Set-C's
	// O(nk²) keys do not. (The paper's own BRAM totals additionally
	// provision unitemized rotation-key storage; see EXPERIMENTS.md.)
	fixed := inv.ModuleBits + inv.AccumBits + inv.InputBufBits
	ksk := KskBits(d.Set)
	if fixed+ksk <= d.Board.BRAMBits {
		inv.ResidentKeyBits = ksk
	} else {
		inv.KeysOnDRAM = true
	}
	inv.TotalBits = fixed + inv.ResidentKeyBits
	// M20K: modules are counted structurally; bank/buffer/key memories
	// are wide sequential buffers packed near the word-packing bound
	// (Section 4.2), so their unit count tracks bits/M20K capacity with
	// the β=8 packing efficiency of ~98%.
	extraBits := inv.TotalBits - inv.ModuleBits
	m20k += ceilDiv(extraBits, M20KBits*54/55)
	inv.TotalM20K = m20k
	return inv
}
