// Package ntt implements the negacyclic number-theoretic transform of
// paper Algorithms 3 (NTT) and 4 (INTT) in the Longa–Naehrig form that
// Microsoft SEAL uses and that the HEAX NTT/INTT cores implement in
// hardware.
//
// The forward transform is a Cooley–Tukey decimation-in-time network whose
// twiddle factors are powers of a primitive 2n-th root of unity ψ stored
// in bit-reversed order; its output is in bit-reversed order. The inverse
// transform is the matching Gentleman–Sande network.
//
// Two implementations coexist:
//
//   - Forward/Inverse: the production hot path, using Harvey-style lazy
//     reduction. Forward keeps operands in [0, 4p) through every stage,
//     with the last stage emitting fully reduced outputs; Inverse keeps
//     operands in [0, 2p) and folds both the final reduction and the 1/n
//     scaling into the last stage's fused twiddles. Inner loops are 8-way
//     unrolled with re-sliced operands so the compiler drops bounds
//     checks, the first and last stages (where the butterfly stride
//     degenerates) have specialized code paths, and stages whose stride
//     is a vector multiple run on AVX-512 IFMA kernels when the CPU and
//     modulus allow (see lazy.go and ifma_amd64.s). Requires p < 2^62 so
//     4p fits a word — which MaxModulusBits64 already guarantees for
//     every modulus here.
//
//   - ForwardStrict/InverseStrict: the original per-butterfly
//     strict-reduction transforms, retained verbatim as the test oracle
//     (and as the closest software mirror of the paper's per-stage
//     datapath: InverseStrict halves every stage as Algorithm 4 does).
//
// Both produce bit-identical outputs in [0, p); the property tests in this
// package and the top-level lazy_equiv_test.go assert it across all Table
// 2 parameter sets and both w=64 and w=54 moduli.
//
// Keeping operands "in NTT form" turns ring multiplication into the dyadic
// (coefficient-wise) products the MULT module computes; see Section 3.1.
package ntt

import (
	"fmt"
	"math/bits"

	"heax/internal/primes"
	"heax/internal/uintmod"
)

// Tables holds the per-modulus precomputed twiddle factors for ring degree
// N, in the exact layout the transforms index: entry m+i of the forward
// table is the twiddle of butterfly group i in the stage with m groups.
type Tables struct {
	N   int
	Mod uintmod.Modulus
	// Psi is the canonical (numerically smallest) primitive 2N-th root of
	// unity mod P; PsiInv its inverse.
	Psi, PsiInv uint64

	psiRev      []uint64 // ψ^bitrev(i), forward twiddles
	psiRevShoup []uint64 // Algorithm 2 precomputation, w=64

	psiInvRevHalf      []uint64 // ψ^{-bitrev(i)} · 2^{-1}, inverse twiddles
	psiInvRevHalfShoup []uint64

	// Lazy-path inverse tables: the raw ψ^{-bitrev(i)} powers without the
	// per-stage ½ folding (lazy halving would need exact parities), plus
	// n^{-1} for the single closing scale-and-reduce pass.
	psiInvRev       []uint64
	psiInvRevShoup  []uint64
	nInv, nInvShoup uint64
	// ψ^{-bitrev(1)}·n^{-1}, the fused twiddle of the last inverse stage
	// (folding the 1/n scaling into the stage saves a full closing pass).
	psi1NInv, psi1NInvShoup uint64

	// w=54 Shoup precomputations (populated when P < 2^52) so the
	// hardware simulator can run the same tables through the 54-bit
	// datapath.
	psiRevShoup54        []uint64
	psiInvRevHalfShoup54 []uint64

	// 2^52-scaled Shoup twiddles for the AVX-512 IFMA stage kernels,
	// populated when p < 2^50 (every Table 2 prime); ifma additionally
	// requires CPU support and n >= 16.
	psiRevShoup52    []uint64
	psiInvRevShoup52 []uint64
	ifma             bool
}

// NewTables builds NTT tables for ring degree n (a power of two >= 2) and
// prime modulus p ≡ 1 (mod 2n).
func NewTables(p uint64, n int) (*Tables, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ntt: n = %d must be a power of two >= 2", n)
	}
	psi, err := primes.MinimalPrimitiveRoot2N(p, n)
	if err != nil {
		return nil, fmt.Errorf("ntt: %w", err)
	}
	m := uintmod.NewModulus(p)
	t := &Tables{
		N:   n,
		Mod: m,
		Psi: psi,
	}
	t.PsiInv = m.InvMod(psi)
	logn := bits.Len(uint(n)) - 1
	inv2 := m.InvMod(2)

	t.psiRev = make([]uint64, n)
	t.psiRevShoup = make([]uint64, n)
	t.psiInvRevHalf = make([]uint64, n)
	t.psiInvRevHalfShoup = make([]uint64, n)
	t.psiInvRev = make([]uint64, n)
	t.psiInvRevShoup = make([]uint64, n)

	pow := uint64(1)
	powInv := uint64(1)
	for i := 0; i < n; i++ {
		r := int(bitrev(uint(i), logn))
		t.psiRev[r] = pow
		t.psiInvRev[r] = powInv
		t.psiInvRevHalf[r] = m.MulMod(powInv, inv2)
		pow = m.MulMod(pow, psi)
		powInv = m.MulMod(powInv, t.PsiInv)
	}
	for i := 0; i < n; i++ {
		t.psiRevShoup[i] = uintmod.ShoupPrecomp(t.psiRev[i], p)
		t.psiInvRevShoup[i] = uintmod.ShoupPrecomp(t.psiInvRev[i], p)
		t.psiInvRevHalfShoup[i] = uintmod.ShoupPrecomp(t.psiInvRevHalf[i], p)
	}
	t.nInv = m.InvMod(uint64(n))
	t.nInvShoup = uintmod.ShoupPrecomp(t.nInv, p)
	t.psi1NInv = m.MulMod(t.psiInvRev[1], t.nInv)
	t.psi1NInvShoup = uintmod.ShoupPrecomp(t.psi1NInv, p)
	if bits.Len64(p) <= uintmod.MaxModulusBits54 {
		t.psiRevShoup54 = make([]uint64, n)
		t.psiInvRevHalfShoup54 = make([]uint64, n)
		for i := 0; i < n; i++ {
			t.psiRevShoup54[i] = uintmod.ShoupPrecomp54(t.psiRev[i], p)
			t.psiInvRevHalfShoup54[i] = uintmod.ShoupPrecomp54(t.psiInvRevHalf[i], p)
		}
	}
	if uintmod.IFMAUsable(p, n) && n >= 16 {
		t.ifma = true
		t.psiRevShoup52 = make([]uint64, n)
		t.psiInvRevShoup52 = make([]uint64, n)
		for i := 0; i < n; i++ {
			t.psiRevShoup52[i] = uintmod.ShoupPrecomp52(t.psiRev[i], p)
			t.psiInvRevShoup52[i] = uintmod.ShoupPrecomp52(t.psiInvRev[i], p)
		}
	}
	return t, nil
}

// bitrev reverses the low width bits of x.
func bitrev(x uint, width int) uint {
	return bits.Reverse(x) >> (bits.UintSize - width)
}

// BitrevPermute permutes a in place by bit reversal of indices. The
// transforms themselves never need this (bit-reversed order cancels
// between NTT and INTT); it is exported for tests and for the hardware
// simulator's output-ordering checks.
func BitrevPermute(a []uint64) {
	n := len(a)
	logn := bits.Len(uint(n)) - 1
	for i := 0; i < n; i++ {
		j := int(bitrev(uint(i), logn))
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
}

// ForwardStrict computes the in-place negacyclic NTT of a (Algorithm 3)
// with strict per-butterfly reduction: the output, in bit-reversed order,
// is ã_j = Σ_i a_i ψ^{(2i+1)·j'} where j' is the bit-reversal of j. It is
// the test oracle for the lazy Forward and is not on any hot path.
func (t *Tables) ForwardStrict(a []uint64) {
	if len(a) != t.N {
		panic("ntt: length mismatch")
	}
	p := t.Mod.P
	step := t.N
	for m := 1; m < t.N; m <<= 1 {
		step >>= 1
		for i := 0; i < m; i++ {
			j1 := 2 * i * step
			j2 := j1 + step
			w := t.psiRev[m+i]
			ws := t.psiRevShoup[m+i]
			for j := j1; j < j2; j++ {
				u := a[j]
				v := uintmod.MulRed(a[j+step], w, ws, p)
				a[j] = uintmod.AddMod(u, v, p)
				a[j+step] = uintmod.SubMod(u, v, p)
			}
		}
	}
}

// InverseStrict computes the in-place negacyclic INTT of a
// bit-reversed-order input (Algorithm 4) with strict per-butterfly
// reduction, returning coefficients in standard order with the 1/n factor
// already applied via per-stage halving. It is the test oracle for the
// lazy Inverse and is not on any hot path.
func (t *Tables) InverseStrict(a []uint64) {
	if len(a) != t.N {
		panic("ntt: length mismatch")
	}
	p := t.Mod.P
	step := 1
	for m := t.N >> 1; m >= 1; m >>= 1 {
		for i := 0; i < m; i++ {
			j1 := 2 * i * step
			j2 := j1 + step
			w := t.psiInvRevHalf[m+i]
			ws := t.psiInvRevHalfShoup[m+i]
			for j := j1; j < j2; j++ {
				u := a[j]
				v := a[j+step]
				a[j] = uintmod.Half(uintmod.AddMod(u, v, p), p)
				a[j+step] = uintmod.MulRed(uintmod.SubMod(u, v, p), w, ws, p)
			}
		}
		step <<= 1
	}
}

// ForwardTwiddle returns the forward twiddle (value, w=64 Shoup, w=54
// Shoup) at table index idx; the hardware simulator reads twiddles through
// this accessor so that it shares the exact tables the reference transform
// uses. The w=54 precomputation is 0 when the modulus exceeds 2^52.
func (t *Tables) ForwardTwiddle(idx int) (w, shoup64, shoup54 uint64) {
	w, shoup64 = t.psiRev[idx], t.psiRevShoup[idx]
	if t.psiRevShoup54 != nil {
		shoup54 = t.psiRevShoup54[idx]
	}
	return w, shoup64, shoup54
}

// InverseTwiddle is ForwardTwiddle for the inverse tables (ψ^{-1}·2^{-1}
// powers).
func (t *Tables) InverseTwiddle(idx int) (w, shoup64, shoup54 uint64) {
	w, shoup64 = t.psiInvRevHalf[idx], t.psiInvRevHalfShoup[idx]
	if t.psiInvRevHalfShoup54 != nil {
		shoup54 = t.psiInvRevHalfShoup54[idx]
	}
	return w, shoup64, shoup54
}

// NegacyclicConvolution computes c = a·b in Z_p[X]/(X^n+1) by the O(n^2)
// schoolbook formula from Section 3.1. It exists as an independent oracle
// for testing the transforms and is not used on any fast path.
func NegacyclicConvolution(a, b []uint64, p uint64) []uint64 {
	n := len(a)
	m := uintmod.NewModulus(p)
	c := make([]uint64, n)
	for j := 0; j < n; j++ {
		var acc uint64
		for i := 0; i <= j; i++ {
			acc = uintmod.AddMod(acc, m.MulMod(a[i], b[j-i]), p)
		}
		for i := j + 1; i < n; i++ {
			acc = uintmod.SubMod(acc, m.MulMod(a[i], b[j-i+n]), p)
		}
		c[j] = acc
	}
	return c
}
