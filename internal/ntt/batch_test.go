package ntt

import (
	"math/rand"
	"testing"

	"heax/internal/primes"
)

func batchTables(t *testing.T, bitsize, n int) *Tables {
	t.Helper()
	ps, err := primes.NTTPrimes(bitsize, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTables(ps[0], n)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// The batched stage-major transforms must be bit-identical to the
// per-row hot path (and hence to the strict oracle) for any batch size.
func TestBatchMatchesPerRow(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{16, 64, 1024, 4096} {
		for _, bitsize := range []int{30, 49, 59} {
			tb := batchTables(t, bitsize, n)
			p := tb.Mod.P
			for _, batch := range []int{1, 2, 3, 5} {
				rows := make([][]uint64, batch)
				want := make([][]uint64, batch)
				for r := range rows {
					rows[r] = make([]uint64, n)
					want[r] = make([]uint64, n)
					for j := range rows[r] {
						rows[r][j] = rng.Uint64() % p
					}
					copy(want[r], rows[r])
				}

				tb.ForwardBatch(rows...)
				for r := range want {
					tb.Forward(want[r])
				}
				for r := range rows {
					for j := range rows[r] {
						if rows[r][j] != want[r][j] {
							t.Fatalf("n=%d bits=%d batch=%d: forward row %d coeff %d: %d != %d",
								n, bitsize, batch, r, j, rows[r][j], want[r][j])
						}
					}
				}

				tb.InverseBatch(rows...)
				for r := range want {
					tb.Inverse(want[r])
				}
				for r := range rows {
					for j := range rows[r] {
						if rows[r][j] != want[r][j] {
							t.Fatalf("n=%d bits=%d batch=%d: inverse row %d coeff %d: %d != %d",
								n, bitsize, batch, r, j, rows[r][j], want[r][j])
						}
					}
				}
			}
		}
	}
}

// A batched round trip must return the inputs (NTT then INTT is the
// identity).
func TestBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tb := batchTables(t, 49, 2048)
	p := tb.Mod.P
	rows := make([][]uint64, 4)
	orig := make([][]uint64, 4)
	for r := range rows {
		rows[r] = make([]uint64, tb.N)
		orig[r] = make([]uint64, tb.N)
		for j := range rows[r] {
			rows[r][j] = rng.Uint64() % p
		}
		copy(orig[r], rows[r])
	}
	tb.ForwardBatch(rows...)
	tb.InverseBatch(rows...)
	for r := range rows {
		for j := range rows[r] {
			if rows[r][j] != orig[r][j] {
				t.Fatalf("round trip row %d coeff %d: %d != %d", r, j, rows[r][j], orig[r][j])
			}
		}
	}
}

func BenchmarkForwardBatch2(b *testing.B) {
	ps, err := primes.NTTPrimes(49, 8192, 1)
	if err != nil {
		b.Fatal(err)
	}
	tb, err := NewTables(ps[0], 8192)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	r0 := make([]uint64, tb.N)
	r1 := make([]uint64, tb.N)
	for j := range r0 {
		r0[j] = rng.Uint64() % tb.Mod.P
		r1[j] = rng.Uint64() % tb.Mod.P
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.ForwardBatch(r0, r1)
	}
}
