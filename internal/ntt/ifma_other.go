//go:build !amd64

package ntt

// Stage-kernel stubs for non-amd64 builds; Tables.ifma is always false
// there (uintmod.IFMAUsable reports false), so these never run.

func fwdStageIFMA(a, w, wShoup *uint64, m, step int, p uint64) {
	panic("ntt: fwdStageIFMA without IFMA support")
}

func invStageIFMA(a, w, wShoup *uint64, m, step int, p uint64) {
	panic("ntt: invStageIFMA without IFMA support")
}
