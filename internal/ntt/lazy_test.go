package ntt

// White-box tests for the lazy-reduction hot path: the strict transforms
// are the oracle, and the lazy ones must match them bit for bit across
// ring degrees, modulus widths (w=54-eligible primes below 2^52, IFMA
// primes below 2^50, and full w=64 primes up to 62 bits), and both the
// scalar and, where supported, the AVX-512 IFMA kernels.

import (
	"math/rand"
	"testing"

	"heax/internal/uintmod"
)

func TestLazyForwardMatchesStrict(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, bitsize := range []int{30, 36, 43, 49, 52, 60, 62} {
		for _, n := range []int{16, 64, 1024, 4096} {
			tb := newTestTables(t, bitsize, n)
			for trial := 0; trial < 4; trial++ {
				a := randomPoly(rng, n, tb.Mod.P)
				want := append([]uint64(nil), a...)
				tb.ForwardStrict(want)
				tb.Forward(a)
				for i := range a {
					if a[i] != want[i] {
						t.Fatalf("bits=%d n=%d (ifma=%v): forward mismatch at %d: %d != %d",
							bitsize, n, tb.ifma, i, a[i], want[i])
					}
				}
			}
		}
	}
}

func TestLazyInverseMatchesStrict(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, bitsize := range []int{30, 36, 43, 49, 52, 60, 62} {
		for _, n := range []int{16, 64, 1024, 4096} {
			tb := newTestTables(t, bitsize, n)
			for trial := 0; trial < 4; trial++ {
				a := randomPoly(rng, n, tb.Mod.P)
				want := append([]uint64(nil), a...)
				tb.InverseStrict(want)
				tb.Inverse(a)
				for i := range a {
					if a[i] != want[i] {
						t.Fatalf("bits=%d n=%d (ifma=%v): inverse mismatch at %d: %d != %d",
							bitsize, n, tb.ifma, i, a[i], want[i])
					}
				}
			}
		}
	}
}

// The IFMA dispatch must be exercised on eligible primes when the CPU
// supports it — a silent fall back to scalar would let kernel bugs hide.
func TestIFMADispatchActive(t *testing.T) {
	if !uintmod.HasIFMA() {
		t.Skip("no AVX-512 IFMA on this CPU")
	}
	tb := newTestTables(t, 49, 64)
	if !tb.ifma {
		t.Fatal("49-bit modulus should take the IFMA path")
	}
	big := newTestTables(t, 52, 64)
	if big.ifma {
		t.Fatal("52-bit modulus must not take the IFMA path (lazy range exceeds 52-bit lanes)")
	}
}

// FuzzLazyButterfly cross-checks the forward and inverse lazy butterflies
// against direct modular arithmetic, including the range invariants.
func FuzzLazyButterfly(f *testing.F) {
	f.Add(uint64(3), uint64(5), uint64(2), uint64(1)<<40+9)
	f.Add(uint64(0), uint64(0), uint64(0), uint64(97))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), uint64(1)<<61+85)
	f.Fuzz(func(t *testing.T, uRaw, vRaw, wRaw, pRaw uint64) {
		p := (pRaw >> 2) | 3 // odd, in [3, 2^62)
		twoP := 2 * p
		u := uRaw % (4 * p)
		v := vRaw % (4 * p)
		w := wRaw % p
		ws := uintmod.ShoupPrecomp(w, p)
		m := uintmod.NewModulus(p)

		x, y := butterfly(u, v, w, ws, p, twoP)
		if x >= 4*p || y >= 4*p {
			t.Fatalf("forward outputs escaped [0, 4p): x=%d y=%d p=%d", x, y, p)
		}
		um, vm := m.Reduce(u), m.Reduce(v)
		wantX := uintmod.AddMod(um, m.MulMod(w, vm), p)
		wantY := uintmod.SubMod(um, m.MulMod(w, vm), p)
		if m.Reduce(x) != wantX || m.Reduce(y) != wantY {
			t.Fatalf("forward butterfly incongruent: u=%d v=%d w=%d p=%d", u, v, w, p)
		}

		u2 := uRaw % twoP
		v2 := vRaw % twoP
		xi, yi := invButterfly(u2, v2, w, ws, p, twoP)
		if xi >= twoP || yi >= twoP {
			t.Fatalf("inverse outputs escaped [0, 2p): x=%d y=%d p=%d", xi, yi, p)
		}
		um2, vm2 := m.Reduce(u2), m.Reduce(v2)
		wantXi := uintmod.AddMod(um2, vm2, p)
		wantYi := m.MulMod(w, uintmod.SubMod(um2, vm2, p))
		if m.Reduce(xi) != wantXi || m.Reduce(yi) != wantYi {
			t.Fatalf("inverse butterfly incongruent: u=%d v=%d w=%d p=%d", u2, v2, w, p)
		}
	})
}
