// AVX-512 IFMA butterfly stage kernels.
//
// Each kernel runs one whole transform stage whose butterfly stride
// (step) is a multiple of 8: the m groups are walked in assembly, the
// group twiddle (value + 2^52-scaled Shoup constant) is broadcast once
// per group, and the inner loop does eight Harvey butterflies per
// iteration. Lazy invariants are identical to the scalar path in
// lazy.go: forward keeps coefficients in [0, 4p), inverse in [0, 2p).
// Requires p < 2^50 so the whole lazy range fits a 52-bit lane.

#include "textflag.h"

// func fwdStageIFMA(a, w, wShoup *uint64, m, step int, p uint64)
// a is the polynomial base; w and wShoup point at the stage's first
// twiddle (&psi[m], &psiShoup52[m]); the stage has m groups of stride
// step (step % 8 == 0).
TEXT ·fwdStageIFMA(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), DI
	MOVQ w+8(FP), R8
	MOVQ wShoup+16(FP), R9
	MOVQ m+24(FP), BX
	MOVQ step+32(FP), R10
	MOVQ p+40(FP), AX
	VPBROADCASTQ AX, Z12            // p
	VPADDQ Z12, Z12, Z13            // 2p
	MOVQ $0x000FFFFFFFFFFFFF, AX
	VPBROADCASTQ AX, Z14            // 2^52 - 1
group:
	VPBROADCASTQ (R8), Z10          // w
	VPBROADCASTQ (R9), Z11          // w' (2^52 scale)
	ADDQ $8, R8
	ADDQ $8, R9
	LEAQ (DI)(R10*8), SI            // y half starts step words in
	MOVQ R10, CX
	SHRQ $3, CX
inner:
	VMOVDQU64 (SI), Z1              // v in [0, 4p)
	VMOVDQU64 (DI), Z0              // u in [0, 4p)
	VPXORQ Z2, Z2, Z2
	VPMADD52HUQ Z11, Z1, Z2         // t = floor(v*w'/2^52)
	VPXORQ Z3, Z3, Z3
	VPMADD52LUQ Z10, Z1, Z3         // lo52(v*w)
	VPXORQ Z4, Z4, Z4
	VPMADD52LUQ Z12, Z2, Z4         // lo52(t*p)
	VPSUBQ Z4, Z3, Z3
	VPANDQ Z14, Z3, Z3              // wv = v*w - t*p in [0, 2p)
	VPSUBQ Z13, Z0, Z5
	VPMINUQ Z5, Z0, Z0              // fold u to [0, 2p)
	VPADDQ Z3, Z0, Z6               // X = u + wv
	VMOVDQU64 Z6, (DI)
	VPADDQ Z13, Z0, Z7
	VPSUBQ Z3, Z7, Z7               // Y = u - wv + 2p
	VMOVDQU64 Z7, (SI)
	ADDQ $64, DI
	ADDQ $64, SI
	DECQ CX
	JNZ  inner
	MOVQ SI, DI                     // next group starts where y ended
	DECQ BX
	JNZ  group
	VZEROUPPER
	RET

// func invStageIFMA(a, w, wShoup *uint64, m, step int, p uint64)
// The Gentleman–Sande counterpart: x, y = fold2p(u+v), w·(u-v+2p).
TEXT ·invStageIFMA(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), DI
	MOVQ w+8(FP), R8
	MOVQ wShoup+16(FP), R9
	MOVQ m+24(FP), BX
	MOVQ step+32(FP), R10
	MOVQ p+40(FP), AX
	VPBROADCASTQ AX, Z12            // p
	VPADDQ Z12, Z12, Z13            // 2p
	MOVQ $0x000FFFFFFFFFFFFF, AX
	VPBROADCASTQ AX, Z14
group:
	VPBROADCASTQ (R8), Z10          // w
	VPBROADCASTQ (R9), Z11          // w'
	ADDQ $8, R8
	ADDQ $8, R9
	LEAQ (DI)(R10*8), SI
	MOVQ R10, CX
	SHRQ $3, CX
inner:
	VMOVDQU64 (DI), Z0              // u in [0, 2p)
	VMOVDQU64 (SI), Z1              // v in [0, 2p)
	VPADDQ Z1, Z0, Z5               // u + v in [0, 4p)
	VPSUBQ Z13, Z5, Z6
	VPMINUQ Z6, Z5, Z5              // fold to [0, 2p)
	VMOVDQU64 Z5, (DI)
	VPADDQ Z13, Z0, Z7
	VPSUBQ Z1, Z7, Z7               // d = u - v + 2p in (0, 4p)
	VPXORQ Z2, Z2, Z2
	VPMADD52HUQ Z11, Z7, Z2         // t = floor(d*w'/2^52)
	VPXORQ Z3, Z3, Z3
	VPMADD52LUQ Z10, Z7, Z3         // lo52(d*w)
	VPXORQ Z4, Z4, Z4
	VPMADD52LUQ Z12, Z2, Z4         // lo52(t*p)
	VPSUBQ Z4, Z3, Z3
	VPANDQ Z14, Z3, Z3              // y = d*w - t*p in [0, 2p)
	VMOVDQU64 Z3, (SI)
	ADDQ $64, DI
	ADDQ $64, SI
	DECQ CX
	JNZ  inner
	MOVQ SI, DI
	DECQ BX
	JNZ  group
	VZEROUPPER
	RET
