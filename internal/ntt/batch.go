package ntt

// Batched multi-row transform entry points: transform several rows that
// share one modulus in a single stage-major sweep, loading each stage's
// twiddle factors once for the whole batch instead of once per row. This
// is the software analogue of HEAX's shared twiddle BRAMs feeding many
// butterfly cores (Section 4.2): the twiddle stream is the reused
// operand, the rows are the parallel lanes.
//
// The batch paths use exactly the same lazy butterflies as Forward and
// Inverse, applied in the same per-element order, so their outputs are
// bit-identical to the per-row transforms (asserted by batch_test.go).
// Call sites with a single row, tiny rings, or the IFMA kernels (which
// already stream twiddles at full vector width) fall back to the
// per-row hot path.

// batchCacheBudget bounds the row data a stage-major sweep touches per
// stage (bytes). Beyond it, walking every row once per stage evicts the
// rows between stages and the shared-twiddle win turns into a cache
// loss, so oversized batches are split into resident chunks.
const batchCacheBudget = 1 << 18

// batchChunk returns how many rows of length n fit the stage-major
// cache budget (at least 2 — a chunk of 1 falls back to the per-row
// transform anyway).
func batchChunk(n int) int {
	c := batchCacheBudget / (8 * n)
	if c < 2 {
		c = 2
	}
	return c
}

// BatchRows returns the preferred batch size for this table: callers
// producing many rows to transform get the best locality by preparing
// and transforming (and consuming) BatchRows rows at a time.
func (t *Tables) BatchRows() int {
	if t.N < 16 || t.ifma {
		return 1
	}
	return batchChunk(t.N)
}

// ForwardBatch computes the in-place negacyclic NTT of every row
// (Algorithm 3). All rows must have length N and fully reduced inputs;
// outputs are bit-identical to calling Forward on each row.
func (t *Tables) ForwardBatch(rows ...[]uint64) {
	if len(rows) == 0 {
		return
	}
	if len(rows) == 1 || t.N < 16 || t.ifma {
		for _, a := range rows {
			t.Forward(a)
		}
		return
	}
	if chunk := batchChunk(t.N); len(rows) > chunk {
		for len(rows) > 0 {
			c := chunk
			if c > len(rows) {
				c = len(rows)
			}
			t.ForwardBatch(rows[:c]...)
			rows = rows[c:]
		}
		return
	}
	for _, a := range rows {
		if len(a) != t.N {
			panic("ntt: length mismatch")
		}
	}
	n := t.N
	p := t.Mod.P
	twoP := 2 * p
	psi := t.psiRev
	psiShoup := t.psiRevShoup

	// First stage (m = 1): one twiddle across the two halves of every
	// row; inputs are < p, so the entry fold is skipped.
	{
		w, ws := psi[1], psiShoup[1]
		h := n >> 1
		for _, a := range rows {
			for j := 0; j < h; j += 8 {
				x := a[j : j+8 : j+8]
				y := a[j+h : j+h+8 : j+h+8]
				for k := 0; k < 8; k++ {
					x[k], y[k] = butterflyFirst(x[k], y[k], w, ws, p, twoP)
				}
			}
		}
	}

	step := n >> 1
	for m := 2; m < n; m <<= 1 {
		step >>= 1
		switch {
		case step >= 8:
			for i := 0; i < m; i++ {
				j1 := 2 * i * step
				w, ws := psi[m+i], psiShoup[m+i]
				for _, a := range rows {
					X := a[j1 : j1+step : j1+step]
					Y := a[j1+step : j1+2*step : j1+2*step]
					for j := 0; j < step; j += 8 {
						x := X[j : j+8 : j+8]
						y := Y[j : j+8 : j+8]
						for k := 0; k < 8; k++ {
							x[k], y[k] = butterfly(x[k], y[k], w, ws, p, twoP)
						}
					}
				}
			}
		case step > 1:
			for i := 0; i < m; i++ {
				j1 := 2 * i * step
				w, ws := psi[m+i], psiShoup[m+i]
				for _, a := range rows {
					for j := j1; j < j1+step; j++ {
						a[j], a[j+step] = butterfly(a[j], a[j+step], w, ws, p, twoP)
					}
				}
			}
		default:
			// Last stage (step == 1): adjacent pairs, fully reduced
			// outputs.
			for i := 0; i < m; i++ {
				w, ws := psi[m+i], psiShoup[m+i]
				for _, a := range rows {
					a[2*i], a[2*i+1] = butterflyLast(a[2*i], a[2*i+1], w, ws, p, twoP)
				}
			}
		}
	}
}

// InverseBatch computes the in-place negacyclic INTT of every
// bit-reversed-order row (Algorithm 4), returning fully reduced
// standard-order coefficients with the 1/n factor applied — bit-identical
// to calling Inverse on each row.
func (t *Tables) InverseBatch(rows ...[]uint64) {
	if len(rows) == 0 {
		return
	}
	if len(rows) == 1 || t.N < 16 || t.ifma {
		for _, a := range rows {
			t.Inverse(a)
		}
		return
	}
	if chunk := batchChunk(t.N); len(rows) > chunk {
		for len(rows) > 0 {
			c := chunk
			if c > len(rows) {
				c = len(rows)
			}
			t.InverseBatch(rows[:c]...)
			rows = rows[c:]
		}
		return
	}
	for _, a := range rows {
		if len(a) != t.N {
			panic("ntt: length mismatch")
		}
	}
	n := t.N
	p := t.Mod.P
	twoP := 2 * p
	psi := t.psiInvRev
	psiShoup := t.psiInvRevShoup
	h := n >> 1

	// First stage (step = 1): adjacent pairs; inputs are < p, so the sum
	// needs no fold.
	for i := 0; i < h; i++ {
		w, ws := psi[h+i], psiShoup[h+i]
		for _, a := range rows {
			a[2*i], a[2*i+1] = invButterflyFirst(a[2*i], a[2*i+1], w, ws, p, twoP)
		}
	}

	step := 2
	for m := n >> 2; m >= 2; m >>= 1 {
		if step >= 8 {
			for i := 0; i < m; i++ {
				j1 := 2 * i * step
				w, ws := psi[m+i], psiShoup[m+i]
				for _, a := range rows {
					X := a[j1 : j1+step : j1+step]
					Y := a[j1+step : j1+2*step : j1+2*step]
					for j := 0; j < step; j += 8 {
						x := X[j : j+8 : j+8]
						y := Y[j : j+8 : j+8]
						for k := 0; k < 8; k++ {
							x[k], y[k] = invButterfly(x[k], y[k], w, ws, p, twoP)
						}
					}
				}
			}
		} else {
			for i := 0; i < m; i++ {
				j1 := 2 * i * step
				w, ws := psi[m+i], psiShoup[m+i]
				for _, a := range rows {
					for j := j1; j < j1+step; j++ {
						a[j], a[j+step] = invButterfly(a[j], a[j+step], w, ws, p, twoP)
					}
				}
			}
		}
		step <<= 1
	}

	// Last stage (m = 1): fused n^{-1} twiddles, fully reduced outputs.
	nInv, nInvShoup := t.nInv, t.nInvShoup
	wLast, wLastShoup := t.psi1NInv, t.psi1NInvShoup
	for _, a := range rows {
		for j := 0; j < h; j += 8 {
			x := a[j : j+8 : j+8]
			y := a[j+h : j+h+8 : j+h+8]
			for k := 0; k < 8; k++ {
				x[k], y[k] = invButterflyLast(x[k], y[k], nInv, nInvShoup, wLast, wLastShoup, p, twoP)
			}
		}
	}
}
