package ntt

// This file is the production NTT hot path: Harvey-style lazy-reduction
// transforms (the technique of "Faster arithmetic for number-theoretic
// transforms", which Lattigo and SEAL both use on CPUs). The strict
// transforms in ntt.go are the oracle; these are the ones every caller
// (ring.Context, the CKKS evaluator, the benches) actually runs.
//
// Invariants, for p < 2^62 (MaxModulusBits64):
//
//   - Forward keeps every coefficient in [0, 4p). Each butterfly first
//     folds its u operand into [0, 2p), forms w·v in [0, 2p) by Shoup
//     multiplication without the final correction, and outputs u+wv and
//     u-wv+2p, both < 4p. The first stage skips the fold (inputs are
//     already < p) and the last stage emits fully reduced outputs, so no
//     separate reduction pass runs.
//   - Inverse keeps every coefficient in [0, 2p). Each butterfly outputs
//     u+v folded into [0, 2p) and w·(u-v+2p) in [0, 2p). The last stage
//     multiplies its two branches by n^{-1} and ψ^{-bitrev(1)}·n^{-1}
//     with full Shoup reductions, folding the 1/n scaling and the final
//     reduction into the stage itself.
//
// Inner loops are 8-way unrolled; the re-slicing (x := a[j:j+8:j+8])
// pins the slice length so the compiler proves the eight constant indices
// in range and drops all bounds checks.

import "heax/internal/uintmod"

// butterfly is the forward (Cooley–Tukey) lazy butterfly:
// (u, v) → (u + w·v, u − w·v) with inputs in [0, 4p), outputs in [0, 4p),
// and w·v in [0, 2p) via uncorrected Shoup multiplication.
func butterfly(u, v, w, wShoup, p, twoP uint64) (uint64, uint64) {
	if u >= twoP {
		u -= twoP
	}
	wv := uintmod.MulRedLazy(v, w, wShoup, p)
	return u + wv, u + twoP - wv
}

// butterflyFirst is butterfly without the entry fold, valid when u < 2p —
// true in the first stage, whose inputs are fully reduced.
func butterflyFirst(u, v, w, wShoup, p, twoP uint64) (uint64, uint64) {
	wv := uintmod.MulRedLazy(v, w, wShoup, p)
	return u + wv, u + twoP - wv
}

// butterflyLast is butterfly with both outputs folded all the way to
// [0, p), used in the final stage so the transform needs no closing
// reduction pass.
func butterflyLast(u, v, w, wShoup, p, twoP uint64) (uint64, uint64) {
	if u >= twoP {
		u -= twoP
	}
	wv := uintmod.MulRedLazy(v, w, wShoup, p)
	return uintmod.LazyReduce(u+wv, p, twoP), uintmod.LazyReduce(u+twoP-wv, p, twoP)
}

// invButterfly is the inverse (Gentleman–Sande) lazy butterfly:
// (u, v) → (u + v, w·(u − v)) with inputs and outputs in [0, 2p).
func invButterfly(u, v, w, wShoup, p, twoP uint64) (uint64, uint64) {
	x := u + v
	if x >= twoP {
		x -= twoP
	}
	return x, uintmod.MulRedLazy(u+twoP-v, w, wShoup, p)
}

// invButterflyFirst is invButterfly without the sum fold, valid when the
// inputs are fully reduced (u+v < 2p) — true in the first stage.
func invButterflyFirst(u, v, w, wShoup, p, twoP uint64) (uint64, uint64) {
	return u + v, uintmod.MulRedLazy(u+twoP-v, w, wShoup, p)
}

// Forward computes the in-place negacyclic NTT of a (Algorithm 3) on the
// lazy hot path. Input coefficients must be < p; the output is in
// bit-reversed order, fully reduced, and bit-identical to ForwardStrict.
func (t *Tables) Forward(a []uint64) {
	if len(a) != t.N {
		panic("ntt: length mismatch")
	}
	if t.N < 16 {
		// The unrolled kernels need at least 16 coefficients; tiny rings
		// (tests, toy examples) take the strict path, which is exact.
		t.ForwardStrict(a)
		return
	}
	n := t.N
	p := t.Mod.P
	twoP := p * 2
	psi := t.psiRev
	psiShoup := t.psiRevShoup

	// First stage (m = 1): a single twiddle across the two array halves;
	// inputs are < p, so the entry fold is skipped.
	if t.ifma {
		fwdStageIFMA(&a[0], &psi[1], &t.psiRevShoup52[1], 1, n>>1, p)
	} else {
		w, ws := psi[1], psiShoup[1]
		h := n >> 1
		for j := 0; j < h; j += 8 {
			x := a[j : j+8 : j+8]
			y := a[j+h : j+h+8 : j+h+8]
			x[0], y[0] = butterflyFirst(x[0], y[0], w, ws, p, twoP)
			x[1], y[1] = butterflyFirst(x[1], y[1], w, ws, p, twoP)
			x[2], y[2] = butterflyFirst(x[2], y[2], w, ws, p, twoP)
			x[3], y[3] = butterflyFirst(x[3], y[3], w, ws, p, twoP)
			x[4], y[4] = butterflyFirst(x[4], y[4], w, ws, p, twoP)
			x[5], y[5] = butterflyFirst(x[5], y[5], w, ws, p, twoP)
			x[6], y[6] = butterflyFirst(x[6], y[6], w, ws, p, twoP)
			x[7], y[7] = butterflyFirst(x[7], y[7], w, ws, p, twoP)
		}
	}

	step := n >> 1
	for m := 2; m < n; m <<= 1 {
		step >>= 1
		switch {
		case step >= 8:
			if t.ifma {
				fwdStageIFMA(&a[0], &psi[m], &t.psiRevShoup52[m], m, step, p)
				continue
			}
			for i := 0; i < m; i++ {
				j1 := 2 * i * step
				w, ws := psi[m+i], psiShoup[m+i]
				X := a[j1 : j1+step : j1+step]
				Y := a[j1+step : j1+2*step : j1+2*step]
				for j := 0; j < step; j += 8 {
					x := X[j : j+8 : j+8]
					y := Y[j : j+8 : j+8]
					x[0], y[0] = butterfly(x[0], y[0], w, ws, p, twoP)
					x[1], y[1] = butterfly(x[1], y[1], w, ws, p, twoP)
					x[2], y[2] = butterfly(x[2], y[2], w, ws, p, twoP)
					x[3], y[3] = butterfly(x[3], y[3], w, ws, p, twoP)
					x[4], y[4] = butterfly(x[4], y[4], w, ws, p, twoP)
					x[5], y[5] = butterfly(x[5], y[5], w, ws, p, twoP)
					x[6], y[6] = butterfly(x[6], y[6], w, ws, p, twoP)
					x[7], y[7] = butterfly(x[7], y[7], w, ws, p, twoP)
				}
			}
		case step == 4:
			// Two 8-coefficient groups per iteration.
			for i := 0; i < m; i += 2 {
				wv := psi[m+i : m+i+2 : m+i+2]
				wsv := psiShoup[m+i : m+i+2 : m+i+2]
				x := a[8*i : 8*i+16 : 8*i+16]
				x[0], x[4] = butterfly(x[0], x[4], wv[0], wsv[0], p, twoP)
				x[1], x[5] = butterfly(x[1], x[5], wv[0], wsv[0], p, twoP)
				x[2], x[6] = butterfly(x[2], x[6], wv[0], wsv[0], p, twoP)
				x[3], x[7] = butterfly(x[3], x[7], wv[0], wsv[0], p, twoP)
				x[8], x[12] = butterfly(x[8], x[12], wv[1], wsv[1], p, twoP)
				x[9], x[13] = butterfly(x[9], x[13], wv[1], wsv[1], p, twoP)
				x[10], x[14] = butterfly(x[10], x[14], wv[1], wsv[1], p, twoP)
				x[11], x[15] = butterfly(x[11], x[15], wv[1], wsv[1], p, twoP)
			}
		case step == 2:
			// Four 4-coefficient groups per iteration.
			for i := 0; i < m; i += 4 {
				wv := psi[m+i : m+i+4 : m+i+4]
				wsv := psiShoup[m+i : m+i+4 : m+i+4]
				x := a[4*i : 4*i+16 : 4*i+16]
				x[0], x[2] = butterfly(x[0], x[2], wv[0], wsv[0], p, twoP)
				x[1], x[3] = butterfly(x[1], x[3], wv[0], wsv[0], p, twoP)
				x[4], x[6] = butterfly(x[4], x[6], wv[1], wsv[1], p, twoP)
				x[5], x[7] = butterfly(x[5], x[7], wv[1], wsv[1], p, twoP)
				x[8], x[10] = butterfly(x[8], x[10], wv[2], wsv[2], p, twoP)
				x[9], x[11] = butterfly(x[9], x[11], wv[2], wsv[2], p, twoP)
				x[12], x[14] = butterfly(x[12], x[14], wv[3], wsv[3], p, twoP)
				x[13], x[15] = butterfly(x[13], x[15], wv[3], wsv[3], p, twoP)
			}
		default:
			// Last stage (step == 1): eight adjacent-pair groups at a
			// time, emitting fully reduced outputs.
			for i := 0; i < m; i += 8 {
				wv := psi[m+i : m+i+8 : m+i+8]
				wsv := psiShoup[m+i : m+i+8 : m+i+8]
				x := a[2*i : 2*i+16 : 2*i+16]
				x[0], x[1] = butterflyLast(x[0], x[1], wv[0], wsv[0], p, twoP)
				x[2], x[3] = butterflyLast(x[2], x[3], wv[1], wsv[1], p, twoP)
				x[4], x[5] = butterflyLast(x[4], x[5], wv[2], wsv[2], p, twoP)
				x[6], x[7] = butterflyLast(x[6], x[7], wv[3], wsv[3], p, twoP)
				x[8], x[9] = butterflyLast(x[8], x[9], wv[4], wsv[4], p, twoP)
				x[10], x[11] = butterflyLast(x[10], x[11], wv[5], wsv[5], p, twoP)
				x[12], x[13] = butterflyLast(x[12], x[13], wv[6], wsv[6], p, twoP)
				x[14], x[15] = butterflyLast(x[14], x[15], wv[7], wsv[7], p, twoP)
			}
		}
	}
}

// Inverse computes the in-place negacyclic INTT of a bit-reversed-order
// input (Algorithm 4) on the lazy hot path, returning fully reduced
// standard-order coefficients with the 1/n factor applied — bit-identical
// to InverseStrict.
func (t *Tables) Inverse(a []uint64) {
	if len(a) != t.N {
		panic("ntt: length mismatch")
	}
	if t.N < 16 {
		t.InverseStrict(a)
		return
	}
	n := t.N
	p := t.Mod.P
	twoP := p * 2
	psi := t.psiInvRev
	psiShoup := t.psiInvRevShoup

	// First stage (step = 1): adjacent pairs, twiddles ψ^{-bitrev(h+i)};
	// inputs are < p, so the sum needs no fold.
	h := n >> 1
	for i := 0; i < h; i += 8 {
		wv := psi[h+i : h+i+8 : h+i+8]
		wsv := psiShoup[h+i : h+i+8 : h+i+8]
		x := a[2*i : 2*i+16 : 2*i+16]
		x[0], x[1] = invButterflyFirst(x[0], x[1], wv[0], wsv[0], p, twoP)
		x[2], x[3] = invButterflyFirst(x[2], x[3], wv[1], wsv[1], p, twoP)
		x[4], x[5] = invButterflyFirst(x[4], x[5], wv[2], wsv[2], p, twoP)
		x[6], x[7] = invButterflyFirst(x[6], x[7], wv[3], wsv[3], p, twoP)
		x[8], x[9] = invButterflyFirst(x[8], x[9], wv[4], wsv[4], p, twoP)
		x[10], x[11] = invButterflyFirst(x[10], x[11], wv[5], wsv[5], p, twoP)
		x[12], x[13] = invButterflyFirst(x[12], x[13], wv[6], wsv[6], p, twoP)
		x[14], x[15] = invButterflyFirst(x[14], x[15], wv[7], wsv[7], p, twoP)
	}

	step := 2
	for m := n >> 2; m >= 2; m >>= 1 {
		switch {
		case step >= 8:
			if t.ifma {
				invStageIFMA(&a[0], &psi[m], &t.psiInvRevShoup52[m], m, step, p)
				step <<= 1
				continue
			}
			for i := 0; i < m; i++ {
				j1 := 2 * i * step
				w, ws := psi[m+i], psiShoup[m+i]
				X := a[j1 : j1+step : j1+step]
				Y := a[j1+step : j1+2*step : j1+2*step]
				for j := 0; j < step; j += 8 {
					x := X[j : j+8 : j+8]
					y := Y[j : j+8 : j+8]
					x[0], y[0] = invButterfly(x[0], y[0], w, ws, p, twoP)
					x[1], y[1] = invButterfly(x[1], y[1], w, ws, p, twoP)
					x[2], y[2] = invButterfly(x[2], y[2], w, ws, p, twoP)
					x[3], y[3] = invButterfly(x[3], y[3], w, ws, p, twoP)
					x[4], y[4] = invButterfly(x[4], y[4], w, ws, p, twoP)
					x[5], y[5] = invButterfly(x[5], y[5], w, ws, p, twoP)
					x[6], y[6] = invButterfly(x[6], y[6], w, ws, p, twoP)
					x[7], y[7] = invButterfly(x[7], y[7], w, ws, p, twoP)
				}
			}
		case step == 4:
			for i := 0; i < m; i += 2 {
				wv := psi[m+i : m+i+2 : m+i+2]
				wsv := psiShoup[m+i : m+i+2 : m+i+2]
				x := a[8*i : 8*i+16 : 8*i+16]
				x[0], x[4] = invButterfly(x[0], x[4], wv[0], wsv[0], p, twoP)
				x[1], x[5] = invButterfly(x[1], x[5], wv[0], wsv[0], p, twoP)
				x[2], x[6] = invButterfly(x[2], x[6], wv[0], wsv[0], p, twoP)
				x[3], x[7] = invButterfly(x[3], x[7], wv[0], wsv[0], p, twoP)
				x[8], x[12] = invButterfly(x[8], x[12], wv[1], wsv[1], p, twoP)
				x[9], x[13] = invButterfly(x[9], x[13], wv[1], wsv[1], p, twoP)
				x[10], x[14] = invButterfly(x[10], x[14], wv[1], wsv[1], p, twoP)
				x[11], x[15] = invButterfly(x[11], x[15], wv[1], wsv[1], p, twoP)
			}
		default: // step == 2
			for i := 0; i < m; i += 4 {
				wv := psi[m+i : m+i+4 : m+i+4]
				wsv := psiShoup[m+i : m+i+4 : m+i+4]
				x := a[4*i : 4*i+16 : 4*i+16]
				x[0], x[2] = invButterfly(x[0], x[2], wv[0], wsv[0], p, twoP)
				x[1], x[3] = invButterfly(x[1], x[3], wv[0], wsv[0], p, twoP)
				x[4], x[6] = invButterfly(x[4], x[6], wv[1], wsv[1], p, twoP)
				x[5], x[7] = invButterfly(x[5], x[7], wv[1], wsv[1], p, twoP)
				x[8], x[10] = invButterfly(x[8], x[10], wv[2], wsv[2], p, twoP)
				x[9], x[11] = invButterfly(x[9], x[11], wv[2], wsv[2], p, twoP)
				x[12], x[14] = invButterfly(x[12], x[14], wv[3], wsv[3], p, twoP)
				x[13], x[15] = invButterfly(x[13], x[15], wv[3], wsv[3], p, twoP)
			}
		}
		step <<= 1
	}

	// Last stage (m = 1): both branches carry fused twiddles — n^{-1} on
	// the sum, ψ^{-bitrev(1)}·n^{-1} on the difference — and a full Shoup
	// reduction, so the transform ends fully reduced with no extra pass.
	nInv, nInvShoup := t.nInv, t.nInvShoup
	wLast, wLastShoup := t.psi1NInv, t.psi1NInvShoup
	for j := 0; j < h; j += 8 {
		x := a[j : j+8 : j+8]
		y := a[j+h : j+h+8 : j+h+8]
		x[0], y[0] = invButterflyLast(x[0], y[0], nInv, nInvShoup, wLast, wLastShoup, p, twoP)
		x[1], y[1] = invButterflyLast(x[1], y[1], nInv, nInvShoup, wLast, wLastShoup, p, twoP)
		x[2], y[2] = invButterflyLast(x[2], y[2], nInv, nInvShoup, wLast, wLastShoup, p, twoP)
		x[3], y[3] = invButterflyLast(x[3], y[3], nInv, nInvShoup, wLast, wLastShoup, p, twoP)
		x[4], y[4] = invButterflyLast(x[4], y[4], nInv, nInvShoup, wLast, wLastShoup, p, twoP)
		x[5], y[5] = invButterflyLast(x[5], y[5], nInv, nInvShoup, wLast, wLastShoup, p, twoP)
		x[6], y[6] = invButterflyLast(x[6], y[6], nInv, nInvShoup, wLast, wLastShoup, p, twoP)
		x[7], y[7] = invButterflyLast(x[7], y[7], nInv, nInvShoup, wLast, wLastShoup, p, twoP)
	}
}

// invButterflyLast is the fused last inverse stage: (u, v) →
// (n^{-1}·(u+v), ψ^{-bitrev(1)}·n^{-1}·(u−v)), both fully reduced.
func invButterflyLast(u, v, nInv, nInvShoup, w, wShoup, p, twoP uint64) (uint64, uint64) {
	return uintmod.MulRed(u+v, nInv, nInvShoup, p),
		uintmod.MulRed(u+twoP-v, w, wShoup, p)
}
