//go:build amd64

package ntt

// Stage kernels implemented in ifma_amd64.s. Availability is gated by
// uintmod.IFMAUsable; see the Tables.ifma field.

func fwdStageIFMA(a, w, wShoup *uint64, m, step int, p uint64)
func invStageIFMA(a, w, wShoup *uint64, m, step int, p uint64)
