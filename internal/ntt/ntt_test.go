package ntt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"heax/internal/primes"
	"heax/internal/uintmod"
)

// newTestTables builds tables for a fresh NTT prime of the given size.
func newTestTables(t testing.TB, bitSize, n int) *Tables {
	t.Helper()
	ps, err := primes.NTTPrimes(bitSize, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTables(ps[0], n)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func randomPoly(rng *rand.Rand, n int, p uint64) []uint64 {
	a := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64() % p
	}
	return a
}

func TestNewTablesErrors(t *testing.T) {
	if _, err := NewTables(97, 100); err == nil {
		t.Error("non-power-of-two n should fail")
	}
	if _, err := NewTables(97, 4096); err == nil {
		t.Error("p not 1 mod 2n should fail")
	}
}

func TestBitrevPermuteInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomPoly(rng, 64, 1<<30)
	b := append([]uint64(nil), a...)
	BitrevPermute(b)
	BitrevPermute(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("bitrev permute is not an involution")
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{4, 16, 256, 4096} {
		tb := newTestTables(t, 30, n)
		a := randomPoly(rng, n, tb.Mod.P)
		got := append([]uint64(nil), a...)
		tb.Forward(got)
		tb.Inverse(got)
		for i := range a {
			if got[i] != a[i] {
				t.Fatalf("n=%d: INTT(NTT(a)) != a at %d: %d != %d", n, i, got[i], a[i])
			}
		}
	}
}

func TestRoundTripLargeModuli(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, bits := range []int{36, 44, 52, 60} {
		n := 1 << 12
		tb := newTestTables(t, bits, n)
		a := randomPoly(rng, n, tb.Mod.P)
		got := append([]uint64(nil), a...)
		tb.Forward(got)
		tb.Inverse(got)
		for i := range a {
			if got[i] != a[i] {
				t.Fatalf("bits=%d: roundtrip mismatch at %d", bits, i)
			}
		}
	}
}

// The transform must turn negacyclic convolution into dyadic products.
func TestConvolutionTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{8, 64, 256} {
		tb := newTestTables(t, 30, n)
		p := tb.Mod.P
		a := randomPoly(rng, n, p)
		b := randomPoly(rng, n, p)
		want := NegacyclicConvolution(a, b, p)

		ah := append([]uint64(nil), a...)
		bh := append([]uint64(nil), b...)
		tb.Forward(ah)
		tb.Forward(bh)
		ch := make([]uint64, n)
		for i := range ch {
			ch[i] = tb.Mod.MulMod(ah[i], bh[i])
		}
		tb.Inverse(ch)
		for i := range want {
			if ch[i] != want[i] {
				t.Fatalf("n=%d: convolution mismatch at %d: %d != %d", n, i, ch[i], want[i])
			}
		}
	}
}

// Forward must evaluate the polynomial at odd powers of psi: the NTT of
// the monomial X is the vector of psi^{2i+1} values (in bit-reversed
// positions), and the NTT of a constant is that constant everywhere.
func TestForwardEvaluatesAtOddRoots(t *testing.T) {
	n := 16
	tb := newTestTables(t, 30, n)
	p := tb.Mod.P

	constant := make([]uint64, n)
	constant[0] = 7
	tb.Forward(constant)
	for i, v := range constant {
		if v != 7 {
			t.Fatalf("NTT(const)[%d] = %d, want 7", i, v)
		}
	}

	x := make([]uint64, n)
	x[1] = 1
	tb.Forward(x)
	// x[j] must equal psi^{2*bitrev(j)+1}.
	seen := map[uint64]bool{}
	for _, v := range x {
		seen[v] = true
	}
	m := uintmod.NewModulus(p)
	for i := 0; i < n; i++ {
		want := m.PowMod(tb.Psi, uint64(2*i+1))
		if !seen[want] {
			t.Fatalf("psi^{%d} missing from NTT(X)", 2*i+1)
		}
	}
}

// Linearity: NTT(a + c*b) = NTT(a) + c*NTT(b).
func TestQuickLinearity(t *testing.T) {
	n := 64
	tb := newTestTables(t, 30, n)
	p := tb.Mod.P
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64, cRaw uint64) bool {
		r := rand.New(rand.NewSource(seed))
		c := cRaw % p
		cs := uintmod.ShoupPrecomp(c, p)
		a := randomPoly(r, n, p)
		b := randomPoly(r, n, p)
		lhs := make([]uint64, n)
		for i := range lhs {
			lhs[i] = uintmod.AddMod(a[i], uintmod.MulRed(b[i], c, cs, p), p)
		}
		tb.Forward(lhs)
		tb.Forward(a)
		tb.Forward(b)
		for i := range lhs {
			want := uintmod.AddMod(a[i], uintmod.MulRed(b[i], c, cs, p), p)
			if lhs[i] != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Negacyclic shift property: multiplying by X rotates coefficients with a
// sign flip at the wrap, i.e. NTT-domain multiply by NTT(X) equals shift.
func TestShiftProperty(t *testing.T) {
	n := 32
	tb := newTestTables(t, 30, n)
	p := tb.Mod.P
	rng := rand.New(rand.NewSource(6))
	a := randomPoly(rng, n, p)

	want := make([]uint64, n)
	want[0] = uintmod.NegMod(a[n-1], p)
	copy(want[1:], a[:n-1])

	x := make([]uint64, n)
	x[1] = 1
	ah := append([]uint64(nil), a...)
	tb.Forward(ah)
	tb.Forward(x)
	for i := range ah {
		ah[i] = tb.Mod.MulMod(ah[i], x[i])
	}
	tb.Inverse(ah)
	for i := range want {
		if ah[i] != want[i] {
			t.Fatalf("shift mismatch at %d", i)
		}
	}
}

func TestTwiddleAccessors(t *testing.T) {
	n := 16
	tb := newTestTables(t, 40, n) // < 2^52, so w54 tables exist
	for i := 0; i < n; i++ {
		w, s64, s54 := tb.ForwardTwiddle(i)
		if s64 != uintmod.ShoupPrecomp(w, tb.Mod.P) {
			t.Fatalf("forward shoup64 mismatch at %d", i)
		}
		if s54 != uintmod.ShoupPrecomp54(w, tb.Mod.P) {
			t.Fatalf("forward shoup54 mismatch at %d", i)
		}
		wi, si64, si54 := tb.InverseTwiddle(i)
		if si64 != uintmod.ShoupPrecomp(wi, tb.Mod.P) {
			t.Fatalf("inverse shoup64 mismatch at %d", i)
		}
		if si54 != uintmod.ShoupPrecomp54(wi, tb.Mod.P) {
			t.Fatalf("inverse shoup54 mismatch at %d", i)
		}
	}
	big := newTestTables(t, 60, n) // > 2^52: w54 precomp must be absent (0)
	_, _, s54 := big.ForwardTwiddle(1)
	if s54 != 0 {
		t.Fatal("expected no w54 precomputation for 60-bit modulus")
	}
}

func BenchmarkForward4096(b *testing.B)  { benchForward(b, 1<<12) }
func BenchmarkForward8192(b *testing.B)  { benchForward(b, 1<<13) }
func BenchmarkForward16384(b *testing.B) { benchForward(b, 1<<14) }

func benchForward(b *testing.B, n int) {
	tb := newTestTables(b, 52, n)
	rng := rand.New(rand.NewSource(7))
	a := randomPoly(rng, n, tb.Mod.P)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Forward(a)
	}
}

func BenchmarkInverse4096(b *testing.B) {
	tb := newTestTables(b, 52, 1<<12)
	rng := rand.New(rand.NewSource(8))
	a := randomPoly(rng, 1<<12, tb.Mod.P)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Inverse(a)
	}
}
