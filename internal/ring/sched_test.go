package ring

import (
	"sync/atomic"
	"testing"
	"time"
)

// The group must run every task exactly once, including tasks submitted
// from inside other tasks (the digit→tiles fan-out pattern).
func TestGroupNestedSubmission(t *testing.T) {
	ctx := testContext(t, 64, 2, 30)
	for _, workers := range []int{1, 2, 4, 8} {
		ctx.SetWorkers(workers)
		var count atomic.Int64
		g := ctx.NewGroup()
		const outer, inner = 7, 13
		for i := 0; i < outer; i++ {
			g.GoFunc(func() {
				count.Add(1)
				for j := 0; j < inner; j++ {
					g.GoFunc(func() { count.Add(1) })
				}
			})
		}
		g.Wait()
		ctx.PutGroup(g)
		if got := count.Load(); got != outer*(1+inner) {
			t.Fatalf("workers=%d: ran %d tasks, want %d", workers, got, outer*(1+inner))
		}
	}
}

// Group reuse through the pool must not leak completion state between
// batches (a stale wake signal may only cost a spurious wakeup).
func TestGroupReuse(t *testing.T) {
	ctx := testContext(t, 64, 2, 30)
	ctx.SetWorkers(4)
	for round := 0; round < 50; round++ {
		var count atomic.Int64
		g := ctx.NewGroup()
		for i := 0; i < 20; i++ {
			g.GoFunc(func() { count.Add(1) })
		}
		g.Wait()
		if got := count.Load(); got != 20 {
			t.Fatalf("round %d: ran %d tasks, want 20", round, got)
		}
		ctx.PutGroup(g)
	}
}

// RunRows must hit every row exactly once at any worker count, including
// explicit fan-out requests larger than GOMAXPROCS.
func TestRunRowsAllWorkerCounts(t *testing.T) {
	ctx := testContext(t, 64, 2, 30)
	const rows = 37
	for _, workers := range []int{1, 2, 3, 8, 64} {
		hits := make([]atomic.Int32, rows)
		ctx.runRowsWorkers(rows, workers, true, func(i int) {
			hits[i].Add(1)
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: row %d hit %d times", workers, i, hits[i].Load())
			}
		}
	}
}

// Concurrent RunRows calls from independent goroutines must not
// interfere (the caller-assisted Wait may execute other groups' tasks).
func TestRunRowsConcurrentCallers(t *testing.T) {
	ctx := testContext(t, 64, 2, 30)
	ctx.SetWorkers(4)
	const callers, rows = 8, 33
	done := make(chan [rows]int32, callers)
	for c := 0; c < callers; c++ {
		go func() {
			var hits [rows]atomic.Int32
			ctx.runRowsWorkers(rows, 4, true, func(i int) { hits[i].Add(1) })
			var out [rows]int32
			for i := range hits {
				out[i] = hits[i].Load()
			}
			done <- out
		}()
	}
	for c := 0; c < callers; c++ {
		out := <-done
		for i, h := range out {
			if h != 1 {
				t.Fatalf("caller %d: row %d hit %d times", c, i, h)
			}
		}
	}
}

// A full queue must degrade to inline execution, never deadlock: submit
// far more tasks than the queue holds from a single goroutine.
func TestGroupQueueOverflowRunsInline(t *testing.T) {
	ctx := testContext(t, 64, 2, 30)
	ctx.SetWorkers(2)
	var count atomic.Int64
	g := ctx.NewGroup()
	const n = 10000 // queue capacity is 512
	for i := 0; i < n; i++ {
		g.GoFunc(func() { count.Add(1) })
	}
	g.Wait()
	ctx.PutGroup(g)
	if got := count.Load(); got != n {
		t.Fatalf("ran %d tasks, want %d", got, n)
	}
}

// A group on a fresh multi-worker context must actually start pool
// workers: a long-running task submitted first must not serialize the
// whole graph behind it (regression test — NewGroup must ensure the
// worker complement, not rely on a prior RunRows having started them).
func TestFreshContextGroupStartsWorkers(t *testing.T) {
	ctx := testContext(t, 64, 2, 30)
	ctx.SetWorkers(4)
	g := ctx.NewGroup()
	release := make(chan struct{})
	ran := make(chan struct{}, 1)
	g.GoFunc(func() { <-release }) // parks one worker
	g.GoFunc(func() { ran <- struct{}{} })
	// The second task must complete while the first is still blocked —
	// impossible if everything drains inline on one goroutine at Wait.
	select {
	case <-ran:
	case <-timeAfter(t):
		t.Fatal("second task never ran while first was blocked: no pool workers started")
	}
	close(release)
	g.Wait()
	ctx.PutGroup(g)
}

// Close must release the pool; subsequent operations still complete
// (caller-side), and closing twice is harmless.
func TestContextClose(t *testing.T) {
	ctx := testContext(t, 64, 2, 30)
	ctx.SetWorkers(4)
	var count atomic.Int64
	g := ctx.NewGroup()
	for i := 0; i < 10; i++ {
		g.GoFunc(func() { count.Add(1) })
	}
	g.Wait()
	ctx.PutGroup(g)
	ctx.Close()
	ctx.Close()
	g = ctx.NewGroup()
	for i := 0; i < 10; i++ {
		g.GoFunc(func() { count.Add(1) })
	}
	g.Wait()
	ctx.PutGroup(g)
	if got := count.Load(); got != 20 {
		t.Fatalf("ran %d tasks, want 20", got)
	}
}

func timeAfter(t *testing.T) <-chan time.Time {
	t.Helper()
	return time.After(5 * time.Second)
}

// Row-parallel ops must produce identical results at every worker count.
func TestRowOpsWorkerEquivalence(t *testing.T) {
	ctx := testContext(t, 64, 2, 30)
	a := ctx.NewPoly(2)
	b := ctx.NewPoly(2)
	for i := 0; i < 2; i++ {
		p := ctx.Basis.Primes[i]
		for j := 0; j < ctx.N; j++ {
			a.Coeffs[i][j] = uint64(3*j+i+1) % p
			b.Coeffs[i][j] = uint64(7*j+2*i+5) % p
		}
	}
	ctx.SetWorkers(1)
	want := ctx.NewPoly(2)
	ctx.MulCoeffs(a, b, want)
	ctx.NTT(want)
	for _, workers := range []int{2, 4} {
		ctx.SetWorkers(workers)
		got := ctx.NewPoly(2)
		ctx.MulCoeffs(a, b, got)
		ctx.NTT(got)
		if !got.Equal(want) {
			t.Fatalf("workers=%d: row op result differs from serial", workers)
		}
	}
}
