package ring

import (
	"math/big"
	"math/rand"

	"heax/internal/uintmod"
)

// Sampler draws the random polynomials the CKKS key-generation and
// encryption primitives need (Section 3: a ← U(R_qp), s ← χ, e ← Ω).
//
// The underlying generator is a seeded math/rand source so that tests and
// experiments are reproducible. A production deployment would substitute a
// CSPRNG; nothing in the call surface would change.
type Sampler struct {
	ctx *Context
	rng *rand.Rand
	// CBDWidth controls the error distribution Ω: the error is a sum of
	// CBDWidth fair ±1 trials, a centered binomial with standard
	// deviation sqrt(CBDWidth/2). The default 21 gives σ ≈ 3.24, matching
	// the σ = 3.2 of the HE security standard the paper cites [1].
	CBDWidth int
}

// NewSampler creates a deterministic sampler for ctx from seed.
func NewSampler(ctx *Context, seed int64) *Sampler {
	return &Sampler{ctx: ctx, rng: rand.New(rand.NewSource(seed)), CBDWidth: 21}
}

// uniformMod draws a uniform value in [0, p) by rejection, avoiding the
// modulo bias of a bare Uint64()%p.
func (s *Sampler) uniformMod(p uint64) uint64 {
	bound := (^uint64(0) / p) * p
	for {
		v := s.rng.Uint64()
		if v < bound {
			return v % p
		}
	}
}

// Uniform fills a fresh polynomial with rows independent uniform residue
// rows: by CRT this is exactly a ← U(R_q) for q the product of those
// primes.
func (s *Sampler) Uniform(rows int) *Poly {
	p := s.ctx.NewPoly(rows)
	for i := 0; i < rows; i++ {
		pi := s.ctx.Basis.Primes[i]
		row := p.Coeffs[i]
		for j := range row {
			row[j] = s.uniformMod(pi)
		}
	}
	return p
}

// Ternary samples a polynomial with coefficients uniform in {-1, 0, 1}
// (the key distribution χ), represented consistently across all rows.
func (s *Sampler) Ternary(rows int) *Poly {
	p := s.ctx.NewPoly(rows)
	for j := 0; j < s.ctx.N; j++ {
		t := s.rng.Intn(3) - 1
		for i := 0; i < rows; i++ {
			pi := s.ctx.Basis.Primes[i]
			switch t {
			case 1:
				p.Coeffs[i][j] = 1
			case -1:
				p.Coeffs[i][j] = pi - 1
			}
		}
	}
	return p
}

// Error samples an error polynomial from the centered binomial
// distribution Ω, represented consistently across all rows.
func (s *Sampler) Error(rows int) *Poly {
	p := s.ctx.NewPoly(rows)
	for j := 0; j < s.ctx.N; j++ {
		e := 0
		for t := 0; t < s.CBDWidth; t++ {
			e += int(s.rng.Int63() & 1)
			e -= int(s.rng.Int63() & 1)
		}
		for i := 0; i < rows; i++ {
			pi := s.ctx.Basis.Primes[i]
			if e >= 0 {
				p.Coeffs[i][j] = uint64(e)
			} else {
				p.Coeffs[i][j] = pi - uint64(-e)
			}
		}
	}
	return p
}

// ConstPoly returns the polynomial with constant coefficient v (signed)
// and zeros elsewhere, over rows primes.
func (c *Context) ConstPoly(v int64, rows int) *Poly {
	p := c.NewPoly(rows)
	for i := 0; i < rows; i++ {
		p.Coeffs[i][0] = c.Basis.ReduceInt64(v, i)
	}
	return p
}

// SetCoeffBigRows is a helper for tests: sets coefficient j of every row
// from the signed word v.
func (c *Context) SetCoeffInt64(p *Poly, j int, v int64) {
	for i := range p.Coeffs {
		p.Coeffs[i][j] = c.Basis.ReduceInt64(v, i)
	}
}

// InfNormSigned returns the max absolute centered value of a
// coefficient-domain polynomial, using CRT composition over its rows.
// It is a test/diagnostic helper (noise measurement), not a fast path.
func (c *Context) InfNormSigned(p *Poly) float64 {
	rows := p.Rows()
	basis, err := c.Basis.Sub(rows)
	if err != nil {
		panic(err)
	}
	res := make([]uint64, rows)
	max := 0.0
	for j := 0; j < c.N; j++ {
		for i := 0; i < rows; i++ {
			res[i] = p.Coeffs[i][j]
		}
		x := basis.ComposeCentered(res)
		f, _ := new(big.Float).SetInt(x).Float64()
		if f < 0 {
			f = -f
		}
		if f > max {
			max = f
		}
	}
	return max
}

// MulRedRow multiplies one residue row in place by a scalar with Shoup
// precomputation: row = row * v mod p.
func MulRedRow(row []uint64, v uint64, p uint64) {
	vs := uintmod.ShoupPrecomp(v, p)
	for j := range row {
		row[j] = uintmod.MulRed(row[j], v, vs, p)
	}
}
