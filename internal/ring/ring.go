// Package ring implements arithmetic in R_q = Z_q[X]/(X^n+1) in RNS
// representation: the polynomial-level substrate beneath the CKKS scheme
// and the HEAX modules. A Poly stores one residue polynomial per basis
// prime; a Context bundles the ring degree, the RNS basis, and one set of
// NTT tables per prime.
//
// All evaluation-path operations work level-wise (on the first level+1
// primes) exactly as the full-RNS CKKS of Section 3 requires, and
// polynomials are kept in NTT form whenever possible so multiplications
// are dyadic.
package ring

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"heax/internal/ntt"
	"heax/internal/rns"
	"heax/internal/uintmod"
)

// Context carries everything needed for R_q arithmetic over a basis.
type Context struct {
	N     int
	LogN  int
	Basis *rns.Basis
	// Tables[i] transforms residues mod Basis.Primes[i].
	Tables []*ntt.Tables

	// workers bounds the goroutines row-wise operations may fan out to
	// (the "full-RNS variants parallelize trivially" observation of
	// Section 2, applied to every row loop, not just the transforms).
	// Defaults to GOMAXPROCS; SetWorkers(1) forces serial execution.
	workers int

	// sched is the persistent worker pool behind RunRows and the task
	// groups of sched.go; workers are started lazily and live for the
	// context's lifetime.
	sched *scheduler

	// pool recycles full-basis Poly buffers so evaluator hot paths
	// (key switching, rescale) allocate nothing per call. Held by
	// pointer so Fork views share one pool.
	pool *sync.Pool

	// autoTables caches the NTT-domain automorphism permutation per
	// Galois element: a rotation workload reuses a handful of elements
	// across millions of calls, and each table is n ints — recomputing
	// (and reallocating) it per rotation would dominate the key switch
	// it feeds. Keyed by Galois element, value []int. Shared across
	// Fork views like the buffer pool.
	autoTables *sync.Map
}

// NewContext builds a Context for ring degree n over the given primes,
// each of which must be ≡ 1 (mod 2n).
func NewContext(n int, primeList []uint64) (*Context, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ring: n = %d must be a power of two >= 2", n)
	}
	basis, err := rns.NewBasis(primeList)
	if err != nil {
		return nil, err
	}
	ctx := &Context{
		N:          n,
		LogN:       bits.Len(uint(n)) - 1,
		Basis:      basis,
		workers:    runtime.GOMAXPROCS(0),
		sched:      newScheduler(),
		pool:       &sync.Pool{},
		autoTables: &sync.Map{},
	}
	ctx.Tables = make([]*ntt.Tables, basis.K())
	for i, p := range basis.Primes {
		t, err := ntt.NewTables(p, n)
		if err != nil {
			return nil, fmt.Errorf("ring: prime %d: %w", p, err)
		}
		ctx.Tables[i] = t
	}
	return ctx, nil
}

// K returns the number of primes in the context's basis.
func (c *Context) K() int { return c.Basis.K() }

// SetWorkers caps the goroutines row-wise operations fan out to; w <= 1
// forces serial execution. The setting is not safe to change while
// operations run concurrently.
func (c *Context) SetWorkers(w int) {
	if w < 1 {
		w = 1
	}
	c.workers = w
}

// Workers returns the current worker cap.
func (c *Context) Workers() int { return c.workers }

// Fork returns a view of the context with its own worker cap. The view
// shares everything else — basis, NTT tables, the persistent worker
// pool, the Poly buffer pool and the automorphism-table cache — so an
// evaluator can bound its fan-out without affecting other users of the
// same ring (SetWorkers on the original mutates shared state;
// SetWorkers on a fork stays local to it).
func (c *Context) Fork(workers int) *Context {
	cc := *c
	cc.SetWorkers(workers)
	return &cc
}

// parallelThreshold is the minimum total coefficient count (rows*N) at
// which fanning out to the worker pool beats running serially; below it
// the scheduling overhead dominates the row work.
const parallelThreshold = 1 << 13

// GetPoly returns a zeroed rows-row polynomial drawn from the context's
// buffer pool. Callers that return it with PutPoly when done make the
// surrounding operation allocation-free; callers that let it escape
// simply pay one allocation, as with NewPoly.
func (c *Context) GetPoly(rows int) *Poly {
	p := c.GetPolyNoZero(rows)
	for i := 0; i < rows; i++ {
		clear(p.Coeffs[i])
	}
	return p
}

// GetPolyNoZero is GetPoly without the zeroing pass: the rows hold
// whatever a previous user left behind. Only for scratch that is fully
// overwritten before being read (accumulators must use GetPoly).
func (c *Context) GetPolyNoZero(rows int) *Poly {
	if rows < 1 || rows > c.K() {
		panic(fmt.Sprintf("ring: rows %d out of range [1,%d]", rows, c.K()))
	}
	v := c.pool.Get()
	if v == nil {
		p := c.NewPoly(c.K())
		p.Coeffs = p.Coeffs[:rows]
		return p
	}
	p := v.(*Poly)
	p.Coeffs = p.Coeffs[:rows]
	return p
}

// PutPoly returns a GetPoly buffer to the pool. The poly must not be
// used afterwards. Polys that were not drawn from this context's pool
// (wrong backing shape) are dropped rather than recycled.
func (c *Context) PutPoly(p *Poly) {
	if p == nil || cap(p.Coeffs) != c.K() {
		return
	}
	p.Coeffs = p.Coeffs[:cap(p.Coeffs)]
	for i := range p.Coeffs {
		if len(p.Coeffs[i]) != c.N {
			return
		}
	}
	c.pool.Put(p)
}

// Poly is an RNS polynomial: Coeffs[i][j] is coefficient j modulo prime i.
// The number of rows determines the poly's level (rows-1).
type Poly struct {
	Coeffs [][]uint64
}

// NewPoly allocates a zero polynomial with the given number of RNS rows.
func (c *Context) NewPoly(rows int) *Poly {
	if rows < 1 || rows > c.K() {
		panic(fmt.Sprintf("ring: rows %d out of range [1,%d]", rows, c.K()))
	}
	backing := make([]uint64, rows*c.N)
	p := &Poly{Coeffs: make([][]uint64, rows)}
	for i := range p.Coeffs {
		p.Coeffs[i], backing = backing[:c.N:c.N], backing[c.N:]
	}
	return p
}

// NewPolyPair allocates two zero polynomials sharing one backing array —
// result pairs (the two components of a ciphertext) in five allocations
// instead of six.
func (c *Context) NewPolyPair(rows int) (*Poly, *Poly) {
	if rows < 1 || rows > c.K() {
		panic(fmt.Sprintf("ring: rows %d out of range [1,%d]", rows, c.K()))
	}
	backing := make([]uint64, 2*rows*c.N)
	mk := func() *Poly {
		p := &Poly{Coeffs: make([][]uint64, rows)}
		for i := range p.Coeffs {
			p.Coeffs[i], backing = backing[:c.N:c.N], backing[c.N:]
		}
		return p
	}
	return mk(), mk()
}

// Rows returns the number of RNS components.
func (p *Poly) Rows() int { return len(p.Coeffs) }

// Level returns Rows()-1, the CKKS level of the polynomial.
func (p *Poly) Level() int { return len(p.Coeffs) - 1 }

// CopyOf returns a deep copy of p, allocated as one contiguous backing
// array (three allocations total, independent of the row count).
func CopyOf(p *Poly) *Poly {
	rows := len(p.Coeffs)
	n := 0
	for _, r := range p.Coeffs {
		if len(r) > n {
			n = len(r)
		}
	}
	backing := make([]uint64, rows*n)
	q := &Poly{Coeffs: make([][]uint64, rows)}
	for i := range p.Coeffs {
		q.Coeffs[i], backing = backing[:n:n], backing[n:]
		copy(q.Coeffs[i], p.Coeffs[i])
	}
	return q
}

// Resize returns a view of p truncated to rows RNS components (sharing
// storage) or panics if p has fewer.
func (p *Poly) Resize(rows int) *Poly {
	if rows > len(p.Coeffs) {
		panic("ring: cannot grow a poly with Resize")
	}
	return &Poly{Coeffs: p.Coeffs[:rows]}
}

// Equal reports deep equality.
func (p *Poly) Equal(q *Poly) bool {
	if len(p.Coeffs) != len(q.Coeffs) {
		return false
	}
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			if p.Coeffs[i][j] != q.Coeffs[i][j] {
				return false
			}
		}
	}
	return true
}

// NTT transforms p in place (all rows) to the evaluation domain, fanning
// rows out across the context's workers.
func (c *Context) NTT(p *Poly) {
	c.RunRows(len(p.Coeffs), func(i int) {
		c.Tables[i].Forward(p.Coeffs[i])
	})
}

// INTT transforms p in place back to the coefficient domain.
func (c *Context) INTT(p *Poly) {
	c.RunRows(len(p.Coeffs), func(i int) {
		c.Tables[i].Inverse(p.Coeffs[i])
	})
}

// NTTParallel is NTT with an explicit worker count, overriding the
// context-level setting — the multithreaded-baseline knob the CPU-threads
// ablation bench sweeps. NTT itself already parallelizes; this remains
// for callers that need a specific fan-out.
func (c *Context) NTTParallel(p *Poly, workers int) {
	c.runRowsWorkers(len(p.Coeffs), workers, true, func(i int) {
		c.Tables[i].Forward(p.Coeffs[i])
	})
}

// INTTParallel is the inverse counterpart of NTTParallel.
func (c *Context) INTTParallel(p *Poly, workers int) {
	c.runRowsWorkers(len(p.Coeffs), workers, true, func(i int) {
		c.Tables[i].Inverse(p.Coeffs[i])
	})
}

// rowsOf returns the common row count of the operands, panicking on
// mismatch; helpers below use it so shape errors fail loudly at the call
// site rather than corrupting data.
func rowsOf(ps ...*Poly) int {
	r := len(ps[0].Coeffs)
	for _, p := range ps[1:] {
		if len(p.Coeffs) != r {
			panic("ring: operand row mismatch")
		}
	}
	return r
}

// Add sets out = a + b.
func (c *Context) Add(a, b, out *Poly) {
	c.RunRows(rowsOf(a, b, out), func(i int) {
		p := c.Basis.Primes[i]
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = uintmod.AddMod(ai[j], bi[j], p)
		}
	})
}

// Sub sets out = a - b.
func (c *Context) Sub(a, b, out *Poly) {
	c.RunRows(rowsOf(a, b, out), func(i int) {
		p := c.Basis.Primes[i]
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = uintmod.SubMod(ai[j], bi[j], p)
		}
	})
}

// Neg sets out = -a.
func (c *Context) Neg(a, out *Poly) {
	c.RunRows(rowsOf(a, out), func(i int) {
		p := c.Basis.Primes[i]
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = uintmod.NegMod(ai[j], p)
		}
	})
}

// MulCoeffs sets out = a ⊙ b (dyadic product; both operands must be in the
// same domain, normally NTT).
func (c *Context) MulCoeffs(a, b, out *Poly) {
	c.RunRows(rowsOf(a, b, out), func(i int) {
		m := c.Basis.Mods[i]
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = m.MulMod(ai[j], bi[j])
		}
	})
}

// MulCoeffsAdd sets out += a ⊙ b, the multiply-accumulate at the heart of
// the key-switching inner loop (Algorithm 7 lines 11-12).
func (c *Context) MulCoeffsAdd(a, b, out *Poly) {
	c.RunRows(rowsOf(a, b, out), func(i int) {
		m := c.Basis.Mods[i]
		p := c.Basis.Primes[i]
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = uintmod.AddMod(oi[j], m.MulMod(ai[j], bi[j]), p)
		}
	})
}

// MulCoeffsTensor computes the degree-2 tensor product of two degree-1
// ciphertexts (Algorithm 5) in a single row pass: c0 = a0 ⊙ b0,
// c1 = a0 ⊙ b1 + a1 ⊙ b0, c2 = a1 ⊙ b1. One fan-out and one sweep over
// the four operands instead of four.
func (c *Context) MulCoeffsTensor(a0, a1, b0, b1, c0, c1, c2 *Poly) {
	c.RunRows(rowsOf(a0, a1, b0, b1, c0, c1, c2), func(i int) {
		m := c.Basis.Mods[i]
		p := c.Basis.Primes[i]
		x0, x1 := a0.Coeffs[i], a1.Coeffs[i]
		y0, y1 := b0.Coeffs[i], b1.Coeffs[i]
		o0, o1, o2 := c0.Coeffs[i], c1.Coeffs[i], c2.Coeffs[i]
		for j := range o0 {
			u0, u1, v0, v1 := x0[j], x1[j], y0[j], y1[j]
			o0[j] = m.MulMod(u0, v0)
			o1[j] = uintmod.AddMod(m.MulMod(u0, v1), m.MulMod(u1, v0), p)
			o2[j] = m.MulMod(u1, v1)
		}
	})
}

// RowIFMA reports whether row i's dyadic hot path runs on the AVX-512
// IFMA kernels; it decides which scale ShoupPoly precomputes at.
func (c *Context) RowIFMA(i int) bool {
	return uintmod.IFMAUsable(c.Basis.Primes[i], c.N)
}

// ShoupPoly precomputes the per-coefficient Shoup constants of b for use
// as the fixed operand of MulCoeffsLazy/MulAddLazy. b must be fully
// reduced. The scale (2^52 for IFMA rows, 2^64 otherwise) matches what
// the dyadic kernels of this context consume — always pair a ShoupPoly
// with the context that produced it.
func (c *Context) ShoupPoly(b *Poly) *Poly {
	out := c.NewPoly(len(b.Coeffs))
	c.RunRows(len(b.Coeffs), func(i int) {
		p := c.Basis.Primes[i]
		bi, oi := b.Coeffs[i], out.Coeffs[i]
		if c.RowIFMA(i) {
			for j := range oi {
				oi[j] = uintmod.ShoupPrecomp52(bi[j], p)
			}
		} else {
			for j := range oi {
				oi[j] = uintmod.ShoupPrecomp(bi[j], p)
			}
		}
	})
	return out
}

// MulCoeffsLazy sets out = a ⊙ b with b's Shoup constants precomputed by
// ShoupPoly: one fused Shoup multiplication per coefficient instead of a
// full Barrett reduction. a may hold lazy values in [0, 4p); the output
// is fully reduced.
func (c *Context) MulCoeffsLazy(a, b, bShoup, out *Poly) {
	c.RunRows(rowsOf(a, b, bShoup, out), func(i int) {
		c.MulCoeffsLazyRow(a.Coeffs[i], b.Coeffs[i], bShoup.Coeffs[i], out.Coeffs[i], i)
	})
}

// MulCoeffsLazyRow is MulCoeffsLazy for a single RNS row (basis index i).
//
//heax:noalloc
func (c *Context) MulCoeffsLazyRow(a, b, bShoup, out []uint64, i int) {
	p := c.Basis.Primes[i]
	if c.RowIFMA(i) {
		uintmod.VecMulShoup(out, a, b, bShoup, p)
		return
	}
	for j := range out {
		out[j] = uintmod.MulRed(a[j], b[j], bShoup[j], p)
	}
}

// MulAddLazy sets out += a ⊙ b with lazy reduction: the accumulator rows
// stay in [0, 2p) across any chain length, deferring the final reduction
// to one ReduceLazy pass. This is the key-switching inner loop
// (Algorithm 7 lines 11-12) with the per-coefficient Barrett reduction
// and modular addition both gone.
func (c *Context) MulAddLazy(a, b, bShoup, out *Poly) {
	c.RunRows(rowsOf(a, b, bShoup, out), func(i int) {
		c.MulAddLazyRow(a.Coeffs[i], b.Coeffs[i], bShoup.Coeffs[i], out.Coeffs[i], i)
	})
}

// MulAddLazyRow is MulAddLazy for a single RNS row (basis index i).
//
//heax:noalloc
func (c *Context) MulAddLazyRow(a, b, bShoup, out []uint64, i int) {
	p := c.Basis.Primes[i]
	if c.RowIFMA(i) {
		uintmod.VecMulShoupAddLazy(out, a, b, bShoup, p)
		return
	}
	twoP := 2 * p
	for j := range out {
		out[j] = uintmod.MulAddLazy(out[j], a[j], b[j], bShoup[j], p, twoP)
	}
}

// MulAddLazyRow2 fuses the two key-switch MACs of one (digit, prime)
// tile: out0 += a ⊙ b0 and out1 += a ⊙ b1 in a single pass, loading the
// shared operand a once. On IFMA rows it falls back to the two vector
// kernels (which already stream at full width).
//
//heax:noalloc
func (c *Context) MulAddLazyRow2(a, b0, b0Shoup, out0, b1, b1Shoup, out1 []uint64, i int) {
	p := c.Basis.Primes[i]
	if c.RowIFMA(i) {
		uintmod.VecMulShoupAddLazy(out0, a, b0, b0Shoup, p)
		uintmod.VecMulShoupAddLazy(out1, a, b1, b1Shoup, p)
		return
	}
	twoP := 2 * p
	for j := range a {
		aj := a[j]
		out0[j] = uintmod.MulAddLazy(out0[j], aj, b0[j], b0Shoup[j], p, twoP)
		out1[j] = uintmod.MulAddLazy(out1[j], aj, b1[j], b1Shoup[j], p, twoP)
	}
}

// ReduceLazy maps rows with lazy values in [0, 2p) to fully reduced
// values; a and out may alias.
func (c *Context) ReduceLazy(a, out *Poly) {
	c.RunRows(rowsOf(a, out), func(i int) {
		c.ReduceLazyRow(a.Coeffs[i], out.Coeffs[i], i)
	})
}

// ReduceLazyRow is ReduceLazy for a single RNS row (basis index i).
func (c *Context) ReduceLazyRow(a, out []uint64, i int) {
	p := c.Basis.Primes[i]
	for j := range out {
		x := a[j]
		if x >= p {
			x -= p
		}
		out[j] = x
	}
}

// MulScalar sets out = a * s for a word-sized scalar.
func (c *Context) MulScalar(a *Poly, s uint64, out *Poly) {
	c.RunRows(rowsOf(a, out), func(i int) {
		m := c.Basis.Mods[i]
		si := m.Reduce(s)
		sh := uintmod.ShoupPrecomp(si, m.P)
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = uintmod.MulRed(ai[j], si, sh, m.P)
		}
	})
}

// GaloisElement returns the Galois group element used to rotate CKKS slots
// left by step positions: 5^step mod 2n (Section 3.4; the plaintext slots
// are indexed along the orbit of 5 in Z_{2n}^*).
func GaloisElement(step, n int) uint64 {
	m := uint64(2 * n)
	g := uint64(1)
	step = ((step % n) + n) % n // the orbit of 5 has order n/2; normalize
	for i := 0; i < step; i++ {
		g = g * 5 % m
	}
	return g
}

// GaloisConjugate is the Galois element of complex conjugation, 2n-1.
func GaloisConjugate(n int) uint64 { return uint64(2*n - 1) }

// Automorphism applies X -> X^g to a coefficient-domain polynomial.
// g must be odd (all Galois elements of the power-of-two cyclotomic are).
func (c *Context) Automorphism(a *Poly, g uint64, out *Poly) {
	if g&1 == 0 {
		panic("ring: Galois element must be odd")
	}
	n := uint64(c.N)
	mask := 2*n - 1
	c.RunRows(rowsOf(a, out), func(i int) {
		p := c.Basis.Primes[i]
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := uint64(0); j < n; j++ {
			e := j * g & mask
			v := ai[j]
			if e < n {
				oi[e] = v
			} else {
				oi[e-n] = uintmod.NegMod(v, p)
			}
		}
	})
}

// AutomorphismNTTTable returns the slot permutation implementing
// X -> X^g directly on bit-reversed NTT-domain polynomials:
// out[i] = in[table[i]]. Tables are computed once per Galois element and
// cached on the context (safe for concurrent use; the returned slice is
// shared and must not be mutated).
func (c *Context) AutomorphismNTTTable(g uint64) []int {
	if t, ok := c.autoTables.Load(g); ok {
		return t.([]int)
	}
	table := c.automorphismNTTTable(g)
	if t, loaded := c.autoTables.LoadOrStore(g, table); loaded {
		return t.([]int)
	}
	return table
}

func (c *Context) automorphismNTTTable(g uint64) []int {
	n := uint64(c.N)
	logn := c.LogN
	table := make([]int, n)
	for i := uint64(0); i < n; i++ {
		rev := uint64(bits.Reverse64(i) >> (64 - logn))
		idx := g * (2*rev + 1) // odd, so (idx-1)/2 == idx>>1
		idx = idx >> 1 & (n - 1)
		table[i] = int(bits.Reverse64(idx) >> (64 - logn))
	}
	return table
}

// AutomorphismNTT applies a precomputed table to an NTT-domain poly.
func (c *Context) AutomorphismNTT(a *Poly, table []int, out *Poly) {
	if a == out {
		panic("ring: AutomorphismNTT cannot run in place")
	}
	c.RunRows(rowsOf(a, out), func(i int) {
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = ai[table[j]]
		}
	})
}

// AutomorphismNTTPair permutes the two components of a ciphertext in a
// single row pass — one worker fan-out (and one closure) instead of two,
// which is what keeps the in-place rotation at the hot-path allocation
// budget.
func (c *Context) AutomorphismNTTPair(a0, a1 *Poly, table []int, out0, out1 *Poly) {
	if a0 == out0 || a1 == out1 || a0 == out1 || a1 == out0 {
		panic("ring: AutomorphismNTT cannot run in place")
	}
	c.RunRows(rowsOf(a0, a1, out0, out1), func(i int) {
		x0, o0 := a0.Coeffs[i], out0.Coeffs[i]
		x1, o1 := a1.Coeffs[i], out1.Coeffs[i]
		for j := range o0 {
			t := table[j]
			o0[j] = x0[t]
			o1[j] = x1[t]
		}
	})
}

// FloorDropLast implements RNS flooring (Algorithm 6): given a polynomial
// over rows primes in NTT form whose last row is the prime being dropped
// (p), it returns ⌊p^{-1}·a⌋ over the first rows-1 primes, in NTT form.
// When round is true the result is ⌊p^{-1}·a⌉ instead (add ⌊p/2⌋ before
// dividing), which is what rescaling uses to keep the approximation error
// centered.
//
// The polynomial's rows correspond to the first rows primes of the basis.
func (c *Context) FloorDropLast(a *Poly, round bool) *Poly {
	idx := make([]int, a.Rows())
	for i := range idx {
		idx[i] = i
	}
	return c.FloorDropRows(a, idx, round)
}

// FloorDropRows is FloorDropLast for polynomials whose rows map to an
// arbitrary subset of the basis primes: rowPrimes[i] is the basis index of
// row i, and the last row is the prime being dropped. Key switching needs
// this (Algorithm 7 line 19): its accumulators live over
// (p_0..p_level, p_special), which is not a basis prefix below the top
// level.
func (c *Context) FloorDropRows(a *Poly, rowPrimes []int, round bool) *Poly {
	out := c.NewPoly(a.Rows() - 1)
	c.floorDrop(a, nil, out, nil, nil, nil, rowPrimes, round, false)
	return out
}

// FloorDropLastPair is FloorDropLast on two polynomials at once (the
// two components of a ciphertext being rescaled), sharing one worker
// fan-out and one batched tail INTT.
func (c *Context) FloorDropLastPair(a0, a1 *Poly, round bool) (*Poly, *Poly) {
	idx := make([]int, a0.Rows())
	for i := range idx {
		idx[i] = i
	}
	out0, out1 := c.NewPolyPair(a0.Rows() - 1)
	c.floorDrop(a0, a1, out0, out1, nil, nil, idx, round, false)
	return out0, out1
}

// FloorDropRowsPair runs FloorDropRows on the two key-switch accumulators
// at once, sharing a single worker fan-out and tail pass. When lazy is
// true the inputs may hold lazily reduced rows in [0, 2p) — they are
// fully reduced in place on the way through, so the callers' closing
// reduction pass disappears. The inputs are treated as scratch (mutated
// when lazy).
func (c *Context) FloorDropRowsPair(a0, a1 *Poly, rowPrimes []int, round, lazy bool) (*Poly, *Poly) {
	out0, out1 := c.NewPolyPair(a0.Rows() - 1)
	c.floorDrop(a0, a1, out0, out1, nil, nil, rowPrimes, round, lazy)
	return out0, out1
}

// FloorDropRowsPairAddInto is FloorDropRowsPair writing into the
// caller-provided output pair, with an optional final addition folded
// into the flooring row pass: out0 = floor(a0) + add0, out1 = floor(a1)
// + add1 (add operands over the output rows, NTT form; either may be
// nil). This is the CKKS key-switch epilogue (ks0 + c0, ks1 + c1)
// landing directly in the result ciphertext without intermediate polys
// or a separate addition sweep.
func (c *Context) FloorDropRowsPairAddInto(a0, a1, out0, out1, add0, add1 *Poly, rowPrimes []int, round, lazy bool) {
	c.floorDrop(a0, a1, out0, out1, add0, add1, rowPrimes, round, lazy)
}

// FloorDropRowsInto is FloorDropRows landing in the caller-provided
// output polynomial (out must have a.Rows()-1 rows) — the single-poly
// tail of an in-place rescale on a ciphertext with an odd component
// count.
func (c *Context) FloorDropRowsInto(a, out *Poly, rowPrimes []int, round, lazy bool) {
	c.floorDrop(a, nil, out, nil, nil, nil, rowPrimes, round, lazy)
}

// FloorDropRowsPairInto is FloorDropRowsPair landing in the caller-
// provided output pair — the in-place rescale hot path.
func (c *Context) FloorDropRowsPairInto(a0, a1, out0, out1 *Poly, rowPrimes []int, round, lazy bool) {
	c.floorDrop(a0, a1, out0, out1, nil, nil, rowPrimes, round, lazy)
}

func (c *Context) floorDrop(a0, a1, out0, out1, add0, add1 *Poly, rowPrimes []int, round, lazy bool) {
	rows := a0.Rows()
	if rows < 2 {
		panic("ring: FloorDropRows needs at least two rows")
	}
	if len(rowPrimes) != rows {
		panic("ring: rowPrimes length mismatch")
	}
	if out0.Rows() != rows-1 || (a1 != nil && out1.Rows() != rows-1) {
		panic("ring: floorDrop output row mismatch")
	}
	last := rowPrimes[rows-1]
	pLast := c.Basis.Primes[last]
	// Line 1: bring the dropped-prime residues to the coefficient domain.
	// Both accumulators' tails go through one batched INTT so the special
	// prime's twiddles are loaded once.
	tailBuf := c.GetPolyNoZero(2)
	defer c.PutPoly(tailBuf)
	prepTail := func(a *Poly, tail []uint64) {
		if lazy {
			c.ReduceLazyRow(a.Coeffs[rows-1], tail, last)
		} else {
			copy(tail, a.Coeffs[rows-1])
		}
	}
	tail0 := tailBuf.Coeffs[0]
	prepTail(a0, tail0)
	var tail1 []uint64
	if a1 != nil {
		tail1 = tailBuf.Coeffs[1]
		prepTail(a1, tail1)
		c.Tables[last].InverseBatch(tail0, tail1)
	} else {
		c.Tables[last].Inverse(tail0)
	}
	if round {
		half := pLast >> 1
		for j := range tail0 {
			tail0[j] = uintmod.AddMod(tail0[j], half, pLast)
		}
		for j := range tail1 {
			tail1[j] = uintmod.AddMod(tail1[j], half, pLast)
		}
	}
	c.RunRows(rows-1, func(i int) {
		rBuf := c.GetPolyNoZero(2)
		defer c.PutPoly(rBuf)
		basisIdx := rowPrimes[i]
		m := c.Basis.Mods[basisIdx]
		p := c.Basis.Primes[basisIdx]
		var halfModPi uint64
		if round {
			halfModPi = m.Reduce(pLast >> 1)
		}
		// Lines 5-6: (a_i - r̃) * p^{-1} mod p_i, with the cross-prime
		// inverse precomputed at basis construction.
		pinv, pinvShoup := c.Basis.InvCross(last, basisIdx)
		// Lines 3-4: r = [a (+⌊p/2⌋)]_{p} reduced mod p_i, then NTT.
		// In rounding mode, subtract the ⌊p/2⌋ shift again per
		// coefficient here (in the coefficient domain), so that
		// a_i - r̃ below equals (a+⌊p/2⌋) - [a+⌊p/2⌋]_p, i.e. the
		// rounded numerator.
		reduceRow := func(r, tail []uint64) {
			for j := range r {
				r[j] = m.Reduce(tail[j])
				if round {
					r[j] = uintmod.SubMod(r[j], halfModPi, p)
				}
			}
		}
		r0 := rBuf.Coeffs[0]
		reduceRow(r0, tail0)
		var r1 []uint64
		if a1 != nil {
			r1 = rBuf.Coeffs[1]
			reduceRow(r1, tail1)
			c.Tables[basisIdx].ForwardBatch(r0, r1)
		} else {
			c.Tables[basisIdx].Forward(r0)
		}
		floorRow := func(a *Poly, r []uint64, out, add *Poly) {
			ai, oi := a.Coeffs[i], out.Coeffs[i]
			if lazy {
				c.ReduceLazyRow(ai, ai, basisIdx)
			}
			if add != nil {
				di := add.Coeffs[i]
				for j := range oi {
					v := uintmod.SubMod(ai[j], r[j], p)
					oi[j] = uintmod.AddMod(uintmod.MulRed(v, pinv, pinvShoup, p), di[j], p)
				}
				return
			}
			for j := range oi {
				v := uintmod.SubMod(ai[j], r[j], p)
				oi[j] = uintmod.MulRed(v, pinv, pinvShoup, p)
			}
		}
		floorRow(a0, r0, out0, add0)
		if a1 != nil {
			floorRow(a1, r1, out1, add1)
		}
	})
}
