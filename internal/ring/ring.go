// Package ring implements arithmetic in R_q = Z_q[X]/(X^n+1) in RNS
// representation: the polynomial-level substrate beneath the CKKS scheme
// and the HEAX modules. A Poly stores one residue polynomial per basis
// prime; a Context bundles the ring degree, the RNS basis, and one set of
// NTT tables per prime.
//
// All evaluation-path operations work level-wise (on the first level+1
// primes) exactly as the full-RNS CKKS of Section 3 requires, and
// polynomials are kept in NTT form whenever possible so multiplications
// are dyadic.
package ring

import (
	"fmt"
	"math/bits"
	"sync"

	"heax/internal/ntt"
	"heax/internal/rns"
	"heax/internal/uintmod"
)

// Context carries everything needed for R_q arithmetic over a basis.
type Context struct {
	N     int
	LogN  int
	Basis *rns.Basis
	// Tables[i] transforms residues mod Basis.Primes[i].
	Tables []*ntt.Tables
}

// NewContext builds a Context for ring degree n over the given primes,
// each of which must be ≡ 1 (mod 2n).
func NewContext(n int, primeList []uint64) (*Context, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ring: n = %d must be a power of two >= 2", n)
	}
	basis, err := rns.NewBasis(primeList)
	if err != nil {
		return nil, err
	}
	ctx := &Context{
		N:     n,
		LogN:  bits.Len(uint(n)) - 1,
		Basis: basis,
	}
	ctx.Tables = make([]*ntt.Tables, basis.K())
	for i, p := range basis.Primes {
		t, err := ntt.NewTables(p, n)
		if err != nil {
			return nil, fmt.Errorf("ring: prime %d: %w", p, err)
		}
		ctx.Tables[i] = t
	}
	return ctx, nil
}

// K returns the number of primes in the context's basis.
func (c *Context) K() int { return c.Basis.K() }

// Poly is an RNS polynomial: Coeffs[i][j] is coefficient j modulo prime i.
// The number of rows determines the poly's level (rows-1).
type Poly struct {
	Coeffs [][]uint64
}

// NewPoly allocates a zero polynomial with the given number of RNS rows.
func (c *Context) NewPoly(rows int) *Poly {
	if rows < 1 || rows > c.K() {
		panic(fmt.Sprintf("ring: rows %d out of range [1,%d]", rows, c.K()))
	}
	backing := make([]uint64, rows*c.N)
	p := &Poly{Coeffs: make([][]uint64, rows)}
	for i := range p.Coeffs {
		p.Coeffs[i], backing = backing[:c.N:c.N], backing[c.N:]
	}
	return p
}

// Rows returns the number of RNS components.
func (p *Poly) Rows() int { return len(p.Coeffs) }

// Level returns Rows()-1, the CKKS level of the polynomial.
func (p *Poly) Level() int { return len(p.Coeffs) - 1 }

// CopyOf returns a deep copy of p.
func CopyOf(p *Poly) *Poly {
	q := &Poly{Coeffs: make([][]uint64, len(p.Coeffs))}
	for i := range p.Coeffs {
		q.Coeffs[i] = append([]uint64(nil), p.Coeffs[i]...)
	}
	return q
}

// Resize returns a view of p truncated to rows RNS components (sharing
// storage) or panics if p has fewer.
func (p *Poly) Resize(rows int) *Poly {
	if rows > len(p.Coeffs) {
		panic("ring: cannot grow a poly with Resize")
	}
	return &Poly{Coeffs: p.Coeffs[:rows]}
}

// Equal reports deep equality.
func (p *Poly) Equal(q *Poly) bool {
	if len(p.Coeffs) != len(q.Coeffs) {
		return false
	}
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			if p.Coeffs[i][j] != q.Coeffs[i][j] {
				return false
			}
		}
	}
	return true
}

// NTT transforms p in place (all rows) to the evaluation domain.
func (c *Context) NTT(p *Poly) {
	for i := range p.Coeffs {
		c.Tables[i].Forward(p.Coeffs[i])
	}
}

// INTT transforms p in place back to the coefficient domain.
func (c *Context) INTT(p *Poly) {
	for i := range p.Coeffs {
		c.Tables[i].Inverse(p.Coeffs[i])
	}
}

// NTTParallel is NTT with the independent RNS rows transformed on up to
// workers goroutines — the "full-RNS variants parallelize trivially"
// observation of Section 2, realized on a multicore CPU. It is the
// multithreaded-baseline counterpart to the paper's single-threaded SEAL
// measurements.
func (c *Context) NTTParallel(p *Poly, workers int) {
	c.transformParallel(p, workers, false)
}

// INTTParallel is the inverse counterpart of NTTParallel.
func (c *Context) INTTParallel(p *Poly, workers int) {
	c.transformParallel(p, workers, true)
}

func (c *Context) transformParallel(p *Poly, workers int, inverse bool) {
	rows := len(p.Coeffs)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		if inverse {
			c.INTT(p)
		} else {
			c.NTT(p)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, rows)
	for i := 0; i < rows; i++ {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if inverse {
					c.Tables[i].Inverse(p.Coeffs[i])
				} else {
					c.Tables[i].Forward(p.Coeffs[i])
				}
			}
		}()
	}
	wg.Wait()
}

// rowsOf returns the common row count of the operands, panicking on
// mismatch; helpers below use it so shape errors fail loudly at the call
// site rather than corrupting data.
func rowsOf(ps ...*Poly) int {
	r := len(ps[0].Coeffs)
	for _, p := range ps[1:] {
		if len(p.Coeffs) != r {
			panic("ring: operand row mismatch")
		}
	}
	return r
}

// Add sets out = a + b.
func (c *Context) Add(a, b, out *Poly) {
	for i := 0; i < rowsOf(a, b, out); i++ {
		p := c.Basis.Primes[i]
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = uintmod.AddMod(ai[j], bi[j], p)
		}
	}
}

// Sub sets out = a - b.
func (c *Context) Sub(a, b, out *Poly) {
	for i := 0; i < rowsOf(a, b, out); i++ {
		p := c.Basis.Primes[i]
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = uintmod.SubMod(ai[j], bi[j], p)
		}
	}
}

// Neg sets out = -a.
func (c *Context) Neg(a, out *Poly) {
	for i := 0; i < rowsOf(a, out); i++ {
		p := c.Basis.Primes[i]
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = uintmod.NegMod(ai[j], p)
		}
	}
}

// MulCoeffs sets out = a ⊙ b (dyadic product; both operands must be in the
// same domain, normally NTT).
func (c *Context) MulCoeffs(a, b, out *Poly) {
	for i := 0; i < rowsOf(a, b, out); i++ {
		m := c.Basis.Mods[i]
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = m.MulMod(ai[j], bi[j])
		}
	}
}

// MulCoeffsAdd sets out += a ⊙ b, the multiply-accumulate at the heart of
// the key-switching inner loop (Algorithm 7 lines 11-12).
func (c *Context) MulCoeffsAdd(a, b, out *Poly) {
	for i := 0; i < rowsOf(a, b, out); i++ {
		m := c.Basis.Mods[i]
		p := c.Basis.Primes[i]
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = uintmod.AddMod(oi[j], m.MulMod(ai[j], bi[j]), p)
		}
	}
}

// MulScalar sets out = a * s for a word-sized scalar.
func (c *Context) MulScalar(a *Poly, s uint64, out *Poly) {
	for i := 0; i < rowsOf(a, out); i++ {
		m := c.Basis.Mods[i]
		si := m.Reduce(s)
		sh := uintmod.ShoupPrecomp(si, m.P)
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = uintmod.MulRed(ai[j], si, sh, m.P)
		}
	}
}

// GaloisElement returns the Galois group element used to rotate CKKS slots
// left by step positions: 5^step mod 2n (Section 3.4; the plaintext slots
// are indexed along the orbit of 5 in Z_{2n}^*).
func GaloisElement(step, n int) uint64 {
	m := uint64(2 * n)
	g := uint64(1)
	step = ((step % n) + n) % n // the orbit of 5 has order n/2; normalize
	for i := 0; i < step; i++ {
		g = g * 5 % m
	}
	return g
}

// GaloisConjugate is the Galois element of complex conjugation, 2n-1.
func GaloisConjugate(n int) uint64 { return uint64(2*n - 1) }

// Automorphism applies X -> X^g to a coefficient-domain polynomial.
// g must be odd (all Galois elements of the power-of-two cyclotomic are).
func (c *Context) Automorphism(a *Poly, g uint64, out *Poly) {
	if g&1 == 0 {
		panic("ring: Galois element must be odd")
	}
	n := uint64(c.N)
	mask := 2*n - 1
	for i := 0; i < rowsOf(a, out); i++ {
		p := c.Basis.Primes[i]
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := uint64(0); j < n; j++ {
			e := j * g & mask
			v := ai[j]
			if e < n {
				oi[e] = v
			} else {
				oi[e-n] = uintmod.NegMod(v, p)
			}
		}
	}
}

// AutomorphismNTTTable precomputes the slot permutation implementing
// X -> X^g directly on bit-reversed NTT-domain polynomials:
// out[i] = in[table[i]].
func (c *Context) AutomorphismNTTTable(g uint64) []int {
	n := uint64(c.N)
	logn := c.LogN
	table := make([]int, n)
	for i := uint64(0); i < n; i++ {
		rev := uint64(bits.Reverse64(i) >> (64 - logn))
		idx := g * (2*rev + 1) // odd, so (idx-1)/2 == idx>>1
		idx = idx >> 1 & (n - 1)
		table[i] = int(bits.Reverse64(idx) >> (64 - logn))
	}
	return table
}

// AutomorphismNTT applies a precomputed table to an NTT-domain poly.
func (c *Context) AutomorphismNTT(a *Poly, table []int, out *Poly) {
	if a == out {
		panic("ring: AutomorphismNTT cannot run in place")
	}
	for i := 0; i < rowsOf(a, out); i++ {
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = ai[table[j]]
		}
	}
}

// FloorDropLast implements RNS flooring (Algorithm 6): given a polynomial
// over rows primes in NTT form whose last row is the prime being dropped
// (p), it returns ⌊p^{-1}·a⌋ over the first rows-1 primes, in NTT form.
// When round is true the result is ⌊p^{-1}·a⌉ instead (add ⌊p/2⌋ before
// dividing), which is what rescaling uses to keep the approximation error
// centered.
//
// The polynomial's rows correspond to the first rows primes of the basis.
func (c *Context) FloorDropLast(a *Poly, round bool) *Poly {
	idx := make([]int, a.Rows())
	for i := range idx {
		idx[i] = i
	}
	return c.FloorDropRows(a, idx, round)
}

// FloorDropRows is FloorDropLast for polynomials whose rows map to an
// arbitrary subset of the basis primes: rowPrimes[i] is the basis index of
// row i, and the last row is the prime being dropped. Key switching needs
// this (Algorithm 7 line 19): its accumulators live over
// (p_0..p_level, p_special), which is not a basis prefix below the top
// level.
func (c *Context) FloorDropRows(a *Poly, rowPrimes []int, round bool) *Poly {
	rows := a.Rows()
	if rows < 2 {
		panic("ring: FloorDropRows needs at least two rows")
	}
	if len(rowPrimes) != rows {
		panic("ring: rowPrimes length mismatch")
	}
	last := rowPrimes[rows-1]
	pLast := c.Basis.Primes[last]
	// Line 1: bring the dropped-prime residue to the coefficient domain.
	tail := append([]uint64(nil), a.Coeffs[rows-1]...)
	c.Tables[last].Inverse(tail)
	if round {
		half := pLast >> 1
		for j := range tail {
			tail[j] = uintmod.AddMod(tail[j], half, pLast)
		}
	}
	out := c.NewPoly(rows - 1)
	r := make([]uint64, c.N)
	for i := 0; i < rows-1; i++ {
		m := c.Basis.Mods[rowPrimes[i]]
		p := c.Basis.Primes[rowPrimes[i]]
		var halfModPi uint64
		if round {
			halfModPi = m.Reduce(pLast >> 1)
		}
		// Lines 3-4: r = [a (+⌊p/2⌋)]_{p} reduced mod p_i, then NTT. In
		// rounding mode, subtract the ⌊p/2⌋ shift again per coefficient
		// here (in the coefficient domain), so that a_i - r̃ below equals
		// (a+⌊p/2⌋) - [a+⌊p/2⌋]_p, i.e. the rounded numerator.
		for j := range r {
			r[j] = m.Reduce(tail[j])
			if round {
				r[j] = uintmod.SubMod(r[j], halfModPi, p)
			}
		}
		c.Tables[rowPrimes[i]].Forward(r)
		// Lines 5-6: (a_i - r̃) * p^{-1} mod p_i.
		pinv := m.InvMod(m.Reduce(pLast))
		pinvShoup := uintmod.ShoupPrecomp(pinv, p)
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			v := uintmod.SubMod(ai[j], r[j], p)
			oi[j] = uintmod.MulRed(v, pinv, pinvShoup, p)
		}
	}
	return out
}
