package ring

import (
	"math/rand"
	"testing"

	"heax/internal/uintmod"
)

func randPoly(ctx *Context, rows int, rng *rand.Rand) *Poly {
	p := ctx.NewPoly(rows)
	for i := 0; i < rows; i++ {
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = rng.Uint64() % ctx.Basis.Primes[i]
		}
	}
	return p
}

func TestMulCoeffsLazyMatchesMulCoeffs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	// 45-bit primes take the IFMA path where available; 55-bit pin the
	// scalar Shoup path.
	for _, bits := range []int{45, 55} {
		ctx := testContext(t, 64, 3, bits)
		a := randPoly(ctx, 3, rng)
		b := randPoly(ctx, 3, rng)
		bShoup := ctx.ShoupPoly(b)
		want := ctx.NewPoly(3)
		ctx.MulCoeffs(a, b, want)
		got := ctx.NewPoly(3)
		ctx.MulCoeffsLazy(a, b, bShoup, got)
		if !got.Equal(want) {
			t.Fatalf("bits=%d: MulCoeffsLazy != MulCoeffs", bits)
		}
	}
}

func TestMulAddLazyMatchesMulCoeffsAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, bits := range []int{45, 55} {
		ctx := testContext(t, 64, 3, bits)
		b := randPoly(ctx, 3, rng)
		bShoup := ctx.ShoupPoly(b)
		want := ctx.NewPoly(3)
		acc := ctx.NewPoly(3)
		// Long accumulation chains: the lazy accumulator must stay in
		// [0, 2p) and agree with the strict sum after one ReduceLazy.
		for round := 0; round < 32; round++ {
			a := randPoly(ctx, 3, rng)
			ctx.MulCoeffsAdd(a, b, want)
			ctx.MulAddLazy(a, b, bShoup, acc)
		}
		for i := range acc.Coeffs {
			twoP := 2 * ctx.Basis.Primes[i]
			for j, v := range acc.Coeffs[i] {
				if v >= twoP {
					t.Fatalf("bits=%d row %d coeff %d: lazy accumulator %d escaped [0, 2p)", bits, i, j, v)
				}
			}
		}
		ctx.ReduceLazy(acc, acc)
		if !acc.Equal(want) {
			t.Fatalf("bits=%d: MulAddLazy+ReduceLazy != MulCoeffsAdd", bits)
		}
	}
}

func TestWorkerParity(t *testing.T) {
	// Every row-wise op must produce identical results serial and
	// parallel. Use a large enough ring to clear the parallel threshold.
	rng := rand.New(rand.NewSource(33))
	ctx := testContext(t, 4096, 4, 45)
	a := randPoly(ctx, 4, rng)
	b := randPoly(ctx, 4, rng)

	type op func(c *Context, out *Poly)
	ops := map[string]op{
		"Add":       func(c *Context, out *Poly) { c.Add(a, b, out) },
		"Sub":       func(c *Context, out *Poly) { c.Sub(a, b, out) },
		"Neg":       func(c *Context, out *Poly) { c.Neg(a, out) },
		"MulCoeffs": func(c *Context, out *Poly) { c.MulCoeffs(a, b, out) },
		"MulScalar": func(c *Context, out *Poly) { c.MulScalar(a, 12345, out) },
		"NTT": func(c *Context, out *Poly) {
			for i := range out.Coeffs {
				copy(out.Coeffs[i], a.Coeffs[i])
			}
			c.NTT(out)
		},
	}
	for name, f := range ops {
		serial := ctx.NewPoly(4)
		ctx.SetWorkers(1)
		f(ctx, serial)
		parallel := ctx.NewPoly(4)
		ctx.SetWorkers(4)
		f(ctx, parallel)
		ctx.SetWorkers(1)
		if !serial.Equal(parallel) {
			t.Fatalf("%s: parallel result diverges from serial", name)
		}
	}
}

func TestPolyPoolRecycles(t *testing.T) {
	ctx := testContext(t, 64, 3, 45)
	p1 := ctx.GetPoly(2)
	if p1.Rows() != 2 {
		t.Fatalf("GetPoly(2) returned %d rows", p1.Rows())
	}
	p1.Coeffs[0][0] = 42
	p1.Coeffs[1][63] = 7
	ctx.PutPoly(p1)
	p2 := ctx.GetPoly(3)
	if p2.Rows() != 3 {
		t.Fatalf("GetPoly(3) after PutPoly returned %d rows", p2.Rows())
	}
	for i := range p2.Coeffs {
		for j, v := range p2.Coeffs[i] {
			if v != 0 {
				t.Fatalf("recycled poly not zeroed at [%d][%d] = %d", i, j, v)
			}
		}
	}
	// Foreign polys must be dropped, not recycled.
	ctx.PutPoly(&Poly{Coeffs: [][]uint64{make([]uint64, 8)}})
	ctx.PutPoly(nil)
}

func TestFloorDropRowsPairMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	ctx := testContext(t, 64, 4, 45)
	rowPrimes := []int{0, 1, 3}
	mk := func() *Poly {
		a := ctx.NewPoly(3)
		for i, bi := range rowPrimes {
			for j := range a.Coeffs[i] {
				a.Coeffs[i][j] = rng.Uint64() % ctx.Basis.Primes[bi]
			}
		}
		return a
	}
	a0, a1 := mk(), mk()
	want0 := ctx.FloorDropRows(CopyOf(a0).Resize(3), rowPrimes, false)
	want1 := ctx.FloorDropRows(CopyOf(a1).Resize(3), rowPrimes, false)
	got0, got1 := ctx.FloorDropRowsPair(a0, a1, rowPrimes, false, false)
	if !got0.Equal(want0) || !got1.Equal(want1) {
		t.Fatal("FloorDropRowsPair diverges from two FloorDropRows calls")
	}

	// Lazy mode: feed values in [0, 2p) and expect identical output to
	// the reduced equivalents.
	l0, l1 := CopyOf(a0), CopyOf(a1)
	for i, bi := range rowPrimes {
		p := ctx.Basis.Primes[bi]
		for j := range l0.Coeffs[i] {
			if rng.Intn(2) == 1 {
				l0.Coeffs[i][j] += p
			}
			if rng.Intn(2) == 1 {
				l1.Coeffs[i][j] += p
			}
		}
	}
	lg0, lg1 := ctx.FloorDropRowsPair(l0, l1, rowPrimes, false, true)
	if !lg0.Equal(want0) || !lg1.Equal(want1) {
		t.Fatal("lazy FloorDropRowsPair diverges from strict")
	}
}

func TestShoupPolyScales(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	ctx := testContext(t, 64, 2, 45)
	b := randPoly(ctx, 2, rng)
	sh := ctx.ShoupPoly(b)
	for i := range sh.Coeffs {
		p := ctx.Basis.Primes[i]
		for j := range sh.Coeffs[i] {
			var want uint64
			if ctx.RowIFMA(i) {
				want = uintmod.ShoupPrecomp52(b.Coeffs[i][j], p)
			} else {
				want = uintmod.ShoupPrecomp(b.Coeffs[i][j], p)
			}
			if sh.Coeffs[i][j] != want {
				t.Fatalf("ShoupPoly scale mismatch at [%d][%d]", i, j)
			}
		}
	}
}
