package ring

import (
	"math/big"
	"testing"

	"heax/internal/primes"
)

func testContext(t testing.TB, n, k, bits int) *Context {
	t.Helper()
	ps, err := primes.NTTPrimes(bits, n, k)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(n, ps)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestNewContextErrors(t *testing.T) {
	if _, err := NewContext(100, []uint64{97}); err == nil {
		t.Error("non-power-of-two n should fail")
	}
	if _, err := NewContext(64, []uint64{97}); err == nil {
		t.Error("prime not 1 mod 2n should fail")
	}
	if _, err := NewContext(64, nil); err == nil {
		t.Error("empty basis should fail")
	}
}

func TestPolyLifecycle(t *testing.T) {
	ctx := testContext(t, 64, 3, 30)
	p := ctx.NewPoly(3)
	if p.Rows() != 3 || p.Level() != 2 {
		t.Fatalf("rows=%d level=%d", p.Rows(), p.Level())
	}
	ctx.SetCoeffInt64(p, 5, -7)
	q := CopyOf(p)
	if !p.Equal(q) {
		t.Fatal("copy not equal")
	}
	q.Coeffs[0][5] = 1
	if p.Equal(q) {
		t.Fatal("mutating copy affected original")
	}
	v := p.Resize(2)
	if v.Rows() != 2 {
		t.Fatal("resize failed")
	}
	if &v.Coeffs[0][0] != &p.Coeffs[0][0] {
		t.Fatal("resize should share storage")
	}
}

func TestAddSubNeg(t *testing.T) {
	ctx := testContext(t, 64, 2, 30)
	s := NewSampler(ctx, 1)
	a, b := s.Uniform(2), s.Uniform(2)
	sum := ctx.NewPoly(2)
	ctx.Add(a, b, sum)
	diff := ctx.NewPoly(2)
	ctx.Sub(sum, b, diff)
	if !diff.Equal(a) {
		t.Fatal("(a+b)-b != a")
	}
	neg := ctx.NewPoly(2)
	ctx.Neg(a, neg)
	zero := ctx.NewPoly(2)
	ctx.Add(a, neg, zero)
	for i := range zero.Coeffs {
		for _, v := range zero.Coeffs[i] {
			if v != 0 {
				t.Fatal("a + (-a) != 0")
			}
		}
	}
}

// NTT-domain dyadic product must equal the negacyclic product of the
// underlying integer polynomials, checked through CRT composition.
func TestMulCoeffsMatchesBigPoly(t *testing.T) {
	n := 16
	ctx := testContext(t, n, 3, 30)
	s := NewSampler(ctx, 2)
	a, b := s.Uniform(3), s.Uniform(3)

	// Reference: big-int negacyclic convolution mod q.
	q := ctx.Basis.Q()
	abig := composeAll(ctx, a)
	bbig := composeAll(ctx, b)
	want := make([]*big.Int, n)
	for j := range want {
		want[j] = new(big.Int)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			t := new(big.Int).Mul(abig[i], bbig[j])
			if i+j < n {
				want[i+j].Add(want[i+j], t)
			} else {
				want[i+j-n].Sub(want[i+j-n], t)
			}
		}
	}
	for j := range want {
		want[j].Mod(want[j], q)
	}

	ctx.NTT(a)
	ctx.NTT(b)
	prod := ctx.NewPoly(3)
	ctx.MulCoeffs(a, b, prod)
	ctx.INTT(prod)
	got := composeAll(ctx, prod)
	for j := range want {
		if got[j].Cmp(want[j]) != 0 {
			t.Fatalf("coefficient %d: got %v want %v", j, got[j], want[j])
		}
	}
}

func composeAll(ctx *Context, p *Poly) []*big.Int {
	basis := ctx.Basis
	if p.Rows() != basis.K() {
		sub, err := basis.Sub(p.Rows())
		if err != nil {
			panic(err)
		}
		basis = sub
	}
	out := make([]*big.Int, ctx.N)
	res := make([]uint64, p.Rows())
	for j := 0; j < ctx.N; j++ {
		for i := 0; i < p.Rows(); i++ {
			res[i] = p.Coeffs[i][j]
		}
		out[j] = basis.Compose(res)
	}
	return out
}

func TestMulCoeffsAdd(t *testing.T) {
	ctx := testContext(t, 32, 2, 30)
	s := NewSampler(ctx, 3)
	a, b := s.Uniform(2), s.Uniform(2)
	acc := ctx.NewPoly(2)
	ctx.MulCoeffsAdd(a, b, acc)
	ctx.MulCoeffsAdd(a, b, acc)
	twice := ctx.NewPoly(2)
	ctx.MulCoeffs(a, b, twice)
	ctx.Add(twice, twice, twice)
	if !acc.Equal(twice) {
		t.Fatal("MulCoeffsAdd twice != 2ab")
	}
}

func TestMulScalar(t *testing.T) {
	ctx := testContext(t, 32, 2, 30)
	s := NewSampler(ctx, 4)
	a := s.Uniform(2)
	out := ctx.NewPoly(2)
	ctx.MulScalar(a, 3, out)
	sum := ctx.NewPoly(2)
	ctx.Add(a, a, sum)
	ctx.Add(sum, a, sum)
	if !out.Equal(sum) {
		t.Fatal("3a != a+a+a")
	}
}

func TestAutomorphismCoeffDomain(t *testing.T) {
	n := 16
	ctx := testContext(t, n, 1, 30)
	p := ctx.Basis.Primes[0]
	a := ctx.NewPoly(1)
	// a = X
	a.Coeffs[0][1] = 1
	out := ctx.NewPoly(1)
	// X -> X^3: expect coefficient 1 at position 3.
	ctx.Automorphism(a, 3, out)
	if out.Coeffs[0][3] != 1 {
		t.Fatal("X under g=3 should be X^3")
	}
	// a = X^(n-1); X^{(n-1)*3} = X^{3n-3} = X^{2n + (n-3)} = +X^{n-3}
	// since X^{2n} = 1 and X^n = -1: 3n-3 = 2n + (n-3) -> sign +.
	b := ctx.NewPoly(1)
	b.Coeffs[0][n-1] = 1
	ctx.Automorphism(b, 3, out)
	if out.Coeffs[0][n-3] != 1 {
		t.Fatalf("X^{n-1} under g=3: got row %v", out.Coeffs[0])
	}
	// Composition: applying g then its inverse is identity.
	s := NewSampler(ctx, 5)
	r := s.Uniform(1)
	tmp := ctx.NewPoly(1)
	ctx.Automorphism(r, 5, tmp)
	// inverse of 5 mod 2n
	gInv := new(big.Int).ModInverse(big.NewInt(5), big.NewInt(int64(2*n))).Uint64()
	back := ctx.NewPoly(1)
	ctx.Automorphism(tmp, gInv, back)
	if !back.Equal(r) {
		t.Fatal("automorphism inverse failed")
	}
	_ = p
}

// The NTT-domain permutation must agree with INTT -> automorphism -> NTT.
func TestAutomorphismNTTMatchesCoeffDomain(t *testing.T) {
	n := 64
	ctx := testContext(t, n, 2, 30)
	s := NewSampler(ctx, 6)
	for _, g := range []uint64{3, 5, 25, GaloisElement(1, n), GaloisElement(3, n), GaloisConjugate(n)} {
		a := s.Uniform(2)

		viaCoeff := CopyOf(a)
		out1 := ctx.NewPoly(2)
		ctx.Automorphism(viaCoeff, g, out1)
		ctx.NTT(out1)

		viaNTT := CopyOf(a)
		ctx.NTT(viaNTT)
		out2 := ctx.NewPoly(2)
		ctx.AutomorphismNTT(viaNTT, ctx.AutomorphismNTTTable(g), out2)

		if !out1.Equal(out2) {
			t.Fatalf("g=%d: NTT-domain automorphism mismatch", g)
		}
	}
}

func TestGaloisElement(t *testing.T) {
	n := 16
	if g := GaloisElement(0, n); g != 1 {
		t.Fatalf("step 0 should give identity, got %d", g)
	}
	if g := GaloisElement(1, n); g != 5 {
		t.Fatalf("step 1 should give 5, got %d", g)
	}
	if g := GaloisElement(2, n); g != 25 {
		t.Fatalf("step 2 should give 25, got %d", g)
	}
	// Negative steps wrap within the orbit.
	gNeg := GaloisElement(-1, n)
	if gNeg*5%uint64(2*n) != 1 {
		// 5^(n-1) * 5 = 5^n; orbit of 5 mod 2n has order n/2, so
		// 5^(n/2) = 1 mod 2n -> g(-1)*g(1) = 5^(n) = (5^{n/2})^2 = 1.
		t.Fatalf("GaloisElement(-1)=%d is not inverse of 5 mod %d", gNeg, 2*n)
	}
	if g := GaloisConjugate(n); g != uint64(2*n-1) {
		t.Fatal("conjugate element wrong")
	}
}

func TestSamplerDistributions(t *testing.T) {
	ctx := testContext(t, 1024, 2, 30)
	s := NewSampler(ctx, 7)

	tern := s.Ternary(2)
	counts := map[uint64]int{}
	p0 := ctx.Basis.Primes[0]
	for _, v := range tern.Coeffs[0] {
		counts[v]++
	}
	if counts[0] == 0 || counts[1] == 0 || counts[p0-1] == 0 {
		t.Fatal("ternary sampler missing a value")
	}
	if counts[0]+counts[1]+counts[p0-1] != ctx.N {
		t.Fatal("ternary sampler produced out-of-range value")
	}
	// Consistency across rows: same signed value in both rows.
	p1 := ctx.Basis.Primes[1]
	for j := 0; j < ctx.N; j++ {
		v0, v1 := tern.Coeffs[0][j], tern.Coeffs[1][j]
		s0 := signedOf(v0, p0)
		s1 := signedOf(v1, p1)
		if s0 != s1 {
			t.Fatal("ternary rows disagree")
		}
	}

	errPoly := s.Error(2)
	var sum, sumSq float64
	for j := 0; j < ctx.N; j++ {
		e := float64(signedOf(errPoly.Coeffs[0][j], p0))
		sum += e
		sumSq += e * e
		if e > 25 || e < -25 {
			t.Fatalf("error coefficient %v out of plausible CBD range", e)
		}
	}
	mean := sum / float64(ctx.N)
	variance := sumSq/float64(ctx.N) - mean*mean
	if mean > 1 || mean < -1 {
		t.Fatalf("error mean %f too far from 0", mean)
	}
	if variance < 5 || variance > 20 {
		t.Fatalf("error variance %f outside [5,20] (expected ~10.5)", variance)
	}

	u := s.Uniform(2)
	var acc float64
	for _, v := range u.Coeffs[0] {
		acc += float64(v) / float64(p0)
	}
	if m := acc / float64(ctx.N); m < 0.4 || m > 0.6 {
		t.Fatalf("uniform mean %f implausible", m)
	}
}

func signedOf(v, p uint64) int64 {
	if v > p/2 {
		return -int64(p - v)
	}
	return int64(v)
}

// Flooring: compose, divide with floor/round in big-int, compare.
func TestFloorDropLast(t *testing.T) {
	n := 16
	ctx := testContext(t, n, 3, 30)
	s := NewSampler(ctx, 8)
	for _, round := range []bool{false, true} {
		a := s.Uniform(3)
		want := composeAll(ctx, a) // values in [0, q)
		pLast := new(big.Int).SetUint64(ctx.Basis.Primes[2])

		ntt := CopyOf(a)
		ctx.NTT(ntt)
		got := ctx.FloorDropLast(ntt, round)
		ctx.INTT(got)
		gotBig := composeAll(ctx, got)

		q2 := ctx.Basis.QAtLevel(1)
		for j := 0; j < n; j++ {
			w := new(big.Int).Set(want[j])
			if round {
				w.Add(w, new(big.Int).Rsh(pLast, 1))
			}
			w.Div(w, pLast)
			w.Mod(w, q2)
			if gotBig[j].Cmp(w) != 0 {
				t.Fatalf("round=%v coeff %d: got %v want %v", round, j, gotBig[j], w)
			}
		}
	}
}

func TestFloorDropLastPanicsOnSingleRow(t *testing.T) {
	ctx := testContext(t, 16, 1, 30)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ctx.FloorDropLast(ctx.NewPoly(1), false)
}

func TestInfNormSigned(t *testing.T) {
	ctx := testContext(t, 16, 2, 30)
	p := ctx.NewPoly(2)
	ctx.SetCoeffInt64(p, 3, -1000)
	ctx.SetCoeffInt64(p, 7, 999)
	if got := ctx.InfNormSigned(p); got != 1000 {
		t.Fatalf("InfNormSigned = %f, want 1000", got)
	}
}

func TestConstPoly(t *testing.T) {
	ctx := testContext(t, 16, 2, 30)
	p := ctx.ConstPoly(-5, 2)
	for i := 0; i < 2; i++ {
		want := ctx.Basis.Primes[i] - 5
		if p.Coeffs[i][0] != want {
			t.Fatalf("row %d const = %d want %d", i, p.Coeffs[i][0], want)
		}
	}
}

func TestMulRedRow(t *testing.T) {
	ctx := testContext(t, 16, 1, 30)
	p := ctx.Basis.Primes[0]
	row := []uint64{1, 2, 3}
	MulRedRow(row, 5, p)
	if row[0] != 5 || row[1] != 10 || row[2] != 15 {
		t.Fatalf("MulRedRow wrong: %v", row)
	}
}

func BenchmarkMulCoeffs(b *testing.B) {
	ctx := testContext(b, 1<<13, 4, 44)
	s := NewSampler(ctx, 9)
	x, y := s.Uniform(4), s.Uniform(4)
	out := ctx.NewPoly(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.MulCoeffs(x, y, out)
	}
}

func BenchmarkNTTFullBasis(b *testing.B) {
	ctx := testContext(b, 1<<13, 4, 44)
	s := NewSampler(ctx, 10)
	x := s.Uniform(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.NTT(x)
	}
}
