package ring

// This file is the software analogue of the HEAX key-switch pipeline's
// control logic (Section 5, Fig. 6-8): a persistent worker pool plus a
// lightweight task-group abstraction that lets higher layers express
// small dependency graphs — "run these INTTs, and dispatch each
// (digit, targetPrime) tile as soon as its digit is ready" — instead of
// the bulk-synchronous row loops the seed used (goroutines spawned and
// joined per call).
//
// Design points:
//
//   - Workers are started lazily and live for the Context's lifetime,
//     blocked on a channel receive when idle. With SetWorkers(1) no
//     worker is ever started and every task runs inline in the
//     submitter, which makes the degenerate path exactly the sequential
//     algorithm (and keeps single-core benchmarks allocation-free).
//   - Tasks are an interface, not closures, so hot paths can embed
//     their whole tile graph in one pooled slice of structs and submit
//     pointers into it — no per-tile allocation.
//   - A Group counts outstanding tasks; tasks may submit further tasks
//     into their own group (that is how a digit's INTT fans out its
//     base-conversion tiles). Wait is caller-assisted: the waiting
//     goroutine drains the shared queue instead of blocking, so nested
//     parallel operations (a tile calling RunRows) cannot deadlock and
//     the submitting thread contributes a full worker's throughput.
//   - If the queue is full, submission runs the task inline. Tasks
//     therefore must never block on other tasks' *submission*; blocking
//     on short mutexes (the per-row accumulator locks) is fine.

import (
	"sync"
	"sync/atomic"
)

// Task is one unit of work for a Context's worker pool.
type Task interface{ Run() }

// taskFunc adapts a plain closure to Task for callers that do not care
// about the extra allocation.
type taskFunc func()

func (f taskFunc) Run() { f() }

// queued pairs a task with the group accounting its completion.
type queued struct {
	t Task
	g *Group
}

// maxPoolWorkers bounds how many persistent workers a context will ever
// start, however large an explicit fan-out request is.
const maxPoolWorkers = 256

// scheduler owns the persistent workers and the shared task queue.
type scheduler struct {
	tasks chan queued
	stop  chan struct{}

	mu      sync.Mutex
	started int // background workers currently alive
	closed  bool

	groups sync.Pool // *Group
}

func newScheduler() *scheduler {
	return &scheduler{tasks: make(chan queued, 512), stop: make(chan struct{})}
}

// ensureWorkers starts background workers until at least n are alive
// (capped at maxPoolWorkers). Idle workers cost one blocked goroutine.
func (s *scheduler) ensureWorkers(n int) {
	if n > maxPoolWorkers {
		n = maxPoolWorkers
	}
	if n <= 0 {
		return
	}
	s.mu.Lock()
	for !s.closed && s.started < n {
		s.started++
		go s.worker()
	}
	s.mu.Unlock()
}

func (s *scheduler) worker() {
	for {
		select {
		case q := <-s.tasks:
			q.t.Run()
			q.g.done()
		case <-s.stop:
			return
		}
	}
}

// Close releases the context's persistent workers (they are otherwise
// retained for the context's lifetime — a long-lived server rotating
// many contexts should Close the retired ones). Parallel operations
// already in flight still complete: Group.Wait drains any queued tasks
// on the calling goroutine. Operations submitted after Close simply run
// caller-side, as with SetWorkers(1).
func (c *Context) Close() {
	s := c.sched
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.stop)
		s.started = 0
	}
	s.mu.Unlock()
}

// Group tracks a batch of tasks submitted to the pool. Tasks may add
// more tasks to their own group while running. The zero Group is not
// usable; get one from Context.NewGroup.
type Group struct {
	sched   *scheduler
	pending atomic.Int64
	// wake is signaled (capacity 1, non-blocking send) when pending
	// reaches zero; Wait uses it to sleep without polling. A stale
	// signal left over from a previous use only costs Wait one spurious
	// loop iteration — the exit condition is always pending == 0.
	wake chan struct{}
}

// NewGroup returns an empty task group bound to this context's pool.
// Groups are pooled; return them with PutGroup once Wait has returned.
// The context's worker complement is started here (lazily, idempotent),
// so a task graph submitted to a fresh context is actually executed by
// workers-1 background goroutines plus the waiting caller — not drained
// inline.
func (c *Context) NewGroup() *Group {
	s := c.sched
	s.ensureWorkers(c.workers - 1)
	if g, ok := s.groups.Get().(*Group); ok && g != nil {
		return g
	}
	return &Group{sched: s, wake: make(chan struct{}, 1)}
}

// PutGroup recycles a group obtained from NewGroup. The group must be
// idle (Wait returned, no further Go calls in flight).
func (c *Context) PutGroup(g *Group) {
	if g == nil || g.sched != c.sched {
		return
	}
	select { // clear any stale wake signal
	case <-g.wake:
	default:
	}
	c.sched.groups.Put(g)
}

// Go submits t to the pool under this group. If the queue is full the
// task runs inline in the caller. Safe to call from inside a task of the
// same group.
func (g *Group) Go(t Task) {
	g.pending.Add(1)
	select {
	case g.sched.tasks <- queued{t, g}:
	default:
		t.Run()
		g.done()
	}
}

// GoFunc is Go for a plain closure (one allocation per call; hot paths
// should implement Task on a pooled struct instead).
func (g *Group) GoFunc(fn func()) { g.Go(taskFunc(fn)) }

func (g *Group) done() {
	if g.pending.Add(-1) == 0 {
		select {
		case g.wake <- struct{}{}:
		default:
		}
	}
}

// Wait blocks until every task submitted to the group has finished. The
// waiting goroutine drains the shared queue while it waits (running
// other groups' tasks if they come first), so a full complement of
// workers is never idled by a join.
func (g *Group) Wait() {
	for g.pending.Load() > 0 {
		select {
		case q := <-g.sched.tasks:
			q.t.Run()
			q.g.done()
		case <-g.wake:
		}
	}
}

// rowJob is the pooled task behind RunRows: up to `workers` participants
// (pool workers plus the submitting goroutine) claim row indices from a
// shared atomic counter.
type rowJob struct {
	next atomic.Int64
	rows int
	fn   func(i int)
}

func (j *rowJob) Run() {
	for {
		i := int(j.next.Add(1))
		if i >= j.rows {
			return
		}
		j.fn(i)
	}
}

var rowJobPool = sync.Pool{New: func() any { return new(rowJob) }}

// RunRows invokes fn(i) for every row i in [0, rows), fanning out to at
// most the context's worker cap when the work is large enough to pay for
// scheduling overhead. fn must only touch data owned by its row. It is
// exported so higher layers (the CKKS evaluator's key-switch loops) can
// reuse the same worker policy for their own row-shaped work.
func (c *Context) RunRows(rows int, fn func(i int)) {
	c.runRowsWorkers(rows, c.workers, false, fn)
}

// runRowsWorkers fans rows out to at most workers participants (the
// caller plus workers-1 pool workers). force skips the size threshold —
// callers with an explicit worker request (NTTParallel, the CPU-threads
// ablation) get the fan-out they asked for even on small jobs.
func (c *Context) runRowsWorkers(rows, workers int, force bool, fn func(i int)) {
	if workers > rows {
		workers = rows
	}
	if workers <= 1 || (!force && rows*c.N < parallelThreshold) {
		for i := 0; i < rows; i++ {
			fn(i)
		}
		return
	}
	c.sched.ensureWorkers(workers - 1)
	j := rowJobPool.Get().(*rowJob)
	j.next.Store(-1)
	j.rows = rows
	j.fn = fn
	g := c.NewGroup()
	for w := 0; w < workers-1; w++ {
		g.Go(j)
	}
	j.Run() // caller participates
	g.Wait()
	j.fn = nil
	rowJobPool.Put(j)
	c.PutGroup(g)
}
