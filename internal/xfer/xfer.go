// Package xfer models the system-level data movement of Section 5: PCIe
// transfers between host and FPGA (batching, multi-threaded interleaving,
// double/quadruple buffering) and DRAM streaming of key-switching keys
// for parameter sets whose keys do not fit on chip.
//
// The models answer the feasibility questions the paper answers
// quantitatively: does the PCIe link keep the compute modules fed, and
// does DRAM bandwidth cover ksk streaming? (Section 5.1's arithmetic:
// two Set-C key sets ≈ 151 Mb must stream within one KeySwitch interval
// ≈ 383 µs, requiring ≥ 49.28 GB/s — under the four-channel total.)
package xfer

import (
	"fmt"

	"heax/internal/core"
)

// PolyBytes returns the wire size of one RNS residue polynomial. Words
// travel as 64-bit quantities on PCIe/DRAM even though the datapath uses
// 54 bits (the paper's Section 5.1 arithmetic uses 64-bit words).
func PolyBytes(set core.ParamSet) int {
	return set.N() * 8
}

// CiphertextBytes returns the wire size of a degree-1 ciphertext at the
// top level: 2 components × k residue polynomials.
func CiphertextBytes(set core.ParamSet) int {
	return 2 * set.K * PolyBytes(set)
}

// KskStreamBytes is the per-KeySwitch key traffic when keys live in DRAM:
// two key sets (D0 | D1), each k·(k+1) residue polynomials (Section 5.1).
func KskStreamBytes(set core.ParamSet) int {
	return 2 * set.K * (set.K + 1) * PolyBytes(set)
}

// DRAMStreamReport quantifies Section 5.1's feasibility check.
type DRAMStreamReport struct {
	Set              core.ParamSet
	Board            core.Board
	BitsPerKeySwitch int
	// IntervalSec is the KeySwitch initiation interval at the board
	// clock.
	IntervalSec float64
	// RequiredGBps is the bandwidth needed to stream the keys within one
	// interval.
	RequiredGBps float64
	// AvailableGBps is the aggregate measured DRAM bandwidth.
	AvailableGBps float64
	Feasible      bool
}

// DRAMStreaming evaluates whether ksk streaming sustains the KeySwitch
// rate for a design.
func DRAMStreaming(d *core.Design) DRAMStreamReport {
	bits := KskStreamBytes(d.Set) * 8
	interval := float64(d.Arch.KeySwitchCycles(d.Set)) / (float64(d.Board.FreqMHz) * 1e6)
	gbps := float64(bits) / 8 / interval / 1e9
	return DRAMStreamReport{
		Set:              d.Set,
		Board:            d.Board,
		BitsPerKeySwitch: bits,
		IntervalSec:      interval,
		RequiredGBps:     gbps,
		AvailableGBps:    float64(d.Board.DRAMGBps),
		Feasible:         gbps <= float64(d.Board.DRAMGBps),
	}
}

// PCIeModel reproduces the Section 5.2 design: transfers are batched to
// at least one full polynomial per request and issued from eight threads
// so the link stays saturated.
type PCIeModel struct {
	Board core.Board
	// Threads is the number of concurrent transfer threads (8 in HEAX).
	Threads int
	// PerRequestOverheadUS models DMA setup per request; throughput
	// approaches the link rate as message size grows.
	PerRequestOverheadUS float64
}

// NewPCIeModel returns the paper's configuration for a board.
func NewPCIeModel(b core.Board) PCIeModel {
	return PCIeModel{Board: b, Threads: 8, PerRequestOverheadUS: 5}
}

// EffectiveGBps estimates sustained throughput for a message size:
// overlapping requests from multiple threads hide per-request overhead
// until the link saturates.
func (m PCIeModel) EffectiveGBps(messageBytes int) float64 {
	if messageBytes <= 0 {
		return 0
	}
	link := m.Board.PCIeGBps
	wire := float64(messageBytes) / (link * 1e9) // seconds on the wire
	perThread := float64(messageBytes) / (wire + m.PerRequestOverheadUS*1e-6)
	total := perThread * float64(m.Threads)
	if total > link*1e9 {
		total = link * 1e9
	}
	return total / 1e9
}

// TransferSec returns the time to move nBytes at the effective rate for
// the given per-request message size.
func (m PCIeModel) TransferSec(nBytes, messageBytes int) float64 {
	gbps := m.EffectiveGBps(messageBytes)
	if gbps == 0 {
		return 0
	}
	return float64(nBytes) / (gbps * 1e9)
}

// MULTFeedReport asks whether PCIe can feed the standalone MULT module:
// a ciphertext-ciphertext multiply consumes two ciphertexts and produces
// three components.
type MULTFeedReport struct {
	InBytesPerOp  int
	OutBytesPerOp int
	// ComputeSec is the MULT module's time per operation (all k·3 dyadic
	// component products).
	ComputeSec float64
	// TransferSec is the PCIe time for input + output at polynomial-sized
	// messages.
	TransferSec float64
	// PCIeBound reports whether the link, not compute, limits throughput
	// (true in practice for the MULT module — the reason results can stay
	// in DRAM via the memory map, Section 5.1).
	PCIeBound bool
}

// MULTFeed evaluates the PCIe feed for C-C multiplication on a design.
func MULTFeed(d *core.Design) MULTFeedReport {
	set := d.Set
	in := 2 * CiphertextBytes(set)
	out := 3 * set.K * PolyBytes(set)
	// 3 output components × k primes, each a dyadic pass of n/nc cycles
	// (α·β = 4 products pairwise-combined into 3 components; the module
	// overlaps the combination adds with the products).
	cycles := 4 * set.K * core.ModuleCycles(core.MULTModule, d.StandaloneMULTCores, set.N())
	compute := float64(cycles) / (float64(d.Board.FreqMHz) * 1e6)
	m := NewPCIeModel(d.Board)
	tx := m.TransferSec(in, PolyBytes(set)) + m.TransferSec(out, PolyBytes(set))
	return MULTFeedReport{
		InBytesPerOp:  in,
		OutBytesPerOp: out,
		ComputeSec:    compute,
		TransferSec:   tx,
		PCIeBound:     tx > compute,
	}
}

// BufferPlan summarizes Section 5.2's buffering rules for a design.
type BufferPlan struct {
	MULTBuffers      int // double buffering for the MULT module inputs
	KeySwitchBuffers int // f1 quadruple buffering for the input polynomial
}

// PlanBuffers derives the buffering plan from the architecture.
func PlanBuffers(d *core.Design) BufferPlan {
	return BufferPlan{MULTBuffers: 2, KeySwitchBuffers: d.Arch.F1()}
}

// String renders the DRAM report like the Section 5.1 prose.
func (r DRAMStreamReport) String() string {
	return fmt.Sprintf("%s on %s: %d Mb per KeySwitch in %.0f µs -> %.2f GB/s required, %d GB/s available (feasible=%v)",
		r.Set.Name, r.Board.Name, r.BitsPerKeySwitch/1_000_000, r.IntervalSec*1e6,
		r.RequiredGBps, int(r.AvailableGBps), r.Feasible)
}
