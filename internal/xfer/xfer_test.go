package xfer

import (
	"math"
	"strings"
	"testing"

	"heax/internal/core"
)

func setCDesign(t testing.TB) *core.Design {
	t.Helper()
	d, err := core.StandardDesign(core.BoardStratix10, core.ParamSetC)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSizes(t *testing.T) {
	if got := PolyBytes(core.ParamSetC); got != (1<<14)*8 {
		t.Fatalf("PolyBytes = %d", got)
	}
	if got := CiphertextBytes(core.ParamSetB); got != 2*4*(1<<13)*8 {
		t.Fatalf("CiphertextBytes = %d", got)
	}
	// Section 5.1: two Set-C key sets hold 2·8·9 vectors of 2^14 64-bit
	// words ≈ 151 Mb.
	bits := KskStreamBytes(core.ParamSetC) * 8
	if bits != 150_994_944 {
		t.Fatalf("ksk stream bits = %d, want 150994944 (≈151 Mb)", bits)
	}
}

// Section 5.1's feasibility arithmetic: ≈383 µs per KeySwitch, therefore
// ≥49.28 GB/s required, under the 64 GB/s the four channels provide.
func TestDRAMStreamingSetC(t *testing.T) {
	r := DRAMStreaming(setCDesign(t))
	if us := r.IntervalSec * 1e6; math.Abs(us-382.3) > 1.5 {
		t.Fatalf("interval %.1f µs, want ≈382-383", us)
	}
	if math.Abs(r.RequiredGBps-49.28) > 0.3 {
		t.Fatalf("required bandwidth %.2f GB/s, want ≈49.28", r.RequiredGBps)
	}
	if !r.Feasible {
		t.Fatal("Set-C streaming must be feasible on Stratix 10")
	}
	if !strings.Contains(r.String(), "GB/s required") {
		t.Fatal("report string malformed")
	}
}

// The same streaming demand would overwhelm the Arria 10 board's two
// channels — part of why the large set is evaluated on Stratix 10 only.
func TestDRAMStreamingInfeasibleOnA10(t *testing.T) {
	arch := core.DeriveArch(core.BoardArria10, core.ParamSetC, 8)
	d := core.NewDesign(core.BoardArria10, core.ParamSetC, arch)
	r := DRAMStreaming(d)
	if r.Feasible {
		t.Fatalf("Set-C ksk streaming should exceed Arria 10's %d GB/s (needs %.1f)",
			core.BoardArria10.DRAMGBps, r.RequiredGBps)
	}
}

func TestPCIeModelSaturation(t *testing.T) {
	m := NewPCIeModel(core.BoardStratix10)
	if m.Threads != 8 {
		t.Fatal("paper uses eight transfer threads")
	}
	// Tiny messages waste the link on per-request overhead...
	small := m.EffectiveGBps(64)
	// ...full polynomials (2^15-2^17 bytes, Section 5.2) reach the link
	// rate.
	big := m.EffectiveGBps(PolyBytes(core.ParamSetB))
	if small >= big {
		t.Fatalf("throughput should grow with message size: %.2f vs %.2f", small, big)
	}
	if big < 0.9*core.BoardStratix10.PCIeGBps {
		t.Fatalf("polynomial-sized messages should ≈saturate the link: %.2f of %.2f",
			big, core.BoardStratix10.PCIeGBps)
	}
	if m.EffectiveGBps(0) != 0 {
		t.Fatal("zero message size must yield zero throughput")
	}
	if m.TransferSec(0, 0) != 0 {
		t.Fatal("degenerate transfer must be zero")
	}
}

// The MULT module is transfer-bound, which is why HEAX keeps intermediate
// results in DRAM via the memory map rather than round-tripping over
// PCIe (Section 5.1).
func TestMULTFeedPCIeBound(t *testing.T) {
	for _, cfg := range core.EvaluatedConfigs() {
		d, err := core.StandardDesign(cfg.Board, cfg.Set)
		if err != nil {
			t.Fatal(err)
		}
		r := MULTFeed(d)
		if r.InBytesPerOp != 2*CiphertextBytes(cfg.Set) {
			t.Fatalf("input bytes wrong")
		}
		if !r.PCIeBound {
			t.Errorf("%s/%s: expected the MULT module to be PCIe-bound (compute %.1fµs, transfer %.1fµs)",
				cfg.Board.Name, cfg.Set.Name, r.ComputeSec*1e6, r.TransferSec*1e6)
		}
	}
}

func TestPlanBuffers(t *testing.T) {
	d := setCDesign(t)
	plan := PlanBuffers(d)
	if plan.MULTBuffers != 2 {
		t.Fatal("MULT inputs are double-buffered")
	}
	if plan.KeySwitchBuffers != 4 {
		t.Fatalf("KeySwitch input should be quadruple-buffered, got %d", plan.KeySwitchBuffers)
	}
}
