package hwsim

import (
	"math/rand"
	"testing"

	"heax/internal/core"
	"heax/internal/ntt"
	"heax/internal/primes"
	"heax/internal/uintmod"
)

func tables(t testing.TB, bitsize, n int) *ntt.Tables {
	t.Helper()
	ps, err := primes.NTTPrimes(bitsize, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := ntt.NewTables(ps[0], n)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func randPoly(rng *rand.Rand, n int, p uint64) []uint64 {
	a := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64() % p
	}
	return a
}

func TestNewNTTModuleSimErrors(t *testing.T) {
	tb := tables(t, 40, 64)
	if _, err := NewNTTModuleSim(tb, 3, false); err == nil {
		t.Error("non-power-of-two cores should fail")
	}
	if _, err := NewNTTModuleSim(tb, 32, false); err == nil {
		t.Error("too many cores should fail")
	}
	big := tables(t, 60, 64)
	if _, err := NewNTTModuleSim(big, 4, false); err == nil {
		t.Error("60-bit modulus should exceed the 54-bit datapath")
	}
}

// The hardware dataflow must produce exactly the reference forward NTT,
// across sizes and core counts.
func TestNTTModuleMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{64, 256, 4096} {
		tb := tables(t, 44, n)
		for nc := 1; 4*nc <= n && nc <= 32; nc <<= 1 {
			sim, err := NewNTTModuleSim(tb, nc, false)
			if err != nil {
				t.Fatal(err)
			}
			a := randPoly(rng, n, tb.Mod.P)
			want := append([]uint64(nil), a...)
			tb.Forward(want)
			sim.Transform(a)
			for i := range a {
				if a[i] != want[i] {
					t.Fatalf("n=%d nc=%d: mismatch at %d", n, nc, i)
				}
			}
		}
	}
}

func TestINTTModuleMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{64, 256, 4096} {
		tb := tables(t, 44, n)
		for nc := 1; 4*nc <= n && nc <= 32; nc <<= 1 {
			sim, err := NewNTTModuleSim(tb, nc, true)
			if err != nil {
				t.Fatal(err)
			}
			a := randPoly(rng, n, tb.Mod.P)
			want := append([]uint64(nil), a...)
			tb.Inverse(want)
			sim.Transform(a)
			for i := range a {
				if a[i] != want[i] {
					t.Fatalf("n=%d nc=%d: mismatch at %d", n, nc, i)
				}
			}
		}
	}
}

// Measured cycles must equal the closed form n·log n/(2·nc) that the
// performance model (and Table 4) relies on.
func TestNTTModuleCyclesMatchFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{256, 4096, 8192} {
		tb := tables(t, 44, n)
		for _, nc := range []int{4, 8, 16} {
			if 4*nc > n {
				continue
			}
			for _, inverse := range []bool{false, true} {
				sim, err := NewNTTModuleSim(tb, nc, inverse)
				if err != nil {
					t.Fatal(err)
				}
				a := randPoly(rng, n, tb.Mod.P)
				sim.Transform(a)
				want := int64(core.ModuleCycles(core.NTTModule, nc, n))
				if sim.Cycles != want {
					t.Errorf("n=%d nc=%d inv=%v: cycles %d, want %d", n, nc, inverse, sim.Cycles, want)
				}
				if sim.SteadyStateCycles() != want {
					t.Errorf("n=%d nc=%d: closed form disagrees", n, nc)
				}
			}
		}
	}
}

// Figure 4 ablation: the basic pipeline wastes 50% of the cycles in
// Type-1 stages; the paper quantifies the loss as a throughput factor of
// (log n - log nc - 1)/log n when unfixed.
func TestPipelineModeAblation(t *testing.T) {
	n := 4096
	tb := tables(t, 44, n)
	rng := rand.New(rand.NewSource(4))
	for _, nc := range []int{4, 8, 16} {
		opt, err := NewNTTModuleSim(tb, nc, false)
		if err != nil {
			t.Fatal(err)
		}
		basic, err := NewNTTModuleSim(tb, nc, false)
		if err != nil {
			t.Fatal(err)
		}
		basic.Mode = BasicPipeline

		a := randPoly(rng, n, tb.Mod.P)
		b := append([]uint64(nil), a...)
		opt.Transform(a)
		basic.Transform(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("pipeline mode changed the result")
			}
		}
		if basic.Cycles <= opt.Cycles {
			t.Fatalf("nc=%d: basic pipeline should cost more (%d vs %d)", nc, basic.Cycles, opt.Cycles)
		}
		if basic.SteadyStateCycles() != basic.Cycles {
			t.Fatalf("nc=%d: basic closed form %d != measured %d", nc, basic.SteadyStateCycles(), basic.Cycles)
		}
		// Type-1 stages double: expected ratio (2·t1 + t2)/(t1 + t2).
		logn, logw := 12, log2(2*nc)
		t1 := logn - logw
		wantRatio := float64(2*t1+(logn-t1)) / float64(logn)
		gotRatio := float64(basic.Cycles) / float64(opt.Cycles)
		if !close(gotRatio, wantRatio, 1e-9) {
			t.Fatalf("nc=%d: slowdown %f, want %f", nc, gotRatio, wantRatio)
		}
	}
}

func log2(x int) int {
	l := 0
	for 1<<l < x {
		l++
	}
	return l
}

func close(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// Figure 2 golden trace: n=16, nc=2 (ME width 4, depth 4). The first
// stage (t=8) pairs MEs two rows apart, the second (t=4) adjacent rows,
// and the last two stages are Type 2 (within-ME).
func TestAccessPatternGolden(t *testing.T) {
	tb := tables(t, 30, 16)
	sim, err := NewNTTModuleSim(tb, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	sim.Record = true
	a := make([]uint64, 16)
	for i := range a {
		a[i] = uint64(i)
	}
	sim.Transform(a)

	want := []AccessRecord{
		{Stage: 0, Step: 0, Type1: true, MEAddrs: []int{0, 2}},
		{Stage: 0, Step: 1, Type1: true, MEAddrs: []int{1, 3}},
		{Stage: 1, Step: 0, Type1: true, MEAddrs: []int{0, 1}},
		{Stage: 1, Step: 1, Type1: true, MEAddrs: []int{2, 3}},
		{Stage: 2, Step: 0, Type1: false, MEAddrs: []int{0}},
		{Stage: 2, Step: 1, Type1: false, MEAddrs: []int{1}},
		{Stage: 2, Step: 2, Type1: false, MEAddrs: []int{2}},
		{Stage: 2, Step: 3, Type1: false, MEAddrs: []int{3}},
		{Stage: 3, Step: 0, Type1: false, MEAddrs: []int{0}},
		{Stage: 3, Step: 1, Type1: false, MEAddrs: []int{1}},
		{Stage: 3, Step: 2, Type1: false, MEAddrs: []int{2}},
		{Stage: 3, Step: 3, Type1: false, MEAddrs: []int{3}},
	}
	if len(sim.Trace) != len(want) {
		t.Fatalf("trace length %d, want %d", len(sim.Trace), len(want))
	}
	for i, w := range want {
		g := sim.Trace[i]
		if g.Stage != w.Stage || g.Step != w.Step || g.Type1 != w.Type1 {
			t.Fatalf("record %d: %+v want %+v", i, g, w)
		}
		for j := range w.MEAddrs {
			if g.MEAddrs[j] != w.MEAddrs[j] {
				t.Fatalf("record %d: addrs %v want %v", i, g.MEAddrs, w.MEAddrs)
			}
		}
	}
	sim.ResetCounters()
	if sim.Cycles != 0 || sim.Trace != nil {
		t.Fatal("ResetCounters did not reset")
	}
}

// INTT reverses the stage order: within-ME (Type 2) stages come first,
// cross-ME (Type 1) stages last — the control unit "operates in the
// reverse order of stage numbers" (Section 4.2).
func TestINTTAccessPatternReversed(t *testing.T) {
	tb := tables(t, 30, 16)
	sim, err := NewNTTModuleSim(tb, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	sim.Record = true
	a := make([]uint64, 16)
	sim.Transform(a)
	if len(sim.Trace) != 12 {
		t.Fatalf("trace length %d", len(sim.Trace))
	}
	for _, rec := range sim.Trace {
		wantType1 := rec.Stage >= 2 // t = 1,2 within ME; t = 4,8 across
		if rec.Type1 != wantType1 {
			t.Fatalf("stage %d: Type1=%v, want %v", rec.Stage, rec.Type1, wantType1)
		}
	}
}

func TestMULTModuleSim(t *testing.T) {
	ps, err := primes.NTTPrimes(44, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := ps[0]
	sim, err := NewMULTModuleSim(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	n := 256
	a, b := randPoly(rng, n, p), randPoly(rng, n, p)
	out := make([]uint64, n)
	sim.Dyadic(a, b, out)
	m := uintmod.NewModulus(p)
	for i := range out {
		if out[i] != m.MulMod(a[i], b[i]) {
			t.Fatalf("dyadic mismatch at %d", i)
		}
	}
	if want := int64(n / 8); sim.Cycles != want {
		t.Fatalf("cycles %d, want %d", sim.Cycles, want)
	}

	// Accumulating twice equals 2ab.
	acc := make([]uint64, n)
	sim.DyadicAcc(a, b, acc)
	sim.DyadicAcc(a, b, acc)
	for i := range acc {
		want := uintmod.AddMod(out[i], out[i], p)
		if acc[i] != want {
			t.Fatalf("accumulate mismatch at %d", i)
		}
	}

	// MulSub: (a-b)*c.
	c := uint64(12345)
	cs := uintmod.ShoupPrecomp54(c, p)
	ms := make([]uint64, n)
	sim.MulSub(a, b, c, cs, ms)
	for i := range ms {
		want := m.MulMod(uintmod.SubMod(a[i], b[i], p), c)
		if ms[i] != want {
			t.Fatalf("mulsub mismatch at %d", i)
		}
	}
	sim.ResetCounters()
	if sim.Cycles != 0 {
		t.Fatal("reset failed")
	}
}

func TestMULTModuleErrors(t *testing.T) {
	if _, err := NewMULTModuleSim(97, 3); err == nil {
		t.Error("non-power-of-two cores should fail")
	}
	if _, err := NewMULTModuleSim(1<<61, 4); err == nil {
		t.Error("oversized modulus should fail")
	}
}

// The pipeline model must reach the INTT0-bound interval for all four
// paper configurations (this is what makes Table 8's HEAX column an
// achieved rate rather than an assumption).
func TestPipelineIntervalMatchesClosedForm(t *testing.T) {
	for _, cfg := range core.PaperArchitectures {
		var set core.ParamSet
		for _, s := range core.ParamSets {
			if s.Name == cfg.Set {
				set = s
			}
		}
		rep := SimulateKeySwitchPipeline(PipelineConfig{Arch: cfg.Arch, Set: set}, 64, false)
		want := float64(cfg.Arch.KeySwitchCycles(set))
		if !close(rep.Interval, want, 0.01*want) {
			t.Errorf("%s/%s: interval %.0f, want %.0f", cfg.Board, cfg.Set, rep.Interval, want)
		}
		if u := rep.Utilization["INTT0"]; u < 0.9 {
			t.Errorf("%s/%s: INTT0 utilization %.2f, want ≥0.9 (it is the pipeline driver)", cfg.Board, cfg.Set, u)
		}
	}
}

// Shrinking the buffers must reintroduce the data-dependency stalls
// (Section 4.3): with f1 = 1 the input buffer serializes operations.
func TestPipelineBufferAblation(t *testing.T) {
	set := core.ParamSetB
	arch := core.DeriveArch(core.BoardStratix10, set, 16)
	full := SimulateKeySwitchPipeline(PipelineConfig{Arch: arch, Set: set}, 24, false)
	starved := SimulateKeySwitchPipeline(PipelineConfig{Arch: arch, Set: set, F1: 1, F2: 1}, 24, false)
	if starved.Interval <= full.Interval*1.05 {
		t.Fatalf("buffer starvation should slow the pipeline: %.0f vs %.0f", starved.Interval, full.Interval)
	}
}

func TestGanttRendering(t *testing.T) {
	set := core.ParamSetA
	arch := core.DeriveArch(core.BoardStratix10, set, 16)
	rep := SimulateKeySwitchPipeline(PipelineConfig{Arch: arch, Set: set}, 4, true)
	if len(rep.Segments) == 0 {
		t.Fatal("trace requested but empty")
	}
	g := RenderGantt(rep, int64(rep.Interval/8)+1, 80)
	if g == "" || g == "(no trace recorded)" {
		t.Fatal("gantt rendering empty")
	}
	empty := RenderGantt(PipelineReport{}, 100, 10)
	if empty != "(no trace recorded)" {
		t.Fatal("empty trace should render placeholder")
	}
}
