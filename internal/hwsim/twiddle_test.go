package hwsim

import "testing"

func TestTwiddleAccessPlanGroups(t *testing.T) {
	// n = 4096, nc = 8: stages 0..11; log nc = 3.
	plans, err := TwiddleAccessPlan(4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 12 {
		t.Fatalf("stages = %d", len(plans))
	}
	for _, p := range plans {
		var want TwiddleGroup
		switch {
		case p.Stage < 3: // 2^s < nc
			want = TwiddleBroadcast
		case p.Stage == 3: // 2^s == nc
			want = TwiddleSingleME
		case p.Stage == 11: // 2^s == n/2
			want = TwiddlePerStep
		default:
			want = TwiddleMultiME
		}
		if p.Group != want {
			t.Errorf("stage %d: group %v, want %v", p.Stage, p.Group, want)
		}
	}
	// Broadcast width halves each stage of group (i): 8, 4, 2 cores per
	// factor.
	for s, wantB := range []int{8, 4, 2} {
		if plans[s].Broadcast != wantB {
			t.Errorf("stage %d: broadcast %d, want %d", s, plans[s].Broadcast, wantB)
		}
		if plans[s].UniqueMEs != 1 {
			t.Errorf("stage %d: group (i) must read only ME0", s)
		}
	}
	// Group (iii) reads 2^(s - log nc) MEs; the last stage reads one new
	// ME per step: n/2 factors / nc per ME = 256 MEs over 256 steps.
	if plans[5].UniqueMEs != 4 {
		t.Errorf("stage 5: unique MEs %d, want 4", plans[5].UniqueMEs)
	}
	steps := 4096 / (2 * 8)
	if plans[11].UniqueMEs != steps {
		t.Errorf("stage 11: unique MEs %d, want %d (one per step)", plans[11].UniqueMEs, steps)
	}
}

func TestTwiddleAccessPlanErrors(t *testing.T) {
	if _, err := TwiddleAccessPlan(1000, 8); err == nil {
		t.Error("non-power-of-two n should fail")
	}
	if _, err := TwiddleAccessPlan(16, 16); err == nil {
		t.Error("nc > n/2 should fail")
	}
}

func TestTwiddleMEForStep(t *testing.T) {
	n, nc := 4096, 8
	// Group (i)/(ii): constant ME per stage.
	if me := TwiddleMEForStep(n, nc, 0, 5); me != 0 {
		t.Fatalf("stage 0 must read ME0, got %d", me)
	}
	if me := TwiddleMEForStep(n, nc, 3, 7); me != 1 {
		t.Fatalf("stage log nc must read ME1, got %d", me)
	}
	// Last stage: a new ME each step, starting at (n/2)/nc.
	base := (n / 2) / nc
	for _, step := range []int{0, 1, 17} {
		if me := TwiddleMEForStep(n, nc, 11, step); me != base+step {
			t.Fatalf("stage 11 step %d: ME %d, want %d", step, me, base+step)
		}
	}
	// Monotone, non-decreasing within any stage.
	for stage := 0; stage < 12; stage++ {
		prev := -1
		for step := 0; step < n/(2*nc); step++ {
			me := TwiddleMEForStep(n, nc, stage, step)
			if me < prev {
				t.Fatalf("stage %d: ME sequence not monotone", stage)
			}
			prev = me
		}
	}
	if TwiddleGroup(9).String() == "" {
		t.Fatal("unknown group should still format")
	}
}
