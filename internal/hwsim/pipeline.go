package hwsim

import (
	"fmt"
	"sort"
	"strings"

	"heax/internal/core"
)

// PipelineConfig parameterizes the KeySwitch pipeline cycle model
// (Figure 6). F1 and F2 default to the architecture's formulas when zero;
// overriding them smaller reproduces the data-dependency stalls the
// buffers exist to hide.
type PipelineConfig struct {
	Arch core.KeySwitchArch
	Set  core.ParamSet
	F1   int // input-polynomial buffers ("Data Dependency 1")
	F2   int // DyadMult output bank sets ("Data Dependency 2")
}

// GanttSegment is one module-busy interval of the pipeline trace.
type GanttSegment struct {
	Module string
	Op     int
	Digit  int // -1 for non-digit work
	Start  int64
	End    int64
}

// PipelineReport summarizes a pipeline simulation.
type PipelineReport struct {
	Ops         int
	TotalCycles int64
	// Interval is the measured steady-state initiation interval in
	// cycles per KeySwitch.
	Interval float64
	// Utilization maps module names to busy fraction over the run.
	Utilization map[string]float64
	Segments    []GanttSegment
}

// server is a single hardware module instance with greedy FIFO service.
type server struct {
	name string
	free int64
	busy int64
}

func (s *server) run(ready int64, dur int64) (start, end int64) {
	start = ready
	if s.free > start {
		start = s.free
	}
	end = start + dur
	s.free = end
	s.busy += dur
	return start, end
}

// SimulateKeySwitchPipeline schedules ops back-to-back KeySwitch
// operations through the module pipeline, honoring:
//
//   - module occupancy (each module serves one polynomial at a time;
//     stage-to-stage handoff is buffered by each module's output memory
//     with the rate-conversion machinery of Section 4.3, so draining one
//     result overlaps computing the next),
//   - the f1-deep input buffers (an operation is admitted only when the
//     buffer of the operation f1 earlier has been released), and
//   - the f2-deep accumulation banks (DyadMult for operation o waits for
//     the MS stage of operation o-f2 to free a bank set).
//
// With the paper's f1/f2 values the measured interval equals the
// INTT0-bound closed form k·n·log n/(2·ncINTT0); with shrunken buffers
// the stalls reappear, which is the Figure 6 ablation.
func SimulateKeySwitchPipeline(cfg PipelineConfig, ops int, trace bool) PipelineReport {
	a := cfg.Arch
	set := cfg.Set
	n := set.N()
	k := set.K
	if cfg.F1 == 0 {
		cfg.F1 = a.F1()
	}
	if cfg.F2 == 0 {
		cfg.F2 = a.F2(set.LogN)
	}

	tINTT0 := int64(core.ModuleCycles(core.INTTModule, a.NcINTT0, n))
	tNTT0 := int64(core.ModuleCycles(core.NTTModule, a.NcNTT0, n))
	tDyad := 2 * int64(core.ModuleCycles(core.MULTModule, a.NcDyad, n)) // both key columns
	tINTT1 := int64(core.ModuleCycles(core.INTTModule, a.NcINTT1, n))
	tNTT1 := int64(core.ModuleCycles(core.NTTModule, a.NcNTT1, n))
	tMS := int64(core.ModuleCycles(core.MULTModule, a.NcMS, n))

	intt0 := &server{name: "INTT0"}
	ntt0 := make([]*server, a.NumNTT0)
	dyad := make([]*server, a.NumNTT0) // key-dyad modules paired with NTT0
	for i := range ntt0 {
		ntt0[i] = &server{name: fmt.Sprintf("NTT0.%d", i)}
		dyad[i] = &server{name: fmt.Sprintf("Dyad.%d", i)}
	}
	dyadIn := &server{name: "Dyad.in"}
	intt1 := [2]*server{{name: "INTT1.0"}, {name: "INTT1.1"}}
	ntt1 := [2]*server{{name: "NTT1.0"}, {name: "NTT1.1"}}
	ms := [2]*server{{name: "MS.0"}, {name: "MS.1"}}

	var segments []GanttSegment
	note := func(srv *server, op, digit int, start, end int64) {
		if trace {
			segments = append(segments, GanttSegment{srv.name, op, digit, start, end})
		}
	}

	inputFreed := make([]int64, ops) // input buffer release per op
	bankFreed := make([]int64, ops)  // accumulation bank release per op
	complete := make([]int64, ops)

	for o := 0; o < ops; o++ {
		var admit int64
		if o >= cfg.F1 {
			admit = inputFreed[o-cfg.F1]
		}
		var bankReady int64
		if o >= cfg.F2 {
			bankReady = bankFreed[o-cfg.F2]
		}

		var lastDyadOfOp int64
		var lastInputDyad int64
		nttIdx := 0
		for digit := 0; digit < k; digit++ {
			_, iEnd := intt0.run(admit, tINTT0)
			note(intt0, o, digit, iEnd-tINTT0, iEnd)

			// The input-poly dyad for this digit (the i == j term) needs
			// no NTT; it reads the input buffer and the bank.
			ready := maxi64(iEnd, bankReady)
			st, en := dyadIn.run(ready, tDyad)
			note(dyadIn, o, digit, st, en)
			lastInputDyad = en
			if en > lastDyadOfOp {
				lastDyadOfOp = en
			}

			// k cross-modulus NTTs, round-robin over the NTT0 modules,
			// each drained by its paired DyadMult.
			for tgt := 0; tgt < k; tgt++ {
				mIdx := nttIdx % a.NumNTT0
				nttIdx++
				nst, nen := ntt0[mIdx].run(iEnd, tNTT0)
				note(ntt0[mIdx], o, digit, nst, nen)
				dst, den := dyad[mIdx].run(maxi64(nen, bankReady), tDyad)
				note(dyad[mIdx], o, digit, dst, den)
				if den > lastDyadOfOp {
					lastDyadOfOp = den
				}
			}
		}
		inputFreed[o] = lastInputDyad

		// Modulus switching on both bank sets.
		var opEnd int64
		for b := 0; b < 2; b++ {
			_, i1End := intt1[b].run(lastDyadOfOp, tINTT1)
			note(intt1[b], o, -1, i1End-tINTT1, i1End)
			var msEnd int64
			for prime := 0; prime < k; prime++ {
				_, nEnd := ntt1[b].run(i1End, tNTT1)
				note(ntt1[b], o, -1, nEnd-tNTT1, nEnd)
				_, mEnd := ms[b].run(nEnd, tMS)
				note(ms[b], o, -1, mEnd-tMS, mEnd)
				msEnd = mEnd
			}
			if msEnd > opEnd {
				opEnd = msEnd
			}
		}
		bankFreed[o] = opEnd
		complete[o] = opEnd
	}

	report := PipelineReport{Ops: ops, TotalCycles: complete[ops-1], Segments: segments}
	warm := ops / 2
	if ops-1 > warm {
		report.Interval = float64(complete[ops-1]-complete[warm]) / float64(ops-1-warm)
	} else {
		report.Interval = float64(complete[ops-1])
	}
	report.Utilization = map[string]float64{}
	total := float64(complete[ops-1])
	for _, s := range allServers(intt0, ntt0, dyad, dyadIn, intt1, ntt1, ms) {
		report.Utilization[s.name] = float64(s.busy) / total
	}
	return report
}

func allServers(intt0 *server, ntt0, dyad []*server, dyadIn *server, intt1, ntt1, ms [2]*server) []*server {
	out := []*server{intt0, dyadIn, intt1[0], intt1[1], ntt1[0], ntt1[1], ms[0], ms[1]}
	out = append(out, ntt0...)
	out = append(out, dyad...)
	return out
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// RenderGantt produces a coarse text rendering of the pipeline trace (a
// Figure 6 analogue): one row per module, one column per bucket cycles.
func RenderGantt(r PipelineReport, bucket int64, maxCols int) string {
	if len(r.Segments) == 0 {
		return "(no trace recorded)"
	}
	byModule := map[string][]GanttSegment{}
	var names []string
	for _, s := range r.Segments {
		if _, ok := byModule[s.Module]; !ok {
			names = append(names, s.Module)
		}
		byModule[s.Module] = append(byModule[s.Module], s)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		row := make([]byte, maxCols)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range byModule[name] {
			for c := s.Start / bucket; c <= (s.End-1)/bucket && c < int64(maxCols); c++ {
				row[c] = byte('0' + s.Op%10)
			}
		}
		fmt.Fprintf(&b, "%-8s |%s|\n", name, row)
	}
	return b.String()
}
