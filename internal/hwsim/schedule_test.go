package hwsim

import (
	"math/rand"
	"testing"

	"heax/internal/ckks"
	"heax/internal/core"
)

// ckksScheduleEvents converts the software scheduler's trace into the
// neutral event form the validator consumes.
func ckksScheduleEvents(t *testing.T, events []ckks.ScheduleEvent) []SchedEvent {
	t.Helper()
	out := make([]SchedEvent, len(events))
	for i, e := range events {
		var kind SchedEventKind
		switch e.Kind {
		case ckks.ScheduleINTT:
			kind = SchedINTT
		case ckks.ScheduleTile:
			kind = SchedTile
		case ckks.ScheduleFloor:
			kind = SchedFloor
		default:
			t.Fatalf("unknown software schedule event kind %d", e.Kind)
		}
		out[i] = SchedEvent{Kind: kind, Digit: e.Digit, Row: e.Row, Seq: e.Seq}
	}
	return out
}

// The software tile scheduler's observed order must satisfy the same
// dependency structure as the HEAX pipeline model, at every worker
// count (sequential and pipelined paths alike).
func TestSoftwareScheduleMatchesPipelineDependencies(t *testing.T) {
	params, _, _, rlk, ev := hwKit(t)
	ctx := params.RingQP
	rng := rand.New(rand.NewSource(31))
	c := ctx.NewPoly(params.K())
	for i := 0; i < params.K(); i++ {
		p := ctx.Basis.Primes[i]
		for j := range c.Coeffs[i] {
			c.Coeffs[i][j] = rng.Uint64() % p
		}
	}
	level := c.Level()
	for _, workers := range []int{1, 4, 8} {
		ctx.SetWorkers(workers)
		ev.StartScheduleTrace()
		ev.KeySwitchPoly(c, &rlk.SwitchingKey)
		trace := ev.StopScheduleTrace()
		if len(trace) == 0 {
			t.Fatalf("workers=%d: empty schedule trace", workers)
		}
		events := ckksScheduleEvents(t, trace)
		if err := ValidateKeySwitchSchedule(events, level+1, level+2); err != nil {
			t.Fatalf("workers=%d: software schedule violates pipeline dependencies: %v", workers, err)
		}
	}
	ctx.SetWorkers(1)
}

// The cycle-accurate pipeline model's own trace must satisfy the same
// rules for every architecture/parameter pairing the paper evaluates —
// the two schedulers are cross-checked against one invariant set.
func TestPipelineModelScheduleDependencies(t *testing.T) {
	for _, cfg := range core.PaperArchitectures {
		var set core.ParamSet
		for _, s := range core.ParamSets {
			if s.Name == cfg.Set {
				set = s
			}
		}
		rep := SimulateKeySwitchPipeline(PipelineConfig{Arch: cfg.Arch, Set: set}, 4, true)
		for op := 0; op < 4; op++ {
			events := PipelineScheduleEvents(rep, op)
			if err := ValidateKeySwitchSchedule(events, set.K, set.K+1); err != nil {
				t.Fatalf("%s/%s op %d: pipeline model schedule invalid: %v",
					cfg.Board, cfg.Set, op, err)
			}
		}
	}
}

// The validator must actually reject broken schedules.
func TestValidateKeySwitchScheduleRejects(t *testing.T) {
	// Cross tile before its digit's INTT.
	bad := []SchedEvent{
		{Kind: SchedTile, Digit: 0, Row: 1, Seq: 0},
		{Kind: SchedINTT, Digit: 0, Row: -1, Seq: 1},
		{Kind: SchedTile, Digit: 0, Row: 0, Seq: 2},
	}
	if err := ValidateKeySwitchSchedule(bad, 1, 2); err == nil {
		t.Fatal("early cross tile not rejected")
	}
	// Diagonal tile before INTT is fine, but missing tiles are not.
	incomplete := []SchedEvent{
		{Kind: SchedTile, Digit: 0, Row: 0, Seq: 0},
		{Kind: SchedINTT, Digit: 0, Row: -1, Seq: 1},
	}
	if err := ValidateKeySwitchSchedule(incomplete, 1, 2); err == nil {
		t.Fatal("missing tiles not rejected")
	}
	// Tile after the modulus-switching tail began.
	late := []SchedEvent{
		{Kind: SchedINTT, Digit: 0, Row: -1, Seq: 0},
		{Kind: SchedTile, Digit: 0, Row: 0, Seq: 1},
		{Kind: SchedFloor, Digit: -1, Row: -1, Seq: 2},
		{Kind: SchedTile, Digit: 0, Row: 1, Seq: 3},
	}
	if err := ValidateKeySwitchSchedule(late, 1, 2); err == nil {
		t.Fatal("tile after floor not rejected")
	}
	// A correct minimal schedule passes.
	good := []SchedEvent{
		{Kind: SchedTile, Digit: 0, Row: 0, Seq: 0},
		{Kind: SchedINTT, Digit: 0, Row: -1, Seq: 1},
		{Kind: SchedTile, Digit: 0, Row: 1, Seq: 2},
		{Kind: SchedFloor, Digit: -1, Row: -1, Seq: 3},
	}
	if err := ValidateKeySwitchSchedule(good, 1, 2); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}
