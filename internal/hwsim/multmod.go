package hwsim

import (
	"fmt"

	"heax/internal/uintmod"
)

// MULTModuleSim is the MULT module of Section 4.1: NC dyadic cores that
// each cycle consume one memory element from each operand bank and emit
// one result ME. Operands and result are held in separate BRAM banks, so
// the two reads and one write proceed in the same cycle.
type MULTModuleSim struct {
	NC  int
	Mod uintmod.Modulus

	// Cycles accumulates occupied cycles across calls.
	Cycles int64
	// FillLatency is the dyadic core pipeline depth (Table 3).
	FillLatency int
}

// NewMULTModuleSim validates geometry and datapath constraints.
func NewMULTModuleSim(p uint64, nc int) (*MULTModuleSim, error) {
	if nc < 1 || nc&(nc-1) != 0 {
		return nil, fmt.Errorf("hwsim: core count %d must be a power of two", nc)
	}
	if p >= 1<<uintmod.MaxModulusBits54 {
		return nil, fmt.Errorf("hwsim: modulus %d exceeds the 52-bit datapath limit", p)
	}
	return &MULTModuleSim{NC: nc, Mod: uintmod.NewModulus(p), FillLatency: 23}, nil
}

// Dyadic computes out = a ⊙ b on the 54-bit datapath: each product is a
// 54×54 multiply followed by Barrett reduction (Algorithm 1), exactly the
// dyadic core of Figure 1. Cycle cost: n/NC (NC coefficients per cycle).
func (s *MULTModuleSim) Dyadic(a, b, out []uint64) {
	if len(a) != len(b) || len(a) != len(out) {
		panic("hwsim: operand length mismatch")
	}
	if len(a)%s.NC != 0 {
		panic("hwsim: polynomial length must be a multiple of the core count")
	}
	for me := 0; me < len(a); me += s.NC {
		for lane := 0; lane < s.NC; lane++ {
			j := me + lane
			hi, lo := uintmod.Mul54(a[j], b[j])
			out[j] = uintmod.Reduce54(hi, lo, s.Mod)
		}
		s.Cycles++
	}
}

// DyadicAcc computes acc += a ⊙ b, the accumulate mode the DyadMult
// modules of KeySwitch use (Algorithm 7, lines 11-12). Same cycle cost as
// Dyadic: the accumulation add rides the same pipeline.
func (s *MULTModuleSim) DyadicAcc(a, b, acc []uint64) {
	if len(a) != len(b) || len(a) != len(acc) {
		panic("hwsim: operand length mismatch")
	}
	p := s.Mod.P
	for me := 0; me < len(a); me += s.NC {
		for lane := 0; lane < s.NC; lane++ {
			j := me + lane
			hi, lo := uintmod.Mul54(a[j], b[j])
			acc[j] = uintmod.AddMod(acc[j], uintmod.Reduce54(hi, lo, s.Mod), p)
		}
		s.Cycles++
	}
}

// MulSub computes out = (a - b) · c on the 54-bit datapath, the fused
// multiply-subtract of the MS module (Section 4.3: the flooring step
// subtracts the reduced special-prime polynomial and multiplies by the
// prime's inverse). c is a per-call constant with its Shoup precomputation.
func (s *MULTModuleSim) MulSub(a, b []uint64, c, cShoup54 uint64, out []uint64) {
	if len(a) != len(b) || len(a) != len(out) {
		panic("hwsim: operand length mismatch")
	}
	p := s.Mod.P
	for me := 0; me < len(a); me += s.NC {
		for lane := 0; lane < s.NC; lane++ {
			j := me + lane
			out[j] = uintmod.MulRed54(uintmod.SubMod(a[j], b[j], p), c, cShoup54, p)
		}
		s.Cycles++
	}
}

// ResetCounters clears the cycle counter.
func (s *MULTModuleSim) ResetCounters() { s.Cycles = 0 }
