package hwsim

import (
	"fmt"
	"math/bits"
)

// Twiddle-factor access planning (Section 4.2): twiddles are stored in
// batches of nc (one per NTT core) per memory element, and the set of MEs
// a stage touches falls into four groups:
//
//	(i)   2^stage < nc:      only ME0 is read; one or more factors are
//	                         broadcast to several cores;
//	(ii)  2^stage == nc:     only ME1 is read, one factor per core;
//	(iii) nc < 2^stage < n/2: 2^stage/nc distinct MEs are read over the
//	                         stage;
//	(iv)  2^stage == n/2:    a fresh ME is read every step.
type TwiddleGroup int

const (
	TwiddleBroadcast TwiddleGroup = iota + 1 // group (i)
	TwiddleSingleME                          // group (ii)
	TwiddleMultiME                           // group (iii)
	TwiddlePerStep                           // group (iv)
)

func (g TwiddleGroup) String() string {
	switch g {
	case TwiddleBroadcast:
		return "broadcast(ME0)"
	case TwiddleSingleME:
		return "single(ME1)"
	case TwiddleMultiME:
		return "multi-ME"
	case TwiddlePerStep:
		return "per-step"
	}
	return fmt.Sprintf("TwiddleGroup(%d)", int(g))
}

// TwiddleStagePlan describes the twiddle traffic of one forward-NTT
// stage.
type TwiddleStagePlan struct {
	Stage     int
	Group     TwiddleGroup
	UniqueMEs int // distinct twiddle MEs read during the stage
	Broadcast int // how many cores share one factor (1 = no broadcast)
}

// TwiddleAccessPlan classifies every stage of an n-point NTT on an
// nc-core module. The forward stage s uses the 2^s twiddle factors at
// indices [2^s, 2^{s+1}), stored nc to an ME.
func TwiddleAccessPlan(n, nc int) ([]TwiddleStagePlan, error) {
	if n < 2 || n&(n-1) != 0 || nc < 1 || nc&(nc-1) != 0 {
		return nil, fmt.Errorf("hwsim: n and nc must be powers of two")
	}
	if nc > n/2 {
		return nil, fmt.Errorf("hwsim: nc = %d too large for n = %d", nc, n)
	}
	logn := bits.Len(uint(n)) - 1
	plans := make([]TwiddleStagePlan, logn)
	for s := 0; s < logn; s++ {
		unique := 1 << s
		p := TwiddleStagePlan{Stage: s, UniqueMEs: (unique + nc - 1) / nc, Broadcast: 1}
		switch {
		case unique < nc:
			p.Group = TwiddleBroadcast
			p.Broadcast = nc / unique
			p.UniqueMEs = 1
		case unique == nc:
			p.Group = TwiddleSingleME
		case unique == n/2:
			p.Group = TwiddlePerStep
		default:
			p.Group = TwiddleMultiME
		}
		plans[s] = p
	}
	return plans, nil
}

// TwiddleMEForStep returns the twiddle ME index read at (stage, step) of
// the forward NTT: the factors for the butterfly groups processed in that
// step. Steps advance one data-ME transaction at a time (n/(2nc)
// per stage); the paper's Addr{MEw} formula reduces to this.
func TwiddleMEForStep(n, nc, stage, step int) int {
	unique := 1 << stage // factors this stage
	if unique <= nc {
		// Groups (i)-(ii): the whole stage reads one ME (0 until the
		// factors fill an ME, then 1).
		return unique / nc
	}
	// Butterfly groups per step: each step covers 2nc coefficients =
	// 2nc/(2t) groups where t = n >> (stage+1).
	t := n >> (stage + 1)
	groupsPerStep := 2 * nc / (2 * t)
	if groupsPerStep < 1 {
		groupsPerStep = 1
	}
	firstGroup := step * groupsPerStep
	return (unique + firstGroup) / nc
}
