// Package hwsim simulates the HEAX hardware modules at the dataflow
// level: polynomials live in banked memory elements (MEs) with one read
// and one write per cycle, butterflies run on the 54-bit core datapath of
// Algorithm 2, and cycle counts are accumulated from the actual access
// schedule rather than assumed.
//
// The simulator serves two purposes in the reproduction: it proves the
// architecture computes the same results as the reference software
// (internal/ntt, internal/ckks), and it validates the closed-form cycle
// counts the performance model (internal/core) uses for Tables 7-8.
package hwsim

import (
	"fmt"
	"math/bits"

	"heax/internal/ntt"
	"heax/internal/uintmod"
)

// PipelineMode selects between the naive schedule of Figure 4 (reads of a
// Type-1 ME pair stall the cores: 50% bubble) and the optimized two-stage
// read/compute/write schedule with doubled MEs.
type PipelineMode int

const (
	// OptimizedPipeline doubles ME width so reads, computes and writes of
	// consecutive ME pairs fully overlap (the paper's final design).
	OptimizedPipeline PipelineMode = iota
	// BasicPipeline models the unoptimized schedule: during Type-1 stages
	// the cores idle half the time.
	BasicPipeline
)

// AccessRecord traces one memory transaction of the NTT dataflow, enough
// to reconstruct the Figure 2 access-pattern diagram.
type AccessRecord struct {
	Stage   int
	Step    int
	Type1   bool
	MEAddrs []int // ME rows read this step
}

// NTTModuleSim is one NTT (or INTT) module: NC butterfly cores over a
// polynomial striped across parallel BRAMs in MEs of width 2·NC.
type NTTModuleSim struct {
	NC      int
	Tables  *ntt.Tables
	Mode    PipelineMode
	Inverse bool

	// Cycles accumulates data-movement cycles over all transforms run on
	// this module instance (steady-state occupancy, excluding pipeline
	// fill — the module is fully pipelined, Section 4.2).
	Cycles int64
	// FillLatency is the per-transform pipeline depth (core stages).
	FillLatency int

	// Record enables access tracing into Trace.
	Record bool
	Trace  []AccessRecord
}

// NewNTTModuleSim validates the geometry: the ME width 2·nc must divide
// the ring degree with at least two rows, and the modulus must fit the
// 54-bit datapath.
func NewNTTModuleSim(tables *ntt.Tables, nc int, inverse bool) (*NTTModuleSim, error) {
	n := tables.N
	if nc < 1 || nc&(nc-1) != 0 {
		return nil, fmt.Errorf("hwsim: core count %d must be a power of two", nc)
	}
	if 4*nc > n {
		return nil, fmt.Errorf("hwsim: %d cores too many for n=%d (need n >= 4·nc)", nc, n)
	}
	if tables.Mod.P >= 1<<uintmod.MaxModulusBits54 {
		return nil, fmt.Errorf("hwsim: modulus %d exceeds the 52-bit datapath limit", tables.Mod.P)
	}
	cost := 50
	if inverse {
		cost = 49
	}
	return &NTTModuleSim{NC: nc, Tables: tables, Inverse: inverse, FillLatency: cost}, nil
}

// Transform runs the module on a in place (forward NTT or INTT depending
// on construction), updating the cycle counters.
func (s *NTTModuleSim) Transform(a []uint64) {
	n := s.Tables.N
	if len(a) != n {
		panic("hwsim: length mismatch")
	}
	w := 2 * s.NC // ME width after the two-stage optimization
	depth := n / w
	logn := bits.Len(uint(n)) - 1

	// rows is the banked memory: rows[r][lane] = a[r*w+lane]. All reads
	// and writes below go through whole MEs, as the hardware's shared
	// address signals require.
	rows := make([][]uint64, depth)
	for r := range rows {
		rows[r] = a[r*w : (r+1)*w]
	}

	if s.Inverse {
		for st := 0; st < logn; st++ {
			t := 1 << st // butterfly span grows in INTT
			s.stage(rows, st, t, w)
		}
	} else {
		for st := 0; st < logn; st++ {
			t := n >> (st + 1) // butterfly span shrinks in NTT
			s.stage(rows, st, t, w)
		}
	}
}

// stage executes one butterfly stage over the banked rows.
func (s *NTTModuleSim) stage(rows [][]uint64, st, t, w int) {
	depth := len(rows)
	if t >= w {
		// Type 1: partners live in different MEs, rowStride apart.
		rowStride := t / w
		cost := int64(2) // two MEs per transaction, fully overlapped
		if s.Mode == BasicPipeline {
			cost = 4 // 50% bubble: reads stall computes (Figure 4)
		}
		step := 0
		for base := 0; base < depth; base += 2 * rowStride {
			for r := 0; r < rowStride; r++ {
				ra, rb := base+r, base+r+rowStride
				s.record(st, step, true, ra, rb)
				step++
				for lane := 0; lane < w; lane++ {
					j := ra*w + lane
					s.butterfly(&rows[ra][lane], &rows[rb][lane], j, t)
				}
				s.Cycles += cost
			}
		}
		return
	}
	// Type 2: partners are within one ME; the customized MUX network
	// pairs lane and lane+t.
	for r := 0; r < depth; r++ {
		s.record(st, r, false, r)
		for lane := 0; lane < w; lane += 2 * t {
			for x := 0; x < t; x++ {
				j := r*w + lane + x
				s.butterfly(&rows[r][lane+x], &rows[r][lane+x+t], j, t)
			}
		}
		s.Cycles++
	}
}

// butterfly applies one CT (forward) or GS (inverse) butterfly on the
// 54-bit datapath. j is the global index of the first operand and t the
// span; the twiddle group is j/(2t) within the stage of n/(2t) groups.
func (s *NTTModuleSim) butterfly(pa, pb *uint64, j, t int) {
	n := s.Tables.N
	m := n / (2 * t)
	idx := m + j/(2*t)
	p := s.Tables.Mod.P
	if s.Inverse {
		wv, _, ws54 := s.Tables.InverseTwiddle(idx)
		u, v := *pa, *pb
		*pa = uintmod.Half(uintmod.AddMod(u, v, p), p)
		*pb = uintmod.MulRed54(uintmod.SubMod(u, v, p), wv, ws54, p)
		return
	}
	wv, _, ws54 := s.Tables.ForwardTwiddle(idx)
	u := *pa
	v := uintmod.MulRed54(*pb, wv, ws54, p)
	*pa = uintmod.AddMod(u, v, p)
	*pb = uintmod.SubMod(u, v, p)
}

func (s *NTTModuleSim) record(stage, step int, type1 bool, addrs ...int) {
	if !s.Record {
		return
	}
	s.Trace = append(s.Trace, AccessRecord{
		Stage: stage, Step: step, Type1: type1,
		MEAddrs: append([]int(nil), addrs...),
	})
}

// SteadyStateCycles returns the closed-form throughput cost of one
// transform: n·log n/(2·nc) for the optimized pipeline (Section 4.2), and
// the Type-1 stages doubled for the basic pipeline.
func (s *NTTModuleSim) SteadyStateCycles() int64 {
	n := s.Tables.N
	logn := bits.Len(uint(n)) - 1
	w := 2 * s.NC
	logw := bits.Len(uint(w)) - 1
	type1 := logn - logw // stages with cross-ME partners
	if type1 < 0 {
		type1 = 0
	}
	perStage := int64(n / w) // one ME transaction per row (pairs cost 2)
	if s.Mode == BasicPipeline {
		// Type-1 stages run at half utilization: 2× their cycle count.
		return perStage * int64(2*type1+(logn-type1))
	}
	return perStage * int64(logn)
}

// ResetCounters clears accumulated cycles and traces.
func (s *NTTModuleSim) ResetCounters() {
	s.Cycles = 0
	s.Trace = nil
}
