package hwsim

import (
	"fmt"

	"heax/internal/core"
	"heax/internal/ring"
	"heax/internal/uintmod"
)

// KeySwitchSim executes Algorithm 7 through the hardware module
// simulators (Figure 5's dataflow): INTT0 per digit, the NTT0 layer per
// target modulus, DyadMult accumulation into the two BRAM bank sets, then
// modulus switching through INTT1 → NTT1 → MS. Its outputs must equal the
// software evaluator's KeySwitchPoly bit for bit; the test suite enforces
// that.
type KeySwitchSim struct {
	Ctx  *ring.Context // the QP context: primes (q_0..q_L, p_special)
	Arch core.KeySwitchArch

	// Cycle counters per module class, accumulated across runs.
	INTT0Cycles, NTT0Cycles, DyadCycles int64
	INTT1Cycles, NTT1Cycles, MSCycles   int64
}

// NewKeySwitchSim builds a functional simulator over the QP ring context.
func NewKeySwitchSim(ctx *ring.Context, arch core.KeySwitchArch) *KeySwitchSim {
	return &KeySwitchSim{Ctx: ctx, Arch: arch}
}

// Run key-switches polynomial c (NTT form, level c.Level()) with the
// switching key digits, returning (ks0, ks1). digits[i] is the pair
// (d_{i,0}, d_{i,1}) over the full QP basis.
func (s *KeySwitchSim) Run(c *ring.Poly, digits [][2]*ring.Poly) (ks0, ks1 *ring.Poly, err error) {
	ctx := s.Ctx
	level := c.Level()
	spRow := ctx.K() - 1 // special prime is the last basis element
	if level+1 > spRow {
		return nil, nil, fmt.Errorf("hwsim: level %d leaves no special prime", level)
	}
	if len(digits) < level+1 {
		return nil, nil, fmt.Errorf("hwsim: %d key digits < level+1 = %d", len(digits), level+1)
	}
	n := ctx.N

	acc0 := ctx.NewPoly(level + 2)
	acc1 := ctx.NewPoly(level + 2)
	rowBasis := func(jj int) int {
		if jj == level+1 {
			return spRow
		}
		return jj
	}

	aCoeff := make([]uint64, n)
	bRow := make([]uint64, n)
	for i := 0; i <= level; i++ {
		// INTT0: bring digit i to the coefficient domain.
		intt0, err := NewNTTModuleSim(ctx.Tables[i], s.Arch.NcINTT0, true)
		if err != nil {
			return nil, nil, err
		}
		copy(aCoeff, c.Coeffs[i])
		intt0.Transform(aCoeff)
		s.INTT0Cycles += intt0.Cycles

		for jj := 0; jj <= level+1; jj++ {
			basisIdx := rowBasis(jj)
			var bNTT []uint64
			if basisIdx == i {
				bNTT = c.Coeffs[i] // line 9: reuse the NTT-form input
			} else {
				m := ctx.Basis.Mods[basisIdx]
				for t := 0; t < n; t++ {
					bRow[t] = m.Reduce(aCoeff[t])
				}
				ntt0, err := NewNTTModuleSim(ctx.Tables[basisIdx], s.Arch.NcNTT0, false)
				if err != nil {
					return nil, nil, err
				}
				ntt0.Transform(bRow)
				s.NTT0Cycles += ntt0.Cycles
				bNTT = bRow
			}
			dy, err := NewMULTModuleSim(ctx.Basis.Primes[basisIdx], s.Arch.NcDyad)
			if err != nil {
				return nil, nil, err
			}
			dy.DyadicAcc(bNTT, digits[i][0].Coeffs[basisIdx], acc0.Coeffs[jj])
			dy.DyadicAcc(bNTT, digits[i][1].Coeffs[basisIdx], acc1.Coeffs[jj])
			s.DyadCycles += dy.Cycles
		}
	}

	ks0, err = s.floor(acc0, level, spRow)
	if err != nil {
		return nil, nil, err
	}
	ks1, err = s.floor(acc1, level, spRow)
	if err != nil {
		return nil, nil, err
	}
	return ks0, ks1, nil
}

// floor is the modulus-switching half of the pipeline (Algorithm 6 /
// Figure 5's second layer): INTT1 on the special row, NTT1 per remaining
// prime, and the MS modules' fused (a - r̃)·p⁻¹.
func (s *KeySwitchSim) floor(acc *ring.Poly, level, spRow int) (*ring.Poly, error) {
	ctx := s.Ctx
	n := ctx.N
	pSp := ctx.Basis.Primes[spRow]

	intt1, err := NewNTTModuleSim(ctx.Tables[spRow], s.Arch.NcINTT1, true)
	if err != nil {
		return nil, err
	}
	tail := append([]uint64(nil), acc.Coeffs[level+1]...)
	intt1.Transform(tail)
	s.INTT1Cycles += intt1.Cycles

	out := ctx.NewPoly(level + 1)
	r := make([]uint64, n)
	for i := 0; i <= level; i++ {
		m := ctx.Basis.Mods[i]
		for t := 0; t < n; t++ {
			r[t] = m.Reduce(tail[t])
		}
		ntt1, err := NewNTTModuleSim(ctx.Tables[i], s.Arch.NcNTT1, false)
		if err != nil {
			return nil, err
		}
		ntt1.Transform(r)
		s.NTT1Cycles += ntt1.Cycles

		ms, err := NewMULTModuleSim(ctx.Basis.Primes[i], s.Arch.NcMS)
		if err != nil {
			return nil, err
		}
		pInv := m.InvMod(m.Reduce(pSp))
		ms.MulSub(acc.Coeffs[i], r, pInv, uintmod.ShoupPrecomp54(pInv, m.P), out.Coeffs[i])
		s.MSCycles += ms.Cycles
	}
	return out, nil
}
