package hwsim

import (
	"math/rand"
	"testing"

	"heax/internal/ckks"
	"heax/internal/core"
	"heax/internal/ring"
)

// Hardware C-C multiplication must agree with the evaluator's Algorithm 5
// bit for bit, including the degree-2 × degree-1 generalization.
func TestSimulateCCMultMatchesEvaluator(t *testing.T) {
	params, _, _, _, eval := hwKit(t)
	ctx := params.RingQP
	rng := rand.New(rand.NewSource(40))

	ct1 := randomCtAt(params, rng, params.MaxLevel())
	ct2 := randomCtAt(params, rng, params.MaxLevel())
	want, err := eval.Mul(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SimulateCCMult(ctx, 16, ct1.Polys, ct2.Polys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Polys) != 3 {
		t.Fatalf("components = %d, want 3", len(got.Polys))
	}
	for i := range got.Polys {
		if !got.Polys[i].Equal(want.Polys[i]) {
			t.Fatalf("component %d differs from evaluator", i)
		}
	}
	// Cycle cost: α·β products × rows × n/nc.
	n := params.N
	wantCycles := int64(2 * 2 * params.K() * core.ModuleCycles(core.MULTModule, 16, n))
	if got.Cycles != wantCycles {
		t.Fatalf("cycles %d, want %d", got.Cycles, wantCycles)
	}

	// Degree-2 × degree-1 (the "not relinearized yet" case of §4.1).
	d2 := &ckks.Ciphertext{Polys: want.Polys, Scale: want.Scale, Level: want.Level}
	got2, err := SimulateCCMult(ctx, 16, d2.Polys, ct1.Polys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Polys) != 4 {
		t.Fatalf("α=3,β=2 should give 4 components, got %d", len(got2.Polys))
	}
	// Oracle: out[t] = Σ_{i+j=t} a_i ⊙ b_j.
	for tt := 0; tt < 4; tt++ {
		ref := ctx.NewPoly(params.K())
		for i := 0; i < 3; i++ {
			j := tt - i
			if j < 0 || j > 1 {
				continue
			}
			ctx.MulCoeffsAdd(d2.Polys[i], ct1.Polys[j], ref)
		}
		if !got2.Polys[tt].Equal(ref) {
			t.Fatalf("α=3 component %d differs", tt)
		}
	}
}

// C-P multiplication is the β=1 special case of the MULT module
// (Section 4.1): it must agree with the evaluator's MulPlain.
func TestSimulateCPMultMatchesEvaluator(t *testing.T) {
	params, _, _, _, eval := hwKit(t)
	ctx := params.RingQP
	rng := rand.New(rand.NewSource(42))
	ct := randomCtAt(params, rng, params.MaxLevel())
	ptPoly := ctx.NewPoly(params.K())
	for i := range ptPoly.Coeffs {
		p := ctx.Basis.Primes[i]
		for j := range ptPoly.Coeffs[i] {
			ptPoly.Coeffs[i][j] = rng.Uint64() % p
		}
	}
	want, err := eval.MulPlain(ct, &ckks.Plaintext{Value: ptPoly, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SimulateCCMult(ctx, 16, ct.Polys, []*ring.Poly{ptPoly})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Polys) != 2 {
		t.Fatalf("C-P should keep 2 components, got %d", len(got.Polys))
	}
	for i := range got.Polys {
		if !got.Polys[i].Equal(want.Polys[i]) {
			t.Fatalf("C-P component %d differs", i)
		}
	}
}

func TestSimulateCCMultErrors(t *testing.T) {
	params, _, _, _, _ := hwKit(t)
	ctx := params.RingQP
	if _, err := SimulateCCMult(ctx, 16, nil, nil); err == nil {
		t.Error("empty operands should fail")
	}
	a := []*ring.Poly{ctx.NewPoly(2)}
	b := []*ring.Poly{ctx.NewPoly(3)}
	if _, err := SimulateCCMult(ctx, 16, a, b); err == nil {
		t.Error("level mismatch should fail")
	}
}

// The Section 4.1 transfer accounting: HEAX's layout moves strictly fewer
// words whenever α·β+min > α+β (i.e. any real multiplication).
func TestCCMultTransferWords(t *testing.T) {
	cases := []struct{ alpha, beta int }{{2, 2}, {3, 2}, {3, 3}}
	n := 1 << 13
	for _, c := range cases {
		heax, naive := CCMultTransferWords(c.alpha, c.beta, n)
		if heax != (c.alpha+c.beta)*n {
			t.Fatalf("heax words wrong for %+v", c)
		}
		if naive <= heax {
			t.Fatalf("α=%d β=%d: expected the minimum-BRAM layout to transfer more (%d vs %d)",
				c.alpha, c.beta, naive, heax)
		}
	}
}

// Hardware rotation must agree with the software RotateLeft exactly.
func TestSimulateRotationMatchesEvaluator(t *testing.T) {
	params, kg, sk, _, eval := hwKit(t)
	ctx := params.RingQP
	rng := rand.New(rand.NewSource(41))
	arch := core.DeriveArch(core.BoardStratix10, core.ParamSet{Name: "hw", LogN: params.LogN, K: params.K()}, 8)

	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewSymmetricEncryptor(params, sk, 42)
	values := make([]complex128, params.Slots())
	for i := range values {
		values[i] = complex(rng.Float64()*2-1, 0)
	}
	pt, err := enc.Encode(values, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := encryptor.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}

	step := 2
	gks := kg.GenGaloisKeySet(sk, []int{step}, false)
	want, err := eval.RotateLeft(ct, step, gks)
	if err != nil {
		t.Fatal(err)
	}

	key := gks.Rotations[step]
	table := ctx.AutomorphismNTTTable(key.GaloisElt)
	r0, r1, err := SimulateRotation(ctx, arch, ct.Polys[0], ct.Polys[1], table, key.SwitchingKey.Digits)
	if err != nil {
		t.Fatal(err)
	}
	if !r0.Equal(want.Polys[0]) || !r1.Equal(want.Polys[1]) {
		t.Fatal("hardware rotation differs from software")
	}
}

func randomCtAt(params *ckks.Params, rng *rand.Rand, level int) *ckks.Ciphertext {
	ctx := params.RingQP
	mk := func() *ring.Poly {
		p := ctx.NewPoly(level + 1)
		for i := range p.Coeffs {
			prime := ctx.Basis.Primes[i]
			for j := range p.Coeffs[i] {
				p.Coeffs[i][j] = rng.Uint64() % prime
			}
		}
		return p
	}
	return &ckks.Ciphertext{Polys: []*ring.Poly{mk(), mk()}, Scale: params.DefaultScale(), Level: level}
}
