package hwsim

import (
	"math/rand"
	"testing"

	"heax/internal/ckks"
	"heax/internal/core"
	"heax/internal/ring"
)

// hwSpec is HEAX-shaped (all primes < 2^52) but small enough for unit
// tests.
var hwSpec = ckks.ParamSpec{Name: "hw-test", LogN: 10, QBits: []int{43, 40, 40, 40}, PBits: 46, LogScale: 40}

func hwKit(t testing.TB) (*ckks.Params, *ckks.KeyGenerator, *ckks.SecretKey, *ckks.RelinearizationKey, *ckks.Evaluator) {
	t.Helper()
	params, err := ckks.NewParams(hwSpec)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params, 7)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinearizationKey(sk)
	return params, kg, sk, rlk, ckks.NewEvaluator(params)
}

// The hardware KeySwitch dataflow must agree bit for bit with the
// software evaluator's Algorithm 7 at every level.
func TestKeySwitchSimMatchesEvaluator(t *testing.T) {
	params, _, _, rlk, eval := hwKit(t)
	arch := core.DeriveArch(core.BoardStratix10, core.ParamSet{Name: "hw", LogN: hwSpec.LogN, K: len(hwSpec.QBits)}, 8)
	ctx := params.RingQP

	rng := rand.New(rand.NewSource(11))
	for level := params.MaxLevel(); level >= 0; level-- {
		c := ctx.NewPoly(level + 1)
		for i := 0; i <= level; i++ {
			p := ctx.Basis.Primes[i]
			for j := range c.Coeffs[i] {
				c.Coeffs[i][j] = rng.Uint64() % p
			}
		}
		wantKs0, wantKs1 := eval.KeySwitchPoly(c, &rlk.SwitchingKey)

		sim := NewKeySwitchSim(ctx, arch)
		gotKs0, gotKs1, err := sim.Run(ring.CopyOf(c), rlk.SwitchingKey.Digits)
		if err != nil {
			t.Fatal(err)
		}
		if !gotKs0.Equal(wantKs0) || !gotKs1.Equal(wantKs1) {
			t.Fatalf("level %d: hardware KeySwitch differs from software", level)
		}
		if sim.INTT0Cycles == 0 || sim.NTT0Cycles == 0 || sim.DyadCycles == 0 ||
			sim.INTT1Cycles == 0 || sim.NTT1Cycles == 0 || sim.MSCycles == 0 {
			t.Fatalf("level %d: some module did no work: %+v", level, sim)
		}
	}
}

// End to end through the scheme: relinearize a product with the hardware
// KeySwitch and decrypt correctly.
func TestHardwareRelinearizeEndToEnd(t *testing.T) {
	params, kg, sk, rlk, eval := hwKit(t)
	enc := ckks.NewEncoder(params)
	pk := kg.GenPublicKey(sk)
	encryptor := ckks.NewEncryptor(params, pk, 8)
	dec := ckks.NewDecryptor(params, sk)
	arch := core.DeriveArch(core.BoardStratix10, core.ParamSet{Name: "hw", LogN: hwSpec.LogN, K: len(hwSpec.QBits)}, 8)

	rng := rand.New(rand.NewSource(12))
	slots := params.Slots()
	values := make([]complex128, slots)
	for i := range values {
		values[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	pt, err := enc.Encode(values, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := encryptor.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := eval.Mul(ct, ct)
	if err != nil {
		t.Fatal(err)
	}

	// Hardware path: keyswitch c2, then add to (c0, c1).
	sim := NewKeySwitchSim(params.RingQP, arch)
	ks0, ks1, err := sim.Run(prod.Polys[2], rlk.SwitchingKey.Digits)
	if err != nil {
		t.Fatal(err)
	}
	ctx := params.RingQP
	c0 := ring.CopyOf(prod.Polys[0])
	ctx.Add(c0, ks0, c0)
	c1 := ring.CopyOf(prod.Polys[1])
	ctx.Add(c1, ks1, c1)
	hwCt := &ckks.Ciphertext{Polys: []*ring.Poly{c0, c1}, Scale: prod.Scale, Level: prod.Level}

	decPt, err := dec.Decrypt(hwCt)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(decPt)
	for i := range values {
		want := values[i] * values[i]
		if d := absC(got[i] - want); d > 1e-3 {
			t.Fatalf("slot %d: |%v - %v| = %g", i, got[i], want, d)
		}
	}
}

func absC(c complex128) float64 {
	re, im := real(c), imag(c)
	return re*re + im*im
}

// The per-module cycle counters of the functional simulation must match
// the closed forms the pipeline model uses.
func TestKeySwitchSimCycleAccounting(t *testing.T) {
	params, _, _, rlk, _ := hwKit(t)
	set := core.ParamSet{Name: "hw", LogN: hwSpec.LogN, K: len(hwSpec.QBits)}
	arch := core.DeriveArch(core.BoardStratix10, set, 8)
	ctx := params.RingQP
	n := params.N
	k := params.K()

	c := ctx.NewPoly(k) // top level
	sim := NewKeySwitchSim(ctx, arch)
	if _, _, err := sim.Run(c, rlk.SwitchingKey.Digits); err != nil {
		t.Fatal(err)
	}
	if want := int64(k * core.ModuleCycles(core.INTTModule, arch.NcINTT0, n)); sim.INTT0Cycles != want {
		t.Errorf("INTT0 cycles %d, want %d", sim.INTT0Cycles, want)
	}
	// k digits × k cross-modulus NTTs each.
	if want := int64(k * k * core.ModuleCycles(core.NTTModule, arch.NcNTT0, n)); sim.NTT0Cycles != want {
		t.Errorf("NTT0 cycles %d, want %d", sim.NTT0Cycles, want)
	}
	// k digits × (k+1) targets × 2 columns.
	if want := int64(k * (k + 1) * 2 * core.ModuleCycles(core.MULTModule, arch.NcDyad, n)); sim.DyadCycles != want {
		t.Errorf("Dyad cycles %d, want %d", sim.DyadCycles, want)
	}
	// Two bank sets: one INTT each, k NTT1s and k MS passes each.
	if want := int64(2 * core.ModuleCycles(core.INTTModule, arch.NcINTT1, n)); sim.INTT1Cycles != want {
		t.Errorf("INTT1 cycles %d, want %d", sim.INTT1Cycles, want)
	}
	if want := int64(2 * k * core.ModuleCycles(core.NTTModule, arch.NcNTT1, n)); sim.NTT1Cycles != want {
		t.Errorf("NTT1 cycles %d, want %d", sim.NTT1Cycles, want)
	}
	if want := int64(2 * k * core.ModuleCycles(core.MULTModule, arch.NcMS, n)); sim.MSCycles != want {
		t.Errorf("MS cycles %d, want %d", sim.MSCycles, want)
	}
}

func TestKeySwitchSimErrors(t *testing.T) {
	params, _, _, rlk, _ := hwKit(t)
	set := core.ParamSet{Name: "hw", LogN: hwSpec.LogN, K: len(hwSpec.QBits)}
	arch := core.DeriveArch(core.BoardStratix10, set, 8)
	ctx := params.RingQP
	sim := NewKeySwitchSim(ctx, arch)
	// A poly over the full QP basis leaves no special prime.
	full := ctx.NewPoly(params.QPRows())
	if _, _, err := sim.Run(full, rlk.SwitchingKey.Digits); err == nil {
		t.Error("full-basis poly should fail")
	}
	// Too few digits.
	c := ctx.NewPoly(params.K())
	if _, _, err := sim.Run(c, rlk.SwitchingKey.Digits[:1]); err == nil {
		t.Error("missing digits should fail")
	}
}
