package hwsim

import (
	"fmt"

	"heax/internal/core"
	"heax/internal/ring"
)

// This file simulates the MULT module's full homomorphic multiplication
// mode (Section 4.1): a C-C (or C-P) multiply between ciphertexts of α
// and β components produces α+β−1 components, computed as all pairwise
// dyadic products per RNS row — with the BRAM layout that keeps data
// transfer at O((α+β)·n) words instead of O((α·β+min(α,β))·n).

// CCMultResult carries the product components and the module's cycle
// cost.
type CCMultResult struct {
	Polys  []*ring.Poly
	Cycles int64
}

// SimulateCCMult multiplies two NTT-form ciphertext component vectors on
// a MULT module with nc dyadic cores. All component polynomials must
// share one level.
func SimulateCCMult(ctx *ring.Context, nc int, a, b []*ring.Poly) (*CCMultResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return nil, fmt.Errorf("hwsim: empty operand")
	}
	rows := a[0].Rows()
	for _, p := range append(append([]*ring.Poly{}, a...), b...) {
		if p.Rows() != rows {
			return nil, fmt.Errorf("hwsim: operand level mismatch")
		}
	}
	alpha, beta := len(a), len(b)
	out := make([]*ring.Poly, alpha+beta-1)
	for t := range out {
		out[t] = ctx.NewPoly(rows)
	}
	var cycles int64
	for i := 0; i < rows; i++ {
		sim, err := NewMULTModuleSim(ctx.Basis.Primes[i], nc)
		if err != nil {
			return nil, err
		}
		for ai := 0; ai < alpha; ai++ {
			for bi := 0; bi < beta; bi++ {
				sim.DyadicAcc(a[ai].Coeffs[i], b[bi].Coeffs[i], out[ai+bi].Coeffs[i])
			}
		}
		cycles += sim.Cycles
	}
	return &CCMultResult{Polys: out, Cycles: cycles}, nil
}

// CCMultTransferWords quantifies the Section 4.1 memory-layout tradeoff
// for one RNS component: HEAX allocates α+β polynomial memories, so the
// host transfers (α+β)·n words; the minimum-BRAM alternative (one residue
// of each ciphertext at a time) would transfer (α·β+min(α,β))·n words.
func CCMultTransferWords(alpha, beta, n int) (heax, minBRAM int) {
	m := alpha
	if beta < m {
		m = beta
	}
	return (alpha + beta) * n, (alpha*beta + m) * n
}

// SimulateRotation runs a full homomorphic rotation on the simulated
// hardware: the Galois permutation is pure addressing (applied while
// reading BRAM, costing no datapath cycles), followed by the KeySwitch
// pipeline on the permuted c1 and the final addition into c0.
func SimulateRotation(ctx *ring.Context, arch core.KeySwitchArch, c0, c1 *ring.Poly, table []int, digits [][2]*ring.Poly) (r0, r1 *ring.Poly, err error) {
	rows := c0.Rows()
	c0g := ctx.NewPoly(rows)
	c1g := ctx.NewPoly(rows)
	ctx.AutomorphismNTT(c0, table, c0g)
	ctx.AutomorphismNTT(c1, table, c1g)
	sim := NewKeySwitchSim(ctx, arch)
	ks0, ks1, err := sim.Run(c1g, digits)
	if err != nil {
		return nil, nil, err
	}
	ctx.Add(c0g, ks0, c0g)
	return c0g, ks1, nil
}
