package hwsim

// Schedule cross-checking: the software tile scheduler (ckks/schedule.go)
// and the cycle-accurate pipeline model (pipeline.go) realize the same
// HEAX dataflow (Fig. 6-8), so their event orders must satisfy the same
// dependency structure:
//
//   - a (digit, targetPrime) base-convert+MAC tile whose target differs
//     from the digit's own prime may only start after that digit's INTT
//     has completed (the NTT0 layer consumes INTT0's output);
//   - the digit-diagonal tile (Algorithm 7 line 9 / the model's Dyad.in)
//     reuses the NTT-form input and may start at any time;
//   - the modulus-switching tail starts only after every tile (the
//     accumulation bank handoff, "Data Dependency 2" of Fig. 8);
//   - digits impose no order on each other — the whole point of the
//     pipelined datapath.
//
// ValidateKeySwitchSchedule checks an event sequence against these
// rules; the tests feed it both the software scheduler's trace and the
// per-op events extracted from the cycle model's Gantt segments.

import (
	"fmt"
	"sort"
)

// SchedEventKind labels one schedule event.
type SchedEventKind uint8

const (
	// SchedINTT is the completion of a digit's INTT stage.
	SchedINTT SchedEventKind = iota
	// SchedTile is the start of a (digit, target) convert+MAC tile.
	SchedTile
	// SchedFloor is the start of the modulus-switching tail.
	SchedFloor
)

// SchedEvent is one schedule observation in global order Seq. For tiles,
// Row is the target accumulator row; Row == Digit marks the diagonal
// tile, and Row < 0 a cross tile whose target is unknown (the cycle
// model's Gantt trace does not record targets).
type SchedEvent struct {
	Kind  SchedEventKind
	Digit int
	Row   int
	Seq   int
}

// ValidateKeySwitchSchedule checks one key-switch's schedule against the
// pipeline dependency rules for `digits` decomposition digits and `rows`
// tiles per digit (level+2 on the software side; k+1 in the full-level
// hardware model).
func ValidateKeySwitchSchedule(events []SchedEvent, digits, rows int) error {
	sorted := append([]SchedEvent(nil), events...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })

	inttDone := make([]bool, digits)
	inttCount := 0
	tileCount := make([]int, digits)
	totalTiles := 0
	floorSeen := false
	for _, e := range sorted {
		if e.Digit >= digits || (e.Kind != SchedFloor && e.Digit < 0) {
			return fmt.Errorf("hwsim: event digit %d out of range [0,%d)", e.Digit, digits)
		}
		switch e.Kind {
		case SchedINTT:
			if floorSeen {
				return fmt.Errorf("hwsim: INTT of digit %d after modulus switching began", e.Digit)
			}
			if inttDone[e.Digit] {
				return fmt.Errorf("hwsim: duplicate INTT completion for digit %d", e.Digit)
			}
			inttDone[e.Digit] = true
			inttCount++
		case SchedTile:
			if floorSeen {
				return fmt.Errorf("hwsim: tile (%d,%d) after modulus switching began", e.Digit, e.Row)
			}
			if e.Row != e.Digit && !inttDone[e.Digit] {
				return fmt.Errorf("hwsim: cross tile (%d,%d) started before digit %d INTT completed",
					e.Digit, e.Row, e.Digit)
			}
			tileCount[e.Digit]++
			totalTiles++
		case SchedFloor:
			floorSeen = true
		default:
			return fmt.Errorf("hwsim: unknown event kind %d", e.Kind)
		}
	}
	if inttCount != digits {
		return fmt.Errorf("hwsim: %d INTT completions, want %d", inttCount, digits)
	}
	if totalTiles != digits*rows {
		return fmt.Errorf("hwsim: %d tiles, want %d", totalTiles, digits*rows)
	}
	for d, n := range tileCount {
		if n != rows {
			return fmt.Errorf("hwsim: digit %d ran %d tiles, want %d", d, n, rows)
		}
	}
	return nil
}

// PipelineScheduleEvents extracts the schedule events of one KeySwitch
// operation from a traced cycle-model run (SimulateKeySwitchPipeline
// with trace enabled): INTT0 completions, DyadMult tile starts (Dyad.in
// is the digit-diagonal tile), and the first modulus-switching segment.
// Events are ordered by cycle time, INTT completions winning ties so
// that a tile admitted the same cycle its dependency retires validates.
func PipelineScheduleEvents(rep PipelineReport, op int) []SchedEvent {
	type timed struct {
		ev   SchedEvent
		time int64
	}
	var evs []timed
	floorStart := int64(-1)
	for _, s := range rep.Segments {
		if s.Op != op {
			continue
		}
		switch {
		case s.Module == "INTT0":
			evs = append(evs, timed{SchedEvent{Kind: SchedINTT, Digit: s.Digit, Row: -1}, s.End})
		case s.Module == "Dyad.in":
			// The input-poly dyad: the diagonal tile (needs no NTT0).
			evs = append(evs, timed{SchedEvent{Kind: SchedTile, Digit: s.Digit, Row: s.Digit}, s.Start})
		case len(s.Module) >= 5 && s.Module[:5] == "Dyad.":
			evs = append(evs, timed{SchedEvent{Kind: SchedTile, Digit: s.Digit, Row: -1}, s.Start})
		case s.Module == "INTT1.0" || s.Module == "INTT1.1":
			if floorStart < 0 || s.Start < floorStart {
				floorStart = s.Start
			}
		}
	}
	if floorStart >= 0 {
		evs = append(evs, timed{SchedEvent{Kind: SchedFloor, Digit: -1, Row: -1}, floorStart})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].time != evs[j].time {
			return evs[i].time < evs[j].time
		}
		return evs[i].ev.Kind < evs[j].ev.Kind
	})
	out := make([]SchedEvent, len(evs))
	for i, e := range evs {
		e.ev.Seq = i
		out[i] = e.ev
	}
	return out
}
