// Package rns implements the residue number system machinery of
// Section 2: a basis of pairwise-coprime word-sized primes p_0..p_L
// representing Z_q with q = Π p_i, CRT composition/decomposition against
// big integers, and the precomputed per-prime constants (π_i, [π_i^{-1}]_{p_i},
// cross-prime reductions and inverses) that the CKKS evaluation algorithms
// consume.
//
// Full-RNS operation is what makes the HEAX architecture possible: every
// Func(a, b) on R_q decomposes into independent per-prime computations
// (the paper's "ring isomorphism" argument in Section 7), which is exactly
// the parallelism the FPGA modules exploit and the reason on-chip memory
// holds one residue polynomial at a time.
package rns

import (
	"fmt"
	"math/big"

	"heax/internal/uintmod"
)

// Basis is an ordered set of distinct NTT-friendly primes.
type Basis struct {
	Primes []uint64
	Mods   []uintmod.Modulus

	q *big.Int // product of all primes

	// CRT reconstruction constants: punc[i] = q/p_i mod p_j for all j is
	// not materialized; we keep big-int puncture products for compose and
	// the word-sized inverses for decompose-style operations.
	punctured []*big.Int // π_i = q / p_i
	invPunc   []uint64   // [π_i^{-1}]_{p_i}

	// Cross-prime inverses with Shoup precomputation:
	// invCross[j][i] = [p_j^{-1}]_{p_i} (0 on the diagonal). RNS flooring
	// (Algorithm 6) multiplies by the inverse of the dropped prime in
	// every surviving row; precomputing here keeps the per-call Fermat
	// exponentiation out of the rescale/key-switch hot path.
	invCross      [][]uint64
	invCrossShoup [][]uint64
}

// NewBasis builds a basis from primes, which must be distinct and at most
// 62 bits wide.
func NewBasis(ps []uint64) (*Basis, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("rns: empty basis")
	}
	seen := make(map[uint64]bool, len(ps))
	b := &Basis{
		Primes: append([]uint64(nil), ps...),
		Mods:   make([]uintmod.Modulus, len(ps)),
		q:      big.NewInt(1),
	}
	for i, p := range ps {
		if seen[p] {
			return nil, fmt.Errorf("rns: duplicate prime %d", p)
		}
		if p>>uintmod.MaxModulusBits64 != 0 {
			return nil, fmt.Errorf("rns: prime %d exceeds %d bits", p, uintmod.MaxModulusBits64)
		}
		seen[p] = true
		b.Mods[i] = uintmod.NewModulus(p)
		b.q.Mul(b.q, new(big.Int).SetUint64(p))
	}
	b.punctured = make([]*big.Int, len(ps))
	b.invPunc = make([]uint64, len(ps))
	for i, p := range ps {
		pi := new(big.Int).Div(b.q, new(big.Int).SetUint64(p))
		b.punctured[i] = pi
		rem := new(big.Int).Mod(pi, new(big.Int).SetUint64(p)).Uint64()
		b.invPunc[i] = b.Mods[i].InvMod(rem)
	}
	b.invCross = make([][]uint64, len(ps))
	b.invCrossShoup = make([][]uint64, len(ps))
	for j := range ps {
		b.invCross[j] = make([]uint64, len(ps))
		b.invCrossShoup[j] = make([]uint64, len(ps))
		for i := range ps {
			if i == j {
				continue
			}
			inv := b.Mods[i].InvMod(b.Mods[i].Reduce(ps[j]))
			b.invCross[j][i] = inv
			b.invCrossShoup[j][i] = uintmod.ShoupPrecomp(inv, ps[i])
		}
	}
	return b, nil
}

// InvCross returns ([p_j^{-1}]_{p_i}, its w=64 Shoup constant) from the
// table precomputed at basis construction. It panics if i == j, which is
// never meaningful (a prime has no inverse modulo itself).
func (b *Basis) InvCross(j, i int) (inv, shoup uint64) {
	if i == j {
		panic("rns: InvCross of a prime with itself")
	}
	return b.invCross[j][i], b.invCrossShoup[j][i]
}

// K returns the number of primes in the basis.
func (b *Basis) K() int { return len(b.Primes) }

// Q returns a copy of the basis product q = Π p_i.
func (b *Basis) Q() *big.Int { return new(big.Int).Set(b.q) }

// QAtLevel returns Π_{i<=level} p_i.
func (b *Basis) QAtLevel(level int) *big.Int {
	q := big.NewInt(1)
	for i := 0; i <= level; i++ {
		q.Mul(q, new(big.Int).SetUint64(b.Primes[i]))
	}
	return q
}

// Sub returns the basis consisting of the first k primes.
func (b *Basis) Sub(k int) (*Basis, error) {
	if k < 1 || k > len(b.Primes) {
		return nil, fmt.Errorf("rns: sub-basis size %d out of range", k)
	}
	return NewBasis(b.Primes[:k])
}

// Decompose maps a non-negative big integer to its residues.
func (b *Basis) Decompose(x *big.Int) []uint64 {
	out := make([]uint64, len(b.Primes))
	tmp := new(big.Int)
	for i, p := range b.Primes {
		out[i] = tmp.Mod(x, new(big.Int).SetUint64(p)).Uint64()
	}
	return out
}

// DecomposeSigned maps a possibly negative big integer to residues of its
// value mod q.
func (b *Basis) DecomposeSigned(x *big.Int) []uint64 {
	if x.Sign() >= 0 {
		return b.Decompose(x)
	}
	t := new(big.Int).Mod(x, b.q) // Go's Mod is Euclidean: result in [0, q)
	return b.Decompose(t)
}

// DecomposeInt64 maps a signed word to residues, avoiding big.Int.
func (b *Basis) DecomposeInt64(x int64) []uint64 {
	out := make([]uint64, len(b.Primes))
	for i := range b.Primes {
		out[i] = b.ReduceInt64(x, i)
	}
	return out
}

// ReduceInt64 returns x mod p_i in [0, p_i).
func (b *Basis) ReduceInt64(x int64, i int) uint64 {
	p := b.Primes[i]
	if x >= 0 {
		return b.Mods[i].Reduce(uint64(x))
	}
	r := b.Mods[i].Reduce(uint64(-x))
	return uintmod.NegMod(r, p)
}

// Compose reconstructs the unique x in [0, q) with x ≡ residues[i]
// (mod p_i) using the CRT formula of Section 2:
// x = Σ residues_i · π_i · [π_i^{-1}]_{p_i} (mod q).
func (b *Basis) Compose(residues []uint64) *big.Int {
	if len(residues) != len(b.Primes) {
		panic("rns: residue count mismatch")
	}
	acc := new(big.Int)
	term := new(big.Int)
	for i := range b.Primes {
		c := b.Mods[i].MulMod(residues[i], b.invPunc[i])
		term.SetUint64(c)
		term.Mul(term, b.punctured[i])
		acc.Add(acc, term)
	}
	return acc.Mod(acc, b.q)
}

// ComposeCentered is Compose followed by centering into (-q/2, q/2].
func (b *Basis) ComposeCentered(residues []uint64) *big.Int {
	x := b.Compose(residues)
	half := new(big.Int).Rsh(b.q, 1)
	if x.Cmp(half) > 0 {
		x.Sub(x, b.q)
	}
	return x
}

// CrossReduce returns [p_i]_{p_j}: the prime at index i reduced modulo the
// prime at index j. The key-switching inner loop (Algorithm 7, line 6)
// reduces residues of one prime modulo another; callers precompute with
// this helper.
func (b *Basis) CrossReduce(i, j int) uint64 {
	return b.Mods[j].Reduce(b.Primes[i])
}

// InvOf returns [x^{-1}]_{p_j} for an arbitrary value x (reduced first).
func (b *Basis) InvOf(x uint64, j int) uint64 {
	return b.Mods[j].InvMod(b.Mods[j].Reduce(x))
}

// GadgetVector returns the RNS gadget vector of Section 3.4 for the first
// (level+1) primes: g_i = π_i · [π_i^{-1}]_{p_i} over q_level, as big
// integers. It is used by tests to check the gadget identity
// a = <g, g^{-1}(a)> (mod q_level).
func (b *Basis) GadgetVector(level int) []*big.Int {
	q := b.QAtLevel(level)
	out := make([]*big.Int, level+1)
	for i := 0; i <= level; i++ {
		pi := new(big.Int).Div(q, new(big.Int).SetUint64(b.Primes[i]))
		rem := new(big.Int).Mod(pi, new(big.Int).SetUint64(b.Primes[i])).Uint64()
		inv := b.Mods[i].InvMod(rem)
		g := new(big.Int).Mul(pi, new(big.Int).SetUint64(inv))
		out[i] = g.Mod(g, q)
	}
	return out
}
