package rns

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"heax/internal/primes"
)

func testBasis(t testing.TB, bits, n, k int) *Basis {
	t.Helper()
	ps, err := primes.NTTPrimes(bits, n, k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBasis(ps)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBasisErrors(t *testing.T) {
	if _, err := NewBasis(nil); err == nil {
		t.Error("empty basis should fail")
	}
	if _, err := NewBasis([]uint64{97, 97}); err == nil {
		t.Error("duplicate primes should fail")
	}
	if _, err := NewBasis([]uint64{1 << 63}); err == nil {
		t.Error("oversized prime should fail")
	}
}

func TestComposeDecomposeRoundTrip(t *testing.T) {
	b := testBasis(t, 40, 4096, 4)
	rng := rand.New(rand.NewSource(1))
	q := b.Q()
	for i := 0; i < 200; i++ {
		x := new(big.Int).Rand(rng, q)
		res := b.Decompose(x)
		got := b.Compose(res)
		if got.Cmp(x) != 0 {
			t.Fatalf("roundtrip failed: %v != %v", got, x)
		}
	}
}

func TestComposeCentered(t *testing.T) {
	b := testBasis(t, 30, 64, 3)
	for _, x := range []int64{0, 1, -1, 12345, -12345, 1 << 40, -(1 << 40)} {
		res := b.DecomposeSigned(big.NewInt(x))
		got := b.ComposeCentered(res)
		if got.Int64() != x {
			t.Fatalf("centered compose of %d = %v", x, got)
		}
	}
}

func TestDecomposeInt64MatchesBig(t *testing.T) {
	b := testBasis(t, 36, 4096, 3)
	f := func(x int64) bool {
		a := b.DecomposeInt64(x)
		c := b.DecomposeSigned(big.NewInt(x))
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// CRT ring homomorphism: compose(a)*compose(b) mod q == compose(a .* b).
func TestQuickCRTHomomorphism(t *testing.T) {
	b := testBasis(t, 40, 4096, 3)
	q := b.Q()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := new(big.Int).Rand(rng, q)
		y := new(big.Int).Rand(rng, q)
		rx, ry := b.Decompose(x), b.Decompose(y)
		prod := make([]uint64, b.K())
		for i := range prod {
			prod[i] = b.Mods[i].MulMod(rx[i], ry[i])
		}
		want := new(big.Int).Mul(x, y)
		want.Mod(want, q)
		return b.Compose(prod).Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSubBasisAndLevels(t *testing.T) {
	b := testBasis(t, 40, 4096, 4)
	sub, err := b.Sub(2)
	if err != nil {
		t.Fatal(err)
	}
	if sub.K() != 2 {
		t.Fatalf("sub basis has %d primes", sub.K())
	}
	if sub.Q().Cmp(b.QAtLevel(1)) != 0 {
		t.Fatal("QAtLevel(1) != Sub(2).Q()")
	}
	if _, err := b.Sub(0); err == nil {
		t.Error("Sub(0) should fail")
	}
	if _, err := b.Sub(5); err == nil {
		t.Error("Sub(5) should fail")
	}
}

// Gadget identity (Section 3.4): a = <g, g^{-1}(a)> mod q_level where
// g^{-1}(a) = ([a]_{p_0}, ..., [a]_{p_level}).
func TestGadgetIdentity(t *testing.T) {
	b := testBasis(t, 40, 4096, 4)
	for level := 0; level < 4; level++ {
		g := b.GadgetVector(level)
		q := b.QAtLevel(level)
		rng := rand.New(rand.NewSource(int64(level)))
		for rep := 0; rep < 20; rep++ {
			a := new(big.Int).Rand(rng, q)
			acc := new(big.Int)
			for i := 0; i <= level; i++ {
				digit := new(big.Int).Mod(a, new(big.Int).SetUint64(b.Primes[i]))
				acc.Add(acc, digit.Mul(digit, g[i]))
			}
			acc.Mod(acc, q)
			if acc.Cmp(a) != 0 {
				t.Fatalf("level %d: gadget identity failed", level)
			}
		}
	}
}

func TestCrossReduceAndInv(t *testing.T) {
	b := testBasis(t, 40, 4096, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := b.Primes[i] % b.Primes[j]
			if got := b.CrossReduce(i, j); got != want {
				t.Fatalf("CrossReduce(%d,%d) = %d, want %d", i, j, got, want)
			}
			if i != j {
				inv := b.InvOf(b.Primes[i], j)
				if b.Mods[j].MulMod(inv, b.CrossReduce(i, j)) != 1 {
					t.Fatalf("InvOf(%d,%d) not an inverse", i, j)
				}
			}
		}
	}
}

func BenchmarkCompose8(b *testing.B) {
	ba := testBasis(b, 48, 16384, 8)
	rng := rand.New(rand.NewSource(2))
	x := new(big.Int).Rand(rng, ba.Q())
	res := ba.Decompose(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ba.Compose(res)
	}
}
