//go:build amd64

package uintmod

import "math/bits"

// detectIFMA reports whether the CPU and OS support AVX-512F + AVX-512
// IFMA with ZMM state enabled (implemented in ifma_amd64.s).
func detectIFMA() bool

func vecMulShoupIFMA(out, x, y, yShoup *uint64, n int, p uint64)
func vecMulShoupAddLazyIFMA(out, x, y, yShoup *uint64, n int, p uint64)

// hasIFMA is fixed at startup; the dispatch never changes afterwards, so
// a Context's choice of Shoup scale (2^52 vs 2^64) is stable.
var hasIFMA = detectIFMA()

// HasIFMA reports whether the AVX-512 IFMA row kernels are available.
func HasIFMA() bool { return hasIFMA }

// IFMAUsable reports whether the vector kernels can run for modulus p on
// rows of n coefficients: the lazy range [0, 4p) must fit a 52-bit lane
// (p < 2^50 — every Table 2 prime qualifies) and rows must be whole
// 8-lane vectors.
func IFMAUsable(p uint64, n int) bool {
	return hasIFMA && bits.Len64(p) <= 50 && n >= 8 && n%8 == 0
}

// VecMulShoup sets out[i] = x[i]·y[i] mod p (fully reduced) using the
// IFMA kernel. Requires IFMAUsable(p, len(out)), yShoup[i] =
// ShoupPrecomp52(y[i], p), and x[i] < 2^52 (lazy operands up to 4p are
// fine), y[i] < p.
func VecMulShoup(out, x, y, yShoup []uint64, p uint64) {
	n := len(out)
	_ = x[n-1]
	_ = y[n-1]
	_ = yShoup[n-1]
	vecMulShoupIFMA(&out[0], &x[0], &y[0], &yShoup[0], n, p)
}

// VecMulShoupAddLazy sets out[i] = fold2p(out[i] + x[i]·y[i]) with the
// accumulator kept in [0, 2p). Same requirements as VecMulShoup, plus
// out[i] < 2p on entry.
func VecMulShoupAddLazy(out, x, y, yShoup []uint64, p uint64) {
	n := len(out)
	_ = x[n-1]
	_ = y[n-1]
	_ = yShoup[n-1]
	vecMulShoupAddLazyIFMA(&out[0], &x[0], &y[0], &yShoup[0], n, p)
}
