package uintmod

import (
	"math/bits"
	"math/rand"
	"testing"
)

// ifmaPrime is a 49-bit NTT-friendly-sized prime for kernel tests.
const ifmaPrime = uint64(1<<49) - 69

func TestVecMulShoup(t *testing.T) {
	p := ifmaPrime
	if !IFMAUsable(p, 64) {
		t.Skip("no AVX-512 IFMA")
	}
	m := NewModulus(p)
	rng := rand.New(rand.NewSource(1))
	n := 64
	x := make([]uint64, n)
	y := make([]uint64, n)
	ys := make([]uint64, n)
	out := make([]uint64, n)
	for i := range x {
		x[i] = rng.Uint64() % (4 * p) // lazy operands allowed
		y[i] = rng.Uint64() % p
		ys[i] = ShoupPrecomp52(y[i], p)
	}
	VecMulShoup(out, x, y, ys, p)
	for i := range out {
		want := m.MulMod(m.Reduce(x[i]), y[i])
		if out[i] != want {
			t.Fatalf("lane %d: got %d want %d", i, out[i], want)
		}
	}
}

func TestVecMulShoupAddLazy(t *testing.T) {
	p := ifmaPrime
	if !IFMAUsable(p, 8) {
		t.Skip("no AVX-512 IFMA")
	}
	m := NewModulus(p)
	rng := rand.New(rand.NewSource(2))
	n := 32
	acc := make([]uint64, n)
	ref := make([]uint64, n)
	x := make([]uint64, n)
	y := make([]uint64, n)
	ys := make([]uint64, n)
	// Chain many accumulations; the lazy accumulator must stay in [0, 2p)
	// and agree with the strict sum mod p.
	for round := 0; round < 50; round++ {
		for i := range x {
			x[i] = rng.Uint64() % p
			y[i] = rng.Uint64() % p
			ys[i] = ShoupPrecomp52(y[i], p)
		}
		VecMulShoupAddLazy(acc, x, y, ys, p)
		for i := range ref {
			ref[i] = AddMod(ref[i], m.MulMod(x[i], y[i]), p)
		}
		for i := range acc {
			if acc[i] >= 2*p {
				t.Fatalf("round %d lane %d: accumulator %d escaped [0, 2p)", round, i, acc[i])
			}
			got := acc[i]
			if got >= p {
				got -= p
			}
			if got != ref[i] {
				t.Fatalf("round %d lane %d: got %d want %d", round, i, got, ref[i])
			}
		}
	}
}

func TestShoupPrecomp52(t *testing.T) {
	p := ifmaPrime
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		y := rng.Uint64() % p
		x := rng.Uint64() % (4 * p)
		ys := ShoupPrecomp52(y, p)
		if ys>>52 != 0 && y != 0 {
			// y' = floor(y*2^52/p) < 2^52 since y < p
			t.Fatalf("ShoupPrecomp52(%d) = %d exceeds 52 bits", y, ys)
		}
		// Emulate the kernel arithmetic in scalar code.
		tq := mulHi52(x, ys)
		z := (mulLo52(x, y) - mulLo52(tq, p)) & ((1 << 52) - 1)
		if z >= 2*p {
			t.Fatalf("lazy product %d escaped [0, 2p)", z)
		}
		m := NewModulus(p)
		if m.Reduce(z) != m.MulMod(m.Reduce(x), y) {
			t.Fatalf("w52 Shoup product incongruent for x=%d y=%d", x, y)
		}
	}
}

func mulHi52(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi<<12 | lo>>52
}

func mulLo52(a, b uint64) uint64 { return (a * b) & ((1 << 52) - 1) }
