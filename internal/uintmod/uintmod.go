// Package uintmod implements the word-level modular arithmetic primitives
// that HEAX and Microsoft SEAL build on: Barrett reduction of single- and
// double-word integers (paper Algorithm 1) and the optimized modular
// multiplication with a precomputed operand, often called Shoup
// multiplication (paper Algorithm 2).
//
// Two word sizes are supported, mirroring the paper's discussion in
// Section 4 ("Word Size and Native Operations"):
//
//   - w = 64: the native x86 word used by SEAL on CPUs. Moduli must be
//     below 2^62 for Algorithm 2 to be correct.
//   - w = 54: the HEAX native word, chosen because the target FPGAs have
//     27-bit DSP multipliers (a 54-bit multiplier costs four DSPs, a 64-bit
//     one costs nine). Moduli must be below 2^52.
//
// The w=54 routines operate on uint64 values whose upper 10 bits are zero;
// they emulate exactly the arithmetic a 54-bit datapath performs, so the
// hardware simulator can share them.
package uintmod

import "math/bits"

// MaxModulusBits64 is the largest modulus width usable with the w=64
// routines (Algorithm 2 requires p < 2^(w-2)).
const MaxModulusBits64 = 62

// MaxModulusBits54 is the largest modulus width usable with the w=54
// routines. The paper states "Modulus p has at most 52 bits."
const MaxModulusBits54 = 52

// Modulus bundles a prime modulus with the precomputed constants used by
// Barrett reduction: ratio = floor(2^128 / p) stored as two 64-bit words.
// The zero value is not usable; construct with NewModulus.
type Modulus struct {
	P uint64
	// ratio[0] is the low word and ratio[1] the high word of
	// floor(2^128 / P); ratio[1] is what single-word Barrett uses.
	ratio [2]uint64
}

// NewModulus precomputes the Barrett constants for p. It panics if p < 2,
// since a modulus of 0 or 1 is never meaningful in this codebase and would
// otherwise fail far from the construction site.
func NewModulus(p uint64) Modulus {
	if p < 2 {
		panic("uintmod: modulus must be >= 2")
	}
	// Compute floor(2^128 / p) by long division of (2^128 - 1) by p and
	// correcting: floor((2^128-1)/p) == floor(2^128/p) unless p divides
	// 2^128, which is impossible for p >= 2 unless p is a power of two
	// that divides 2^128. Handle the correction explicitly.
	hi := ^uint64(0)
	lo := ^uint64(0)
	qhi := hi / p
	rem := hi % p
	qlo, rem2 := bits.Div64(rem, lo, p)
	// (2^128 - 1) = p*(qhi*2^64 + qlo) + rem2.
	// 2^128 = p*q + rem2 + 1; if rem2+1 == p then floor(2^128/p) = q+1.
	if rem2+1 == p {
		var carry uint64
		qlo, carry = bits.Add64(qlo, 1, 0)
		qhi += carry
	}
	return Modulus{P: p, ratio: [2]uint64{qlo, qhi}}
}

// BarrettHi returns the high word of floor(2^128/P), the constant used by
// single-word Barrett reduction.
func (m Modulus) BarrettHi() uint64 { return m.ratio[1] }

// Reduce returns x mod P for any single-word x using Barrett reduction
// with the precomputed ratio (Algorithm 1 specialised to one word).
func (m Modulus) Reduce(x uint64) uint64 {
	// q = floor(x * ratio[1] / 2^64) approximates floor(x/p) with error
	// at most 1.
	q, _ := bits.Mul64(x, m.ratio[1])
	r := x - q*m.P
	if r >= m.P {
		r -= m.P
	}
	return r
}

// ReduceWide returns (hi*2^64 + lo) mod P using double-word Barrett
// reduction (Algorithm 1). The input may be any 128-bit value. P must be
// below 2^62 (true for every modulus in this codebase; see
// MaxModulusBits64), otherwise the single-word correction step can wrap.
//
// Correction bound: with ratio = floor(2^128/p) the computed estimate q
// satisfies x/p - 2 < q <= x/p, so r = x - q·p lies in [0, 2p) and one
// conditional subtraction fully reduces it. Concretely, writing
// 2^128 = ratio·p + s (s < p) and d for the discarded low word of
// lo·ratio[0] (d < 2^64), the remainder before correction is
// x - q·p <= x·s/2^128 + d·p/2^128 + p < 2p strictly, for every
// x < 2^128 and every p within the documented < 2^62 range — the loop
// the seed carried here never ran more than once.
func (m Modulus) ReduceWide(hi, lo uint64) uint64 {
	// Following SEAL's barrett_reduce_128: estimate
	// q = floor(x * ratio / 2^128) and correct once.
	// x*ratio = (hi*2^64 + lo) * (r1*2^64 + r0).
	carry, _ := bits.Mul64(lo, m.ratio[0]) // only the carry out of word 0 matters

	t1hi, t1lo := bits.Mul64(lo, m.ratio[1])
	var c uint64
	t1lo, c = bits.Add64(t1lo, carry, 0)
	t1hi += c

	t2hi, t2lo := bits.Mul64(hi, m.ratio[0])
	var c2 uint64
	t2lo, c2 = bits.Add64(t2lo, t1lo, 0)
	t2hi += c2

	q := hi*m.ratio[1] + t1hi + t2hi
	r := lo - q*m.P
	if r >= m.P {
		r -= m.P
	}
	return r
}

// MulMod returns x*y mod P via a 128-bit product and Barrett reduction.
func (m Modulus) MulMod(x, y uint64) uint64 {
	hi, lo := bits.Mul64(x, y)
	return m.ReduceWide(hi, lo)
}

// AddMod returns x+y mod P assuming x, y < P.
func AddMod(x, y, p uint64) uint64 {
	z := x + y
	if z >= p {
		z -= p
	}
	return z
}

// SubMod returns x-y mod P assuming x, y < P.
func SubMod(x, y, p uint64) uint64 {
	z := x - y
	if x < y {
		z += p
	}
	return z
}

// NegMod returns -x mod P assuming x < P.
func NegMod(x, p uint64) uint64 {
	if x == 0 {
		return 0
	}
	return p - x
}

// Half returns x/2 mod P assuming x < P < 2^63 and odd P, using the
// branchless (x + (x&1)·p) >> 1 trick (no overflow since x+p < 2^64).
// The paper's INTT (Algorithm 4) folds this halving into every stage so
// that the final 1/n scaling disappears.
func Half(x, p uint64) uint64 {
	return (x + (x&1)*p) >> 1
}

// PowMod returns base^exp mod p by square-and-multiply.
func PowMod(base, exp, p uint64) uint64 {
	m := NewModulus(p)
	return m.PowMod(base, exp)
}

// PowMod returns base^exp mod P.
func (m Modulus) PowMod(base, exp uint64) uint64 {
	result := uint64(1 % m.P)
	b := m.Reduce(base)
	for exp > 0 {
		if exp&1 == 1 {
			result = m.MulMod(result, b)
		}
		b = m.MulMod(b, b)
		exp >>= 1
	}
	return result
}

// InvMod returns x^-1 mod P for prime P (Fermat), panicking on x == 0.
func (m Modulus) InvMod(x uint64) uint64 {
	if x%m.P == 0 {
		panic("uintmod: inverse of zero")
	}
	return m.PowMod(x, m.P-2)
}

// ShoupPrecomp returns y' = floor(y * 2^64 / p), the precomputed constant
// of Algorithm 2 for w = 64. y must be < p.
func ShoupPrecomp(y, p uint64) uint64 {
	q, _ := bits.Div64(y, 0, p) // floor((y*2^64)/p); y < p so quotient fits
	return q
}

// MulRed is Algorithm 2 with w = 64: x*y mod p where yShoup was produced
// by ShoupPrecomp(y, p). Requires p < 2^62 and y < p (by construction);
// x may be any 64-bit value, including lazy operands in [0, 4p) — see
// MulRedLazy. The result is fully reduced.
func MulRed(x, y, yShoup, p uint64) uint64 {
	t, _ := bits.Mul64(x, yShoup) // upper word of x*y'
	z := x*y - t*p                // computed mod 2^64
	if z >= p {
		z -= p
	}
	return z
}

// MulRedLazy is MulRed without the final conditional subtraction; the
// result lies in [0, 2p). Useful inside butterflies that tolerate lazy
// reduction.
//
// Unlike MulRed, x need not be reduced: for ANY 64-bit x (in particular
// lazy operands in [0, 4p)) the identity x·y - floor(x·y'/2^64)·p ≡ x·y
// (mod p) holds and the result stays below 2p, because the quotient
// estimate errs by less than 1 + x/2^64 < 2. Only y < p is required.
func MulRedLazy(x, y, yShoup, p uint64) uint64 {
	t, _ := bits.Mul64(x, yShoup)
	return x*y - t*p
}

// --- lazy-reduction helpers (Harvey butterflies) ----------------------
//
// The lazy NTT keeps operands in [0, 4p) through the forward transform
// and [0, 2p) through the inverse, deferring full reduction to a single
// final pass. These helpers are the word-level pieces of that invariant;
// all of them require p < 2^62 so that 4p fits in a 64-bit word.

// LazyReduce2P maps x in [0, 4p) to x mod' 2p in [0, 2p) with one
// conditional subtraction. twoP must be 2*p.
func LazyReduce2P(x, twoP uint64) uint64 {
	if x >= twoP {
		x -= twoP
	}
	return x
}

// LazyReduce maps x in [0, 4p) to the fully reduced x mod p with two
// conditional subtractions. twoP must be 2*p.
func LazyReduce(x, p, twoP uint64) uint64 {
	if x >= twoP {
		x -= twoP
	}
	if x >= p {
		x -= p
	}
	return x
}

// AddLazy returns x+y without any reduction: for x, y in [0, 2p) the sum
// lies in [0, 4p), the forward-butterfly upper bound.
func AddLazy(x, y uint64) uint64 { return x + y }

// SubLazy returns x-y+2p, mapping x, y in [0, 2p) to a representative of
// x-y in (0, 4p) without a branch. twoP must be 2*p.
func SubLazy(x, y, twoP uint64) uint64 { return x + twoP - y }

// MulAddLazy returns acc + x·y mod' 2p for an accumulator acc in [0, 2p)
// and yShoup = ShoupPrecomp(y, p): the lazily reduced multiply-accumulate
// at the heart of the key-switching inner loop. The result stays in
// [0, 2p), so chains of any length never overflow. x may itself be lazy
// (any 64-bit value); y must be < p.
func MulAddLazy(acc, x, y, yShoup, p, twoP uint64) uint64 {
	t, _ := bits.Mul64(x, yShoup)
	z := acc + x*y - t*p // acc < 2p plus a [0,2p) product: < 4p
	if z >= twoP {
		z -= twoP
	}
	return z
}

// ShoupPrecomp52 returns y' = floor(y * 2^52 / p), the Shoup constant at
// the scale the AVX-512 IFMA kernels multiply at (52-bit lanes). Requires
// y < p < 2^50. With this scale, t = floor(x·y'/2^52) underestimates
// floor(x·y/p) by less than 1 + x/2^52 < 2 for any x < 2^52, so
// x·y - t·p stays in [0, 2p) exactly as with the 2^64-scaled constant.
func ShoupPrecomp52(y, p uint64) uint64 {
	q, _ := bits.Div64(y>>12, y<<52, p)
	return q
}

// --- w = 54 emulation ------------------------------------------------

// Word54 is the HEAX native word width.
const Word54 = 54

const mask54 = (uint64(1) << Word54) - 1

// ShoupPrecomp54 returns y' = floor(y * 2^54 / p) for the w=54 datapath.
// Requires y < p < 2^52.
func ShoupPrecomp54(y, p uint64) uint64 {
	// y*2^54 fits in 106 bits; use 128-bit division.
	hi := y >> (64 - Word54)
	lo := y << Word54
	q, _ := bits.Div64(hi, lo, p)
	return q
}

// MulRed54 is Algorithm 2 with w = 54, emulating the HEAX dyadic-core
// datapath: all intermediate words are 54 bits wide. Requires p < 2^52,
// x, y < p, and yShoup = ShoupPrecomp54(y, p).
func MulRed54(x, y, yShoup, p uint64) uint64 {
	z := (x * y) & mask54 // lower 54-bit word of the product
	// t = floor(x*y' / 2^54): upper word of the 108-bit product.
	hi, lo := bits.Mul64(x, yShoup)
	t := hi<<(64-Word54) | lo>>Word54
	z = (z - (t*p)&mask54) & mask54 // single 54-bit word subtraction
	if z >= p {
		z -= p
	}
	return z
}

// MulRedLazy54 is MulRed54 without the final conditional subtraction: the
// result lies in [0, 2p) and every intermediate stays a 54-bit word. As
// with MulRedLazy, x need not be reduced — any x < 2^54 works, and since
// p < 2^52 the whole lazy range [0, 4p) fits the 54-bit datapath word, so
// a HEAX-style dyadic core can chain lazy operations exactly as the w=64
// path does.
func MulRedLazy54(x, y, yShoup, p uint64) uint64 {
	z := (x * y) & mask54
	hi, lo := bits.Mul64(x, yShoup)
	t := hi<<(64-Word54) | lo>>Word54
	return (z - (t*p)&mask54) & mask54
}

// Reduce54 performs Barrett reduction (Algorithm 1) on a two-word 54-bit
// input x = xhi*2^54 + xlo with x <= (p-1)^2 and p < 2^52, as the HEAX
// reduction datapath does after a 54x54-bit multiply. The arithmetic is
// carried out with the exact 128-bit Barrett routine; only the input
// framing (two 54-bit words) is hardware-specific.
func Reduce54(xhi, xlo uint64, m Modulus) uint64 {
	lo := xhi<<Word54 | (xlo & mask54)
	hi := xhi >> (64 - Word54)
	return m.ReduceWide(hi, lo)
}

// Mul54 returns the two-word 54-bit representation (hi, lo) of x*y for
// x, y < 2^54, i.e. the raw output of a 54-bit hardware multiplier.
func Mul54(x, y uint64) (hi, lo uint64) {
	h, l := bits.Mul64(x, y)
	return h<<(64-Word54) | l>>Word54, l & mask54
}
