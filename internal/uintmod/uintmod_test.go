package uintmod

import (
	"math/big"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// testModuli covers small, medium, 36-bit (Set-A-like), 52-bit (HEAX max)
// and 61-bit (SEAL-like) primes.
var testModuli = []uint64{
	2, 3, 17, 257, 65537,
	0xffffee001,         // 36-bit SEAL prime 68719230977
	1125899903500289,    // ~2^50
	4503599626321921,    // ~2^52 (p = 1 mod 2^13)
	2305843009213554689, // 61-bit prime
}

func bigMod(x *big.Int, p uint64) uint64 {
	return new(big.Int).Mod(x, new(big.Int).SetUint64(p)).Uint64()
}

func TestNewModulusRatio(t *testing.T) {
	for _, p := range testModuli {
		m := NewModulus(p)
		want := new(big.Int).Lsh(big.NewInt(1), 128)
		want.Div(want, new(big.Int).SetUint64(p))
		gotLo := new(big.Int).SetUint64(m.ratio[0])
		gotHi := new(big.Int).SetUint64(m.ratio[1])
		got := new(big.Int).Lsh(gotHi, 64)
		got.Add(got, gotLo)
		if got.Cmp(want) != 0 {
			t.Errorf("p=%d: ratio = %v, want %v", p, got, want)
		}
	}
}

func TestNewModulusPanicsOnSmall(t *testing.T) {
	for _, p := range []uint64{0, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewModulus(%d) did not panic", p)
				}
			}()
			NewModulus(p)
		}()
	}
}

func TestReduceSingleWord(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range testModuli {
		m := NewModulus(p)
		for i := 0; i < 200; i++ {
			x := rng.Uint64()
			if got, want := m.Reduce(x), x%p; got != want {
				t.Fatalf("p=%d Reduce(%d) = %d, want %d", p, x, got, want)
			}
		}
		// Boundary values.
		for _, x := range []uint64{0, 1, p - 1, p, p + 1, ^uint64(0)} {
			if got, want := m.Reduce(x), x%p; got != want {
				t.Fatalf("p=%d Reduce(%d) = %d, want %d", p, x, got, want)
			}
		}
	}
}

func TestReduceWide(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, p := range testModuli {
		m := NewModulus(p)
		for i := 0; i < 300; i++ {
			hi, lo := rng.Uint64(), rng.Uint64()
			x := new(big.Int).Lsh(new(big.Int).SetUint64(hi), 64)
			x.Add(x, new(big.Int).SetUint64(lo))
			if got, want := m.ReduceWide(hi, lo), bigMod(x, p); got != want {
				t.Fatalf("p=%d ReduceWide(%d,%d) = %d, want %d", p, hi, lo, got, want)
			}
		}
	}
}

func TestMulMod(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, p := range testModuli {
		m := NewModulus(p)
		for i := 0; i < 200; i++ {
			x, y := rng.Uint64()%p, rng.Uint64()%p
			want := new(big.Int).Mul(new(big.Int).SetUint64(x), new(big.Int).SetUint64(y))
			if got := m.MulMod(x, y); got != bigMod(want, p) {
				t.Fatalf("p=%d MulMod(%d,%d) = %d, want %d", p, x, y, got, bigMod(want, p))
			}
		}
	}
}

func TestAddSubNegHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, p := range testModuli {
		for i := 0; i < 200; i++ {
			x, y := rng.Uint64()%p, rng.Uint64()%p
			if got, want := AddMod(x, y, p), (x+y)%p; got != want {
				t.Fatalf("AddMod(%d,%d,%d)=%d want %d", x, y, p, got, want)
			}
			wantSub := (x + p - y) % p
			if got := SubMod(x, y, p); got != wantSub {
				t.Fatalf("SubMod(%d,%d,%d)=%d want %d", x, y, p, got, wantSub)
			}
			if got, want := NegMod(x, p), (p-x)%p; got != want {
				t.Fatalf("NegMod(%d,%d)=%d want %d", x, p, got, want)
			}
			if p%2 == 1 {
				h := Half(x, p)
				if AddMod(h, h, p) != x {
					t.Fatalf("Half(%d,%d)=%d does not double back", x, p, h)
				}
			}
		}
	}
}

func TestPowInv(t *testing.T) {
	for _, p := range testModuli {
		if p < 3 {
			continue
		}
		m := NewModulus(p)
		rng := rand.New(rand.NewSource(int64(p)))
		for i := 0; i < 50; i++ {
			x := 1 + rng.Uint64()%(p-1)
			inv := m.InvMod(x)
			if m.MulMod(x, inv) != 1 {
				t.Fatalf("p=%d InvMod(%d)=%d not an inverse", p, x, inv)
			}
		}
		if got := m.PowMod(2, 10); got != 1024%p {
			t.Fatalf("p=%d PowMod(2,10)=%d", p, got)
		}
		if got := m.PowMod(5, 0); got != 1%p {
			t.Fatalf("p=%d PowMod(5,0)=%d", p, got)
		}
	}
}

func TestInvModZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("InvMod(0) did not panic")
		}
	}()
	NewModulus(17).InvMod(0)
}

func TestShoupMulRed64(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, p := range testModuli {
		if bits.Len64(p) > MaxModulusBits64 {
			continue
		}
		m := NewModulus(p)
		for i := 0; i < 300; i++ {
			x, y := rng.Uint64()%p, rng.Uint64()%p
			ys := ShoupPrecomp(y, p)
			want := m.MulMod(x, y)
			if got := MulRed(x, y, ys, p); got != want {
				t.Fatalf("p=%d MulRed(%d,%d)=%d want %d", p, x, y, got, want)
			}
			if got := MulRedLazy(x, y, ys, p) % p; got != want {
				t.Fatalf("p=%d MulRedLazy(%d,%d) mod p = %d want %d", p, x, y, got, want)
			}
			if lz := MulRedLazy(x, y, ys, p); lz >= 2*p {
				t.Fatalf("p=%d MulRedLazy(%d,%d)=%d not in [0,2p)", p, x, y, lz)
			}
		}
	}
}

func TestShoupMulRed54(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, p := range testModuli {
		if bits.Len64(p) > MaxModulusBits54 {
			continue
		}
		m := NewModulus(p)
		for i := 0; i < 300; i++ {
			x, y := rng.Uint64()%p, rng.Uint64()%p
			ys := ShoupPrecomp54(y, p)
			want := m.MulMod(x, y)
			if got := MulRed54(x, y, ys, p); got != want {
				t.Fatalf("p=%d MulRed54(%d,%d)=%d want %d", p, x, y, got, want)
			}
		}
	}
}

func TestReduce54MatchesWide(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range testModuli {
		if bits.Len64(p) > MaxModulusBits54 {
			continue
		}
		m := NewModulus(p)
		for i := 0; i < 300; i++ {
			x, y := rng.Uint64()%p, rng.Uint64()%p
			hi, lo := Mul54(x, y)
			if hi>>Word54 != 0 || lo>>Word54 != 0 {
				t.Fatalf("Mul54(%d,%d) produced words wider than 54 bits", x, y)
			}
			if got, want := Reduce54(hi, lo, m), m.MulMod(x, y); got != want {
				t.Fatalf("p=%d Reduce54 of %d*%d = %d, want %d", p, x, y, got, want)
			}
		}
	}
}

// Property: the w=54 and w=64 Shoup paths agree on all valid inputs.
func TestQuickMulRedAgreement(t *testing.T) {
	const p = 4503599626321921 // 52-bit prime
	m := NewModulus(p)
	f := func(a, b uint64) bool {
		x, y := a%p, b%p
		r64 := MulRed(x, y, ShoupPrecomp(y, p), p)
		r54 := MulRed54(x, y, ShoupPrecomp54(y, p), p)
		return r64 == r54 && r64 == m.MulMod(x, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: modular ring axioms hold under the Barrett implementation.
func TestQuickRingAxioms(t *testing.T) {
	const p = 1125899903500289
	m := NewModulus(p)
	assoc := func(a, b, c uint64) bool {
		x, y, z := a%p, b%p, c%p
		return m.MulMod(m.MulMod(x, y), z) == m.MulMod(x, m.MulMod(y, z))
	}
	distrib := func(a, b, c uint64) bool {
		x, y, z := a%p, b%p, c%p
		return m.MulMod(x, AddMod(y, z, p)) == AddMod(m.MulMod(x, y), m.MulMod(x, z), p)
	}
	if err := quick.Check(assoc, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	if err := quick.Check(distrib, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMulMod(b *testing.B) {
	m := NewModulus(2305843009213554689)
	x, y := uint64(1234567891011), uint64(987654321)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = m.MulMod(x, y)
	}
	_ = x
}

func BenchmarkMulRed64(b *testing.B) {
	const p = 2305843009213554689
	y := uint64(987654321)
	ys := ShoupPrecomp(y, p)
	x := uint64(1234567891011)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = MulRed(x, y, ys, p)
	}
	_ = x
}

func BenchmarkMulRed54(b *testing.B) {
	const p = 4503599626321921
	y := uint64(987654321)
	ys := ShoupPrecomp54(y, p)
	x := uint64(1234567891011)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = MulRed54(x, y, ys, p)
	}
	_ = x
}
