package uintmod

import (
	"math/rand"
	"testing"
)

func TestLazyReduceHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		p := rng.Uint64()>>3 | 3 // < 2^61, odd
		twoP := 2 * p
		x := rng.Uint64() % (4 * p)
		m := NewModulus(p)
		if got := LazyReduce(x, p, twoP); got != m.Reduce(x) {
			t.Fatalf("LazyReduce(%d) mod %d = %d, want %d", x, p, got, m.Reduce(x))
		}
		if got := LazyReduce2P(x, twoP); got >= twoP || got%p != x%p {
			t.Fatalf("LazyReduce2P(%d) mod %d = %d out of range or incongruent", x, p, got)
		}
		a := rng.Uint64() % twoP
		b := rng.Uint64() % twoP
		if got := AddLazy(a, b); got != a+b {
			t.Fatal("AddLazy is addition")
		}
		if got := SubLazy(a, b, twoP); got >= 4*p || m.Reduce(got) != SubMod(m.Reduce(a), m.Reduce(b), p) {
			t.Fatalf("SubLazy(%d, %d) mod %d incongruent", a, b, p)
		}
	}
}

func FuzzMulRedLazy(f *testing.F) {
	f.Add(uint64(12345), uint64(678), uint64(1)<<40+9)
	f.Add(^uint64(0), uint64(1), uint64(1)<<61+85)
	f.Fuzz(func(t *testing.T, x, yRaw, pRaw uint64) {
		p := (pRaw >> 2) | 3 // odd, in [3, 2^62)
		y := yRaw % p
		ys := ShoupPrecomp(y, p)
		m := NewModulus(p)
		z := MulRedLazy(x, y, ys, p)
		if z >= 2*p {
			t.Fatalf("MulRedLazy(%d, %d) mod %d = %d escaped [0, 2p)", x, y, p, z)
		}
		if m.Reduce(z) != m.MulMod(m.Reduce(x), y) {
			t.Fatalf("MulRedLazy(%d, %d) mod %d incongruent", x, y, p)
		}
		// The strict variant must agree and be fully reduced for the same
		// (unreduced) x.
		zs := MulRed(x, y, ys, p)
		if zs >= p || zs != m.Reduce(z) {
			t.Fatalf("MulRed(%d, %d) mod %d = %d disagrees with lazy %d", x, y, p, zs, z)
		}
	})
}

func FuzzMulAddLazy(f *testing.F) {
	f.Add(uint64(7), uint64(12345), uint64(678), uint64(1)<<40+9)
	f.Fuzz(func(t *testing.T, accRaw, x, yRaw, pRaw uint64) {
		p := (pRaw >> 2) | 3
		twoP := 2 * p
		acc := accRaw % twoP
		y := yRaw % p
		ys := ShoupPrecomp(y, p)
		m := NewModulus(p)
		z := MulAddLazy(acc, x, y, ys, p, twoP)
		if z >= twoP {
			t.Fatalf("MulAddLazy escaped [0, 2p): %d for p=%d", z, p)
		}
		want := AddMod(m.Reduce(acc), m.MulMod(m.Reduce(x), y), p)
		if m.Reduce(z) != want {
			t.Fatalf("MulAddLazy(%d, %d, %d) mod %d incongruent", acc, x, y, p)
		}
	})
}

func FuzzMulRedLazy54(f *testing.F) {
	f.Add(uint64(12345), uint64(678), uint64(1)<<40+9)
	f.Fuzz(func(t *testing.T, xRaw, yRaw, pRaw uint64) {
		p := (pRaw>>13)%(uint64(1)<<52-3) | 3 // odd, in [3, 2^52)
		y := yRaw % p
		x := xRaw % (4 * p) // lazy range; < 2^54 since p < 2^52
		ys := ShoupPrecomp54(y, p)
		m := NewModulus(p)
		z := MulRedLazy54(x, y, ys, p)
		if z >= 2*p {
			t.Fatalf("MulRedLazy54(%d, %d) mod %d = %d escaped [0, 2p)", x, y, p, z)
		}
		if m.Reduce(z) != m.MulMod(m.Reduce(x), y) {
			t.Fatalf("MulRedLazy54(%d, %d) mod %d incongruent", x, y, p)
		}
	})
}

// FuzzReduceWide pits the single-correction Barrett reduction against
// big-integer-free reference arithmetic across the full 128-bit range.
func FuzzReduceWide(f *testing.F) {
	f.Add(^uint64(0), ^uint64(0), ^uint64(0))
	f.Add(uint64(0), uint64(5), uint64(97))
	f.Fuzz(func(t *testing.T, hi, lo, pRaw uint64) {
		p := (pRaw >> 2) | 3
		m := NewModulus(p)
		got := m.ReduceWide(hi, lo)
		if got >= p {
			t.Fatalf("ReduceWide(%d, %d) mod %d = %d not reduced", hi, lo, p, got)
		}
		// Reference: reduce hi*2^64 + lo by splitting hi*2^64 into
		// (hi mod p) * (2^64 mod p).
		r64 := m.Reduce(^uint64(0)) // 2^64 - 1 mod p
		r64 = AddMod(r64, 1%p, p)   // 2^64 mod p
		want := AddMod(m.MulMod(m.Reduce(hi), r64), m.Reduce(lo), p)
		if got != want {
			t.Fatalf("ReduceWide(%d, %d) mod %d = %d, want %d", hi, lo, p, got, want)
		}
	})
}
