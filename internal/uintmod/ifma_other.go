//go:build !amd64

package uintmod

// HasIFMA reports whether the AVX-512 IFMA row kernels are available;
// never on non-amd64 builds.
func HasIFMA() bool { return false }

// IFMAUsable always reports false on non-amd64 builds.
func IFMAUsable(p uint64, n int) bool { return false }

// VecMulShoup must not be called when IFMAUsable is false.
func VecMulShoup(out, x, y, yShoup []uint64, p uint64) {
	panic("uintmod: VecMulShoup without IFMA support")
}

// VecMulShoupAddLazy must not be called when IFMAUsable is false.
func VecMulShoupAddLazy(out, x, y, yShoup []uint64, p uint64) {
	panic("uintmod: VecMulShoupAddLazy without IFMA support")
}
