// AVX-512 IFMA row kernels (w = 52 Shoup arithmetic).
//
// HEAX picks 52-bit moduli because four 27-bit DSP multipliers make one
// 54-bit product (paper Section 4); Intel's IFMA extension makes the same
// argument on CPUs: VPMADD52{L,H}UQ multiply eight 52-bit lanes at once.
// Every Table 2 prime is below 2^50, so the whole lazy range [0, 4p) fits
// a 52-bit lane and these kernels implement exactly the Shoup arithmetic
// of Algorithm 2 with the scale 2^52 instead of 2^64.
//
// All kernels require: p < 2^50, n > 0 and n % 8 == 0, yShoup[i] =
// floor(y[i]*2^52/p) (ShoupPrecomp52). Callers gate on IFMAUsable.

#include "textflag.h"

// func detectIFMA() bool
TEXT ·detectIFMA(SB), NOSPLIT, $0-1
	// CPUID leaf 1: ECX bit 27 OSXSAVE, bit 28 AVX.
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<27 | 1<<28), R8
	CMPL R8, $(1<<27 | 1<<28)
	JNE  no
	// XCR0: SSE+AVX (0x6) and opmask+zmm hi256+hi16 zmm (0xE0).
	XORL CX, CX
	XGETBV
	ANDL $0xE6, AX
	CMPL AX, $0xE6
	JNE  no
	// CPUID leaf 7 subleaf 0: EBX bit 16 AVX512F, bit 21 AVX512IFMA.
	MOVL $7, AX
	XORL CX, CX
	CPUID
	MOVL BX, R8
	ANDL $(1<<16 | 1<<21), R8
	CMPL R8, $(1<<16 | 1<<21)
	JNE  no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func vecMulShoupIFMA(out, x, y, yShoup *uint64, n int, p uint64)
// out[i] = x[i]*y[i] mod p, fully reduced, for x[i] < 2^52 and y[i] < p.
TEXT ·vecMulShoupIFMA(SB), NOSPLIT, $0-48
	MOVQ out+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), R8
	MOVQ yShoup+24(FP), R9
	MOVQ n+32(FP), CX
	MOVQ p+40(FP), AX
	VPBROADCASTQ AX, Z12            // p
	VPADDQ Z12, Z12, Z13            // 2p (unused bound, kept for symmetry)
	MOVQ $0x000FFFFFFFFFFFFF, AX
	VPBROADCASTQ AX, Z14            // 2^52 - 1
	SHRQ $3, CX
loop:
	VMOVDQU64 (SI), Z1              // x
	VMOVDQU64 (R8), Z2              // y
	VMOVDQU64 (R9), Z3              // y'
	VPXORQ Z4, Z4, Z4
	VPMADD52HUQ Z3, Z1, Z4          // t = floor(x*y'/2^52)
	VPXORQ Z5, Z5, Z5
	VPMADD52LUQ Z2, Z1, Z5          // lo52(x*y)
	VPXORQ Z6, Z6, Z6
	VPMADD52LUQ Z12, Z4, Z6         // lo52(t*p)
	VPSUBQ Z6, Z5, Z5
	VPANDQ Z14, Z5, Z5              // z = x*y - t*p in [0, 2p)
	VPSUBQ Z12, Z5, Z6              // z - p (wraps when z < p)
	VPMINUQ Z6, Z5, Z5              // fully reduced
	VMOVDQU64 Z5, (DI)
	ADDQ $64, DI
	ADDQ $64, SI
	ADDQ $64, R8
	ADDQ $64, R9
	DECQ CX
	JNZ  loop
	VZEROUPPER
	RET

// func vecMulShoupAddLazyIFMA(out, x, y, yShoup *uint64, n int, p uint64)
// out[i] = fold2p(out[i] + x[i]*y[i] - t*p): the lazily reduced
// multiply-accumulate; out stays in [0, 2p) across any chain length.
TEXT ·vecMulShoupAddLazyIFMA(SB), NOSPLIT, $0-48
	MOVQ out+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), R8
	MOVQ yShoup+24(FP), R9
	MOVQ n+32(FP), CX
	MOVQ p+40(FP), AX
	VPBROADCASTQ AX, Z12            // p
	VPADDQ Z12, Z12, Z13            // 2p
	MOVQ $0x000FFFFFFFFFFFFF, AX
	VPBROADCASTQ AX, Z14
	SHRQ $3, CX
loop:
	VMOVDQU64 (SI), Z1              // x
	VMOVDQU64 (R8), Z2              // y
	VMOVDQU64 (R9), Z3              // y'
	VPXORQ Z4, Z4, Z4
	VPMADD52HUQ Z3, Z1, Z4          // t
	VPXORQ Z5, Z5, Z5
	VPMADD52LUQ Z2, Z1, Z5          // lo52(x*y)
	VPXORQ Z6, Z6, Z6
	VPMADD52LUQ Z12, Z4, Z6         // lo52(t*p)
	VPSUBQ Z6, Z5, Z5
	VPANDQ Z14, Z5, Z5              // product in [0, 2p)
	VMOVDQU64 (DI), Z0              // acc in [0, 2p)
	VPADDQ Z5, Z0, Z0               // acc + product in [0, 4p)
	VPSUBQ Z13, Z0, Z6
	VPMINUQ Z6, Z0, Z0              // fold to [0, 2p)
	VMOVDQU64 Z0, (DI)
	ADDQ $64, DI
	ADDQ $64, SI
	ADDQ $64, R8
	ADDQ $64, R9
	DECQ CX
	JNZ  loop
	VZEROUPPER
	RET
