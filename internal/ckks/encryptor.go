package ckks

import (
	"fmt"

	"heax/internal/ring"
)

// Ciphertext is a vector of RNS polynomials in NTT form with a scale and a
// level. Fresh ciphertexts have two components; an unrelinearized product
// has three (Section 3.4).
type Ciphertext struct {
	Polys []*ring.Poly
	Scale float64
	Level int
}

// Degree returns the number of components minus one (1 for fresh, 2 for
// an unrelinearized product).
func (ct *Ciphertext) Degree() int { return len(ct.Polys) - 1 }

// CopyOf deep-copies a ciphertext.
func CopyOf(ct *Ciphertext) *Ciphertext {
	out := &Ciphertext{Scale: ct.Scale, Level: ct.Level}
	out.Polys = make([]*ring.Poly, len(ct.Polys))
	for i, p := range ct.Polys {
		out.Polys[i] = ring.CopyOf(p)
	}
	return out
}

// Encryptor encrypts plaintexts under a public key (CKKS.Enc) or directly
// under the secret key (SymEnc).
type Encryptor struct {
	params  *Params
	sampler *ring.Sampler
	pk      *PublicKey
	sk      *SecretKey
}

// NewEncryptor builds a public-key encryptor.
func NewEncryptor(params *Params, pk *PublicKey, seed int64) *Encryptor {
	return &Encryptor{params: params, sampler: ring.NewSampler(params.RingQP, seed), pk: pk}
}

// NewSymmetricEncryptor builds a secret-key encryptor.
func NewSymmetricEncryptor(params *Params, sk *SecretKey, seed int64) *Encryptor {
	return &Encryptor{params: params, sampler: ring.NewSampler(params.RingQP, seed), sk: sk}
}

// Encrypt encrypts a plaintext. Public-key encryption follows the paper:
// (c0', c1') = u·(b, a) + (e0, e1) over QP, then ct = (m, 0) +
// ⌊(c0', c1')/P⌉ over Q. Symmetric encryption is ct = (m - a·s + e, a)
// over Q directly.
func (e *Encryptor) Encrypt(pt *Plaintext) (*Ciphertext, error) {
	if pt.Level() != e.params.MaxLevel() {
		return nil, fmt.Errorf("ckks: encryption requires a top-level plaintext (level %d, got %d)",
			e.params.MaxLevel(), pt.Level())
	}
	if e.pk != nil {
		return e.encryptPk(pt), nil
	}
	if e.sk != nil {
		return e.encryptSym(pt), nil
	}
	return nil, fmt.Errorf("ckks: encryptor has no key")
}

func (e *Encryptor) encryptPk(pt *Plaintext) *Ciphertext {
	ctx := e.params.RingQP
	rows := e.params.QPRows()
	u := e.sampler.Ternary(rows)
	ctx.NTT(u)
	e0 := e.sampler.Error(rows)
	e1 := e.sampler.Error(rows)
	ctx.NTT(e0)
	ctx.NTT(e1)

	c0 := ctx.NewPoly(rows)
	ctx.MulCoeffs(u, e.pk.B, c0)
	ctx.Add(c0, e0, c0)
	c1 := ctx.NewPoly(rows)
	ctx.MulCoeffs(u, e.pk.A, c1)
	ctx.Add(c1, e1, c1)

	// Drop the special prime: ⌊(c0, c1)/P⌉ over Q. At the top level the
	// QP rows are exactly (q_0..q_L, P), so the last row is P.
	c0q := ctx.FloorDropLast(c0, true)
	c1q := ctx.FloorDropLast(c1, true)

	// ct = (m, 0) + (c0q, c1q).
	ctx.Add(c0q, pt.Value, c0q)
	return &Ciphertext{Polys: []*ring.Poly{c0q, c1q}, Scale: pt.Scale, Level: pt.Level()}
}

func (e *Encryptor) encryptSym(pt *Plaintext) *Ciphertext {
	ctx := e.params.RingQP
	rows := pt.Level() + 1
	a := e.sampler.Uniform(rows)
	err := e.sampler.Error(rows)
	ctx.NTT(err)
	c0 := ctx.NewPoly(rows)
	ctx.MulCoeffs(a, e.sk.Value.Resize(rows), c0)
	ctx.Sub(err, c0, c0) // c0 = e - a·s
	ctx.Add(c0, pt.Value, c0)
	return &Ciphertext{Polys: []*ring.Poly{c0, a}, Scale: pt.Scale, Level: pt.Level()}
}

// Decryptor recovers plaintexts: m = c0 + c1·s (+ c2·s²) mod q_level
// (CKKS.Dec).
type Decryptor struct {
	params *Params
	sk     *SecretKey
	s2     *ring.Poly // cached s² over QP
}

// NewDecryptor builds a decryptor for sk.
func NewDecryptor(params *Params, sk *SecretKey) *Decryptor {
	ctx := params.RingQP
	s2 := ctx.NewPoly(params.QPRows())
	ctx.MulCoeffs(sk.Value, sk.Value, s2)
	return &Decryptor{params: params, sk: sk, s2: s2}
}

// Decrypt evaluates <ct, (1, s, s²)> at the ciphertext's level.
func (d *Decryptor) Decrypt(ct *Ciphertext) (*Plaintext, error) {
	if ct.Degree() < 1 || ct.Degree() > 2 {
		return nil, fmt.Errorf("ckks: cannot decrypt degree-%d ciphertext", ct.Degree())
	}
	ctx := d.params.RingQP
	rows := ct.Level + 1
	out := ring.CopyOf(ct.Polys[0])
	ctx.MulCoeffsAdd(ct.Polys[1], d.sk.Value.Resize(rows), out)
	if ct.Degree() == 2 {
		ctx.MulCoeffsAdd(ct.Polys[2], d.s2.Resize(rows), out)
	}
	return &Plaintext{Value: out, Scale: ct.Scale}, nil
}
