package ckks

import (
	"fmt"

	"heax/internal/ring"
)

// In-place operation variants: each *Into method lands its result in a
// caller-owned ciphertext instead of allocating a fresh one, reusing the
// ring context's pooled scratch for all intermediates. A serving loop
// that round-robins over a fixed set of NewCiphertext outputs therefore
// runs at zero steady-state allocations — the software analogue of the
// HEAX memory map (Section 5.1), where results stay in preallocated
// device buffers instead of materializing new ones per operation.
//
// Output ciphertexts may alias an input when the shapes match: every
// operation fully consumes its inputs (into pooled scratch or per-
// element reads) before the output rows are written.

// NewCiphertext allocates a degree-`degree` ciphertext at `level` with
// the given scale. Components are backed at the parameter set's full
// level so the same ciphertext can be reused as an *Into output at any
// level at or below its current one (and back up again).
func NewCiphertext(params *Params, degree, level int, scale float64) (*Ciphertext, error) {
	if degree < 1 || degree > 2 {
		return nil, fmt.Errorf("ckks: ciphertext degree %d out of range [1,2]: %w", degree, ErrDegreeMismatch)
	}
	if level < 0 || level > params.MaxLevel() {
		return nil, fmt.Errorf("ckks: level %d out of range [0,%d]: %w", level, params.MaxLevel(), ErrLevelMismatch)
	}
	ct := &Ciphertext{Scale: scale, Level: level}
	for i := 0; i <= degree; i++ {
		p := params.RingQP.NewPoly(params.K())
		p.Coeffs = p.Coeffs[:level+1]
		ct.Polys = append(ct.Polys, p)
	}
	return ct, nil
}

// prepareInto reshapes out in place to hold a degree-`degree` result at
// `level` with scale `scale`, reusing the components' backing storage.
// Components that cannot hold level+1 rows yield ErrLevelMismatch;
// missing components are allocated (pre-shaped outputs stay
// allocation-free).
func (ev *Evaluator) prepareInto(out *Ciphertext, degree, level int, scale float64) error {
	if out == nil {
		return fmt.Errorf("ckks: nil output ciphertext")
	}
	ctx := ev.ctx
	rows := level + 1
	if len(out.Polys) > degree+1 {
		out.Polys = out.Polys[:degree+1]
	}
	for len(out.Polys) < degree+1 {
		out.Polys = append(out.Polys, ctx.NewPoly(rows))
	}
	for i, p := range out.Polys {
		if p == nil {
			out.Polys[i] = ctx.NewPoly(rows)
			continue
		}
		if cap(p.Coeffs) < rows {
			return fmt.Errorf("ckks: output component %d backs %d rows, result needs %d: %w",
				i, cap(p.Coeffs), rows, ErrLevelMismatch)
		}
		was := len(p.Coeffs)
		p.Coeffs = p.Coeffs[:rows]
		for j := was; j < rows; j++ {
			if len(p.Coeffs[j]) != ctx.N {
				return fmt.Errorf("ckks: output component %d row %d not backed by this ring: %w",
					i, j, ErrLevelMismatch)
			}
		}
	}
	out.Scale, out.Level = scale, level
	return nil
}

// AddInto computes ct0 + ct1 into out (CKKS.Add, in place). Operands may
// have different degrees and levels exactly as Add allows; out may alias
// either operand when shapes already match.
func (ev *Evaluator) AddInto(ct0, ct1, out *Ciphertext) error {
	if !scalesClose(ct0.Scale, ct1.Scale) {
		return fmt.Errorf("ckks: cannot add scales %g and %g: %w", ct0.Scale, ct1.Scale, ErrScaleMismatch)
	}
	a, b := ev.alignLevels(ct0, ct1)
	if len(a.Polys) < len(b.Polys) {
		a, b = b, a
	}
	if err := ev.prepareInto(out, a.Degree(), a.Level, a.Scale); err != nil {
		return err
	}
	ctx := ev.ctx
	rows := a.Level + 1
	for i, p := range a.Polys {
		if p.Rows() != rows {
			p = p.Resize(rows)
		}
		if i < len(b.Polys) {
			q := b.Polys[i]
			if q.Rows() != rows {
				q = q.Resize(rows)
			}
			ctx.Add(p, q, out.Polys[i])
			continue
		}
		if out.Polys[i] != p {
			for r := 0; r < rows; r++ {
				copy(out.Polys[i].Coeffs[r], p.Coeffs[r])
			}
		}
	}
	return nil
}

// SubInto computes ct0 - ct1 into out (degrees and levels reconciled as
// Sub allows); out may alias either operand.
func (ev *Evaluator) SubInto(ct0, ct1, out *Ciphertext) error {
	if !scalesClose(ct0.Scale, ct1.Scale) {
		return fmt.Errorf("ckks: cannot subtract scales %g and %g: %w", ct0.Scale, ct1.Scale, ErrScaleMismatch)
	}
	a, b := ev.alignLevels(ct0, ct1)
	degree := max(a.Degree(), b.Degree())
	if err := ev.prepareInto(out, degree, a.Level, a.Scale); err != nil {
		return err
	}
	ctx := ev.ctx
	rows := a.Level + 1
	for i := range out.Polys {
		var p, q *ring.Poly
		if i < len(a.Polys) {
			p = a.Polys[i].Resize(rows)
		}
		if i < len(b.Polys) {
			q = b.Polys[i].Resize(rows)
		}
		switch {
		case p != nil && q != nil:
			ctx.Sub(p, q, out.Polys[i])
		case p != nil:
			if out.Polys[i] != p {
				for r := 0; r < rows; r++ {
					copy(out.Polys[i].Coeffs[r], p.Coeffs[r])
				}
			}
		default:
			ctx.Neg(q, out.Polys[i])
		}
	}
	return nil
}

// MulPlainInto computes ct ⊙ pt into out; out may alias ct.
func (ev *Evaluator) MulPlainInto(ct *Ciphertext, pt *Plaintext, out *Ciphertext) error {
	level := min(ct.Level, pt.Level())
	in := ev.atLevel(ct, level)
	ptv := pt.Value.Resize(level + 1)
	if err := ev.prepareInto(out, in.Degree(), level, ct.Scale*pt.Scale); err != nil {
		return err
	}
	ctx := ev.ctx
	for i, p := range in.Polys {
		ctx.MulCoeffs(p, ptv, out.Polys[i])
	}
	return nil
}

// AddPlainInto computes ct + pt into out; out may alias ct.
func (ev *Evaluator) AddPlainInto(ct *Ciphertext, pt *Plaintext, out *Ciphertext) error {
	if !scalesClose(ct.Scale, pt.Scale) {
		return fmt.Errorf("ckks: cannot add plaintext scale %g to ciphertext scale %g: %w", pt.Scale, ct.Scale, ErrScaleMismatch)
	}
	level := min(ct.Level, pt.Level())
	in := ev.atLevel(ct, level)
	ptv := pt.Value.Resize(level + 1)
	if err := ev.prepareInto(out, in.Degree(), level, ct.Scale); err != nil {
		return err
	}
	ctx := ev.ctx
	rows := level + 1
	ctx.Add(in.Polys[0], ptv, out.Polys[0])
	for i := 1; i < len(in.Polys); i++ {
		if out.Polys[i] != in.Polys[i] {
			for r := 0; r < rows; r++ {
				copy(out.Polys[i].Coeffs[r], in.Polys[i].Coeffs[r])
			}
		}
	}
	return nil
}

// InnerSumInto replaces every slot with the sum of the n2 slots starting
// at it, into out, with the per-round rotation landing in pooled scratch
// instead of fresh ciphertexts; out may alias ct.
func (ev *Evaluator) InnerSumInto(ct *Ciphertext, n2 int, gks *GaloisKeySet, out *Ciphertext) error {
	if n2 < 1 || n2&(n2-1) != 0 {
		return fmt.Errorf("ckks: InnerSum width %d must be a power of two", n2)
	}
	// Resolve every span key before writing anything: out may alias ct,
	// and a missing key discovered mid-accumulation would leave the
	// caller's ciphertext partially overwritten.
	for span := n2 >> 1; span >= 1; span >>= 1 {
		if _, err := ev.rotationKeyFor(gks, span); err != nil {
			return err
		}
	}
	if err := ev.CopyInto(ct, out); err != nil {
		return err
	}
	if n2 == 1 {
		return nil
	}
	ctx := ev.ctx
	rows := ct.Level + 1
	//heax:owns both polys ride in rot and are released by the two defers below
	rot := &Ciphertext{Polys: []*ring.Poly{ctx.GetPolyNoZero(rows), ctx.GetPolyNoZero(rows)}}
	defer ctx.PutPoly(rot.Polys[0])
	defer ctx.PutPoly(rot.Polys[1])
	for span := n2 >> 1; span >= 1; span >>= 1 {
		if err := ev.RotateLeftInto(out, span, gks, rot); err != nil {
			return err
		}
		if err := ev.AddInto(out, rot, out); err != nil {
			return err
		}
	}
	return nil
}

// CopyInto deep-copies ct into out's backing storage (a no-op when they
// already share components).
func (ev *Evaluator) CopyInto(ct, out *Ciphertext) error {
	if err := ev.prepareInto(out, ct.Degree(), ct.Level, ct.Scale); err != nil {
		return err
	}
	rows := ct.Level + 1
	for i, p := range ct.Polys {
		if out.Polys[i] == p {
			continue
		}
		for r := 0; r < rows; r++ {
			copy(out.Polys[i].Coeffs[r], p.Coeffs[r])
		}
	}
	return nil
}

// MulRelinInto computes the relinearized product of two degree-1
// ciphertexts into out — the fused MULT+ReLin hot path of Table 8 with
// the result landing in caller-owned storage: the degree-2 tensor lives
// in pooled scratch and the key-switch flooring tail (plus the final
// additions) writes straight into out's two components.
func (ev *Evaluator) MulRelinInto(ct0, ct1 *Ciphertext, rlk *RelinearizationKey, out *Ciphertext) error {
	if ct0.Degree() != 1 || ct1.Degree() != 1 {
		return fmt.Errorf("ckks: MulRelin requires degree-1 operands (got %d and %d): %w",
			ct0.Degree(), ct1.Degree(), ErrDegreeMismatch)
	}
	a, b := ev.alignLevels(ct0, ct1)
	if err := ev.prepareInto(out, 1, a.Level, a.Scale*b.Scale); err != nil {
		return err
	}
	ctx := ev.ctx
	rows := a.Level + 1
	c0 := ctx.GetPolyNoZero(rows)
	c1 := ctx.GetPolyNoZero(rows)
	c2 := ctx.GetPolyNoZero(rows)
	defer ctx.PutPoly(c0)
	defer ctx.PutPoly(c1)
	defer ctx.PutPoly(c2)
	ctx.MulCoeffsTensor(a.Polys[0], a.Polys[1], b.Polys[0], b.Polys[1], c0, c1, c2)
	ev.keySwitchAddInto(c2, &rlk.SwitchingKey, c0, c1, out.Polys[0], out.Polys[1])
	return nil
}

// RescaleInto divides ct by its current last prime into out, dropping
// one level (CKKS.Rescale in place). Components are floored in pairs so
// each pair shares one worker fan-out and one batched tail INTT. out may
// be ct itself (or share its components) for a true in-place rescale:
// the flooring reads each row element before writing it.
func (ev *Evaluator) RescaleInto(ct, out *Ciphertext) error {
	if ct.Level == 0 {
		return fmt.Errorf("ckks: cannot rescale below level 0: %w", ErrLevelMismatch)
	}
	// Capture the input component views before prepareInto reshapes out:
	// when out aliases ct, reshaping truncates the shared row slices, so
	// aliased inputs are re-extended over the same backing rows.
	ins := ct.Polys
	inRows := ct.Level + 1
	aliased := out == ct
	if !aliased {
		for _, p := range out.Polys {
			for _, q := range ct.Polys {
				if p != nil && p == q {
					aliased = true
				}
			}
		}
	}
	if aliased {
		ins = make([]*ring.Poly, len(ct.Polys))
		for i, p := range ct.Polys {
			ins[i] = &ring.Poly{Coeffs: p.Coeffs[:inRows]}
		}
	}
	pLast := ev.params.Q[inRows-1]
	if err := ev.prepareInto(out, len(ins)-1, inRows-2, ct.Scale/float64(pLast)); err != nil {
		return err
	}
	ctx := ev.ctx
	idx := ev.seqIdx[inRows]
	for i := 0; i+1 < len(ins); i += 2 {
		ctx.FloorDropRowsPairInto(ins[i], ins[i+1], out.Polys[i], out.Polys[i+1], idx, true, false)
	}
	if len(ins)%2 == 1 {
		last := len(ins) - 1
		ctx.FloorDropRowsInto(ins[last], out.Polys[last], idx, true, false)
	}
	return nil
}

// RotateLeftInto rotates message slots left by step positions into out
// using the matching Galois key. Steps normalize modulo the slot count;
// a step that normalizes to 0 copies ct into out.
func (ev *Evaluator) RotateLeftInto(ct *Ciphertext, step int, gks *GaloisKeySet, out *Ciphertext) error {
	key, err := ev.rotationKeyFor(gks, step)
	if err != nil {
		return err
	}
	if key == nil {
		return ev.CopyInto(ct, out)
	}
	return ev.applyGaloisInto(ct, key, out)
}

// ConjugateSlotsInto applies complex conjugation to every slot, into out.
func (ev *Evaluator) ConjugateSlotsInto(ct *Ciphertext, gks *GaloisKeySet, out *Ciphertext) error {
	if gks == nil || gks.Conjugate == nil {
		return fmt.Errorf("ckks: no conjugation key provided: %w", ErrKeyMissing)
	}
	return ev.applyGaloisInto(ct, gks.Conjugate, out)
}

// applyGaloisInto is applyGalois landing in a caller-owned ciphertext:
// both permuted components are pooled scratch, and the key-switch tail
// (with the c0 addition folded in) writes directly into out.
func (ev *Evaluator) applyGaloisInto(ct *Ciphertext, key *GaloisKey, out *Ciphertext) error {
	if ct.Degree() != 1 {
		return fmt.Errorf("ckks: rotation requires a degree-1 ciphertext (got %d); relinearize first: %w",
			ct.Degree(), ErrDegreeMismatch)
	}
	if err := ev.prepareInto(out, 1, ct.Level, ct.Scale); err != nil {
		return err
	}
	ctx := ev.ctx
	rows := ct.Level + 1
	table := ctx.AutomorphismNTTTable(key.GaloisElt)
	c0g := ctx.GetPolyNoZero(rows)
	c1g := ctx.GetPolyNoZero(rows)
	defer ctx.PutPoly(c0g)
	defer ctx.PutPoly(c1g)
	ctx.AutomorphismNTTPair(ct.Polys[0], ct.Polys[1], table, c0g, c1g)
	ev.keySwitchAddInto(c1g, &key.SwitchingKey, c0g, nil, out.Polys[0], out.Polys[1])
	return nil
}
