package ckks

// This file is the CPU realization of HEAX's pipelined key-switch
// datapath (Section 5, Fig. 6-8). The hardware pipelines three kinds of
// work with no global barrier between decomposition digits:
//
//   INTT0   — per-digit inverse transform of the input polynomial,
//   NTT0+DyadMult — per (digit, targetPrime) base-conversion + key MAC,
//   INTT1/NTT1/MS — the modulus-switching tail.
//
// On CPU the same dependency graph is expressed as tasks on the ring
// context's persistent worker pool (ring/sched.go): all per-digit INTTs
// are submitted up front, each (digit, targetPrime) tile is dispatched
// the moment its digit's INTT completes (the digit-diagonal tiles, which
// reuse the NTT-form input directly — Algorithm 7 line 9, the paper's
// "input-poly dyad needs no NTT" — are dispatched immediately), and
// tiles accumulate into the two lazy accumulators under per-row locks,
// so digits never synchronize globally. The modulus-switching tail
// (FloorDropRowsPair) remains the one true barrier, exactly as the
// hardware's bank-set handoff is (Fig. 8's "Data Dependency 2").
//
// Correctness under reordering: a tile's MAC adds a deterministic
// product term to the accumulator row modulo 2p (uintmod.MulAddLazy is
// an exact mod-2p addition), so accumulation is commutative and
// associative — any tile interleaving yields bit-identical accumulators,
// and therefore bit-identical results to the sequential oracle. The
// equivalence tests in schedule_test.go assert this across all Table 2
// parameter sets.

import (
	"sync"

	"heax/internal/ring"
)

// ScheduleEventKind labels one entry of a key-switch schedule trace.
type ScheduleEventKind uint8

const (
	// ScheduleINTT records completion of a digit's INTT0 stage.
	ScheduleINTT ScheduleEventKind = iota
	// ScheduleTile records the start of a (digit, row) base-convert+MAC
	// tile.
	ScheduleTile
	// ScheduleFloor records the start of the modulus-switching tail.
	ScheduleFloor
)

// ScheduleEvent is one observed scheduler action; Seq is the global
// observation order. The hwsim package validates sequences of these
// against the dependency structure of the hardware pipeline model.
type ScheduleEvent struct {
	Kind  ScheduleEventKind
	Digit int // decomposition digit, -1 for ScheduleFloor
	Row   int // target accumulator row, -1 for ScheduleINTT/ScheduleFloor
	Seq   int
}

// scheduleTrace collects events under a mutex; tracing is off (nil
// pointer, one atomic load) on the hot path.
type scheduleTrace struct {
	mu     sync.Mutex
	events []ScheduleEvent
}

func (tr *scheduleTrace) add(kind ScheduleEventKind, digit, row int) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.events = append(tr.events, ScheduleEvent{kind, digit, row, len(tr.events)})
	tr.mu.Unlock()
}

// StartScheduleTrace begins recording the scheduler's INTT/tile/floor
// ordering for subsequent KeySwitchPoly calls (used by the hwsim
// cross-checks). Tracing adds a mutex per event; leave it off in
// production.
func (ev *Evaluator) StartScheduleTrace() {
	ev.trace.Store(&scheduleTrace{})
}

// StopScheduleTrace stops recording and returns the captured events.
func (ev *Evaluator) StopScheduleTrace() []ScheduleEvent {
	tr := ev.trace.Swap(nil)
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.events
}

// ksTaskKind discriminates the pooled scheduler task structs.
type ksTaskKind uint8

const (
	ksINTT       ksTaskKind = iota // digit INTT, then fan out its tiles
	ksTile                         // base-convert + MAC into accumulators
	ksDecompINTT                   // digit INTT for hoisted decomposition
	ksDecompTile                   // base-convert into the cached digit
)

// ksTask is one node of the tile graph; it lives in ksJob.tasks so a
// whole key-switch submits zero per-task allocations.
type ksTask struct {
	job   *ksJob
	kind  ksTaskKind
	digit int
	row   int // accumulator/digit row index jj; -1 for INTT tasks
}

// ksJob carries the shared state of one pipelined key-switch MAC phase
// (or hoisted decomposition). Jobs are pooled on the evaluator; all
// polynomial scratch comes from the ring context's buffer pool.
type ksJob struct {
	ev  *Evaluator
	ctx *ring.Context

	// Inputs. Exactly one of c (direct path) or hd (hoisted MAC path) or
	// out (decomposition path) is set.
	c     *ring.Poly
	hd    *HoistedDecomposition
	out   *HoistedDecomposition
	table []int // optional NTT-domain automorphism permutation

	digits, shoup [][2]*ring.Poly
	acc0, acc1    *ring.Poly
	intt          *ring.Poly // per-digit INTT outputs, level+1 rows
	level         int

	g     *ring.Group
	locks []sync.Mutex
	tasks []ksTask
	batch [][]uint64 // scratch row list for the batched sequential path
	trace *scheduleTrace
}

// tileIdx flattens the 2-D (digit, row) coordinates into j.tasks: tiles
// first, then the level+1 INTT tasks.
func (j *ksJob) tileIdx(digit, row int) int { return digit*(j.level+2) + row }
func (j *ksJob) inttIdx(digit int) int      { return (j.level+1)*(j.level+2) + digit }

func (t *ksTask) Run() {
	j := t.job
	switch t.kind {
	case ksINTT, ksDecompINTT:
		a := j.intt.Coeffs[t.digit]
		copy(a, j.c.Coeffs[t.digit])
		j.ctx.Tables[t.digit].Inverse(a)
		if t.kind == ksINTT {
			j.trace.add(ScheduleINTT, t.digit, -1)
		}
		// The digit is ready: dispatch its cross-prime tiles. (The MAC
		// path's diagonal tile was dispatched at submit time.)
		for jj := 0; jj <= j.level+1; jj++ {
			if jj != t.digit {
				j.g.Go(&j.tasks[j.tileIdx(t.digit, jj)])
			}
		}
	case ksTile:
		j.runTile(t.digit, t.row)
	case ksDecompTile:
		j.runDecompTile(t.digit, t.row)
	}
}

// runTile executes one (digit, row) base-convert + MAC tile: lines 5-10
// (conversion) and 11-12/16-17 (the fused dual MAC) of Algorithm 7.
func (j *ksJob) runTile(digit, jj int) {
	ctx := j.ctx
	if j.hd == nil {
		// Hoisted MAC grids have no INTT/floor stages, so their tiles
		// are excluded from the trace — a trace must stay validatable
		// by hwsim.ValidateKeySwitchSchedule.
		j.trace.add(ScheduleTile, digit, jj)
	}
	basisIdx := j.ev.rowIdx[j.level][jj]
	var b []uint64
	var bBuf *ring.Poly
	switch {
	case j.hd != nil:
		src := j.hd.digits[digit].Coeffs[jj]
		if j.table != nil {
			bBuf = ctx.GetPolyNoZero(1)
			perm := bBuf.Coeffs[0]
			for t, idx := range j.table {
				perm[t] = src[idx]
			}
			b = perm
		} else {
			b = src
		}
	case basisIdx == digit:
		// Line 9: the digit's own prime reuses the NTT-form input.
		b = j.c.Coeffs[digit]
	default:
		bBuf = ctx.GetPolyNoZero(1)
		bRow := bBuf.Coeffs[0]
		m := ctx.Basis.Mods[basisIdx]
		a := j.intt.Coeffs[digit]
		for t := range bRow {
			bRow[t] = m.Reduce(a[t])
		}
		ctx.Tables[basisIdx].Forward(bRow)
		b = bRow
	}
	d0, d1 := j.digits[digit][0], j.digits[digit][1]
	s0, s1 := j.shoup[digit][0], j.shoup[digit][1]
	j.locks[jj].Lock()
	ctx.MulAddLazyRow2(b,
		d0.Coeffs[basisIdx], s0.Coeffs[basisIdx], j.acc0.Coeffs[jj],
		d1.Coeffs[basisIdx], s1.Coeffs[basisIdx], j.acc1.Coeffs[jj], basisIdx)
	j.locks[jj].Unlock()
	if bBuf != nil {
		// Scratch is released per tile, not at job end, so the pool's
		// live set stays O(workers) rather than O(digits × primes).
		ctx.PutPoly(bBuf)
	}
}

// runDecompTile converts digit `digit` to accumulator row jj and stores
// it in the cached decomposition (lines 3-10 of Algorithm 7, hoisted).
// Rows of the output digit are disjoint, so no locking is needed.
func (j *ksJob) runDecompTile(digit, jj int) {
	ctx := j.ctx
	basisIdx := j.ev.rowIdx[j.level][jj]
	row := j.out.digits[digit].Coeffs[jj]
	if basisIdx == digit {
		copy(row, j.c.Coeffs[digit])
		return
	}
	m := ctx.Basis.Mods[basisIdx]
	a := j.intt.Coeffs[digit]
	for t := range row {
		row[t] = m.Reduce(a[t])
	}
	ctx.Tables[basisIdx].Forward(row)
}

// getJob draws a pooled job and sizes its task/lock slices for level.
func (ev *Evaluator) getJob(level int) *ksJob {
	j, _ := ev.jobs.Get().(*ksJob)
	if j == nil {
		j = &ksJob{}
	}
	j.ev = ev
	j.ctx = ev.ctx
	j.level = level
	nTasks := (level+1)*(level+2) + level + 1
	if cap(j.tasks) < nTasks {
		j.tasks = make([]ksTask, nTasks)
	}
	j.tasks = j.tasks[:nTasks]
	if cap(j.locks) < level+2 {
		j.locks = make([]sync.Mutex, level+2)
	}
	j.locks = j.locks[:level+2]
	return j
}

func (ev *Evaluator) putJob(j *ksJob) {
	j.c, j.hd, j.out, j.table = nil, nil, nil, nil
	j.digits, j.shoup = nil, nil
	j.acc0, j.acc1, j.intt = nil, nil, nil
	j.g, j.trace = nil, nil
	b := j.batch[:cap(j.batch)]
	for i := range b {
		b[i] = nil // drop references into pooled scratch
	}
	j.batch = b[:0]
	ev.jobs.Put(j)
}

// macTile runs the fused dual MAC of digit i into accumulator row jj
// from the already-converted (NTT-form, mod target prime) row b.
func (j *ksJob) macTile(i, jj, basisIdx int, b []uint64) {
	j.trace.add(ScheduleTile, i, jj)
	d0, d1 := j.digits[i][0], j.digits[i][1]
	s0, s1 := j.shoup[i][0], j.shoup[i][1]
	j.ctx.MulAddLazyRow2(b,
		d0.Coeffs[basisIdx], s0.Coeffs[basisIdx], j.acc0.Coeffs[jj],
		d1.Coeffs[basisIdx], s1.Coeffs[basisIdx], j.acc1.Coeffs[jj], basisIdx)
}

// runRowMajorMAC is the single-worker schedule of the MAC phase: with
// every digit's INTT already done, it walks accumulator rows outermost
// and digits in cache-sized chunks, so the base-conversion NTTs of a
// chunk run through ForwardBatch sharing the target prime's twiddle
// stream, each chunk is MAC-consumed while still cache-hot, and the
// lazy accumulator row stays resident across all digits. Tile order
// differs from the digit-major pipeline, but accumulation is commutative
// mod 2p, so the results are bit-identical.
func (j *ksJob) runRowMajorMAC() {
	ctx := j.ctx
	level := j.level
	conv := ctx.GetPolyNoZero(level + 1)
	defer ctx.PutPoly(conv)
	for jj := 0; jj <= level+1; jj++ {
		basisIdx := j.ev.rowIdx[level][jj]
		m := ctx.Basis.Mods[basisIdx]
		tb := ctx.Tables[basisIdx]
		chunk := tb.BatchRows()
		batch := j.batch[:0]
		first := 0 // first digit of the pending chunk (skipping basisIdx)
		flush := func(next int) {
			tb.ForwardBatch(batch...)
			k := 0
			for i := first; i < next; i++ {
				if i == basisIdx {
					continue
				}
				j.macTile(i, jj, basisIdx, batch[k])
				k++
			}
			batch = batch[:0]
			first = next
		}
		for i := 0; i <= level; i++ {
			if i == basisIdx {
				// Line 9: the digit's own prime reuses the NTT-form input.
				j.macTile(i, jj, basisIdx, j.c.Coeffs[i])
				continue
			}
			row := conv.Coeffs[i]
			a := j.intt.Coeffs[i]
			for t := range row {
				row[t] = m.Reduce(a[t])
			}
			batch = append(batch, row)
			if len(batch) == chunk {
				flush(i + 1)
			}
		}
		flush(level + 1)
		j.batch = batch[:0]
	}
}

// runRowMajorDecomp is runRowMajorMAC's counterpart for the hoisted
// decomposition: per target row, batch-convert the digits in cache-sized
// chunks through the shared target-prime twiddles into the cached digit
// polynomials.
func (j *ksJob) runRowMajorDecomp() {
	ctx := j.ctx
	level := j.level
	for jj := 0; jj <= level+1; jj++ {
		basisIdx := j.ev.rowIdx[level][jj]
		m := ctx.Basis.Mods[basisIdx]
		tb := ctx.Tables[basisIdx]
		chunk := tb.BatchRows()
		batch := j.batch[:0]
		for i := 0; i <= level; i++ {
			row := j.out.digits[i].Coeffs[jj]
			if i == basisIdx {
				copy(row, j.c.Coeffs[i])
				continue
			}
			a := j.intt.Coeffs[i]
			for t := range row {
				row[t] = m.Reduce(a[t])
			}
			batch = append(batch, row)
			if len(batch) == chunk {
				tb.ForwardBatch(batch...)
				batch = batch[:0]
			}
		}
		tb.ForwardBatch(batch...)
		j.batch = batch[:0]
	}
}

// initTasks fills the task table for the given kinds.
func (j *ksJob) initTasks(inttKind, tileKind ksTaskKind) {
	for i := 0; i <= j.level; i++ {
		for jj := 0; jj <= j.level+1; jj++ {
			j.tasks[j.tileIdx(i, jj)] = ksTask{job: j, kind: tileKind, digit: i, row: jj}
		}
		j.tasks[j.inttIdx(i)] = ksTask{job: j, kind: inttKind, digit: i, row: -1}
	}
}

// keySwitchMAC runs the multiply-accumulate phase of Algorithm 7 over
// either a direct input polynomial c or a cached hoisted decomposition
// hd, into the lazy accumulators acc0/acc1. With a single worker it runs
// the sequential oracle loop (digit-major, bit-identical by the
// commutativity argument above); otherwise it runs the pipelined tile
// graph.
func (ev *Evaluator) keySwitchMAC(c *ring.Poly, hd *HoistedDecomposition, table []int,
	digits, shoup [][2]*ring.Poly, acc0, acc1 *ring.Poly, level int) {
	ctx := ev.ctx

	j := ev.getJob(level)
	j.c, j.hd, j.table = c, hd, table
	j.digits, j.shoup = digits, shoup
	j.acc0, j.acc1 = acc0, acc1
	j.trace = ev.trace.Load()

	needINTT := hd == nil
	if needINTT {
		//heax:owns the job owns it; PutPoly(j.intt) runs before putJob below
		j.intt = ctx.GetPolyNoZero(level + 1)
	}

	if ctx.Workers() <= 1 {
		if needINTT {
			// Sequential schedule: all INTTs, then row-major batched
			// conversion + MAC (bit-identical to any other tile order).
			for i := 0; i <= level; i++ {
				a := j.intt.Coeffs[i]
				copy(a, c.Coeffs[i])
				ctx.Tables[i].Inverse(a)
				j.trace.add(ScheduleINTT, i, -1)
			}
			j.runRowMajorMAC()
		} else {
			// Hoisted MAC: no transforms left, digit-major tile loop.
			for i := 0; i <= level; i++ {
				for jj := 0; jj <= level+1; jj++ {
					j.runTile(i, jj)
				}
			}
		}
	} else {
		j.initTasks(ksINTT, ksTile)
		g := ctx.NewGroup()
		j.g = g
		for i := 0; i <= level; i++ {
			if needINTT {
				// The diagonal tile reads the NTT-form input directly —
				// dispatch it now; the INTT task fans out the rest.
				g.Go(&j.tasks[j.tileIdx(i, i)])
				g.Go(&j.tasks[j.inttIdx(i)])
			} else {
				for jj := 0; jj <= level+1; jj++ {
					g.Go(&j.tasks[j.tileIdx(i, jj)])
				}
			}
		}
		g.Wait()
		ctx.PutGroup(g)
	}

	if needINTT {
		ctx.PutPoly(j.intt)
	}
	ev.putJob(j)
}

// decompose fills hd with the per-digit conversions of c (lines 3-10 of
// Algorithm 7 for every digit), pipelined over the worker pool.
func (ev *Evaluator) decompose(c *ring.Poly, hd *HoistedDecomposition, level int) {
	ctx := ev.ctx
	j := ev.getJob(level)
	j.c, j.out = c, hd

	//heax:owns the job owns it; PutPoly(j.intt) runs before putJob below
	j.intt = ctx.GetPolyNoZero(level + 1)
	if ctx.Workers() <= 1 {
		for i := 0; i <= level; i++ {
			a := j.intt.Coeffs[i]
			copy(a, c.Coeffs[i])
			ctx.Tables[i].Inverse(a)
		}
		j.runRowMajorDecomp()
	} else {
		j.initTasks(ksDecompINTT, ksDecompTile)
		g := ctx.NewGroup()
		j.g = g
		for i := 0; i <= level; i++ {
			g.Go(&j.tasks[j.tileIdx(i, i)]) // diagonal: plain copy
			g.Go(&j.tasks[j.inttIdx(i)])
		}
		g.Wait()
		ctx.PutGroup(g)
	}
	ctx.PutPoly(j.intt)
	ev.putJob(j)
}
