package ckks

// Scale/level inference helpers for the compile-once circuit planner:
// the planner assigns every symbolic node a (level, scale) pair before
// anything executes, and these are the rules it assigns them by.
//
// The core idea is a canonical per-level scale ladder. Rescaling always
// divides by the level's top prime, so if both operands of every
// multiplication carry the level's canonical scale S_ℓ, the rescaled
// product lands exactly on S_{ℓ-1} = S_ℓ²/q_ℓ — making a node's scale a
// function of its level alone, and making every addition meet operands
// at bit-identical scales without hand bookkeeping.

// ScaleLadder returns the canonical scale for each level: index ℓ holds
// S_ℓ, with S_L = Δ at the top level and S_{ℓ-1} = S_ℓ²/q_ℓ below it —
// exactly the scale a rescaled product of two S_ℓ-scaled operands lands
// on. Computed in float64 with the same operations the evaluator's
// Rescale applies, so planned and observed scales match bit for bit.
func (p *Params) ScaleLadder() []float64 {
	s := make([]float64, p.K())
	s[p.MaxLevel()] = p.DefaultScale()
	for l := p.MaxLevel(); l > 0; l-- {
		s[l-1] = s[l] * s[l] / float64(p.Q[l])
	}
	return s
}

// ScalesClose reports whether two scales are equal up to floating-point
// noise — the same predicate the evaluator's additions enforce
// (mismatched scales silently corrupt CKKS results, so both the planner
// and the runtime refuse them).
func ScalesClose(a, b float64) bool { return scalesClose(a, b) }
