// Package ckks implements the full-RNS CKKS scheme of Section 3, matching
// the Microsoft SEAL 3.3 formulation the paper accelerates: the canonical
// embedding encoder, symmetric and public-key encryption, and the
// server-side evaluation primitives HEAX implements in hardware —
// Add, Mul (Algorithm 5), Rescale (Algorithm 6), KeySwitch (Algorithm 7),
// Relinearize and Rotate.
//
// This package is the reproduction's CPU baseline: Tables 7 and 8 compare
// HEAX against exactly these operations.
package ckks

import (
	"fmt"
	"math"

	"heax/internal/primes"
	"heax/internal/ring"
)

// Params fixes a CKKS instantiation: ring degree, the RNS ciphertext
// modulus chain q = p_0···p_L, the special modulus P used by key
// switching, and the default encoding scale Δ.
type Params struct {
	LogN int
	N    int
	// Q holds the ciphertext primes p_0..p_L; P is the key-switching
	// special prime. All satisfy the Section 4 constraints for their
	// word size.
	Q []uint64
	P uint64
	// LogScale is log2 of the default encoding scale Δ.
	LogScale int

	// RingQP is the ring context over (Q..., P); the special prime is the
	// last basis element. RingQ is the view restricted to Q.
	RingQP *ring.Context
}

// ParamSpec describes a parameter set by bit sizes, as Table 2 does.
type ParamSpec struct {
	Name     string
	LogN     int
	QBits    []int // bit size of each ciphertext prime
	PBits    int   // bit size of the special prime
	LogScale int
}

// Table 2 parameter sets. Total modulus bits (Σ QBits + PBits) match the
// paper's ⌊log qp⌋+1 column: 109, 218, 438. All primes are below 2^52 as
// the 54-bit HEAX datapath requires.
var (
	// SetA: n = 2^12, 109-bit qp, k = 2.
	SetA = ParamSpec{Name: "Set-A", LogN: 12, QBits: []int{36, 36}, PBits: 37, LogScale: 30}
	// SetB: n = 2^13, 218-bit qp, k = 4.
	SetB = ParamSpec{Name: "Set-B", LogN: 13, QBits: []int{43, 43, 43, 43}, PBits: 46, LogScale: 40}
	// SetC: n = 2^14, 438-bit qp, k = 8.
	SetC = ParamSpec{Name: "Set-C", LogN: 14, QBits: []int{49, 49, 49, 49, 49, 49, 49, 49}, PBits: 46, LogScale: 40}
)

// StandardSets lists the Table 2 parameter sets in order.
var StandardSets = []ParamSpec{SetA, SetB, SetC}

// NewParams realizes a ParamSpec: it searches for distinct NTT-friendly
// primes of the requested sizes and builds the ring contexts.
func NewParams(spec ParamSpec) (*Params, error) {
	if spec.LogN < 2 || spec.LogN > 17 {
		return nil, fmt.Errorf("ckks: LogN %d out of range", spec.LogN)
	}
	if len(spec.QBits) == 0 {
		return nil, fmt.Errorf("ckks: need at least one ciphertext prime")
	}
	n := 1 << spec.LogN

	// Count how many primes of each bit size we need, then carve the
	// per-size candidate lists so that all primes are distinct.
	need := map[int]int{}
	for _, b := range spec.QBits {
		need[b]++
	}
	need[spec.PBits]++
	pool := map[int][]uint64{}
	for b, cnt := range need {
		ps, err := primes.NTTPrimes(b, n, cnt)
		if err != nil {
			return nil, fmt.Errorf("ckks: %v", err)
		}
		pool[b] = ps
	}
	take := func(b int) uint64 {
		p := pool[b][0]
		pool[b] = pool[b][1:]
		return p
	}
	q := make([]uint64, len(spec.QBits))
	for i, b := range spec.QBits {
		q[i] = take(b)
	}
	pSpecial := take(spec.PBits)

	all := append(append([]uint64(nil), q...), pSpecial)
	rqp, err := ring.NewContext(n, all)
	if err != nil {
		return nil, err
	}
	return &Params{
		LogN:     spec.LogN,
		N:        n,
		Q:        q,
		P:        pSpecial,
		LogScale: spec.LogScale,
		RingQP:   rqp,
	}, nil
}

// MustParams is NewParams for tests and examples, panicking on error.
func MustParams(spec ParamSpec) *Params {
	p, err := NewParams(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// MaxLevel is L, the highest ciphertext level (k-1 ciphertext primes can
// be dropped by rescaling).
func (p *Params) MaxLevel() int { return len(p.Q) - 1 }

// K is the number of ciphertext primes (the paper's k = L+1).
func (p *Params) K() int { return len(p.Q) }

// Slots is the number of complex message slots, n/2.
func (p *Params) Slots() int { return p.N / 2 }

// NormalizeRotation reduces a slot-rotation step into [0, Slots()).
// Rotating by the slot count is the identity permutation, so step,
// step−Slots() and any other representative of the same residue name
// the same Galois element; every key lookup normalizes through this so
// equivalent steps resolve to one key instead of demanding redundant
// key material.
func (p *Params) NormalizeRotation(step int) int {
	s := p.Slots()
	return ((step % s) + s) % s
}

// DefaultScale returns Δ.
func (p *Params) DefaultScale() float64 { return math.Exp2(float64(p.LogScale)) }

// SpecialRow is the basis row index of the special prime in RingQP.
func (p *Params) SpecialRow() int { return len(p.Q) }

// TotalModulusBits returns ⌊log qp⌋+1 as reported in Table 2.
func (p *Params) TotalModulusBits() int {
	bits := 0
	qp := p.RingQP.Basis.Q()
	bits = qp.BitLen()
	return bits
}

// QPRows is the total number of RNS rows in RingQP (k+1).
func (p *Params) QPRows() int { return len(p.Q) + 1 }
