package ckks

import (
	"math"
	"math/rand"
	"testing"

	"heax/internal/ring"
)

// RotateAny with only power-of-two keys must match direct rotation.
func TestRotateAny(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(60))
	slots := kit.params.Slots()
	v := randomComplex(rng, slots, 1)
	pt, _ := kit.enc.Encode(v, kit.params.MaxLevel(), kit.params.DefaultScale())
	ct, _ := kit.encPk.Encrypt(pt)
	gks := kit.kg.GenRotationKeysPow2(kit.sk)

	for _, step := range []int{0, 5, 13, -3, slots + 2} {
		rot, err := kit.eval.RotateAny(ct, step, gks)
		if err != nil {
			t.Fatal(err)
		}
		dec, _ := kit.dec.Decrypt(rot)
		got := kit.enc.Decode(dec)
		want := make([]complex128, slots)
		norm := ((step % slots) + slots) % slots
		for i := range want {
			want[i] = v[(i+norm)%slots]
		}
		if e := maxErr(got, want); e > 1e-2 {
			t.Fatalf("step %d: error %g", step, e)
		}
	}
}

// Coefficient packing: round-trip and the convolution semantics of
// multiplication.
func TestEncodeCoeffs(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	n := kit.params.N
	rng := rand.New(rand.NewSource(61))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	pt, err := kit.enc.EncodeCoeffs(v, kit.params.MaxLevel(), kit.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	got := kit.enc.DecodeCoeffs(pt)
	for i := range v {
		if d := math.Abs(got[i] - v[i]); d > 1e-7 {
			t.Fatalf("coefficient %d: error %g", i, d)
		}
	}

	// Multiplying two sparse coefficient encodings convolves them:
	// (a·X^2)·(b·X^3) = ab·X^5.
	a := make([]float64, 6)
	a[2] = 0.5
	b := make([]float64, 6)
	b[3] = 0.25
	pa, _ := kit.enc.EncodeCoeffs(a, kit.params.MaxLevel(), kit.params.DefaultScale())
	pb, _ := kit.enc.EncodeCoeffs(b, kit.params.MaxLevel(), kit.params.DefaultScale())
	ca, _ := kit.encPk.Encrypt(pa)
	prod, err := kit.eval.MulPlain(ca, pb)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := kit.dec.Decrypt(prod)
	coeffs := kit.enc.DecodeCoeffs(dec)
	if d := math.Abs(coeffs[5] - 0.125); d > 1e-4 {
		t.Fatalf("convolution coefficient: %g (err %g)", coeffs[5], d)
	}
	for _, idx := range []int{0, 1, 2, 3, 4, 6} {
		if math.Abs(coeffs[idx]) > 1e-4 {
			t.Fatalf("coefficient %d should be ~0, got %g", idx, coeffs[idx])
		}
	}

	// Errors.
	if _, err := kit.enc.EncodeCoeffs(make([]float64, n+1), 0, 1); err == nil {
		t.Fatal("too many coefficients should fail")
	}
	if _, err := kit.enc.EncodeCoeffs([]float64{1}, -1, 1); err == nil {
		t.Fatal("bad level should fail")
	}
	if _, err := kit.enc.EncodeCoeffs([]float64{math.Inf(1)}, 0, 1); err == nil {
		t.Fatal("non-finite value should fail")
	}
}

// Noise must be (a) small for a fresh encryption, (b) larger after a
// multiplication chain, (c) -inf for a plaintext compared to itself.
func TestMeasureNoise(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(62))
	v := randomComplex(rng, kit.params.Slots(), 1)
	pt, _ := kit.enc.Encode(v, kit.params.MaxLevel(), kit.params.DefaultScale())
	ct, _ := kit.encPk.Encrypt(pt)

	fresh, err := MeasureNoise(kit.params, kit.dec, ct, pt)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh noise is around the error distribution's magnitude, far below
	// the scale (2^40).
	if fresh > 30 || fresh < 2 {
		t.Fatalf("fresh noise log2 = %.1f, expected single-digit-to-20s", fresh)
	}

	sq, _ := kit.eval.MulRelin(ct, ct, kit.rlk)
	vv := make([]complex128, len(v))
	for i := range v {
		vv[i] = v[i] * v[i]
	}
	ptSq, _ := kit.enc.Encode(vv, kit.params.MaxLevel(), ct.Scale*ct.Scale)
	after, err := MeasureNoise(kit.params, kit.dec, sq, ptSq)
	if err != nil {
		t.Fatal(err)
	}
	if after <= fresh {
		t.Fatalf("noise should grow after multiplication: %.1f vs %.1f", after, fresh)
	}
}

// The parallel NTT must be bit-identical to the sequential one.
func TestNTTParallelMatches(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	ctx := kit.params.RingQP
	rng := rand.New(rand.NewSource(63))
	p := ctx.NewPoly(kit.params.QPRows())
	for i := range p.Coeffs {
		prime := ctx.Basis.Primes[i]
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = rng.Uint64() % prime
		}
	}
	seq := ring.CopyOf(p)
	par := ring.CopyOf(p)
	ctx.NTT(seq)
	ctx.NTTParallel(par, 4)
	if !seq.Equal(par) {
		t.Fatal("parallel forward differs")
	}
	ctx.INTT(seq)
	ctx.INTTParallel(par, 4)
	if !seq.Equal(par) {
		t.Fatal("parallel inverse differs")
	}
	// workers <= 1 falls back to sequential.
	ctx.NTTParallel(par, 1)
	ctx.NTT(seq)
	if !seq.Equal(par) {
		t.Fatal("single-worker path differs")
	}
}
