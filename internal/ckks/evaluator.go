package ckks

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"heax/internal/ring"
)

// Evaluator implements the server-side homomorphic operations of
// Section 3 — exactly the set HEAX accelerates. All operands stay in RNS
// and NTT form throughout, as in SEAL. An Evaluator is safe for
// concurrent use: its precomputed state is read-only after construction,
// per-call state lives in pooled job structs (schedule.go), and all
// operations share the ring context's persistent worker pool.
type Evaluator struct {
	params *Params
	// ctx is the evaluator's view of the parameter ring. By default it
	// is params.RingQP itself; SetWorkers swaps in a Fork with a local
	// worker cap so one evaluator's bound never leaks into others built
	// on the same Params.
	ctx *ring.Context
	// rowIdx[level] maps key-switch accumulator rows to basis indices:
	// (0..level, specialRow). Precomputed so the hot path allocates
	// nothing for it.
	rowIdx [][]int
	// seqIdx[rows] is the identity basis map (0..rows-1): the rescale
	// flooring path over a basis prefix, precomputed for the same reason.
	seqIdx [][]int

	// jobs pools the key-switch scheduler state (schedule.go).
	jobs sync.Pool
	// trace, when non-nil, records scheduler events for the hwsim
	// pipeline cross-checks.
	trace atomic.Pointer[scheduleTrace]
}

// NewEvaluator builds an evaluator for params.
func NewEvaluator(params *Params) *Evaluator {
	ev := &Evaluator{params: params, ctx: params.RingQP}
	sp := params.SpecialRow()
	ev.rowIdx = make([][]int, params.K())
	for level := 0; level < params.K(); level++ {
		idx := make([]int, level+2)
		for i := 0; i <= level; i++ {
			idx[i] = i
		}
		idx[level+1] = sp
		ev.rowIdx[level] = idx
	}
	ev.seqIdx = make([][]int, params.K()+1)
	for rows := 1; rows <= params.K(); rows++ {
		idx := make([]int, rows)
		for i := range idx {
			idx[i] = i
		}
		ev.seqIdx[rows] = idx
	}
	return ev
}

// SetWorkers caps the goroutines this evaluator's row-wise operations
// fan out to, without touching the shared ring context: the evaluator
// switches to a Fork of params.RingQP carrying the cap locally. Not
// safe to call while operations run concurrently on this evaluator.
func (ev *Evaluator) SetWorkers(n int) {
	ev.ctx = ev.params.RingQP.Fork(n)
}

// Workers returns the evaluator's current worker cap.
func (ev *Evaluator) Workers() int { return ev.ctx.Workers() }

// ShallowCopy returns an evaluator sharing this one's parameters,
// ring-context view (including any SetWorkers cap) and precomputed
// index tables, but owning fresh per-call pooled state.
func (ev *Evaluator) ShallowCopy() *Evaluator {
	return &Evaluator{params: ev.params, ctx: ev.ctx, rowIdx: ev.rowIdx, seqIdx: ev.seqIdx}
}

// scalesClose reports whether two scales are equal up to floating-point
// noise; CKKS addition on mismatched scales silently corrupts results
// (Section 3.3), so we refuse it.
func scalesClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// alignLevels returns copies of the operands truncated to a common level.
func (ev *Evaluator) alignLevels(a, b *Ciphertext) (*Ciphertext, *Ciphertext) {
	if a.Level == b.Level {
		return a, b
	}
	level := min(a.Level, b.Level)
	return ev.atLevel(a, level), ev.atLevel(b, level)
}

func (ev *Evaluator) atLevel(ct *Ciphertext, level int) *Ciphertext {
	if ct.Level == level {
		return ct
	}
	out := &Ciphertext{Scale: ct.Scale, Level: level}
	for _, p := range ct.Polys {
		out.Polys = append(out.Polys, p.Resize(level+1))
	}
	return out
}

// Add returns ct0 + ct1 (CKKS.Add). Operands may have different degrees;
// levels are aligned by dropping rows of the fresher operand.
func (ev *Evaluator) Add(ct0, ct1 *Ciphertext) (*Ciphertext, error) {
	if !scalesClose(ct0.Scale, ct1.Scale) {
		return nil, fmt.Errorf("ckks: cannot add scales %g and %g: %w", ct0.Scale, ct1.Scale, ErrScaleMismatch)
	}
	a, b := ev.alignLevels(ct0, ct1)
	if len(a.Polys) < len(b.Polys) {
		a, b = b, a
	}
	ctx := ev.ctx
	out := &Ciphertext{Scale: a.Scale, Level: a.Level}
	for i, p := range a.Polys {
		c := ring.CopyOf(p)
		if i < len(b.Polys) {
			ctx.Add(c, b.Polys[i], c)
		}
		out.Polys = append(out.Polys, c)
	}
	return out, nil
}

// Sub returns ct0 - ct1.
func (ev *Evaluator) Sub(ct0, ct1 *Ciphertext) (*Ciphertext, error) {
	neg := CopyOf(ct1)
	ctx := ev.ctx
	for _, p := range neg.Polys {
		ctx.Neg(p, p)
	}
	return ev.Add(ct0, neg)
}

// AddPlain returns ct + pt.
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if !scalesClose(ct.Scale, pt.Scale) {
		return nil, fmt.Errorf("ckks: cannot add plaintext scale %g to ciphertext scale %g: %w", pt.Scale, ct.Scale, ErrScaleMismatch)
	}
	level := min(ct.Level, pt.Level())
	out := CopyOf(ev.atLevel(ct, level))
	ev.ctx.Add(out.Polys[0], pt.Value.Resize(level+1), out.Polys[0])
	return out, nil
}

// MulPlain returns ct ⊙ pt (ciphertext-plaintext multiplication, the C-P
// mode of the MULT module). The result scale is the product of scales.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	level := min(ct.Level, pt.Level())
	in := ev.atLevel(ct, level)
	ptv := pt.Value.Resize(level + 1)
	ctx := ev.ctx
	out := &Ciphertext{Scale: ct.Scale * pt.Scale, Level: level}
	for _, p := range in.Polys {
		c := ctx.NewPoly(level + 1)
		ctx.MulCoeffs(p, ptv, c)
		out.Polys = append(out.Polys, c)
	}
	return out, nil
}

// Mul returns the degree-2 product of two degree-1 ciphertexts
// (Algorithm 5): (a0⊙b0, a0⊙b1 + a1⊙b0, a1⊙b1).
func (ev *Evaluator) Mul(ct0, ct1 *Ciphertext) (*Ciphertext, error) {
	if ct0.Degree() != 1 || ct1.Degree() != 1 {
		return nil, fmt.Errorf("ckks: Mul requires degree-1 operands (got %d and %d): %w",
			ct0.Degree(), ct1.Degree(), ErrDegreeMismatch)
	}
	a, b := ev.alignLevels(ct0, ct1)
	ctx := ev.ctx
	rows := a.Level + 1
	c0 := ctx.NewPoly(rows)
	c1 := ctx.NewPoly(rows)
	c2 := ctx.NewPoly(rows)
	ctx.MulCoeffsTensor(a.Polys[0], a.Polys[1], b.Polys[0], b.Polys[1], c0, c1, c2)
	return &Ciphertext{
		Polys: []*ring.Poly{c0, c1, c2},
		Scale: a.Scale * b.Scale,
		Level: a.Level,
	}, nil
}

// KeySwitchPoly runs Algorithm 7 on a single NTT-form polynomial c at
// level c.Level(), returning the pair (c0', c1') such that
// c0' + c1'·s ≈ c·s'. It is exported because the HEAX KeySwitch module
// implements exactly this computation and the hardware-vs-software tests
// compare against it.
//
// This is the hot path of Table 8, run as a software analogue of the
// HEAX pipeline (schedule.go): all per-digit INTTs execute concurrently,
// each (digit, targetPrime) base-convert+MAC tile is dispatched as soon
// as its digit's INTT completes, and tiles accumulate into lazy [0, 2p)
// accumulators under per-row locks — no barrier between digits. The MAC
// itself is a fused dual Shoup multiply against the key's precomputed
// constants, all scratch comes from the ring's buffer pool, and with a
// single worker the whole graph degenerates to the sequential oracle
// loop (bit-identical either way).
func (ev *Evaluator) KeySwitchPoly(c *ring.Poly, swk *SwitchingKey) (*ring.Poly, *ring.Poly) {
	ctx := ev.ctx
	level := c.Level()

	// Accumulators over (q_0..q_level, P); row level+1 is the special
	// prime. Rows hold lazy [0, 2p) values until the closing reduction.
	acc0 := ctx.GetPoly(level + 2)
	acc1 := ctx.GetPoly(level + 2)
	defer ctx.PutPoly(acc0)
	defer ctx.PutPoly(acc1)

	ev.keySwitchMAC(c, nil, nil, swk.Digits, swk.ensureShoup(ctx), acc0, acc1, level)

	// Line 19: modulus switching — divide by the special prime. The pair
	// variant folds the closing reduction of the lazy accumulators into
	// its own row pass. This is the pipeline's one true barrier, as in
	// the hardware (the bank-set handoff of Fig. 8).
	ev.trace.Load().add(ScheduleFloor, -1, -1)
	return ctx.FloorDropRowsPair(acc0, acc1, ev.rowIdx[level], false, true)
}

// Relinearize transforms a degree-2 ciphertext back to degree 1 using the
// relinearization key (CKKS.Relin).
func (ev *Evaluator) Relinearize(ct *Ciphertext, rlk *RelinearizationKey) (*Ciphertext, error) {
	if ct.Degree() != 2 {
		return nil, fmt.Errorf("ckks: Relinearize requires a degree-2 ciphertext (got %d): %w", ct.Degree(), ErrDegreeMismatch)
	}
	out0, out1 := ev.keySwitchAdd(ct.Polys[2], &rlk.SwitchingKey, ct.Polys[0], ct.Polys[1])
	return &Ciphertext{Polys: []*ring.Poly{out0, out1}, Scale: ct.Scale, Level: ct.Level}, nil
}

// keySwitchAdd runs Algorithm 7 on c and returns (add0 + ks0, add1 + ks1)
// with the flooring tail (and the final additions) landing directly in
// the freshly allocated output pair — the shared back end of Relinearize,
// SwitchKeys, rotation, and the fused MulRelin: no intermediate result
// polys, no input copies, no separate addition sweep.
func (ev *Evaluator) keySwitchAdd(c *ring.Poly, swk *SwitchingKey, add0, add1 *ring.Poly) (*ring.Poly, *ring.Poly) {
	out0, out1 := ev.ctx.NewPolyPair(c.Level() + 1)
	ev.keySwitchAddInto(c, swk, add0, add1, out0, out1)
	return out0, out1
}

// keySwitchAddInto is keySwitchAdd landing in caller-provided output
// polynomials (each with c.Level()+1 rows) — the zero-allocation back
// end behind the *Into operation variants.
func (ev *Evaluator) keySwitchAddInto(c *ring.Poly, swk *SwitchingKey, add0, add1, out0, out1 *ring.Poly) {
	ctx := ev.ctx
	level := c.Level()
	acc0 := ctx.GetPoly(level + 2)
	acc1 := ctx.GetPoly(level + 2)
	defer ctx.PutPoly(acc0)
	defer ctx.PutPoly(acc1)
	ev.keySwitchMAC(c, nil, nil, swk.Digits, swk.ensureShoup(ctx), acc0, acc1, level)
	ev.trace.Load().add(ScheduleFloor, -1, -1)
	if add0 != nil && add0.Rows() != level+1 {
		add0 = add0.Resize(level + 1)
	}
	if add1 != nil && add1.Rows() != level+1 {
		add1 = add1.Resize(level + 1)
	}
	ctx.FloorDropRowsPairAddInto(acc0, acc1, out0, out1, add0, add1, ev.rowIdx[level], false, true)
}

// MulRelin is Mul followed by Relinearize — the paper's "MULT+ReLin"
// composite operation of Table 8 — fused end-to-end on pooled scratch:
// the degree-2 product lives in pool buffers, the key-switch tail writes
// straight into the output ciphertext's polynomials, and only those two
// polynomials (plus the ciphertext header) are allocated.
func (ev *Evaluator) MulRelin(ct0, ct1 *Ciphertext, rlk *RelinearizationKey) (*Ciphertext, error) {
	if ct0.Degree() != 1 || ct1.Degree() != 1 {
		return nil, fmt.Errorf("ckks: MulRelin requires degree-1 operands (got %d and %d): %w",
			ct0.Degree(), ct1.Degree(), ErrDegreeMismatch)
	}
	a, b := ev.alignLevels(ct0, ct1)
	ctx := ev.ctx
	rows := a.Level + 1
	// Algorithm 5 on pooled scratch (c2 is consumed by the key switch,
	// c0/c1 are folded into the outputs by keySwitchAdd).
	c0 := ctx.GetPolyNoZero(rows)
	c1 := ctx.GetPolyNoZero(rows)
	c2 := ctx.GetPolyNoZero(rows)
	defer ctx.PutPoly(c0)
	defer ctx.PutPoly(c1)
	defer ctx.PutPoly(c2)
	ctx.MulCoeffsTensor(a.Polys[0], a.Polys[1], b.Polys[0], b.Polys[1], c0, c1, c2)
	out0, out1 := ev.keySwitchAdd(c2, &rlk.SwitchingKey, c0, c1)
	return &Ciphertext{
		Polys: []*ring.Poly{out0, out1},
		Scale: a.Scale * b.Scale,
		Level: a.Level,
	}, nil
}

// SwitchKeys re-encrypts a degree-1 ciphertext under a different secret
// key using a key generated by GenSwitchingKey(oldKey, newKey): the
// result decrypts under the new key.
func (ev *Evaluator) SwitchKeys(ct *Ciphertext, swk *SwitchingKey) (*Ciphertext, error) {
	if ct.Degree() != 1 {
		return nil, fmt.Errorf("ckks: SwitchKeys requires a degree-1 ciphertext (got %d): %w", ct.Degree(), ErrDegreeMismatch)
	}
	c0, c1 := ev.keySwitchAdd(ct.Polys[1], swk, ct.Polys[0], nil)
	return &Ciphertext{Polys: []*ring.Poly{c0, c1}, Scale: ct.Scale, Level: ct.Level}, nil
}

// Rescale divides the ciphertext by its current last prime and drops one
// level (CKKS.Rescale, built on Algorithm 6 with rounding) — a thin
// allocating wrapper over RescaleInto.
func (ev *Evaluator) Rescale(ct *Ciphertext) (*Ciphertext, error) {
	out := &Ciphertext{}
	if err := ev.RescaleInto(ct, out); err != nil {
		return nil, err
	}
	return out, nil
}

// rotationKeyFor normalizes step into [0, Slots()) and fetches the
// matching Galois key. A nil key with nil error means the normalized
// step is 0 — the identity permutation, which needs no key.
func (ev *Evaluator) rotationKeyFor(gks *GaloisKeySet, step int) (*GaloisKey, error) {
	norm := ev.params.NormalizeRotation(step)
	if norm == 0 {
		return nil, nil
	}
	return gks.rotationKey(norm)
}

// RotateLeft rotates message slots left by step positions using the
// matching Galois key: slot i of the result holds slot i+step of the
// input. Steps are normalized modulo the slot count, so step and
// step−Slots() use the same key; a step that normalizes to 0 returns a
// copy of the input.
func (ev *Evaluator) RotateLeft(ct *Ciphertext, step int, gks *GaloisKeySet) (*Ciphertext, error) {
	key, err := ev.rotationKeyFor(gks, step)
	if err != nil {
		return nil, err
	}
	if key == nil {
		return CopyOf(ct), nil
	}
	return ev.applyGalois(ct, key)
}

// RotateRight is RotateLeft with a negated step.
func (ev *Evaluator) RotateRight(ct *Ciphertext, step int, gks *GaloisKeySet) (*Ciphertext, error) {
	return ev.RotateLeft(ct, -step, gks)
}

// ConjugateSlots applies complex conjugation to every slot.
func (ev *Evaluator) ConjugateSlots(ct *Ciphertext, gks *GaloisKeySet) (*Ciphertext, error) {
	if gks == nil || gks.Conjugate == nil {
		return nil, fmt.Errorf("ckks: no conjugation key provided: %w", ErrKeyMissing)
	}
	return ev.applyGalois(ct, gks.Conjugate)
}

// applyGalois implements rotation (Section 3.4): apply the automorphism to
// both components — yielding a ciphertext under s(X^g) — then switch the
// second component back to s.
func (ev *Evaluator) applyGalois(ct *Ciphertext, key *GaloisKey) (*Ciphertext, error) {
	if ct.Degree() != 1 {
		return nil, fmt.Errorf("ckks: rotation requires a degree-1 ciphertext (got %d); relinearize first: %w", ct.Degree(), ErrDegreeMismatch)
	}
	ctx := ev.ctx
	rows := ct.Level + 1
	table := ctx.AutomorphismNTTTable(key.GaloisElt)
	// Both permuted components are scratch: c0g folds into the output via
	// keySwitchAdd, c1g is consumed by the key switch.
	c0g := ctx.GetPolyNoZero(rows)
	c1g := ctx.GetPolyNoZero(rows)
	defer ctx.PutPoly(c0g)
	defer ctx.PutPoly(c1g)
	ctx.AutomorphismNTTPair(ct.Polys[0], ct.Polys[1], table, c0g, c1g)

	out0, out1 := ev.keySwitchAdd(c1g, &key.SwitchingKey, c0g, nil)
	return &Ciphertext{Polys: []*ring.Poly{out0, out1}, Scale: ct.Scale, Level: ct.Level}, nil
}

// DropLevel truncates a ciphertext to the given level without scaling
// (useful to align operands before addition).
func (ev *Evaluator) DropLevel(ct *Ciphertext, level int) (*Ciphertext, error) {
	if level < 0 || level > ct.Level {
		return nil, fmt.Errorf("ckks: cannot drop from level %d to %d: %w", ct.Level, level, ErrLevelMismatch)
	}
	return CopyOf(ev.atLevel(ct, level)), nil
}
