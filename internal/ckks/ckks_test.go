package ckks

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// smallSpec is a fast Set-B-shaped parameter set for unit tests: same
// prime-chain structure, smaller ring. The rescaling primes match the
// scale (2^40) so that the scale stays put across a multiplication chain,
// as in standard CKKS modulus-chain design.
var smallSpec = ParamSpec{Name: "test", LogN: 10, QBits: []int{43, 40, 40, 40}, PBits: 46, LogScale: 40}

// testKit bundles everything a scheme test needs.
type testKit struct {
	params *Params
	enc    *Encoder
	kg     *KeyGenerator
	sk     *SecretKey
	pk     *PublicKey
	rlk    *RelinearizationKey
	encPk  *Encryptor
	encSk  *Encryptor
	dec    *Decryptor
	eval   *Evaluator
}

func newTestKit(t testing.TB, spec ParamSpec) *testKit {
	t.Helper()
	params, err := NewParams(spec)
	if err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGenerator(params, 42)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	return &testKit{
		params: params,
		enc:    NewEncoder(params),
		kg:     kg,
		sk:     sk,
		pk:     pk,
		rlk:    kg.GenRelinearizationKey(sk),
		encPk:  NewEncryptor(params, pk, 43),
		encSk:  NewSymmetricEncryptor(params, sk, 44),
		dec:    NewDecryptor(params, sk),
		eval:   NewEvaluator(params),
	}
}

func randomComplex(rng *rand.Rand, n int, bound float64) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex((rng.Float64()*2-1)*bound, (rng.Float64()*2-1)*bound)
	}
	return v
}

func maxErr(got, want []complex128) float64 {
	m := 0.0
	for i := range want {
		if d := cmplx.Abs(got[i] - want[i]); d > m {
			m = d
		}
	}
	return m
}

func TestParamsPresets(t *testing.T) {
	for _, spec := range StandardSets {
		params, err := NewParams(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		wantN := 1 << spec.LogN
		if params.N != wantN {
			t.Errorf("%s: N = %d want %d", spec.Name, params.N, wantN)
		}
		// Table 2: total modulus bits and prime counts.
		wantBits := spec.PBits
		for _, b := range spec.QBits {
			wantBits += b
		}
		if got := params.TotalModulusBits(); got != wantBits {
			t.Errorf("%s: modulus bits = %d want %d", spec.Name, got, wantBits)
		}
		if params.K() != len(spec.QBits) {
			t.Errorf("%s: k = %d want %d", spec.Name, params.K(), len(spec.QBits))
		}
		// HEAX word-size constraint: all primes < 2^52.
		for _, p := range append(append([]uint64{}, params.Q...), params.P) {
			if p >= 1<<52 {
				t.Errorf("%s: prime %d violates the 52-bit constraint", spec.Name, p)
			}
		}
	}
}

func TestParamsErrors(t *testing.T) {
	if _, err := NewParams(ParamSpec{LogN: 1, QBits: []int{30}, PBits: 30}); err == nil {
		t.Error("tiny LogN should fail")
	}
	if _, err := NewParams(ParamSpec{LogN: 12, QBits: nil, PBits: 30}); err == nil {
		t.Error("empty QBits should fail")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(1))
	values := randomComplex(rng, kit.params.Slots(), 1)
	pt, err := kit.enc.Encode(values, kit.params.MaxLevel(), kit.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	got := kit.enc.Decode(pt)
	if e := maxErr(got, values); e > 1e-7 {
		t.Fatalf("round-trip error %g too large", e)
	}
}

// The canonical embedding must be a ring homomorphism: multiplying
// plaintext polynomials multiplies slots.
func TestEncodeMultiplicative(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(2))
	v1 := randomComplex(rng, kit.params.Slots(), 1)
	v2 := randomComplex(rng, kit.params.Slots(), 1)
	scale := kit.params.DefaultScale()
	pt1, err := kit.enc.Encode(v1, kit.params.MaxLevel(), scale)
	if err != nil {
		t.Fatal(err)
	}
	pt2, err := kit.enc.Encode(v2, kit.params.MaxLevel(), scale)
	if err != nil {
		t.Fatal(err)
	}
	ctx := kit.params.RingQP
	prod := ctx.NewPoly(kit.params.MaxLevel() + 1)
	ctx.MulCoeffs(pt1.Value, pt2.Value, prod)
	got := kit.enc.Decode(&Plaintext{Value: prod, Scale: scale * scale})
	want := make([]complex128, len(v1))
	for i := range want {
		want[i] = v1[i] * v2[i]
	}
	if e := maxErr(got, want); e > 1e-5 {
		t.Fatalf("slot-wise product error %g too large", e)
	}
}

// Applying the Galois automorphism with element 5^r to a plaintext must
// rotate slots left by r.
func TestEncoderRotationSemantics(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(3))
	slots := kit.params.Slots()
	values := randomComplex(rng, slots, 1)
	scale := kit.params.DefaultScale()
	pt, err := kit.enc.Encode(values, kit.params.MaxLevel(), scale)
	if err != nil {
		t.Fatal(err)
	}
	ctx := kit.params.RingQP
	for _, step := range []int{1, 2, 5} {
		g := ctxGalois(kit, step)
		out := ctx.NewPoly(pt.Value.Rows())
		ctx.AutomorphismNTT(pt.Value, ctx.AutomorphismNTTTable(g), out)
		got := kit.enc.Decode(&Plaintext{Value: out, Scale: scale})
		want := make([]complex128, slots)
		for i := range want {
			want[i] = values[(i+step)%slots]
		}
		if e := maxErr(got, want); e > 1e-7 {
			t.Fatalf("step %d: rotation error %g", step, e)
		}
	}
}

func ctxGalois(kit *testKit, step int) uint64 {
	m := uint64(2 * kit.params.N)
	g := uint64(1)
	for i := 0; i < step; i++ {
		g = g * 5 % m
	}
	return g
}

func TestEncryptDecryptPk(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(4))
	values := randomComplex(rng, kit.params.Slots(), 1)
	pt, err := kit.enc.Encode(values, kit.params.MaxLevel(), kit.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := kit.encPk.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := kit.dec.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	got := kit.enc.Decode(dec)
	if e := maxErr(got, values); e > 1e-4 {
		t.Fatalf("public-key enc/dec error %g too large", e)
	}
}

func TestEncryptDecryptSym(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(5))
	values := randomComplex(rng, kit.params.Slots(), 1)
	pt, err := kit.enc.Encode(values, kit.params.MaxLevel(), kit.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := kit.encSk.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := kit.dec.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	got := kit.enc.Decode(dec)
	if e := maxErr(got, values); e > 1e-5 {
		t.Fatalf("symmetric enc/dec error %g too large", e)
	}
}

func TestHomomorphicAddSub(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(6))
	v1 := randomComplex(rng, kit.params.Slots(), 1)
	v2 := randomComplex(rng, kit.params.Slots(), 1)
	scale := kit.params.DefaultScale()
	level := kit.params.MaxLevel()
	pt1, _ := kit.enc.Encode(v1, level, scale)
	pt2, _ := kit.enc.Encode(v2, level, scale)
	ct1, _ := kit.encPk.Encrypt(pt1)
	ct2, _ := kit.encPk.Encrypt(pt2)

	sum, err := kit.eval.Add(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := kit.dec.Decrypt(sum)
	got := kit.enc.Decode(dec)
	want := make([]complex128, len(v1))
	for i := range want {
		want[i] = v1[i] + v2[i]
	}
	if e := maxErr(got, want); e > 1e-4 {
		t.Fatalf("add error %g", e)
	}

	diff, err := kit.eval.Sub(sum, ct2)
	if err != nil {
		t.Fatal(err)
	}
	dec2, _ := kit.dec.Decrypt(diff)
	got2 := kit.enc.Decode(dec2)
	if e := maxErr(got2, v1); e > 1e-4 {
		t.Fatalf("sub error %g", e)
	}
}

func TestAddScaleMismatchFails(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	values := []complex128{1}
	pt1, _ := kit.enc.Encode(values, kit.params.MaxLevel(), kit.params.DefaultScale())
	pt2, _ := kit.enc.Encode(values, kit.params.MaxLevel(), kit.params.DefaultScale()*2)
	ct1, _ := kit.encPk.Encrypt(pt1)
	ct2, _ := kit.encPk.Encrypt(pt2)
	if _, err := kit.eval.Add(ct1, ct2); err == nil {
		t.Fatal("adding mismatched scales should fail")
	}
}

func TestMulRelinRescale(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(7))
	v1 := randomComplex(rng, kit.params.Slots(), 1)
	v2 := randomComplex(rng, kit.params.Slots(), 1)
	scale := kit.params.DefaultScale()
	level := kit.params.MaxLevel()
	pt1, _ := kit.enc.Encode(v1, level, scale)
	pt2, _ := kit.enc.Encode(v2, level, scale)
	ct1, _ := kit.encPk.Encrypt(pt1)
	ct2, _ := kit.encPk.Encrypt(pt2)

	prod, err := kit.eval.Mul(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Degree() != 2 {
		t.Fatalf("product degree = %d, want 2", prod.Degree())
	}
	// Degree-2 decryption must already hold.
	want := make([]complex128, len(v1))
	for i := range want {
		want[i] = v1[i] * v2[i]
	}
	dec3, _ := kit.dec.Decrypt(prod)
	got3 := kit.enc.Decode(dec3)
	if e := maxErr(got3, want); e > 1e-3 {
		t.Fatalf("degree-2 decrypt error %g", e)
	}

	relin, err := kit.eval.Relinearize(prod, kit.rlk)
	if err != nil {
		t.Fatal(err)
	}
	if relin.Degree() != 1 {
		t.Fatalf("relinearized degree = %d", relin.Degree())
	}
	decR, _ := kit.dec.Decrypt(relin)
	gotR := kit.enc.Decode(decR)
	if e := maxErr(gotR, want); e > 1e-3 {
		t.Fatalf("relinearized decrypt error %g", e)
	}

	rescaled, err := kit.eval.Rescale(relin)
	if err != nil {
		t.Fatal(err)
	}
	if rescaled.Level != level-1 {
		t.Fatalf("rescaled level = %d, want %d", rescaled.Level, level-1)
	}
	wantScale := scale * scale / float64(kit.params.Q[level])
	if !scalesClose(rescaled.Scale, wantScale) {
		t.Fatalf("rescaled scale = %g, want %g", rescaled.Scale, wantScale)
	}
	decS, _ := kit.dec.Decrypt(rescaled)
	gotS := kit.enc.Decode(decS)
	if e := maxErr(gotS, want); e > 1e-3 {
		t.Fatalf("rescaled decrypt error %g", e)
	}
}

func TestMulDepthChain(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(8))
	slots := kit.params.Slots()
	values := randomComplex(rng, slots, 1)
	scale := kit.params.DefaultScale()
	level := kit.params.MaxLevel()
	pt, _ := kit.enc.Encode(values, level, scale)
	ct, _ := kit.encPk.Encrypt(pt)

	// Square repeatedly until level 1: v, v^2, v^4, ...
	want := append([]complex128(nil), values...)
	cur := ct
	for cur.Level > 1 {
		sq, err := kit.eval.MulRelin(cur, cur, kit.rlk)
		if err != nil {
			t.Fatal(err)
		}
		cur, err = kit.eval.Rescale(sq)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			want[i] *= want[i]
		}
		dec, _ := kit.dec.Decrypt(cur)
		got := kit.enc.Decode(dec)
		if e := maxErr(got, want); e > 1e-2 {
			t.Fatalf("level %d: depth-chain error %g", cur.Level, e)
		}
	}
}

func TestRotation(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(9))
	slots := kit.params.Slots()
	values := randomComplex(rng, slots, 1)
	scale := kit.params.DefaultScale()
	pt, _ := kit.enc.Encode(values, kit.params.MaxLevel(), scale)
	ct, _ := kit.encPk.Encrypt(pt)

	steps := []int{1, 3, slots / 2}
	gks := kit.kg.GenGaloisKeySet(kit.sk, steps, true)
	for _, step := range steps {
		rot, err := kit.eval.RotateLeft(ct, step, gks)
		if err != nil {
			t.Fatal(err)
		}
		dec, _ := kit.dec.Decrypt(rot)
		got := kit.enc.Decode(dec)
		want := make([]complex128, slots)
		for i := range want {
			want[i] = values[(i+step)%slots]
		}
		if e := maxErr(got, want); e > 1e-3 {
			t.Fatalf("rotate %d: error %g", step, e)
		}
	}

	conj, err := kit.eval.ConjugateSlots(ct, gks)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := kit.dec.Decrypt(conj)
	got := kit.enc.Decode(dec)
	want := make([]complex128, slots)
	for i := range want {
		want[i] = cmplx.Conj(values[i])
	}
	if e := maxErr(got, want); e > 1e-3 {
		t.Fatalf("conjugate error %g", e)
	}
}

func TestRotateRight(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(10))
	slots := kit.params.Slots()
	values := randomComplex(rng, slots, 1)
	pt, _ := kit.enc.Encode(values, kit.params.MaxLevel(), kit.params.DefaultScale())
	ct, _ := kit.encPk.Encrypt(pt)
	gks := kit.kg.GenGaloisKeySet(kit.sk, []int{-2}, false)
	rot, err := kit.eval.RotateRight(ct, 2, gks)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := kit.dec.Decrypt(rot)
	got := kit.enc.Decode(dec)
	want := make([]complex128, slots)
	for i := range want {
		want[i] = values[((i-2)%slots+slots)%slots]
	}
	if e := maxErr(got, want); e > 1e-3 {
		t.Fatalf("rotate right error %g", e)
	}
}

func TestRotationMissingKeyFails(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	pt, _ := kit.enc.Encode([]complex128{1}, kit.params.MaxLevel(), kit.params.DefaultScale())
	ct, _ := kit.encPk.Encrypt(pt)
	gks := kit.kg.GenGaloisKeySet(kit.sk, []int{1}, false)
	if _, err := kit.eval.RotateLeft(ct, 7, gks); err == nil {
		t.Fatal("missing key should fail")
	}
	if _, err := kit.eval.ConjugateSlots(ct, gks); err == nil {
		t.Fatal("missing conjugation key should fail")
	}
	if _, err := kit.eval.RotateLeft(ct, 1, nil); err == nil {
		t.Fatal("nil key set should fail")
	}
}

func TestMulPlainAddPlain(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(11))
	slots := kit.params.Slots()
	v := randomComplex(rng, slots, 1)
	w := randomComplex(rng, slots, 1)
	scale := kit.params.DefaultScale()
	level := kit.params.MaxLevel()
	ptV, _ := kit.enc.Encode(v, level, scale)
	ptW, _ := kit.enc.Encode(w, level, scale)
	ct, _ := kit.encPk.Encrypt(ptV)

	prod, err := kit.eval.MulPlain(ct, ptW)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := kit.dec.Decrypt(prod)
	got := kit.enc.Decode(dec)
	want := make([]complex128, slots)
	for i := range want {
		want[i] = v[i] * w[i]
	}
	if e := maxErr(got, want); e > 1e-3 {
		t.Fatalf("mul-plain error %g", e)
	}

	sum, err := kit.eval.AddPlain(ct, ptW)
	if err != nil {
		t.Fatal(err)
	}
	dec2, _ := kit.dec.Decrypt(sum)
	got2 := kit.enc.Decode(dec2)
	for i := range want {
		want[i] = v[i] + w[i]
	}
	if e := maxErr(got2, want); e > 1e-4 {
		t.Fatalf("add-plain error %g", e)
	}
}

func TestEvaluatorErrors(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	pt, _ := kit.enc.Encode([]complex128{1}, kit.params.MaxLevel(), kit.params.DefaultScale())
	ct, _ := kit.encPk.Encrypt(pt)
	prod, _ := kit.eval.Mul(ct, ct)
	if _, err := kit.eval.Mul(prod, ct); err == nil {
		t.Error("Mul on degree-2 should fail")
	}
	if _, err := kit.eval.Relinearize(ct, kit.rlk); err == nil {
		t.Error("Relinearize on degree-1 should fail")
	}
	gks := kit.kg.GenGaloisKeySet(kit.sk, []int{1}, false)
	if _, err := kit.eval.RotateLeft(prod, 1, gks); err == nil {
		t.Error("rotating degree-2 should fail")
	}
	low, _ := kit.eval.DropLevel(ct, 0)
	if _, err := kit.eval.Rescale(low); err == nil {
		t.Error("rescale at level 0 should fail")
	}
	if _, err := kit.eval.DropLevel(ct, 99); err == nil {
		t.Error("DropLevel above current should fail")
	}
}

func TestEncryptErrors(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	ptLow, _ := kit.enc.Encode([]complex128{1}, 0, kit.params.DefaultScale())
	if _, err := kit.encPk.Encrypt(ptLow); err == nil {
		t.Error("encrypting a low-level plaintext should fail")
	}
	bad := &Encryptor{params: kit.params}
	pt, _ := kit.enc.Encode([]complex128{1}, kit.params.MaxLevel(), kit.params.DefaultScale())
	if _, err := bad.Encrypt(pt); err == nil {
		t.Error("keyless encryptor should fail")
	}
}

func TestEncoderErrors(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	tooMany := make([]complex128, kit.params.Slots()+1)
	if _, err := kit.enc.Encode(tooMany, 0, 1); err == nil {
		t.Error("too many values should fail")
	}
	if _, err := kit.enc.Encode(nil, -1, 1); err == nil {
		t.Error("negative level should fail")
	}
	bad := []complex128{complex(math.Inf(1), 0)}
	if _, err := kit.enc.Encode(bad, 0, 1); err == nil {
		t.Error("non-finite values should fail")
	}
}

// Coefficients beyond 2^62 take the arbitrary-precision encoding path and
// must still round-trip (decode is big-int based already).
func TestEncodeHugeScale(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	values := []complex128{complex(1.25, -0.5), complex(-3, 2)}
	scale := math.Exp2(100) // far beyond the int64 fast path
	pt, err := kit.enc.Encode(values, kit.params.MaxLevel(), scale)
	if err != nil {
		t.Fatal(err)
	}
	got := kit.enc.Decode(pt)
	if e := maxErr(got[:2], values); e > 1e-6 {
		t.Fatalf("huge-scale round-trip error %g", e)
	}
}

// Cross-level addition: after a rescale, operands at different levels can
// still be combined (the evaluator aligns levels).
func TestCrossLevelAdd(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(12))
	slots := kit.params.Slots()
	v := randomComplex(rng, slots, 1)
	level := kit.params.MaxLevel()

	// Build a ciphertext at level-1 whose scale matches a fresh encoding
	// at the same scale.
	scale := float64(kit.params.Q[level]) // Δ = q_L so rescale lands on Δ·Δ/q_L = Δ
	ptV, err := kit.enc.Encode(v, level, scale)
	if err != nil {
		t.Fatal(err)
	}
	ct, _ := kit.encPk.Encrypt(ptV)
	sq, _ := kit.eval.MulRelin(ct, ct, kit.rlk)
	sqLow, _ := kit.eval.Rescale(sq)

	sum, err := kit.eval.Add(sqLow, ct)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := kit.dec.Decrypt(sum)
	got := kit.enc.Decode(dec)
	want := make([]complex128, slots)
	for i := range want {
		want[i] = v[i]*v[i] + v[i]
	}
	if e := maxErr(got, want); e > 1e-2 {
		t.Fatalf("cross-level add error %g", e)
	}
}
