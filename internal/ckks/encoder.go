package ckks

import (
	"fmt"
	"math"
	"math/big"
	"math/bits"
	"math/cmplx"

	"heax/internal/ring"
)

// Plaintext is an encoded message: an RNS polynomial in NTT form together
// with its scale Δ (Section 3.3: every CKKS operand carries a scale).
type Plaintext struct {
	Value *ring.Poly
	Scale float64
}

// Level returns the plaintext's level (rows-1).
func (p *Plaintext) Level() int { return p.Value.Level() }

// Encoder maps vectors of n/2 complex numbers to plaintext polynomials
// through the canonical embedding (the "special FFT" over the orbit of 5
// in Z_2n^*) and back. Encoding and decoding are client-side operations
// (Section 1); they exist here to drive the evaluator and its tests.
type Encoder struct {
	params *Params
	slots  int
	m      int // 2n, the cyclotomic index
	// rotGroup[i] = 5^i mod m enumerates the slot orbit.
	rotGroup []int
	// roots[j] = exp(2πi j / m).
	roots []complex128
}

// NewEncoder builds an encoder for params.
func NewEncoder(params *Params) *Encoder {
	slots := params.Slots()
	m := 2 * params.N
	e := &Encoder{
		params:   params,
		slots:    slots,
		m:        m,
		rotGroup: make([]int, slots),
		roots:    make([]complex128, m+1),
	}
	g := 1
	for i := 0; i < slots; i++ {
		e.rotGroup[i] = g
		g = g * 5 % m
	}
	for j := 0; j <= m; j++ {
		angle := 2 * math.Pi * float64(j) / float64(m)
		e.roots[j] = cmplx.Exp(complex(0, angle))
	}
	return e
}

// bitrevComplex permutes v in place by bit reversal.
func bitrevComplex(v []complex128) {
	n := len(v)
	logn := bits.Len(uint(n)) - 1
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> (64 - logn))
		if i < j {
			v[i], v[j] = v[j], v[i]
		}
	}
}

// specialFFT evaluates the canonical embedding: it maps the coefficient
// representation (packed as slots complex numbers) to slot values.
func (e *Encoder) specialFFT(v []complex128) {
	n := len(v)
	bitrevComplex(v)
	for length := 2; length <= n; length <<= 1 {
		lenh := length >> 1
		lenq := length << 2
		gap := e.m / lenq
		for i := 0; i < n; i += length {
			for j := 0; j < lenh; j++ {
				idx := (e.rotGroup[j] % lenq) * gap
				u := v[i+j]
				w := v[i+j+lenh] * e.roots[idx]
				v[i+j] = u + w
				v[i+j+lenh] = u - w
			}
		}
	}
}

// specialIFFT inverts specialFFT (including the 1/n scaling).
func (e *Encoder) specialIFFT(v []complex128) {
	n := len(v)
	for length := n; length >= 2; length >>= 1 {
		lenh := length >> 1
		lenq := length << 2
		gap := e.m / lenq
		for i := 0; i < n; i += length {
			for j := 0; j < lenh; j++ {
				idx := (lenq - e.rotGroup[j]%lenq) * gap
				u := v[i+j] + v[i+j+lenh]
				w := (v[i+j] - v[i+j+lenh]) * e.roots[idx]
				v[i+j] = u
				v[i+j+lenh] = w
			}
		}
	}
	bitrevComplex(v)
	inv := complex(1/float64(n), 0)
	for i := range v {
		v[i] *= inv
	}
}

// Encode embeds values (at most Slots of them; missing entries are zero)
// into a fresh plaintext at the given level and scale. Encoding fails only
// if a scaled coefficient overflows the 62-bit fast path; with sane scales
// this means the message magnitude was far outside CKKS's useful range.
func (e *Encoder) Encode(values []complex128, level int, scale float64) (*Plaintext, error) {
	if len(values) > e.slots {
		return nil, fmt.Errorf("ckks: %d values exceed %d slots", len(values), e.slots)
	}
	if level < 0 || level > e.params.MaxLevel() {
		return nil, fmt.Errorf("ckks: level %d out of range [0,%d]", level, e.params.MaxLevel())
	}
	v := make([]complex128, e.slots)
	copy(v, values)
	e.specialIFFT(v)

	ctx := e.params.RingQP
	pt := ctx.NewPoly(level + 1)
	setCoeff := func(j int, x float64) error {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("ckks: non-finite coefficient at scale %g", scale)
		}
		if math.Abs(x) < math.Exp2(62) {
			c := int64(math.Round(x))
			for i := 0; i <= level; i++ {
				pt.Coeffs[i][j] = ctx.Basis.ReduceInt64(c, i)
			}
			return nil
		}
		// Arbitrary-precision path for coefficients beyond the word
		// range (large scales); exact as long as the float64 mantissa
		// carried the value, which is the best any double-input encoder
		// can do.
		bi, _ := big.NewFloat(x).Int(nil)
		res := ctx.Basis.DecomposeSigned(bi)
		for i := 0; i <= level; i++ {
			pt.Coeffs[i][j] = res[i]
		}
		return nil
	}
	for j := 0; j < e.slots; j++ {
		if err := setCoeff(j, real(v[j])*scale); err != nil {
			return nil, err
		}
		if err := setCoeff(j+e.slots, imag(v[j])*scale); err != nil {
			return nil, err
		}
	}
	ctx.NTT(pt)
	return &Plaintext{Value: pt, Scale: scale}, nil
}

// EncodeReal is Encode for real-valued messages.
func (e *Encoder) EncodeReal(values []float64, level int, scale float64) (*Plaintext, error) {
	cv := make([]complex128, len(values))
	for i, x := range values {
		cv[i] = complex(x, 0)
	}
	return e.Encode(cv, level, scale)
}

// Decode recovers the complex message vector from a plaintext, using CRT
// composition so that it remains exact at every level.
func (e *Encoder) Decode(pt *Plaintext) []complex128 {
	ctx := e.params.RingQP
	poly := ring.CopyOf(pt.Value)
	ctx.INTT(poly)

	rows := poly.Rows()
	basis := ctx.Basis
	if rows != basis.K() {
		sub, err := basis.Sub(rows)
		if err != nil {
			panic(err)
		}
		basis = sub
	}
	res := make([]uint64, rows)
	coeff := func(j int) float64 {
		for i := 0; i < rows; i++ {
			res[i] = poly.Coeffs[i][j]
		}
		x := basis.ComposeCentered(res)
		f := new(big.Float).SetInt(x)
		f.Quo(f, big.NewFloat(pt.Scale))
		out, _ := f.Float64()
		return out
	}
	v := make([]complex128, e.slots)
	for j := 0; j < e.slots; j++ {
		v[j] = complex(coeff(j), coeff(j+e.slots))
	}
	e.specialFFT(v)
	return v
}

// Slots returns the number of message slots.
func (e *Encoder) Slots() int { return e.slots }
