package ckks

import "errors"

// Sentinel errors for the conditions an evaluator can refuse an
// operation on. Every error an Evaluator returns wraps exactly one of
// these, so callers branch with errors.Is instead of matching message
// strings; the public heax package re-exports them unchanged.
var (
	// ErrScaleMismatch: addition (ciphertext or plaintext) on operands
	// whose scales differ beyond floating-point noise — CKKS addition on
	// mismatched scales silently corrupts results (Section 3.3).
	ErrScaleMismatch = errors.New("scale mismatch")

	// ErrLevelMismatch: a level-shape violation — rescaling at level 0,
	// dropping to an out-of-range level, or an *Into output ciphertext
	// whose components cannot hold the result's level.
	ErrLevelMismatch = errors.New("level mismatch")

	// ErrDegreeMismatch: an operand's ciphertext degree is not what the
	// operation requires (Mul and MulRelin need degree-1 inputs,
	// Relinearize a degree-2 input, rotations degree-1).
	ErrDegreeMismatch = errors.New("ciphertext degree mismatch")

	// ErrKeyMissing: the evaluation key the operation needs (relineari-
	// zation key, the Galois key for a rotation step, the conjugation
	// key) was not provided.
	ErrKeyMissing = errors.New("evaluation key missing")

	// ErrCorrupt: a serialized blob failed structural validation
	// (bad magic/version, out-of-range residues, implausible shapes).
	ErrCorrupt = errors.New("corrupt serialized object")
)
