package ckks

import "fmt"

// Security estimation per the Homomorphic Encryption Security Standard
// (Albrecht et al., 2018) that the paper cites for its parameter choices:
// for each ring degree, the maximum total modulus width (log2 qp, counting
// the special prime) that keeps 128/192/256-bit classical security with a
// ternary secret.
//
// Table 1 of the standard (classical, ternary secret distribution):
var heStdMaxLogQP = map[int]map[int]int{
	// n: {security: max log qp}
	1 << 10: {128: 27, 192: 19, 256: 14},
	1 << 11: {128: 54, 192: 37, 256: 29},
	1 << 12: {128: 109, 192: 75, 256: 58},
	1 << 13: {128: 218, 192: 152, 256: 118},
	1 << 14: {128: 438, 192: 305, 256: 237},
	1 << 15: {128: 881, 192: 611, 256: 476},
}

// SecurityLevel returns the highest standard security level (256, 192 or
// 128 bits) the parameters meet, or an error when they fall below 128-bit
// security or use a ring degree outside the standard's table.
func (p *Params) SecurityLevel() (int, error) {
	row, ok := heStdMaxLogQP[p.N]
	if !ok {
		return 0, fmt.Errorf("ckks: no security table entry for n = %d", p.N)
	}
	logQP := p.TotalModulusBits()
	for _, lvl := range []int{256, 192, 128} {
		if logQP <= row[lvl] {
			return lvl, nil
		}
	}
	return 0, fmt.Errorf("ckks: log qp = %d exceeds the 128-bit bound %d for n = %d",
		logQP, row[128], p.N)
}

// MaxLogQP exposes the standard's bound for parameter planning.
func MaxLogQP(n, security int) (int, error) {
	row, ok := heStdMaxLogQP[n]
	if !ok {
		return 0, fmt.Errorf("ckks: no security table entry for n = %d", n)
	}
	b, ok := row[security]
	if !ok {
		return 0, fmt.Errorf("ckks: no entry for %d-bit security", security)
	}
	return b, nil
}
