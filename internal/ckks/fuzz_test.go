package ckks

import (
	"bytes"
	"testing"
)

// FuzzReadCiphertext hardens the deserializer against malformed input:
// whatever the bytes, it must return an error or a structurally valid
// ciphertext — never panic and never hand back out-of-range residues.
// The seed corpus includes a valid blob and its truncations, so plain
// `go test` already exercises the interesting prefixes.
func FuzzReadCiphertext(f *testing.F) {
	params := MustParams(ParamSpec{Name: "fuzz", LogN: 4, QBits: []int{30, 30}, PBits: 31, LogScale: 20})
	kg := NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	enc := NewEncoder(params)
	encr := NewSymmetricEncryptor(params, sk, 2)
	pt, err := enc.Encode([]complex128{1, 2}, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		f.Fatal(err)
	}
	ct, err := encr.Encrypt(pt)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCiphertext(&buf, ct); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for _, cut := range []int{0, 4, 11, 12, 20, len(valid) / 2, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	mutated := append([]byte(nil), valid...)
	mutated[15] ^= 0x40
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCiphertext(bytes.NewReader(data), params)
		if err != nil {
			return
		}
		if got.Degree() < 1 || got.Degree() > 2 {
			t.Fatalf("accepted ciphertext with degree %d", got.Degree())
		}
		for _, p := range got.Polys {
			if p.Rows() != got.Level+1 {
				t.Fatal("accepted ciphertext with inconsistent rows")
			}
			for i, row := range p.Coeffs {
				prime := params.RingQP.Basis.Primes[i]
				for _, v := range row {
					if v >= prime {
						t.Fatal("accepted out-of-range residue")
					}
				}
			}
		}
	})
}

// FuzzReadParams: same contract for the parameter deserializer.
func FuzzReadParams(f *testing.F) {
	params := MustParams(ParamSpec{Name: "fuzz", LogN: 4, QBits: []int{30}, PBits: 31, LogScale: 20})
	var buf bytes.Buffer
	if err := WriteParams(&buf, params); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:8])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadParams(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got.N < 4 || got.K() < 1 {
			t.Fatal("accepted degenerate parameters")
		}
	})
}

// FuzzReadEvaluationKeys: the framed key-set codec must never panic or
// over-allocate, whatever the bytes — an error or a structurally valid
// key set are the only outcomes.
func FuzzReadEvaluationKeys(f *testing.F) {
	params := MustParams(ParamSpec{Name: "fuzz", LogN: 4, QBits: []int{30, 30}, PBits: 31, LogScale: 20})
	kg := NewKeyGenerator(params, 3)
	sk := kg.GenSecretKey()
	var buf bytes.Buffer
	if err := WriteEvaluationKeys(&buf, kg.GenRelinearizationKey(sk), kg.GenGaloisKeySet(sk, []int{1, 2}, true)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for _, cut := range []int{0, 8, 12, 16, len(valid) / 3, len(valid) / 2, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	mutated := append([]byte(nil), valid...)
	mutated[13] ^= 0xff
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		rlk, gks, err := ReadEvaluationKeys(bytes.NewReader(data), params)
		if err != nil {
			return
		}
		if rlk != nil && len(rlk.Digits) != params.K() {
			t.Fatal("accepted relinearization key with wrong digit count")
		}
		if gks != nil {
			for step, gk := range gks.Rotations {
				if step <= 0 || step >= params.Slots() {
					t.Fatalf("accepted out-of-range rotation step %d", step)
				}
				if gk.GaloisElt&1 == 0 || gk.GaloisElt >= uint64(2*params.N) {
					t.Fatal("accepted invalid Galois element")
				}
			}
		}
	})
}

// FuzzReadCiphertextBatch: same contract for the batch codec, with the
// additional guarantee that accepted entries carry in-range residues.
func FuzzReadCiphertextBatch(f *testing.F) {
	params := MustParams(ParamSpec{Name: "fuzz", LogN: 4, QBits: []int{30, 30}, PBits: 31, LogScale: 20})
	kg := NewKeyGenerator(params, 4)
	sk := kg.GenSecretKey()
	enc := NewEncoder(params)
	encr := NewSymmetricEncryptor(params, sk, 5)
	pt, err := enc.Encode([]complex128{3, 1}, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		f.Fatal(err)
	}
	ct, err := encr.Encrypt(pt)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCiphertextBatch(&buf, map[string]*Ciphertext{"x": ct, "y": ct}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for _, cut := range []int{0, 4, 12, 16, 17, 21, len(valid) / 2, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	mutated := append([]byte(nil), valid...)
	mutated[12] ^= 0x04 // entry count
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		batch, err := ReadCiphertextBatch(bytes.NewReader(data), params)
		if err != nil {
			return
		}
		for name, got := range batch {
			if name == "" {
				t.Fatal("accepted empty entry name")
			}
			if got.Degree() < 1 || got.Degree() > 2 {
				t.Fatalf("accepted entry with degree %d", got.Degree())
			}
			for _, p := range got.Polys {
				for i, row := range p.Coeffs {
					prime := params.RingQP.Basis.Primes[i]
					for _, v := range row {
						if v >= prime {
							t.Fatal("accepted out-of-range residue")
						}
					}
				}
			}
		}
	})
}
