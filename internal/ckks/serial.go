package ckks

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"heax/internal/ring"
)

// Binary serialization for parameters, ciphertexts and keys: the wire
// format a client and an HEAX-accelerated server exchange over PCIe/
// network (Section 5.2 moves exactly these objects). Format: magic,
// version, then little-endian fixed-width fields; polynomials are raw
// rows of 64-bit words.

const (
	serialMagic   uint32 = 0x48454158 // "HEAX"
	serialVersion uint32 = 1
)

type objectKind uint32

const (
	kindParams objectKind = iota + 1
	kindCiphertext
	kindPlaintext
	kindSecretKey
	kindPublicKey
	kindSwitchingKey
	kindGaloisKey
	kindEvalKeys
	kindCiphertextBatch
)

// Readers bound every length prefix before allocating: a corrupted or
// hostile prefix must yield ErrCorrupt, not an over-allocation (let
// alone a panic). These caps are far above anything the parameter sets
// produce while keeping the worst-case allocation a prefix can trigger
// small.
const (
	maxBatchEntries = 1 << 12
	maxEntryNameLen = 1 << 8
	maxGaloisKeys   = 1 << 14
)

// corrupted normalizes low-level read failures into the ErrCorrupt
// sentinel: a stream that ends (io.EOF / io.ErrUnexpectedEOF) in the
// middle of an object is a truncated blob, and any other transport
// error equally leaves the object unreconstructable. The underlying
// error stays in the chain for errors.Is.
func corrupted(what string, err error) error {
	if err == nil || errors.Is(err, ErrCorrupt) {
		return err
	}
	return fmt.Errorf("ckks: %s: %w: %w", what, err, ErrCorrupt)
}

func readValue(r io.Reader, what string, v any) error {
	return corrupted(what, binary.Read(r, binary.LittleEndian, v))
}

func writeHeader(w io.Writer, kind objectKind) error {
	for _, v := range []uint32{serialMagic, serialVersion, uint32(kind)} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readHeader(r io.Reader, want objectKind) error {
	var magic, version, kind uint32
	for _, p := range []*uint32{&magic, &version, &kind} {
		if err := readValue(r, "object header", p); err != nil {
			return err
		}
	}
	if magic != serialMagic {
		return fmt.Errorf("ckks: bad magic %#x: %w", magic, ErrCorrupt)
	}
	if version != serialVersion {
		return fmt.Errorf("ckks: unsupported version %d: %w", version, ErrCorrupt)
	}
	if kind != uint32(want) {
		return fmt.Errorf("ckks: expected object kind %d, found %d: %w", want, kind, ErrCorrupt)
	}
	return nil
}

func writePoly(w io.Writer, p *ring.Poly) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(p.Rows())); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(p.Coeffs[0]))); err != nil {
		return err
	}
	for _, row := range p.Coeffs {
		if err := binary.Write(w, binary.LittleEndian, row); err != nil {
			return err
		}
	}
	return nil
}

func readPoly(r io.Reader, ctx *ring.Context) (*ring.Poly, error) {
	var rows, n uint32
	if err := readValue(r, "polynomial shape", &rows); err != nil {
		return nil, err
	}
	if err := readValue(r, "polynomial shape", &n); err != nil {
		return nil, err
	}
	// Shape checks precede any allocation, so an oversized prefix can
	// never make the reader reserve memory the basis does not justify.
	if int(n) != ctx.N {
		return nil, fmt.Errorf("ckks: polynomial degree %d does not match context %d: %w", n, ctx.N, ErrCorrupt)
	}
	if rows == 0 || int(rows) > ctx.K() {
		return nil, fmt.Errorf("ckks: polynomial rows %d out of range: %w", rows, ErrCorrupt)
	}
	p := ctx.NewPoly(int(rows))
	for _, row := range p.Coeffs {
		if err := readValue(r, "polynomial row", row); err != nil {
			return nil, err
		}
	}
	// Validate residues against the basis so corrupted blobs fail fast.
	for i, row := range p.Coeffs {
		prime := ctx.Basis.Primes[i]
		for _, v := range row {
			if v >= prime {
				return nil, fmt.Errorf("ckks: residue %d out of range for prime %d: %w", v, prime, ErrCorrupt)
			}
		}
	}
	return p, nil
}

// WriteParams serializes the realized parameters (actual primes, so the
// receiver reconstructs bit-identical contexts).
func WriteParams(w io.Writer, p *Params) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindParams); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(p.LogN)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(p.LogScale)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.Q))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, p.Q); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, p.P); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadParams reconstructs parameters written by WriteParams.
func ReadParams(r io.Reader) (*Params, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, kindParams); err != nil {
		return nil, err
	}
	var logN, logScale, k uint32
	if err := readValue(br, "params", &logN); err != nil {
		return nil, err
	}
	if err := readValue(br, "params", &logScale); err != nil {
		return nil, err
	}
	if err := readValue(br, "params", &k); err != nil {
		return nil, err
	}
	if k == 0 || k > 64 {
		return nil, fmt.Errorf("ckks: implausible prime count %d: %w", k, ErrCorrupt)
	}
	q := make([]uint64, k)
	if err := readValue(br, "params primes", q); err != nil {
		return nil, err
	}
	var special uint64
	if err := readValue(br, "params special prime", &special); err != nil {
		return nil, err
	}
	return ParamsFromRaw(int(logN), q, special, int(logScale))
}

// ParamsFromRaw builds parameters from explicit primes (as a receiving
// party does); it validates the NTT-friendliness constraints.
func ParamsFromRaw(logN int, q []uint64, special uint64, logScale int) (*Params, error) {
	if logN < 2 || logN > 17 {
		return nil, fmt.Errorf("ckks: LogN %d out of range", logN)
	}
	n := 1 << logN
	all := append(append([]uint64(nil), q...), special)
	rqp, err := ring.NewContext(n, all)
	if err != nil {
		return nil, err
	}
	return &Params{
		LogN: logN, N: n, Q: append([]uint64(nil), q...), P: special,
		LogScale: logScale, RingQP: rqp,
	}, nil
}

// WriteCiphertext serializes a ciphertext.
func WriteCiphertext(w io.Writer, ct *Ciphertext) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindCiphertext); err != nil {
		return err
	}
	if err := writeCiphertextBody(bw, ct); err != nil {
		return err
	}
	return bw.Flush()
}

// writeCiphertextBody is the header-less ciphertext encoding, shared by
// WriteCiphertext and the batch codec.
func writeCiphertextBody(w io.Writer, ct *Ciphertext) error {
	if err := binary.Write(w, binary.LittleEndian, math.Float64bits(ct.Scale)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(ct.Level)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(ct.Polys))); err != nil {
		return err
	}
	for _, p := range ct.Polys {
		if err := writePoly(w, p); err != nil {
			return err
		}
	}
	return nil
}

// ReadCiphertext deserializes a ciphertext against params.
func ReadCiphertext(r io.Reader, params *Params) (*Ciphertext, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, kindCiphertext); err != nil {
		return nil, err
	}
	return readCiphertextBody(br, params)
}

// readCiphertextBody deserializes the header-less ciphertext encoding.
func readCiphertextBody(br io.Reader, params *Params) (*Ciphertext, error) {
	var scaleBits uint64
	if err := readValue(br, "ciphertext scale", &scaleBits); err != nil {
		return nil, err
	}
	var level, np uint32
	if err := readValue(br, "ciphertext level", &level); err != nil {
		return nil, err
	}
	if err := readValue(br, "ciphertext arity", &np); err != nil {
		return nil, err
	}
	if np < 2 || np > 3 {
		return nil, fmt.Errorf("ckks: ciphertext with %d components: %w", np, ErrCorrupt)
	}
	if int(level) > params.MaxLevel() {
		return nil, fmt.Errorf("ckks: level %d above maximum %d: %w", level, params.MaxLevel(), ErrCorrupt)
	}
	ct := &Ciphertext{Scale: math.Float64frombits(scaleBits), Level: int(level)}
	for i := 0; i < int(np); i++ {
		p, err := readPoly(br, params.RingQP)
		if err != nil {
			return nil, err
		}
		if p.Rows() != int(level)+1 {
			return nil, fmt.Errorf("ckks: component rows %d do not match level %d: %w", p.Rows(), level, ErrCorrupt)
		}
		ct.Polys = append(ct.Polys, p)
	}
	return ct, nil
}

// WriteSecretKey / ReadSecretKey serialize the secret key.
func WriteSecretKey(w io.Writer, sk *SecretKey) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindSecretKey); err != nil {
		return err
	}
	if err := writePoly(bw, sk.Value); err != nil {
		return err
	}
	return bw.Flush()
}

func ReadSecretKey(r io.Reader, params *Params) (*SecretKey, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, kindSecretKey); err != nil {
		return nil, err
	}
	p, err := readPoly(br, params.RingQP)
	if err != nil {
		return nil, err
	}
	return &SecretKey{Value: p}, nil
}

// WritePublicKey / ReadPublicKey serialize the public key.
func WritePublicKey(w io.Writer, pk *PublicKey) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindPublicKey); err != nil {
		return err
	}
	if err := writePoly(bw, pk.B); err != nil {
		return err
	}
	if err := writePoly(bw, pk.A); err != nil {
		return err
	}
	return bw.Flush()
}

func ReadPublicKey(r io.Reader, params *Params) (*PublicKey, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, kindPublicKey); err != nil {
		return nil, err
	}
	b, err := readPoly(br, params.RingQP)
	if err != nil {
		return nil, err
	}
	a, err := readPoly(br, params.RingQP)
	if err != nil {
		return nil, err
	}
	return &PublicKey{B: b, A: a}, nil
}

func writeSwitchingKey(w io.Writer, swk *SwitchingKey) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(swk.Digits))); err != nil {
		return err
	}
	for _, d := range swk.Digits {
		if err := writePoly(w, d[0]); err != nil {
			return err
		}
		if err := writePoly(w, d[1]); err != nil {
			return err
		}
	}
	return nil
}

// readSwitchingKey fills swk in place (the key carries a sync.Once and
// must not be copied).
func readSwitchingKey(r io.Reader, params *Params, swk *SwitchingKey) error {
	var n uint32
	if err := readValue(r, "switching key digits", &n); err != nil {
		return err
	}
	if int(n) != params.K() {
		return fmt.Errorf("ckks: key has %d digits, params need %d: %w", n, params.K(), ErrCorrupt)
	}
	swk.Digits = make([][2]*ring.Poly, n)
	for i := range swk.Digits {
		d0, err := readPoly(r, params.RingQP)
		if err != nil {
			return err
		}
		d1, err := readPoly(r, params.RingQP)
		if err != nil {
			return err
		}
		swk.Digits[i] = [2]*ring.Poly{d0, d1}
	}
	// Rebuild the digit Shoup tables eagerly so deserialized keys are as
	// hot-path-ready (and as concurrency-safe) as freshly generated ones.
	swk.ensureShoup(params.RingQP)
	return nil
}

// WriteRelinearizationKey / ReadRelinearizationKey serialize rlk.
func WriteRelinearizationKey(w io.Writer, rlk *RelinearizationKey) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindSwitchingKey); err != nil {
		return err
	}
	if err := writeSwitchingKey(bw, &rlk.SwitchingKey); err != nil {
		return err
	}
	return bw.Flush()
}

func ReadRelinearizationKey(r io.Reader, params *Params) (*RelinearizationKey, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, kindSwitchingKey); err != nil {
		return nil, err
	}
	rlk := &RelinearizationKey{}
	if err := readSwitchingKey(br, params, &rlk.SwitchingKey); err != nil {
		return nil, err
	}
	return rlk, nil
}

// WriteGaloisKey / ReadGaloisKey serialize one rotation key.
func WriteGaloisKey(w io.Writer, gk *GaloisKey) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindGaloisKey); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, gk.GaloisElt); err != nil {
		return err
	}
	if err := writeSwitchingKey(bw, &gk.SwitchingKey); err != nil {
		return err
	}
	return bw.Flush()
}

func ReadGaloisKey(r io.Reader, params *Params) (*GaloisKey, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, kindGaloisKey); err != nil {
		return nil, err
	}
	return readGaloisKeyBody(br, params)
}

// --- Framed aggregate codecs (the serving wire format) ---------------------
//
// A plan-serving host moves two aggregate objects: a tenant's complete
// evaluation key set (one upload at registration) and named ciphertext
// batches (one per request and response). Both are single framed
// objects whose counts and name lengths are checked against hard caps
// before anything is allocated, so a stream either yields a complete,
// validated aggregate or fails with ErrCorrupt — never a partial object
// and never an attacker-sized allocation.

// WriteEvaluationKeys serializes a relinearization key and a Galois key
// set as one framed object; either may be nil. Rotation entries are
// written in sorted step order, so equal key sets serialize to equal
// bytes.
func WriteEvaluationKeys(w io.Writer, rlk *RelinearizationKey, gks *GaloisKeySet) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindEvalKeys); err != nil {
		return err
	}
	var flags uint32
	if rlk != nil {
		flags |= 1
	}
	if gks != nil {
		flags |= 2
		if gks.Conjugate != nil {
			flags |= 4
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, flags); err != nil {
		return err
	}
	if rlk != nil {
		if err := writeSwitchingKey(bw, &rlk.SwitchingKey); err != nil {
			return err
		}
	}
	if gks != nil {
		// Snapshot (step, key) pairs and sort by step: deterministic
		// output without re-indexing the map (the keys are normalized by
		// construction; rotnorm keeps raw-step lookups out of this file).
		type stepKey struct {
			step int
			gk   *GaloisKey
		}
		pairs := make([]stepKey, 0, len(gks.Rotations))
		for s, gk := range gks.Rotations {
			pairs = append(pairs, stepKey{s, gk})
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].step < pairs[j].step })
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(pairs))); err != nil {
			return err
		}
		for _, p := range pairs {
			s, gk := p.step, p.gk
			if err := binary.Write(bw, binary.LittleEndian, int64(s)); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, gk.GaloisElt); err != nil {
				return err
			}
			if err := writeSwitchingKey(bw, &gk.SwitchingKey); err != nil {
				return err
			}
		}
		if gks.Conjugate != nil {
			if err := binary.Write(bw, binary.LittleEndian, gks.Conjugate.GaloisElt); err != nil {
				return err
			}
			if err := writeSwitchingKey(bw, &gks.Conjugate.SwitchingKey); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// readGaloisKeyBody reads the header-less Galois key encoding (element
// plus switching key), validating the element against the ring.
func readGaloisKeyBody(r io.Reader, params *Params) (*GaloisKey, error) {
	var elt uint64
	if err := readValue(r, "Galois element", &elt); err != nil {
		return nil, err
	}
	if elt&1 == 0 || elt >= uint64(2*params.N) {
		return nil, fmt.Errorf("ckks: invalid Galois element %d: %w", elt, ErrCorrupt)
	}
	gk := &GaloisKey{GaloisElt: elt}
	if err := readSwitchingKey(r, params, &gk.SwitchingKey); err != nil {
		return nil, err
	}
	return gk, nil
}

// ReadEvaluationKeys reconstructs a key set written by
// WriteEvaluationKeys, validating counts, step ranges and Galois
// elements before allocating.
func ReadEvaluationKeys(r io.Reader, params *Params) (*RelinearizationKey, *GaloisKeySet, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, kindEvalKeys); err != nil {
		return nil, nil, err
	}
	var flags uint32
	if err := readValue(br, "evaluation keys flags", &flags); err != nil {
		return nil, nil, err
	}
	if flags&^7 != 0 || (flags&4 != 0 && flags&2 == 0) {
		return nil, nil, fmt.Errorf("ckks: invalid evaluation key flags %#x: %w", flags, ErrCorrupt)
	}
	var rlk *RelinearizationKey
	if flags&1 != 0 {
		rlk = &RelinearizationKey{}
		if err := readSwitchingKey(br, params, &rlk.SwitchingKey); err != nil {
			return nil, nil, err
		}
	}
	var gks *GaloisKeySet
	if flags&2 != 0 {
		var n uint32
		if err := readValue(br, "rotation key count", &n); err != nil {
			return nil, nil, err
		}
		// Steps are unique in [1, Slots()), so the count is bounded by
		// the slot count (and the absolute cap) before the map exists.
		if int64(n) > int64(maxGaloisKeys) || int64(n) >= int64(params.Slots()) {
			return nil, nil, fmt.Errorf("ckks: implausible rotation key count %d: %w", n, ErrCorrupt)
		}
		gks = &GaloisKeySet{Rotations: make(map[int]*GaloisKey, n)}
		for i := 0; i < int(n); i++ {
			var step int64
			if err := readValue(br, "rotation step", &step); err != nil {
				return nil, nil, err
			}
			if step <= 0 || step >= int64(params.Slots()) {
				return nil, nil, fmt.Errorf("ckks: rotation step %d out of range [1, %d): %w", step, params.Slots(), ErrCorrupt)
			}
			// A wire step must already be in normalized form — a
			// denormalized one would land the key where no lookup
			// (which always normalizes) could find it.
			norm := params.NormalizeRotation(int(step))
			if norm != int(step) {
				return nil, nil, fmt.Errorf("ckks: denormalized rotation step %d (normal form %d): %w", step, norm, ErrCorrupt)
			}
			if _, dup := gks.Rotations[norm]; dup {
				return nil, nil, fmt.Errorf("ckks: duplicate rotation step %d: %w", step, ErrCorrupt)
			}
			gk, err := readGaloisKeyBody(br, params)
			if err != nil {
				return nil, nil, err
			}
			gks.Rotations[norm] = gk
		}
		if flags&4 != 0 {
			gk, err := readGaloisKeyBody(br, params)
			if err != nil {
				return nil, nil, err
			}
			gks.Conjugate = gk
		}
	}
	return rlk, gks, nil
}

// WriteCiphertextBatch serializes one named input (or output) set — the
// unit a plan-serving request streams — as a single framed object,
// entries in sorted name order for deterministic bytes.
func WriteCiphertextBatch(w io.Writer, batch map[string]*Ciphertext) error {
	if len(batch) > maxBatchEntries {
		return fmt.Errorf("ckks: batch has %d entries, the wire format allows %d", len(batch), maxBatchEntries)
	}
	names := make([]string, 0, len(batch))
	for name := range batch {
		if len(name) == 0 || len(name) > maxEntryNameLen {
			return fmt.Errorf("ckks: batch entry name %q has length %d, the wire format allows [1, %d]", name, len(name), maxEntryNameLen)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindCiphertextBatch); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		if err := writeCiphertextBody(bw, batch[name]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCiphertextBatch reconstructs a batch written by
// WriteCiphertextBatch, bounding the entry count and name lengths
// before allocating.
func ReadCiphertextBatch(r io.Reader, params *Params) (map[string]*Ciphertext, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, kindCiphertextBatch); err != nil {
		return nil, err
	}
	var n uint32
	if err := readValue(br, "batch entry count", &n); err != nil {
		return nil, err
	}
	if n > maxBatchEntries {
		return nil, fmt.Errorf("ckks: batch claims %d entries, the wire format allows %d: %w", n, maxBatchEntries, ErrCorrupt)
	}
	batch := make(map[string]*Ciphertext, n)
	for i := 0; i < int(n); i++ {
		var nameLen uint32
		if err := readValue(br, "batch entry name length", &nameLen); err != nil {
			return nil, err
		}
		if nameLen == 0 || nameLen > maxEntryNameLen {
			return nil, fmt.Errorf("ckks: batch entry name length %d out of range [1, %d]: %w", nameLen, maxEntryNameLen, ErrCorrupt)
		}
		nameBytes := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBytes); err != nil {
			return nil, corrupted("batch entry name", err)
		}
		name := string(nameBytes)
		if _, dup := batch[name]; dup {
			return nil, fmt.Errorf("ckks: duplicate batch entry %q: %w", name, ErrCorrupt)
		}
		ct, err := readCiphertextBody(br, params)
		if err != nil {
			return nil, err
		}
		batch[name] = ct
	}
	return batch, nil
}
