package ckks

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"heax/internal/ring"
)

// Binary serialization for parameters, ciphertexts and keys: the wire
// format a client and an HEAX-accelerated server exchange over PCIe/
// network (Section 5.2 moves exactly these objects). Format: magic,
// version, then little-endian fixed-width fields; polynomials are raw
// rows of 64-bit words.

const (
	serialMagic   uint32 = 0x48454158 // "HEAX"
	serialVersion uint32 = 1
)

type objectKind uint32

const (
	kindParams objectKind = iota + 1
	kindCiphertext
	kindPlaintext
	kindSecretKey
	kindPublicKey
	kindSwitchingKey
	kindGaloisKey
)

func writeHeader(w io.Writer, kind objectKind) error {
	for _, v := range []uint32{serialMagic, serialVersion, uint32(kind)} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readHeader(r io.Reader, want objectKind) error {
	var magic, version, kind uint32
	for _, p := range []*uint32{&magic, &version, &kind} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return err
		}
	}
	if magic != serialMagic {
		return fmt.Errorf("ckks: bad magic %#x: %w", magic, ErrCorrupt)
	}
	if version != serialVersion {
		return fmt.Errorf("ckks: unsupported version %d: %w", version, ErrCorrupt)
	}
	if kind != uint32(want) {
		return fmt.Errorf("ckks: expected object kind %d, found %d: %w", want, kind, ErrCorrupt)
	}
	return nil
}

func writePoly(w io.Writer, p *ring.Poly) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(p.Rows())); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(p.Coeffs[0]))); err != nil {
		return err
	}
	for _, row := range p.Coeffs {
		if err := binary.Write(w, binary.LittleEndian, row); err != nil {
			return err
		}
	}
	return nil
}

func readPoly(r io.Reader, ctx *ring.Context) (*ring.Poly, error) {
	var rows, n uint32
	if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if int(n) != ctx.N {
		return nil, fmt.Errorf("ckks: polynomial degree %d does not match context %d: %w", n, ctx.N, ErrCorrupt)
	}
	if rows == 0 || int(rows) > ctx.K() {
		return nil, fmt.Errorf("ckks: polynomial rows %d out of range: %w", rows, ErrCorrupt)
	}
	p := ctx.NewPoly(int(rows))
	for _, row := range p.Coeffs {
		if err := binary.Read(r, binary.LittleEndian, row); err != nil {
			return nil, err
		}
	}
	// Validate residues against the basis so corrupted blobs fail fast.
	for i, row := range p.Coeffs {
		prime := ctx.Basis.Primes[i]
		for _, v := range row {
			if v >= prime {
				return nil, fmt.Errorf("ckks: residue %d out of range for prime %d: %w", v, prime, ErrCorrupt)
			}
		}
	}
	return p, nil
}

// WriteParams serializes the realized parameters (actual primes, so the
// receiver reconstructs bit-identical contexts).
func WriteParams(w io.Writer, p *Params) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindParams); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(p.LogN)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(p.LogScale)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.Q))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, p.Q); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, p.P); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadParams reconstructs parameters written by WriteParams.
func ReadParams(r io.Reader) (*Params, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, kindParams); err != nil {
		return nil, err
	}
	var logN, logScale, k uint32
	if err := binary.Read(br, binary.LittleEndian, &logN); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &logScale); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &k); err != nil {
		return nil, err
	}
	if k == 0 || k > 64 {
		return nil, fmt.Errorf("ckks: implausible prime count %d", k)
	}
	q := make([]uint64, k)
	if err := binary.Read(br, binary.LittleEndian, q); err != nil {
		return nil, err
	}
	var special uint64
	if err := binary.Read(br, binary.LittleEndian, &special); err != nil {
		return nil, err
	}
	return ParamsFromRaw(int(logN), q, special, int(logScale))
}

// ParamsFromRaw builds parameters from explicit primes (as a receiving
// party does); it validates the NTT-friendliness constraints.
func ParamsFromRaw(logN int, q []uint64, special uint64, logScale int) (*Params, error) {
	if logN < 2 || logN > 17 {
		return nil, fmt.Errorf("ckks: LogN %d out of range", logN)
	}
	n := 1 << logN
	all := append(append([]uint64(nil), q...), special)
	rqp, err := ring.NewContext(n, all)
	if err != nil {
		return nil, err
	}
	return &Params{
		LogN: logN, N: n, Q: append([]uint64(nil), q...), P: special,
		LogScale: logScale, RingQP: rqp,
	}, nil
}

// WriteCiphertext serializes a ciphertext.
func WriteCiphertext(w io.Writer, ct *Ciphertext) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindCiphertext); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(ct.Scale)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(ct.Level)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(ct.Polys))); err != nil {
		return err
	}
	for _, p := range ct.Polys {
		if err := writePoly(bw, p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCiphertext deserializes a ciphertext against params.
func ReadCiphertext(r io.Reader, params *Params) (*Ciphertext, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, kindCiphertext); err != nil {
		return nil, err
	}
	var scaleBits uint64
	if err := binary.Read(br, binary.LittleEndian, &scaleBits); err != nil {
		return nil, err
	}
	var level, np uint32
	if err := binary.Read(br, binary.LittleEndian, &level); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &np); err != nil {
		return nil, err
	}
	if np < 2 || np > 3 {
		return nil, fmt.Errorf("ckks: ciphertext with %d components: %w", np, ErrCorrupt)
	}
	if int(level) > params.MaxLevel() {
		return nil, fmt.Errorf("ckks: level %d above maximum %d: %w", level, params.MaxLevel(), ErrCorrupt)
	}
	ct := &Ciphertext{Scale: math.Float64frombits(scaleBits), Level: int(level)}
	for i := 0; i < int(np); i++ {
		p, err := readPoly(br, params.RingQP)
		if err != nil {
			return nil, err
		}
		if p.Rows() != int(level)+1 {
			return nil, fmt.Errorf("ckks: component rows %d do not match level %d: %w", p.Rows(), level, ErrCorrupt)
		}
		ct.Polys = append(ct.Polys, p)
	}
	return ct, nil
}

// WriteSecretKey / ReadSecretKey serialize the secret key.
func WriteSecretKey(w io.Writer, sk *SecretKey) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindSecretKey); err != nil {
		return err
	}
	if err := writePoly(bw, sk.Value); err != nil {
		return err
	}
	return bw.Flush()
}

func ReadSecretKey(r io.Reader, params *Params) (*SecretKey, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, kindSecretKey); err != nil {
		return nil, err
	}
	p, err := readPoly(br, params.RingQP)
	if err != nil {
		return nil, err
	}
	return &SecretKey{Value: p}, nil
}

// WritePublicKey / ReadPublicKey serialize the public key.
func WritePublicKey(w io.Writer, pk *PublicKey) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindPublicKey); err != nil {
		return err
	}
	if err := writePoly(bw, pk.B); err != nil {
		return err
	}
	if err := writePoly(bw, pk.A); err != nil {
		return err
	}
	return bw.Flush()
}

func ReadPublicKey(r io.Reader, params *Params) (*PublicKey, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, kindPublicKey); err != nil {
		return nil, err
	}
	b, err := readPoly(br, params.RingQP)
	if err != nil {
		return nil, err
	}
	a, err := readPoly(br, params.RingQP)
	if err != nil {
		return nil, err
	}
	return &PublicKey{B: b, A: a}, nil
}

func writeSwitchingKey(w io.Writer, swk *SwitchingKey) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(swk.Digits))); err != nil {
		return err
	}
	for _, d := range swk.Digits {
		if err := writePoly(w, d[0]); err != nil {
			return err
		}
		if err := writePoly(w, d[1]); err != nil {
			return err
		}
	}
	return nil
}

// readSwitchingKey fills swk in place (the key carries a sync.Once and
// must not be copied).
func readSwitchingKey(r io.Reader, params *Params, swk *SwitchingKey) error {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if int(n) != params.K() {
		return fmt.Errorf("ckks: key has %d digits, params need %d", n, params.K())
	}
	swk.Digits = make([][2]*ring.Poly, n)
	for i := range swk.Digits {
		d0, err := readPoly(r, params.RingQP)
		if err != nil {
			return err
		}
		d1, err := readPoly(r, params.RingQP)
		if err != nil {
			return err
		}
		swk.Digits[i] = [2]*ring.Poly{d0, d1}
	}
	// Rebuild the digit Shoup tables eagerly so deserialized keys are as
	// hot-path-ready (and as concurrency-safe) as freshly generated ones.
	swk.ensureShoup(params.RingQP)
	return nil
}

// WriteRelinearizationKey / ReadRelinearizationKey serialize rlk.
func WriteRelinearizationKey(w io.Writer, rlk *RelinearizationKey) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindSwitchingKey); err != nil {
		return err
	}
	if err := writeSwitchingKey(bw, &rlk.SwitchingKey); err != nil {
		return err
	}
	return bw.Flush()
}

func ReadRelinearizationKey(r io.Reader, params *Params) (*RelinearizationKey, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, kindSwitchingKey); err != nil {
		return nil, err
	}
	rlk := &RelinearizationKey{}
	if err := readSwitchingKey(br, params, &rlk.SwitchingKey); err != nil {
		return nil, err
	}
	return rlk, nil
}

// WriteGaloisKey / ReadGaloisKey serialize one rotation key.
func WriteGaloisKey(w io.Writer, gk *GaloisKey) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindGaloisKey); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, gk.GaloisElt); err != nil {
		return err
	}
	if err := writeSwitchingKey(bw, &gk.SwitchingKey); err != nil {
		return err
	}
	return bw.Flush()
}

func ReadGaloisKey(r io.Reader, params *Params) (*GaloisKey, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, kindGaloisKey); err != nil {
		return nil, err
	}
	var elt uint64
	if err := binary.Read(br, binary.LittleEndian, &elt); err != nil {
		return nil, err
	}
	if elt&1 == 0 || elt >= uint64(2*params.N) {
		return nil, fmt.Errorf("ckks: invalid Galois element %d", elt)
	}
	gk := &GaloisKey{GaloisElt: elt}
	if err := readSwitchingKey(br, params, &gk.SwitchingKey); err != nil {
		return nil, err
	}
	return gk, nil
}
