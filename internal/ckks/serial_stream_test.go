package ckks

// Tests for the framed aggregate codecs (evaluation key sets and named
// ciphertext batches) and for the truncation contract of every reader:
// a prefix of a valid blob — any prefix — must fail with ErrCorrupt,
// never panic, never over-allocate, never return a partial object.

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// streamSpec keeps key material small enough to truncate exhaustively.
var streamSpec = ParamSpec{Name: "stream", LogN: 4, QBits: []int{30, 30}, PBits: 31, LogScale: 20}

func streamKeys(t testing.TB) (*Params, *RelinearizationKey, *GaloisKeySet) {
	t.Helper()
	params := MustParams(streamSpec)
	kg := NewKeyGenerator(params, 5)
	sk := kg.GenSecretKey()
	return params, kg.GenRelinearizationKey(sk), kg.GenGaloisKeySet(sk, []int{1, 3, -2}, true)
}

func TestEvaluationKeysRoundTrip(t *testing.T) {
	params, rlk, gks := streamKeys(t)
	var buf bytes.Buffer
	if err := WriteEvaluationKeys(&buf, rlk, gks); err != nil {
		t.Fatal(err)
	}
	rlk2, gks2, err := ReadEvaluationKeys(bytes.NewReader(buf.Bytes()), params)
	if err != nil {
		t.Fatal(err)
	}
	if rlk2 == nil || len(rlk2.Digits) != len(rlk.Digits) {
		t.Fatal("relinearization key did not round trip")
	}
	for i := range rlk.Digits {
		if !rlk2.Digits[i][0].Equal(rlk.Digits[i][0]) || !rlk2.Digits[i][1].Equal(rlk.Digits[i][1]) {
			t.Fatalf("relin digit %d differs", i)
		}
	}
	if len(gks2.Rotations) != len(gks.Rotations) {
		t.Fatalf("rotation key count %d != %d", len(gks2.Rotations), len(gks.Rotations))
	}
	for step, gk := range gks.Rotations {
		gk2 := gks2.Rotations[step]
		if gk2 == nil || gk2.GaloisElt != gk.GaloisElt {
			t.Fatalf("rotation key %d did not round trip", step)
		}
	}
	if gks2.Conjugate == nil || gks2.Conjugate.GaloisElt != gks.Conjugate.GaloisElt {
		t.Fatal("conjugation key did not round trip")
	}

	// Deterministic bytes: equal key sets serialize identically.
	var buf2 bytes.Buffer
	if err := WriteEvaluationKeys(&buf2, rlk2, gks2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialization is not byte-identical")
	}

	// Nil halves are legal.
	buf.Reset()
	if err := WriteEvaluationKeys(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	r0, g0, err := ReadEvaluationKeys(&buf, params)
	if err != nil || r0 != nil || g0 != nil {
		t.Fatalf("empty key set round trip: %v %v %v", r0, g0, err)
	}
}

func TestCiphertextBatchRoundTrip(t *testing.T) {
	kit := newTestKit(t, streamSpec)
	batch := map[string]*Ciphertext{}
	for _, name := range []string{"x", "weights", "b"} {
		pt, err := kit.enc.Encode([]complex128{1, 2, 3}, kit.params.MaxLevel(), kit.params.DefaultScale())
		if err != nil {
			t.Fatal(err)
		}
		ct, err := kit.encPk.Encrypt(pt)
		if err != nil {
			t.Fatal(err)
		}
		batch[name] = ct
	}
	var buf bytes.Buffer
	if err := WriteCiphertextBatch(&buf, batch); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCiphertextBatch(bytes.NewReader(buf.Bytes()), kit.params)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch) {
		t.Fatalf("entry count %d != %d", len(got), len(batch))
	}
	for name, ct := range batch {
		g := got[name]
		if g == nil || g.Scale != ct.Scale || g.Level != ct.Level || len(g.Polys) != len(ct.Polys) {
			t.Fatalf("entry %q metadata differs", name)
		}
		for i := range ct.Polys {
			if !g.Polys[i].Equal(ct.Polys[i]) {
				t.Fatalf("entry %q polynomial %d differs", name, i)
			}
		}
	}
}

// TestReadersRejectTruncation cuts every reader's valid blob at every
// byte offset and requires ErrCorrupt each time.
func TestReadersRejectTruncation(t *testing.T) {
	params, rlk, gks := streamKeys(t)
	kit := newTestKit(t, streamSpec)
	pt, err := kit.enc.Encode([]complex128{1, 2}, kit.params.MaxLevel(), kit.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := kit.encPk.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		write func(io.Writer) error
		read  func(io.Reader) error
	}{
		{"params",
			func(w io.Writer) error { return WriteParams(w, params) },
			func(r io.Reader) error { _, err := ReadParams(r); return err }},
		{"ciphertext",
			func(w io.Writer) error { return WriteCiphertext(w, ct) },
			func(r io.Reader) error { _, err := ReadCiphertext(r, kit.params); return err }},
		{"secret key",
			func(w io.Writer) error { return WriteSecretKey(w, kit.sk) },
			func(r io.Reader) error { _, err := ReadSecretKey(r, kit.params); return err }},
		{"public key",
			func(w io.Writer) error { return WritePublicKey(w, kit.pk) },
			func(r io.Reader) error { _, err := ReadPublicKey(r, kit.params); return err }},
		{"relinearization key",
			func(w io.Writer) error { return WriteRelinearizationKey(w, rlk) },
			func(r io.Reader) error { _, err := ReadRelinearizationKey(r, params); return err }},
		{"galois key",
			func(w io.Writer) error { return WriteGaloisKey(w, gks.Rotations[1]) },
			func(r io.Reader) error { _, err := ReadGaloisKey(r, params); return err }},
		{"evaluation keys",
			func(w io.Writer) error { return WriteEvaluationKeys(w, rlk, gks) },
			func(r io.Reader) error { _, _, err := ReadEvaluationKeys(r, params); return err }},
		{"ciphertext batch",
			func(w io.Writer) error {
				return WriteCiphertextBatch(w, map[string]*Ciphertext{"x": ct, "y": ct})
			},
			func(r io.Reader) error { _, err := ReadCiphertextBatch(r, kit.params); return err }},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := tc.write(&buf); err != nil {
			t.Fatalf("%s: write: %v", tc.name, err)
		}
		valid := buf.Bytes()
		if err := tc.read(bytes.NewReader(valid)); err != nil {
			t.Fatalf("%s: full blob must read back: %v", tc.name, err)
		}
		for cut := 0; cut < len(valid); cut++ {
			err := tc.read(bytes.NewReader(valid[:cut]))
			if err == nil {
				t.Fatalf("%s: accepted a %d/%d-byte truncation", tc.name, cut, len(valid))
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s: truncation at %d must wrap ErrCorrupt, got %v", tc.name, cut, err)
			}
		}
	}
}

// TestBatchReaderBoundsPrefixes: oversized counts and name lengths are
// rejected before any allocation proportional to them.
func TestBatchReaderBoundsPrefixes(t *testing.T) {
	kit := newTestKit(t, streamSpec)
	// Claim 2^32-1 entries.
	blob := []byte{0x58, 0x41, 0x45, 0x48, 1, 0, 0, 0, 9, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}
	if _, err := ReadCiphertextBatch(bytes.NewReader(blob), kit.params); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized entry count must be ErrCorrupt, got %v", err)
	}
	// One entry with a 2^31 name length.
	blob = []byte{0x58, 0x41, 0x45, 0x48, 1, 0, 0, 0, 9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0x80}
	if _, err := ReadCiphertextBatch(bytes.NewReader(blob), kit.params); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized name length must be ErrCorrupt, got %v", err)
	}
	// Evaluation keys claiming 2^32-1 rotation keys.
	blob = []byte{0x58, 0x41, 0x45, 0x48, 1, 0, 0, 0, 8, 0, 0, 0, 2, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}
	if _, _, err := ReadEvaluationKeys(bytes.NewReader(blob), MustParams(streamSpec)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized rotation count must be ErrCorrupt, got %v", err)
	}
}
