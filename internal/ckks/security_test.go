package ckks

import (
	"math/rand"
	"testing"
)

// The Table 2 parameter sets sit exactly at the 128-bit boundary of the
// HE security standard — the paper chose them that way.
func TestStandardSetsSecurity(t *testing.T) {
	for _, spec := range StandardSets {
		params := MustParams(spec)
		lvl, err := params.SecurityLevel()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if lvl != 128 {
			t.Errorf("%s: security level %d, want 128", spec.Name, lvl)
		}
		bound, err := MaxLogQP(params.N, 128)
		if err != nil {
			t.Fatal(err)
		}
		if got := params.TotalModulusBits(); got != bound {
			t.Errorf("%s: log qp = %d, standard's 128-bit bound is %d (paper sets saturate it)", spec.Name, got, bound)
		}
	}
}

func TestSecurityLevelErrors(t *testing.T) {
	params := MustParams(smallSpec)
	// n = 2^10 with 163 modulus bits is far above the 27-bit bound.
	if _, err := params.SecurityLevel(); err == nil {
		t.Error("oversized modulus should fail the security check")
	}
	if _, err := MaxLogQP(1000, 128); err == nil {
		t.Error("unknown n should fail")
	}
	if _, err := MaxLogQP(1<<12, 100); err == nil {
		t.Error("unknown security level should fail")
	}
}

func TestHigherSecurityLevels(t *testing.T) {
	// A 50-bit modulus at n=2^12 clears the 192- and 256-bit bounds too.
	spec := ParamSpec{Name: "tiny-q", LogN: 12, QBits: []int{25}, PBits: 25, LogScale: 20}
	params := MustParams(spec)
	lvl, err := params.SecurityLevel()
	if err != nil {
		t.Fatal(err)
	}
	if lvl != 256 {
		t.Fatalf("50-bit modulus at n=2^12 should be 256-bit secure, got %d", lvl)
	}
}

// Re-keying: encrypt under key 1, switch, decrypt under key 2.
func TestSwitchKeys(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	kg2 := NewKeyGenerator(kit.params, 77)
	sk2 := kg2.GenSecretKey()
	swk := kit.kg.GenSwitchingKey(kit.sk, sk2)

	rng := rand.New(rand.NewSource(50))
	v := randomComplex(rng, kit.params.Slots(), 1)
	pt, _ := kit.enc.Encode(v, kit.params.MaxLevel(), kit.params.DefaultScale())
	ct, _ := kit.encPk.Encrypt(pt)

	ct2, err := kit.eval.SwitchKeys(ct, swk)
	if err != nil {
		t.Fatal(err)
	}
	dec2 := NewDecryptor(kit.params, sk2)
	out, err := dec2.Decrypt(ct2)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(kit.enc.Decode(out), v); e > 1e-3 {
		t.Fatalf("re-keyed decryption error %g", e)
	}
	// The old key must no longer decrypt it to the message.
	wrong, _ := kit.dec.Decrypt(ct2)
	if e := maxErr(kit.enc.Decode(wrong), v); e < 1e-1 {
		t.Fatal("old key still decrypts after switching")
	}
	prod, _ := kit.eval.Mul(ct, ct)
	if _, err := kit.eval.SwitchKeys(prod, swk); err == nil {
		t.Fatal("degree-2 input should fail")
	}
}
