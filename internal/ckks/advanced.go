package ckks

import (
	"fmt"
	"math"
	"math/big"

	"heax/internal/ring"
	"heax/internal/uintmod"
)

// This file implements the evaluator extensions a production CKKS library
// layers on the paper's primitives: squaring, scalar operations, hoisted
// rotations (decompose once, rotate many — the optimization HEAX's
// shared-NTT-module design invites), slot inner sums, linear transforms
// by the diagonal method, and polynomial evaluation with automatic scale
// management.

// Negate returns -ct.
func (ev *Evaluator) Negate(ct *Ciphertext) *Ciphertext {
	out := CopyOf(ct)
	for _, p := range out.Polys {
		ev.ctx.Neg(p, p)
	}
	return out
}

// Square is Algorithm 5 specialised to ct0 == ct1: three dyadic passes
// instead of four (c0², 2·c0⊙c1, c1²), the same specialisation the MULT
// module applies when both operands share a BRAM bank.
func (ev *Evaluator) Square(ct *Ciphertext) (*Ciphertext, error) {
	if ct.Degree() != 1 {
		return nil, fmt.Errorf("ckks: Square requires a degree-1 ciphertext (got %d)", ct.Degree())
	}
	ctx := ev.ctx
	rows := ct.Level + 1
	c0 := ctx.NewPoly(rows)
	c1 := ctx.NewPoly(rows)
	c2 := ctx.NewPoly(rows)
	ctx.MulCoeffs(ct.Polys[0], ct.Polys[0], c0)
	ctx.MulCoeffs(ct.Polys[0], ct.Polys[1], c1)
	ctx.Add(c1, c1, c1)
	ctx.MulCoeffs(ct.Polys[1], ct.Polys[1], c2)
	return &Ciphertext{
		Polys: []*ring.Poly{c0, c1, c2},
		Scale: ct.Scale * ct.Scale,
		Level: ct.Level,
	}, nil
}

// AddConst adds the same real constant to every slot, without consuming a
// level: the constant is scaled to the ciphertext's scale and added to
// the constant coefficient... of the canonical embedding, which for a
// real constant is simply the encoding of the constant vector.
func (ev *Evaluator) AddConst(ct *Ciphertext, c float64, enc *Encoder) (*Ciphertext, error) {
	vals := make([]float64, enc.Slots())
	for i := range vals {
		vals[i] = c
	}
	pt, err := enc.EncodeReal(vals, ct.Level, ct.Scale)
	if err != nil {
		return nil, err
	}
	return ev.AddPlain(ct, pt)
}

// MulConstInt multiplies every slot by a small integer constant without
// consuming a level or changing the scale (exact scalar multiplication on
// the RNS representation).
func (ev *Evaluator) MulConstInt(ct *Ciphertext, c int64) *Ciphertext {
	out := CopyOf(ct)
	ctx := ev.ctx
	for _, p := range out.Polys {
		for i := range p.Coeffs {
			pi := ctx.Basis.Primes[i]
			v := ctx.Basis.ReduceInt64(c, i)
			sh := uintmod.ShoupPrecomp(v, pi)
			row := p.Coeffs[i]
			for j := range row {
				row[j] = uintmod.MulRed(row[j], v, sh, pi)
			}
		}
	}
	return out
}

// HoistedDecomposition caches the expensive half of Algorithm 7 — the
// per-digit INTT and cross-modulus NTTs of c1 — so that many rotations of
// the same ciphertext pay it once (Halevi–Shoup hoisting). The Galois
// automorphism commutes with RNS decomposition (it is a signed
// coefficient permutation), so each rotation only permutes the cached
// digits in the NTT domain and runs the dyadic/flooring tail.
type HoistedDecomposition struct {
	level int
	// digits[i] has level+2 rows: rows 0..level are NTT_{p_j}([a]_{p_j}),
	// row level+1 is the special-prime row.
	digits []*ring.Poly
}

// DecomposeForKeySwitch performs lines 3-10 of Algorithm 7 for every
// digit of c (NTT form) and caches the results. The per-digit INTTs and
// the (digit, targetPrime) conversion tiles run on the same pipelined
// tile scheduler as KeySwitchPoly (schedule.go): a digit's tiles are
// dispatched as soon as its INTT completes, with no barrier between
// digits.
func (ev *Evaluator) DecomposeForKeySwitch(c *ring.Poly) *HoistedDecomposition {
	ctx := ev.ctx
	level := c.Level()
	hd := &HoistedDecomposition{level: level, digits: make([]*ring.Poly, level+1)}
	for i := 0; i <= level; i++ {
		hd.digits[i] = ctx.NewPoly(level + 2) // cached in hd, not pooled
	}
	ev.decompose(c, hd, level)
	return hd
}

// keySwitchHoisted runs the multiply-accumulate and flooring tail of
// Algorithm 7 over a cached decomposition, optionally permuting each
// digit with an NTT-domain automorphism table first. All tiles are
// independent (the expensive transforms are already cached), so the
// scheduler dispatches the full 2-D digit×prime grid at once. As with
// keySwitchAdd, optional add operands are folded into the flooring row
// pass (the rotation epilogue ks0 + permuted c0).
func (ev *Evaluator) keySwitchHoisted(hd *HoistedDecomposition, swk *SwitchingKey, table []int, add0, add1 *ring.Poly) (*ring.Poly, *ring.Poly) {
	out0, out1 := ev.ctx.NewPolyPair(hd.level + 1)
	ev.keySwitchHoistedInto(hd, swk, table, add0, add1, out0, out1)
	return out0, out1
}

// keySwitchHoistedInto is keySwitchHoisted landing in caller-provided
// output polynomials — the zero-allocation back end behind
// RotateHoistedInto.
func (ev *Evaluator) keySwitchHoistedInto(hd *HoistedDecomposition, swk *SwitchingKey, table []int, add0, add1, out0, out1 *ring.Poly) {
	ctx := ev.ctx
	level := hd.level
	acc0 := ctx.GetPoly(level + 2)
	acc1 := ctx.GetPoly(level + 2)
	defer ctx.PutPoly(acc0)
	defer ctx.PutPoly(acc1)
	ev.keySwitchMAC(nil, hd, table, swk.Digits, swk.ensureShoup(ctx), acc0, acc1, level)
	ctx.FloorDropRowsPairAddInto(acc0, acc1, out0, out1, add0, add1, ev.rowIdx[level], false, true)
}

// RotateHoisted rotates one ciphertext by many steps, sharing a single
// decomposition across all of them. The result map is keyed by step.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, steps []int, gks *GaloisKeySet) (map[int]*Ciphertext, error) {
	if ct.Degree() != 1 {
		return nil, fmt.Errorf("ckks: rotation requires a degree-1 ciphertext (got %d)", ct.Degree())
	}
	ctx := ev.ctx
	rows := ct.Level + 1
	hd := ev.DecomposeForKeySwitch(ct.Polys[1])
	c0g := ctx.GetPolyNoZero(rows) // permuted c0 scratch, shared across steps
	defer ctx.PutPoly(c0g)
	out := make(map[int]*Ciphertext, len(steps))
	for _, step := range steps {
		key, err := ev.rotationKeyFor(gks, step)
		if err != nil {
			return nil, err
		}
		if key == nil { // the step normalizes to 0: identity
			out[step] = CopyOf(ct)
			continue
		}
		table := ctx.AutomorphismNTTTable(key.GaloisElt)
		ctx.AutomorphismNTT(ct.Polys[0], table, c0g)
		out0, out1 := ev.keySwitchHoisted(hd, &key.SwitchingKey, table, c0g, nil)
		out[step] = &Ciphertext{Polys: []*ring.Poly{out0, out1}, Scale: ct.Scale, Level: ct.Level}
	}
	return out, nil
}

// RotateHoistedInto rotates ct by each steps[i] into outs[i], sharing
// one decomposition across all steps like RotateHoisted, with the
// cached digits and every other intermediate drawn from pooled scratch
// — the multi-rotation execution path compiled plans batch same-source
// rotations onto. Outputs must be distinct and must not alias ct; a
// step of 0 copies ct.
func (ev *Evaluator) RotateHoistedInto(ct *Ciphertext, steps []int, gks *GaloisKeySet, outs []*Ciphertext) error {
	if len(steps) != len(outs) {
		return fmt.Errorf("ckks: %d rotation steps for %d outputs", len(steps), len(outs))
	}
	if ct.Degree() != 1 {
		return fmt.Errorf("ckks: rotation requires a degree-1 ciphertext (got %d): %w", ct.Degree(), ErrDegreeMismatch)
	}
	// Resolve every key before writing any output, so a missing step
	// leaves the outputs untouched. Steps normalize modulo the slot
	// count; a nil key marks an identity (normalized-0) step, copied
	// below.
	keys := make([]*GaloisKey, len(steps))
	for i, step := range steps {
		key, err := ev.rotationKeyFor(gks, step)
		if err != nil {
			return err
		}
		keys[i] = key
	}
	ctx := ev.ctx
	level := ct.Level
	hd := &HoistedDecomposition{level: level, digits: make([]*ring.Poly, level+1)}
	for i := range hd.digits {
		hd.digits[i] = ctx.GetPoly(level + 2)
		defer ctx.PutPoly(hd.digits[i])
	}
	ev.decompose(ct.Polys[1], hd, level)
	c0g := ctx.GetPolyNoZero(level + 1)
	defer ctx.PutPoly(c0g)
	for i, key := range keys {
		if key == nil {
			if err := ev.CopyInto(ct, outs[i]); err != nil {
				return err
			}
			continue
		}
		if err := ev.prepareInto(outs[i], 1, level, ct.Scale); err != nil {
			return err
		}
		table := ctx.AutomorphismNTTTable(key.GaloisElt)
		ctx.AutomorphismNTT(ct.Polys[0], table, c0g)
		ev.keySwitchHoistedInto(hd, &key.SwitchingKey, table, c0g, nil, outs[i].Polys[0], outs[i].Polys[1])
	}
	return nil
}

// InnerSum replaces every slot of ct with the sum of the n2 slots
// starting at it (stride 1), computed with log2(n2) rotations. n2 must be
// a power of two; the required Galois keys are steps n2/2, n2/4, ..., 1.
func (ev *Evaluator) InnerSum(ct *Ciphertext, n2 int, gks *GaloisKeySet) (*Ciphertext, error) {
	if n2 < 1 || n2&(n2-1) != 0 {
		return nil, fmt.Errorf("ckks: InnerSum width %d must be a power of two", n2)
	}
	acc := CopyOf(ct)
	for span := n2 >> 1; span >= 1; span >>= 1 {
		rot, err := ev.RotateLeft(acc, span, gks)
		if err != nil {
			return nil, err
		}
		if acc, err = ev.Add(acc, rot); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// LinearTransform is a slot-space matrix prepared as plaintext diagonals
// (the diagonal method): y[i] = Σ_d diag_d[i] · x[i+d mod dim].
type LinearTransform struct {
	Dim   int
	Diags map[int]*Plaintext
}

// NewLinearTransform encodes the non-zero diagonals of matrix m (dim×dim)
// at the given level and scale. The input ciphertext must hold the vector
// replicated twice ([x | x | 0...]) so rotations wrap.
func NewLinearTransform(enc *Encoder, m [][]float64, level int, scale float64) (*LinearTransform, error) {
	dim := len(m)
	lt := &LinearTransform{Dim: dim, Diags: make(map[int]*Plaintext)}
	for d := 0; d < dim; d++ {
		diag := make([]float64, dim)
		zero := true
		for i := 0; i < dim; i++ {
			diag[i] = m[i][(i+d)%dim]
			if diag[i] != 0 {
				zero = false
			}
		}
		if zero {
			continue
		}
		pt, err := enc.EncodeReal(diag, level, scale)
		if err != nil {
			return nil, err
		}
		lt.Diags[d] = pt
	}
	return lt, nil
}

// Apply evaluates the transform with hoisted rotations: one decomposition
// plus |Diags| dyadic stages.
func (ev *Evaluator) Apply(lt *LinearTransform, ct *Ciphertext, gks *GaloisKeySet) (*Ciphertext, error) {
	steps := make([]int, 0, len(lt.Diags))
	for d := range lt.Diags {
		if d != 0 {
			steps = append(steps, d)
		}
	}
	rots, err := ev.RotateHoisted(ct, steps, gks)
	if err != nil {
		return nil, err
	}
	rots[0] = ct
	var acc *Ciphertext
	for d, pt := range lt.Diags {
		term, err := ev.MulPlain(rots[d], pt)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = term
			continue
		}
		if acc, err = ev.Add(acc, term); err != nil {
			return nil, err
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("ckks: transform has no non-zero diagonals")
	}
	return acc, nil
}

// EvaluatePoly computes Σ coeffs[i]·ct^i by Horner's rule with automatic
// scale management: each step multiplies, rescales, and encodes the next
// coefficient at the running scale. It consumes deg(p) levels and returns
// an error if the ciphertext has too few.
func (ev *Evaluator) EvaluatePoly(ct *Ciphertext, coeffs []float64, rlk *RelinearizationKey, enc *Encoder) (*Ciphertext, error) {
	deg := len(coeffs) - 1
	if deg < 1 {
		return nil, fmt.Errorf("ckks: polynomial must have degree >= 1")
	}
	if ct.Level < deg {
		return nil, fmt.Errorf("ckks: degree-%d evaluation needs %d levels, ciphertext has %d", deg, deg, ct.Level)
	}
	slots := enc.Slots()
	constVec := func(c float64) []float64 {
		v := make([]float64, slots)
		for i := range v {
			v[i] = c
		}
		return v
	}
	// acc = coeffs[deg] · ct (+ coeffs[deg-1]) then iterate.
	pt, err := enc.EncodeReal(constVec(coeffs[deg]), ct.Level, ct.Scale)
	if err != nil {
		return nil, err
	}
	// Encode the leading coefficient at the ciphertext's own scale so the
	// product scale is ct.Scale², then rescale back near ct.Scale.
	acc, err := ev.MulPlain(ct, pt)
	if err != nil {
		return nil, err
	}
	if acc, err = ev.Rescale(acc); err != nil {
		return nil, err
	}
	for i := deg - 1; i >= 0; i-- {
		cpt, err := enc.EncodeReal(constVec(coeffs[i]), acc.Level, acc.Scale)
		if err != nil {
			return nil, err
		}
		if acc, err = ev.AddPlain(acc, cpt); err != nil {
			return nil, err
		}
		if i == 0 {
			break
		}
		x, err := ev.DropLevel(ct, acc.Level)
		if err != nil {
			return nil, err
		}
		if acc, err = ev.MulRelin(acc, x, rlk); err != nil {
			return nil, err
		}
		if acc, err = ev.Rescale(acc); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// GenRotationKeysPow2 generates the logarithmic key set {±2^i} that
// RotateAny composes arbitrary steps from — the standard space/time
// tradeoff against one key per step.
func (kg *KeyGenerator) GenRotationKeysPow2(sk *SecretKey) *GaloisKeySet {
	slots := kg.params.Slots()
	var steps []int
	for s := 1; s < slots; s <<= 1 {
		steps = append(steps, s, -s)
	}
	return kg.GenGaloisKeySet(sk, steps, false)
}

// RotateAny rotates by an arbitrary step using only power-of-two keys,
// composing one rotation per set bit of the (normalized) step.
func (ev *Evaluator) RotateAny(ct *Ciphertext, step int, gks *GaloisKeySet) (*Ciphertext, error) {
	slots := ev.params.Slots()
	step = ((step % slots) + slots) % slots
	if step == 0 {
		return CopyOf(ct), nil
	}
	out := ct
	for bit := 0; 1<<bit <= step; bit++ {
		if step&(1<<bit) == 0 {
			continue
		}
		var err error
		out, err = ev.RotateLeft(out, 1<<bit, gks)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// EncodeCoeffs packs real values directly into polynomial coefficients
// (no canonical embedding): coefficient j becomes round(values[j]·scale).
// Homomorphic multiplication then computes negacyclic convolution of the
// value vectors instead of slot-wise products — the encoding integer/
// signal-processing workloads use.
func (e *Encoder) EncodeCoeffs(values []float64, level int, scale float64) (*Plaintext, error) {
	if len(values) > e.params.N {
		return nil, fmt.Errorf("ckks: %d values exceed %d coefficients", len(values), e.params.N)
	}
	if level < 0 || level > e.params.MaxLevel() {
		return nil, fmt.Errorf("ckks: level %d out of range", level)
	}
	ctx := e.params.RingQP
	pt := ctx.NewPoly(level + 1)
	for j, x := range values {
		v := x * scale
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) >= math.Exp2(62) {
			return nil, fmt.Errorf("ckks: coefficient %d out of range at scale %g", j, scale)
		}
		c := int64(math.Round(v))
		for i := 0; i <= level; i++ {
			pt.Coeffs[i][j] = ctx.Basis.ReduceInt64(c, i)
		}
	}
	ctx.NTT(pt)
	return &Plaintext{Value: pt, Scale: scale}, nil
}

// DecodeCoeffs recovers the coefficient-packed values.
func (e *Encoder) DecodeCoeffs(pt *Plaintext) []float64 {
	ctx := e.params.RingQP
	poly := ring.CopyOf(pt.Value)
	ctx.INTT(poly)
	basis := ctx.Basis
	if poly.Rows() != basis.K() {
		sub, err := basis.Sub(poly.Rows())
		if err != nil {
			panic(err)
		}
		basis = sub
	}
	res := make([]uint64, poly.Rows())
	out := make([]float64, e.params.N)
	for j := range out {
		for i := 0; i < poly.Rows(); i++ {
			res[i] = poly.Coeffs[i][j]
		}
		x := basis.ComposeCentered(res)
		f, _ := new(big.Float).SetInt(x).Float64()
		out[j] = f / pt.Scale
	}
	return out
}

// MeasureNoise returns log2 of the infinity norm of the decryption error
// ct − pt (in scaled units): the empirical noise a parameter designer
// compares against the modulus budget. Requires the true plaintext.
func MeasureNoise(params *Params, dec *Decryptor, ct *Ciphertext, pt *Plaintext) (float64, error) {
	got, err := dec.Decrypt(ct)
	if err != nil {
		return 0, err
	}
	ctx := params.RingQP
	rows := got.Value.Rows()
	diff := ctx.NewPoly(rows)
	ctx.Sub(got.Value, pt.Value.Resize(rows), diff)
	ctx.INTT(diff)
	norm := ctx.InfNormSigned(diff)
	if norm == 0 {
		return math.Inf(-1), nil
	}
	return math.Log2(norm), nil
}

// PrecisionStats summarizes slot-wise error between a decrypted result
// and its expected values — the noise-measurement utility a CKKS
// application uses to validate parameter choices.
type PrecisionStats struct {
	MaxErr  float64
	MeanErr float64
	// MinLogPrec is the worst-case -log2(err), i.e. bits of precision.
	MinLogPrec float64
}

// Precision compares decoded values against expectations.
func Precision(got, want []complex128) PrecisionStats {
	var stats PrecisionStats
	stats.MinLogPrec = math.Inf(1)
	var sum float64
	for i := range want {
		re := real(got[i]) - real(want[i])
		im := imag(got[i]) - imag(want[i])
		e := math.Hypot(re, im)
		sum += e
		if e > stats.MaxErr {
			stats.MaxErr = e
		}
	}
	stats.MeanErr = sum / float64(len(want))
	if stats.MaxErr > 0 {
		stats.MinLogPrec = -math.Log2(stats.MaxErr)
	}
	return stats
}
