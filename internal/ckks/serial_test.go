package ckks

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestParamsRoundTrip(t *testing.T) {
	params := MustParams(smallSpec)
	var buf bytes.Buffer
	if err := WriteParams(&buf, params); err != nil {
		t.Fatal(err)
	}
	got, err := ReadParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != params.N || got.P != params.P || got.LogScale != params.LogScale {
		t.Fatal("params fields differ")
	}
	for i := range params.Q {
		if got.Q[i] != params.Q[i] {
			t.Fatal("primes differ")
		}
	}
	// The reconstructed context must be functionally identical: encrypt
	// with the original, decrypt against the reconstruction.
	if got.RingQP.Basis.Q().Cmp(params.RingQP.Basis.Q()) != 0 {
		t.Fatal("modulus product differs")
	}
}

func TestCiphertextRoundTrip(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(30))
	v := randomComplex(rng, kit.params.Slots(), 1)
	pt, _ := kit.enc.Encode(v, kit.params.MaxLevel(), kit.params.DefaultScale())
	ct, _ := kit.encPk.Encrypt(pt)

	var buf bytes.Buffer
	if err := WriteCiphertext(&buf, ct); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCiphertext(&buf, kit.params)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scale != ct.Scale || got.Level != ct.Level || len(got.Polys) != len(ct.Polys) {
		t.Fatal("metadata differs")
	}
	for i := range ct.Polys {
		if !got.Polys[i].Equal(ct.Polys[i]) {
			t.Fatal("polynomials differ")
		}
	}
	// And it still decrypts.
	dec, err := kit.dec.Decrypt(got)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(kit.enc.Decode(dec), v); e > 1e-4 {
		t.Fatalf("decrypt-after-roundtrip error %g", e)
	}
}

func TestKeyRoundTrips(t *testing.T) {
	kit := newTestKit(t, smallSpec)

	var buf bytes.Buffer
	if err := WriteSecretKey(&buf, kit.sk); err != nil {
		t.Fatal(err)
	}
	sk2, err := ReadSecretKey(&buf, kit.params)
	if err != nil {
		t.Fatal(err)
	}
	if !sk2.Value.Equal(kit.sk.Value) {
		t.Fatal("secret key differs")
	}

	buf.Reset()
	if err := WritePublicKey(&buf, kit.pk); err != nil {
		t.Fatal(err)
	}
	pk2, err := ReadPublicKey(&buf, kit.params)
	if err != nil {
		t.Fatal(err)
	}
	if !pk2.A.Equal(kit.pk.A) || !pk2.B.Equal(kit.pk.B) {
		t.Fatal("public key differs")
	}

	buf.Reset()
	if err := WriteRelinearizationKey(&buf, kit.rlk); err != nil {
		t.Fatal(err)
	}
	rlk2, err := ReadRelinearizationKey(&buf, kit.params)
	if err != nil {
		t.Fatal(err)
	}
	for i := range kit.rlk.Digits {
		if !rlk2.Digits[i][0].Equal(kit.rlk.Digits[i][0]) || !rlk2.Digits[i][1].Equal(kit.rlk.Digits[i][1]) {
			t.Fatal("relinearization key differs")
		}
	}
	// The deserialized key must actually relinearize.
	rng := rand.New(rand.NewSource(31))
	v := randomComplex(rng, kit.params.Slots(), 1)
	pt, _ := kit.enc.Encode(v, kit.params.MaxLevel(), kit.params.DefaultScale())
	ct, _ := kit.encPk.Encrypt(pt)
	sq, err := kit.eval.MulRelin(ct, ct, rlk2)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := kit.dec.Decrypt(sq)
	got := kit.enc.Decode(dec)
	want := make([]complex128, len(v))
	for i := range v {
		want[i] = v[i] * v[i]
	}
	if e := maxErr(got, want); e > 1e-3 {
		t.Fatalf("relin with deserialized key error %g", e)
	}

	buf.Reset()
	gk := kit.kg.GenGaloisKey(kit.sk, 3)
	if err := WriteGaloisKey(&buf, gk); err != nil {
		t.Fatal(err)
	}
	gk2, err := ReadGaloisKey(&buf, kit.params)
	if err != nil {
		t.Fatal(err)
	}
	if gk2.GaloisElt != gk.GaloisElt {
		t.Fatal("galois element differs")
	}
}

func TestSerialCorruption(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	pt, _ := kit.enc.Encode([]complex128{1}, kit.params.MaxLevel(), kit.params.DefaultScale())
	ct, _ := kit.encPk.Encrypt(pt)
	var buf bytes.Buffer
	if err := WriteCiphertext(&buf, ct); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	if _, err := ReadCiphertext(bytes.NewReader(bad), kit.params); err == nil {
		t.Error("corrupted magic should fail")
	}
	// Wrong object kind (a params blob read as a ciphertext).
	var pbuf bytes.Buffer
	if err := WriteParams(&pbuf, kit.params); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCiphertext(bytes.NewReader(pbuf.Bytes()), kit.params); err == nil {
		t.Error("kind mismatch should fail")
	}
	// Truncated stream.
	if _, err := ReadCiphertext(bytes.NewReader(raw[:len(raw)/2]), kit.params); err == nil {
		t.Error("truncated stream should fail")
	}
	// Out-of-range residue.
	bad2 := append([]byte(nil), raw...)
	for i := len(bad2) - 8; i < len(bad2); i++ {
		bad2[i] = 0xff
	}
	if _, err := ReadCiphertext(bytes.NewReader(bad2), kit.params); err == nil {
		t.Error("out-of-range residue should fail")
	}
}

func TestParamsFromRawErrors(t *testing.T) {
	if _, err := ParamsFromRaw(1, []uint64{97}, 97, 30); err == nil {
		t.Error("bad logN should fail")
	}
	if _, err := ParamsFromRaw(12, []uint64{97}, 101, 30); err == nil {
		t.Error("non-NTT primes should fail")
	}
}
