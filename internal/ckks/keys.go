package ckks

import (
	"fmt"
	"sync"

	"heax/internal/ring"
	"heax/internal/uintmod"
)

// SecretKey is s ← χ in NTT form over the full QP basis.
type SecretKey struct {
	Value *ring.Poly
}

// PublicKey is pk = (b, a) = SymEnc(0, s) over QP in NTT form.
type PublicKey struct {
	B, A *ring.Poly
}

// SwitchingKey is ksk = (D0 | D1) of Section 3.4: one digit per
// ciphertext prime, each digit a pair of polynomials over the full QP
// basis in NTT form. Digit i encrypts g_i·s' where the RNS gadget g_i is
// P·π_i·[π_i^{-1}]_{p_i}: congruent to P modulo p_i and to 0 modulo every
// other prime (including P itself).
type SwitchingKey struct {
	// Digits[i] = (d_{i,0}, d_{i,1}).
	Digits [][2]*ring.Poly

	// shoup caches the per-coefficient Shoup constants of the digits —
	// the keys are the fixed operands of the key-switch inner loop, so
	// precomputing once turns every MAC into a fused lazy Shoup multiply.
	// Keys from KeyGenerator or the deserializer arrive with this
	// populated; hand-built keys get it on first use, guarded by
	// shoupOnce so one switching key may serve concurrent evaluator
	// calls.
	shoup     [][2]*ring.Poly
	shoupOnce sync.Once
}

// ensureShoup returns the digit Shoup tables, building them if absent.
// Safe for concurrent first use.
func (swk *SwitchingKey) ensureShoup(ctx *ring.Context) [][2]*ring.Poly {
	swk.shoupOnce.Do(func() {
		if swk.shoup != nil {
			return
		}
		shoup := make([][2]*ring.Poly, len(swk.Digits))
		for i, d := range swk.Digits {
			shoup[i] = [2]*ring.Poly{ctx.ShoupPoly(d[0]), ctx.ShoupPoly(d[1])}
		}
		swk.shoup = shoup
	})
	return swk.shoup
}

// RelinearizationKey switches s^2 → s (CKKS.RlkGen).
type RelinearizationKey struct {
	SwitchingKey
}

// GaloisKey switches s(X^g) → s for one Galois element (CKKS.GlkGen).
type GaloisKey struct {
	SwitchingKey
	GaloisElt uint64
}

// GaloisKeySet holds rotation keys by step plus an optional conjugation
// key.
type GaloisKeySet struct {
	Rotations map[int]*GaloisKey
	Conjugate *GaloisKey
}

// KeyGenerator derives all key material from a sampler and parameters.
type KeyGenerator struct {
	params  *Params
	sampler *ring.Sampler
}

// NewKeyGenerator creates a deterministic key generator (the seed fixes
// all randomness, which the tests rely on).
func NewKeyGenerator(params *Params, seed int64) *KeyGenerator {
	return &KeyGenerator{
		params:  params,
		sampler: ring.NewSampler(params.RingQP, seed),
	}
}

// GenSecretKey samples s ← χ (ternary) and stores it in NTT form.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	s := kg.sampler.Ternary(kg.params.QPRows())
	kg.params.RingQP.NTT(s)
	return &SecretKey{Value: s}
}

// GenPublicKey returns pk = (-a·s + e, a) over QP.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	ctx := kg.params.RingQP
	rows := kg.params.QPRows()
	a := kg.sampler.Uniform(rows)
	e := kg.sampler.Error(rows)
	ctx.NTT(e)
	b := ctx.NewPoly(rows)
	ctx.MulCoeffs(a, sk.Value, b)
	ctx.Sub(e, b, b) // b = e - a·s
	return &PublicKey{B: b, A: a}
}

// genSwitchingKey implements KskGen(s', s): for each digit i,
// (d_{i,0}, d_{i,1}) = (-a_i·s + e_i + g_i·s', a_i) over QP. Because
// g_i ≡ P (mod p_i) and ≡ 0 elsewhere, adding g_i·s' touches only RNS row
// i, where it adds [P]_{p_i}·s'. The key is filled in place (it carries
// a sync.Once and must not be copied).
func (kg *KeyGenerator) genSwitchingKey(sPrime, s *ring.Poly, swk *SwitchingKey) {
	ctx := kg.params.RingQP
	rows := kg.params.QPRows()
	k := kg.params.K()
	swk.Digits = make([][2]*ring.Poly, k)
	for i := 0; i < k; i++ {
		a := kg.sampler.Uniform(rows)
		e := kg.sampler.Error(rows)
		ctx.NTT(e)
		d0 := ctx.NewPoly(rows)
		ctx.MulCoeffs(a, s, d0)
		ctx.Sub(e, d0, d0) // d0 = e - a·s
		// Add g_i·s' on row i only.
		pi := ctx.Basis.Primes[i]
		pModPi := ctx.Basis.Mods[i].Reduce(kg.params.P)
		pShoup := uintmod.ShoupPrecomp(pModPi, pi)
		row := d0.Coeffs[i]
		sp := sPrime.Coeffs[i]
		for j := range row {
			row[j] = uintmod.AddMod(row[j], uintmod.MulRed(sp[j], pModPi, pShoup, pi), pi)
		}
		swk.Digits[i] = [2]*ring.Poly{d0, a}
	}
	swk.ensureShoup(ctx)
}

// GenSwitchingKey returns the key that re-encrypts ciphertexts under
// skFrom to ciphertexts under skTo (generic KskGen(s_from, s_to) — the
// primitive behind relinearization, rotation, and key rotation/re-keying
// in a multi-tenant cloud).
func (kg *KeyGenerator) GenSwitchingKey(skFrom, skTo *SecretKey) *SwitchingKey {
	swk := &SwitchingKey{}
	kg.genSwitchingKey(skFrom.Value, skTo.Value, swk)
	return swk
}

// GenRelinearizationKey returns rlk = KskGen(s², s).
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) *RelinearizationKey {
	ctx := kg.params.RingQP
	s2 := ctx.NewPoly(kg.params.QPRows())
	ctx.MulCoeffs(sk.Value, sk.Value, s2)
	rlk := &RelinearizationKey{}
	kg.genSwitchingKey(s2, sk.Value, &rlk.SwitchingKey)
	return rlk
}

// GenGaloisKey returns the key switching s(X^g) → s for the Galois
// element of the given rotation step (Section 3.4's GlkGen).
func (kg *KeyGenerator) GenGaloisKey(sk *SecretKey, step int) *GaloisKey {
	g := ring.GaloisElement(step, kg.params.N)
	return kg.genGaloisKeyForElt(sk, g)
}

// GenConjugationKey returns the key for complex conjugation (X → X^{2n-1}).
func (kg *KeyGenerator) GenConjugationKey(sk *SecretKey) *GaloisKey {
	return kg.genGaloisKeyForElt(sk, ring.GaloisConjugate(kg.params.N))
}

func (kg *KeyGenerator) genGaloisKeyForElt(sk *SecretKey, g uint64) *GaloisKey {
	ctx := kg.params.RingQP
	sG := ctx.NewPoly(kg.params.QPRows())
	ctx.AutomorphismNTT(sk.Value, ctx.AutomorphismNTTTable(g), sG)
	gk := &GaloisKey{GaloisElt: g}
	kg.genSwitchingKey(sG, sk.Value, &gk.SwitchingKey)
	return gk
}

// GenGaloisKeySet generates rotation keys for the given steps and,
// optionally, the conjugation key. Steps are normalized into
// [0, Slots()) first — step and step−Slots() are the same slot
// permutation — so equivalent requests share one key and a step that
// normalizes to 0 (the identity) generates none.
func (kg *KeyGenerator) GenGaloisKeySet(sk *SecretKey, steps []int, conjugate bool) *GaloisKeySet {
	set := &GaloisKeySet{Rotations: make(map[int]*GaloisKey, len(steps))}
	for _, s := range steps {
		norm := kg.params.NormalizeRotation(s)
		if norm == 0 {
			continue
		}
		if _, ok := set.Rotations[norm]; ok {
			continue
		}
		set.Rotations[norm] = kg.GenGaloisKey(sk, norm)
	}
	if conjugate {
		set.Conjugate = kg.GenConjugationKey(sk)
	}
	return set
}

// rotationKey fetches the key for a step, with a helpful error. The
// step must already be normalized into [0, Slots()); evaluator call
// sites go through Evaluator.rotationKeyFor, which normalizes.
func (g *GaloisKeySet) rotationKey(step int) (*GaloisKey, error) {
	if g == nil {
		return nil, fmt.Errorf("ckks: no Galois keys provided: %w", ErrKeyMissing)
	}
	k, ok := g.Rotations[step]
	if !ok {
		return nil, fmt.Errorf("ckks: no Galois key for rotation step %d: %w", step, ErrKeyMissing)
	}
	return k, nil
}
