package ckks

import (
	"math/rand"
	"testing"
)

// The second wave of *Into kernels (Sub, MulPlain, AddPlain, InnerSum,
// hoisted multi-rotation) must match their allocating forms bit for bit
// — they are the pooled back end compiled plans execute on.

func polysEqual(t *testing.T, name string, a, b *Ciphertext) {
	t.Helper()
	if a.Level != b.Level || len(a.Polys) != len(b.Polys) || !ScalesClose(a.Scale, b.Scale) {
		t.Fatalf("%s: shape/scale differs (level %d vs %d, degree %d vs %d, scale %g vs %g)",
			name, a.Level, b.Level, a.Degree(), b.Degree(), a.Scale, b.Scale)
	}
	for i := range a.Polys {
		if !a.Polys[i].Equal(b.Polys[i]) {
			t.Fatalf("%s: component %d differs", name, i)
		}
	}
}

func TestIntoSecondWaveMatchesAllocating(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(31))
	params := kit.params
	v1 := randomComplex(rng, params.Slots(), 1)
	v2 := randomComplex(rng, params.Slots(), 1)
	pt1, _ := kit.enc.Encode(v1, params.MaxLevel(), params.DefaultScale())
	pt2, _ := kit.enc.Encode(v2, params.MaxLevel(), params.DefaultScale())
	ct1, _ := kit.encPk.Encrypt(pt1)
	ct2, _ := kit.encPk.Encrypt(pt2)
	out, err := NewCiphertext(params, 1, params.MaxLevel(), 0)
	if err != nil {
		t.Fatal(err)
	}

	want, err := kit.eval.Sub(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	if err := kit.eval.SubInto(ct1, ct2, out); err != nil {
		t.Fatal(err)
	}
	polysEqual(t, "SubInto", want, out)

	// Sub with a degree-2 second operand exercises the negated-extra path
	// (the degree-1 operand carries the matching Δ² scale).
	deg2, err := kit.eval.Mul(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	sq1, err := kit.eval.MulPlain(ct1, pt2)
	if err != nil {
		t.Fatal(err)
	}
	want, err = kit.eval.Sub(sq1, deg2)
	if err != nil {
		t.Fatal(err)
	}
	out2, _ := NewCiphertext(params, 2, params.MaxLevel(), 0)
	if err := kit.eval.SubInto(sq1, deg2, out2); err != nil {
		t.Fatal(err)
	}
	polysEqual(t, "SubInto deg2", want, out2)

	want, err = kit.eval.MulPlain(ct1, pt2)
	if err != nil {
		t.Fatal(err)
	}
	if err := kit.eval.MulPlainInto(ct1, pt2, out); err != nil {
		t.Fatal(err)
	}
	polysEqual(t, "MulPlainInto", want, out)

	want, err = kit.eval.AddPlain(ct1, pt2)
	if err != nil {
		t.Fatal(err)
	}
	if err := kit.eval.AddPlainInto(ct1, pt2, out); err != nil {
		t.Fatal(err)
	}
	polysEqual(t, "AddPlainInto", want, out)

	// Aliased in-place forms.
	aliased := CopyOf(ct1)
	if err := kit.eval.MulPlainInto(aliased, pt2, aliased); err != nil {
		t.Fatal(err)
	}
	want, _ = kit.eval.MulPlain(ct1, pt2)
	polysEqual(t, "aliased MulPlainInto", want, aliased)

	gks := kit.kg.GenGaloisKeySet(kit.sk, []int{1, 2, 4}, false)
	want, err = kit.eval.InnerSum(ct1, 8, gks)
	if err != nil {
		t.Fatal(err)
	}
	if err := kit.eval.InnerSumInto(ct1, 8, gks, out); err != nil {
		t.Fatal(err)
	}
	polysEqual(t, "InnerSumInto", want, out)

	// A missing span key must fail before anything is written — out may
	// alias the input, which must come through unscathed.
	partial := kit.kg.GenGaloisKeySet(kit.sk, []int{2, 4}, false) // no step-1 key
	aliased2 := CopyOf(ct1)
	if err := kit.eval.InnerSumInto(aliased2, 8, partial, aliased2); err == nil {
		t.Fatal("InnerSumInto with a missing span key must fail")
	}
	polysEqual(t, "InnerSumInto failed-aliased input", ct1, aliased2)
}

func TestRotateHoistedIntoMatchesRotateHoisted(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(32))
	params := kit.params
	v := randomComplex(rng, params.Slots(), 1)
	pt, _ := kit.enc.Encode(v, params.MaxLevel(), params.DefaultScale())
	ct, _ := kit.encPk.Encrypt(pt)
	steps := []int{0, 1, 3, 7}
	gks := kit.kg.GenGaloisKeySet(kit.sk, steps[1:], false)

	want, err := kit.eval.RotateHoisted(ct, steps, gks)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([]*Ciphertext, len(steps))
	for i := range outs {
		outs[i], _ = NewCiphertext(params, 1, params.MaxLevel(), 0)
	}
	if err := kit.eval.RotateHoistedInto(ct, steps, gks, outs); err != nil {
		t.Fatal(err)
	}
	for i, s := range steps {
		polysEqual(t, "RotateHoistedInto", want[s], outs[i])
	}

	// A missing key fails before any output is touched.
	if err := kit.eval.RotateHoistedInto(ct, []int{99}, gks, outs[:1]); err == nil {
		t.Fatal("missing key must fail")
	}
	if err := kit.eval.RotateHoistedInto(ct, []int{1, 2}, gks, outs[:1]); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestScaleLadder(t *testing.T) {
	params := MustParams(smallSpec)
	ladder := params.ScaleLadder()
	if len(ladder) != params.K() {
		t.Fatalf("ladder length %d, want %d", len(ladder), params.K())
	}
	if ladder[params.MaxLevel()] != params.DefaultScale() {
		t.Fatal("top rung must be the default scale")
	}
	for l := params.MaxLevel(); l > 0; l-- {
		if got := ladder[l] * ladder[l] / float64(params.Q[l]); got != ladder[l-1] {
			t.Fatalf("rung %d: %g, want %g", l-1, ladder[l-1], got)
		}
		if ladder[l-1] < 1 {
			t.Fatalf("rung %d underflowed: %g", l-1, ladder[l-1])
		}
	}
}
