package ckks

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests: the scheme's homomorphisms must hold for random
// messages, random encryption randomness, and random slots — not just the
// fixed vectors of the unit tests. A shared kit keeps key generation out
// of the per-case cost.

var propKit *testKit

func getPropKit(t *testing.T) *testKit {
	t.Helper()
	if propKit == nil {
		propKit = newTestKit(t, smallSpec)
	}
	return propKit
}

// Additive homomorphism: Dec(Enc(a) + Enc(b)) ≈ a + b.
func TestQuickAdditiveHomomorphism(t *testing.T) {
	kit := getPropKit(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomComplex(rng, kit.params.Slots(), 1)
		b := randomComplex(rng, kit.params.Slots(), 1)
		pa, err := kit.enc.Encode(a, kit.params.MaxLevel(), kit.params.DefaultScale())
		if err != nil {
			return false
		}
		pb, err := kit.enc.Encode(b, kit.params.MaxLevel(), kit.params.DefaultScale())
		if err != nil {
			return false
		}
		ca, err := kit.encPk.Encrypt(pa)
		if err != nil {
			return false
		}
		cb, err := kit.encPk.Encrypt(pb)
		if err != nil {
			return false
		}
		sum, err := kit.eval.Add(ca, cb)
		if err != nil {
			return false
		}
		dec, err := kit.dec.Decrypt(sum)
		if err != nil {
			return false
		}
		got := kit.enc.Decode(dec)
		for i := range a {
			if d := got[i] - (a[i] + b[i]); real(d)*real(d)+imag(d)*imag(d) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Multiplicative homomorphism through relinearization and rescaling.
func TestQuickMultiplicativeHomomorphism(t *testing.T) {
	kit := getPropKit(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomComplex(rng, kit.params.Slots(), 1)
		b := randomComplex(rng, kit.params.Slots(), 1)
		pa, _ := kit.enc.Encode(a, kit.params.MaxLevel(), kit.params.DefaultScale())
		pb, _ := kit.enc.Encode(b, kit.params.MaxLevel(), kit.params.DefaultScale())
		ca, _ := kit.encPk.Encrypt(pa)
		cb, _ := kit.encPk.Encrypt(pb)
		prod, err := kit.eval.MulRelin(ca, cb, kit.rlk)
		if err != nil {
			return false
		}
		prod, err = kit.eval.Rescale(prod)
		if err != nil {
			return false
		}
		dec, err := kit.dec.Decrypt(prod)
		if err != nil {
			return false
		}
		got := kit.enc.Decode(dec)
		for i := range a {
			if d := got[i] - a[i]*b[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

// Rotation group laws: rot(rot(x, a), b) == rot(x, a+b), and a full orbit
// returns to the start.
func TestQuickRotationComposition(t *testing.T) {
	kit := getPropKit(t)
	slots := kit.params.Slots()
	gks := kit.kg.GenGaloisKeySet(kit.sk, []int{1, 2, 3}, false)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomComplex(rng, slots, 1)
		pt, _ := kit.enc.Encode(v, kit.params.MaxLevel(), kit.params.DefaultScale())
		ct, _ := kit.encPk.Encrypt(pt)
		r1, err := kit.eval.RotateLeft(ct, 1, gks)
		if err != nil {
			return false
		}
		r12, err := kit.eval.RotateLeft(r1, 2, gks)
		if err != nil {
			return false
		}
		r3, err := kit.eval.RotateLeft(ct, 3, gks)
		if err != nil {
			return false
		}
		d12, _ := kit.dec.Decrypt(r12)
		d3, _ := kit.dec.Decrypt(r3)
		g12 := kit.enc.Decode(d12)
		g3 := kit.enc.Decode(d3)
		for i := range g12 {
			if d := g12[i] - g3[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Error(err)
	}
}

// Conjugation is an involution.
func TestQuickConjugateInvolution(t *testing.T) {
	kit := getPropKit(t)
	gks := kit.kg.GenGaloisKeySet(kit.sk, nil, true)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomComplex(rng, kit.params.Slots(), 1)
		pt, _ := kit.enc.Encode(v, kit.params.MaxLevel(), kit.params.DefaultScale())
		ct, _ := kit.encPk.Encrypt(pt)
		c1, err := kit.eval.ConjugateSlots(ct, gks)
		if err != nil {
			return false
		}
		c2, err := kit.eval.ConjugateSlots(c1, gks)
		if err != nil {
			return false
		}
		dec, _ := kit.dec.Decrypt(c2)
		got := kit.enc.Decode(dec)
		for i := range v {
			if d := got[i] - v[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Error(err)
	}
}
