package ckks

import (
	"math"
	"math/rand"
	"testing"
)

func TestNegate(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(20))
	v := randomComplex(rng, kit.params.Slots(), 1)
	pt, _ := kit.enc.Encode(v, kit.params.MaxLevel(), kit.params.DefaultScale())
	ct, _ := kit.encPk.Encrypt(pt)
	neg := kit.eval.Negate(ct)
	dec, _ := kit.dec.Decrypt(neg)
	got := kit.enc.Decode(dec)
	want := make([]complex128, len(v))
	for i := range v {
		want[i] = -v[i]
	}
	if e := maxErr(got, want); e > 1e-4 {
		t.Fatalf("negate error %g", e)
	}
}

// Square must agree with Mul(ct, ct) exactly (same ring elements).
func TestSquareMatchesMul(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(21))
	v := randomComplex(rng, kit.params.Slots(), 1)
	pt, _ := kit.enc.Encode(v, kit.params.MaxLevel(), kit.params.DefaultScale())
	ct, _ := kit.encPk.Encrypt(pt)

	sq, err := kit.eval.Square(ct)
	if err != nil {
		t.Fatal(err)
	}
	mul, err := kit.eval.Mul(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sq.Polys {
		if !sq.Polys[i].Equal(mul.Polys[i]) {
			t.Fatalf("component %d differs between Square and Mul", i)
		}
	}
	if _, err := kit.eval.Square(sq); err == nil {
		t.Fatal("Square of degree-2 should fail")
	}
}

func TestAddConstMulConstInt(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(22))
	v := randomComplex(rng, kit.params.Slots(), 1)
	pt, _ := kit.enc.Encode(v, kit.params.MaxLevel(), kit.params.DefaultScale())
	ct, _ := kit.encPk.Encrypt(pt)

	plus, err := kit.eval.AddConst(ct, 2.5, kit.enc)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := kit.dec.Decrypt(plus)
	got := kit.enc.Decode(dec)
	want := make([]complex128, len(v))
	for i := range v {
		want[i] = v[i] + 2.5
	}
	if e := maxErr(got, want); e > 1e-4 {
		t.Fatalf("AddConst error %g", e)
	}

	tripled := kit.eval.MulConstInt(ct, -3)
	dec2, _ := kit.dec.Decrypt(tripled)
	got2 := kit.enc.Decode(dec2)
	for i := range v {
		want[i] = -3 * v[i]
	}
	if e := maxErr(got2, want); e > 1e-4 {
		t.Fatalf("MulConstInt error %g", e)
	}
	if tripled.Scale != ct.Scale || tripled.Level != ct.Level {
		t.Fatal("MulConstInt must preserve scale and level")
	}
}

// Hoisted rotation is not bit-identical to the plain path — the Galois
// automorphism does not commute with gadget decomposition over the
// integer lifts (digits differ by multiples of p_i, both are valid
// low-norm decompositions) — but both must decrypt to the same rotated
// message with comparable noise.
func TestRotateHoistedMatchesRotate(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(23))
	slots := kit.params.Slots()
	v := randomComplex(rng, slots, 1)
	pt, _ := kit.enc.Encode(v, kit.params.MaxLevel(), kit.params.DefaultScale())
	ct, _ := kit.encPk.Encrypt(pt)
	steps := []int{1, 3, 7}
	gks := kit.kg.GenGaloisKeySet(kit.sk, steps, false)

	hoisted, err := kit.eval.RotateHoisted(ct, append([]int{0}, steps...), gks)
	if err != nil {
		t.Fatal(err)
	}
	if !hoisted[0].Polys[0].Equal(ct.Polys[0]) {
		t.Fatal("step 0 must be a copy")
	}
	for _, s := range steps {
		plain, err := kit.eval.RotateLeft(ct, s, gks)
		if err != nil {
			t.Fatal(err)
		}
		decP, _ := kit.dec.Decrypt(plain)
		decH, _ := kit.dec.Decrypt(hoisted[s])
		gotP := kit.enc.Decode(decP)
		gotH := kit.enc.Decode(decH)
		want := make([]complex128, slots)
		for i := range want {
			want[i] = v[(i+s)%slots]
		}
		if e := maxErr(gotH, want); e > 1e-3 {
			t.Fatalf("step %d: hoisted rotation error %g", s, e)
		}
		if e := maxErr(gotH, gotP); e > 1e-3 {
			t.Fatalf("step %d: hoisted and plain rotations diverge by %g", s, e)
		}
	}
	// Missing key error path.
	if _, err := kit.eval.RotateHoisted(ct, []int{99}, gks); err == nil {
		t.Fatal("missing key should fail")
	}
	prod, _ := kit.eval.Mul(ct, ct)
	if _, err := kit.eval.RotateHoisted(prod, steps, gks); err == nil {
		t.Fatal("degree-2 input should fail")
	}
}

func TestInnerSum(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(24))
	slots := kit.params.Slots()
	v := randomComplex(rng, slots, 1)
	pt, _ := kit.enc.Encode(v, kit.params.MaxLevel(), kit.params.DefaultScale())
	ct, _ := kit.encPk.Encrypt(pt)
	n2 := 8
	gks := kit.kg.GenGaloisKeySet(kit.sk, []int{1, 2, 4}, false)

	sum, err := kit.eval.InnerSum(ct, n2, gks)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := kit.dec.Decrypt(sum)
	got := kit.enc.Decode(dec)
	want := make([]complex128, slots)
	for i := range want {
		var s complex128
		for j := 0; j < n2; j++ {
			s += v[(i+j)%slots]
		}
		want[i] = s
	}
	if e := maxErr(got, want); e > 1e-2 {
		t.Fatalf("InnerSum error %g", e)
	}
	if _, err := kit.eval.InnerSum(ct, 3, gks); err == nil {
		t.Fatal("non-power-of-two width should fail")
	}
}

func TestLinearTransform(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(25))
	dim := 8
	m := make([][]float64, dim)
	for i := range m {
		m[i] = make([]float64, dim)
		for j := range m[i] {
			m[i][j] = rng.Float64()*2 - 1
		}
	}
	x := make([]float64, dim)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	rep := make([]float64, 2*dim)
	copy(rep, x)
	copy(rep[dim:], x)
	pt, _ := kit.enc.EncodeReal(rep, kit.params.MaxLevel(), kit.params.DefaultScale())
	ct, _ := kit.encPk.Encrypt(pt)

	lt, err := NewLinearTransform(kit.enc, m, kit.params.MaxLevel(), kit.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	steps := make([]int, 0, dim-1)
	for dStep := 1; dStep < dim; dStep++ {
		steps = append(steps, dStep)
	}
	gks := kit.kg.GenGaloisKeySet(kit.sk, steps, false)
	y, err := kit.eval.Apply(lt, ct, gks)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := kit.dec.Decrypt(y)
	got := kit.enc.Decode(dec)
	for i := 0; i < dim; i++ {
		want := 0.0
		for j := 0; j < dim; j++ {
			want += m[i][j] * x[j]
		}
		if e := math.Abs(real(got[i]) - want); e > 1e-3 {
			t.Fatalf("row %d: error %g", i, e)
		}
	}
}

func TestLinearTransformZeroMatrix(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	zero := [][]float64{{0, 0}, {0, 0}}
	lt, err := NewLinearTransform(kit.enc, zero, kit.params.MaxLevel(), kit.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(lt.Diags) != 0 {
		t.Fatal("zero matrix should have no diagonals")
	}
	pt, _ := kit.enc.Encode([]complex128{1}, kit.params.MaxLevel(), kit.params.DefaultScale())
	ct, _ := kit.encPk.Encrypt(pt)
	if _, err := kit.eval.Apply(lt, ct, nil); err == nil {
		t.Fatal("empty transform should fail")
	}
}

func TestEvaluatePoly(t *testing.T) {
	kit := newTestKit(t, smallSpec)
	rng := rand.New(rand.NewSource(26))
	slots := kit.params.Slots()
	v := make([]complex128, slots)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, 0)
	}
	pt, _ := kit.enc.Encode(v, kit.params.MaxLevel(), kit.params.DefaultScale())
	ct, _ := kit.encPk.Encrypt(pt)

	// p(x) = 0.5 + 0.197x - 0.004x^3 (the logistic example's sigmoid).
	coeffs := []float64{0.5, 0.197, 0, -0.004}
	y, err := kit.eval.EvaluatePoly(ct, coeffs, kit.rlk, kit.enc)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := kit.dec.Decrypt(y)
	got := kit.enc.Decode(dec)
	want := make([]complex128, slots)
	for i := range v {
		x := real(v[i])
		want[i] = complex(0.5+0.197*x-0.004*x*x*x, 0)
	}
	if e := maxErr(got, want); e > 1e-2 {
		t.Fatalf("EvaluatePoly error %g", e)
	}

	// Error paths.
	if _, err := kit.eval.EvaluatePoly(ct, []float64{1}, kit.rlk, kit.enc); err == nil {
		t.Fatal("degree-0 should fail")
	}
	low, _ := kit.eval.DropLevel(ct, 1)
	if _, err := kit.eval.EvaluatePoly(low, []float64{1, 1, 1, 1, 1, 1}, kit.rlk, kit.enc); err == nil {
		t.Fatal("too few levels should fail")
	}
}

func TestPrecisionStats(t *testing.T) {
	got := []complex128{1.001, 2}
	want := []complex128{1, 2}
	s := Precision(got, want)
	if math.Abs(s.MaxErr-0.001) > 1e-12 {
		t.Fatalf("MaxErr = %g", s.MaxErr)
	}
	if s.MeanErr <= 0 || s.MeanErr > s.MaxErr {
		t.Fatalf("MeanErr = %g", s.MeanErr)
	}
	if s.MinLogPrec < 9.9 || s.MinLogPrec > 10 {
		t.Fatalf("MinLogPrec = %g", s.MinLogPrec)
	}
	exact := Precision(want, want)
	if !math.IsInf(exact.MinLogPrec, 1) {
		t.Fatal("exact match should have infinite precision")
	}
}
