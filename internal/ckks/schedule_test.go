package ckks

import (
	"math/rand"
	"sync"
	"testing"

	"heax/internal/ring"
)

// schedSpec is a small HEAX-shaped parameter set so the equivalence
// matrix stays fast; the full Table 2 sets are covered by
// TestPipelinedKeySwitchTable2.
var schedSpec = ParamSpec{Name: "sched-test", LogN: 10, QBits: []int{43, 40, 40, 40}, PBits: 46, LogScale: 40}

func schedKit(t testing.TB, spec ParamSpec) (*Params, *RelinearizationKey, *Evaluator) {
	t.Helper()
	params, err := NewParams(spec)
	if err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGenerator(params, 11)
	sk := kg.GenSecretKey()
	return params, kg.GenRelinearizationKey(sk), NewEvaluator(params)
}

func schedRandomPoly(ctx *ring.Context, rows int, rng *rand.Rand) *ring.Poly {
	p := ctx.NewPoly(rows)
	for i := 0; i < rows; i++ {
		prime := ctx.Basis.Primes[i]
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = rng.Uint64() % prime
		}
	}
	return p
}

// The pipelined tile scheduler must produce bit-identical key-switch
// results to the sequential oracle (SetWorkers(1)) at every level and
// several worker counts.
func TestPipelinedKeySwitchMatchesSequential(t *testing.T) {
	params, rlk, ev := schedKit(t, schedSpec)
	ctx := params.RingQP
	rng := rand.New(rand.NewSource(3))
	for level := 0; level <= params.MaxLevel(); level++ {
		c := schedRandomPoly(ctx, level+1, rng)
		ctx.SetWorkers(1)
		want0, want1 := ev.KeySwitchPoly(c, &rlk.SwitchingKey)
		for _, workers := range []int{2, 3, 8} {
			ctx.SetWorkers(workers)
			got0, got1 := ev.KeySwitchPoly(c, &rlk.SwitchingKey)
			if !got0.Equal(want0) || !got1.Equal(want1) {
				t.Fatalf("level %d workers %d: pipelined key switch differs from sequential oracle", level, workers)
			}
		}
		ctx.SetWorkers(1)
	}
}

// Same equivalence across every Table 2 parameter set at top level —
// the acceptance gate for the scheduler rewrite.
func TestPipelinedKeySwitchTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("full parameter sets skipped in -short mode")
	}
	for _, spec := range StandardSets {
		params, rlk, ev := schedKit(t, spec)
		ctx := params.RingQP
		rng := rand.New(rand.NewSource(5))
		c := schedRandomPoly(ctx, params.K(), rng)
		ctx.SetWorkers(1)
		want0, want1 := ev.KeySwitchPoly(c, &rlk.SwitchingKey)
		ctx.SetWorkers(4)
		got0, got1 := ev.KeySwitchPoly(c, &rlk.SwitchingKey)
		ctx.SetWorkers(1)
		if !got0.Equal(want0) || !got1.Equal(want1) {
			t.Fatalf("%s: pipelined key switch differs from sequential oracle", spec.Name)
		}
	}
}

// The hoisted paths (decomposition and MAC-over-decomposition) must also
// be worker-count invariant, including with an automorphism table.
func TestPipelinedHoistedMatchesSequential(t *testing.T) {
	params, rlk, ev := schedKit(t, schedSpec)
	ctx := params.RingQP
	rng := rand.New(rand.NewSource(9))
	c := schedRandomPoly(ctx, params.K(), rng)
	table := ctx.AutomorphismNTTTable(ring.GaloisElement(3, params.N))

	add := schedRandomPoly(ctx, params.K(), rng)

	ctx.SetWorkers(1)
	hdSeq := ev.DecomposeForKeySwitch(c)
	want0, want1 := ev.keySwitchHoisted(hdSeq, &rlk.SwitchingKey, table, add, nil)
	wantPlain0, wantPlain1 := ev.keySwitchHoisted(hdSeq, &rlk.SwitchingKey, nil, nil, nil)

	for _, workers := range []int{2, 8} {
		ctx.SetWorkers(workers)
		hd := ev.DecomposeForKeySwitch(c)
		for i := range hd.digits {
			if !hd.digits[i].Equal(hdSeq.digits[i]) {
				t.Fatalf("workers %d: hoisted decomposition digit %d differs", workers, i)
			}
		}
		got0, got1 := ev.keySwitchHoisted(hd, &rlk.SwitchingKey, table, add, nil)
		if !got0.Equal(want0) || !got1.Equal(want1) {
			t.Fatalf("workers %d: hoisted key switch (permuted, fused add) differs", workers)
		}
		got0, got1 = ev.keySwitchHoisted(hd, &rlk.SwitchingKey, nil, nil, nil)
		if !got0.Equal(wantPlain0) || !got1.Equal(wantPlain1) {
			t.Fatalf("workers %d: hoisted key switch differs", workers)
		}
	}
	ctx.SetWorkers(1)
}

// The fused MulRelin must agree bit-for-bit with Mul followed by
// Relinearize at every worker count.
func TestFusedMulRelinMatchesComposition(t *testing.T) {
	params, rlk, ev := schedKit(t, schedSpec)
	ctx := params.RingQP
	rng := rand.New(rand.NewSource(13))
	ct1 := &Ciphertext{
		Polys: []*ring.Poly{schedRandomPoly(ctx, params.K(), rng), schedRandomPoly(ctx, params.K(), rng)},
		Scale: params.DefaultScale(), Level: params.MaxLevel(),
	}
	ct2 := &Ciphertext{
		Polys: []*ring.Poly{schedRandomPoly(ctx, params.K(), rng), schedRandomPoly(ctx, params.K(), rng)},
		Scale: params.DefaultScale(), Level: params.MaxLevel(),
	}
	for _, workers := range []int{1, 4} {
		ctx.SetWorkers(workers)
		prod, err := ev.Mul(ct1, ct2)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ev.Relinearize(prod, rlk)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ev.MulRelin(ct1, ct2, rlk)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Polys[0].Equal(want.Polys[0]) || !got.Polys[1].Equal(want.Polys[1]) {
			t.Fatalf("workers %d: fused MulRelin differs from Mul+Relinearize", workers)
		}
		if got.Scale != want.Scale || got.Level != want.Level {
			t.Fatalf("workers %d: fused MulRelin metadata differs", workers)
		}
	}
	ctx.SetWorkers(1)
}

// SetWorkers(1) must take the degenerate sequential path for every
// evaluator entry point without touching the worker pool (this is also
// the configuration the BENCH baselines pin).
func TestDegenerateSingleWorker(t *testing.T) {
	params, rlk, ev := schedKit(t, schedSpec)
	ctx := params.RingQP
	ctx.SetWorkers(1)
	rng := rand.New(rand.NewSource(17))
	ct := &Ciphertext{
		Polys: []*ring.Poly{schedRandomPoly(ctx, params.K(), rng), schedRandomPoly(ctx, params.K(), rng)},
		Scale: params.DefaultScale(), Level: params.MaxLevel(),
	}
	out, err := ev.MulRelin(ct, ct, rlk)
	if err != nil {
		t.Fatal(err)
	}
	if out.Degree() != 1 || out.Level != params.MaxLevel() {
		t.Fatalf("degenerate MulRelin: degree %d level %d", out.Degree(), out.Level)
	}
	if _, err := ev.Rescale(out); err != nil {
		t.Fatal(err)
	}
}

// One Evaluator hammered from concurrent goroutines (the -race test of
// the satellite checklist): every goroutine must reproduce the
// single-threaded reference results bit for bit.
func TestEvaluatorConcurrentUse(t *testing.T) {
	params, rlk, ev := schedKit(t, schedSpec)
	ctx := params.RingQP
	rng := rand.New(rand.NewSource(23))
	c := schedRandomPoly(ctx, params.K(), rng)
	ct := &Ciphertext{
		Polys: []*ring.Poly{schedRandomPoly(ctx, params.K(), rng), schedRandomPoly(ctx, params.K(), rng)},
		Scale: params.DefaultScale(), Level: params.MaxLevel(),
	}
	ctx.SetWorkers(1)
	wantKS0, wantKS1 := ev.KeySwitchPoly(c, &rlk.SwitchingKey)
	wantMR, err := ev.MulRelin(ct, ct, rlk)
	if err != nil {
		t.Fatal(err)
	}
	ctx.SetWorkers(4)
	defer ctx.SetWorkers(1)

	const goroutines = 6
	const iters = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	wg.Add(goroutines)
	for gor := 0; gor < goroutines; gor++ {
		gor := gor
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				if gor%2 == 0 {
					ks0, ks1 := ev.KeySwitchPoly(c, &rlk.SwitchingKey)
					if !ks0.Equal(wantKS0) || !ks1.Equal(wantKS1) {
						errs <- errMismatch("KeySwitchPoly", gor, it)
						return
					}
				} else {
					mr, err := ev.MulRelin(ct, ct, rlk)
					if err != nil {
						errs <- err
						return
					}
					if !mr.Polys[0].Equal(wantMR.Polys[0]) || !mr.Polys[1].Equal(wantMR.Polys[1]) {
						errs <- errMismatch("MulRelin", gor, it)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct {
	op        string
	gor, iter int
}

func (e mismatchError) Error() string {
	return e.op + " result diverged under concurrency"
}

func errMismatch(op string, gor, iter int) error { return mismatchError{op, gor, iter} }

// ensureShoup must be safe for concurrent first use on a hand-built key.
func TestEnsureShoupConcurrent(t *testing.T) {
	params, rlk, _ := schedKit(t, schedSpec)
	// Strip the precomputed tables to simulate a hand-built key.
	bare := &SwitchingKey{Digits: rlk.Digits}
	var wg sync.WaitGroup
	results := make([][][2]*ring.Poly, 8)
	for i := range results {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = bare.ensureShoup(params.RingQP)
		}()
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if &results[i][0] != &results[0][0] {
			t.Fatal("concurrent ensureShoup built more than one table set")
		}
	}
}
