package circuits

import "errors"

// ErrInvalidArgument is the sentinel every constructor and builder in
// this package wraps when its input is unusable: degrees or dimensions
// out of range, non-finite values, malformed matrices. Branch with
// errors.Is; the message carries the specifics.
var ErrInvalidArgument = errors.New("circuits: invalid argument")
