package circuits_test

// Throughput of the two circuit generators once compiled to Plans:
// BSGS matvec (rotation-bound, exercises the hoisted batches) and
// Paterson–Stockmeyer polynomial evaluation (relin/rescale-bound).
// scripts/bench.sh records both into the benchmark snapshot.

import (
	"math/rand"
	"testing"

	"heax"
	"heax/circuits"
)

// BenchmarkCircuits_MatVec: 256×256 encrypted matrix-vector product on
// Set-A via the BSGS diagonal method — one hoisted baby batch plus the
// giant rotations per run.
func BenchmarkCircuits_MatVec(b *testing.B) {
	k := newKit(b, heax.SetA)
	rng := rand.New(rand.NewSource(11))
	const n = 256
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = rng.Float64()*2 - 1
		}
	}
	lt, err := circuits.FromRealMatrix(m)
	if err != nil {
		b.Fatal(err)
	}
	c := heax.NewCircuit()
	out, err := lt.Apply(c, c.Input("x"))
	if err != nil {
		b.Fatal(err)
	}
	c.Output("y", out)
	steps, err := c.RequiredRotations(k.params)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := c.Compile(k.params, k.keys(b, steps))
	if err != nil {
		b.Fatal(err)
	}
	xv := make([]float64, n)
	for i := range xv {
		xv[i] = rng.Float64()*2 - 1
	}
	x, err := circuits.ReplicateReal(xv, n, k.params.Slots())
	if err != nil {
		b.Fatal(err)
	}
	in := map[string]*heax.Ciphertext{"x": k.encrypt(b, x)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Run(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCircuits_ChebyshevEval: degree-3 Chebyshev exp on Set-B —
// the PS baby/giant structure end to end, no rotations.
func BenchmarkCircuits_ChebyshevEval(b *testing.B) {
	k := newKit(b, heax.SetB)
	p := circuits.Exp(3)
	c := heax.NewCircuit()
	out, err := p.Apply(c, c.Input("x"))
	if err != nil {
		b.Fatal(err)
	}
	c.Output("y", out)
	plan, err := c.Compile(k.params, k.keys(b, nil))
	if err != nil {
		b.Fatal(err)
	}
	xs := make([]complex128, 256)
	rng := rand.New(rand.NewSource(12))
	for i := range xs {
		xs[i] = complex(-1+2*rng.Float64(), 0)
	}
	in := map[string]*heax.Ciphertext{"x": k.encrypt(b, xs)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Run(in); err != nil {
			b.Fatal(err)
		}
	}
}
