package circuits

import (
	"fmt"
	"math"
	"sort"

	"heax"
)

// LinearTransform is an encrypted linear map in diagonal form: the
// slot-sized matrix whose d-th generalized diagonal is the period-
// Dimension tiling of Diagonals[d]. Applied to an input ciphertext x it
// computes, slot-wise,
//
//	y[i] = Σ_d tile(Diagonals[d])[i] · x[(i+d) mod slots]
//
// which realizes the two layouts encrypted ML needs:
//
//   - a dense n×n (or padded non-square) matrix×vector product — build
//     it with FromMatrix and encrypt the vector replicated with period
//     Dimension (see Replicate), so the cyclic rotations wrap inside
//     each replica;
//   - a block transform applied to every Dimension-sized block of the
//     slot vector at once — e.g. BatchedDot, which scores slots/n
//     samples against one weight vector with no replication at all.
//
// Apply emits baby-step/giant-step rotation structure: writing each
// diagonal index d = g·n1 + b, the baby rotations rot(x, b) are shared
// by every giant-step group,
//
//	y = Σ_g rot( Σ_b prerot(diag_{g·n1+b}, −g·n1) ⊙ rot(x, b), g·n1 )
//
// so a dimension-n transform needs at most n1 + n/n1 ≈ 2√n distinct
// rotations instead of n — and because every baby step rotates the same
// source ciphertext, Compile merges the whole baby group into one
// hoisted-decomposition batch.
type LinearTransform struct {
	// Dimension is the transform size n: a power of two, so the period
	// always divides the slot count of whatever parameter set the
	// circuit is later compiled for (Compile rejects n > slots).
	Dimension int
	// Diagonals maps a diagonal index (taken modulo Dimension) to its
	// values. Vectors shorter than Dimension are zero-padded; absent and
	// all-zero diagonals cost nothing.
	Diagonals map[int][]complex128
	// BabyDim overrides the baby-step count n1 (a power of two dividing
	// Dimension). Zero selects the n1 minimizing the number of distinct
	// rotations for the diagonals actually present.
	BabyDim int
}

// FromMatrix builds the transform computing y = m·x for an arbitrary
// rows×cols matrix: m is zero-padded to the next power-of-two dimension
// n ≥ max(rows, cols), so slots 0..rows-1 of the result hold m·x and
// the rest of each n-block holds zero. The input vector must be
// encrypted replicated with period n (Replicate).
func FromMatrix(m [][]complex128) (*LinearTransform, error) {
	rows := len(m)
	if rows == 0 {
		return nil, fmt.Errorf("circuits: FromMatrix: empty matrix: %w", ErrInvalidArgument)
	}
	cols := len(m[0])
	for i, r := range m {
		if len(r) != cols {
			return nil, fmt.Errorf("circuits: FromMatrix: row %d has %d columns, row 0 has %d: %w", i, len(r), cols, ErrInvalidArgument)
		}
	}
	if cols == 0 {
		return nil, fmt.Errorf("circuits: FromMatrix: empty rows: %w", ErrInvalidArgument)
	}
	n := nextPow2(max(rows, cols))
	diags := make(map[int][]complex128)
	for d := 0; d < n; d++ {
		var diag []complex128
		for i := 0; i < rows; i++ {
			j := (i + d) % n
			if j >= cols {
				continue
			}
			if v := m[i][j]; v != 0 {
				if diag == nil {
					diag = make([]complex128, n)
				}
				diag[i] = v
			}
		}
		if diag != nil {
			diags[d] = diag
		}
	}
	if len(diags) == 0 {
		// The zero matrix is a valid (degenerate) transform; keep an
		// explicit zero diagonal so Apply emits the zero vector.
		diags[0] = make([]complex128, n)
	}
	return &LinearTransform{Dimension: n, Diagonals: diags}, nil
}

// FromRealMatrix is FromMatrix for a real matrix.
func FromRealMatrix(m [][]float64) (*LinearTransform, error) {
	cm := make([][]complex128, len(m))
	for i, r := range m {
		cm[i] = make([]complex128, len(r))
		for j, v := range r {
			cm[i][j] = complex(v, 0)
		}
	}
	return FromMatrix(cm)
}

// BatchedDot builds the block transform scoring every Dimension-sized
// slot block against one weight vector: with n = nextPow2(len(w)), slot
// i of the result holds Σ_j w[j]·x[i+j] when i ≡ 0 (mod n) and zero
// otherwise. Packing one sample's features per block, a single
// ciphertext scores slots/n samples in one transform — the layout the
// logistic-regression example serves.
func BatchedDot(w []float64) (*LinearTransform, error) {
	if len(w) == 0 {
		return nil, fmt.Errorf("circuits: BatchedDot: empty weight vector: %w", ErrInvalidArgument)
	}
	n := nextPow2(len(w))
	diags := make(map[int][]complex128, len(w))
	for d, v := range w {
		if v == 0 {
			continue
		}
		diag := make([]complex128, n)
		diag[0] = complex(v, 0)
		diags[d] = diag
	}
	if len(diags) == 0 {
		diags[0] = make([]complex128, n)
	}
	return &LinearTransform{Dimension: n, Diagonals: diags}, nil
}

// Replicate lays out a length ≤ dim vector for a dimension-dim
// transform: zero-padded to dim and tiled across all slots, so every
// cyclic rotation by step < dim wraps inside each replica.
func Replicate(x []complex128, dim, slots int) ([]complex128, error) {
	if dim < 1 || dim&(dim-1) != 0 {
		return nil, fmt.Errorf("circuits: Replicate: dimension %d must be a power of two: %w", dim, ErrInvalidArgument)
	}
	if len(x) > dim {
		return nil, fmt.Errorf("circuits: Replicate: %d values exceed dimension %d: %w", len(x), dim, ErrInvalidArgument)
	}
	if slots < dim || slots%dim != 0 {
		return nil, fmt.Errorf("circuits: Replicate: dimension %d does not divide %d slots: %w", dim, slots, ErrInvalidArgument)
	}
	out := make([]complex128, slots)
	for i := range out {
		if j := i % dim; j < len(x) {
			out[i] = x[j]
		}
	}
	return out, nil
}

// ReplicateReal is Replicate for a real vector.
func ReplicateReal(x []float64, dim, slots int) ([]complex128, error) {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return Replicate(cx, dim, slots)
}

// bsgsPlan is the validated BSGS decomposition of a transform: the
// canonical nonzero diagonals grouped as d = g·n1 + b.
type bsgsPlan struct {
	n, n1 int
	// diags[d] is the dimension-length nonzero diagonal at canonical
	// index d ∈ [0, n).
	diags map[int][]complex128
	// order lists the canonical indices ascending, for deterministic
	// emission (the serve plan cache keys on the circuit's JSON bytes).
	order []int
}

func (lt *LinearTransform) plan() (*bsgsPlan, error) {
	n := lt.Dimension
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("circuits: LinearTransform: dimension %d must be a power of two: %w", n, ErrInvalidArgument)
	}
	if len(lt.Diagonals) == 0 {
		return nil, fmt.Errorf("circuits: LinearTransform: no diagonals: %w", ErrInvalidArgument)
	}
	p := &bsgsPlan{n: n, diags: make(map[int][]complex128, len(lt.Diagonals))}
	for d, vec := range lt.Diagonals {
		if len(vec) > n {
			return nil, fmt.Errorf("circuits: LinearTransform: diagonal %d has %d values, dimension is %d: %w", d, len(vec), n, ErrInvalidArgument)
		}
		cd := ((d % n) + n) % n
		if _, dup := p.diags[cd]; dup {
			return nil, fmt.Errorf("circuits: LinearTransform: diagonals %d and %d coincide modulo dimension %d: %w", d, cd, n, ErrInvalidArgument)
		}
		full := make([]complex128, n)
		zero := true
		for i, v := range vec {
			if !isFinite(v) {
				return nil, fmt.Errorf("circuits: LinearTransform: diagonal %d value %d is %g: %w", d, i, v, ErrInvalidArgument)
			}
			if v != 0 {
				zero = false
			}
			full[i] = v
		}
		if zero {
			continue
		}
		p.diags[cd] = full
	}
	for d := range p.diags {
		p.order = append(p.order, d)
	}
	sort.Ints(p.order)
	p.n1 = lt.BabyDim
	if p.n1 != 0 {
		if p.n1 < 1 || p.n1 > n || p.n1&(p.n1-1) != 0 {
			return nil, fmt.Errorf("circuits: LinearTransform: baby dimension %d must be a power of two dividing %d: %w", p.n1, n, ErrInvalidArgument)
		}
	} else {
		p.n1 = p.pickBabyDim()
	}
	return p, nil
}

// pickBabyDim chooses the n1 minimizing the number of distinct
// key-switched rotations (nonzero baby steps + nonzero giant steps) for
// the diagonals present, preferring larger n1 on ties — more babies
// means a bigger hoisted batch sharing one decomposition.
func (p *bsgsPlan) pickBabyDim() int {
	best, bestCost := p.n, math.MaxInt
	for n1 := 1; n1 <= p.n; n1 <<= 1 {
		babies := make(map[int]bool)
		giants := make(map[int]bool)
		for _, d := range p.order {
			if b := d % n1; b != 0 {
				babies[b] = true
			}
			if g := d - d%n1; g != 0 {
				giants[g] = true
			}
		}
		if cost := len(babies) + len(giants); cost <= bestCost {
			best, bestCost = n1, cost
		}
	}
	return best
}

// Rotations reports the distinct nonzero rotation steps Apply will
// emit, ascending — the Galois keys the transform alone needs. (For a
// whole circuit, heax.Circuit.RequiredRotations subsumes this.)
func (lt *LinearTransform) Rotations() ([]int, error) {
	p, err := lt.plan()
	if err != nil {
		return nil, err
	}
	need := make(map[int]bool)
	for _, d := range p.order {
		if b := d % p.n1; b != 0 {
			need[b] = true
		}
		if g := d - d%p.n1; g != 0 {
			need[g] = true
		}
	}
	steps := make([]int, 0, len(need))
	for s := range need {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	return steps, nil
}

// Apply emits the transform's BSGS dataflow into the circuit and
// returns the output node. The baby-step rotations share in as their
// source, so Compile hoists them into one decomposition batch; each
// giant-step group costs one further rotation. An all-zero transform
// degenerates to the zero vector.
func (lt *LinearTransform) Apply(c *heax.Circuit, in heax.Node) (heax.Node, error) {
	p, err := lt.plan()
	if err != nil {
		return heax.Node{}, err
	}
	if len(p.order) == 0 {
		// Every diagonal is zero: the result is the zero vector.
		return c.MulConst(in, 0), nil
	}
	// Baby-step rotations, built once and shared across giant groups.
	babies := make(map[int]heax.Node)
	for _, d := range p.order {
		if b := d % p.n1; b != 0 {
			if _, ok := babies[b]; !ok {
				babies[b] = c.Rotate(in, b)
			}
		}
	}
	babies[0] = in

	var acc heax.Node
	accSet := false
	for gi := 0; gi < len(p.order); {
		g := p.order[gi] - p.order[gi]%p.n1
		var inner heax.Node
		innerSet := false
		for ; gi < len(p.order) && p.order[gi]-p.order[gi]%p.n1 == g; gi++ {
			d := p.order[gi]
			term := c.MulPlainPeriodic(babies[d%p.n1], prerotate(p.diags[d], g, p.n))
			if !innerSet {
				inner, innerSet = term, true
			} else {
				inner = c.Add(inner, term)
			}
		}
		if g != 0 {
			inner = c.Rotate(inner, g)
		}
		if !accSet {
			acc, accSet = inner, true
		} else {
			acc = c.Add(acc, inner)
		}
	}
	return acc, nil
}

// prerotate rotates a diagonal right by k positions (rot_{-k}), the
// plaintext pre-rotation that lets the giant-step rotation be applied
// once to the whole inner sum: rot_k(prerot(v) ⊙ rot_b(x)) =
// v ⊙ rot_{k+b}(x) slot-for-slot.
func prerotate(v []complex128, k, n int) []complex128 {
	if k%n == 0 {
		return v
	}
	out := make([]complex128, n)
	for i := range out {
		out[i] = v[((i-k)%n+n)%n]
	}
	return out
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func isFinite(v complex128) bool {
	return !math.IsNaN(real(v)) && !math.IsInf(real(v), 0) &&
		!math.IsNaN(imag(v)) && !math.IsInf(imag(v), 0)
}
