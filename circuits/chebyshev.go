package circuits

import (
	"fmt"
	"math"

	"heax"
)

// MaxDegree bounds Polynomial degrees: the encrypted evaluator works in
// the monomial basis of the normalized variable, and converting
// Chebyshev coefficients grows them by up to 2^degree — beyond 31 the
// conversion would eat more float64 mantissa than CKKS noise leaves in
// the first place.
const MaxDegree = 31

// Polynomial is a polynomial approximation over [A, B] in Chebyshev
// form: p(x) = Σ_j Coeffs[j]·T_j(u) with u = (2x − A − B)/(B − A) the
// affine map of [A, B] onto [−1, 1]. Build one with Approximate (or the
// stock Sigmoid, Exp, Inverse), check it in the clear with Eval, and
// emit its encrypted evaluation with Apply.
type Polynomial struct {
	Coeffs []float64
	A, B   float64
}

// Approximate interpolates f at the degree+1 Chebyshev nodes of [a, b]
// — the near-minimax approximation whose error decays geometrically in
// the degree for analytic f. The returned polynomial carries exactly
// degree+1 Chebyshev coefficients.
func Approximate(f func(float64) float64, a, b float64, degree int) (Polynomial, error) {
	if degree < 0 || degree > MaxDegree {
		return Polynomial{}, fmt.Errorf("circuits: Approximate: degree %d out of range [0, %d]: %w", degree, MaxDegree, ErrInvalidArgument)
	}
	if !(a < b) || math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsNaN(a) || math.IsNaN(b) {
		return Polynomial{}, fmt.Errorf("circuits: Approximate: invalid interval [%g, %g]: %w", a, b, ErrInvalidArgument)
	}
	n := degree + 1
	mid, half := (a+b)/2, (b-a)/2
	fx := make([]float64, n)
	for k := 0; k < n; k++ {
		x := mid + half*math.Cos(math.Pi*(float64(k)+0.5)/float64(n))
		fx[k] = f(x)
		if math.IsNaN(fx[k]) || math.IsInf(fx[k], 0) {
			return Polynomial{}, fmt.Errorf("circuits: Approximate: f(%g) = %g: %w", x, fx[k], ErrInvalidArgument)
		}
	}
	coeffs := make([]float64, n)
	for j := 0; j < n; j++ {
		sum := 0.0
		for k := 0; k < n; k++ {
			sum += fx[k] * math.Cos(math.Pi*float64(j)*(float64(k)+0.5)/float64(n))
		}
		coeffs[j] = 2 / float64(n) * sum
	}
	coeffs[0] /= 2
	return Polynomial{Coeffs: coeffs, A: a, B: b}, nil
}

// Degree is the polynomial degree (ignoring trailing zero
// coefficients).
func (p Polynomial) Degree() int {
	d := len(p.Coeffs) - 1
	for d > 0 && p.Coeffs[d] == 0 {
		d--
	}
	return d
}

// Eval evaluates the polynomial at x by Clenshaw recurrence — the
// numerically stable cleartext oracle encrypted evaluations are tested
// against.
func (p Polynomial) Eval(x float64) float64 {
	u := (2*x - p.A - p.B) / (p.B - p.A)
	var b1, b2 float64
	for j := len(p.Coeffs) - 1; j >= 1; j-- {
		b1, b2 = 2*u*b1-b2+p.Coeffs[j], b1
	}
	if len(p.Coeffs) == 0 {
		return 0
	}
	return u*b1 - b2 + p.Coeffs[0]
}

// Apply emits the encrypted evaluation of p at the input node using a
// Paterson–Stockmeyer baby-step/giant-step scheme over the normalized
// variable u: baby powers u^2..u^(k−1) by balanced splitting, giant
// powers u^k, u^2k, ... by squaring, and the coefficient blocks
// combined by recursive halving — about √d + log₂ d relinearizations
// at multiplicative depth ⌈log₂ d⌉ + O(1) on the scale ladder, against
// the d−1 relinearizations and depth d of Horner's rule. All scale and
// level maintenance is left to Compile's inference.
//
// The approximation (and the CKKS noise bound) only holds for inputs
// inside [A, B]; slots outside it see the polynomial's unbounded
// extrapolation.
func (p Polynomial) Apply(c *heax.Circuit, in heax.Node) (heax.Node, error) {
	if len(p.Coeffs) == 0 {
		return heax.Node{}, fmt.Errorf("circuits: Polynomial: no coefficients: %w", ErrInvalidArgument)
	}
	if len(p.Coeffs)-1 > MaxDegree {
		return heax.Node{}, fmt.Errorf("circuits: Polynomial: degree %d exceeds %d: %w", len(p.Coeffs)-1, MaxDegree, ErrInvalidArgument)
	}
	if !(p.A < p.B) || math.IsInf(p.A, 0) || math.IsInf(p.B, 0) || math.IsNaN(p.A) || math.IsNaN(p.B) {
		return heax.Node{}, fmt.Errorf("circuits: Polynomial: invalid interval [%g, %g]: %w", p.A, p.B, ErrInvalidArgument)
	}
	for j, v := range p.Coeffs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return heax.Node{}, fmt.Errorf("circuits: Polynomial: coefficient %d is %g: %w", j, v, ErrInvalidArgument)
		}
	}
	// Chebyshev → monomial coefficients in u, trailing zeros trimmed.
	// Coefficients below 10⁻¹² of the largest are numerical zeros of the
	// interpolation (e.g. the even coefficients of an odd function like
	// the centered sigmoid) and are dropped: their contribution is far
	// below CKKS noise, and encoding them would trip the compiler's
	// ErrUnencodable guard.
	ms := dropNegligible(chebToMonomial(p.Coeffs[:p.Degree()+1]))
	s := 2 / (p.B - p.A)
	t := -(p.A + p.B) / (p.B - p.A)
	d := len(ms) - 1
	if d == 0 {
		// A constant: pin every slot to it (the MulConst 0 collapses the
		// input's contribution on the ladder).
		return c.AddConst(c.MulConst(in, 0), ms[0]), nil
	}
	if d == 1 {
		// Affine in x directly: m1·u + m0 = (m1·s)·x + (m1·t + m0).
		return c.AddConst(c.MulConst(in, ms[1]*s), ms[1]*t+ms[0]), nil
	}
	u := c.MulConst(in, s)
	if t != 0 {
		u = c.AddConst(u, t)
	}
	// Baby powers u^1..u^(k−1) by balanced splitting (depth ⌈log₂ j⌉);
	// unused ones are dead nodes Compile prunes.
	k := babyDim(d)
	pow := make([]heax.Node, k)
	pow[1] = u
	for j := 2; j < k; j++ {
		pow[j] = c.MulRelin(pow[(j+1)/2], pow[j/2])
	}
	// Giant powers u^k, u^2k, u^4k, ... up to the degree, by squaring.
	var giants []heax.Node
	g := c.MulRelin(half(pow, k), half(pow, k))
	for gk := k; gk <= d; gk <<= 1 {
		giants = append(giants, g)
		if gk<<1 <= d {
			g = c.MulRelin(g, g)
		}
	}
	ps := &psEval{c: c, pow: pow, giants: giants, k: k}
	node, isConst, cval := ps.eval(ms)
	if isConst {
		// Cannot happen for d ≥ 2 (the leading coefficient is nonzero),
		// but keep the degenerate path total.
		return c.AddConst(c.MulConst(in, 0), cval), nil
	}
	return node, nil
}

// half returns u^(k/2) for the first giant's squaring (k is a power of
// two ≥ 2, so k/2 is always a valid baby index).
func half(pow []heax.Node, k int) heax.Node { return pow[k/2] }

// babyDim picks the power-of-two baby count k ≈ √(d+1), balancing the
// k−2 baby relins against the ~d/k block combines.
func babyDim(d int) int {
	k := 2
	for k*k < d+1 {
		k <<= 1
	}
	return k
}

// psEval combines coefficient blocks by recursive halving: split the
// polynomial at the largest giant power ≤ its degree, so the combine
// tree has logarithmic depth instead of Horner's linear chain.
type psEval struct {
	c      *heax.Circuit
	pow    []heax.Node
	giants []heax.Node // giants[i] = u^(k·2^i)
	k      int
}

// eval returns the node computing Σ_j ms[j]·u^j, or (when every term
// with j ≥ 1 vanishes) the pure constant ms[0] for the caller to fold
// into an addition.
func (ps *psEval) eval(ms []float64) (node heax.Node, isConst bool, cval float64) {
	d := len(ms) - 1
	for d >= 0 && ms[d] == 0 {
		d--
	}
	if d < 0 {
		return heax.Node{}, true, 0
	}
	if d == 0 {
		return heax.Node{}, true, ms[0]
	}
	if d < ps.k {
		set := false
		for j := 1; j <= d; j++ {
			if ms[j] == 0 {
				continue
			}
			term := ps.c.MulConst(ps.pow[j], ms[j])
			if !set {
				node, set = term, true
			} else {
				node = ps.c.Add(node, term)
			}
		}
		if ms[0] != 0 {
			node = ps.c.AddConst(node, ms[0])
		}
		return node, false, 0
	}
	// Largest giant power k·2^i ≤ d; splitting there keeps the high half
	// strictly smaller, so the recursion halves the degree each level.
	i := 0
	for ps.k<<(i+1) <= d {
		i++
	}
	gk := ps.k << i
	hiN, hiConst, hiC := ps.eval(ms[gk:])
	loN, loConst, loC := ps.eval(ms[:gk])
	var hi heax.Node
	hiSet := false
	switch {
	case hiConst && hiC == 0:
		// High half vanished entirely; only the low half remains.
	case hiConst:
		hi, hiSet = ps.c.MulConst(ps.giants[i], hiC), true
	default:
		hi, hiSet = ps.c.MulRelin(hiN, ps.giants[i]), true
	}
	switch {
	case !hiSet && loConst:
		return heax.Node{}, true, loC
	case !hiSet:
		return loN, false, 0
	case loConst && loC == 0:
		return hi, false, 0
	case loConst:
		return ps.c.AddConst(hi, loC), false, 0
	default:
		return ps.c.Add(hi, loN), false, 0
	}
}

// dropNegligible zeroes coefficients smaller than 10⁻¹² of the largest
// magnitude and trims trailing zeros (keeping at least the constant
// term), so numerically-zero interpolation residue never reaches the
// encoder.
func dropNegligible(ms []float64) []float64 {
	mx := 0.0
	for _, v := range ms {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	for j, v := range ms {
		if math.Abs(v) < mx*1e-12 {
			ms[j] = 0
		}
	}
	for len(ms) > 1 && ms[len(ms)-1] == 0 {
		ms = ms[:len(ms)-1]
	}
	return ms
}

// chebToMonomial converts Chebyshev coefficients over u to monomial
// coefficients over u via the T_{j+1} = 2u·T_j − T_{j−1} recurrence.
func chebToMonomial(cheb []float64) []float64 {
	n := len(cheb)
	ms := make([]float64, n)
	tPrev := []float64{1}   // T_0
	tCur := []float64{0, 1} // T_1
	for j := 0; j < n; j++ {
		var tj []float64
		switch j {
		case 0:
			tj = tPrev
		case 1:
			tj = tCur
		default:
			tj = make([]float64, j+1)
			for i, v := range tCur {
				tj[i+1] += 2 * v
			}
			for i, v := range tPrev {
				tj[i] -= v
			}
			tPrev, tCur = tCur, tj
		}
		for i, v := range tj {
			ms[i] += cheb[j] * v
		}
	}
	for len(ms) > 1 && ms[len(ms)-1] == 0 {
		ms = ms[:len(ms)-1]
	}
	return ms
}

// Sigmoid is the ready-made Chebyshev approximation of the logistic
// function 1/(1+e^−x) over [−8, 8] — the activation of encrypted
// logistic-regression inference. Degree 7 stays within 3·10⁻² of the
// true sigmoid over the interval, degree 15 within 2·10⁻³ (see the
// package tests for the pinned bounds per degree). Panics if degree is
// outside [1, MaxDegree].
func Sigmoid(degree int) Polynomial {
	return mustApproximate("Sigmoid", func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }, -8, 8, degree)
}

// Exp is the ready-made Chebyshev approximation of eˣ over [−1, 1]
// (degree 7 is accurate to ~3·10⁻⁷). Panics if degree is outside
// [1, MaxDegree].
func Exp(degree int) Polynomial {
	return mustApproximate("Exp", math.Exp, -1, 1, degree)
}

// Inverse is the ready-made Chebyshev approximation of 1/x over
// [0.5, 2] — the homomorphic reciprocal for inputs normalized into that
// interval. Panics if degree is outside [1, MaxDegree].
func Inverse(degree int) Polynomial {
	return mustApproximate("Inverse", func(x float64) float64 { return 1 / x }, 0.5, 2, degree)
}

// mustApproximate backs the fixed-function constructors (Sigmoid,
// Inverse, ...), whose panic-on-bad-degree contract is documented on
// each of them: the degree is a literal at the call site, so misuse is
// a programming error caught on first run, never a request-path crash.
func mustApproximate(name string, f func(float64) float64, a, b float64, degree int) Polynomial {
	if degree < 1 || degree > MaxDegree {
		//heax:allowpanic documented constructor-misuse contract
		panic(fmt.Sprintf("circuits: %s: degree %d out of range [1, %d]", name, degree, MaxDegree))
	}
	p, err := Approximate(f, a, b, degree)
	if err != nil {
		//heax:allowpanic unreachable: fixed finite interval
		panic(fmt.Sprintf("circuits: %s: %v", name, err))
	}
	return p
}
