package circuits_test

// Polynomial tests: pinned max-error bounds for the stock Chebyshev
// approximations, encrypted Paterson–Stockmeyer evaluation against the
// Clenshaw oracle, and the relin/depth accounting the PS structure
// buys.

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"heax"
	"heax/circuits"
)

// TestApproximateBounds pins the sup-norm error of every stock
// approximation over its interval (sampled at 4001 points). The bounds
// are ~5% above the measured error, so a regression in the
// interpolation or the coefficient math trips them immediately.
func TestApproximateBounds(t *testing.T) {
	sigmoid := func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
	inverse := func(x float64) float64 { return 1 / x }
	cases := []struct {
		name  string
		p     circuits.Polynomial
		f     func(float64) float64
		bound float64
	}{
		{"Sigmoid/3", circuits.Sigmoid(3), sigmoid, 0.12},
		{"Sigmoid/5", circuits.Sigmoid(5), sigmoid, 0.065},
		{"Sigmoid/7", circuits.Sigmoid(7), sigmoid, 0.031},
		{"Sigmoid/9", circuits.Sigmoid(9), sigmoid, 0.015},
		{"Sigmoid/15", circuits.Sigmoid(15), sigmoid, 0.0015},
		{"Exp/3", circuits.Exp(3), math.Exp, 7e-3},
		{"Exp/5", circuits.Exp(5), math.Exp, 6e-5},
		{"Exp/7", circuits.Exp(7), math.Exp, 3e-7},
		{"Inverse/3", circuits.Inverse(3), inverse, 0.05},
		{"Inverse/5", circuits.Inverse(5), inverse, 6e-3},
		{"Inverse/7", circuits.Inverse(7), inverse, 7e-4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			worst := 0.0
			for i := 0; i <= 4000; i++ {
				x := tc.p.A + (tc.p.B-tc.p.A)*float64(i)/4000
				if e := math.Abs(tc.p.Eval(x) - tc.f(x)); e > worst {
					worst = e
				}
			}
			if worst > tc.bound {
				t.Fatalf("max |p - f| = %g over [%g, %g], pinned bound %g", worst, tc.p.A, tc.p.B, tc.bound)
			}
		})
	}
}

// TestApproximateExactOnPolynomials: interpolating a polynomial of
// degree ≤ the requested degree reproduces it to rounding error.
func TestApproximateExactOnPolynomials(t *testing.T) {
	f := func(x float64) float64 { return 2*x*x*x - x + 0.5 }
	p, err := circuits.Approximate(f, -2, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degree() != 3 {
		t.Fatalf("Degree() = %d, want 3", p.Degree())
	}
	for i := 0; i <= 100; i++ {
		x := -2 + 5*float64(i)/100
		if d := math.Abs(p.Eval(x) - f(x)); d > 1e-12 {
			t.Fatalf("x=%g: |p-f| = %g, want exact to rounding", x, d)
		}
	}
}

// TestEncryptedSigmoid evaluates the degree-7 sigmoid on Set-C and
// checks every used slot against the Clenshaw oracle — the scheme error
// of the whole PS pipeline (normalization, baby/giant powers, block
// combine) on top of CKKS noise.
func TestEncryptedSigmoid(t *testing.T) {
	k := newKit(t, heax.SetC)
	p := circuits.Sigmoid(7)

	c := heax.NewCircuit()
	out, err := p.Apply(c, c.Input("x"))
	if err != nil {
		t.Fatal(err)
	}
	c.Output("y", out)
	plan, err := c.Compile(k.params, k.keys(t, nil))
	if err != nil {
		t.Fatal(err)
	}

	// PS accounting for d=7, k=4: babies u²,u³ + giant u⁴ + one block
	// combine = exactly 4 relinearizations (Horner would need 6), no
	// rotations, and ⌈log₂ 7⌉+O(1) depth out of Set-C's 7 levels.
	counts := stepCounts(plan.Describe())
	if counts["MulRelin"] != 4 {
		t.Fatalf("degree-7 PS should relinearize exactly 4 times, got %d\n%s", counts["MulRelin"], plan.Describe())
	}
	if counts["Rotate"] != 0 || counts["RotateHoisted"] != 0 {
		t.Fatalf("polynomial evaluation should need no rotations:\n%s", plan.Describe())
	}
	lv, err := plan.OutputLevel("y")
	if err != nil {
		t.Fatal(err)
	}
	if lv < k.params.MaxLevel()-5 {
		t.Fatalf("degree-7 PS burned %d levels, want ≤ 5", k.params.MaxLevel()-lv)
	}

	rng := rand.New(rand.NewSource(3))
	n := 512
	xs := make([]complex128, n)
	for i := range xs {
		xs[i] = complex(-8+16*rng.Float64(), 0)
	}
	res, err := plan.Run(map[string]*heax.Ciphertext{"x": k.encrypt(t, xs)})
	if err != nil {
		t.Fatal(err)
	}
	got := k.decrypt(t, res["y"])
	for i := range xs {
		want := p.Eval(real(xs[i]))
		if d := math.Abs(real(got[i]) - want); d > 1e-4 {
			t.Fatalf("slot %d (x=%g): encrypted %g vs oracle %g (Δ=%g)", i, real(xs[i]), real(got[i]), want, d)
		}
	}
}

// TestEncryptedExpSetB: a degree-3 evaluation fits Set-B's 3-level
// chain.
func TestEncryptedExpSetB(t *testing.T) {
	k := newKit(t, heax.SetB)
	p := circuits.Exp(3)
	c := heax.NewCircuit()
	out, err := p.Apply(c, c.Input("x"))
	if err != nil {
		t.Fatal(err)
	}
	c.Output("y", out)
	plan, err := c.Compile(k.params, k.keys(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	n := 256
	xs := make([]complex128, n)
	for i := range xs {
		xs[i] = complex(-1+2*rng.Float64(), 0)
	}
	res, err := plan.Run(map[string]*heax.Ciphertext{"x": k.encrypt(t, xs)})
	if err != nil {
		t.Fatal(err)
	}
	got := k.decrypt(t, res["y"])
	for i := range xs {
		want := p.Eval(real(xs[i]))
		if d := math.Abs(real(got[i]) - want); d > 1e-4 {
			t.Fatalf("slot %d (x=%g): encrypted %g vs oracle %g (Δ=%g)", i, real(xs[i]), real(got[i]), want, d)
		}
	}
}

// TestEncryptedDegenerate: degree-0 and degree-1 polynomials compile to
// plain affine circuits (no relinearization at all) and still match the
// oracle.
func TestEncryptedDegenerate(t *testing.T) {
	k := newKit(t, heax.SetA)
	for _, tc := range []struct {
		name string
		p    circuits.Polynomial
	}{
		{"constant", circuits.Polynomial{Coeffs: []float64{0.75}, A: -1, B: 1}},
		{"affine", circuits.Polynomial{Coeffs: []float64{0.5, 2}, A: -1, B: 1}}, // 0.5 + 2u, u = x here
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := heax.NewCircuit()
			out, err := tc.p.Apply(c, c.Input("x"))
			if err != nil {
				t.Fatal(err)
			}
			c.Output("y", out)
			plan, err := c.Compile(k.params, k.keys(t, nil))
			if err != nil {
				t.Fatal(err)
			}
			if n := stepCounts(plan.Describe())["MulRelin"]; n != 0 {
				t.Fatalf("degenerate polynomial should not relinearize, got %d", n)
			}
			xs := []complex128{0.25, -0.5, 1}
			res, err := plan.Run(map[string]*heax.Ciphertext{"x": k.encrypt(t, xs)})
			if err != nil {
				t.Fatal(err)
			}
			got := k.decrypt(t, res["y"])
			for i := range xs {
				want := tc.p.Eval(real(xs[i]))
				if d := math.Abs(real(got[i]) - want); d > 2e-3 {
					t.Fatalf("slot %d: got %g, want %g", i, real(got[i]), want)
				}
			}
		})
	}
}

// TestPolynomialValidation pins the error paths of Apply and
// Approximate, and the stock constructors' panic contract.
func TestPolynomialValidation(t *testing.T) {
	c := heax.NewCircuit()
	in := c.Input("x")
	bad := []circuits.Polynomial{
		{},                                 // no coefficients
		{Coeffs: []float64{1}, A: 1, B: 1}, // empty interval
		{Coeffs: []float64{1}, A: 2, B: 1}, // inverted interval
		{Coeffs: []float64{1, math.NaN()}, A: 0, B: 1},              // NaN coefficient
		{Coeffs: make([]float64, circuits.MaxDegree+2), A: 0, B: 1}, // degree 32
	}
	bad[4].Coeffs[circuits.MaxDegree+1] = 1
	for i, p := range bad {
		if _, err := p.Apply(c, in); err == nil {
			t.Fatalf("case %d: Apply should fail for %+v", i, p)
		}
	}

	if _, err := circuits.Approximate(math.Exp, 0, 1, -1); err == nil {
		t.Fatal("Approximate with negative degree should fail")
	}
	if _, err := circuits.Approximate(math.Exp, 0, 1, circuits.MaxDegree+1); err == nil {
		t.Fatal("Approximate beyond MaxDegree should fail")
	}
	if _, err := circuits.Approximate(math.Exp, 1, 0, 3); err == nil {
		t.Fatal("Approximate with inverted interval should fail")
	}
	if _, err := circuits.Approximate(func(float64) float64 { return math.NaN() }, 0, 1, 3); err == nil {
		t.Fatal("Approximate of a NaN-valued f should fail")
	}

	for _, d := range []int{0, -1, circuits.MaxDegree + 1} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("Sigmoid(%d) should panic", d)
				} else if !strings.Contains(r.(string), "Sigmoid") {
					t.Fatalf("panic message %q should name the constructor", r)
				}
			}()
			circuits.Sigmoid(d)
		}()
	}
}
