package circuits_test

// LinearTransform property tests: encrypted matvec against a cleartext
// oracle across every standard parameter set and awkward shapes (1×1,
// prime, non-square), the BSGS structure assertions at full slot width,
// and the batched-dot layout.

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"heax"
	"heax/circuits"
)

// matvecTol is the per-slot error budget for an encrypted matvec on a
// given parameter set: Set-A's 2^30 scale leaves ~20 bits of mantissa
// after one plaintext product, the 2^40 sets far more.
func matvecTol(spec heax.ParamSpec) float64 {
	if spec.LogScale < 40 {
		return 2e-3
	}
	return 1e-5
}

// TestMatVecOracle runs random complex matrices of awkward shapes —
// including dimension 1, a prime dimension, and non-square tall/wide —
// through FromMatrix/Apply on every standard parameter set and checks
// every slot of the first two replica blocks against the cleartext
// product, padding included.
func TestMatVecOracle(t *testing.T) {
	dims := []struct{ rows, cols int }{{1, 1}, {7, 7}, {12, 5}, {3, 7}, {8, 8}}
	for _, spec := range heax.StandardSets {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			k := newKit(t, spec)
			rng := rand.New(rand.NewSource(42))
			for _, dim := range dims {
				m := make([][]complex128, dim.rows)
				for i := range m {
					m[i] = randComplex(rng, dim.cols)
				}
				x := randComplex(rng, dim.cols)

				lt, err := circuits.FromMatrix(m)
				if err != nil {
					t.Fatalf("%dx%d: FromMatrix: %v", dim.rows, dim.cols, err)
				}
				c := heax.NewCircuit()
				out, err := lt.Apply(c, c.Input("x"))
				if err != nil {
					t.Fatalf("%dx%d: Apply: %v", dim.rows, dim.cols, err)
				}
				c.Output("y", out)
				steps, err := c.RequiredRotations(k.params)
				if err != nil {
					t.Fatalf("%dx%d: RequiredRotations: %v", dim.rows, dim.cols, err)
				}
				plan, err := c.Compile(k.params, k.keys(t, steps))
				if err != nil {
					t.Fatalf("%dx%d: Compile: %v", dim.rows, dim.cols, err)
				}
				xs, err := circuits.Replicate(x, lt.Dimension, k.params.Slots())
				if err != nil {
					t.Fatalf("%dx%d: Replicate: %v", dim.rows, dim.cols, err)
				}
				res, err := plan.Run(map[string]*heax.Ciphertext{"x": k.encrypt(t, xs)})
				if err != nil {
					t.Fatalf("%dx%d: Run: %v", dim.rows, dim.cols, err)
				}
				got := k.decrypt(t, res["y"])

				n := lt.Dimension
				tol := matvecTol(spec)
				for block := 0; block < 2; block++ {
					for i := 0; i < n; i++ {
						var want complex128
						if i < dim.rows {
							for j := 0; j < dim.cols; j++ {
								want += m[i][j] * x[j]
							}
						}
						if d := cmplx.Abs(got[block*n+i] - want); d > tol {
							t.Fatalf("%dx%d on %s: block %d slot %d: |got-want| = %g (got %v, want %v)",
								dim.rows, dim.cols, spec.Name, block, i, d, got[block*n+i], want)
						}
					}
				}
			}
		})
	}
}

// TestMatVecDenseAtSlotWidth is the acceptance check for the BSGS
// structure: a dense transform at n = slots (2048 on Set-A, all 2048
// diagonals nonzero) must compile to O(√n) rotations — one hoisted
// baby-step batch plus n/n1 − 1 giant-step rotations — not O(n).
func TestMatVecDenseAtSlotWidth(t *testing.T) {
	k := newKit(t, heax.SetA)
	n := k.params.Slots() // 2048
	rng := rand.New(rand.NewSource(7))

	// Every diagonal nonzero, value in slot 0 only: the transform is
	// y[0] = Σ_d w_d·x[d], y[i≠0] = 0 — dense in diagonals (what BSGS
	// cost depends on) while keeping the plan's plaintext footprint
	// small.
	w := make([]complex128, n)
	diags := make(map[int][]complex128, n)
	for d := 0; d < n; d++ {
		w[d] = complex(2*rng.Float64()-1, 0)
		diags[d] = []complex128{w[d]}
	}
	lt := &circuits.LinearTransform{Dimension: n, Diagonals: diags}

	c := heax.NewCircuit()
	out, err := lt.Apply(c, c.Input("x"))
	if err != nil {
		t.Fatal(err)
	}
	c.Output("y", out)

	// √n accounting: the picker should land on n1 = 64 (63 babies + 31
	// giants = 94 distinct rotations for n = 2048).
	steps, err := c.RequiredRotations(k.params)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 94 {
		t.Fatalf("dense n=%d matvec needs %d distinct rotations, want 94 (n1+n/n1-2)", n, len(steps))
	}

	plan, err := c.Compile(k.params, k.keys(t, steps))
	if err != nil {
		t.Fatal(err)
	}
	counts := stepCounts(plan.Describe())
	if counts["RotateHoisted"] != 1 {
		t.Fatalf("baby-step rotations should compile to exactly 1 hoisted batch, got %d", counts["RotateHoisted"])
	}
	if counts["Rotate"] != 31 {
		t.Fatalf("giant-step rotations should compile to 31 single Rotate steps, got %d", counts["Rotate"])
	}

	x := randComplex(rng, n)
	res, err := plan.Run(map[string]*heax.Ciphertext{"x": k.encrypt(t, x)})
	if err != nil {
		t.Fatal(err)
	}
	got := k.decrypt(t, res["y"])
	var want complex128
	for d := 0; d < n; d++ {
		want += w[d] * x[d]
	}
	// The dot product sums 2048 terms, so allow the per-slot budget
	// scaled by √n noise growth.
	if d := cmplx.Abs(got[0] - want); d > 0.05 {
		t.Fatalf("slot 0: |got-want| = %g (got %v, want %v)", d, got[0], want)
	}
	for _, i := range []int{1, 17, n - 1} {
		if d := cmplx.Abs(got[i]); d > 0.05 {
			t.Fatalf("slot %d should be ~0, got %v", i, got[i])
		}
	}
}

// TestBatchedDot scores slots/8 samples against one weight vector in a
// single transform and checks both the values and the rotation set the
// n1 picker selects.
func TestBatchedDot(t *testing.T) {
	k := newKit(t, heax.SetA)
	rng := rand.New(rand.NewSource(11))
	w := make([]float64, 8)
	for i := range w {
		w[i] = 2*rng.Float64() - 1
	}
	lt, err := circuits.BatchedDot(w)
	if err != nil {
		t.Fatal(err)
	}
	if lt.Dimension != 8 {
		t.Fatalf("BatchedDot dimension = %d, want 8", lt.Dimension)
	}
	// All 8 diagonals present: the picker should choose n1 = 4 (babies
	// 1,2,3 + giant 4), beating n1 = 1 or 8 (7 rotations each).
	rots, err := lt.Rotations()
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2, 3, 4}; !equalInts(rots, want) {
		t.Fatalf("Rotations() = %v, want %v", rots, want)
	}

	c := heax.NewCircuit()
	out, err := lt.Apply(c, c.Input("x"))
	if err != nil {
		t.Fatal(err)
	}
	c.Output("scores", out)
	steps, err := c.RequiredRotations(k.params)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(steps, rots) {
		t.Fatalf("RequiredRotations = %v, want %v", steps, rots)
	}
	plan, err := c.Compile(k.params, k.keys(t, steps))
	if err != nil {
		t.Fatal(err)
	}

	// One sample's features per 8-slot block, no replication.
	slots := k.params.Slots()
	x := make([]complex128, slots)
	for i := range x {
		x[i] = complex(2*rng.Float64()-1, 0)
	}
	res, err := plan.Run(map[string]*heax.Ciphertext{"x": k.encrypt(t, x)})
	if err != nil {
		t.Fatal(err)
	}
	got := k.decrypt(t, res["scores"])
	for s := 0; s < 16; s++ { // first 16 samples
		base := s * 8
		var want complex128
		for j := 0; j < 8; j++ {
			want += complex(w[j], 0) * x[base+j]
		}
		if d := cmplx.Abs(got[base] - want); d > 2e-3 {
			t.Fatalf("sample %d: |got-want| = %g", s, d)
		}
		for j := 1; j < 8; j++ {
			if d := cmplx.Abs(got[base+j]); d > 2e-3 {
				t.Fatalf("sample %d slot %d should be ~0, got %v", s, j, got[base+j])
			}
		}
	}
}

// TestZeroTransform: the all-zero matrix is a valid transform that
// degenerates to the zero vector (and needs no rotation keys at all).
func TestZeroTransform(t *testing.T) {
	k := newKit(t, heax.SetA)
	lt, err := circuits.FromRealMatrix([][]float64{{0, 0}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	rots, err := lt.Rotations()
	if err != nil {
		t.Fatal(err)
	}
	if len(rots) != 0 {
		t.Fatalf("zero transform Rotations() = %v, want none", rots)
	}
	c := heax.NewCircuit()
	out, err := lt.Apply(c, c.Input("x"))
	if err != nil {
		t.Fatal(err)
	}
	c.Output("y", out)
	plan, err := c.Compile(k.params, k.keys(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	xs, err := circuits.ReplicateReal([]float64{3, -4}, lt.Dimension, k.params.Slots())
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Run(map[string]*heax.Ciphertext{"x": k.encrypt(t, xs)})
	if err != nil {
		t.Fatal(err)
	}
	got := k.decrypt(t, res["y"])
	for i := 0; i < 8; i++ {
		if math.Abs(real(got[i])) > 2e-3 || math.Abs(imag(got[i])) > 2e-3 {
			t.Fatalf("slot %d of zero transform = %v, want ~0", i, got[i])
		}
	}
}

// TestLinearTransformValidation pins the error paths of the
// constructors, the BSGS planner and Replicate.
func TestLinearTransformValidation(t *testing.T) {
	if _, err := circuits.FromMatrix(nil); err == nil {
		t.Fatal("FromMatrix(nil) should fail")
	}
	if _, err := circuits.FromMatrix([][]complex128{{}}); err == nil {
		t.Fatal("FromMatrix with empty rows should fail")
	}
	if _, err := circuits.FromMatrix([][]complex128{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix should fail")
	}
	if _, err := circuits.BatchedDot(nil); err == nil {
		t.Fatal("BatchedDot(nil) should fail")
	}

	bad := []circuits.LinearTransform{
		{Dimension: 3, Diagonals: map[int][]complex128{0: {1}}},             // non-pow2 dim
		{Dimension: 0, Diagonals: map[int][]complex128{0: {1}}},             // zero dim
		{Dimension: 4, Diagonals: nil},                                      // no diagonals
		{Dimension: 4, Diagonals: map[int][]complex128{0: {1, 2, 3, 4, 5}}}, // oversize diagonal
		{Dimension: 4, Diagonals: map[int][]complex128{1: {1}, 5: {2}}},     // 1 ≡ 5 mod 4
		{Dimension: 4, Diagonals: map[int][]complex128{0: {cmplx.Inf()}}},   // non-finite value
		{Dimension: 4, Diagonals: map[int][]complex128{1: {1}}, BabyDim: 3}, // bad BabyDim
		{Dimension: 4, Diagonals: map[int][]complex128{1: {1}}, BabyDim: 8}, // BabyDim > dim
		{Dimension: 4, Diagonals: map[int][]complex128{0: {complex(math.NaN(), 0)}}},
	}
	for i, lt := range bad {
		lt := lt
		if _, err := lt.Rotations(); err == nil {
			t.Fatalf("case %d: Rotations should fail for %+v", i, lt)
		}
		c := heax.NewCircuit()
		if _, err := lt.Apply(c, c.Input("x")); err == nil {
			t.Fatalf("case %d: Apply should fail", i)
		}
	}

	// Negative diagonal indices are canonicalized modulo the dimension.
	lt := circuits.LinearTransform{Dimension: 8, Diagonals: map[int][]complex128{-1: {1}}}
	rots, err := lt.Rotations()
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(rots, []int{7}) {
		t.Fatalf("diagonal -1 mod 8: Rotations() = %v, want [7]", rots)
	}

	if _, err := circuits.Replicate(nil, 3, 8); err == nil {
		t.Fatal("Replicate with non-pow2 dim should fail")
	}
	if _, err := circuits.Replicate(make([]complex128, 5), 4, 8); err == nil {
		t.Fatal("Replicate with oversize vector should fail")
	}
	if _, err := circuits.Replicate(make([]complex128, 4), 16, 8); err == nil {
		t.Fatal("Replicate with dim > slots should fail")
	}

	got, err := circuits.ReplicateReal([]float64{1, 2, 3}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{1, 2, 3, 0, 1, 2, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Replicate layout slot %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestBabyDimOverride: an explicit BabyDim changes the rotation set as
// documented (n1 = 1 degenerates to one rotation per diagonal).
func TestBabyDimOverride(t *testing.T) {
	diags := map[int][]complex128{}
	for d := 0; d < 8; d++ {
		diags[d] = []complex128{1}
	}
	lt := circuits.LinearTransform{Dimension: 8, Diagonals: diags, BabyDim: 1}
	rots, err := lt.Rotations()
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(rots, []int{1, 2, 3, 4, 5, 6, 7}) {
		t.Fatalf("BabyDim=1 Rotations() = %v, want all giants", rots)
	}
	lt.BabyDim = 8
	rots, err = lt.Rotations()
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(rots, []int{1, 2, 3, 4, 5, 6, 7}) {
		t.Fatalf("BabyDim=8 Rotations() = %v, want all babies", rots)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
