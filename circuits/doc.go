// Package circuits is the reusable high-level circuit library above the
// heax compiler: generators that emit heax.Circuit DAGs for the two
// workhorse primitives of encrypted machine learning, structured so the
// compiler's rotation hoisting and level inference do the expensive
// bookkeeping.
//
// LinearTransform evaluates an encrypted matrix×vector product by the
// diagonal method with baby-step/giant-step rotation structure: a
// dimension-n transform costs about √n + √n key-switched rotations
// instead of n, and the baby-step rotations all share the input
// ciphertext as their source, so Compile collapses them into a single
// hoisted-decomposition batch (Halevi–Shoup hoisting — the per-digit
// decompose of Algorithm 7 is paid once for the whole group, the
// HEAAN-Demystified host-side win HEAX exploits in hardware).
//
// Polynomial evaluates a polynomial approximation of a nonlinear
// function — built by Chebyshev interpolation with Approximate, or
// taken off the shelf with Sigmoid, Exp and Inverse — using a
// Paterson–Stockmeyer/BSGS scheme that reaches multiplicative depth
// ⌈log₂ d⌉ + O(1) with about √d + log₂ d relinearizations, so a
// degree-7 sigmoid fits the Set-C modulus chain with room for a linear
// layer in front of it.
//
// Both generators only build the symbolic DAG; levels, scales, rescales
// and rotation batching are inferred by heax.Circuit.Compile, and
// heax.Circuit.RequiredRotations reports exactly the Galois keys the
// result needs.
package circuits
