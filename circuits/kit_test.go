package circuits_test

// Shared per-parameter-set test fixture. Parameter realization (prime
// search + ring contexts) is the expensive part, so kits are cached for
// the whole package run; evaluation keys are generated per test from
// the exact rotation set the circuit under test reports.

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"heax"
)

type kit struct {
	params    *heax.Params
	kg        *heax.KeyGenerator
	sk        *heax.SecretKey
	enc       *heax.Encoder
	encryptor *heax.Encryptor
	decryptor *heax.Decryptor
}

var (
	kitMu  sync.Mutex
	kitMap = map[string]*kit{}
)

func newKit(t testing.TB, spec heax.ParamSpec) *kit {
	t.Helper()
	kitMu.Lock()
	defer kitMu.Unlock()
	if k, ok := kitMap[spec.Name]; ok {
		return k
	}
	params, err := heax.NewParams(spec)
	if err != nil {
		t.Fatal(err)
	}
	kg := heax.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	k := &kit{
		params:    params,
		kg:        kg,
		sk:        sk,
		enc:       heax.NewEncoder(params),
		encryptor: heax.NewEncryptor(params, pk, 2),
		decryptor: heax.NewDecryptor(params, sk),
	}
	kitMap[spec.Name] = k
	return k
}

// keys generates an evaluation key set with the given Galois steps (and
// always a relinearization key).
func (k *kit) keys(t testing.TB, steps []int) *heax.EvaluationKeySet {
	t.Helper()
	return heax.GenEvaluationKeys(k.kg, k.sk, steps, false)
}

func (k *kit) encrypt(t testing.TB, vals []complex128) *heax.Ciphertext {
	t.Helper()
	pt, err := k.enc.Encode(vals, k.params.MaxLevel(), k.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := k.encryptor.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func (k *kit) decrypt(t testing.TB, ct *heax.Ciphertext) []complex128 {
	t.Helper()
	pt, err := k.decryptor.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	return k.enc.Decode(pt)
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
	}
	return v
}

// stepCounts tallies Plan.Describe lines by step kind name.
func stepCounts(desc string) map[string]int {
	counts := make(map[string]int)
	for _, line := range strings.Split(desc, "\n") {
		f := strings.Fields(line)
		if len(f) >= 2 {
			counts[f[1]]++
		}
	}
	return counts
}
