package circuits_test

// Regression tests for ErrInvalidArgument: every argument rejection in
// the public constructors is branchable with errors.Is.

import (
	"errors"
	"math"
	"testing"

	"heax/circuits"
)

func TestApproximateWrapsErrInvalidArgument(t *testing.T) {
	id := func(x float64) float64 { return x }
	cases := map[string]func() error{
		"negative degree": func() error {
			_, err := circuits.Approximate(id, -1, 1, -1)
			return err
		},
		"degree over cap": func() error {
			_, err := circuits.Approximate(id, -1, 1, circuits.MaxDegree+1)
			return err
		},
		"empty interval": func() error {
			_, err := circuits.Approximate(id, 1, 1, 3)
			return err
		},
		"non-finite interval": func() error {
			_, err := circuits.Approximate(id, math.Inf(-1), 1, 3)
			return err
		},
		"non-finite sample": func() error {
			_, err := circuits.Approximate(math.Log, -1, 1, 3)
			return err
		},
	}
	for name, run := range cases {
		if err := run(); !errors.Is(err, circuits.ErrInvalidArgument) {
			t.Errorf("%s: %v, want ErrInvalidArgument", name, err)
		}
	}
}

func TestFromMatrixWrapsErrInvalidArgument(t *testing.T) {
	cases := map[string][][]complex128{
		"empty matrix": {},
		"empty rows":   {{}},
		"ragged rows":  {{1, 2}, {3}},
	}
	for name, m := range cases {
		if _, err := circuits.FromMatrix(m); !errors.Is(err, circuits.ErrInvalidArgument) {
			t.Errorf("%s: %v, want ErrInvalidArgument", name, err)
		}
	}
}
