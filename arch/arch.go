// Package arch exports the HEAX hardware model behind the paper's
// evaluation: FPGA board descriptions and resource fitting, the
// KeySwitch architecture generator (Table 5), full-design resource and
// memory planning (Table 6, Section 5.1), closed-form throughput
// (Tables 7-8), the cycle-level pipeline simulator (Figure 6), the
// functional hardware simulator cross-checked bit-for-bit against the
// software evaluator, and the PCIe/DRAM transfer model (Section 5.2).
//
// It is a stable façade over the internal model packages so that
// out-of-tree tools — like the cmd/heax-arch explorer and the
// examples/hwpipeline walkthrough — can drive the architecture
// generator without reaching into internals.
package arch

import (
	"heax/internal/core"
	"heax/internal/hwsim"
	"heax/internal/ring"
	"heax/internal/xfer"
)

// Board describes an FPGA board's resource envelope.
type Board = core.Board

// Resources is an FPGA resource vector (ALMs, DSPs, BRAM, ...).
type Resources = core.Resources

// ParamSet is the hardware-facing shape of an HE parameter set: ring
// degree and RNS component count.
type ParamSet = core.ParamSet

// KeySwitchArch is a generated KeySwitch architecture: core counts per
// module as in Table 5.
type KeySwitchArch = core.KeySwitchArch

// Design is a full HEAX design: board + parameter set + architecture.
type Design = core.Design

// MemoryInventory is the Section 5.1 on-chip/DRAM memory plan.
type MemoryInventory = core.MemoryInventory

// Perf computes closed-form operation throughputs for a design.
type Perf = core.Perf

// PipelineConfig configures the cycle-level KeySwitch pipeline
// simulator; PipelineReport is its result.
type (
	PipelineConfig = hwsim.PipelineConfig
	PipelineReport = hwsim.PipelineReport
)

// KeySwitchSim is the functional hardware simulator: it runs Algorithm 7
// module by module (INTT0 → NTT0 → DyadMult → INTT1 → NTT1 → MS) and is
// cross-checked bit-for-bit against Evaluator.KeySwitchPoly.
type KeySwitchSim = hwsim.KeySwitchSim

// DRAMStreamReport quantifies whether DRAM bandwidth sustains key
// streaming for a design.
type DRAMStreamReport = xfer.DRAMStreamReport

// The evaluated FPGA boards (Table 1) and parameter shapes (Table 2).
var (
	BoardArria10   = core.BoardArria10
	BoardStratix10 = core.BoardStratix10
	Boards         = core.Boards
	ParamSetA      = core.ParamSetA
	ParamSetB      = core.ParamSetB
	ParamSetC      = core.ParamSetC
	ParamSets      = core.ParamSets
)

// BoardByName resolves "Arria10" or "Stratix10".
func BoardByName(name string) (Board, error) { return core.BoardByName(name) }

// GenerateArch derives the KeySwitch architecture for a board and
// parameter shape with no manual tuning (the paper's Table 5 workflow).
func GenerateArch(b Board, set ParamSet) (KeySwitchArch, error) { return core.GenerateArch(b, set) }

// DeriveArch derives the architecture for an explicit INTT0 core count.
func DeriveArch(b Board, set ParamSet, ncINTT0 int) KeySwitchArch {
	return core.DeriveArch(b, set, ncINTT0)
}

// NewDesign assembles a full design from its parts.
func NewDesign(b Board, set ParamSet, a KeySwitchArch) *Design { return core.NewDesign(b, set, a) }

// StandardDesign generates the architecture for (board, set) and wraps
// it in a design.
func StandardDesign(b Board, set ParamSet) (*Design, error) { return core.StandardDesign(b, set) }

// KskBits is the switching-key footprint in bits for a parameter shape.
func KskBits(set ParamSet) int { return core.KskBits(set) }

// NewKeySwitchSim builds the functional hardware simulator over a ring
// context (obtained from Params.RingQP).
func NewKeySwitchSim(ctx *ring.Context, a KeySwitchArch) *KeySwitchSim {
	return hwsim.NewKeySwitchSim(ctx, a)
}

// SimulateKeySwitchPipeline streams ops back-to-back KeySwitch
// operations through the cycle-level pipeline model and reports the
// steady-state initiation interval and per-module utilization.
func SimulateKeySwitchPipeline(cfg PipelineConfig, ops int, trace bool) PipelineReport {
	return hwsim.SimulateKeySwitchPipeline(cfg, ops, trace)
}

// RenderGantt renders a traced pipeline report as a Figure-6-style
// occupancy chart.
func RenderGantt(r PipelineReport, bucket int64, maxCols int) string {
	return hwsim.RenderGantt(r, bucket, maxCols)
}

// DRAMStreaming checks a design's key-streaming feasibility against its
// board's DRAM bandwidth.
func DRAMStreaming(d *Design) DRAMStreamReport { return xfer.DRAMStreaming(d) }
