package heax_test

import (
	"fmt"
	"log"

	"heax"
)

// Example_quickstart is the README's quickstart, compiled and output-
// checked by go test so the documented snippet can never drift from the
// real API: encrypt two vectors, multiply them homomorphically with a
// key-bound evaluator, rescale, decrypt.
func Example_quickstart() {
	params, err := heax.NewParams(heax.SetA)
	if err != nil {
		log.Fatal(err)
	}

	kg := heax.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	evk := heax.GenEvaluationKeys(kg, sk, nil, false)

	enc := heax.NewEncoder(params)
	encryptor := heax.NewEncryptor(params, pk, 2)
	decryptor := heax.NewDecryptor(params, sk)
	eval := heax.NewEvaluator(params, evk)

	encrypt := func(vals []float64) *heax.Ciphertext {
		pt, err := enc.EncodeReal(vals, params.MaxLevel(), params.DefaultScale())
		if err != nil {
			log.Fatal(err)
		}
		ct, err := encryptor.Encrypt(pt)
		if err != nil {
			log.Fatal(err)
		}
		return ct
	}
	x := encrypt([]float64{1.5, -2.0, 3.25})
	y := encrypt([]float64{2.0, 0.5, -1.0})

	// x ⊙ y, relinearized with the bound key, then rescaled.
	prod, err := eval.MulRelin(x, y)
	if err != nil {
		log.Fatal(err)
	}
	if prod, err = eval.Rescale(prod); err != nil {
		log.Fatal(err)
	}

	pt, err := decryptor.Decrypt(prod)
	if err != nil {
		log.Fatal(err)
	}
	vals := enc.Decode(pt)
	for i := 0; i < 3; i++ {
		fmt.Printf("%.3f ", real(vals[i]))
	}
	fmt.Println()
	// Output:
	// 3.000 -1.000 -3.250
}
