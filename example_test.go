package heax_test

import (
	"fmt"
	"log"

	"heax"
)

// Example_quickstart is the README's quickstart, compiled and output-
// checked by go test so the documented snippet can never drift from the
// real API: encrypt two vectors, multiply them homomorphically with a
// key-bound evaluator, rescale, decrypt.
func Example_quickstart() {
	params, err := heax.NewParams(heax.SetA)
	if err != nil {
		log.Fatal(err)
	}

	kg := heax.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	evk := heax.GenEvaluationKeys(kg, sk, nil, false)

	enc := heax.NewEncoder(params)
	encryptor := heax.NewEncryptor(params, pk, 2)
	decryptor := heax.NewDecryptor(params, sk)
	eval := heax.NewEvaluator(params, evk)

	encrypt := func(vals []float64) *heax.Ciphertext {
		pt, err := enc.EncodeReal(vals, params.MaxLevel(), params.DefaultScale())
		if err != nil {
			log.Fatal(err)
		}
		ct, err := encryptor.Encrypt(pt)
		if err != nil {
			log.Fatal(err)
		}
		return ct
	}
	x := encrypt([]float64{1.5, -2.0, 3.25})
	y := encrypt([]float64{2.0, 0.5, -1.0})

	// x ⊙ y, relinearized with the bound key, then rescaled.
	prod, err := eval.MulRelin(x, y)
	if err != nil {
		log.Fatal(err)
	}
	if prod, err = eval.Rescale(prod); err != nil {
		log.Fatal(err)
	}

	pt, err := decryptor.Decrypt(prod)
	if err != nil {
		log.Fatal(err)
	}
	vals := enc.Decode(pt)
	for i := 0; i < 3; i++ {
		fmt.Printf("%.3f ", real(vals[i]))
	}
	fmt.Println()
	// Output:
	// 3.000 -1.000 -3.250
}

// Example_circuit is the README's compile-once / run-many quickstart,
// output-checked by go test: declare the dataflow symbolically — no
// Rescale, no Relinearize, no level bookkeeping — compile it, and run
// encrypted batches through the plan.
func Example_circuit() {
	params, err := heax.NewParams(heax.SetA)
	if err != nil {
		log.Fatal(err)
	}

	kg := heax.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	evk := heax.GenEvaluationKeys(kg, sk, nil, false)

	enc := heax.NewEncoder(params)
	encryptor := heax.NewEncryptor(params, pk, 2)
	decryptor := heax.NewDecryptor(params, sk)

	// Build: y = x0 · x1 + 0.5, written with zero maintenance ops.
	c := heax.NewCircuit()
	prod := c.MulRelin(c.Input("x0"), c.Input("x1"))
	c.Output("y", c.AddConst(prod, 0.5))

	// Compile: scale/level inference, rescale insertion, CSE, hoisting.
	plan, err := c.Compile(params, evk)
	if err != nil {
		log.Fatal(err)
	}

	// Run: the immutable plan serves any number of input sets.
	encrypt := func(vals []float64) *heax.Ciphertext {
		pt, err := enc.EncodeReal(vals, params.MaxLevel(), params.DefaultScale())
		if err != nil {
			log.Fatal(err)
		}
		ct, err := encryptor.Encrypt(pt)
		if err != nil {
			log.Fatal(err)
		}
		return ct
	}
	out, err := plan.Run(map[string]*heax.Ciphertext{
		"x0": encrypt([]float64{1.5, -2.0, 3.25}),
		"x1": encrypt([]float64{2.0, 0.5, -1.0}),
	})
	if err != nil {
		log.Fatal(err)
	}

	pt, err := decryptor.Decrypt(out["y"])
	if err != nil {
		log.Fatal(err)
	}
	vals := enc.Decode(pt)
	for i := 0; i < 3; i++ {
		fmt.Printf("%.3f ", real(vals[i]))
	}
	fmt.Println()
	// Output:
	// 3.500 -0.500 -2.750
}
