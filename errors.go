package heax

import (
	"errors"

	"heax/internal/ckks"
)

// Sentinel errors. Every error the evaluation and serialization APIs
// return wraps exactly one of these; branch with errors.Is rather than
// matching message strings.
var (
	// ErrScaleMismatch: addition on operands whose scales differ beyond
	// floating-point noise (CKKS addition on mismatched scales silently
	// corrupts results).
	ErrScaleMismatch = ckks.ErrScaleMismatch
	// ErrLevelMismatch: a level-shape violation — rescaling at level 0,
	// dropping to an out-of-range level, or an *Into output whose
	// components cannot hold the result's level.
	ErrLevelMismatch = ckks.ErrLevelMismatch
	// ErrDegreeMismatch: an operand's ciphertext degree is not what the
	// operation requires.
	ErrDegreeMismatch = ckks.ErrDegreeMismatch
	// ErrKeyMissing: the bound EvaluationKeySet lacks the key the
	// operation needs (relinearization key, Galois key for a step, or
	// conjugation key).
	ErrKeyMissing = ckks.ErrKeyMissing
	// ErrCorrupt: a serialized blob failed structural validation.
	ErrCorrupt = ckks.ErrCorrupt
	// ErrInternal: an invariant the library owns was violated — most
	// notably a kernel panic recovered by the plan executor. The
	// operation that hit it fails with this typed error; concurrent
	// runs and the process keep going (crash-only serving depends on a
	// panic poisoning one request, not the daemon).
	ErrInternal = errors.New("heax: internal error")
	// ErrUnencodable: a nonzero plaintext payload (MulConst, AddConst,
	// MulPlain, ...) whose every coefficient rounds to zero at the scale
	// inference assigned — e.g. a constant below the ladder scale's
	// precision. Encoding it would silently turn the operation into
	// ⊙0 / +0, so Compile rejects the circuit instead.
	ErrUnencodable = errors.New("heax: plaintext payload not representable at the assigned scale")
	// ErrInvalidCircuit: the circuit handed to Compile is structurally
	// unusable — no outputs, or a payload shape the parameters cannot
	// encode (a periodic payload that does not divide the slot count,
	// more plaintext values than slots).
	ErrInvalidCircuit = errors.New("heax: invalid circuit")
	// ErrUnknownOutput: the requested output name is not one the plan
	// (or run result) defines.
	ErrUnknownOutput = errors.New("heax: unknown output")
	// ErrInputMissing: a Run call did not bind every input the compiled
	// circuit declares.
	ErrInputMissing = errors.New("heax: plan input missing")
)
