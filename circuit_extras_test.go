package heax_test

// Satellite coverage for the circuit front-end: the RequiredRotations
// key report (normalization, dedup, InnerSum spans, dead-node pruning),
// the ErrUnencodable guard on constants too small for the assigned
// scale, and the JSON round trip of complex and periodic payloads.

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"heax"
)

// TestRequiredRotations: the report must match what Compile will look
// up — normalized, deduplicated, sorted, with InnerSum's power-of-two
// spans included and unreachable rotations excluded.
func TestRequiredRotations(t *testing.T) {
	k := newAPIKit(t)
	slots := k.params.Slots()

	c := heax.NewCircuit()
	x := c.Input("x")
	a := c.Rotate(x, 1)
	b := c.Rotate(x, 1+2*slots) // normalizes to 1: same key as a
	neg := c.Rotate(x, -1)      // normalizes to slots-1
	idt := c.Rotate(x, slots)   // normalizes to 0: no key at all
	dead := c.Rotate(x, 5)      // feeds no output
	_ = dead
	sum := c.InnerSum(c.Add(c.Add(a, b), c.Add(neg, idt)), 8) // spans 4, 2, 1
	c.Output("y", sum)

	steps, err := c.RequiredRotations(k.params)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, slots - 1}
	if len(steps) != len(want) {
		t.Fatalf("RequiredRotations = %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("RequiredRotations = %v, want %v", steps, want)
		}
	}

	// The reported set is exactly sufficient: keys for it compile the
	// circuit, and the full set is demanded (dropping one fails).
	kg := heax.NewKeyGenerator(k.params, 1)
	sk := kg.GenSecretKey()
	if _, err := c.Compile(k.params, heax.GenEvaluationKeys(kg, sk, steps, false)); err != nil {
		t.Fatalf("compile with the reported key set: %v", err)
	}
	if _, err := c.Compile(k.params, heax.GenEvaluationKeys(kg, sk, steps[1:], false)); !errors.Is(err, heax.ErrKeyMissing) {
		t.Fatalf("compile without rotation key 1: got %v, want ErrKeyMissing", err)
	}

	// A rotation-free circuit reports an empty set.
	c2 := heax.NewCircuit()
	c2.Output("y", c2.MulConst(c2.Input("x"), 2))
	if steps, err := c2.RequiredRotations(k.params); err != nil || len(steps) != 0 {
		t.Fatalf("rotation-free circuit: got %v, %v", steps, err)
	}

	// No outputs is an error, mirroring Compile.
	c3 := heax.NewCircuit()
	c3.Input("x")
	if _, err := c3.RequiredRotations(k.params); err == nil {
		t.Fatal("RequiredRotations on an output-less circuit should fail")
	}
}

// TestUnencodableConstants pins the typed error for constants whose
// magnitude is below the assigned scale's precision — previously they
// encoded to the zero plaintext and silently annihilated the operand.
func TestUnencodableConstants(t *testing.T) {
	k := newAPIKit(t)
	for _, tc := range []struct {
		name  string
		build func(c *heax.Circuit, x heax.Node) heax.Node
	}{
		{"MulConst", func(c *heax.Circuit, x heax.Node) heax.Node { return c.MulConst(x, 1e-30) }},
		{"AddConst", func(c *heax.Circuit, x heax.Node) heax.Node { return c.AddConst(x, 1e-30) }},
		{"MulPlain", func(c *heax.Circuit, x heax.Node) heax.Node { return c.MulPlain(x, []float64{1e-30, -1e-31}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := heax.NewCircuit()
			c.Output("y", tc.build(c, c.Input("x")))
			_, err := c.Compile(k.params, k.evk)
			if !errors.Is(err, heax.ErrUnencodable) {
				t.Fatalf("got %v, want ErrUnencodable", err)
			}
		})
	}

	// A true zero payload is a valid (if degenerate) circuit, not an
	// encoding failure: y = 0·x must compile and decrypt to zero.
	c := heax.NewCircuit()
	c.Output("y", c.MulConst(c.Input("x"), 0))
	plan, err := c.Compile(k.params, k.evk)
	if err != nil {
		t.Fatalf("MulConst(x, 0): %v", err)
	}
	out, err := plan.Run(map[string]*heax.Ciphertext{"x": k.encrypt(t, []float64{1, -2, 3})})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range k.decodeReal(t, out["y"], 3) {
		if math.Abs(v) > 1e-6 {
			t.Fatalf("slot %d of 0·x decrypted to %g", i, v)
		}
	}
}

// TestCircuitJSONComplexPayloads: complex and periodic payloads survive
// the wire format, and circuits without them keep the original byte
// layout (no values_im / periodic keys), so cached plan IDs from
// earlier releases stay valid.
func TestCircuitJSONComplexPayloads(t *testing.T) {
	k := newAPIKit(t)

	c := heax.NewCircuit()
	x := c.Input("x")
	lhs := c.MulPlainComplex(x, []complex128{1 + 2i, -0.5i})
	rhs := c.AddPlainPeriodic(c.MulPlainPeriodic(x, []complex128{2i, 1}), []complex128{0.25, -1i})
	c.Output("y", c.Add(lhs, rhs))

	blob, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"values_im", "periodic"} {
		if !strings.Contains(string(blob), key) {
			t.Fatalf("complex periodic circuit JSON lacks %q:\n%s", key, blob)
		}
	}
	var imported heax.Circuit
	if err := json.Unmarshal(blob, &imported); err != nil {
		t.Fatal(err)
	}
	p1, err := c.Compile(k.params, k.evk)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := imported.Compile(k.params, k.evk)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Describe() != p2.Describe() {
		t.Fatalf("imported complex circuit compiles differently:\n--- original\n%s--- imported\n%s", p1.Describe(), p2.Describe())
	}

	// Purely real circuits must not grow the new keys: the serving plan
	// cache hashes this encoding.
	c2 := heax.NewCircuit()
	c2.Output("y", c2.AddConst(c2.MulPlain(c2.Input("x"), []float64{1, 2}), 0.5))
	blob2, err := json.Marshal(c2)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"values_im", "periodic"} {
		if strings.Contains(string(blob2), key) {
			t.Fatalf("real circuit JSON grew a %q key:\n%s", key, blob2)
		}
	}
}
