package heax_test

// The Plan Tracer seam: step-kind coverage, thread safety of the
// concurrent reporting path, and — the acceptance bar — zero added
// allocations on a Run when no tracer is installed.

import (
	"sync"
	"testing"
	"time"

	"heax"
)

// countingTracer tallies observed step kinds and total duration.
type countingTracer struct {
	mu    sync.Mutex
	kinds map[string]int
	total time.Duration
}

func (c *countingTracer) ObserveStep(kind string, d time.Duration) {
	c.mu.Lock()
	c.kinds[kind]++
	c.total += d
	c.mu.Unlock()
}

// traceCircuit exercises several step kinds: rotate, plain multiply,
// relinearized square, rescale.
func traceCircuit() *heax.Circuit {
	c := heax.NewCircuit()
	x := c.Input("x")
	sq := c.MulRelin(x, x)
	c.Output("y", c.Add(c.Rotate(sq, 1), c.MulPlain(sq, []float64{0.5, 0.25})))
	return c
}

func TestPlanTracerObservesEverySteps(t *testing.T) {
	k := newAPIKit(t)
	plan, err := traceCircuit().Compile(k.params, k.evk)
	if err != nil {
		t.Fatal(err)
	}
	tr := &countingTracer{kinds: make(map[string]int)}
	plan.SetTracer(tr)
	in := map[string]*heax.Ciphertext{"x": encryptVals(t, k, []float64{0.5, -0.75})}
	if _, err := plan.Run(in); err != nil {
		t.Fatal(err)
	}
	observed := 0
	for _, n := range tr.kinds {
		observed += n
	}
	if observed != plan.NumSteps() {
		t.Fatalf("tracer observed %d steps of %d", observed, plan.NumSteps())
	}
	for _, kind := range []string{"MulRelin", "Rotate", "MulPlain", "Add"} {
		if tr.kinds[kind] == 0 {
			t.Errorf("no %s step observed; got %v", kind, tr.kinds)
		}
	}
	if tr.total <= 0 {
		t.Fatal("observed durations sum to zero")
	}
	// Every observed kind must come from the canonical name list.
	valid := make(map[string]bool)
	for _, kind := range heax.StepKinds() {
		valid[kind] = true
	}
	for kind := range tr.kinds {
		if !valid[kind] {
			t.Errorf("tracer observed unknown step kind %q", kind)
		}
	}

	// Removing the tracer really stops the reporting.
	plan.SetTracer(nil)
	before := len(tr.kinds)
	tr.mu.Lock()
	totalBefore := tr.total
	tr.mu.Unlock()
	if _, err := plan.Run(in); err != nil {
		t.Fatal(err)
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.kinds) != before || tr.total != totalBefore {
		t.Fatal("steps were reported after SetTracer(nil)")
	}
}

// TestPlanTracerDisabledZeroAlloc pins the acceptance criterion: the
// untraced path costs the same allocations as a plan that never had a
// tracer — installing and removing one leaves no residue, and the nil
// check itself allocates nothing.
func TestPlanTracerDisabledZeroAlloc(t *testing.T) {
	k := newAPIKit(t)
	pristine, err := traceCircuit().Compile(k.params, k.evk)
	if err != nil {
		t.Fatal(err)
	}
	toggled, err := traceCircuit().Compile(k.params, k.evk)
	if err != nil {
		t.Fatal(err)
	}
	tr := &countingTracer{kinds: make(map[string]int)}
	toggled.SetTracer(tr)
	toggled.SetTracer(nil)

	in := map[string]*heax.Ciphertext{"x": encryptVals(t, k, []float64{0.5, -0.75})}
	measure := func(p *heax.Plan) float64 {
		return testing.AllocsPerRun(20, func() {
			if _, err := p.Run(in); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := measure(pristine)
	after := measure(toggled)
	if after > base {
		t.Fatalf("disabled-tracer Run allocates %v, pristine plan %v — the seam leaks allocations", after, base)
	}
}

// TestPlanTracerConcurrentRuns: many goroutines run one traced plan;
// under -race this audits the atomic tracer load against SetTracer,
// and the counts must still be exact.
func TestPlanTracerConcurrentRuns(t *testing.T) {
	k := newAPIKit(t)
	plan, err := traceCircuit().Compile(k.params, k.evk)
	if err != nil {
		t.Fatal(err)
	}
	tr := &countingTracer{kinds: make(map[string]int)}
	plan.SetTracer(tr)
	const runs = 8
	// Encrypt serially before the fan-out: the kit's encryptor (its
	// sampler's rand.Rand) is not safe for concurrent use, and the
	// subject under test is the concurrent Run, not Encrypt.
	ins := make([]map[string]*heax.Ciphertext, runs)
	for i := range ins {
		ins[i] = map[string]*heax.Ciphertext{"x": encryptVals(t, k, []float64{0.5, -0.75})}
	}
	var wg sync.WaitGroup
	wg.Add(runs)
	for i := 0; i < runs; i++ {
		in := ins[i]
		go func() {
			defer wg.Done()
			if _, err := plan.Run(in); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	observed := 0
	tr.mu.Lock()
	for _, n := range tr.kinds {
		observed += n
	}
	tr.mu.Unlock()
	if want := runs * plan.NumSteps(); observed != want {
		t.Fatalf("tracer observed %d steps, want %d", observed, want)
	}
}
