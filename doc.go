// Package heax is the public face of this HEAX reproduction: a full-RNS
// CKKS engine (encode, encrypt, evaluate, decrypt) built on the lazy-
// reduction NTT core and the pipelined key-switch scheduler of the
// internal packages, exposed through three coordinated layers.
//
// # Key-bound evaluators
//
// An Evaluator is constructed once against a parameter set and an
// EvaluationKeySet, then used without threading keys through every call:
//
//	evk := &heax.EvaluationKeySet{Relin: rlk, Galois: gks}
//	eval := heax.NewEvaluator(params, evk, heax.WithWorkers(8))
//	prod, err := eval.MulRelin(ctX, ctY) // relinearization key is bound
//	rot, err := eval.RotateLeft(ctX, 1)  // Galois keys are bound
//
// Evaluators are safe for concurrent use; ShallowCopy gives each
// goroutine its own per-call state while sharing all read-only tables.
//
// # In-place operation variants
//
// The hot operations have *Into forms that land results in caller-owned
// ciphertexts (AddInto, MulRelinInto, RescaleInto, RotateInto), reusing
// the ring context's pooled scratch for every intermediate. A serving
// loop that cycles over a fixed set of NewCiphertext outputs runs at
// zero steady-state allocations — the software analogue of the HEAX
// device memory map, where results stay in preallocated buffers. The
// allocating forms remain as thin wrappers.
//
// # Batch/async submission
//
// A Session mirrors the paper's host runtime (Section 5.2, Figure 7):
// applications enqueue operations, a bounded number execute concurrently
// on the worker-pool scheduler, and futures resolve out of order while
// dependency edges — the output of one submitted operation feeding
// another — are honored automatically:
//
//	sess := heax.NewSession(eval)
//	f1 := sess.Submit(heax.MulRelinOp(heax.Arg(ctX), heax.Arg(ctY)))
//	f2 := sess.Submit(heax.RescaleOp(f1)) // runs when f1 resolves
//	ct, err := f2.Wait()
//	err = sess.Flush() // drain everything in flight
//
// The hardware model, architecture generator and cycle-level simulator
// behind the paper's tables are exported separately in heax/arch, and
// the table/benchmark harness in heax/bench.
package heax
