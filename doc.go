// Package heax is the public face of this HEAX reproduction: a full-RNS
// CKKS engine (encode, encrypt, evaluate, decrypt) built on the lazy-
// reduction NTT core and the pipelined key-switch scheduler of the
// internal packages, exposed through four coordinated layers.
//
// # Key-bound evaluators
//
// An Evaluator is constructed once against a parameter set and an
// EvaluationKeySet, then used without threading keys through every call:
//
//	evk := &heax.EvaluationKeySet{Relin: rlk, Galois: gks}
//	eval := heax.NewEvaluator(params, evk, heax.WithWorkers(8))
//	prod, err := eval.MulRelin(ctX, ctY) // relinearization key is bound
//	rot, err := eval.RotateLeft(ctX, 1)  // Galois keys are bound
//
// Evaluators are safe for concurrent use; ShallowCopy gives each
// goroutine its own per-call state while sharing all read-only tables.
//
// # In-place operation variants
//
// The hot operations have *Into forms that land results in caller-owned
// ciphertexts (AddInto, MulRelinInto, RescaleInto, RotateInto), reusing
// the ring context's pooled scratch for every intermediate. A serving
// loop that cycles over a fixed set of NewCiphertext outputs runs at
// zero steady-state allocations — the software analogue of the HEAX
// device memory map, where results stay in preallocated buffers. The
// allocating forms remain as thin wrappers.
//
// # Batch/async submission
//
// A Session mirrors the paper's host runtime (Section 5.2, Figure 7):
// applications enqueue operations, a bounded number execute concurrently
// on the worker-pool scheduler, and futures resolve out of order while
// dependency edges — the output of one submitted operation feeding
// another — are honored automatically:
//
//	sess := heax.NewSession(eval)
//	f1 := sess.Submit(heax.MulRelinOp(heax.Arg(ctX), heax.Arg(ctY)))
//	f2 := sess.Submit(heax.RescaleOp(f1)) // runs when f1 resolves
//	ct, err := f2.Wait()
//	err = sess.Flush() // drain everything in flight
//
// # Compiled circuits: build, compile, run
//
// A Circuit declares a fixed encrypted dataflow symbolically — Input,
// Add, MulRelin, MulPlain, Rotate, InnerSum, Output — with no Rescale,
// Relinearize or level bookkeeping anywhere. Compile runs scale/level
// inference over the DAG, inserts every maintenance operation, encodes
// all plaintext operands, eliminates common subexpressions, prunes dead
// nodes and groups same-source rotations into hoisted-decomposition
// batches; impossible circuits fail at compile time with the same
// sentinels. The resulting Plan is immutable and concurrency-safe:
//
//	c := heax.NewCircuit()
//	y := c.AddConst(c.MulRelin(c.Input("x"), c.Input("x")), 1)
//	c.Output("y", y)
//	plan, err := c.Compile(params, evk)
//	out, err := plan.Run(map[string]*heax.Ciphertext{"x": ct})
//
// Plan.RunBatch streams many input sets through the worker pool — the
// paper's compile-once, stream-many host model (Section 5.2) — and the
// Context variants (RunContext, RunBatchContext, SubmitContext) abort
// cleanly mid-flight when a serving front end drops a request.
//
// # Serving over the wire
//
// Circuits export and import as versioned JSON (Circuit.MarshalJSON /
// UnmarshalJSON), and the serialization layer moves every object a
// serving host needs — parameters, ciphertexts, whole evaluation key
// sets (WriteEvaluationKeySet) and named ciphertext batches
// (WriteCiphertextBatch) — as framed, length-checked blobs that fail
// with ErrCorrupt on anything malformed. The heax/serve package builds
// the multi-tenant daemon on top (see cmd/heax-serve and
// examples/client).
//
// The hardware model, architecture generator and cycle-level simulator
// behind the paper's tables are exported separately in heax/arch, and
// the table/benchmark harness in heax/bench.
package heax
