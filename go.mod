module heax

go 1.21
