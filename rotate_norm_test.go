package heax

// Regression tests for rotation-step normalization: steps are reduced
// modulo the slot count before Galois-element lookup, so equivalent
// rotations dedupe in CSE/hoisting, share one rotation key, and a step
// that normalizes to 0 compiles to the identity.

import (
	"errors"
	"strings"
	"testing"
)

// TestRotateStepNormalization: Rotate(a, 1) and Rotate(a, 1−slots) are
// the same slot permutation and must compile to bit-identical plans —
// with only the step-1 Galois key generated.
func TestRotateStepNormalization(t *testing.T) {
	k := newOracleKit(t, SetA, []int{1}, false)
	slots := k.params.Slots()

	build := func(step int) *Plan {
		c := NewCircuit()
		c.Output("y", c.Rotate(c.Input("x"), step))
		plan, err := c.Compile(k.params, k.evk)
		if err != nil {
			t.Fatalf("Rotate step %d: %v", step, err)
		}
		return plan
	}
	pos := build(1)
	neg := build(1 - slots)
	wrapped := build(1 + slots)

	vals := []float64{0.25, -1.5, 3.0, 0.125}
	ct := k.encrypt(t, vals)
	in := map[string]*Ciphertext{"x": ct}
	want, err := pos.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for name, plan := range map[string]*Plan{"1-slots": neg, "1+slots": wrapped} {
		got, err := plan.Run(in)
		if err != nil {
			t.Fatalf("step %s: %v", name, err)
		}
		if !ctBitEqual(got["y"], want["y"]) {
			t.Fatalf("Rotate(a, %s) not bit-identical to Rotate(a, 1)", name)
		}
	}
}

// TestRotateStepCSEDedupe: equivalent steps inside one circuit collapse
// to a single rotation step, so the plan never demands a redundant key
// for the un-normalized alias.
func TestRotateStepCSEDedupe(t *testing.T) {
	k := newOracleKit(t, SetA, []int{1}, false)
	slots := k.params.Slots()

	c := NewCircuit()
	x := c.Input("x")
	c.Output("y", c.Add(c.Rotate(x, 1), c.Rotate(x, 1-slots)))
	plan, err := c.Compile(k.params, k.evk) // only the step-1 key exists
	if err != nil {
		t.Fatalf("equivalent rotations should need only the step-1 key: %v", err)
	}
	if n := strings.Count(plan.Describe(), "Rotate"); n != 1 {
		t.Fatalf("equivalent rotations should CSE to one step, Describe shows %d:\n%s", n, plan.Describe())
	}

	// The dedup must also be semantically right: rot+rot == 2·rot.
	vals := []float64{1, 2, 3, 4}
	out, err := plan.Run(map[string]*Ciphertext{"x": k.encrypt(t, vals)})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := k.decryptor.Decrypt(out["y"])
	if err != nil {
		t.Fatal(err)
	}
	got := k.enc.Decode(pt)
	for i := 0; i < len(vals)-1; i++ {
		want := 2 * vals[i+1]
		if d := real(got[i]) - want; d > 1e-3 || d < -1e-3 {
			t.Fatalf("slot %d: got %g, want %g", i, real(got[i]), want)
		}
	}
}

// TestRotateFullTurnIsIdentity: a step of ±slots normalizes to 0 and
// compiles to the identity (a pass-through copy), needing no key at all.
func TestRotateFullTurnIsIdentity(t *testing.T) {
	k := newOracleKit(t, SetA, nil, false) // no Galois keys whatsoever
	slots := k.params.Slots()
	for _, step := range []int{slots, -slots, 2 * slots} {
		c := NewCircuit()
		c.Output("y", c.Rotate(c.Input("x"), step))
		plan, err := c.Compile(k.params, k.evk)
		if err != nil {
			t.Fatalf("Rotate by %d should normalize to the identity: %v", step, err)
		}
		ct := k.encrypt(t, []float64{1, -2, 3})
		out, err := plan.Run(map[string]*Ciphertext{"x": ct})
		if err != nil {
			t.Fatal(err)
		}
		if !ctBitEqual(out["y"], ct) {
			t.Fatalf("Rotate by %d should pass the input through bit-for-bit", step)
		}
	}
}

// TestRotateNegativeStepUsesNormalizedKey: keygen and compile agree on
// the normalized step, so a key requested as −1 serves a circuit that
// rotates by −1, slots−1, or −1−slots.
func TestRotateNegativeStepUsesNormalizedKey(t *testing.T) {
	k := newOracleKit(t, SetA, []int{-1}, false)
	slots := k.params.Slots()
	if _, ok := k.evk.Galois.Rotations[slots-1]; !ok {
		t.Fatalf("GenGaloisKeySet should store step −1 under its normalized form %d", slots-1)
	}
	for _, step := range []int{-1, slots - 1, -1 - slots} {
		c := NewCircuit()
		c.Output("y", c.Rotate(c.Input("x"), step))
		if _, err := c.Compile(k.params, k.evk); err != nil {
			t.Fatalf("step %d should find the normalized −1 key: %v", step, err)
		}
	}
	// And a genuinely absent key still fails with the typed sentinel.
	c := NewCircuit()
	c.Output("y", c.Rotate(c.Input("x"), 2))
	if _, err := c.Compile(k.params, k.evk); !errors.Is(err, ErrKeyMissing) {
		t.Fatalf("missing key should wrap ErrKeyMissing, got %v", err)
	}
}
