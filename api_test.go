package heax_test

// Public-surface tests: the key-bound evaluator, the typed sentinel
// errors, and the zero-allocation *Into hot path — everything here
// imports only the public heax package, exactly as an out-of-tree
// program would.

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"

	"heax"
)

type apiKit struct {
	params    *heax.Params
	sk        *heax.SecretKey
	evk       *heax.EvaluationKeySet
	enc       *heax.Encoder
	encryptor *heax.Encryptor
	decryptor *heax.Decryptor
	eval      *heax.Evaluator
}

var (
	apiKitMu    sync.Mutex
	apiKitCache *apiKit
)

func newAPIKit(t testing.TB) *apiKit {
	t.Helper()
	apiKitMu.Lock()
	defer apiKitMu.Unlock()
	if apiKitCache != nil {
		return apiKitCache
	}
	params, err := heax.NewParams(heax.SetB)
	if err != nil {
		t.Fatal(err)
	}
	kg := heax.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	evk := heax.GenEvaluationKeys(kg, sk, []int{1, 2}, true)
	k := &apiKit{
		params:    params,
		sk:        sk,
		evk:       evk,
		enc:       heax.NewEncoder(params),
		encryptor: heax.NewEncryptor(params, pk, 2),
		decryptor: heax.NewDecryptor(params, sk),
		eval:      heax.NewEvaluator(params, evk),
	}
	apiKitCache = k
	return k
}

func (k *apiKit) encrypt(t testing.TB, vals []float64) *heax.Ciphertext {
	t.Helper()
	pt, err := k.enc.EncodeReal(vals, k.params.MaxLevel(), k.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := k.encryptor.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func (k *apiKit) decodeReal(t testing.TB, ct *heax.Ciphertext, n int) []float64 {
	t.Helper()
	pt, err := k.decryptor.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	vals := k.enc.Decode(pt)
	out := make([]float64, n)
	for i := range out {
		out[i] = real(vals[i])
	}
	return out
}

func ctEqual(a, b *heax.Ciphertext) bool {
	if a.Level != b.Level || len(a.Polys) != len(b.Polys) {
		return false
	}
	for i := range a.Polys {
		if !a.Polys[i].Equal(b.Polys[i]) {
			return false
		}
	}
	return true
}

func TestSentinelErrors(t *testing.T) {
	k := newAPIKit(t)
	x := k.encrypt(t, []float64{1, 2, 3})
	y := k.encrypt(t, []float64{4, 5, 6})

	// Scale mismatch on addition.
	pt, err := k.enc.EncodeReal([]float64{1}, k.params.MaxLevel(), 2*k.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	odd, err := k.encryptor.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.eval.Add(x, odd); !errors.Is(err, heax.ErrScaleMismatch) {
		t.Fatalf("Add scale mismatch: got %v, want ErrScaleMismatch", err)
	}
	if err := k.eval.AddInto(x, odd, heax.CopyOf(x)); !errors.Is(err, heax.ErrScaleMismatch) {
		t.Fatalf("AddInto scale mismatch: got %v, want ErrScaleMismatch", err)
	}

	// Degree mismatch on Mul/MulRelin with a degree-2 operand.
	deg2, err := k.eval.Mul(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.eval.Mul(deg2, y); !errors.Is(err, heax.ErrDegreeMismatch) {
		t.Fatalf("Mul degree mismatch: got %v, want ErrDegreeMismatch", err)
	}
	if _, err := k.eval.MulRelin(deg2, y); !errors.Is(err, heax.ErrDegreeMismatch) {
		t.Fatalf("MulRelin degree mismatch: got %v, want ErrDegreeMismatch", err)
	}
	if _, err := k.eval.Relinearize(x); !errors.Is(err, heax.ErrDegreeMismatch) {
		t.Fatalf("Relinearize degree-1: got %v, want ErrDegreeMismatch", err)
	}
	if _, err := k.eval.RotateLeft(deg2, 1); !errors.Is(err, heax.ErrDegreeMismatch) {
		t.Fatalf("Rotate degree-2: got %v, want ErrDegreeMismatch", err)
	}

	// Level violations.
	bottom, err := k.eval.DropLevel(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.eval.Rescale(bottom); !errors.Is(err, heax.ErrLevelMismatch) {
		t.Fatalf("Rescale at level 0: got %v, want ErrLevelMismatch", err)
	}
	if _, err := k.eval.DropLevel(x, k.params.MaxLevel()+1); !errors.Is(err, heax.ErrLevelMismatch) {
		t.Fatalf("DropLevel out of range: got %v, want ErrLevelMismatch", err)
	}
	// An *Into output that cannot hold the result's level.
	small, err := k.eval.DropLevel(x, 0) // components back only 1 row
	if err != nil {
		t.Fatal(err)
	}
	if err := k.eval.AddInto(x, y, small); !errors.Is(err, heax.ErrLevelMismatch) {
		t.Fatalf("AddInto into too-small output: got %v, want ErrLevelMismatch", err)
	}

	// Missing keys.
	keyless := heax.NewEvaluator(k.params, nil)
	if _, err := keyless.MulRelin(x, y); !errors.Is(err, heax.ErrKeyMissing) {
		t.Fatalf("MulRelin without rlk: got %v, want ErrKeyMissing", err)
	}
	if _, err := keyless.RotateLeft(x, 1); !errors.Is(err, heax.ErrKeyMissing) {
		t.Fatalf("Rotate without Galois keys: got %v, want ErrKeyMissing", err)
	}
	if _, err := k.eval.RotateLeft(x, 999); !errors.Is(err, heax.ErrKeyMissing) {
		t.Fatalf("Rotate with missing step: got %v, want ErrKeyMissing", err)
	}
	if err := keyless.RotateInto(x, 1, heax.CopyOf(x)); !errors.Is(err, heax.ErrKeyMissing) {
		t.Fatalf("RotateInto without Galois keys: got %v, want ErrKeyMissing", err)
	}
}

// TestIntoMatchesAllocating pins the *Into variants to their allocating
// forms bit for bit, including output reuse across levels.
func TestIntoMatchesAllocating(t *testing.T) {
	k := newAPIKit(t)
	x := k.encrypt(t, []float64{1.5, -2.25, 3.5})
	y := k.encrypt(t, []float64{0.5, 4.0, -1.0})

	out, err := heax.NewCiphertext(k.params, 1, k.params.MaxLevel(), 0)
	if err != nil {
		t.Fatal(err)
	}

	want, err := k.eval.Add(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.eval.AddInto(x, y, out); err != nil {
		t.Fatal(err)
	}
	if !ctEqual(want, out) || out.Scale != want.Scale {
		t.Fatal("AddInto differs from Add")
	}

	want, err = k.eval.MulRelin(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.eval.MulRelinInto(x, y, out); err != nil {
		t.Fatal(err)
	}
	if !ctEqual(want, out) || out.Scale != want.Scale {
		t.Fatal("MulRelinInto differs from MulRelin")
	}

	// RescaleInto drops a level; the same output object then serves a
	// higher-level result again (reshape back up).
	prod := heax.CopyOf(out)
	want, err = k.eval.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.eval.RescaleInto(prod, out); err != nil {
		t.Fatal(err)
	}
	if !ctEqual(want, out) || out.Scale != want.Scale {
		t.Fatal("RescaleInto differs from Rescale")
	}

	want, err = k.eval.RotateLeft(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.eval.RotateInto(x, 1, out); err != nil {
		t.Fatal(err)
	}
	if !ctEqual(want, out) || out.Scale != want.Scale {
		t.Fatal("RotateInto differs from RotateLeft")
	}

	// In-place: out aliases an input.
	sum, err := k.eval.Add(x, y)
	if err != nil {
		t.Fatal(err)
	}
	aliased := heax.CopyOf(x)
	if err := k.eval.AddInto(aliased, y, aliased); err != nil {
		t.Fatal(err)
	}
	if !ctEqual(sum, aliased) {
		t.Fatal("aliased AddInto differs from Add")
	}

	// In-place rescale: RescaleInto(ct, ct) must match Rescale(ct).
	prod2, err := k.eval.MulRelin(x, y)
	if err != nil {
		t.Fatal(err)
	}
	wantRescaled, err := k.eval.Rescale(prod2)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.eval.RescaleInto(prod2, prod2); err != nil {
		t.Fatal(err)
	}
	if !ctEqual(wantRescaled, prod2) || prod2.Scale != wantRescaled.Scale {
		t.Fatal("in-place RescaleInto differs from Rescale")
	}
}

// TestIntoAllocations is the zero-steady-state-allocation gate of the
// serving loop: each *Into hot op must stay at or below 2 allocs/op
// once pools are warm.
func TestIntoAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; alloc counts are not meaningful")
	}
	k := newAPIKit(t)
	x := k.encrypt(t, []float64{1, 2, 3})
	y := k.encrypt(t, []float64{4, 5, 6})
	out, err := heax.NewCiphertext(k.params, 1, k.params.MaxLevel(), 0)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := k.eval.MulRelin(x, y)
	if err != nil {
		t.Fatal(err)
	}
	res, err := heax.NewCiphertext(k.params, 1, k.params.MaxLevel()-1, 0)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		fn   func() error
	}{
		{"AddInto", func() error { return k.eval.AddInto(x, y, out) }},
		{"MulRelinInto", func() error { return k.eval.MulRelinInto(x, y, out) }},
		{"RescaleInto", func() error { return k.eval.RescaleInto(prod, res) }},
		{"RotateInto", func() error { return k.eval.RotateInto(x, 1, out) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// Warm the pools (and the cached automorphism tables).
			for i := 0; i < 3; i++ {
				if err := tc.fn(); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(10, func() {
				if err := tc.fn(); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 2 {
				t.Fatalf("%s: %.1f allocs/op, want <= 2", tc.name, allocs)
			}
		})
	}
}

// TestShallowCopyConcurrent exercises the per-goroutine fan-out idiom
// under the race detector: one evaluator per goroutine, shared keys and
// parameters, all hammering the fused hot path.
func TestShallowCopyConcurrent(t *testing.T) {
	k := newAPIKit(t)
	x := k.encrypt(t, []float64{1, 2, 3})
	y := k.encrypt(t, []float64{4, 5, 6})
	want, err := k.eval.MulRelin(x, y)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 4
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ev := k.eval.ShallowCopy()
			out, err := heax.NewCiphertext(k.params, 1, k.params.MaxLevel(), 0)
			if err != nil {
				errs[g] = err
				return
			}
			for i := 0; i < 8; i++ {
				if err := ev.MulRelinInto(x, y, out); err != nil {
					errs[g] = err
					return
				}
				if !ctEqual(want, out) {
					errs[g] = errors.New("concurrent MulRelinInto diverged")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestEvaluatorOptions checks that worker caps do not change results and
// that a pre-warmed scratch pool behaves identically.
func TestEvaluatorOptions(t *testing.T) {
	k := newAPIKit(t)
	x := k.encrypt(t, []float64{0.25, -1.5})
	y := k.encrypt(t, []float64{2.0, 0.125})
	want, err := k.eval.MulRelin(x, y)
	if err != nil {
		t.Fatal(err)
	}

	serial := heax.NewEvaluator(k.params, k.evk, heax.WithWorkers(1), heax.WithScratchPool(4))
	got, err := serial.MulRelin(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !ctEqual(want, got) {
		t.Fatal("WithWorkers(1) evaluator diverged from default")
	}
	// The cap is scoped to the evaluator it was set on: neither other
	// evaluators on the same Params nor fresh ones see it, and
	// ShallowCopy inherits it.
	if w := serial.Workers(); w != 1 {
		t.Fatalf("serial evaluator cap = %d, want 1", w)
	}
	if w := serial.ShallowCopy().Workers(); w != 1 {
		t.Fatalf("ShallowCopy cap = %d, want 1", w)
	}
	if w := k.eval.Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("shared evaluator cap leaked: %d, want %d", w, runtime.GOMAXPROCS(0))
	}
	if w := heax.NewEvaluator(k.params, k.evk).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("fresh evaluator cap leaked: %d, want %d", w, runtime.GOMAXPROCS(0))
	}
	wide := heax.NewEvaluator(k.params, k.evk, heax.WithWorkers(3))
	if a, b := wide.Workers(), serial.Workers(); a != 3 || b != 1 {
		t.Fatalf("caps not independent: %d and %d, want 3 and 1", a, b)
	}

	dec := k.decodeReal(t, got, 2)
	if math.Abs(dec[0]-0.5) > 1e-3 || math.Abs(dec[1]+0.1875) > 1e-3 {
		t.Fatalf("decrypted product wrong: %v", dec)
	}
}
