package serve

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"

	"heax"
)

// Client is the wire-protocol handle an application uses against a
// heax-serve daemon: fetch the server's parameter set, register a
// tenant's evaluation keys, compile circuit descriptions into cached
// plans, and stream ciphertext batches through them. A Client is one
// connection and is not safe for concurrent use; open one per
// goroutine (the server interleaves them through its admission
// window).
type Client struct {
	conn     net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	params   *heax.Params
	maxFrame int
}

// String renders a plan id as hex.
func (id PlanID) String() string { return hex.EncodeToString(id[:]) }

// PlanInfo describes a compiled (or cache-hit) plan.
type PlanInfo struct {
	ID    PlanID
	Steps int
	// Cached reports a server-side cache hit: the circuit was already
	// compiled for this tenant.
	Cached bool
}

// Dial connects to a heax-serve daemon and fetches its parameter set.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn)
}

// NewClient wraps an established connection (the server side of the
// handshake is a running Server) and fetches the parameter set.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{
		conn:     conn,
		br:       bufio.NewReaderSize(conn, 64<<10),
		bw:       bufio.NewWriterSize(conn, 64<<10),
		maxFrame: DefaultMaxFrame,
	}
	payload, err := c.roundTrip(reqParams, nil, respParams)
	if err != nil {
		conn.Close()
		return nil, err
	}
	params, err := heax.ReadParams(bytes.NewReader(payload))
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.params = params
	return c, nil
}

// Params returns the server's parameter set; clients encode, encrypt
// and decrypt against it (the reconstruction is bit-identical to the
// server's, so results match the in-process evaluator exactly).
func (c *Client) Params() *heax.Params { return c.params }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req byte, payload []byte, want byte) ([]byte, error) {
	if err := writeFrame(c.bw, req, payload); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	typ, resp, err := readFrame(c.br, c.maxFrame)
	if err != nil {
		return nil, err
	}
	if typ == respErr {
		if len(resp) < 1 {
			return nil, fmt.Errorf("serve: malformed error frame: %w", heax.ErrCorrupt)
		}
		return nil, codeToErr(resp[0], string(resp[1:]))
	}
	if typ != want {
		return nil, fmt.Errorf("serve: expected response %#x, got %#x: %w", want, typ, heax.ErrCorrupt)
	}
	return resp, nil
}

// Register uploads a tenant's evaluation key set. The name must be
// free; Unregister releases it.
func (c *Client) Register(tenant string, evk *heax.EvaluationKeySet) error {
	var pw payloadWriter
	if err := pw.str(tenant); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := heax.WriteEvaluationKeySet(&buf, evk); err != nil {
		return err
	}
	pw.blob(buf.Bytes())
	_, err := c.roundTrip(reqRegister, pw.buf, respOK)
	return err
}

// Unregister evicts a tenant: its keys and cached plans are released
// (in-flight requests finish on the retained references).
func (c *Client) Unregister(tenant string) error {
	var pw payloadWriter
	if err := pw.str(tenant); err != nil {
		return err
	}
	_, err := c.roundTrip(reqUnregister, pw.buf, respOK)
	return err
}

// Compile ships a circuit DAG and compiles it against the tenant's
// registered keys into the server's plan cache, returning the plan id
// to run against. Compiling the same circuit again is a cache hit.
func (c *Client) Compile(tenant string, circ *heax.Circuit) (PlanInfo, error) {
	dag, err := json.Marshal(circ)
	if err != nil {
		return PlanInfo{}, err
	}
	var pw payloadWriter
	if err := pw.str(tenant); err != nil {
		return PlanInfo{}, err
	}
	pw.blob(dag)
	resp, err := c.roundTrip(reqCompile, pw.buf, respPlan)
	if err != nil {
		return PlanInfo{}, err
	}
	pr := payloadReader{buf: resp}
	idBytes, err := pr.take(len(PlanID{}), "plan id")
	if err != nil {
		return PlanInfo{}, err
	}
	var info PlanInfo
	copy(info.ID[:], idBytes)
	steps, err := pr.u32("step count")
	if err != nil {
		return PlanInfo{}, err
	}
	info.Steps = int(steps)
	flag, err := pr.take(1, "cache flag")
	if err != nil {
		return PlanInfo{}, err
	}
	info.Cached = flag[0] != 0
	if err := pr.done("compile response"); err != nil {
		return PlanInfo{}, err
	}
	return info, nil
}

// Run streams input batches through a compiled plan and returns one
// named output set per input set, in order. The server admits the
// batches through its global window, so concurrent tenants interleave.
func (c *Client) Run(tenant string, id PlanID, batches []map[string]*heax.Ciphertext) ([]map[string]*heax.Ciphertext, error) {
	var pw payloadWriter
	if err := pw.str(tenant); err != nil {
		return nil, err
	}
	pw.bytes(id[:])
	pw.u32(uint32(len(batches)))
	var buf bytes.Buffer
	for _, batch := range batches {
		buf.Reset()
		if err := heax.WriteCiphertextBatch(&buf, batch); err != nil {
			return nil, err
		}
		pw.blob(buf.Bytes())
	}
	resp, err := c.roundTrip(reqRun, pw.buf, respBatches)
	if err != nil {
		return nil, err
	}
	pr := payloadReader{buf: resp}
	n, err := pr.u32("batch count")
	if err != nil {
		return nil, err
	}
	if int(n) != len(batches) {
		return nil, fmt.Errorf("serve: sent %d batches, received %d: %w", len(batches), n, heax.ErrCorrupt)
	}
	out := make([]map[string]*heax.Ciphertext, 0, len(batches))
	for i := 0; i < int(n); i++ {
		blob, err := pr.blob("output batch")
		if err != nil {
			return nil, err
		}
		batch, err := heax.ReadCiphertextBatch(bytes.NewReader(blob), c.params)
		if err != nil {
			return nil, err
		}
		out = append(out, batch)
	}
	if err := pr.done("run response"); err != nil {
		return nil, err
	}
	return out, nil
}
