package serve

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mathrand "math/rand"
	"net"
	"time"

	"heax"
)

// Client is the wire-protocol handle an application uses against a
// heax-serve daemon: fetch the server's parameter set, register a
// tenant's evaluation keys, compile circuit descriptions into cached
// plans, and stream ciphertext batches through them. A Client is one
// connection and is not safe for concurrent use; open one per
// goroutine (the server interleaves them through weighted-fair
// admission).
//
// Every call has a Context variant (RunContext, CompileContext, ...)
// whose deadline bounds the socket reads and writes and — for Run —
// travels to the server as a remaining-time budget, so an overloaded
// server sheds the request immediately instead of letting it rot in a
// queue. Clients built by Dial/DialContext can opt into idempotent
// Run retries (WithRetry): each Run carries a generated request id,
// and a retry after a dropped connection reconnects, backs off with
// jitter, and is answered from the server's dedup cache if the
// original execution completed — never executed twice.
type Client struct {
	conn     net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	params   *heax.Params
	maxFrame int
	addr     string // empty for NewClient: no redial possible
	cfg      dialConfig
	rng      *mathrand.Rand // backoff jitter
}

// String renders a plan id as hex.
func (id PlanID) String() string { return hex.EncodeToString(id[:]) }

// PlanInfo describes a compiled (or cache-hit) plan.
type PlanInfo struct {
	ID    PlanID
	Steps int
	// Cached reports a server-side cache hit: the circuit was already
	// compiled for this tenant.
	Cached bool
}

type dialConfig struct {
	dialTimeout time.Duration
	callTimeout time.Duration
	retries     int
	backoff     time.Duration
}

// DialOption configures Dial/DialContext.
type DialOption func(*dialConfig)

// DefaultDialTimeout bounds Dial's connect + parameter handshake when
// the caller supplies no deadline of its own.
const DefaultDialTimeout = 10 * time.Second

// WithDialTimeout overrides the default connect + handshake timeout
// (0 disables it; DialContext's ctx still applies).
func WithDialTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.dialTimeout = d }
}

// WithCallTimeout applies a default deadline to every call made with a
// context that has none (default 0 = unbounded — encrypted runs can
// legitimately take a long time).
func WithCallTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.callTimeout = d }
}

// WithRetry opts Run into idempotent retry: up to attempts additional
// tries after a connection failure or an ErrOverloaded shed, sleeping
// a jittered exponential backoff starting at base between tries. The
// request id generated for the first attempt is reused, so the server
// dedups — a retried Run is never double-executed (the retry joins the
// in-flight execution or is answered from the response cache).
func WithRetry(attempts int, base time.Duration) DialOption {
	return func(c *dialConfig) {
		if attempts < 0 {
			attempts = 0
		}
		if base <= 0 {
			base = 50 * time.Millisecond
		}
		c.retries = attempts
		c.backoff = base
	}
}

// Dial connects to a heax-serve daemon and fetches its parameter set,
// bounded by DefaultDialTimeout (override with WithDialTimeout).
func Dial(addr string, opts ...DialOption) (*Client, error) {
	return DialContext(context.Background(), addr, opts...)
}

// DialContext is Dial bounded by ctx: connect and the parameter
// handshake respect the earlier of ctx's deadline and the dial
// timeout.
func DialContext(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	cfg := dialConfig{dialTimeout: DefaultDialTimeout}
	for _, opt := range opts {
		opt(&cfg)
	}
	c := &Client{
		addr: addr,
		cfg:  cfg,
		rng:  mathrand.New(mathrand.NewSource(time.Now().UnixNano())),
	}
	if err := c.connect(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// connect dials (or re-dials) addr and performs the parameter
// handshake under the configured timeout.
func (c *Client) connect(ctx context.Context) error {
	if c.cfg.dialTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.dialTimeout)
		defer cancel()
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return err
	}
	nc, err := newClientConn(ctx, conn)
	if err != nil {
		return err
	}
	c.conn, c.br, c.bw, c.params, c.maxFrame = nc.conn, nc.br, nc.bw, nc.params, nc.maxFrame
	return nil
}

// NewClient wraps an established connection (the server side of the
// handshake is a running Server) and fetches the parameter set. A
// Client built this way cannot reconnect, so Run retries only re-send
// on the same connection for server-shed (ErrOverloaded) failures.
func NewClient(conn net.Conn) (*Client, error) {
	return newClientConn(context.Background(), conn)
}

func newClientConn(ctx context.Context, conn net.Conn) (*Client, error) {
	c := &Client{
		conn:     conn,
		br:       bufio.NewReaderSize(conn, 64<<10),
		bw:       bufio.NewWriterSize(conn, 64<<10),
		maxFrame: DefaultMaxFrame,
		rng:      mathrand.New(mathrand.NewSource(time.Now().UnixNano())),
	}
	payload, err := c.roundTrip(ctx, reqParams, nil, respParams)
	if err != nil {
		conn.Close()
		return nil, err
	}
	params, err := heax.ReadParams(bytes.NewReader(payload))
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.params = params
	return c, nil
}

// Params returns the server's parameter set; clients encode, encrypt
// and decrypt against it (the reconstruction is bit-identical to the
// server's, so results match the in-process evaluator exactly).
func (c *Client) Params() *heax.Params { return c.params }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// callCtx applies the default call timeout to a deadline-less context.
func (c *Client) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.cfg.callTimeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			return context.WithTimeout(ctx, c.cfg.callTimeout)
		}
	}
	return ctx, func() {}
}

// applyCtx projects ctx onto the connection: the deadline bounds every
// read and write, and a cancellation pokes any blocked I/O loose with
// an immediate deadline. The returned stop clears both again.
func (c *Client) applyCtx(ctx context.Context) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	if dl, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(dl)
	}
	stopped := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		select {
		case <-ctx.Done():
			c.conn.SetDeadline(time.Now())
		case <-stopped:
		}
	}()
	return func() {
		close(stopped)
		<-finished
		c.conn.SetDeadline(time.Time{})
	}
}

// abandonErr converts an I/O failure caused by ctx expiry into the
// typed contract error. The wire may be mid-frame at that point, so
// the connection is poisoned and closed; a retrying client redials.
func (c *Client) abandonErr(ctx context.Context, err error) error {
	// The connection deadline and the context timer race by design, so
	// the context may not have fired yet when the I/O call fails —
	// check the wall clock against the deadline as well.
	dl, hasDL := ctx.Deadline()
	switch {
	case ctx.Err() == context.DeadlineExceeded || (hasDL && !time.Now().Before(dl)):
		c.conn.Close()
		return fmt.Errorf("serve: call abandoned at deadline: %w", ErrDeadlineExceeded)
	case ctx.Err() == context.Canceled:
		c.conn.Close()
		return fmt.Errorf("serve: call canceled: %w", context.Canceled)
	}
	return err
}

func (c *Client) roundTrip(ctx context.Context, req byte, payload []byte, want byte) ([]byte, error) {
	stop := c.applyCtx(ctx)
	defer stop()
	if err := writeFrame(c.bw, req, payload); err != nil {
		return nil, c.abandonErr(ctx, err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, c.abandonErr(ctx, err)
	}
	typ, resp, err := readFrame(c.br, c.maxFrame)
	if err != nil {
		return nil, c.abandonErr(ctx, err)
	}
	if typ == respErr {
		if len(resp) < 1 {
			return nil, fmt.Errorf("serve: malformed error frame: %w", heax.ErrCorrupt)
		}
		return nil, codeToErr(resp[0], string(resp[1:]))
	}
	if typ != want {
		return nil, fmt.Errorf("serve: expected response %#x, got %#x: %w", want, typ, heax.ErrCorrupt)
	}
	return resp, nil
}

// Register uploads a tenant's evaluation key set. The name must be
// free; Unregister releases it.
func (c *Client) Register(tenant string, evk *heax.EvaluationKeySet) error {
	return c.RegisterContext(context.Background(), tenant, evk)
}

// RegisterContext is Register with a deadline: ctx bounds the upload's
// socket writes and the wait for the server's acknowledgement.
func (c *Client) RegisterContext(ctx context.Context, tenant string, evk *heax.EvaluationKeySet) error {
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	var pw payloadWriter
	if err := pw.str(tenant); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := heax.WriteEvaluationKeySet(&buf, evk); err != nil {
		return err
	}
	pw.blob(buf.Bytes())
	_, err := c.roundTrip(ctx, reqRegister, pw.buf, respOK)
	return err
}

// Unregister evicts a tenant: its keys and cached plans are released
// (in-flight requests finish on the retained references).
func (c *Client) Unregister(tenant string) error {
	return c.UnregisterContext(context.Background(), tenant)
}

// UnregisterContext is Unregister with a deadline.
func (c *Client) UnregisterContext(ctx context.Context, tenant string) error {
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	var pw payloadWriter
	if err := pw.str(tenant); err != nil {
		return err
	}
	_, err := c.roundTrip(ctx, reqUnregister, pw.buf, respOK)
	return err
}

// Compile ships a circuit DAG and compiles it against the tenant's
// registered keys into the server's plan cache, returning the plan id
// to run against. Compiling the same circuit again is a cache hit.
func (c *Client) Compile(tenant string, circ *heax.Circuit) (PlanInfo, error) {
	return c.CompileContext(context.Background(), tenant, circ)
}

// CompileContext is Compile with a deadline on the round trip.
func (c *Client) CompileContext(ctx context.Context, tenant string, circ *heax.Circuit) (PlanInfo, error) {
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	dag, err := json.Marshal(circ)
	if err != nil {
		return PlanInfo{}, err
	}
	var pw payloadWriter
	if err := pw.str(tenant); err != nil {
		return PlanInfo{}, err
	}
	pw.blob(dag)
	resp, err := c.roundTrip(ctx, reqCompile, pw.buf, respPlan)
	if err != nil {
		return PlanInfo{}, err
	}
	pr := payloadReader{buf: resp}
	idBytes, err := pr.take(len(PlanID{}), "plan id")
	if err != nil {
		return PlanInfo{}, err
	}
	var info PlanInfo
	copy(info.ID[:], idBytes)
	steps, err := pr.u32("step count")
	if err != nil {
		return PlanInfo{}, err
	}
	info.Steps = int(steps)
	flag, err := pr.take(1, "cache flag")
	if err != nil {
		return PlanInfo{}, err
	}
	info.Cached = flag[0] != 0
	if err := pr.done("compile response"); err != nil {
		return PlanInfo{}, err
	}
	return info, nil
}

// Run streams input batches through a compiled plan and returns one
// named output set per input set, in order. The server admits the
// batches through its weighted-fair window, so concurrent tenants
// interleave in proportion to their weights.
func (c *Client) Run(tenant string, id PlanID, batches []map[string]*heax.Ciphertext) ([]map[string]*heax.Ciphertext, error) {
	return c.RunContext(context.Background(), tenant, id, batches)
}

// RunContext is Run with a deadline and (if the client was dialed
// WithRetry) idempotent retry. The remaining budget of ctx's deadline
// travels with the request: a server that cannot meet it sheds the
// request immediately with ErrDeadlineExceeded instead of queuing it,
// and a mid-run expiry aborts with the same typed error. On a
// connection failure the client reconnects and retries with jittered
// exponential backoff, reusing the request id so the server never
// executes the Run twice.
func (c *Client) RunContext(ctx context.Context, tenant string, id PlanID, batches []map[string]*heax.Ciphertext) ([]map[string]*heax.Ciphertext, error) {
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	var pw payloadWriter
	if err := pw.str(tenant); err != nil {
		return nil, err
	}
	pw.bytes(id[:])
	// Only retry-enabled clients claim dedup state on the server: a
	// zero id means "no retry coming", so the server keeps no response
	// bytes around for it.
	var reqID requestID
	if c.cfg.retries > 0 {
		reqID = newRequestID()
	}
	pw.bytes(reqID[:])
	budgetOff := len(pw.buf)
	pw.u64(0) // deadline budget, patched per attempt
	pw.u32(uint32(len(batches)))
	var buf bytes.Buffer
	for _, batch := range batches {
		buf.Reset()
		if err := heax.WriteCiphertextBatch(&buf, batch); err != nil {
			return nil, err
		}
		pw.blob(buf.Bytes())
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		patchBudget(pw.buf[budgetOff:], ctx)
		resp, err := c.roundTrip(ctx, reqRunEx, pw.buf, respBatches)
		if err == nil {
			return c.parseRunResponse(resp, len(batches))
		}
		lastErr = err
		if attempt >= c.cfg.retries || ctx.Err() != nil || !retryable(err) {
			return nil, err
		}
		if err := c.backoff(ctx, attempt); err != nil {
			return nil, lastErr
		}
		if transient(lastErr) {
			// The connection is dirty (dropped, mid-frame, desynced):
			// reconnect before re-sending. Without an address (NewClient)
			// the failure is final.
			if c.addr == "" {
				return nil, lastErr
			}
			c.conn.Close()
			if err := c.connect(ctx); err != nil {
				lastErr = err
				if ctx.Err() != nil {
					return nil, lastErr
				}
			}
		}
	}
}

func (c *Client) parseRunResponse(resp []byte, sent int) ([]map[string]*heax.Ciphertext, error) {
	pr := payloadReader{buf: resp}
	n, err := pr.u32("batch count")
	if err != nil {
		return nil, err
	}
	if int(n) != sent {
		return nil, fmt.Errorf("serve: sent %d batches, received %d: %w", sent, n, heax.ErrCorrupt)
	}
	out := make([]map[string]*heax.Ciphertext, 0, sent)
	for i := 0; i < int(n); i++ {
		blob, err := pr.blob("output batch")
		if err != nil {
			return nil, err
		}
		batch, err := heax.ReadCiphertextBatch(bytes.NewReader(blob), c.params)
		if err != nil {
			return nil, err
		}
		out = append(out, batch)
	}
	if err := pr.done("run response"); err != nil {
		return nil, err
	}
	return out, nil
}

// backoff sleeps the jittered exponential delay for attempt, capped at
// 32× base, or returns early when ctx expires.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	base := c.cfg.backoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	shift := attempt
	if shift > 5 {
		shift = 5
	}
	d := base << shift
	d += time.Duration(c.rng.Int63n(int64(base))) // full jitter on top
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// newRequestID draws a random 16-byte id; the zero id (drawn only if
// the system's entropy source fails) disables server-side dedup.
func newRequestID() requestID {
	var id requestID
	io.ReadFull(rand.Reader, id[:])
	return id
}

// patchBudget writes ctx's remaining deadline budget (µs) into the
// reserved u64 of an encoded Run payload. No deadline encodes 0.
func patchBudget(b []byte, ctx context.Context) {
	var us uint64
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			us = uint64(rem / time.Microsecond)
			if us == 0 {
				us = 1 // expiring now: still a deadline, not "none"
			}
		} else {
			us = 1
		}
	}
	var pw payloadWriter
	pw.u64(us)
	copy(b, pw.buf)
}

// retryable reports whether a Run failure may be retried: transport
// errors (the response was lost; dedup makes the re-send idempotent)
// and ErrOverloaded sheds (the queue was full; back off and re-offer).
// Every other typed server error is a deterministic verdict.
func retryable(err error) bool {
	return errors.Is(err, ErrOverloaded) || transient(err)
}

// transient reports connection-level failures that require a redial.
func transient(err error) bool {
	if errors.Is(err, ErrOverloaded) {
		return false // server answered; the connection is fine
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}
