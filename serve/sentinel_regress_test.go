package serve

// Regression tests for the sentinel-wrapping fixes heaxlint flagged in
// this package: wire-code translation and construction errors must be
// branchable with errors.Is, not string-matched.

import (
	"context"
	"errors"
	"testing"

	"heax"
)

// TestCodeToErrWrapsSentinels: every wire code (including the two the
// linter caught returning bare errors — canceled and unknown) decodes
// to an error wrapping the matching sentinel.
func TestCodeToErrWrapsSentinels(t *testing.T) {
	cases := []struct {
		code byte
		want error
	}{
		{codeCorrupt, heax.ErrCorrupt},
		{codeCanceled, context.Canceled},
		{codeOverloaded, ErrOverloaded},
		{codeDeadline, ErrDeadlineExceeded},
		{codeDraining, ErrServerDraining},
		{codeResourceExhausted, ErrResourceExhausted},
		{codeUnknownTenant, ErrUnknownTenant},
		{codeTenantExists, ErrTenantExists},
		{codeUnknownPlan, ErrUnknownPlan},
		{codeKeyMissing, heax.ErrKeyMissing},
		{codeInternal, ErrInternal},
	}
	for _, tc := range cases {
		if err := codeToErr(tc.code, "boom"); !errors.Is(err, tc.want) {
			t.Errorf("codeToErr(%d): %v does not wrap %v", tc.code, err, tc.want)
		}
	}
	// A code from a future wire dialect is protocol corruption, so
	// client retry logic refuses to hammer an incompatible endpoint.
	if err := codeToErr(0xEE, "???"); !errors.Is(err, heax.ErrCorrupt) {
		t.Errorf("codeToErr(unknown): %v does not wrap heax.ErrCorrupt", err)
	}
}

// TestCodeRoundTrip: errors.Is survives an errToCode/codeToErr wire
// round trip for the retryable sentinels the client branches on.
func TestCodeRoundTrip(t *testing.T) {
	for _, sentinel := range []error{
		ErrOverloaded, ErrServerDraining, ErrDeadlineExceeded,
		ErrResourceExhausted, ErrUnknownTenant, heax.ErrCorrupt,
	} {
		code, msg := errToCode(sentinel)
		if err := codeToErr(code, msg); !errors.Is(err, sentinel) {
			t.Errorf("round trip lost %v (code %d): got %v", sentinel, code, err)
		}
	}
}

// TestNewServerNilParams: construction misuse is a typed sentinel, not
// a panic (nopanic) and not a bare errors.New (sentinelwrap).
func TestNewServerNilParams(t *testing.T) {
	if _, err := NewServer(nil); !errors.Is(err, errNilParams) {
		t.Errorf("NewServer(nil): %v, want errNilParams", err)
	}
}

// TestPayloadReaderCorrupt: truncated and oversized fields wrap
// heax.ErrCorrupt so the server maps them to the wire's corrupt code.
func TestPayloadReaderCorrupt(t *testing.T) {
	var w payloadWriter
	w.u32(maxStringLen + 1)
	r := payloadReader{buf: w.buf}
	if _, err := r.str("name"); !errors.Is(err, heax.ErrCorrupt) {
		t.Errorf("oversized string length: %v, want ErrCorrupt", err)
	}

	r = payloadReader{buf: []byte{1, 2}}
	if _, err := r.u32("field"); !errors.Is(err, heax.ErrCorrupt) {
		t.Errorf("truncated u32: %v, want ErrCorrupt", err)
	}

	r = payloadReader{buf: []byte{0xFF}}
	if err := r.done("frame"); !errors.Is(err, heax.ErrCorrupt) {
		t.Errorf("trailing garbage: %v, want ErrCorrupt", err)
	}
}
