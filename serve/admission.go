package serve

// Weighted-fair admission with deadline-aware load shedding: the
// replacement for the global FIFO window. Every tenant owns a bounded
// queue of run jobs (one job per input set) and a stride-scheduling
// pass value; executors always dispatch from the backlogged tenant
// with the lowest pass, advancing it by strideScale/weight per job, so
// under saturation tenants complete work in proportion to their
// configured weights and a heavy tenant can never starve a light one.
// A per-tenant in-flight cap bounds how many executors one tenant may
// occupy at once; capped tenants are simply skipped, never blocking
// another tenant's dispatch.
//
// Shedding happens at submit time, in O(tenants) under one lock:
//   - a queue beyond TenantPolicy.MaxQueued rejects with ErrOverloaded
//     instead of blocking (the old window blocked unboundedly);
//   - a request carrying a deadline budget is checked against a moving
//     per-plan run-time estimate (EWMA, fed back by the executors): if
//     backlog*est/workers + ceil(k/workers)*est already exceeds the
//     budget, the request is rejected with ErrDeadlineExceeded in
//     O(ms) rather than timing out mid-run after eating an executor.

import (
	"fmt"
	"sync"
	"time"

	"heax/obs"
)

// TenantPolicy shapes one tenant's share of the admission layer.
// The zero value of any field selects the server default.
type TenantPolicy struct {
	// Weight is the tenant's share of the executor pool under
	// contention: at saturation, a weight-2 tenant completes twice the
	// runs of a weight-1 tenant (default 1).
	Weight int
	// MaxInFlight caps how many of the tenant's input sets may execute
	// concurrently (0 = no cap beyond the admission window). A stalled
	// or flooding tenant at its cap is skipped by the dispatcher, never
	// blocking other tenants.
	MaxInFlight int
	// MaxQueued bounds the tenant's admission queue in input sets
	// (default DefaultTenantQueue); a full queue rejects with
	// ErrOverloaded immediately instead of blocking.
	MaxQueued int
	// MaxBytes caps the tenant's server-side memory footprint: uploaded
	// evaluation-key bytes plus the estimated working set of every
	// queued and executing run (0 = unlimited). Work that would exceed
	// the cap is shed with ErrResourceExhausted before any allocation,
	// so one tenant's key set and backlog cannot squeeze the others out
	// of memory.
	MaxBytes int64
}

// DefaultTenantQueue is the default per-tenant admission-queue bound
// (input sets), overridable per tenant with WithTenantPolicy.
const DefaultTenantQueue = 64

// strideScale is the stride-scheduling quantum: a tenant's pass
// advances by strideScale/weight per dispatched job, so larger weights
// advance slower and win dispatch more often.
const strideScale = 1 << 20

type tenantQueue struct {
	name      string
	pol       TenantPolicy
	pass      uint64
	jobs      []*runJob
	inFlight  int
	completed int64 // dispatched jobs that finished executing (fairness tests)
	// liveBytes is the estimated working set of the tenant's queued and
	// executing jobs, charged at submit and released by done — the run
	// half of the MaxBytes budget (keys are charged by the caller).
	liveBytes int64

	// Cached obs children (set once in queueFor, immutable after): the
	// hot-path updates below are single atomic ops, never a vec lookup.
	mDepth     *obs.Gauge
	mLag       *obs.Gauge
	mQueued    *obs.Counter
	mCompleted *obs.Counter
}

type admitter struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers int
	def     TenantPolicy
	pinned  map[string]TenantPolicy
	queues  map[string]*tenantQueue

	// vtime is the pass of the last dispatched job: a tenant going from
	// idle to backlogged starts at max(its pass, vtime), so it competes
	// fairly from now on instead of bursting on its idle credit.
	vtime         uint64
	queuedTotal   int
	inFlightTotal int
	shedTotal     int64
	closed        bool

	m *serveMetrics
}

func newAdmitter(workers int, def TenantPolicy, pinned map[string]TenantPolicy, m *serveMetrics) *admitter {
	a := &admitter{
		workers: workers,
		def:     normalizePolicy(def, TenantPolicy{Weight: 1, MaxQueued: DefaultTenantQueue}),
		pinned:  make(map[string]TenantPolicy, len(pinned)),
		queues:  make(map[string]*tenantQueue),
		m:       m,
	}
	for name, pol := range pinned {
		a.pinned[name] = pol
	}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// normalizePolicy fills zero fields of p from def and clamps nonsense.
func normalizePolicy(p, def TenantPolicy) TenantPolicy {
	if p.Weight < 1 {
		p.Weight = def.Weight
	}
	if p.Weight < 1 {
		p.Weight = 1
	}
	if p.MaxInFlight < 0 {
		p.MaxInFlight = 0
	}
	if p.MaxInFlight == 0 {
		p.MaxInFlight = def.MaxInFlight
	}
	if p.MaxQueued < 1 {
		p.MaxQueued = def.MaxQueued
	}
	if p.MaxQueued < 1 {
		p.MaxQueued = DefaultTenantQueue
	}
	if p.MaxBytes <= 0 {
		p.MaxBytes = def.MaxBytes
	}
	if p.MaxBytes < 0 {
		p.MaxBytes = 0
	}
	return p
}

// queueFor returns (creating if needed) the tenant's queue. Caller
// holds a.mu.
func (a *admitter) queueFor(name string) *tenantQueue {
	tq, ok := a.queues[name]
	if !ok {
		tq = &tenantQueue{
			name:       name,
			pol:        normalizePolicy(a.pinned[name], a.def),
			mDepth:     a.m.queueDepth.With(name),
			mLag:       a.m.strideLag.With(name),
			mQueued:    a.m.queued.With(name),
			mCompleted: a.m.completed.With(name),
		}
		a.queues[name] = tq
	}
	return tq
}

// submit enqueues one request's jobs all-or-nothing. keyBytes is the
// tenant's registered key footprint and each job must carry its
// estimated run working set in job.bytes — together they are checked
// against TenantPolicy.MaxBytes. budget is the request's remaining
// deadline budget (0 = none); estNS the moving per-run estimate for
// its plan in nanoseconds (0 = unknown, no deadline shedding). Typed
// errors reject immediately: ErrOverloaded on a full queue,
// ErrResourceExhausted on a blown memory budget, ErrDeadlineExceeded
// on an unmeetable budget.
func (a *admitter) submit(name string, jobs []*runJob, keyBytes int64, budget time.Duration, estNS int64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return ErrServerClosed
	}
	tq := a.queueFor(name)
	if len(tq.jobs)+len(jobs) > tq.pol.MaxQueued {
		a.shedTotal++
		a.m.shed.With(name, "overloaded").Inc()
		return fmt.Errorf("%w: tenant %q admission queue holds %d of %d input sets",
			ErrOverloaded, name, len(tq.jobs), tq.pol.MaxQueued)
	}
	var runBytes int64
	for _, job := range jobs {
		runBytes += job.bytes
	}
	if tq.pol.MaxBytes > 0 && keyBytes+tq.liveBytes+runBytes > tq.pol.MaxBytes {
		a.shedTotal++
		a.m.shed.With(name, "memory").Inc()
		return fmt.Errorf("%w: tenant %q would hold %d bytes (keys %d + live runs %d + this request %d) of a %d-byte budget",
			ErrResourceExhausted, name, keyBytes+tq.liveBytes+runBytes, keyBytes, tq.liveBytes, runBytes, tq.pol.MaxBytes)
	}
	if budget > 0 && estNS > 0 {
		est := time.Duration(estNS)
		backlog := a.queuedTotal + a.inFlightTotal
		wait := time.Duration(backlog) * est / time.Duration(a.workers)
		waves := (len(jobs) + a.workers - 1) / a.workers
		need := wait + time.Duration(waves)*est
		if need > budget {
			a.shedTotal++
			a.m.shed.With(name, "deadline").Inc()
			return fmt.Errorf("%w: estimated %v queue wait + run time exceeds the %v budget (shed before queuing)",
				ErrDeadlineExceeded, need.Round(time.Microsecond), budget.Round(time.Microsecond))
		}
	}
	if len(tq.jobs) == 0 && tq.pass < a.vtime {
		tq.pass = a.vtime
	}
	tq.jobs = append(tq.jobs, jobs...)
	tq.liveBytes += runBytes
	a.queuedTotal += len(jobs)
	tq.mQueued.Add(uint64(len(jobs)))
	tq.mDepth.Set(float64(len(tq.jobs)))
	a.cond.Broadcast()
	return nil
}

// next blocks until a job is dispatchable and returns it with its
// tenant queue (pass done when execution finishes). It keeps draining
// queued jobs after close — their contexts are cancelled, so they
// error out fast — and returns ok=false only when closed and empty.
func (a *admitter) next() (*runJob, *tenantQueue, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		var best *tenantQueue
		for _, tq := range a.queues {
			if len(tq.jobs) == 0 {
				continue
			}
			if tq.pol.MaxInFlight > 0 && tq.inFlight >= tq.pol.MaxInFlight {
				continue
			}
			// Ties break by name so the dispatch order is deterministic
			// (map iteration is not).
			if best == nil || tq.pass < best.pass || (tq.pass == best.pass && tq.name < best.name) {
				best = tq
			}
		}
		if best != nil {
			job := best.jobs[0]
			best.jobs[0] = nil
			best.jobs = best.jobs[1:]
			if len(best.jobs) == 0 {
				best.jobs = nil // release the drained backing array
			}
			a.queuedTotal--
			best.inFlight++
			a.inFlightTotal++
			a.vtime = best.pass
			best.pass += strideScale / uint64(best.pol.Weight)
			best.mDepth.Set(float64(len(best.jobs)))
			// pass and vtime are monotonic uint64s; the signed difference
			// survives wraparound and reads as "how far ahead of the
			// scheduler's clock this tenant has been pushed".
			best.mLag.Set(float64(int64(best.pass - a.vtime)))
			return job, best, true
		}
		if a.closed && a.queuedTotal == 0 {
			return nil, nil, false
		}
		a.cond.Wait()
	}
}

// done releases the executor slot and memory charge (the job's
// submit-time byte estimate) a dispatched job occupied.
func (a *admitter) done(tq *tenantQueue, bytes int64) {
	a.mu.Lock()
	tq.inFlight--
	a.inFlightTotal--
	tq.completed++
	tq.liveBytes -= bytes
	if tq.liveBytes < 0 {
		tq.liveBytes = 0
	}
	a.cond.Broadcast()
	a.mu.Unlock()
}

// setPolicy installs a tenant policy at runtime: future submissions
// (including jobs already backlogged — the queue's policy pointer is
// swapped, not the queue) see the new weight, caps, and byte budget
// immediately. Zero fields select the server default, as at startup.
func (a *admitter) setPolicy(name string, pol TenantPolicy) {
	a.mu.Lock()
	a.pinned[name] = pol
	if tq, ok := a.queues[name]; ok {
		tq.pol = normalizePolicy(pol, a.def)
	}
	a.cond.Broadcast() // a raised MaxInFlight may unblock dispatch
	a.mu.Unlock()
}

// policyFor reports the effective (normalized) policy for a tenant.
func (a *admitter) policyFor(name string) TenantPolicy {
	a.mu.Lock()
	defer a.mu.Unlock()
	if tq, ok := a.queues[name]; ok {
		return tq.pol
	}
	return normalizePolicy(a.pinned[name], a.def)
}

// liveBytesFor reports the tenant's current admitted working set
// (test observability for the budget accounting).
func (a *admitter) liveBytesFor(name string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if tq, ok := a.queues[name]; ok {
		return tq.liveBytes
	}
	return 0
}

// close stops admission; executors drain what is queued and exit.
func (a *admitter) close() {
	a.mu.Lock()
	a.closed = true
	a.cond.Broadcast()
	a.mu.Unlock()
}

// dropIdle forgets an evicted tenant's queue state if it is quiescent
// (a non-empty queue keeps its state until the jobs drain), and with it
// the tenant's per-tenant metric children.
func (a *admitter) dropIdle(name string) {
	a.mu.Lock()
	if tq, ok := a.queues[name]; ok && len(tq.jobs) == 0 && tq.inFlight == 0 {
		delete(a.queues, name)
		a.m.dropTenant(name)
	}
	a.mu.Unlock()
}

// snapshot reports queue occupancy for Stats.
func (a *admitter) snapshot() (queued int, shed int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queuedTotal, a.shedTotal
}

// tenantCompleted reports how many of a tenant's jobs finished
// executing (test observability for the fairness contract).
func (a *admitter) tenantCompleted(name string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if tq, ok := a.queues[name]; ok {
		return tq.completed
	}
	return 0
}
