package serve

// White-box units: registry reference counting, LRU cache mechanics,
// frame codec robustness, and the disconnect watcher.

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"heax"
	"heax/obs"
)

func TestRegistryRefCountedEviction(t *testing.T) {
	r := newRegistry()
	evk := &heax.EvaluationKeySet{}
	if err := r.register("a", evk, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.register("a", evk, 0); !errors.Is(err, ErrTenantExists) {
		t.Fatalf("want ErrTenantExists, got %v", err)
	}
	e1, err := r.acquire("a") // a cached plan's reference
	if err != nil {
		t.Fatal(err)
	}
	e2, err := r.acquire("a") // an in-flight compile's reference
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("acquisitions must share the entry")
	}
	if err := r.unregister("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.acquire("a"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("acquire after eviction must fail, got %v", err)
	}
	if e1.retired {
		t.Fatal("keys retired while references are outstanding")
	}
	r.release(e1)
	if e1.retired {
		t.Fatal("keys retired before the last reference drained")
	}
	r.release(e2)
	if !e1.retired {
		t.Fatal("keys must retire when the last reference drains after eviction")
	}
	// The name is immediately reusable with fresh keys.
	if err := r.register("a", &heax.EvaluationKeySet{}, 0); err != nil {
		t.Fatal(err)
	}
	if r.len() != 1 {
		t.Fatalf("registry holds %d tenants, want 1", r.len())
	}
}

func TestPlanCacheLRU(t *testing.T) {
	c := newPlanCache(2, newServeMetrics(obs.NewRegistry()))
	mk := func(tenant string, b byte) *cachedPlan {
		var id PlanID
		id[0] = b
		return &cachedPlan{key: cacheKey{tenant: tenant, id: id}, tenant: &tenantEntry{name: tenant}}
	}
	p1, p2, p3 := mk("t", 1), mk("t", 2), mk("u", 3)
	if ev := c.add(p1); len(ev) != 0 {
		t.Fatal("no eviction expected")
	}
	if ev := c.add(p2); len(ev) != 0 {
		t.Fatal("no eviction expected")
	}
	// Touch p1 so p2 is the LRU victim.
	if _, ok := c.get(p1.key); !ok {
		t.Fatal("p1 must be cached")
	}
	ev := c.add(p3)
	if len(ev) != 1 || ev[0] != p2 {
		t.Fatalf("LRU eviction should retire p2, got %v", ev)
	}
	if _, ok := c.get(p2.key); ok {
		t.Fatal("p2 must be gone")
	}
	// Racing duplicate: the incumbent wins, the newcomer is returned
	// for release.
	dup := mk("t", 1)
	if ev := c.add(dup); len(ev) != 1 || ev[0] != dup {
		t.Fatal("duplicate add must retire the newcomer")
	}
	// purgeTenant removes only that tenant's plans.
	purged := c.purgeTenant("t")
	if len(purged) != 1 || purged[0] != p1 {
		t.Fatalf("purge of t should return p1, got %v", purged)
	}
	if c.len() != 1 {
		t.Fatalf("cache holds %d plans, want 1 (u)", c.len())
	}
}

func TestFrameCodec(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, reqParams, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(bytes.NewReader(buf.Bytes()), DefaultMaxFrame)
	if err != nil || typ != reqParams || string(payload) != "abc" {
		t.Fatalf("round trip: %v %v %q", typ, err, payload)
	}
	// Truncations inside the frame are corrupt; an empty stream is EOF.
	valid := buf.Bytes()
	for cut := 1; cut < len(valid); cut++ {
		_, _, err := readFrame(bytes.NewReader(valid[:cut]), DefaultMaxFrame)
		if err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xff
	if _, _, err := readFrame(bytes.NewReader(bad), DefaultMaxFrame); !errors.Is(err, heax.ErrCorrupt) {
		t.Fatalf("bad magic must be ErrCorrupt, got %v", err)
	}
	// Oversized claim is rejected before allocation.
	huge := append([]byte(nil), valid[:5]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0x7f)
	if _, _, err := readFrame(bytes.NewReader(huge), 1<<20); !errors.Is(err, heax.ErrCorrupt) {
		t.Fatalf("oversized frame must be ErrCorrupt, got %v", err)
	}
}

func TestPayloadReaderBounds(t *testing.T) {
	var pw payloadWriter
	if err := pw.str("tenant"); err != nil {
		t.Fatal(err)
	}
	pw.blob([]byte{1, 2, 3})
	pr := payloadReader{buf: pw.buf}
	if s, err := pr.str("name"); err != nil || s != "tenant" {
		t.Fatalf("%q %v", s, err)
	}
	if b, err := pr.blob("blob"); err != nil || len(b) != 3 {
		t.Fatalf("%v %v", b, err)
	}
	if err := pr.done("payload"); err != nil {
		t.Fatal(err)
	}
	// Trailing garbage is corrupt.
	pr = payloadReader{buf: append(pw.buf, 0)}
	pr.str("name")
	pr.blob("blob")
	if err := pr.done("payload"); !errors.Is(err, heax.ErrCorrupt) {
		t.Fatalf("trailing bytes must be ErrCorrupt, got %v", err)
	}
	// A blob length beyond the payload is corrupt, not an allocation.
	pr = payloadReader{buf: []byte{0xff, 0xff, 0xff, 0x7f}}
	if _, err := pr.blob("blob"); !errors.Is(err, heax.ErrCorrupt) {
		t.Fatalf("oversized blob must be ErrCorrupt, got %v", err)
	}
}

// TestWatchDisconnectCancels: closing the peer cancels the context;
// pipelined data or a quiet, live peer does not.
func TestWatchDisconnect(t *testing.T) {
	t.Run("peer close cancels", func(t *testing.T) {
		srv, cli := net.Pipe()
		defer srv.Close()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		stop := watchDisconnect(srv, bufio.NewReader(srv), cancel)
		cli.Close()
		select {
		case <-ctx.Done():
		case <-time.After(5 * time.Second):
			t.Fatal("disconnect did not cancel the context")
		}
		stop()
	})
	t.Run("live peer does not cancel", func(t *testing.T) {
		srv, cli := net.Pipe()
		defer srv.Close()
		defer cli.Close()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		stop := watchDisconnect(srv, bufio.NewReader(srv), cancel)
		time.Sleep(20 * time.Millisecond)
		stop() // unblocks the peek via the read deadline
		if ctx.Err() != nil {
			t.Fatal("idle live peer must not cancel")
		}
	})
	t.Run("pipelined data does not cancel", func(t *testing.T) {
		srv, cli := net.Pipe()
		defer srv.Close()
		defer cli.Close()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		br := bufio.NewReader(srv)
		stop := watchDisconnect(srv, br, cancel)
		go cli.Write([]byte{0x42})
		time.Sleep(20 * time.Millisecond)
		stop()
		if ctx.Err() != nil {
			t.Fatal("pipelined data must not cancel")
		}
		// The byte was peeked, not consumed.
		b, err := br.ReadByte()
		if err != nil || b != 0x42 {
			t.Fatalf("pipelined byte lost: %v %v", b, err)
		}
	})
}

// FuzzReadFrame: the frame reader must never panic or over-allocate on
// arbitrary bytes.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	writeFrame(&buf, reqRun, bytes.Repeat([]byte{7}, 32))
	valid := buf.Bytes()
	f.Add(valid)
	for _, cut := range []int{0, 4, 5, 8, 9, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bytes.NewReader(data), 1<<16)
		if err != nil {
			return
		}
		if len(payload) > 1<<16 {
			t.Fatalf("frame reader over-allocated %d bytes", len(payload))
		}
		_ = typ
	})
}

// FuzzHandleCompilePayload: the compile handler must reject arbitrary
// payloads with typed errors, never panic — it is the most
// parse-heavy request (string + JSON DAG + compilation).
func FuzzHandleCompilePayload(f *testing.F) {
	params := heax.MustParams(heax.ParamSpec{Name: "fuzz", LogN: 4, QBits: []int{30, 30}, PBits: 31, LogScale: 20})
	s, err := NewServer(params, WithAdmissionWindow(1))
	if err != nil {
		f.Fatal(err)
	}
	defer s.Close()
	kg := heax.NewKeyGenerator(params, 2)
	sk := kg.GenSecretKey()
	if err := s.reg.register("t", heax.GenEvaluationKeys(kg, sk, []int{1}, false), 0); err != nil {
		f.Fatal(err)
	}
	c := heax.NewCircuit()
	c.Output("y", c.Rotate(c.Input("x"), 1))
	dag, err := c.MarshalJSON()
	if err != nil {
		f.Fatal(err)
	}
	var pw payloadWriter
	pw.str("t")
	pw.blob(dag)
	f.Add(pw.buf)
	f.Add(pw.buf[:len(pw.buf)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s.handleCompile(data) // must not panic
	})
}

// TestRegistryRetainAcrossEviction: a run's retain keeps a specific
// entry alive across unregister; retain after the references drain
// fails.
func TestRegistryRetainAcrossEviction(t *testing.T) {
	r := newRegistry()
	if err := r.register("a", &heax.EvaluationKeySet{}, 0); err != nil {
		t.Fatal(err)
	}
	e, err := r.acquire("a") // the cached plan's reference
	if err != nil {
		t.Fatal(err)
	}
	if !r.retain(e) { // an in-flight run's reference
		t.Fatal("retain on a live entry must succeed")
	}
	if err := r.unregister("a"); err != nil {
		t.Fatal(err)
	}
	r.release(e) // the cached plan is purged
	if e.retired {
		t.Fatal("keys retired while a run still holds them")
	}
	r.release(e) // the run finishes
	if !e.retired {
		t.Fatal("keys must retire once the run's reference drains")
	}
	if r.retain(e) {
		t.Fatal("retain on a drained entry must fail")
	}
}
