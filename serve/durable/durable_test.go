package durable

// Crash-injection tests for the snapshot + WAL store: every scenario
// damages the on-disk state the way a real crash can — torn tails at
// every byte offset, bit flips, interrupted compactions, leftover temp
// files — and asserts recovery is bit-identical to the longest durable
// prefix of the history, and that a damaged WAL tail never fails the
// boot.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func keysFor(name string, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(len(name) + i*7)
	}
	return b
}

// applyAll folds records into a map — the in-process oracle recovery is
// diffed against.
func applyAll(recs []Record) map[string][]byte {
	state := make(map[string][]byte)
	for _, r := range recs {
		switch r.Op {
		case OpRegister:
			state[r.Name] = r.Keys
		case OpUnregister:
			delete(state, r.Name)
		}
	}
	return state
}

func assertState(t *testing.T, s *Store, want map[string][]byte) {
	t.Helper()
	got := s.Tenants()
	if len(got) != len(want) {
		t.Fatalf("recovered %d tenants, want %d", len(got), len(want))
	}
	for _, tn := range got {
		wantKeys, ok := want[tn.Name]
		if !ok {
			t.Fatalf("recovered unexpected tenant %q", tn.Name)
		}
		if !bytes.Equal(tn.Keys, wantKeys) {
			t.Fatalf("tenant %q: recovered keys not bit-identical (%d vs %d bytes)", tn.Name, len(tn.Keys), len(wantKeys))
		}
	}
}

var historyRecords = []Record{
	{Op: OpRegister, Name: "alice", Keys: keysFor("alice", 300)},
	{Op: OpRegister, Name: "bob", Keys: keysFor("bob", 75)},
	{Op: OpUnregister, Name: "alice"},
	{Op: OpRegister, Name: "carol", Keys: keysFor("carol", 1)},
	{Op: OpRegister, Name: "alice", Keys: keysFor("alice2", 40)},
}

func appendHistory(t *testing.T, s *Store, recs []Record) {
	t.Helper()
	for _, r := range recs {
		var err error
		if r.Op == OpRegister {
			err = s.AppendRegister(r.Name, r.Keys)
		} else {
			err = s.AppendUnregister(r.Name)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendHistory(t, s, historyRecords)
	// No Close: a crash-only store must recover from an abandoned fd.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	assertState(t, s2, applyAll(historyRecords))
	if d := s2.DroppedTailBytes(); d != 0 {
		t.Fatalf("clean log dropped %d tail bytes", d)
	}
}

// TestTornTailByteExhaustive truncates the WAL at every byte offset —
// every instant a kill -9 can interrupt an append — and asserts
// recovery is exactly the records whose encodings fully landed, with
// the tail truncated away and the boot always clean.
func TestTornTailByteExhaustive(t *testing.T) {
	src := t.TempDir()
	s, err := Open(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendHistory(t, s, historyRecords)
	s.Close()
	wal, err := os.ReadFile(filepath.Join(src, walFile))
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries, to know the expected prefix at each cut.
	var bounds []int
	for off := 0; off < len(wal); {
		_, n, err := DecodeRecord(wal[off:], 0)
		if err != nil {
			t.Fatal(err)
		}
		off += n
		bounds = append(bounds, off)
	}
	for cut := 0; cut <= len(wal); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFile), wal[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: torn tail failed the boot: %v", cut, err)
		}
		survived := 0
		lastGood := 0
		for i, b := range bounds {
			if b <= cut {
				survived = i + 1
				lastGood = b
			}
		}
		assertState(t, s2, applyAll(historyRecords[:survived]))
		if d := s2.DroppedTailBytes(); d != int64(cut-lastGood) {
			t.Fatalf("cut %d: dropped %d tail bytes, want %d", cut, d, cut-lastGood)
		}
		// The truncated store must keep working: append and recover again.
		if err := s2.AppendRegister("post", keysFor("post", 9)); err != nil {
			t.Fatal(err)
		}
		s2.Close()
		s3, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		wantAfter := applyAll(historyRecords[:survived])
		wantAfter["post"] = keysFor("post", 9)
		assertState(t, s3, wantAfter)
		s3.Close()
	}
}

// TestBitFlipTail flips every bit of the WAL's final record: replay
// must stop at the damaged record (recovering everything before it) and
// never fail the boot or mis-apply the record.
func TestBitFlipTail(t *testing.T) {
	src := t.TempDir()
	s, err := Open(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendHistory(t, s, historyRecords)
	s.Close()
	wal, err := os.ReadFile(filepath.Join(src, walFile))
	if err != nil {
		t.Fatal(err)
	}
	lastStart := 0
	for off := 0; off < len(wal); {
		_, n, err := DecodeRecord(wal[off:], 0)
		if err != nil {
			t.Fatal(err)
		}
		if off+n == len(wal) {
			lastStart = off
		}
		off += n
	}
	wantWithoutLast := applyAll(historyRecords[:len(historyRecords)-1])
	for pos := lastStart; pos < len(wal); pos++ {
		for bit := 0; bit < 8; bit++ {
			dir := t.TempDir()
			flipped := append([]byte(nil), wal...)
			flipped[pos] ^= 1 << bit
			if err := os.WriteFile(filepath.Join(dir, walFile), flipped, 0o600); err != nil {
				t.Fatal(err)
			}
			s2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("flip at %d bit %d: failed the boot: %v", pos, bit, err)
			}
			// A flip in the last record's length prefix can make the record
			// claim more bytes than remain (torn) or fail the CRC (corrupt);
			// either way replay stops before it.
			assertState(t, s2, wantWithoutLast)
			s2.Close()
		}
	}
}

// TestCompactionSurvivesStaleWAL: the crash window between the snapshot
// rename and the WAL truncate leaves the full pre-compaction WAL next
// to a snapshot that already covers it; replaying it on top must be a
// no-op (records are idempotent against the state they produced).
func TestCompactionSurvivesStaleWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendHistory(t, s, historyRecords)
	walBytes, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Undo the truncate: the snapshot is committed, the old WAL "still
	// there" — exactly the state a crash between the two steps leaves.
	if err := os.WriteFile(filepath.Join(dir, walFile), walBytes, 0o600); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	assertState(t, s2, applyAll(historyRecords))
}

// TestCompactionLeftoverTemp: a crash mid-snapshot-write leaves
// tenants.snap.tmp; Open must ignore and remove it, recovering from the
// committed pair.
func TestCompactionLeftoverTemp(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendHistory(t, s, historyRecords)
	s.Close()
	tmp := filepath.Join(dir, snapTmpFile)
	if err := os.WriteFile(tmp, []byte("half-written snapsho"), 0o600); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	assertState(t, s2, applyAll(historyRecords))
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("interrupted temp snapshot not cleaned up")
	}
}

// TestCompactThenRecover: after compaction the state lives in the
// snapshot alone; recovery and further appends must still work.
func TestCompactThenRecover(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendHistory(t, s, historyRecords)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendUnregister("bob"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	want := applyAll(historyRecords)
	delete(want, "bob")
	assertState(t, s2, want)
}

// TestAutoCompaction: appends past the threshold shrink the WAL
// automatically.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CompactBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.AppendRegister("t", keysFor("t", 64)); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	walSize := s.walSize
	s.mu.Unlock()
	if walSize > 256 {
		t.Fatalf("WAL holds %d bytes; auto-compaction never ran", walSize)
	}
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	assertState(t, s2, map[string][]byte{"t": keysFor("t", 64)})
}

// TestSnapshotCorruptionFailsLoudly: unlike the WAL tail, the snapshot
// commits atomically — damage there is real corruption and must fail
// the boot with the typed error, not silently drop tenants.
func TestSnapshotCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendHistory(t, s, historyRecords)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, snapFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot: got %v, want ErrCorrupt", err)
	}
}

// TestEncodeRecordRejectsInvalid: unwritable records are refused before
// they can poison the log.
func TestEncodeRecordRejectsInvalid(t *testing.T) {
	cases := []Record{
		{Op: OpRegister, Name: ""},
		{Op: OpRegister, Name: string(make([]byte, MaxNameLen+1))},
		{Op: OpUnregister, Name: "x", Keys: []byte{1}},
		{Op: 0x7f, Name: "x"},
	}
	for i, rec := range cases {
		if _, err := EncodeRecord(nil, rec); err == nil {
			t.Fatalf("case %d: invalid record encoded", i)
		}
	}
}

// TestDecodeRecordCaps: a hostile length prefix is rejected before any
// allocation it implies.
func TestDecodeRecordCaps(t *testing.T) {
	b := []byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}
	if _, _, err := DecodeRecord(b, 1<<20); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: got %v, want ErrCorrupt", err)
	}
}

// FuzzWALRecord: arbitrary bytes through the record decoder must yield
// either a typed error (ErrTorn or ErrCorrupt) or a record whose
// re-encoding is bit-identical to the consumed input — never a panic,
// never an unchecked allocation.
func FuzzWALRecord(f *testing.F) {
	for _, rec := range historyRecords {
		b, err := EncodeRecord(nil, rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)-1])
		f.Add(b[:recHeaderLen])
		flipped := append([]byte(nil), b...)
		flipped[len(flipped)/2] ^= 1
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data, 1<<20)
		if err != nil {
			if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("malformed record: untyped error %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decoded record consumed %d of %d bytes", n, len(data))
		}
		enc, err := EncodeRecord(nil, rec)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		if !bytes.Equal(enc, data[:n]) {
			t.Fatal("re-encoded record not bit-identical to the input")
		}
	})
}
