// Package durable persists heax-serve tenant state — registrations and
// uploaded evaluation-key blobs — across process crashes, so a restarted
// daemon resumes serving plans without clients re-uploading megabytes of
// keys. The store is crash-only by construction: there is no clean-exit
// path the recovery depends on, and a kill -9 at any instant loses at
// most the last unsynced append.
//
// On disk the store is a snapshot plus an append-only write-ahead log:
//
//	state-dir/
//	  tenants.snap   full state at the last compaction (atomic rename)
//	  tenants.wal    register/unregister records appended since
//
// Every record is length-prefixed and checksummed:
//
//	record  := length(u32 LE) | crc32-IEEE(payload)(u32 LE) | payload
//	payload := op(u8) | nameLen(u32 LE) | name | keyLen(u32 LE) | keys
//
// (the key field is present only for OpRegister). Replay applies records
// in order; the first record that fails to decode — truncated header,
// length past the end of the file, checksum mismatch, malformed payload
// — marks the torn tail left by a crash mid-append: replay stops there,
// the log is truncated back to the last good record, and the boot
// proceeds. A damaged tail is recovery, never an error; only a corrupt
// snapshot (which is written atomically and therefore cannot be torn)
// fails Open.
//
// Compaction rewrites the snapshot (temp file + fsync + rename + parent
// directory fsync) and only then truncates the log, so a crash at any
// point between those steps leaves a recoverable combination.
//
// The fsync policy trades durability for append latency: FsyncAlways
// makes every acknowledged registration survive power loss at the cost
// of one fsync per append; FsyncNever leaves flushing to the OS, so a
// machine-level crash (not a mere process kill) may lose the last few
// records.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Record operations.
const (
	// OpRegister binds a tenant name to an evaluation-key blob.
	OpRegister byte = 1
	// OpUnregister frees a tenant name; its key blob is forgotten.
	OpUnregister byte = 2
)

// Typed decode failures. Both mark a record that cannot be applied;
// replay treats either as the torn tail of a crashed append.
var (
	// ErrCorrupt: a structurally complete record failed validation —
	// checksum mismatch, unknown op, or lengths that disagree.
	ErrCorrupt = errors.New("durable: corrupt record")
	// ErrTorn: the buffer ends before the record does — the truncated
	// tail a crash mid-append leaves behind.
	ErrTorn = errors.New("durable: torn record")
	// ErrInvalidRecord: EncodeRecord refused a record that would be
	// unreadable on replay (empty or oversized name, keys on an
	// unregister, unknown op). Nothing was written.
	ErrInvalidRecord = errors.New("durable: invalid record")
	// ErrClosed: the store has been closed; no further appends,
	// compactions, or reads are possible.
	ErrClosed = errors.New("durable: store closed")
)

// MaxNameLen bounds a tenant name in a record (matches the serving
// protocol's string cap).
const MaxNameLen = 1 << 8

// DefaultMaxRecordBytes caps a single record (1 GiB — large enough for
// any evaluation-key upload the wire format accepts) so a corrupt
// length prefix can never drive a huge allocation during replay.
const DefaultMaxRecordBytes = 1 << 30

// DefaultCompactBytes is the WAL size past which an append triggers an
// automatic compaction (snapshot rewrite + log reset).
const DefaultCompactBytes = 64 << 20

const (
	snapFile    = "tenants.snap"
	snapTmpFile = "tenants.snap.tmp"
	walFile     = "tenants.wal"

	snapMagic   uint32 = 0x44584548 // "HEXD"
	snapVersion byte   = 1

	recHeaderLen = 8 // u32 length + u32 crc
)

// Record is one durable state transition.
type Record struct {
	Op   byte
	Name string
	// Keys is the serialized evaluation-key blob (OpRegister only).
	Keys []byte
}

// Tenant is one recovered registration.
type Tenant struct {
	Name string
	Keys []byte
}

// FsyncPolicy selects when the WAL is flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: an acknowledged
	// registration survives power loss.
	FsyncAlways FsyncPolicy = iota
	// FsyncNever leaves flushing to the OS page cache: appends are
	// cheap, and a process kill (the common crash) still loses nothing,
	// but a machine crash may drop the most recent records.
	FsyncNever
)

// Options configures a Store.
type Options struct {
	// Fsync is the append flush policy (default FsyncAlways).
	Fsync FsyncPolicy
	// CompactBytes triggers automatic compaction when the WAL grows
	// past it (0 = DefaultCompactBytes, negative = never auto-compact).
	CompactBytes int64
	// MaxRecordBytes caps one record (0 = DefaultMaxRecordBytes).
	MaxRecordBytes int
}

// EncodeRecord appends r's wire encoding to buf and returns the
// extended slice. Invalid records (empty or oversized name, keys on an
// unregister) are refused rather than written unreadably.
func EncodeRecord(buf []byte, r Record) ([]byte, error) {
	if len(r.Name) == 0 || len(r.Name) > MaxNameLen {
		return nil, fmt.Errorf("%w: tenant name length %d out of range [1, %d]", ErrInvalidRecord, len(r.Name), MaxNameLen)
	}
	switch r.Op {
	case OpRegister:
	case OpUnregister:
		if len(r.Keys) != 0 {
			return nil, fmt.Errorf("%w: unregister record carries key bytes", ErrInvalidRecord)
		}
	default:
		return nil, fmt.Errorf("%w: unknown record op %#x", ErrInvalidRecord, r.Op)
	}
	payloadLen := 1 + 4 + len(r.Name)
	if r.Op == OpRegister {
		payloadLen += 4 + len(r.Keys)
	}
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	buf = append(buf, 0, 0, 0, 0) // crc backfilled below
	buf = append(buf, r.Op)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Name)))
	buf = append(buf, r.Name...)
	if r.Op == OpRegister {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Keys)))
		buf = append(buf, r.Keys...)
	}
	crc := crc32.ChecksumIEEE(buf[start+recHeaderLen:])
	binary.LittleEndian.PutUint32(buf[start+4:], crc)
	return buf, nil
}

// DecodeRecord parses one record from the front of b, returning the
// record and the bytes it consumed. A buffer that ends mid-record fails
// with ErrTorn; a complete record that fails validation (checksum, op,
// internal lengths) fails with ErrCorrupt. maxRecord caps the length
// prefix (<= 0 selects DefaultMaxRecordBytes). It never panics and
// never allocates based on an unverified length.
func DecodeRecord(b []byte, maxRecord int) (Record, int, error) {
	if maxRecord <= 0 {
		maxRecord = DefaultMaxRecordBytes
	}
	if len(b) < recHeaderLen {
		return Record{}, 0, fmt.Errorf("%w: %d header bytes of %d", ErrTorn, len(b), recHeaderLen)
	}
	payloadLen := binary.LittleEndian.Uint32(b)
	if int64(payloadLen) > int64(maxRecord) {
		return Record{}, 0, fmt.Errorf("%w: payload length %d exceeds the %d-byte record cap", ErrCorrupt, payloadLen, maxRecord)
	}
	total := recHeaderLen + int(payloadLen)
	if len(b) < total {
		return Record{}, 0, fmt.Errorf("%w: record claims %d bytes, %d remain", ErrTorn, total, len(b))
	}
	payload := b[recHeaderLen:total]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(b[4:]); got != want {
		return Record{}, 0, fmt.Errorf("%w: checksum %#x, want %#x", ErrCorrupt, got, want)
	}
	if len(payload) < 5 {
		return Record{}, 0, fmt.Errorf("%w: payload of %d bytes cannot hold op and name length", ErrCorrupt, len(payload))
	}
	rec := Record{Op: payload[0]}
	nameLen := binary.LittleEndian.Uint32(payload[1:])
	if nameLen == 0 || nameLen > MaxNameLen || int(nameLen) > len(payload)-5 {
		return Record{}, 0, fmt.Errorf("%w: name length %d out of range", ErrCorrupt, nameLen)
	}
	rec.Name = string(payload[5 : 5+nameLen])
	rest := payload[5+nameLen:]
	switch rec.Op {
	case OpRegister:
		if len(rest) < 4 {
			return Record{}, 0, fmt.Errorf("%w: register record missing key length", ErrCorrupt)
		}
		keyLen := binary.LittleEndian.Uint32(rest)
		if int(keyLen) != len(rest)-4 {
			return Record{}, 0, fmt.Errorf("%w: key length %d does not match the %d remaining bytes", ErrCorrupt, keyLen, len(rest)-4)
		}
		rec.Keys = append([]byte(nil), rest[4:]...)
	case OpUnregister:
		if len(rest) != 0 {
			return Record{}, 0, fmt.Errorf("%w: unregister record carries %d trailing bytes", ErrCorrupt, len(rest))
		}
	default:
		return Record{}, 0, fmt.Errorf("%w: unknown record op %#x", ErrCorrupt, rec.Op)
	}
	return rec, total, nil
}

// Store is the durable tenant-state store: an in-memory mirror of the
// registrations, backed by the snapshot + WAL pair. Safe for concurrent
// use.
type Store struct {
	mu      sync.Mutex
	dir     string
	opts    Options
	wal     *os.File
	walSize int64
	state   map[string][]byte
	dropped int64
	closed  bool
}

// Open loads (creating if needed) the store in dir: the snapshot is
// read, the WAL replayed on top of it — tolerating a torn tail, which
// is truncated away — and the WAL reopened for appending. The recovered
// registrations are available via Tenants.
func Open(dir string, opts Options) (*Store, error) {
	if opts.CompactBytes == 0 {
		opts.CompactBytes = DefaultCompactBytes
	}
	if opts.MaxRecordBytes <= 0 {
		opts.MaxRecordBytes = DefaultMaxRecordBytes
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("durable: creating state dir: %w", err)
	}
	// A leftover temp snapshot is an interrupted compaction that never
	// committed; the durable pair is still (old snapshot, full WAL).
	os.Remove(filepath.Join(dir, snapTmpFile))

	s := &Store{dir: dir, opts: opts, state: make(map[string][]byte)}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) loadSnapshot() error {
	b, err := os.ReadFile(filepath.Join(s.dir, snapFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("durable: reading snapshot: %w", err)
	}
	// The snapshot is rename-committed, so unlike the WAL it is either
	// absent or complete: any damage here is real corruption.
	if len(b) < 5 {
		return fmt.Errorf("%w: snapshot of %d bytes has no header", ErrCorrupt, len(b))
	}
	if got := binary.LittleEndian.Uint32(b); got != snapMagic {
		return fmt.Errorf("%w: snapshot magic %#x, want %#x", ErrCorrupt, got, snapMagic)
	}
	if b[4] != snapVersion {
		return fmt.Errorf("%w: snapshot version %d, want %d", ErrCorrupt, b[4], snapVersion)
	}
	for off := 5; off < len(b); {
		rec, n, err := DecodeRecord(b[off:], s.opts.MaxRecordBytes)
		if err != nil {
			return fmt.Errorf("durable: snapshot record at offset %d: %w", off, err)
		}
		if rec.Op != OpRegister {
			return fmt.Errorf("%w: snapshot holds a non-register record", ErrCorrupt)
		}
		s.state[rec.Name] = rec.Keys
		off += n
	}
	return nil
}

func (s *Store) replayWAL() error {
	path := filepath.Join(s.dir, walFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return fmt.Errorf("durable: opening WAL: %w", err)
	}
	b, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return fmt.Errorf("durable: reading WAL: %w", err)
	}
	off := 0
	for off < len(b) {
		rec, n, err := DecodeRecord(b[off:], s.opts.MaxRecordBytes)
		if err != nil {
			// The torn-tail rule: a record that cannot be applied —
			// truncated, bit-flipped, half a header — is where the crash
			// hit. Everything before it is good; everything from here on
			// is discarded, and the boot proceeds.
			break
		}
		s.apply(rec)
		off += n
	}
	s.dropped = int64(len(b) - off)
	if s.dropped > 0 {
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return fmt.Errorf("durable: truncating torn WAL tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("durable: syncing truncated WAL: %w", err)
		}
	}
	if _, err := f.Seek(int64(off), io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("durable: seeking WAL end: %w", err)
	}
	s.wal, s.walSize = f, int64(off)
	return nil
}

func (s *Store) apply(rec Record) {
	switch rec.Op {
	case OpRegister:
		s.state[rec.Name] = rec.Keys
	case OpUnregister:
		delete(s.state, rec.Name)
	}
}

// Tenants returns the current registrations in name order. The key
// slices are shared with the store; callers must not mutate them.
func (s *Store) Tenants() []Tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Tenant, 0, len(s.state))
	for name, keys := range s.state {
		out = append(out, Tenant{Name: name, Keys: keys})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DroppedTailBytes reports how many torn-tail bytes Open truncated away
// — at most one unsynced record's worth after a crash mid-append.
func (s *Store) DroppedTailBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// AppendRegister durably records a registration. The record is on disk
// (and, under FsyncAlways, on stable storage) before it returns.
func (s *Store) AppendRegister(name string, keys []byte) error {
	return s.append(Record{Op: OpRegister, Name: name, Keys: keys})
}

// AppendUnregister durably records an eviction.
func (s *Store) AppendUnregister(name string) error {
	return s.append(Record{Op: OpUnregister, Name: name})
}

func (s *Store) append(rec Record) error {
	b, err := EncodeRecord(nil, rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, err := s.wal.Write(b); err != nil {
		return fmt.Errorf("durable: appending WAL record: %w", err)
	}
	if s.opts.Fsync == FsyncAlways {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("durable: syncing WAL: %w", err)
		}
	}
	s.walSize += int64(len(b))
	s.apply(rec)
	if s.opts.CompactBytes > 0 && s.walSize > s.opts.CompactBytes {
		return s.compactLocked()
	}
	return nil
}

// Compact rewrites the snapshot from the current state and resets the
// WAL. The snapshot is committed atomically (temp file, fsync, rename,
// directory fsync) before the WAL is touched, so a crash anywhere in
// the sequence recovers either the old pair or the new.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	names := make([]string, 0, len(s.state))
	for name := range s.state {
		names = append(names, name)
	}
	sort.Strings(names)
	buf := make([]byte, 0, 5)
	buf = binary.LittleEndian.AppendUint32(buf, snapMagic)
	buf = append(buf, snapVersion)
	var err error
	for _, name := range names {
		if buf, err = EncodeRecord(buf, Record{Op: OpRegister, Name: name, Keys: s.state[name]}); err != nil {
			return err
		}
	}
	tmp := filepath.Join(s.dir, snapTmpFile)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return fmt.Errorf("durable: creating snapshot temp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("durable: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapFile)); err != nil {
		return fmt.Errorf("durable: committing snapshot: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	// The snapshot now covers everything in the WAL; reset it. A crash
	// before the truncate merely replays records the snapshot already
	// holds (register replay overwrites, unregister replay re-deletes).
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("durable: resetting WAL: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("durable: rewinding WAL: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("durable: syncing reset WAL: %w", err)
	}
	s.walSize = 0
	return nil
}

// syncDir fsyncs a directory so a just-renamed file is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: opening state dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: syncing state dir: %w", err)
	}
	return nil
}

// Close flushes and closes the WAL. The store is crash-only — Close is
// a courtesy for tests and clean shutdowns, and recovery never depends
// on it having run.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return fmt.Errorf("durable: syncing WAL at close: %w", err)
	}
	return s.wal.Close()
}
