package durable

// Regression tests for the sentinels sentinelwrap introduced here:
// encode-time refusals wrap ErrInvalidRecord and use-after-Close wraps
// ErrClosed, so callers branch with errors.Is instead of substring
// matching.

import (
	"errors"
	"strings"
	"testing"
)

func TestEncodeRecordWrapsErrInvalidRecord(t *testing.T) {
	cases := map[string]Record{
		"empty name":         {Op: OpRegister, Name: ""},
		"oversized name":     {Op: OpRegister, Name: strings.Repeat("x", MaxNameLen+1)},
		"keys on unregister": {Op: OpUnregister, Name: "t", Keys: []byte{1}},
		"unknown op":         {Op: 0x7F, Name: "t"},
	}
	for name, rec := range cases {
		if _, err := EncodeRecord(nil, rec); !errors.Is(err, ErrInvalidRecord) {
			t.Errorf("%s: %v, want ErrInvalidRecord", name, err)
		}
	}
}

func TestClosedStoreWrapsErrClosed(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRegister("t", []byte{1}); !errors.Is(err, ErrClosed) {
		t.Errorf("AppendRegister after Close: %v, want ErrClosed", err)
	}
	if err := s.AppendUnregister("t"); !errors.Is(err, ErrClosed) {
		t.Errorf("AppendUnregister after Close: %v, want ErrClosed", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact after Close: %v, want ErrClosed", err)
	}
}
