package serve

// White-box admission tests: deterministic stride-scheduling fairness,
// bounded-queue overload rejection, deadline-infeasibility shedding,
// in-flight caps, and the admission-path microbenchmark.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"heax/obs"
)

func mkJobs(n int) []*runJob {
	ctx := context.Background()
	jobs := make([]*runJob, n)
	for i := range jobs {
		jobs[i] = &runJob{ctx: ctx, wg: &sync.WaitGroup{}}
	}
	return jobs
}

// TestAdmitterWeightedFairDeterministic: with both queues saturated
// and one executor slot, dispatch order follows the 2:1 stride pattern
// exactly — no timing involved.
func TestAdmitterWeightedFairDeterministic(t *testing.T) {
	adm := newAdmitter(1, TenantPolicy{}, map[string]TenantPolicy{
		"heavy": {Weight: 2},
		"light": {Weight: 1},
	}, newServeMetrics(obs.NewRegistry()))
	if err := adm.submit("heavy", mkJobs(20), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := adm.submit("light", mkJobs(10), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 30; i++ {
		_, tq, ok := adm.next()
		if !ok {
			t.Fatal("admitter closed unexpectedly")
		}
		counts[tq.name]++
		// Check the weighted ratio continuously: at any prefix the
		// heavy tenant may lead by at most its weight share.
		if got := counts["light"] * 2; got > counts["heavy"]+2 {
			t.Fatalf("after %d dispatches: light=%d heavy=%d — weights not honored", i+1, counts["light"], counts["heavy"])
		}
		adm.done(tq, 0)
	}
	if counts["heavy"] != 20 || counts["light"] != 10 {
		t.Fatalf("dispatched heavy=%d light=%d, want 20/10", counts["heavy"], counts["light"])
	}
	// At the 2/3 mark the ratio must already be ~2:1, not front-loaded.
}

// TestAdmitterNoStarvation: a flooding heavy tenant cannot push a
// light tenant's jobs out indefinitely — the light tenant's first job
// dispatches within weight+1 rounds of its submission.
func TestAdmitterNoStarvation(t *testing.T) {
	adm := newAdmitter(1, TenantPolicy{}, map[string]TenantPolicy{"flood": {Weight: 8, MaxQueued: 1 << 12}}, newServeMetrics(obs.NewRegistry()))
	if err := adm.submit("flood", mkJobs(64), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Let the flood run a while so its pass advances.
	for i := 0; i < 16; i++ {
		_, tq, _ := adm.next()
		adm.done(tq, 0)
	}
	if err := adm.submit("late", mkJobs(1), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		_, tq, _ := adm.next()
		adm.done(tq, 0)
		if tq.name == "late" {
			return // dispatched promptly despite the backlog
		}
	}
	t.Fatal("light tenant starved behind a weight-8 flood")
}

// TestAdmitterQueueBound: the per-tenant queue rejects with a typed
// ErrOverloaded instead of blocking, all-or-nothing.
func TestAdmitterQueueBound(t *testing.T) {
	adm := newAdmitter(1, TenantPolicy{MaxQueued: 4}, nil, newServeMetrics(obs.NewRegistry()))
	if err := adm.submit("t", mkJobs(4), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := adm.submit("t", mkJobs(1), 0, 0, 0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue must shed with ErrOverloaded, got %v", err)
	}
	// Another tenant is unaffected by t's full queue.
	if err := adm.submit("u", mkJobs(4), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	_, shed := adm.snapshot()
	if shed != 1 {
		t.Fatalf("shed counter = %d, want 1", shed)
	}
}

// TestAdmitterDeadlineShed: with a run-time estimate and a backlog, a
// budget the queue would eat is rejected up front with
// ErrDeadlineExceeded; a generous budget is admitted.
func TestAdmitterDeadlineShed(t *testing.T) {
	adm := newAdmitter(1, TenantPolicy{MaxQueued: 1 << 10}, nil, newServeMetrics(obs.NewRegistry()))
	est := int64(10 * time.Millisecond)
	if err := adm.submit("t", mkJobs(8), 0, 0, 0); err != nil { // 8 queued sets
		t.Fatal(err)
	}
	// Backlog 8 × 10ms + own run 10ms = 90ms needed.
	if err := adm.submit("t", mkJobs(1), 0, 20*time.Millisecond, est); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("unmeetable budget must shed with ErrDeadlineExceeded, got %v", err)
	}
	if err := adm.submit("t", mkJobs(1), 0, time.Second, est); err != nil {
		t.Fatalf("generous budget must admit, got %v", err)
	}
	// No estimate yet → no deadline shedding (admit; the run context
	// still enforces the budget mid-run).
	if err := adm.submit("t", mkJobs(1), 0, time.Microsecond, 0); err != nil {
		t.Fatalf("without an estimate the admitter must not guess, got %v", err)
	}
}

// TestAdmitterInFlightCapSkips: a tenant at its in-flight cap is
// skipped, not waited on — another tenant's job dispatches instead.
func TestAdmitterInFlightCapSkips(t *testing.T) {
	adm := newAdmitter(4, TenantPolicy{}, map[string]TenantPolicy{"capped": {MaxInFlight: 1}}, newServeMetrics(obs.NewRegistry()))
	if err := adm.submit("capped", mkJobs(4), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := adm.submit("other", mkJobs(2), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	_, tq1, _ := adm.next() // capped's first job (lowest pass, name tie-break)
	if tq1.name != "capped" {
		// Either order is fine for the first slot; what matters is below.
		adm.done(tq1, 0)
		t.Skip("dispatch order variation")
	}
	// capped is now at its cap with 3 queued jobs; the next two
	// dispatches must both be other's.
	for i := 0; i < 2; i++ {
		_, tq, _ := adm.next()
		if tq.name != "capped" {
			defer adm.done(tq, 0)
			continue
		}
		t.Fatalf("dispatch %d came from the capped tenant above its in-flight cap", i)
	}
	adm.done(tq1, 0)
}

// TestAdmitterCloseDrainsQueued: jobs queued at close are still handed
// to executors (their contexts are cancelled, so they error out), and
// next returns ok=false only once empty.
func TestAdmitterCloseDrainsQueued(t *testing.T) {
	adm := newAdmitter(1, TenantPolicy{}, nil, newServeMetrics(obs.NewRegistry()))
	if err := adm.submit("t", mkJobs(3), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	adm.close()
	for i := 0; i < 3; i++ {
		_, tq, ok := adm.next()
		if !ok {
			t.Fatalf("job %d dropped at close: handlers would deadlock on their WaitGroup", i)
		}
		adm.done(tq, 0)
	}
	if _, _, ok := adm.next(); ok {
		t.Fatal("next must report closed once the queues drain")
	}
	if err := adm.submit("t", mkJobs(1), 0, 0, 0); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("submit after close must fail with ErrServerClosed, got %v", err)
	}
}

// BenchmarkServe_Admission: the admission-path overhead per input set
// (submit → weighted-fair dispatch → done) with two competing tenants
// — the O(ms) budget the shedding contract rests on is really O(µs).
func BenchmarkServe_Admission(b *testing.B) {
	adm := newAdmitter(2, TenantPolicy{MaxQueued: 1 << 20}, map[string]TenantPolicy{
		"a": {Weight: 2},
		"b": {Weight: 1},
	}, newServeMetrics(obs.NewRegistry()))
	ctx := context.Background()
	var wg sync.WaitGroup
	names := [2]string{"a", "b"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := &runJob{ctx: ctx, wg: &wg}
		wg.Add(1)
		if err := adm.submit(names[i&1], []*runJob{job}, 0, time.Second, int64(time.Microsecond)); err != nil {
			b.Fatal(err)
		}
		j, tq, ok := adm.next()
		if !ok {
			b.Fatal("closed")
		}
		adm.done(tq, 0)
		j.wg.Done()
	}
}
