package serve_test

// End-to-end wire tests: a client uploads keys, ships the matvec
// circuit, streams ciphertext batches over a real TCP socket, and the
// results must be bit-identical to the in-process Plan.RunBatch oracle
// — including two tenants with different secret keys interleaving
// concurrently (run under -race in CI).

import (
	"errors"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"

	"heax"
	"heax/serve"
)

const dim = 8

// tenantKit is one tenant's client-side world, built against the
// parameter set fetched over the wire.
type tenantKit struct {
	params    *heax.Params
	evk       *heax.EvaluationKeySet
	enc       *heax.Encoder
	encryptor *heax.Encryptor
	decryptor *heax.Decryptor
	matrix    [][]float64
}

func newTenantKit(t testing.TB, params *heax.Params, seed int64) *tenantKit {
	t.Helper()
	kg := heax.NewKeyGenerator(params, seed)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	steps := make([]int, 0, dim-1)
	for d := 1; d < dim; d++ {
		steps = append(steps, d)
	}
	rng := rand.New(rand.NewSource(seed * 31))
	m := make([][]float64, dim)
	for i := range m {
		m[i] = make([]float64, dim)
		for j := range m[i] {
			m[i][j] = rng.Float64()*2 - 1
		}
	}
	return &tenantKit{
		params:    params,
		evk:       heax.GenEvaluationKeys(kg, sk, steps, false),
		enc:       heax.NewEncoder(params),
		encryptor: heax.NewEncryptor(params, pk, seed+1),
		decryptor: heax.NewDecryptor(params, sk),
		matrix:    m,
	}
}

// matvecCircuit is the diagonal-method matrix-vector product of
// examples/matvec: one rotation and one plaintext multiply per
// diagonal, with the rotations hoisted into one batch by the compiler.
func (k *tenantKit) matvecCircuit() *heax.Circuit {
	c := heax.NewCircuit()
	in := c.Input("x")
	var acc heax.Node
	for d := 0; d < dim; d++ {
		diag := make([]float64, dim)
		for i := 0; i < dim; i++ {
			diag[i] = k.matrix[i][(i+d)%dim]
		}
		term := c.MulPlain(c.Rotate(in, d), diag)
		if d == 0 {
			acc = term
		} else {
			acc = c.Add(acc, term)
		}
	}
	c.Output("y", acc)
	return c
}

// encryptVec encrypts [x | x | 0...] so rotations wrap in the replica.
func (k *tenantKit) encryptVec(t testing.TB, x []float64) *heax.Ciphertext {
	t.Helper()
	rep := make([]float64, 2*dim)
	copy(rep, x)
	copy(rep[dim:], x)
	pt, err := k.enc.EncodeReal(rep, k.params.MaxLevel(), k.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := k.encryptor.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func (k *tenantKit) batches(t testing.TB, seed int64, n int) ([]map[string]*heax.Ciphertext, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	in := make([]map[string]*heax.Ciphertext, n)
	vecs := make([][]float64, n)
	for b := 0; b < n; b++ {
		x := make([]float64, dim)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		vecs[b] = x
		in[b] = map[string]*heax.Ciphertext{"x": k.encryptVec(t, x)}
	}
	return in, vecs
}

func ctEqual(a, b *heax.Ciphertext) bool {
	if a == nil || b == nil || a.Scale != b.Scale || a.Level != b.Level || len(a.Polys) != len(b.Polys) {
		return false
	}
	for i := range a.Polys {
		if !a.Polys[i].Equal(b.Polys[i]) {
			return false
		}
	}
	return true
}

func startServer(t testing.TB, params *heax.Params, opts ...serve.Option) string {
	t.Helper()
	srv, err := serve.NewServer(params, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

var (
	serveParamsOnce sync.Once
	serveParams     *heax.Params
)

func testParams(t testing.TB) *heax.Params {
	t.Helper()
	serveParamsOnce.Do(func() { serveParams = heax.MustParams(heax.SetA) })
	return serveParams
}

// runTenant drives one tenant through the full wire flow and checks
// the results against both the cleartext matrix product and the
// in-process compiled-plan oracle, bit for bit.
func runTenant(t *testing.T, addr, name string, seed int64, rounds int) {
	t.Helper()
	cl, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	params := cl.Params()
	kit := newTenantKit(t, params, seed)
	if err := cl.Register(name, kit.evk); err != nil {
		t.Fatal(err)
	}
	circ := kit.matvecCircuit()
	info, err := cl.Compile(name, circ)
	if err != nil {
		t.Fatal(err)
	}
	if info.Cached {
		t.Fatalf("%s: first compile reported a cache hit", name)
	}

	// In-process oracle on the same fetched params and key material.
	oracle, err := kit.matvecCircuit().Compile(params, kit.evk)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < rounds; round++ {
		in, vecs := kit.batches(t, seed+int64(round)*977, 3)
		want, err := oracle.RunBatch(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.Run(name, info.ID, in)
		if err != nil {
			t.Fatal(err)
		}
		for b := range in {
			if !ctEqual(got[b]["y"], want[b]["y"]) {
				t.Fatalf("%s round %d batch %d: wire result not bit-identical to the in-process oracle", name, round, b)
			}
			// And the decrypted values match the cleartext product.
			pt, err := kit.decryptor.Decrypt(got[b]["y"])
			if err != nil {
				t.Fatal(err)
			}
			dec := kit.enc.Decode(pt)
			for i := 0; i < dim; i++ {
				cleartext := 0.0
				for j := 0; j < dim; j++ {
					cleartext += kit.matrix[i][j] * vecs[b][j]
				}
				if math.Abs(real(dec[i])-cleartext) > 1e-2 {
					t.Fatalf("%s round %d batch %d row %d: %g, want %g", name, round, b, i, real(dec[i]), cleartext)
				}
			}
		}
	}

	// Re-shipping the same circuit is a cache hit with the same id.
	again, err := cl.Compile(name, kit.matvecCircuit())
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.ID != info.ID {
		t.Fatalf("%s: recompile should hit the cache with the same id", name)
	}
}

func TestServeEndToEndWire(t *testing.T) {
	addr := startServer(t, testParams(t))
	runTenant(t, addr, "alice", 11, 1)
}

// TestServeTwoTenantsInterleave: two tenants with different secret
// keys stream batches concurrently through one server; each must get
// its own bit-exact results (run under -race).
func TestServeTwoTenantsInterleave(t *testing.T) {
	addr := startServer(t, testParams(t), serve.WithAdmissionWindow(2))
	var wg sync.WaitGroup
	for i, name := range []string{"alice", "bob"} {
		wg.Add(1)
		go func(name string, seed int64) {
			defer wg.Done()
			runTenant(t, addr, name, seed, 3)
		}(name, int64(13+i*7))
	}
	wg.Wait()
}

// TestServeTenantIsolation: a plan id compiled by one tenant is not
// addressable by another (the cache keys by tenant, because the plan
// embeds tenant keys).
func TestServeTenantIsolation(t *testing.T) {
	addr := startServer(t, testParams(t))
	cl, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	alice := newTenantKit(t, cl.Params(), 3)
	bob := newTenantKit(t, cl.Params(), 4)
	if err := cl.Register("alice", alice.evk); err != nil {
		t.Fatal(err)
	}
	if err := cl.Register("bob", bob.evk); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Compile("alice", alice.matvecCircuit())
	if err != nil {
		t.Fatal(err)
	}
	in, _ := bob.batches(t, 5, 1)
	if _, err := cl.Run("bob", info.ID, in); !errors.Is(err, serve.ErrUnknownPlan) {
		t.Fatalf("cross-tenant plan use must fail with ErrUnknownPlan, got %v", err)
	}
}

// TestServeTenantLifecycle: registration conflicts, eviction, and
// re-registration over the wire.
func TestServeTenantLifecycle(t *testing.T) {
	addr := startServer(t, testParams(t))
	cl, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	kit := newTenantKit(t, cl.Params(), 9)
	if err := cl.Register("carol", kit.evk); err != nil {
		t.Fatal(err)
	}
	if err := cl.Register("carol", kit.evk); !errors.Is(err, serve.ErrTenantExists) {
		t.Fatalf("double registration must fail with ErrTenantExists, got %v", err)
	}
	info, err := cl.Compile("carol", kit.matvecCircuit())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Unregister("carol"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Unregister("carol"); !errors.Is(err, serve.ErrUnknownTenant) {
		t.Fatalf("double unregister must fail with ErrUnknownTenant, got %v", err)
	}
	if _, err := cl.Compile("carol", kit.matvecCircuit()); !errors.Is(err, serve.ErrUnknownTenant) {
		t.Fatalf("compile after eviction must fail with ErrUnknownTenant, got %v", err)
	}
	in, _ := kit.batches(t, 6, 1)
	if _, err := cl.Run("carol", info.ID, in); !errors.Is(err, serve.ErrUnknownPlan) {
		t.Fatalf("run after eviction must fail with ErrUnknownPlan, got %v", err)
	}
	// The name is free again.
	if err := cl.Register("carol", kit.evk); err != nil {
		t.Fatalf("re-registration after eviction: %v", err)
	}
	if _, err := cl.Compile("carol", kit.matvecCircuit()); err != nil {
		t.Fatal(err)
	}
}

// TestServeCacheEviction: with capacity 1, a second circuit evicts the
// first; the evicted id recompiles on demand.
func TestServeCacheEviction(t *testing.T) {
	addr := startServer(t, testParams(t), serve.WithCacheCapacity(1))
	cl, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	kit := newTenantKit(t, cl.Params(), 21)
	if err := cl.Register("dave", kit.evk); err != nil {
		t.Fatal(err)
	}
	first, err := cl.Compile("dave", kit.matvecCircuit())
	if err != nil {
		t.Fatal(err)
	}
	simple := heax.NewCircuit()
	simple.Output("y", simple.MulConst(simple.Input("x"), 2))
	if _, err := cl.Compile("dave", simple); err != nil {
		t.Fatal(err)
	}
	in, _ := kit.batches(t, 22, 1)
	if _, err := cl.Run("dave", first.ID, in); !errors.Is(err, serve.ErrUnknownPlan) {
		t.Fatalf("evicted plan must be unknown, got %v", err)
	}
	refreshed, err := cl.Compile("dave", kit.matvecCircuit())
	if err != nil {
		t.Fatal(err)
	}
	if refreshed.Cached || refreshed.ID != first.ID {
		t.Fatalf("recompile after eviction: cached=%v id match=%v", refreshed.Cached, refreshed.ID == first.ID)
	}
	if _, err := cl.Run("dave", refreshed.ID, in); err != nil {
		t.Fatal(err)
	}
}

// TestServeRejectsMalformed: compile errors surface as typed sentinels
// over the wire, and a garbage circuit description is ErrCorrupt.
func TestServeRejectsMalformed(t *testing.T) {
	addr := startServer(t, testParams(t))
	cl, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	params := cl.Params()
	kg := heax.NewKeyGenerator(params, 33)
	sk := kg.GenSecretKey()
	// Keys without any Galois material: a rotating circuit must fail
	// key-missing, typed, across the wire.
	evk := &heax.EvaluationKeySet{Relin: kg.GenRelinearizationKey(sk)}
	if err := cl.Register("erin", evk); err != nil {
		t.Fatal(err)
	}
	c := heax.NewCircuit()
	c.Output("y", c.Rotate(c.Input("x"), 1))
	if _, err := cl.Compile("erin", c); !errors.Is(err, heax.ErrKeyMissing) {
		t.Fatalf("rotation without keys must be ErrKeyMissing over the wire, got %v", err)
	}
	// Unregistered tenant.
	if _, err := cl.Compile("mallory", c); !errors.Is(err, serve.ErrUnknownTenant) {
		t.Fatalf("unknown tenant must be typed, got %v", err)
	}
}

// TestServeClientDisconnectHealth: a client that vanishes mid-request
// must not wedge the server — its in-flight work is cancelled (the
// connection watcher) and other tenants keep streaming normally.
func TestServeClientDisconnectHealth(t *testing.T) {
	addr := startServer(t, testParams(t), serve.WithAdmissionWindow(1))
	cl, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	kit := newTenantKit(t, cl.Params(), 41)
	if err := cl.Register("flaky", kit.evk); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Compile("flaky", kit.matvecCircuit())
	if err != nil {
		t.Fatal(err)
	}
	// Fire a large request and hang up without reading the response.
	in, _ := kit.batches(t, 42, 16)
	go func() {
		flakyConn, err := serve.Dial(addr)
		if err != nil {
			return
		}
		// Run blocks reading the response; the abrupt close below cuts
		// the connection while the server is still executing.
		go flakyConn.Run("flaky", info.ID, in)
		flakyConn.Close()
	}()

	// A well-behaved tenant keeps working throughout.
	runTenant(t, addr, "steady", 43, 2)
}

// TestServeReRegisterFreshKeys: after unregister + re-register under
// the same name with different keys, the old cached plan must never be
// served — the same circuit recompiles against the new registration's
// keys and the results decrypt under the new secret key only.
func TestServeReRegisterFreshKeys(t *testing.T) {
	addr := startServer(t, testParams(t))
	cl, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	old := newTenantKit(t, cl.Params(), 61)
	if err := cl.Register("grace", old.evk); err != nil {
		t.Fatal(err)
	}
	oldInfo, err := cl.Compile("grace", old.matvecCircuit())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Unregister("grace"); err != nil {
		t.Fatal(err)
	}

	// Same name, fresh secret key, same matrix (so the circuit digest
	// matches the old one — the dangerous collision case).
	fresh := newTenantKit(t, cl.Params(), 62)
	fresh.matrix = old.matrix
	if err := cl.Register("grace", fresh.evk); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Compile("grace", fresh.matvecCircuit())
	if err != nil {
		t.Fatal(err)
	}
	if info.Cached {
		t.Fatal("the re-registered tenant must not hit the evicted registration's cache entry")
	}
	if info.ID != oldInfo.ID {
		t.Fatal("identical circuits should digest to the same plan id")
	}
	in, vecs := fresh.batches(t, 63, 1)
	got, err := cl.Run("grace", info.ID, in)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := fresh.decryptor.Decrypt(got[0]["y"])
	if err != nil {
		t.Fatal(err)
	}
	dec := fresh.enc.Decode(pt)
	for i := 0; i < dim; i++ {
		cleartext := 0.0
		for j := 0; j < dim; j++ {
			cleartext += fresh.matrix[i][j] * vecs[0][j]
		}
		if math.Abs(real(dec[i])-cleartext) > 1e-2 {
			t.Fatalf("row %d decrypts to %g under the fresh key, want %g — a stale plan was served", i, real(dec[i]), cleartext)
		}
	}
}
