package serve

// The crash-injection harness: the serving daemon is crash-only, and
// these scenarios prove the three legs of that claim end to end.
//
//   - Durability: tenant registrations ride a checksummed WAL
//     (serve/durable) through an abrupt stop — including a torn or
//     bit-flipped tail, the on-disk shape a kill -9 mid-append leaves
//     behind — and a restarted server resumes the surviving tenants
//     without any key re-upload, serving results bit-identical to the
//     pre-crash oracle.
//   - Panic isolation: a panic injected into the executor (the exact
//     path a panicking kernel takes, via the testRunHook seam) fails
//     one request with a typed ErrInternal over the wire while
//     concurrent tenants keep completing bit-identically, and the
//     recover is visible in Stats.
//   - Resource governance: a tenant's byte budget sheds an oversized
//     key set before deserialization and an oversized run working set
//     before admission, both with typed ErrResourceExhausted, and a
//     runtime policy update takes effect mid-backlog.
//
// Every scenario ends in auditZeroLeak: whatever was injected, no
// registry reference, cached plan or admission charge survives.

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"heax/serve/durable"
)

// openStore opens (or reopens) the durable tenant store in dir with
// per-record fsync, the crash-safe configuration under test.
func openStore(t *testing.T, dir string) *durable.Store {
	t.Helper()
	st, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// restoreAll replays a store's surviving tenants into a server, the
// startup half of crash recovery.
func restoreAll(t *testing.T, srv *Server, st *durable.Store) []durable.Tenant {
	t.Helper()
	tenants := st.Tenants()
	for _, tn := range tenants {
		if err := srv.RestoreTenant(tn.Name, tn.Keys); err != nil {
			t.Fatalf("restoring %q: %v", tn.Name, err)
		}
	}
	return tenants
}

// TestCrashRestartWithoutReregister: register + unregister through the
// wire with a durable tenant log, stop the server abruptly (the store
// is deliberately NOT closed — a kill -9 would not have closed it
// either; with per-record fsync every acknowledged record is already
// on disk), reopen the state directory, and serve from a fresh server:
// the registered tenant resumes without re-uploading keys and its runs
// are bit-identical to the pre-crash oracle, while the unregistered
// tenant stays gone.
func TestCrashRestartWithoutReregister(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	srv1, addr1 := startChaosServer(t, chaosParams(t), 0, WithTenantLog(st1))

	cl1, _ := dialChaos(t, addr1)
	kit := newChaosKit(t, cl1.Params(), 301)
	if err := cl1.Register("phoenix", kit.evk); err != nil {
		t.Fatal(err)
	}
	ghost := newChaosKit(t, cl1.Params(), 302)
	if err := cl1.Register("ghost", ghost.evk); err != nil {
		t.Fatal(err)
	}
	if err := cl1.Unregister("ghost"); err != nil {
		t.Fatal(err)
	}
	info, err := cl1.Compile("phoenix", chaosCircuit())
	if err != nil {
		t.Fatal(err)
	}
	in := kit.batches(t, 303, 2)
	got, err := cl1.Run("phoenix", info.ID, in)
	if err != nil {
		t.Fatal(err)
	}
	kit.assertOracle(t, in, got)
	cl1.Close()
	srv1.Close() // abrupt stop: st1 is never closed

	// Restart: replay the log into a new server.
	st2 := openStore(t, dir)
	defer st2.Close()
	srv2, addr2 := startChaosServer(t, chaosParams(t), 0, WithTenantLog(st2))
	tenants := restoreAll(t, srv2, st2)
	if len(tenants) != 1 || tenants[0].Name != "phoenix" {
		t.Fatalf("recovered tenants = %v, want exactly [phoenix]", tenants)
	}

	// No Register call on this connection: the keys came off disk.
	cl2, _ := dialChaos(t, addr2)
	defer cl2.Close()
	info2, err := cl2.Compile("phoenix", chaosCircuit())
	if err != nil {
		t.Fatalf("compile against restored keys: %v", err)
	}
	in2 := kit.batches(t, 304, 2)
	got2, err := cl2.Run("phoenix", info2.ID, in2)
	if err != nil {
		t.Fatalf("run against restored keys: %v", err)
	}
	kit.assertOracle(t, in2, got2)
	if _, err := cl2.Compile("ghost", chaosCircuit()); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unregistered tenant must stay gone across restart, got %v", err)
	}
	cl2.Close()
	auditZeroLeak(t, srv2)
}

// TestCrashTornLogTailRestart: the WAL ends mid-record — the shape a
// kill -9 between write and fsync leaves — in two flavors, truncated
// and bit-flipped. Recovery must drop exactly the damaged tail record,
// keep every earlier registration, report the dropped bytes, and the
// restarted server must serve the surviving tenant bit-identically and
// accept new registrations (the log stays appendable after repair).
func TestCrashTornLogTailRestart(t *testing.T) {
	for _, mode := range []string{"truncated", "bitflipped"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			st1 := openStore(t, dir)
			srv1, addr1 := startChaosServer(t, chaosParams(t), 0, WithTenantLog(st1))
			cl1, _ := dialChaos(t, addr1)
			alice := newChaosKit(t, cl1.Params(), 311)
			bob := newChaosKit(t, cl1.Params(), 312)
			if err := cl1.Register("alice", alice.evk); err != nil {
				t.Fatal(err)
			}
			if err := cl1.Register("bob", bob.evk); err != nil {
				t.Fatal(err)
			}
			cl1.Close()
			srv1.Close()
			st1.Close()

			// Damage bob's record — the last appended — on disk.
			wal := filepath.Join(dir, "tenants.wal")
			raw, err := os.ReadFile(wal)
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case "truncated":
				raw = raw[:len(raw)-3]
			case "bitflipped":
				raw[len(raw)-7] ^= 0x20
			}
			if err := os.WriteFile(wal, raw, 0o644); err != nil {
				t.Fatal(err)
			}

			st2 := openStore(t, dir)
			defer st2.Close()
			if st2.DroppedTailBytes() == 0 {
				t.Fatal("a damaged tail must be reported as dropped bytes")
			}
			srv2, addr2 := startChaosServer(t, chaosParams(t), 0, WithTenantLog(st2))
			tenants := restoreAll(t, srv2, st2)
			if len(tenants) != 1 || tenants[0].Name != "alice" {
				t.Fatalf("recovered tenants = %v, want exactly [alice] (bob's record was torn)", tenants)
			}

			cl2, _ := dialChaos(t, addr2)
			defer cl2.Close()
			info, err := cl2.Compile("alice", chaosCircuit())
			if err != nil {
				t.Fatal(err)
			}
			in := alice.batches(t, 313, 1)
			got, err := cl2.Run("alice", info.ID, in)
			if err != nil {
				t.Fatal(err)
			}
			alice.assertOracle(t, in, got)
			// Bob lost at most his one unsynced record; re-registering
			// appends cleanly to the repaired log.
			if err := cl2.Register("bob", bob.evk); err != nil {
				t.Fatalf("re-register after tail repair: %v", err)
			}
			cl2.Close()
			auditZeroLeak(t, srv2)
		})
	}
}

// TestCrashPanicIsolationWire: panics injected into the executor via
// the testRunHook seam (the path a panicking kernel takes) fail only
// the victim tenant's requests, with ErrInternal on the wire; a
// concurrent healthy tenant completes bit-identically throughout, the
// recoveries are counted in Stats, and once the fault clears the
// victim itself serves bit-identical results again — the daemon never
// dies.
func TestCrashPanicIsolationWire(t *testing.T) {
	srv, addr := startChaosServer(t, chaosParams(t), 0)
	var boom atomic.Int32
	boom.Store(3)
	srv.testRunHook = func(tenant string) {
		if tenant == "victim" && boom.Add(-1) >= 0 {
			panic("injected kernel panic")
		}
	}

	vcl, _ := dialChaos(t, addr)
	defer vcl.Close()
	hcl, _ := dialChaos(t, addr)
	defer hcl.Close()
	vkit := newChaosKit(t, vcl.Params(), 321)
	hkit := newChaosKit(t, hcl.Params(), 322)
	if err := vcl.Register("victim", vkit.evk); err != nil {
		t.Fatal(err)
	}
	if err := hcl.Register("healthy", hkit.evk); err != nil {
		t.Fatal(err)
	}
	vinfo, err := vcl.Compile("victim", chaosCircuit())
	if err != nil {
		t.Fatal(err)
	}
	hinfo, err := hcl.Compile("healthy", chaosCircuit())
	if err != nil {
		t.Fatal(err)
	}

	// Healthy traffic runs concurrently with the victim's panics.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 6; round++ {
			hin := hkit.batches(t, int64(330+round), 1)
			got, err := hcl.Run("healthy", hinfo.ID, hin)
			if err != nil {
				t.Errorf("healthy tenant failed beside a panicking one: %v", err)
				return
			}
			hkit.assertOracle(t, hin, got)
		}
	}()
	for i := 0; i < 3; i++ {
		_, err := vcl.Run("victim", vinfo.ID, vkit.batches(t, int64(340+i), 1))
		if !errors.Is(err, ErrInternal) {
			t.Fatalf("panic %d must surface as ErrInternal on the wire, got %v", i, err)
		}
	}
	wg.Wait()

	// The injected panics are spent; the victim recovers fully.
	vin := vkit.batches(t, 350, 2)
	got, err := vcl.Run("victim", vinfo.ID, vin)
	if err != nil {
		t.Fatalf("victim must serve again once the fault clears, got %v", err)
	}
	vkit.assertOracle(t, vin, got)
	if n := srv.Stats().PanicsRecovered; n != 3 {
		t.Fatalf("PanicsRecovered = %d, want 3", n)
	}
	vcl.Close()
	hcl.Close()
	auditZeroLeak(t, srv)
}

// TestGuardConvertsPanics: the per-request recover boundary turns any
// handler panic into ErrInternal and counts it.
func TestGuardConvertsPanics(t *testing.T) {
	srv, err := NewServer(chaosParams(t), WithAdmissionWindow(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if gerr := srv.guard(func() error { panic("handler bug") }); !errors.Is(gerr, ErrInternal) {
		t.Fatalf("guard must convert a panic to ErrInternal, got %v", gerr)
	}
	if gerr := srv.guard(func() error { return nil }); gerr != nil {
		t.Fatalf("guard must pass a clean handler through, got %v", gerr)
	}
	if n := srv.Stats().PanicsRecovered; n != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", n)
	}
}

// TestCrashBudgetShed: the per-tenant byte budget governs both halves
// of a tenant's footprint with typed ErrResourceExhausted — an
// oversized key set is rejected before deserialization, and once
// registered under a raised budget, a run whose working set would blow
// the remaining headroom is shed before admission. Raising the budget
// at runtime (SetTenantPolicy) un-sheds both, and the served result is
// bit-identical.
func TestCrashBudgetShed(t *testing.T) {
	srv, addr := startChaosServer(t, chaosParams(t), 0,
		WithTenantPolicy("budget", TenantPolicy{MaxBytes: 64}))
	cl, _ := dialChaos(t, addr)
	defer cl.Close()
	kit := newChaosKit(t, cl.Params(), 361)

	// 64 bytes cannot hold an evaluation key set: shed at register.
	if err := cl.Register("budget", kit.evk); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("oversized key set must shed with ErrResourceExhausted, got %v", err)
	}

	// Raise the budget enough for the keys but not for a single run's
	// working set, computed from the same plan the server will run.
	runBytes := kit.oracle.FootprintBytes()
	srv.SetTenantPolicy("budget", TenantPolicy{MaxBytes: 1 << 30})
	if err := cl.Register("budget", kit.evk); err != nil {
		t.Fatal(err)
	}
	srv.reg.mu.Lock()
	keyBytes := srv.reg.tenants["budget"].keyBytes
	srv.reg.mu.Unlock()
	if keyBytes <= 64 {
		t.Fatalf("keyBytes = %d: the 64-byte shed above would not have triggered", keyBytes)
	}
	info, err := cl.Compile("budget", chaosCircuit())
	if err != nil {
		t.Fatal(err)
	}
	srv.SetTenantPolicy("budget", TenantPolicy{MaxBytes: keyBytes + runBytes/2})
	in := kit.batches(t, 362, 1)
	if _, err := cl.Run("budget", info.ID, in); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("run beyond the byte budget must shed with ErrResourceExhausted, got %v", err)
	}
	shed := srv.Stats().ShedRuns
	if shed < 1 {
		t.Fatalf("ShedRuns = %d, want ≥1", shed)
	}

	// Head room for exactly this run: admitted, served bit-identically,
	// and the charge is released afterwards.
	srv.SetTenantPolicy("budget", TenantPolicy{MaxBytes: keyBytes + runBytes})
	got, err := cl.Run("budget", info.ID, in)
	if err != nil {
		t.Fatalf("run within the budget must be admitted, got %v", err)
	}
	kit.assertOracle(t, in, got)
	if n := srv.adm.liveBytesFor("budget"); n != 0 {
		t.Fatalf("liveBytes = %d after the run settled, want 0 (charge leaked)", n)
	}
	cl.Close()
	auditZeroLeak(t, srv)
}
