// Package serve implements a multi-tenant plan-serving daemon over the
// heax wire format — the host process of the paper's system view
// (Section 5.2): clients upload their evaluation keys once, ship
// circuit descriptions that are compiled into cached, reusable Plans,
// and then stream ciphertext batches through those plans over a
// framed TCP protocol.
//
// The server is built from four pieces:
//
//   - a tenant key registry (registry.go): uploaded EvaluationKeySets
//     with ref-counted eviction, so unregistering a tenant never pulls
//     keys out from under a cached plan or an in-flight request;
//   - an LRU-bounded plan cache (cache.go) keyed by (tenant, digest of
//     the canonicalized circuit DAG) — compile once, run many, shared
//     across connections of the same tenant;
//   - a global admission window (server.go): a fixed pool of executor
//     workers drains per-request run jobs in FIFO order, so concurrent
//     tenants share the worker pool fairly instead of the first big
//     batch monopolizing it;
//   - a framed, length-checked protocol (protocol.go) whose payloads
//     are the internal/ckks stream codecs; malformed frames fail with
//     heax.ErrCorrupt and oversized frames are rejected before
//     allocation.
//
// A run in flight is bound to its connection: when the client
// disconnects, the connection's context is cancelled and the plan
// executor abandons the remaining steps (Plan.RunContext), returning
// every pooled buffer.
//
// Client is the matching client-side handle; cmd/heax-serve wraps
// Server in a daemon and examples/client demonstrates the full
// register → compile → stream flow against the in-process oracle.
package serve
