// Package serve implements a multi-tenant plan-serving daemon over the
// heax wire format — the host process of the paper's system view
// (Section 5.2): clients upload their evaluation keys once, ship
// circuit descriptions that are compiled into cached, reusable Plans,
// and then stream ciphertext batches through those plans over a
// framed TCP protocol.
//
// The server is built from five pieces:
//
//   - a tenant key registry (registry.go): uploaded EvaluationKeySets
//     with ref-counted eviction, so unregistering a tenant never pulls
//     keys out from under a cached plan or an in-flight request;
//   - an LRU-bounded plan cache (cache.go) keyed by (tenant, digest of
//     the canonicalized circuit DAG) — compile once, run many, shared
//     across connections of the same tenant — each plan carrying an
//     EWMA estimate of its per-input-set run time;
//   - weighted-fair admission (admission.go): per-tenant bounded queues
//     drained by a fixed executor pool under stride scheduling, so a
//     TenantPolicy weight buys a proportional share under saturation
//     and an idle tenant's first job dispatches promptly. Overflowing
//     a queue sheds with ErrOverloaded; a client deadline the backlog
//     cannot meet sheds with ErrDeadlineExceeded before queuing;
//   - a retry-dedup cache (dedup.go): runs carry an optional client
//     request id, and a retry of a completed run replays the cached
//     response instead of executing twice;
//   - a framed, length-checked protocol (protocol.go) whose payloads
//     are the internal/ckks stream codecs; malformed frames fail with
//     heax.ErrCorrupt and oversized frames are rejected before
//     allocation.
//
// A run in flight is bound to its connection and its deadline: when
// the client disconnects or the propagated budget expires, the run's
// context is cancelled and the plan executor abandons the remaining
// steps (Plan.RunContext), returning every pooled buffer.
//
// The server is crash-only. Tenant registrations can be made durable
// through the TenantLog seam (WithTenantLog; serve/durable provides a
// snapshot + checksummed-WAL implementation): registrations append to
// the log before they are acknowledged and RestoreTenant replays them
// on the next boot, so a kill -9 loses nothing a client saw succeed.
// Panics in an executor worker, a request handler or a connection are
// recovered into ErrInternal on that one request and counted
// (Stats.PanicsRecovered) rather than crashing the daemon, and
// TenantPolicy.MaxBytes bounds each tenant's server-side footprint
// (uploaded key bytes plus the working sets of queued and executing
// runs), shedding with ErrResourceExhausted before allocation.
//
// Server.Shutdown drains gracefully: listeners close, new work is
// refused with ErrServerDraining, and in-flight runs finish and flush
// their responses before the server stops.
//
// Client is the matching client-side handle — Dial/DialContext with
// per-call deadlines and opt-in idempotent retry (WithRetry);
// cmd/heax-serve wraps Server in a daemon and examples/client
// demonstrates the full register → compile → stream flow against the
// in-process oracle.
package serve
