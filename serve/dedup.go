package serve

// The retry dedup cache: the server side of the client's idempotent
// Run retry. Every extended Run request may carry a client-generated
// 16-byte request id; the first arrival claims the id and executes,
// and a retry of the same id — after a connection drop ate the
// response — either joins the in-flight execution or is answered from
// the cached response bytes. A Run is therefore never executed to
// completion twice: the only re-execution is of an attempt that was
// cancelled mid-run (deterministic FHE compute, so a re-run is merely
// repeated work, and the aborted attempt produced nothing).
//
// Only successful responses are cached (errors are not idempotency
// decisions), in-flight entries are pinned (never evicted, so a
// concurrent retry can always join rather than double-execute), and
// completed entries live in a bounded LRU. Entries hold only response
// bytes — no registry or plan-cache references — so the dedup layer
// cannot leak key material.

import (
	"container/list"
	"sync"
)

type requestID [16]byte

type dedupKey struct {
	tenant string
	id     requestID
}

type dedupEntry struct {
	key  dedupKey
	done chan struct{} // closed when the owning execution completes
	resp []byte        // response payload, valid after done if err == nil
	err  error
	// purged marks entries whose tenant was evicted while the run was
	// in flight: the stale-key result must not be cached for a retry
	// under a fresh registration of the same name.
	purged bool
	elem   *list.Element // non-nil once completed and cached
}

type dedupCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // completed entries, front = most recent
	byKey map[dedupKey]*dedupEntry
}

func newDedupCache(capacity int) *dedupCache {
	if capacity < 1 {
		capacity = 1
	}
	return &dedupCache{cap: capacity, order: list.New(), byKey: make(map[dedupKey]*dedupEntry)}
}

// claim returns the entry for key and whether the caller owns it (must
// execute and complete it). A non-owner waits on entry.done.
func (d *dedupCache) claim(key dedupKey) (*dedupEntry, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.byKey[key]; ok {
		if e.elem != nil {
			d.order.MoveToFront(e.elem)
		}
		return e, false
	}
	e := &dedupEntry{key: key, done: make(chan struct{})}
	d.byKey[key] = e
	return e, true
}

// complete finishes an owned entry: a successful response is cached
// (evicting the oldest completed entries beyond capacity), an error —
// cancellation, shed, anything — is handed to current joiners but not
// cached, so a later retry re-executes rather than replaying a
// transient failure.
func (d *dedupCache) complete(e *dedupEntry, resp []byte, err error) {
	d.mu.Lock()
	e.resp, e.err = resp, err
	if err != nil || e.purged {
		if d.byKey[e.key] == e {
			delete(d.byKey, e.key)
		}
	} else {
		e.elem = d.order.PushFront(e)
		for d.order.Len() > d.cap {
			oldest := d.order.Back()
			d.order.Remove(oldest)
			old := oldest.Value.(*dedupEntry)
			old.elem = nil
			if d.byKey[old.key] == old {
				delete(d.byKey, old.key)
			}
		}
	}
	d.mu.Unlock()
	close(e.done)
}

// drop forgets a completed entry if it is still current (a joiner saw
// its error and wants a fresh claim to re-execute).
func (d *dedupCache) drop(e *dedupEntry) {
	d.mu.Lock()
	if d.byKey[e.key] == e {
		delete(d.byKey, e.key)
		if e.elem != nil {
			d.order.Remove(e.elem)
			e.elem = nil
		}
	}
	d.mu.Unlock()
}

// purgeTenant drops a tenant's completed entries and poisons its
// in-flight ones (eviction means fresh keys may reuse the name; a
// request id must never resolve to a result under retired keys).
func (d *dedupCache) purgeTenant(tenant string) {
	d.mu.Lock()
	for key, e := range d.byKey {
		if key.tenant != tenant {
			continue
		}
		if e.elem != nil {
			d.order.Remove(e.elem)
			e.elem = nil
			delete(d.byKey, key)
		} else {
			e.purged = true
		}
	}
	d.mu.Unlock()
}

func (d *dedupCache) len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.byKey)
}
