package serve

// The tenant key registry: uploaded evaluation key sets with
// ref-counted eviction. A tenant entry is referenced by its
// registration, by every cached plan compiled against its keys, and by
// every in-flight compile; Unregister drops the registration reference
// and bars new acquisitions, but the keys stay live until the last
// holder releases them — eviction never pulls key material out from
// under a plan.

import (
	"fmt"
	"sync"

	"heax"
)

type registry struct {
	mu      sync.Mutex
	tenants map[string]*tenantEntry
}

// tenantEntry is one tenant's uploaded key set.
type tenantEntry struct {
	name string
	evk  *heax.EvaluationKeySet

	// refs counts the registration itself plus one per holder (cached
	// plan or in-flight compile); guarded by the registry mutex.
	refs int
	// gone marks an unregistered tenant: no new acquisitions, entry
	// retired when refs drains to zero.
	gone bool
	// retired flips exactly once, when the last reference goes — the
	// observable end of the key lifecycle (asserted by tests; a real
	// deployment could hook secure key destruction here).
	retired bool
}

func newRegistry() *registry {
	return &registry{tenants: make(map[string]*tenantEntry)}
}

// register binds a key set to a fresh tenant name.
func (r *registry) register(name string, evk *heax.EvaluationKeySet) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[name]; ok {
		return fmt.Errorf("%w: %q", ErrTenantExists, name)
	}
	r.tenants[name] = &tenantEntry{name: name, evk: evk, refs: 1}
	return nil
}

// acquire takes a reference on a live tenant's keys.
func (r *registry) acquire(name string) (*tenantEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.tenants[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	e.refs++
	return e, nil
}

// release returns a reference taken by acquire (or held by a cached
// plan); the entry is retired when the registration is gone and the
// last reference drains.
func (r *registry) release(e *tenantEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.releaseLocked(e)
}

func (r *registry) releaseLocked(e *tenantEntry) {
	if e.refs <= 0 {
		panic("serve: tenant reference over-released")
	}
	e.refs--
	if e.refs == 0 {
		if !e.gone {
			panic("serve: tenant registration reference released without unregister")
		}
		e.retired = true
	}
}

// live reports whether e is still the current registration of its
// name — a cached plan whose entry is no longer live belongs to an
// evicted (possibly re-registered) tenant and must not be served.
func (r *registry) live(e *tenantEntry) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tenants[e.name] == e
}

// retain takes an additional reference on a specific entry (not a
// name: after re-registration the name resolves to a different entry)
// if its references have not already drained. A run holds one for its
// whole duration, so eviction mid-run never retires the keys under it.
func (r *registry) retain(e *tenantEntry) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.refs == 0 {
		return false
	}
	e.refs++
	return true
}

// unregister evicts a tenant: the name is freed immediately (a new
// registration under the same name gets a fresh entry), the keys stay
// live for current holders.
func (r *registry) unregister(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.tenants[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	delete(r.tenants, name)
	e.gone = true
	r.releaseLocked(e) // the registration's own reference
	return nil
}

func (r *registry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.tenants)
}
