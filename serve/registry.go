package serve

// The tenant key registry: uploaded evaluation key sets with
// ref-counted eviction. A tenant entry is referenced by its
// registration, by every cached plan compiled against its keys, and by
// every in-flight compile; Unregister drops the registration reference
// and bars new acquisitions, but the keys stay live until the last
// holder releases them — eviction never pulls key material out from
// under a plan.
//
// Refcount invariant violations (an over-release, a drain to zero
// while the registration still stands) are bugs, but they are not
// allowed to be fatal: release reports them as errors wrapping
// ErrInternal and counts them (Stats.RefcountBugs), so a bookkeeping
// bug degrades the one request that tripped it instead of panicking
// the daemon out from under every tenant.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"heax"
)

type registry struct {
	mu      sync.Mutex
	tenants map[string]*tenantEntry
	// bugs counts refcount invariant violations caught (and survived)
	// by release.
	bugs atomic.Int64
}

// tenantEntry is one tenant's uploaded key set.
type tenantEntry struct {
	name string
	evk  *heax.EvaluationKeySet
	// keyBytes is the serialized size of the uploaded key set, charged
	// against TenantPolicy.MaxBytes.
	keyBytes int64

	// refs counts the registration itself plus one per holder (cached
	// plan or in-flight compile); guarded by the registry mutex.
	refs int
	// gone marks an unregistered tenant: no new acquisitions, entry
	// retired when refs drains to zero.
	gone bool
	// retired flips exactly once, when the last reference goes — the
	// observable end of the key lifecycle (asserted by tests; a real
	// deployment could hook secure key destruction here).
	retired bool
}

func newRegistry() *registry {
	return &registry{tenants: make(map[string]*tenantEntry)}
}

// register binds a key set (of keyBytes serialized bytes) to a fresh
// tenant name.
func (r *registry) register(name string, evk *heax.EvaluationKeySet, keyBytes int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[name]; ok {
		return fmt.Errorf("%w: %q", ErrTenantExists, name)
	}
	r.tenants[name] = &tenantEntry{name: name, evk: evk, keyBytes: keyBytes, refs: 1}
	return nil
}

// has reports whether a name is currently registered.
func (r *registry) has(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.tenants[name]
	return ok
}

// acquire takes a reference on a live tenant's keys.
func (r *registry) acquire(name string) (*tenantEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.tenants[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	e.refs++
	return e, nil
}

// release returns a reference taken by acquire (or held by a cached
// plan); the entry is retired when the registration is gone and the
// last reference drains. A refcount invariant violation is counted and
// reported as an error wrapping ErrInternal — the release is refused,
// never amplified into a panic or a double retire.
func (r *registry) release(e *tenantEntry) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.releaseLocked(e)
}

func (r *registry) releaseLocked(e *tenantEntry) error {
	if e.refs <= 0 {
		r.bugs.Add(1)
		return fmt.Errorf("%w: tenant %q key reference over-released", ErrInternal, e.name)
	}
	if e.refs == 1 && !e.gone {
		r.bugs.Add(1)
		return fmt.Errorf("%w: tenant %q registration reference released without unregister", ErrInternal, e.name)
	}
	e.refs--
	if e.refs == 0 {
		e.retired = true
	}
	return nil
}

// live reports whether e is still the current registration of its
// name — a cached plan whose entry is no longer live belongs to an
// evicted (possibly re-registered) tenant and must not be served.
func (r *registry) live(e *tenantEntry) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tenants[e.name] == e
}

// retain takes an additional reference on a specific entry (not a
// name: after re-registration the name resolves to a different entry)
// if its references have not already drained. A run holds one for its
// whole duration, so eviction mid-run never retires the keys under it.
func (r *registry) retain(e *tenantEntry) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.refs == 0 {
		return false
	}
	e.refs++
	return true
}

// unregister evicts a tenant: the name is freed immediately (a new
// registration under the same name gets a fresh entry), the keys stay
// live for current holders.
func (r *registry) unregister(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.tenants[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	delete(r.tenants, name)
	e.gone = true
	return r.releaseLocked(e) // the registration's own reference
}

func (r *registry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.tenants)
}

// keyBytes reports the serialized key footprint of every currently
// registered tenant — the registration half of the MaxBytes budget.
// Keys kept live past unregister by in-flight holders are excluded:
// this is the admitted footprint, not the transient one.
func (r *registry) keyBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, e := range r.tenants {
		total += e.keyBytes
	}
	return total
}
