package serve_test

// Serve_* benches: wire-protocol serving throughput over loopback —
// the end-to-end cost of one streamed input set (serialize, frame,
// admit, Plan.RunContext, serialize back) and of a plan-cache hit.
// Tracked in BENCH_5.json by scripts/bench.sh.

import (
	"testing"

	"heax/serve"
)

func BenchmarkServe_RunBatchMatvec(b *testing.B) {
	addr := startServer(b, testParams(b))
	cl, err := serve.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	kit := newTenantKit(b, cl.Params(), 51)
	if err := cl.Register("bench", kit.evk); err != nil {
		b.Fatal(err)
	}
	info, err := cl.Compile("bench", kit.matvecCircuit())
	if err != nil {
		b.Fatal(err)
	}
	in, _ := kit.batches(b, 52, 8)
	b.ResetTimer()
	for done := 0; done < b.N; {
		chunk := in
		if rem := b.N - done; rem < len(chunk) {
			chunk = chunk[:rem]
		}
		if _, err := cl.Run("bench", info.ID, chunk); err != nil {
			b.Fatal(err)
		}
		done += len(chunk)
	}
}

func BenchmarkServe_CompileCached(b *testing.B) {
	addr := startServer(b, testParams(b))
	cl, err := serve.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	kit := newTenantKit(b, cl.Params(), 53)
	if err := cl.Register("bench", kit.evk); err != nil {
		b.Fatal(err)
	}
	circ := kit.matvecCircuit()
	if _, err := cl.Compile("bench", circ); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info, err := cl.Compile("bench", circ)
		if err != nil {
			b.Fatal(err)
		}
		if !info.Cached {
			b.Fatal("expected a cache hit")
		}
	}
}
