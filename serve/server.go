package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"heax"
	"heax/obs"
)

// Server is the multi-tenant plan-serving daemon: one process, one
// parameter set (the fixed accelerator pipeline), many tenants. See
// the package documentation for the architecture.
type Server struct {
	params     *heax.Params
	paramsBlob []byte
	reg        *registry
	cache      *planCache
	opts       serverOptions

	// metrics is the server's obs instrumentation bundle; always
	// non-nil (a private registry is created unless WithMetricsRegistry
	// supplies one), so no instrumentation site needs a nil check.
	metrics *serveMetrics

	// adm is the weighted-fair admission layer (admission.go): one
	// bounded queue per tenant, stride-scheduled dispatch, deadline
	// shedding. len(executor pool) workers drain it.
	adm    *admitter
	dedup  *dedupCache
	ctx    context.Context
	cancel context.CancelFunc

	// regMu serializes tenant registration lifecycle (registry mutation
	// + tenant-log append) so the durable log's record order always
	// matches the order the registry observed — replay reconstructs
	// exactly the surviving registrations.
	regMu sync.Mutex

	mu        sync.Mutex
	listeners map[net.Listener]bool
	conns     map[net.Conn]bool
	draining  bool
	closed    bool

	connWG sync.WaitGroup
	execWG sync.WaitGroup
	// runWG tracks every accepted Run request from admission through
	// response flush; Shutdown drains it before closing connections.
	runWG sync.WaitGroup

	canceledRuns    atomic.Int64
	completedRuns   atomic.Int64
	dedupHits       atomic.Int64
	panicsRecovered atomic.Int64

	// testRunDelay stretches every executed run (set by tests before
	// Serve to saturate the admission layer deterministically).
	testRunDelay time.Duration
	// testRunHook runs inside the executor's recover boundary just
	// before each job executes (set by tests before Serve): a hook that
	// panics exercises exactly the path a panicking kernel takes.
	testRunHook func(tenant string)
}

// TenantLog records the tenant registration lifecycle durably — the
// seam between the server and a crash-safe store (serve/durable). The
// server appends under its registration lock, in registry order, and
// treats an append failure as a failed request (with the in-memory
// change rolled back), so the log never trails an acknowledged
// registration. Implementations must be safe for concurrent use.
type TenantLog interface {
	// AppendRegister records that name registered the serialized
	// evaluation key set keys.
	AppendRegister(name string, keys []byte) error
	// AppendUnregister records that name was unregistered.
	AppendUnregister(name string) error
}

type serverOptions struct {
	cacheCap    int
	admission   int
	maxFrame    int
	dedupCap    int
	defPolicy   TenantPolicy
	policies    map[string]TenantPolicy
	compileOpts []heax.CompileOption
	tlog        TenantLog
	metricsReg  *obs.Registry
	traceSteps  bool
	slowRun     time.Duration
	slowLogf    func(format string, args ...any)
}

// Option configures a Server at construction.
type Option func(*serverOptions)

// WithCacheCapacity bounds how many compiled plans the LRU cache holds
// across all tenants (default 64). The least recently used plan is
// evicted first; an evicted plan id simply recompiles on next use.
func WithCacheCapacity(n int) Option {
	return func(o *serverOptions) { o.cacheCap = n }
}

// WithAdmissionWindow sets how many input sets may execute concurrently
// across all tenants and connections (default GOMAXPROCS) — the host
// analogue of the paper's bounded device queue.
func WithAdmissionWindow(n int) Option {
	return func(o *serverOptions) {
		if n < 1 {
			n = 1
		}
		o.admission = n
	}
}

// WithMaxFrameBytes caps the size of a single protocol frame (default
// DefaultMaxFrame). Oversized frames are rejected before allocation.
func WithMaxFrameBytes(n int) Option {
	return func(o *serverOptions) {
		if n < 1<<10 {
			n = 1 << 10
		}
		o.maxFrame = n
	}
}

// WithCompileOptions forwards compile options (worker caps, batch
// window, hoisting) to every plan the server compiles.
func WithCompileOptions(opts ...heax.CompileOption) Option {
	return func(o *serverOptions) { o.compileOpts = append(o.compileOpts, opts...) }
}

// WithTenantPolicy pins one tenant's admission policy (weight,
// in-flight cap, queue bound); zero fields inherit the defaults set by
// WithDefaultTenantPolicy. Tenants without a pinned policy get the
// defaults.
func WithTenantPolicy(name string, p TenantPolicy) Option {
	return func(o *serverOptions) {
		if o.policies == nil {
			o.policies = make(map[string]TenantPolicy)
		}
		o.policies[name] = p
	}
}

// WithDefaultTenantPolicy sets the admission policy applied to every
// tenant without a WithTenantPolicy pin (defaults: weight 1, no
// in-flight cap, DefaultTenantQueue queued input sets).
func WithDefaultTenantPolicy(p TenantPolicy) Option {
	return func(o *serverOptions) { o.defPolicy = p }
}

// WithTenantLog attaches a durable tenant log: every successful
// Register/Unregister is appended before it is acknowledged, and an
// append failure fails the request (rolling back the in-memory
// change). Pair with RestoreTenant at startup to resume tenants across
// a crash without re-uploading keys.
func WithTenantLog(l TenantLog) Option {
	return func(o *serverOptions) { o.tlog = l }
}

// WithDedupCapacity bounds the retry dedup cache: how many completed
// Run responses are retained by request id so an idempotent client
// retry is answered from cache instead of re-executed (default 256).
func WithDedupCapacity(n int) Option {
	return func(o *serverOptions) {
		if n < 1 {
			n = 1
		}
		o.dedupCap = n
	}
}

// WithMetricsRegistry has the server register its metric families on
// an existing obs registry (serve /metrics for several subsystems from
// one endpoint) instead of a private one. A registry can back at most
// one Server: family names are process-wide within a registry and
// duplicate registration panics.
func WithMetricsRegistry(r *obs.Registry) Option {
	return func(o *serverOptions) { o.metricsReg = r }
}

// WithStepTracing toggles per-step execution tracing on every plan the
// server compiles (default on): step-kind latency histograms feed
// heax_plan_step_seconds. The traced path adds one clock read pair per
// executed step; turn it off to shave that from latency-critical
// deployments.
func WithStepTracing(on bool) Option {
	return func(o *serverOptions) { o.traceSteps = on }
}

// WithSlowRunLog logs every Run request slower than threshold through
// logf (e.g. log.Printf) with tenant, plan id, batch count, duration
// and outcome — the structured breadcrumb for tail-latency triage.
// A zero threshold or nil logf disables it.
func WithSlowRunLog(threshold time.Duration, logf func(format string, args ...any)) Option {
	return func(o *serverOptions) {
		o.slowRun = threshold
		o.slowLogf = logf
	}
}

// errNilParams is deliberately a package-level sentinel (sentinelwrap):
// callers constructing servers from config can branch on it.
var errNilParams = errors.New("serve: nil parameters")

// NewServer builds a server for one parameter set and starts its
// executor pool. Callers own the listeners: combine with Serve, and
// Close to shut down.
func NewServer(params *heax.Params, opts ...Option) (*Server, error) {
	if params == nil {
		return nil, errNilParams
	}
	o := serverOptions{
		cacheCap:   64,
		admission:  runtime.GOMAXPROCS(0),
		maxFrame:   DefaultMaxFrame,
		dedupCap:   256,
		traceSteps: true,
	}
	for _, opt := range opts {
		opt(&o)
	}
	var pb bytes.Buffer
	if err := heax.WriteParams(&pb, params); err != nil {
		return nil, fmt.Errorf("serve: serializing parameters: %w", err)
	}
	mreg := o.metricsReg
	if mreg == nil {
		mreg = obs.NewRegistry()
	}
	m := newServeMetrics(mreg)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		params:     params,
		paramsBlob: pb.Bytes(),
		reg:        newRegistry(),
		cache:      newPlanCache(o.cacheCap, m),
		opts:       o,
		metrics:    m,
		adm:        newAdmitter(o.admission, o.defPolicy, o.policies, m),
		dedup:      newDedupCache(o.dedupCap),
		ctx:        ctx,
		cancel:     cancel,
		listeners:  make(map[net.Listener]bool),
		conns:      make(map[net.Conn]bool),
	}
	// Snapshot-style occupancy gauges read component state under the
	// component's own lock at scrape time (exposition holds no registry
	// lock while calling them, so the lock order is scrape → component,
	// never the reverse — no cycle).
	mreg.NewGaugeFunc("heax_serve_tenants",
		"Currently registered tenants.",
		func() float64 { return float64(s.reg.len()) })
	mreg.NewGaugeFunc("heax_serve_key_bytes",
		"Serialized evaluation-key bytes held for registered tenants.",
		func() float64 { return float64(s.reg.keyBytes()) })
	mreg.NewGaugeFunc("heax_serve_cached_plans",
		"Compiled plans resident in the LRU cache.",
		func() float64 { return float64(s.cache.len()) })
	mreg.NewGaugeFunc("heax_serve_queued_runs",
		"Input sets queued at admission across all tenants.",
		func() float64 { queued, _ := s.adm.snapshot(); return float64(queued) })
	s.execWG.Add(o.admission)
	for i := 0; i < o.admission; i++ {
		go s.executor()
	}
	return s, nil
}

// MetricsRegistry returns the obs registry holding the server's metric
// families — mount its Handler at /metrics (cmd/heax-serve does this
// behind -metrics-addr).
func (s *Server) MetricsRegistry() *obs.Registry { return s.metrics.reg }

// runJob is one input set bound for one plan — the unit of admission.
type runJob struct {
	ctx context.Context
	cp  *cachedPlan
	in  map[string]*heax.Ciphertext
	idx int
	// bytes is the job's estimated working set, charged against the
	// tenant's MaxBytes budget from submit until done.
	bytes int64
	out   []map[string]*heax.Ciphertext
	errs  []error
	wg    *sync.WaitGroup
}

func (s *Server) executor() {
	defer s.execWG.Done()
	for {
		job, tq, ok := s.adm.next()
		if !ok {
			return
		}
		s.runOne(job, tq)
	}
}

// runOne executes one dispatched job inside the executor's recover
// boundary: a panic escaping a kernel (or the test hook) fails this
// one job with ErrInternal and the worker lives on — the job is always
// marked done and its waiter always released, so no panic can wedge
// the admission accounting or the requesting connection.
func (s *Server) runOne(job *runJob, tq *tenantQueue) {
	defer func() {
		if r := recover(); r != nil {
			job.errs[job.idx] = fmt.Errorf("%w: recovered executor panic: %v", ErrInternal, r)
			s.panicsRecovered.Add(1)
			s.metrics.panics.Inc()
		}
		s.adm.done(tq, job.bytes)
		job.wg.Done()
	}()
	if err := job.ctx.Err(); err != nil {
		// Expired or cancelled while queued: surface the typed error
		// without burning executor time.
		job.errs[job.idx] = err
		s.canceledRuns.Add(1)
		s.metrics.canceled.Inc()
		return
	}
	start := time.Now()
	if d := s.testRunDelay; d > 0 {
		time.Sleep(d)
	}
	if hook := s.testRunHook; hook != nil {
		hook(job.cp.key.tenant)
	}
	job.out[job.idx], job.errs[job.idx] = job.cp.plan.RunContext(job.ctx, job.in)
	if job.errs[job.idx] == nil {
		elapsed := time.Since(start)
		job.cp.observe(elapsed)
		job.cp.hist.Observe(elapsed.Seconds())
		s.completedRuns.Add(1)
		tq.mCompleted.Inc()
	} else if errors.Is(job.errs[job.idx], context.Canceled) {
		s.canceledRuns.Add(1)
		s.metrics.canceled.Inc()
	}
}

// Serve accepts connections on ln until Close or Shutdown (or a
// listener error) and handles each on its own goroutine. It always
// returns a non-nil error; after Close or Shutdown it is
// ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listeners[ln] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopping := s.closed || s.draining
			s.mu.Unlock()
			if stopping {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = true
		s.connWG.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.connWG.Done()
			s.handleConn(conn)
		}()
	}
}

// ListenAndServe listens on the TCP address and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close shuts the server down hard: in-flight runs are cancelled,
// listeners and connections closed, and the executor pool drained.
// For a graceful stop that lets in-flight runs finish, use Shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lns := make([]net.Listener, 0, len(s.listeners))
	for ln := range s.listeners {
		lns = append(lns, ln)
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.cancel()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.connWG.Wait()
	s.adm.close()
	s.execWG.Wait()
	return nil
}

// Shutdown drains the server gracefully: listeners close and new work
// (Run, Compile, Register) is rejected with ErrServerDraining, but
// every run already admitted — executing or queued — finishes and its
// response is flushed. When the drain completes (or ctx expires, or
// ctx was already expired — the hard-stop degenerate case) the server
// falls back to Close. Returns nil on a clean drain, ctx.Err() if the
// deadline cut it short.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	lns := make([]net.Listener, 0, len(s.listeners))
	for ln := range s.listeners {
		lns = append(lns, ln)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	drained := make(chan struct{})
	go func() {
		s.runWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.Close()
	return err
}

// beginRun gates a Run request on the lifecycle: rejected with a typed
// error while draining or closed, otherwise tracked until endRun so
// Shutdown can wait for it (through response flush).
func (s *Server) beginRun() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrServerClosed
	}
	if s.draining {
		return fmt.Errorf("%w: run rejected (in-flight runs are finishing)", ErrServerDraining)
	}
	s.runWG.Add(1)
	return nil
}

func (s *Server) endRun() { s.runWG.Done() }

// stopErr reports the lifecycle rejection for new non-Run work, or nil.
func (s *Server) stopErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrServerClosed
	}
	if s.draining {
		return fmt.Errorf("%w: request rejected during graceful drain", ErrServerDraining)
	}
	return nil
}

// Stats reports the server's current occupancy.
type Stats struct {
	Tenants      int
	CachedPlans  int
	QueuedRuns   int
	CanceledRuns int64
	// CompletedRuns counts input sets executed to completion.
	CompletedRuns int64
	// ShedRuns counts requests rejected at admission (ErrOverloaded or
	// deadline-infeasible ErrDeadlineExceeded) before any work ran.
	ShedRuns int64
	// DedupHits counts retried Runs answered from the dedup cache
	// instead of re-executed.
	DedupHits int64
	// PanicsRecovered counts panics caught at a recover boundary
	// (executor worker, request dispatch, connection handler) and
	// converted into a typed ErrInternal on one request. Nonzero means
	// a bug fired and the daemon survived it.
	PanicsRecovered int64
	// RefcountBugs counts registry refcount invariant violations caught
	// and refused (over-release, release without unregister) instead of
	// panicking the process.
	RefcountBugs int64
	// CacheHits / CacheMisses count compile-path plan-cache lookups (a
	// Run's plan fetch is deliberately uncounted); CacheEvictions counts
	// plans dropped for capacity, tenant eviction or staleness. All
	// three are kept under the cache mutex in the same critical section
	// as the obs counters, so Stats and a /metrics scrape never diverge
	// by more than scrape timing.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	// KeyBytes is the serialized evaluation-key footprint of every
	// currently registered tenant.
	KeyBytes int64
	// Draining reports a graceful shutdown in progress (new work is
	// being rejected while admitted runs finish) — the signal a
	// /healthz endpoint should turn into "not ready".
	Draining bool
}

// Stats snapshots registry, cache and admission occupancy.
func (s *Server) Stats() Stats {
	queued, shed := s.adm.snapshot()
	hits, misses, evictions := s.cache.stats()
	s.mu.Lock()
	draining := s.draining || s.closed
	s.mu.Unlock()
	return Stats{
		Tenants:         s.reg.len(),
		CachedPlans:     s.cache.len(),
		QueuedRuns:      queued,
		CanceledRuns:    s.canceledRuns.Load(),
		CompletedRuns:   s.completedRuns.Load(),
		ShedRuns:        shed,
		DedupHits:       s.dedupHits.Load(),
		PanicsRecovered: s.panicsRecovered.Load(),
		RefcountBugs:    s.reg.bugs.Load(),
		CacheHits:       hits,
		CacheMisses:     misses,
		CacheEvictions:  evictions,
		KeyBytes:        s.reg.keyBytes(),
		Draining:        draining,
	}
}

// SetTenantPolicy installs (or replaces) a tenant's admission policy
// at runtime — weight, in-flight cap, queue bound and byte budget take
// effect for all subsequent submissions, including while a backlog is
// draining. Zero fields inherit the server defaults, exactly as a
// WithTenantPolicy pin at construction would.
func (s *Server) SetTenantPolicy(name string, p TenantPolicy) {
	s.adm.setPolicy(name, p)
}

// RestoreTenant re-installs a tenant from durably stored state — the
// startup half of crash recovery. It registers the tenant exactly as a
// Register request would (the blob is validated against the server's
// parameter set) but does not append to the tenant log: the record is
// already in the log, that is where the blob came from.
func (s *Server) RestoreTenant(name string, keys []byte) error {
	evk, err := heax.ReadEvaluationKeySet(bytes.NewReader(keys), s.params)
	if err != nil {
		return fmt.Errorf("serve: restoring tenant %q: %w", name, err)
	}
	s.regMu.Lock()
	defer s.regMu.Unlock()
	return s.reg.register(name, evk, int64(len(keys)))
}

// --- Connection handling ---------------------------------------------------

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		// The connection-level recover boundary: a panic that escapes a
		// request guard (framing, response encoding) tears down this one
		// connection, never the daemon.
		if r := recover(); r != nil {
			s.panicsRecovered.Add(1)
			s.metrics.panics.Inc()
		}
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// The connection context cancels in-flight work when the peer goes
	// away (or the server closes).
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		typ, payload, err := readFrame(br, s.opts.maxFrame)
		if err != nil {
			// Corrupt framing gets a best-effort error frame; a clean
			// EOF or closed connection just ends the handler.
			if errors.Is(err, heax.ErrCorrupt) {
				s.writeErr(bw, err)
			}
			return
		}
		var rtyp byte
		var rpayload []byte
		switch typ {
		case reqParams:
			rtyp, rpayload = respParams, s.paramsBlob
		case reqRegister:
			rtyp = respOK
			if err = s.stopErr(); err == nil {
				err = s.guard(func() error { return s.handleRegister(payload) })
			}
		case reqUnregister:
			// Allowed during drain: releasing keys is cleanup, not work.
			rtyp = respOK
			err = s.guard(func() error { return s.handleUnregister(payload) })
		case reqCompile:
			rtyp = respPlan
			if err = s.stopErr(); err == nil {
				err = s.guard(func() (gerr error) {
					rpayload, gerr = s.handleCompile(payload)
					return gerr
				})
			}
		case reqRun, reqRunEx:
			// The whole run — admission, execution, response flush — is
			// tracked by runWG so a graceful drain never cuts a response
			// mid-frame.
			if err = s.beginRun(); err == nil {
				err = s.guard(func() (gerr error) {
					rpayload, gerr = s.handleRun(ctx, cancel, conn, br, payload, typ == reqRun)
					return gerr
				})
				if err == nil {
					werr := writeFrame(bw, respBatches, rpayload)
					if werr == nil {
						werr = bw.Flush()
					}
					s.endRun()
					if werr != nil {
						return
					}
					continue
				}
				s.endRun()
			}
		default:
			err = fmt.Errorf("serve: unknown request type %#x: %w", typ, heax.ErrCorrupt)
		}
		if err != nil {
			if !s.writeErr(bw, err) {
				return
			}
			continue
		}
		if err := writeFrame(bw, rtyp, rpayload); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// guard is the per-request recover boundary: a panic anywhere in a
// request handler becomes a typed ErrInternal response for that one
// request, the connection stays up, and the daemon keeps serving every
// other tenant.
func (s *Server) guard(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panicsRecovered.Add(1)
			s.metrics.panics.Inc()
			err = fmt.Errorf("%w: recovered request panic: %v", ErrInternal, r)
		}
	}()
	return f()
}

func (s *Server) writeErr(bw *bufio.Writer, err error) bool {
	code, msg := errToCode(err)
	if errors.Is(err, context.Canceled) {
		code = codeCanceled
	}
	var pw payloadWriter
	pw.bytes([]byte{code})
	pw.bytes([]byte(msg))
	if werr := writeFrame(bw, respErr, pw.buf); werr != nil {
		return false
	}
	return bw.Flush() == nil
}

func (s *Server) handleRegister(payload []byte) error {
	pr := payloadReader{buf: payload}
	name, err := pr.str("tenant name")
	if err != nil {
		return err
	}
	blob, err := pr.blob("evaluation key set")
	if err != nil {
		return err
	}
	if err := pr.done("register request"); err != nil {
		return err
	}
	// Budget the key bytes BEFORE deserializing: an oversized key set is
	// shed while it is still one wire blob, not after it has been
	// expanded into live polynomial memory.
	if limit := s.adm.policyFor(name).MaxBytes; limit > 0 && int64(len(blob)) > limit {
		return fmt.Errorf("%w: tenant %q key set of %d bytes exceeds the %d-byte budget",
			ErrResourceExhausted, name, len(blob), limit)
	}
	evk, err := heax.ReadEvaluationKeySet(bytes.NewReader(blob), s.params)
	if err != nil {
		return err
	}
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if err := s.reg.register(name, evk, int64(len(blob))); err != nil {
		return err
	}
	if s.opts.tlog != nil {
		if lerr := s.opts.tlog.AppendRegister(name, blob); lerr != nil {
			// Roll back: an unlogged registration must not be acknowledged,
			// or a crash would silently forget a tenant the client believes
			// is registered.
			s.reg.unregister(name)
			return fmt.Errorf("serve: tenant log append failed (registration rolled back): %w", lerr)
		}
	}
	return nil
}

func (s *Server) handleUnregister(payload []byte) error {
	pr := payloadReader{buf: payload}
	name, err := pr.str("tenant name")
	if err != nil {
		return err
	}
	if err := pr.done("unregister request"); err != nil {
		return err
	}
	s.regMu.Lock()
	defer s.regMu.Unlock()
	// Log-before-evict, mirroring register's append-before-ack: if the
	// append fails the tenant simply stays registered (durable state
	// remains a faithful superset of acknowledged state), whereas
	// evicting first would resurrect the tenant on restart.
	if s.opts.tlog != nil {
		if !s.reg.has(name) {
			return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
		}
		if lerr := s.opts.tlog.AppendUnregister(name); lerr != nil {
			return fmt.Errorf("serve: tenant log append failed (tenant stays registered): %w", lerr)
		}
	}
	return s.evictTenant(name)
}

// evictTenant unregisters a tenant and releases everything bound to
// the registration: cached plans (each drops its key reference — the
// keys retire when the last in-flight user finishes), admission-queue
// state, and dedup entries (a request id must never resolve to a
// result under retired keys after the name is re-registered).
func (s *Server) evictTenant(name string) error {
	if err := s.reg.unregister(name); err != nil {
		return err
	}
	for _, cp := range s.cache.purgeTenant(name) {
		s.reg.release(cp.tenant)
		s.dropPlanMetrics(cp, nil)
	}
	s.dedup.purgeTenant(name)
	s.adm.dropIdle(name)
	return nil
}

// dropPlanMetrics deletes an evicted plan's run-latency series unless
// keep (an entry staying cached) carries the same label values — the
// racing-duplicate compile path retires the newcomer while the
// incumbent must keep its (tenant, plan) series alive.
func (s *Server) dropPlanMetrics(old, keep *cachedPlan) {
	if keep != nil && old.key == keep.key {
		return
	}
	s.metrics.runSeconds.Delete(old.key.tenant, old.tag)
}

func (s *Server) handleCompile(payload []byte) ([]byte, error) {
	pr := payloadReader{buf: payload}
	name, err := pr.str("tenant name")
	if err != nil {
		return nil, err
	}
	dag, err := pr.blob("circuit description")
	if err != nil {
		return nil, err
	}
	if err := pr.done("compile request"); err != nil {
		return nil, err
	}
	// Canonicalize (decode → re-encode) so formatting differences in
	// client JSON do not split the cache, then key by tenant + digest.
	var circ heax.Circuit
	if err := json.Unmarshal(dag, &circ); err != nil {
		return nil, fmt.Errorf("%v: %w", err, heax.ErrCorrupt)
	}
	canonical, err := json.Marshal(&circ)
	if err != nil {
		return nil, fmt.Errorf("%v: %w", err, heax.ErrCorrupt)
	}
	id := digestCircuit(canonical)
	key := cacheKey{tenant: name, id: id}
	if cp, ok := s.cache.get(key); ok {
		// A hit only counts if the entry belongs to the name's current
		// registration: after an unregister (or unregister +
		// re-register with fresh keys) a lingering entry must never be
		// served — drop it and recompile against the live keys.
		if s.reg.live(cp.tenant) {
			return compileResponse(id, cp.steps, true), nil
		}
		if s.cache.removeEntry(cp) {
			s.reg.release(cp.tenant)
			s.dropPlanMetrics(cp, nil)
		}
	}
	entry, err := s.reg.acquire(name)
	if err != nil {
		return nil, err
	}
	plan, err := circ.Compile(s.params, entry.evk, s.opts.compileOpts...)
	if err != nil {
		s.reg.release(entry)
		if errors.Is(err, heax.ErrKeyMissing) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", errCompile, err)
	}
	cp := &cachedPlan{key: key, plan: plan, tenant: entry, steps: plan.NumSteps(), tag: planTag(id)}
	cp.hist = s.metrics.runSeconds.With(name, cp.tag)
	if s.opts.traceSteps {
		plan.SetTracer(s.metrics.tracer)
	}
	for _, old := range s.cache.add(cp) {
		s.reg.release(old.tenant)
		s.dropPlanMetrics(old, cp)
	}
	// If the tenant was evicted while we compiled, the purge may have
	// run before our insert landed; retire the entry ourselves rather
	// than leave a stale plan under a (possibly re-registered) name.
	// removeEntry is pointer-precise, so a plan the eviction already
	// purged (or a racing duplicate add already retired) is not
	// released twice.
	if !s.reg.live(entry) && s.cache.removeEntry(cp) {
		s.reg.release(entry)
		s.dropPlanMetrics(cp, nil)
	}
	return compileResponse(id, cp.steps, false), nil
}

func compileResponse(id PlanID, steps int, cached bool) []byte {
	var pw payloadWriter
	pw.bytes(id[:])
	pw.u32(uint32(steps))
	flag := byte(0)
	if cached {
		flag = 1
	}
	pw.bytes([]byte{flag})
	return pw.buf
}

// runRequest is one parsed Run request (legacy or extended frame).
type runRequest struct {
	tenant  string
	id      PlanID
	reqID   requestID     // zero = no retry dedup
	budget  time.Duration // remaining deadline budget; 0 = none
	batches []map[string]*heax.Ciphertext
}

// maxBudgetUS caps the wire deadline budget (~106 days in µs): larger
// values are a corrupt frame, not a quiet Duration overflow.
const maxBudgetUS = uint64(1) << 53

// parseRunRequest decodes a Run payload. legacy selects the original
// reqRun layout (no request id / deadline fields); malformed input of
// either revision fails with an error wrapping heax.ErrCorrupt.
func (s *Server) parseRunRequest(payload []byte, legacy bool) (*runRequest, error) {
	pr := payloadReader{buf: payload}
	name, err := pr.str("tenant name")
	if err != nil {
		return nil, err
	}
	req := &runRequest{tenant: name}
	idBytes, err := pr.take(len(PlanID{}), "plan id")
	if err != nil {
		return nil, err
	}
	copy(req.id[:], idBytes)
	if !legacy {
		rid, err := pr.take(len(requestID{}), "request id")
		if err != nil {
			return nil, err
		}
		copy(req.reqID[:], rid)
		budgetUS, err := pr.u64("deadline budget")
		if err != nil {
			return nil, err
		}
		if budgetUS > maxBudgetUS {
			return nil, fmt.Errorf("serve: deadline budget %d µs out of range: %w", budgetUS, heax.ErrCorrupt)
		}
		req.budget = time.Duration(budgetUS) * time.Microsecond
	}
	n, err := pr.u32("batch count")
	if err != nil {
		return nil, err
	}
	req.batches = make([]map[string]*heax.Ciphertext, 0, min(int(n), 1024))
	for i := 0; i < int(n); i++ {
		blob, err := pr.blob("ciphertext batch")
		if err != nil {
			return nil, err
		}
		batch, err := heax.ReadCiphertextBatch(bytes.NewReader(blob), s.params)
		if err != nil {
			return nil, err
		}
		req.batches = append(req.batches, batch)
	}
	if err := pr.done("run request"); err != nil {
		return nil, err
	}
	return req, nil
}

func (s *Server) handleRun(ctx context.Context, cancel context.CancelFunc, conn net.Conn, br *bufio.Reader, payload []byte, legacy bool) (resp []byte, err error) {
	req, perr := s.parseRunRequest(payload, legacy)
	if perr != nil {
		return nil, perr
	}
	if s.opts.slowRun > 0 && s.opts.slowLogf != nil {
		start := time.Now()
		defer func() {
			if d := time.Since(start); d >= s.opts.slowRun {
				s.opts.slowLogf("serve: slow run tenant=%q plan=%x batches=%d dur=%v err=%v",
					req.tenant, req.id[:8], len(req.batches), d.Round(time.Microsecond), err)
			}
		}()
	}
	if req.reqID == (requestID{}) {
		return s.executeRun(ctx, cancel, conn, br, req)
	}
	// Idempotent retry: the request id keys a dedup entry. The first
	// arrival owns the execution; a retry joins it (the original may
	// still be computing after a dropped connection) or is answered
	// from the cached response — never executed a second time. An
	// attempt that failed (cancelled mid-run, shed, ...) is not cached,
	// so the retry re-claims and re-executes.
	key := dedupKey{tenant: req.tenant, id: req.reqID}
	for {
		e, owner := s.dedup.claim(key)
		if owner {
			resp, err := s.executeRun(ctx, cancel, conn, br, req)
			s.dedup.complete(e, resp, err)
			return resp, err
		}
		select {
		case <-e.done:
			if e.err != nil {
				s.dedup.drop(e)
				continue
			}
			s.dedupHits.Add(1)
			s.metrics.dedupHits.With(req.tenant).Inc()
			return e.resp, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func (s *Server) executeRun(ctx context.Context, cancel context.CancelFunc, conn net.Conn, br *bufio.Reader, req *runRequest) ([]byte, error) {
	// lookup, not get: run-path plan fetches must not dilute the
	// compile-path hit rate.
	cp, ok := s.cache.lookup(cacheKey{tenant: req.tenant, id: req.id})
	if ok && !s.reg.live(cp.tenant) {
		// Stale entry from an evicted (possibly re-registered) tenant:
		// never serve it — a fresh registration under the same name
		// must recompile against its own keys.
		if s.cache.removeEntry(cp) {
			s.reg.release(cp.tenant)
			s.dropPlanMetrics(cp, nil)
		}
		ok = false
	}
	if !ok {
		return nil, fmt.Errorf("%w: tenant %q plan %x (compile it first)", ErrUnknownPlan, req.tenant, req.id[:4])
	}
	// Hold a key reference for the whole run, so an eviction mid-run
	// can purge the cache but never retire the keys under us.
	if !s.reg.retain(cp.tenant) {
		return nil, fmt.Errorf("%w: tenant %q plan %x (compile it first)", ErrUnknownPlan, req.tenant, req.id[:4])
	}
	defer s.reg.release(cp.tenant)

	// The client's deadline budget propagates into every job context,
	// so a mid-run expiry aborts the plan executor with a typed error.
	if req.budget > 0 {
		var cancelBudget context.CancelFunc
		ctx, cancelBudget = context.WithTimeout(ctx, req.budget)
		defer cancelBudget()
	}

	// While the executors stream this request, watch the socket: a
	// vanished client cancels the connection context and the plan
	// executor abandons the remaining steps.
	stopWatch := watchDisconnect(conn, br, cancel)
	defer stopWatch()

	out := make([]map[string]*heax.Ciphertext, len(req.batches))
	errs := make([]error, len(req.batches))
	var wg sync.WaitGroup
	jobs := make([]*runJob, len(req.batches))
	runBytes := cp.plan.FootprintBytes()
	for i, in := range req.batches {
		jobs[i] = &runJob{ctx: ctx, cp: cp, in: in, idx: i, bytes: runBytes, out: out, errs: errs, wg: &wg}
	}
	wg.Add(len(jobs))
	// All-or-nothing admission: a full tenant queue, a blown memory
	// budget (key bytes + live working set) or an unmeetable deadline
	// rejects the whole request here, in O(ms), instead of blocking or
	// timing out mid-run.
	if err := s.adm.submit(req.tenant, jobs, cp.tenant.keyBytes, req.budget, cp.estNS.Load()); err != nil {
		wg.Add(-len(jobs))
		return nil, err
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				err = fmt.Errorf("%w: %v", ErrDeadlineExceeded, err)
			}
			return nil, fmt.Errorf("serve: batch %d: %w", i, err)
		}
	}
	var pw payloadWriter
	pw.u32(uint32(len(out)))
	var buf bytes.Buffer
	for _, batch := range out {
		buf.Reset()
		if err := heax.WriteCiphertextBatch(&buf, batch); err != nil {
			return nil, err
		}
		pw.blob(buf.Bytes())
		// Bound the response by the same frame cap requests obey: an
		// explicit, actionable error beats shipping a frame the peer
		// must reject as corrupt (both sides share one cap contract).
		if len(pw.buf) > s.opts.maxFrame {
			return nil, fmt.Errorf("serve: response of %d+ bytes exceeds the %d-byte frame cap (raise it on both sides or send fewer batches per request): %w",
				len(pw.buf), s.opts.maxFrame, ErrFrameTooLarge)
		}
	}
	return pw.buf, nil
}

// watchDisconnect peeks the connection while a request is processed:
// an EOF or reset mid-request means the client is gone, so the
// connection context cancels and in-flight plan runs abort. The
// returned stop function pokes the blocked peek with an immediate read
// deadline and clears it again; pipelined bytes from a live client
// terminate the watch without being consumed.
func watchDisconnect(conn net.Conn, br *bufio.Reader, cancel context.CancelFunc) (stop func()) {
	stopped := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		_, err := br.Peek(1)
		select {
		case <-stopped:
			return
		default:
		}
		if err == nil {
			return // pipelined request: client is alive
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return
		}
		cancel()
	}()
	return func() {
		close(stopped)
		conn.SetReadDeadline(time.Now())
		<-finished
		conn.SetReadDeadline(time.Time{})
	}
}
