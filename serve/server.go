package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"heax"
)

// Server is the multi-tenant plan-serving daemon: one process, one
// parameter set (the fixed accelerator pipeline), many tenants. See
// the package documentation for the architecture.
type Server struct {
	params     *heax.Params
	paramsBlob []byte
	reg        *registry
	cache      *planCache
	opts       serverOptions

	// jobs is the global admission window: len(executor pool) workers
	// drain it in FIFO order, so concurrent tenants' input sets
	// interleave instead of the first large batch monopolizing the
	// evaluator worker pool.
	jobs   chan runJob
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	listeners map[net.Listener]bool
	conns     map[net.Conn]bool
	closed    bool

	connWG sync.WaitGroup
	execWG sync.WaitGroup

	canceledRuns atomic.Int64
}

type serverOptions struct {
	cacheCap    int
	admission   int
	maxFrame    int
	compileOpts []heax.CompileOption
}

// Option configures a Server at construction.
type Option func(*serverOptions)

// WithCacheCapacity bounds how many compiled plans the LRU cache holds
// across all tenants (default 64). The least recently used plan is
// evicted first; an evicted plan id simply recompiles on next use.
func WithCacheCapacity(n int) Option {
	return func(o *serverOptions) { o.cacheCap = n }
}

// WithAdmissionWindow sets how many input sets may execute concurrently
// across all tenants and connections (default GOMAXPROCS) — the host
// analogue of the paper's bounded device queue.
func WithAdmissionWindow(n int) Option {
	return func(o *serverOptions) {
		if n < 1 {
			n = 1
		}
		o.admission = n
	}
}

// WithMaxFrameBytes caps the size of a single protocol frame (default
// DefaultMaxFrame). Oversized frames are rejected before allocation.
func WithMaxFrameBytes(n int) Option {
	return func(o *serverOptions) {
		if n < 1<<10 {
			n = 1 << 10
		}
		o.maxFrame = n
	}
}

// WithCompileOptions forwards compile options (worker caps, batch
// window, hoisting) to every plan the server compiles.
func WithCompileOptions(opts ...heax.CompileOption) Option {
	return func(o *serverOptions) { o.compileOpts = append(o.compileOpts, opts...) }
}

// NewServer builds a server for one parameter set and starts its
// executor pool. Callers own the listeners: combine with Serve, and
// Close to shut down.
func NewServer(params *heax.Params, opts ...Option) (*Server, error) {
	if params == nil {
		return nil, errors.New("serve: nil parameters")
	}
	o := serverOptions{
		cacheCap:  64,
		admission: runtime.GOMAXPROCS(0),
		maxFrame:  DefaultMaxFrame,
	}
	for _, opt := range opts {
		opt(&o)
	}
	var pb bytes.Buffer
	if err := heax.WriteParams(&pb, params); err != nil {
		return nil, fmt.Errorf("serve: serializing parameters: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		params:     params,
		paramsBlob: pb.Bytes(),
		reg:        newRegistry(),
		cache:      newPlanCache(o.cacheCap),
		opts:       o,
		jobs:       make(chan runJob),
		ctx:        ctx,
		cancel:     cancel,
		listeners:  make(map[net.Listener]bool),
		conns:      make(map[net.Conn]bool),
	}
	s.execWG.Add(o.admission)
	for i := 0; i < o.admission; i++ {
		go s.executor()
	}
	return s, nil
}

// runJob is one input set bound for one plan — the unit of admission.
type runJob struct {
	ctx  context.Context
	plan *heax.Plan
	in   map[string]*heax.Ciphertext
	idx  int
	out  []map[string]*heax.Ciphertext
	errs []error
	wg   *sync.WaitGroup
}

func (s *Server) executor() {
	defer s.execWG.Done()
	for job := range s.jobs {
		if err := job.ctx.Err(); err != nil {
			job.errs[job.idx] = err
			s.canceledRuns.Add(1)
		} else {
			job.out[job.idx], job.errs[job.idx] = job.plan.RunContext(job.ctx, job.in)
			if job.errs[job.idx] != nil && errors.Is(job.errs[job.idx], context.Canceled) {
				s.canceledRuns.Add(1)
			}
		}
		job.wg.Done()
	}
}

// Serve accepts connections on ln until Close (or a listener error)
// and handles each on its own goroutine. It always returns a non-nil
// error; after Close, the error is ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listeners[ln] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.ctx.Done():
				return ErrServerClosed
			default:
				return err
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = true
		s.connWG.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.connWG.Done()
			s.handleConn(conn)
		}()
	}
}

// ListenAndServe listens on the TCP address and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close shuts the server down: in-flight runs are cancelled, listeners
// and connections closed, and the executor pool drained.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lns := make([]net.Listener, 0, len(s.listeners))
	for ln := range s.listeners {
		lns = append(lns, ln)
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.cancel()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.connWG.Wait()
	close(s.jobs)
	s.execWG.Wait()
	return nil
}

// Stats reports the server's current occupancy.
type Stats struct {
	Tenants      int
	CachedPlans  int
	CanceledRuns int64
}

// Stats snapshots registry and cache occupancy.
func (s *Server) Stats() Stats {
	return Stats{
		Tenants:      s.reg.len(),
		CachedPlans:  s.cache.len(),
		CanceledRuns: s.canceledRuns.Load(),
	}
}

// --- Connection handling ---------------------------------------------------

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// The connection context cancels in-flight work when the peer goes
	// away (or the server closes).
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		typ, payload, err := readFrame(br, s.opts.maxFrame)
		if err != nil {
			// Corrupt framing gets a best-effort error frame; a clean
			// EOF or closed connection just ends the handler.
			if errors.Is(err, heax.ErrCorrupt) {
				s.writeErr(bw, err)
			}
			return
		}
		var rtyp byte
		var rpayload []byte
		switch typ {
		case reqParams:
			rtyp, rpayload = respParams, s.paramsBlob
		case reqRegister:
			rtyp, err = respOK, s.handleRegister(payload)
		case reqUnregister:
			rtyp, err = respOK, s.handleUnregister(payload)
		case reqCompile:
			rtyp = respPlan
			rpayload, err = s.handleCompile(payload)
		case reqRun:
			rtyp = respBatches
			rpayload, err = s.handleRun(ctx, cancel, conn, br, payload)
		default:
			err = fmt.Errorf("serve: unknown request type %#x: %w", typ, heax.ErrCorrupt)
		}
		if err != nil {
			if !s.writeErr(bw, err) {
				return
			}
			continue
		}
		if err := writeFrame(bw, rtyp, rpayload); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) writeErr(bw *bufio.Writer, err error) bool {
	code, msg := errToCode(err)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		code = codeCanceled
	}
	var pw payloadWriter
	pw.bytes([]byte{code})
	pw.bytes([]byte(msg))
	if werr := writeFrame(bw, respErr, pw.buf); werr != nil {
		return false
	}
	return bw.Flush() == nil
}

func (s *Server) handleRegister(payload []byte) error {
	pr := payloadReader{buf: payload}
	name, err := pr.str("tenant name")
	if err != nil {
		return err
	}
	blob, err := pr.blob("evaluation key set")
	if err != nil {
		return err
	}
	if err := pr.done("register request"); err != nil {
		return err
	}
	evk, err := heax.ReadEvaluationKeySet(bytes.NewReader(blob), s.params)
	if err != nil {
		return err
	}
	return s.reg.register(name, evk)
}

func (s *Server) handleUnregister(payload []byte) error {
	pr := payloadReader{buf: payload}
	name, err := pr.str("tenant name")
	if err != nil {
		return err
	}
	if err := pr.done("unregister request"); err != nil {
		return err
	}
	if err := s.reg.unregister(name); err != nil {
		return err
	}
	// Evicting the tenant drops its cached plans; each purged plan
	// releases its key reference, and the keys retire when the last
	// in-flight user finishes.
	for _, cp := range s.cache.purgeTenant(name) {
		s.reg.release(cp.tenant)
	}
	return nil
}

func (s *Server) handleCompile(payload []byte) ([]byte, error) {
	pr := payloadReader{buf: payload}
	name, err := pr.str("tenant name")
	if err != nil {
		return nil, err
	}
	dag, err := pr.blob("circuit description")
	if err != nil {
		return nil, err
	}
	if err := pr.done("compile request"); err != nil {
		return nil, err
	}
	// Canonicalize (decode → re-encode) so formatting differences in
	// client JSON do not split the cache, then key by tenant + digest.
	var circ heax.Circuit
	if err := json.Unmarshal(dag, &circ); err != nil {
		return nil, fmt.Errorf("%v: %w", err, heax.ErrCorrupt)
	}
	canonical, err := json.Marshal(&circ)
	if err != nil {
		return nil, fmt.Errorf("%v: %w", err, heax.ErrCorrupt)
	}
	id := digestCircuit(canonical)
	key := cacheKey{tenant: name, id: id}
	if cp, ok := s.cache.get(key); ok {
		// A hit only counts if the entry belongs to the name's current
		// registration: after an unregister (or unregister +
		// re-register with fresh keys) a lingering entry must never be
		// served — drop it and recompile against the live keys.
		if s.reg.live(cp.tenant) {
			return compileResponse(id, cp.steps, true), nil
		}
		if s.cache.removeEntry(cp) {
			s.reg.release(cp.tenant)
		}
	}
	entry, err := s.reg.acquire(name)
	if err != nil {
		return nil, err
	}
	plan, err := circ.Compile(s.params, entry.evk, s.opts.compileOpts...)
	if err != nil {
		s.reg.release(entry)
		if errors.Is(err, heax.ErrKeyMissing) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", errCompile, err)
	}
	cp := &cachedPlan{key: key, plan: plan, tenant: entry, steps: plan.NumSteps()}
	for _, old := range s.cache.add(cp) {
		s.reg.release(old.tenant)
	}
	// If the tenant was evicted while we compiled, the purge may have
	// run before our insert landed; retire the entry ourselves rather
	// than leave a stale plan under a (possibly re-registered) name.
	// removeEntry is pointer-precise, so a plan the eviction already
	// purged (or a racing duplicate add already retired) is not
	// released twice.
	if !s.reg.live(entry) && s.cache.removeEntry(cp) {
		s.reg.release(entry)
	}
	return compileResponse(id, cp.steps, false), nil
}

func compileResponse(id PlanID, steps int, cached bool) []byte {
	var pw payloadWriter
	pw.bytes(id[:])
	pw.u32(uint32(steps))
	flag := byte(0)
	if cached {
		flag = 1
	}
	pw.bytes([]byte{flag})
	return pw.buf
}

func (s *Server) handleRun(ctx context.Context, cancel context.CancelFunc, conn net.Conn, br *bufio.Reader, payload []byte) ([]byte, error) {
	pr := payloadReader{buf: payload}
	name, err := pr.str("tenant name")
	if err != nil {
		return nil, err
	}
	idBytes, err := pr.take(len(PlanID{}), "plan id")
	if err != nil {
		return nil, err
	}
	var id PlanID
	copy(id[:], idBytes)
	n, err := pr.u32("batch count")
	if err != nil {
		return nil, err
	}
	batches := make([]map[string]*heax.Ciphertext, 0, min(int(n), 1024))
	for i := 0; i < int(n); i++ {
		blob, err := pr.blob("ciphertext batch")
		if err != nil {
			return nil, err
		}
		batch, err := heax.ReadCiphertextBatch(bytes.NewReader(blob), s.params)
		if err != nil {
			return nil, err
		}
		batches = append(batches, batch)
	}
	if err := pr.done("run request"); err != nil {
		return nil, err
	}
	cp, ok := s.cache.get(cacheKey{tenant: name, id: id})
	if ok && !s.reg.live(cp.tenant) {
		// Stale entry from an evicted (possibly re-registered) tenant:
		// never serve it — a fresh registration under the same name
		// must recompile against its own keys.
		if s.cache.removeEntry(cp) {
			s.reg.release(cp.tenant)
		}
		ok = false
	}
	if !ok {
		return nil, fmt.Errorf("%w: tenant %q plan %x (compile it first)", ErrUnknownPlan, name, id[:4])
	}
	// Hold a key reference for the whole run, so an eviction mid-run
	// can purge the cache but never retire the keys under us.
	if !s.reg.retain(cp.tenant) {
		return nil, fmt.Errorf("%w: tenant %q plan %x (compile it first)", ErrUnknownPlan, name, id[:4])
	}
	defer s.reg.release(cp.tenant)

	// While the executors stream this request, watch the socket: a
	// vanished client cancels the connection context and the plan
	// executor abandons the remaining steps.
	stopWatch := watchDisconnect(conn, br, cancel)
	defer stopWatch()

	out := make([]map[string]*heax.Ciphertext, len(batches))
	errs := make([]error, len(batches))
	var wg sync.WaitGroup
	for i, in := range batches {
		job := runJob{ctx: ctx, plan: cp.plan, in: in, idx: i, out: out, errs: errs, wg: &wg}
		wg.Add(1)
		select {
		case s.jobs <- job:
		case <-ctx.Done():
			wg.Done()
			errs[i] = ctx.Err()
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("serve: batch %d: %w", i, err)
		}
	}
	var pw payloadWriter
	pw.u32(uint32(len(out)))
	var buf bytes.Buffer
	for _, batch := range out {
		buf.Reset()
		if err := heax.WriteCiphertextBatch(&buf, batch); err != nil {
			return nil, err
		}
		pw.blob(buf.Bytes())
		// Bound the response by the same frame cap requests obey: an
		// explicit, actionable error beats shipping a frame the peer
		// must reject as corrupt (both sides share one cap contract).
		if len(pw.buf) > s.opts.maxFrame {
			return nil, fmt.Errorf("serve: response of %d+ bytes exceeds the %d-byte frame cap (raise it on both sides or send fewer batches per request)",
				len(pw.buf), s.opts.maxFrame)
		}
	}
	return pw.buf, nil
}

// watchDisconnect peeks the connection while a request is processed:
// an EOF or reset mid-request means the client is gone, so the
// connection context cancels and in-flight plan runs abort. The
// returned stop function pokes the blocked peek with an immediate read
// deadline and clears it again; pipelined bytes from a live client
// terminate the watch without being consumed.
func watchDisconnect(conn net.Conn, br *bufio.Reader, cancel context.CancelFunc) (stop func()) {
	stopped := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		_, err := br.Peek(1)
		select {
		case <-stopped:
			return
		default:
		}
		if err == nil {
			return // pipelined request: client is alive
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return
		}
		cancel()
	}()
	return func() {
		close(stopped)
		conn.SetReadDeadline(time.Now())
		<-finished
		conn.SetReadDeadline(time.Time{})
	}
}
