package serve

// The serve layer's obs instrumentation: one serveMetrics bundle per
// server, registered on a single obs.Registry (the server's own by
// default, or one supplied with WithMetricsRegistry — a registry can
// back at most one server, family names collide otherwise).
//
// Naming scheme: heax_serve_* for the daemon (admission, cache,
// registry, run latency), heax_plan_* for the plan executor (per-step
// latency via the Tracer seam). Counters end in _total; histograms in
// _seconds. Per-tenant children are deleted when a tenant is evicted
// and idle, so label cardinality tracks the live tenant set.
//
// Overhead discipline: every hot-path update goes through an
// instrument pointer cached at tenant-queue or cached-plan creation
// (obs children allocate only in With), so admission and run
// accounting add a handful of atomic ops per job and zero allocations.

import (
	"encoding/hex"
	"time"

	"heax"
	"heax/obs"
)

type serveMetrics struct {
	reg *obs.Registry

	// Admission (per tenant; children cached on tenantQueue).
	queueDepth *obs.GaugeVec   // heax_serve_queue_depth
	strideLag  *obs.GaugeVec   // heax_serve_stride_pass_lag
	queued     *obs.CounterVec // heax_serve_runs_queued_total
	completed  *obs.CounterVec // heax_serve_runs_completed_total
	shed       *obs.CounterVec // heax_serve_runs_shed_total{tenant,reason}

	// Plan cache (mirrored into Stats under cache.mu).
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter

	// Run outcomes.
	runSeconds *obs.HistogramVec // heax_serve_run_seconds{tenant,plan}
	canceled   *obs.Counter
	dedupHits  *obs.CounterVec
	panics     *obs.Counter

	// Plan executor step latency, fed through the heax.Tracer seam.
	tracer *stepTracer
}

func newServeMetrics(r *obs.Registry) *serveMetrics {
	m := &serveMetrics{
		reg: r,
		queueDepth: r.NewGaugeVec("heax_serve_queue_depth",
			"Input sets queued at admission, per tenant.", "tenant"),
		strideLag: r.NewGaugeVec("heax_serve_stride_pass_lag",
			"Tenant stride pass minus global virtual time at last dispatch; persistent positive lag means the tenant is outpacing its weight.", "tenant"),
		queued: r.NewCounterVec("heax_serve_runs_queued_total",
			"Input sets accepted into the admission queue.", "tenant"),
		completed: r.NewCounterVec("heax_serve_runs_completed_total",
			"Input sets executed to completion.", "tenant"),
		shed: r.NewCounterVec("heax_serve_runs_shed_total",
			"Requests rejected at admission, by reason (overloaded, memory, deadline).", "tenant", "reason"),
		cacheHits: r.NewCounter("heax_serve_plan_cache_hits_total",
			"Compile requests answered from the plan cache."),
		cacheMisses: r.NewCounter("heax_serve_plan_cache_misses_total",
			"Compile requests that missed the plan cache."),
		cacheEvictions: r.NewCounter("heax_serve_plan_cache_evictions_total",
			"Plans evicted from the cache (capacity or tenant eviction)."),
		runSeconds: r.NewHistogramVec("heax_serve_run_seconds",
			"Wall time of one successfully executed input set.",
			obs.ExpBuckets(0.001, 2, 16), "tenant", "plan"),
		canceled: r.NewCounter("heax_serve_runs_canceled_total",
			"Input sets canceled or expired before completion."),
		dedupHits: r.NewCounterVec("heax_serve_dedup_hits_total",
			"Retried runs answered from the dedup cache instead of re-executed.", "tenant"),
		panics: r.NewCounter("heax_serve_panics_recovered_total",
			"Panics caught at a recover boundary and converted to ErrInternal."),
	}
	m.tracer = newStepTracer(r)
	return m
}

// dropTenant removes a tenant's per-tenant admission children once the
// tenant is evicted and idle, bounding label cardinality to the live
// tenant set. Shed-reason and dedup children go too.
func (m *serveMetrics) dropTenant(name string) {
	m.queueDepth.Delete(name)
	m.strideLag.Delete(name)
	m.queued.Delete(name)
	m.completed.Delete(name)
	m.dedupHits.Delete(name)
	for _, reason := range shedReasons {
		m.shed.Delete(name, reason)
	}
}

var shedReasons = [...]string{"overloaded", "memory", "deadline"}

// planTag renders a plan id as a bounded metric label: the first 8
// digest bytes in hex (collision odds are irrelevant for monitoring,
// and full 64-char labels bloat every sample line).
func planTag(id PlanID) string { return hex.EncodeToString(id[:8]) }

// stepTracer implements heax.Tracer on top of an obs histogram vec
// labeled by step kind. Children are pre-registered for every kind at
// construction, so ObserveStep is a map lookup plus one histogram
// observation — no allocation on the kernel path.
type stepTracer struct {
	byKind map[string]*obs.Histogram
}

func newStepTracer(r *obs.Registry) *stepTracer {
	vec := r.NewHistogramVec("heax_plan_step_seconds",
		"Kernel wall time of one executed plan step, by step kind.",
		obs.ExpBuckets(0.0001, 2, 16), "kind")
	t := &stepTracer{byKind: make(map[string]*obs.Histogram)}
	for _, kind := range heax.StepKinds() {
		t.byKind[kind] = vec.With(kind)
	}
	return t
}

// ObserveStep implements heax.Tracer.
func (t *stepTracer) ObserveStep(kind string, d time.Duration) {
	if h, ok := t.byKind[kind]; ok {
		h.Observe(d.Seconds())
	}
}
