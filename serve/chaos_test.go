package serve

// The wire-level chaos harness: every scenario injects a fault —
// slow byte-dribbled I/O, a mid-frame connection cut, a stalled
// client that never reads, a graceful drain mid-batch, a dropped
// response retried by request id — and asserts the same contract:
// the client observes either a typed error or a result bit-identical
// to the in-process oracle; the server never hangs, never serves a
// corrupt frame, and leaks no key-registry or plan-cache reference
// (refcounts audited to zero after every scenario).

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"heax"
)

// --- fault injection --------------------------------------------------------

// faultConn wraps a net.Conn with injectable faults: per-chunk read and
// write delays, forced small chunking (so frames cross the wire in
// dribbles), a hard cut after N written bytes (mid-frame), and a cut
// after N read bytes (the response is lost mid-frame).
type faultConn struct {
	net.Conn
	mu            sync.Mutex
	readDelay     time.Duration
	writeDelay    time.Duration
	chunk         int // max bytes per underlying op (0 = unlimited)
	cutAfterWrite int // -1 = never
	cutAfterRead  int // -1 = never
	written       int
	read          int
	cut           bool
}

func newFaultConn(c net.Conn) *faultConn {
	return &faultConn{Conn: c, cutAfterWrite: -1, cutAfterRead: -1}
}

func (f *faultConn) isCut() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cut
}

func (f *faultConn) doCut() error {
	f.mu.Lock()
	f.cut = true
	f.mu.Unlock()
	f.Conn.Close()
	return fmt.Errorf("faultconn: connection cut: %w", net.ErrClosed)
}

func (f *faultConn) Read(p []byte) (int, error) {
	f.mu.Lock()
	d, ch, cutAt, cut := f.readDelay, f.chunk, f.cutAfterRead, f.cut
	f.mu.Unlock()
	if cut {
		return 0, net.ErrClosed
	}
	if d > 0 {
		time.Sleep(d)
	}
	if ch > 0 && len(p) > ch {
		p = p[:ch]
	}
	if cutAt >= 0 && f.read >= cutAt {
		return 0, f.doCut()
	}
	if cutAt >= 0 && f.read+len(p) > cutAt {
		p = p[:cutAt-f.read]
	}
	n, err := f.Conn.Read(p)
	f.read += n
	return n, err
}

func (f *faultConn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		f.mu.Lock()
		d, ch, cutAt, cut := f.writeDelay, f.chunk, f.cutAfterWrite, f.cut
		f.mu.Unlock()
		if cut {
			return total, net.ErrClosed
		}
		if d > 0 {
			time.Sleep(d)
		}
		n := len(p)
		if ch > 0 && n > ch {
			n = ch
		}
		if cutAt >= 0 && f.written+n >= cutAt {
			if keep := cutAt - f.written; keep > 0 {
				m, _ := f.Conn.Write(p[:keep])
				f.written += m
				total += m
			}
			return total, f.doCut()
		}
		m, err := f.Conn.Write(p[:n])
		f.written += m
		total += m
		if err != nil {
			return total, err
		}
		p = p[m:]
	}
	return total, nil
}

// --- scenario kit -----------------------------------------------------------

// chaosSpec is a deliberately tiny parameter set so chaos scenarios
// run hundreds of wire round trips under -race in milliseconds.
var chaosSpec = heax.ParamSpec{Name: "chaos", LogN: 4, QBits: []int{30, 30}, PBits: 31, LogScale: 20}

var (
	chaosParamsOnce sync.Once
	chaosParamsVal  *heax.Params
)

func chaosParams(t testing.TB) *heax.Params {
	t.Helper()
	chaosParamsOnce.Do(func() { chaosParamsVal = heax.MustParams(chaosSpec) })
	return chaosParamsVal
}

// chaosKit is one tenant's key material, codec and in-process oracle
// for the rotate-and-add circuit.
type chaosKit struct {
	params    *heax.Params
	evk       *heax.EvaluationKeySet
	enc       *heax.Encoder
	encryptor *heax.Encryptor
	oracle    *heax.Plan
}

func newChaosKit(t testing.TB, params *heax.Params, seed int64) *chaosKit {
	t.Helper()
	kg := heax.NewKeyGenerator(params, seed)
	sk := kg.GenSecretKey()
	k := &chaosKit{
		params:    params,
		evk:       heax.GenEvaluationKeys(kg, sk, []int{1}, false),
		enc:       heax.NewEncoder(params),
		encryptor: heax.NewEncryptor(params, kg.GenPublicKey(sk), seed+1),
	}
	oracle, err := chaosCircuit().Compile(params, k.evk)
	if err != nil {
		t.Fatal(err)
	}
	k.oracle = oracle
	return k
}

func chaosCircuit() *heax.Circuit {
	c := heax.NewCircuit()
	in := c.Input("x")
	c.Output("y", c.Add(c.Rotate(in, 1), in))
	return c
}

func (k *chaosKit) batches(t testing.TB, seed int64, n int) []map[string]*heax.Ciphertext {
	t.Helper()
	slots := k.params.Slots()
	in := make([]map[string]*heax.Ciphertext, n)
	for b := 0; b < n; b++ {
		vec := make([]float64, slots)
		for i := range vec {
			vec[i] = float64((seed+int64(b*slots+i))%17) / 17
		}
		pt, err := k.enc.EncodeReal(vec, k.params.MaxLevel(), k.params.DefaultScale())
		if err != nil {
			t.Fatal(err)
		}
		ct, err := k.encryptor.Encrypt(pt)
		if err != nil {
			t.Fatal(err)
		}
		in[b] = map[string]*heax.Ciphertext{"x": ct}
	}
	return in
}

// encodeLegacyRun serializes a Run request in the original reqRun
// layout (no request id, no deadline budget).
func encodeLegacyRun(t testing.TB, tenant string, id PlanID, in []map[string]*heax.Ciphertext) []byte {
	t.Helper()
	var pw payloadWriter
	if err := pw.str(tenant); err != nil {
		t.Fatal(err)
	}
	pw.bytes(id[:])
	pw.u32(uint32(len(in)))
	var buf bytes.Buffer
	for _, batch := range in {
		buf.Reset()
		if err := heax.WriteCiphertextBatch(&buf, batch); err != nil {
			t.Fatal(err)
		}
		pw.blob(buf.Bytes())
	}
	return pw.buf
}

func chaosCtEqual(a, b *heax.Ciphertext) bool {
	if a == nil || b == nil || a.Scale != b.Scale || a.Level != b.Level || len(a.Polys) != len(b.Polys) {
		return false
	}
	for i := range a.Polys {
		if !a.Polys[i].Equal(b.Polys[i]) {
			return false
		}
	}
	return true
}

// assertOracle checks a wire result bit-identical to the in-process oracle.
func (k *chaosKit) assertOracle(t *testing.T, in, got []map[string]*heax.Ciphertext) {
	t.Helper()
	want, err := k.oracle.RunBatch(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d batches, want %d", len(got), len(want))
	}
	for b := range want {
		if !chaosCtEqual(got[b]["y"], want[b]["y"]) {
			t.Fatalf("batch %d: wire result not bit-identical to the in-process oracle", b)
		}
	}
}

// startChaosServer starts a server on loopback and returns it with its
// address. Callers own srv.Close via t.Cleanup.
func startChaosServer(t testing.TB, params *heax.Params, delay time.Duration, opts ...Option) (*Server, string) {
	t.Helper()
	srv, err := NewServer(params, opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv.testRunDelay = delay
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// auditZeroLeak is the post-scenario invariant: once the scenario's
// connections are gone, every run settles, and evicting all tenants
// must retire every key-registry entry and empty the plan cache —
// zero leaked references, whatever fault was injected.
func auditZeroLeak(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.adm.mu.Lock()
		settled := s.adm.queuedTotal == 0 && s.adm.inFlightTotal == 0
		s.adm.mu.Unlock()
		if settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("admission never settled: jobs leaked or executors hung")
		}
		time.Sleep(2 * time.Millisecond)
	}
	waited := make(chan struct{})
	go func() { s.runWG.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(10 * time.Second):
		t.Fatal("run handlers never finished: a faulted connection wedged the server")
	}
	s.reg.mu.Lock()
	names := make([]string, 0, len(s.reg.tenants))
	entries := make([]*tenantEntry, 0, len(s.reg.tenants))
	for name, e := range s.reg.tenants {
		names = append(names, name)
		entries = append(entries, e)
	}
	s.reg.mu.Unlock()
	for _, name := range names {
		if err := s.evictTenant(name); err != nil {
			t.Fatalf("evicting %q: %v", name, err)
		}
	}
	if n := s.cache.len(); n != 0 {
		t.Fatalf("plan cache leaks %d entries after evicting every tenant", n)
	}
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	for _, e := range entries {
		if !e.retired {
			t.Errorf("tenant %q keys not retired: %d references leaked", e.name, e.refs)
		}
	}
	if len(s.reg.tenants) != 0 {
		t.Fatalf("registry still holds %d tenants", len(s.reg.tenants))
	}
}

// dialChaos connects a Client through a faultConn so the scenario can
// twist the wire underneath an otherwise normal client.
func dialChaos(t *testing.T, addr string) (*Client, *faultConn) {
	t.Helper()
	raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	fc := newFaultConn(raw)
	cl, err := NewClient(fc)
	if err != nil {
		t.Fatal(err)
	}
	return cl, fc
}

// --- scenarios --------------------------------------------------------------

// TestChaosSlowIO: bytes dribble through 13-byte chunks with per-chunk
// delays in both directions; the protocol must stay framed and the
// result bit-identical.
func TestChaosSlowIO(t *testing.T) {
	srv, addr := startChaosServer(t, chaosParams(t), 0)
	cl, fc := dialChaos(t, addr)
	defer cl.Close()
	fc.mu.Lock()
	fc.chunk = 13
	fc.readDelay = 200 * time.Microsecond
	fc.writeDelay = 200 * time.Microsecond
	fc.mu.Unlock()

	kit := newChaosKit(t, cl.Params(), 101)
	if err := cl.Register("slow", kit.evk); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Compile("slow", chaosCircuit())
	if err != nil {
		t.Fatal(err)
	}
	in := kit.batches(t, 102, 2)
	got, err := cl.Run("slow", info.ID, in)
	if err != nil {
		t.Fatal(err)
	}
	kit.assertOracle(t, in, got)
	cl.Close()
	auditZeroLeak(t, srv)
}

// TestChaosMidFrameCut: the connection dies partway through writing a
// Run request — inside the header, inside the payload — and the server
// must treat the torn frame as a dead peer (or ErrCorrupt), never
// execute garbage, never hang, and keep serving healthy clients.
func TestChaosMidFrameCut(t *testing.T) {
	srv, addr := startChaosServer(t, chaosParams(t), 0)
	setup, _ := dialChaos(t, addr)
	defer setup.Close()
	kit := newChaosKit(t, setup.Params(), 111)
	if err := setup.Register("cut", kit.evk); err != nil {
		t.Fatal(err)
	}
	info, err := setup.Compile("cut", chaosCircuit())
	if err != nil {
		t.Fatal(err)
	}

	for _, cutAt := range []int{3, 9, 20, 200} {
		cl, fc := dialChaos(t, addr)
		fc.mu.Lock()
		fc.cutAfterWrite = fc.written + cutAt
		fc.mu.Unlock()
		in := kit.batches(t, 112, 1)
		_, err := cl.Run("cut", info.ID, in)
		if err == nil {
			t.Fatalf("cut at +%d bytes: a torn request cannot succeed", cutAt)
		}
		if !fc.isCut() {
			t.Fatalf("cut at +%d bytes: fault did not trigger (frame smaller than expected)", cutAt)
		}
		cl.Close()
	}

	// The server is still healthy: a clean client round-trips bit-identically.
	in := kit.batches(t, 113, 1)
	got, err := setup.Run("cut", info.ID, in)
	if err != nil {
		t.Fatal(err)
	}
	kit.assertOracle(t, in, got)
	setup.Close()
	auditZeroLeak(t, srv)
}

// TestChaosStalledClient: a client floods a large run and then never
// reads its response; a healthy tenant keeps completing runs the whole
// time, and closing the stalled connection cleans everything up.
func TestChaosStalledClient(t *testing.T) {
	srv, addr := startChaosServer(t, chaosParams(t), 0,
		WithAdmissionWindow(1),
		WithTenantPolicy("stall", TenantPolicy{MaxInFlight: 1, MaxQueued: 4096}))
	stalled, fc := dialChaos(t, addr)
	kit := newChaosKit(t, stalled.Params(), 121)
	if err := stalled.Register("stall", kit.evk); err != nil {
		t.Fatal(err)
	}
	info, err := stalled.Compile("stall", chaosCircuit())
	if err != nil {
		t.Fatal(err)
	}

	// Fire a 256-batch run and go silent: the request lands and
	// executes, but the response is never read — everything the server
	// writes backs up into the socket.
	in := kit.batches(t, 122, 256)
	if err := writeFrame(stalled.bw, reqRun, encodeLegacyRun(t, "stall", info.ID, in)); err != nil {
		t.Fatal(err)
	}
	if err := stalled.bw.Flush(); err != nil {
		t.Fatal(err)
	}

	// A healthy tenant is admitted and completes throughout the stall.
	healthy, _ := dialChaos(t, addr)
	defer healthy.Close()
	hkit := newChaosKit(t, healthy.Params(), 123)
	if err := healthy.Register("healthy", hkit.evk); err != nil {
		t.Fatal(err)
	}
	hinfo, err := healthy.Compile("healthy", chaosCircuit())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		hin := hkit.batches(t, int64(124+round), 2)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		got, err := healthy.RunContext(ctx, "healthy", hinfo.ID, hin)
		cancel()
		if err != nil {
			t.Fatalf("healthy tenant blocked behind a stalled one (round %d): %v", round, err)
		}
		hkit.assertOracle(t, hin, got)
	}

	// Tear the stalled client down; its handler unwedges and the audit
	// must find nothing pinned.
	fc.Conn.Close()
	healthy.Close()
	auditZeroLeak(t, srv)
}

// TestChaosDrainMidBatch: Shutdown arrives while a multi-batch run is
// executing. The in-flight run completes bit-identically, new work is
// rejected with ErrServerDraining, and the drain finishes inside its
// deadline.
func TestChaosDrainMidBatch(t *testing.T) {
	srv, addr := startChaosServer(t, chaosParams(t), 30*time.Millisecond, WithAdmissionWindow(1))
	cl, _ := dialChaos(t, addr)
	defer cl.Close()
	late, _ := dialChaos(t, addr) // connected before the drain begins
	defer late.Close()
	kit := newChaosKit(t, cl.Params(), 131)
	if err := cl.Register("drain", kit.evk); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Compile("drain", chaosCircuit())
	if err != nil {
		t.Fatal(err)
	}

	in := kit.batches(t, 132, 4) // ≥120ms of injected run time
	type runResult struct {
		out []map[string]*heax.Ciphertext
		err error
	}
	resCh := make(chan runResult, 1)
	go func() {
		out, err := cl.Run("drain", info.ID, in)
		resCh <- runResult{out, err}
	}()
	// Wait until the run is admitted, then start draining.
	for {
		srv.adm.mu.Lock()
		busy := srv.adm.inFlightTotal > 0
		srv.adm.mu.Unlock()
		if busy {
			break
		}
		time.Sleep(time.Millisecond)
	}
	shutErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutErr <- srv.Shutdown(ctx)
	}()
	// New work during the drain is rejected with the typed sentinel.
	for {
		srv.mu.Lock()
		draining := srv.draining
		srv.mu.Unlock()
		if draining {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := late.Run("drain", info.ID, kit.batches(t, 133, 1)); !errors.Is(err, ErrServerDraining) {
		t.Fatalf("run during drain must be ErrServerDraining, got %v", err)
	}
	if _, err := late.Compile("drain", chaosCircuit()); !errors.Is(err, ErrServerDraining) {
		t.Fatalf("compile during drain must be ErrServerDraining, got %v", err)
	}

	// The in-flight run drained to completion, bit-identical.
	res := <-resCh
	if res.err != nil {
		t.Fatalf("in-flight run must survive a graceful drain, got %v", res.err)
	}
	kit.assertOracle(t, in, res.out)
	if err := <-shutErr; err != nil {
		t.Fatalf("drain missed its deadline: %v", err)
	}
	// Audit directly: runs settled, registry clean (server is closed,
	// but registry/cache state must still be releasable).
	auditZeroLeak(t, srv)
}

// TestChaosRetryDedup: the response is cut mid-frame after the server
// executed the run; the client's idempotent retry reconnects, re-sends
// the same request id, and is answered from the dedup cache — the run
// executes exactly once, and the retried result is bit-identical.
func TestChaosRetryDedup(t *testing.T) {
	srv, addr := startChaosServer(t, chaosParams(t), 0)
	cl, err := Dial(addr, WithRetry(3, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	kit := newChaosKit(t, cl.Params(), 141)
	if err := cl.Register("retry", kit.evk); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Compile("retry", chaosCircuit())
	if err != nil {
		t.Fatal(err)
	}

	// Swap the healthy connection for one that loses the response
	// mid-frame: allow the request out, then cut after 32 response bytes.
	fc := newFaultConn(cl.conn)
	fc.cutAfterRead = 32
	cl.conn = fc
	cl.br = bufio.NewReaderSize(fc, 64<<10)
	cl.bw = bufio.NewWriterSize(fc, 64<<10)

	in := kit.batches(t, 142, 2)
	got, err := cl.Run("retry", info.ID, in)
	if err != nil {
		t.Fatalf("retry after a cut response must succeed, got %v", err)
	}
	kit.assertOracle(t, in, got)
	if n := srv.completedRuns.Load(); n != 2 { // 2 input sets, once each
		t.Fatalf("run executed %d input sets, want 2 — the retry double-executed", n)
	}
	if n := srv.dedupHits.Load(); n != 1 {
		t.Fatalf("dedup hits = %d, want 1 (the retry must be answered from cache)", n)
	}
	cl.Close()
	auditZeroLeak(t, srv)
}

// TestChaosRetryRequestCut: the cut eats the request itself (the
// server never saw it); the retry reconnects and the run executes
// exactly once — on the retry.
func TestChaosRetryRequestCut(t *testing.T) {
	srv, addr := startChaosServer(t, chaosParams(t), 0)
	cl, err := Dial(addr, WithRetry(3, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	kit := newChaosKit(t, cl.Params(), 151)
	if err := cl.Register("retry2", kit.evk); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Compile("retry2", chaosCircuit())
	if err != nil {
		t.Fatal(err)
	}
	fc := newFaultConn(cl.conn)
	fc.cutAfterWrite = 40 // inside the Run request frame
	cl.conn = fc
	cl.br = bufio.NewReaderSize(fc, 64<<10)
	cl.bw = bufio.NewWriterSize(fc, 64<<10)

	in := kit.batches(t, 152, 1)
	got, err := cl.Run("retry2", info.ID, in)
	if err != nil {
		t.Fatalf("retry after a cut request must succeed, got %v", err)
	}
	kit.assertOracle(t, in, got)
	if n := srv.completedRuns.Load(); n != 1 {
		t.Fatalf("run executed %d input sets, want 1", n)
	}
	cl.Close()
	auditZeroLeak(t, srv)
}

// TestChaosDeadlineShedFast: under a saturated queue with a seeded
// run-time estimate, an unmeetable deadline is rejected typed and
// immediately — long before the backlog could drain.
func TestChaosDeadlineShedFast(t *testing.T) {
	srv, addr := startChaosServer(t, chaosParams(t), 100*time.Millisecond,
		WithAdmissionWindow(1),
		WithDefaultTenantPolicy(TenantPolicy{MaxQueued: 1024}))
	cl, _ := dialChaos(t, addr)
	defer cl.Close()
	kit := newChaosKit(t, cl.Params(), 161)
	if err := cl.Register("shed", kit.evk); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Compile("shed", chaosCircuit())
	if err != nil {
		t.Fatal(err)
	}
	// Seed the estimator: one completed run ≈ 100ms.
	seed := kit.batches(t, 162, 1)
	if _, err := cl.Run("shed", info.ID, seed); err != nil {
		t.Fatal(err)
	}

	// Build a backlog of ~6 queued input sets on separate connections.
	// (Inputs are encrypted up front: the encryptor's PRNG is not safe
	// for concurrent use.)
	shedIn := kit.batches(t, 169, 1)
	var floodWG sync.WaitGroup
	for i := 0; i < 6; i++ {
		fcl, _ := dialChaos(t, addr)
		defer fcl.Close()
		in := kit.batches(t, int64(163+i), 1)
		floodWG.Add(1)
		go func(c *Client) {
			defer floodWG.Done()
			c.Run("shed", info.ID, in)
		}(fcl)
	}
	for {
		srv.adm.mu.Lock()
		deep := srv.adm.queuedTotal >= 4
		srv.adm.mu.Unlock()
		if deep {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// ~600ms of backlog ahead; a 50ms budget is hopeless and must be
	// shed in O(ms), not queued until it times out.
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	_, err = cl.RunContext(ctx, "shed", info.ID, shedIn)
	cancel()
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("unmeetable deadline must be ErrDeadlineExceeded, got %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("shed took %v: the request queued instead of being rejected up front", elapsed)
	}
	if shed := srv.Stats().ShedRuns; shed < 1 {
		t.Fatalf("ShedRuns = %d, want ≥1", shed)
	}
	floodWG.Wait()
	cl.Close()
	auditZeroLeak(t, srv)
}

// TestChaosMidRunDeadline: a deadline that expires while the plan is
// executing aborts the run with the typed wire error (not a hang, not
// an untyped cancel).
func TestChaosMidRunDeadline(t *testing.T) {
	srv, addr := startChaosServer(t, chaosParams(t), 80*time.Millisecond)
	cl, _ := dialChaos(t, addr)
	defer cl.Close()
	kit := newChaosKit(t, cl.Params(), 171)
	if err := cl.Register("midrun", kit.evk); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Compile("midrun", chaosCircuit())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	_, err = cl.RunContext(ctx, "midrun", info.ID, kit.batches(t, 172, 1))
	if !errors.Is(err, ErrDeadlineExceeded) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-run expiry must surface as a deadline error, got %v", err)
	}
	cl.Close()
	auditZeroLeak(t, srv)
}

// TestChaosLegacyRunFrame: the original reqRun layout (no request id,
// no deadline) still round-trips bit-identically — protocol revision 2
// is backward compatible.
func TestChaosLegacyRunFrame(t *testing.T) {
	srv, addr := startChaosServer(t, chaosParams(t), 0)
	cl, _ := dialChaos(t, addr)
	defer cl.Close()
	kit := newChaosKit(t, cl.Params(), 181)
	if err := cl.Register("legacy", kit.evk); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Compile("legacy", chaosCircuit())
	if err != nil {
		t.Fatal(err)
	}
	in := kit.batches(t, 182, 2)
	resp, err := cl.roundTrip(context.Background(), reqRun, encodeLegacyRun(t, "legacy", info.ID, in), respBatches)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.parseRunResponse(resp, len(in))
	if err != nil {
		t.Fatal(err)
	}
	kit.assertOracle(t, in, got)
	cl.Close()
	auditZeroLeak(t, srv)
}

// TestChaosWeightedFairWire: two tenants at weights 2:1 flood a
// one-executor server; sampled mid-saturation, the heavy tenant leads
// ~2:1 and the light one is never starved; both drain fully.
func TestChaosWeightedFairWire(t *testing.T) {
	srv, addr := startChaosServer(t, chaosParams(t), 2*time.Millisecond,
		WithAdmissionWindow(1),
		WithTenantPolicy("heavy", TenantPolicy{Weight: 2, MaxQueued: 1024}),
		WithTenantPolicy("light", TenantPolicy{Weight: 1, MaxQueued: 1024}))
	reg, _ := dialChaos(t, addr)
	defer reg.Close()
	params := reg.Params()
	kits := map[string]*chaosKit{
		"heavy": newChaosKit(t, params, 191),
		"light": newChaosKit(t, params, 192),
	}
	infos := map[string]PlanInfo{}
	for name, kit := range kits {
		if err := reg.Register(name, kit.evk); err != nil {
			t.Fatal(err)
		}
		info, err := reg.Compile(name, chaosCircuit())
		if err != nil {
			t.Fatal(err)
		}
		infos[name] = info
	}

	// Encrypt every round's inputs up front (the encryptor's PRNG is
	// not safe for concurrent use), then flood from 3 connections per
	// tenant simultaneously.
	const conns, rounds = 3, 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	for name := range kits {
		for c := 0; c < conns; c++ {
			cl, _ := dialChaos(t, addr)
			defer cl.Close()
			work := make([][]map[string]*heax.Ciphertext, rounds)
			for r := 0; r < rounds; r++ {
				work[r] = kits[name].batches(t, int64(200+c*10+r), 1)
			}
			wg.Add(1)
			go func(cl *Client, name string, work [][]map[string]*heax.Ciphertext) {
				defer wg.Done()
				<-start
				for _, in := range work {
					if _, err := cl.Run(name, infos[name].ID, in); err != nil {
						t.Errorf("%s: %v", name, err)
						return
					}
				}
			}(cl, name, work)
		}
	}
	close(start)

	// Sample mid-saturation: after half the work completes, the heavy
	// tenant must lead and the light tenant must be making progress.
	total := int64(2 * conns * rounds)
	for {
		done := srv.adm.tenantCompleted("heavy") + srv.adm.tenantCompleted("light")
		if done >= total/2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	heavy, light := srv.adm.tenantCompleted("heavy"), srv.adm.tenantCompleted("light")
	if light < 2 {
		t.Fatalf("light tenant starved: %d completions while heavy has %d", light, heavy)
	}
	if heavy <= light {
		t.Fatalf("weights not honored at saturation: heavy=%d light=%d", heavy, light)
	}
	wg.Wait()
	if h, l := srv.adm.tenantCompleted("heavy"), srv.adm.tenantCompleted("light"); h != conns*rounds || l != conns*rounds {
		t.Fatalf("drain incomplete: heavy=%d light=%d, want %d each", h, l, conns*rounds)
	}
	reg.Close()
	auditZeroLeak(t, srv)
}

// FuzzParseRunRequest: both revisions of the Run frame must reject
// malformed payloads with errors wrapping heax.ErrCorrupt — never a
// panic, hang, or oversized allocation.
func FuzzParseRunRequest(f *testing.F) {
	params := heax.MustParams(chaosSpec)
	s, err := NewServer(params, WithAdmissionWindow(1))
	if err != nil {
		f.Fatal(err)
	}
	defer s.Close()
	kit := newChaosKit(f, params, 201)
	enc := kit.batches(f, 202, 1)
	var buf bytes.Buffer
	if err := heax.WriteCiphertextBatch(&buf, enc[0]); err != nil {
		f.Fatal(err)
	}
	var pw payloadWriter
	pw.str("t")
	pw.bytes(make([]byte, len(PlanID{})))
	pw.bytes(make([]byte, len(requestID{})))
	pw.u64(1_000_000)
	pw.u32(1)
	pw.blob(buf.Bytes())
	f.Add(pw.buf, false)
	f.Add(pw.buf[:len(pw.buf)/2], false)
	f.Add(pw.buf, true)
	f.Add([]byte{}, true)
	f.Fuzz(func(t *testing.T, data []byte, legacy bool) {
		req, err := s.parseRunRequest(data, legacy)
		if err != nil {
			if !errors.Is(err, heax.ErrCorrupt) {
				t.Fatalf("malformed run request must wrap ErrCorrupt, got %v", err)
			}
			return
		}
		if len(req.batches) > 1<<20 {
			t.Fatalf("parser over-allocated %d batches", len(req.batches))
		}
	})
}
