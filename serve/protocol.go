package serve

// The wire protocol: fixed-header frames carrying one message each.
//
//	frame := magic(u32 LE) | type(u8) | length(u32 LE) | payload
//
// Payloads are built from the heax serialization codecs (params, key
// sets, ciphertext batches) plus small length-prefixed strings. Every
// length is checked against the negotiated frame cap before anything
// is allocated; a malformed frame fails with an error wrapping
// heax.ErrCorrupt.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"heax"
)

const frameMagic uint32 = 0x31535848 // "HXS1"

// DefaultMaxFrame bounds a frame payload (1 GiB): large enough for a
// Set-C key upload, small enough that a hostile length prefix cannot
// exhaust memory.
const DefaultMaxFrame = 1 << 30

// Message types. Requests have the high bit clear, responses set.
const (
	reqParams     byte = 0x01
	reqRegister   byte = 0x02
	reqUnregister byte = 0x03
	reqCompile    byte = 0x04
	reqRun        byte = 0x05
	// reqRunEx is the extended Run request (protocol revision 2): the
	// legacy fields plus a 16-byte client request id (zero = none) and a
	// u64 deadline budget in microseconds (0 = none). Servers keep
	// accepting the legacy reqRun, so old clients interoperate; new
	// clients always send reqRunEx.
	reqRunEx byte = 0x06

	respOK      byte = 0x80
	respParams  byte = 0x81
	respPlan    byte = 0x82
	respBatches byte = 0x83
	respErr     byte = 0xff
)

// Error codes carried by respErr frames, mapped back to sentinels on
// the client side.
const (
	codeInternal byte = iota
	codeCorrupt
	codeUnknownTenant
	codeTenantExists
	codeUnknownPlan
	codeKeyMissing
	codeCompile
	codeCanceled
	codeOverloaded
	codeDeadline
	codeDraining
	codeResourceExhausted
)

// Sentinel errors of the serving layer; wire errors arriving at the
// client wrap one of these (or a heax sentinel) so callers can branch
// with errors.Is.
var (
	// ErrUnknownTenant: the request names a tenant that is not
	// registered (or was evicted).
	ErrUnknownTenant = errors.New("serve: unknown tenant")
	// ErrTenantExists: Register for a name that is already bound to a
	// key set; unregister it first.
	ErrTenantExists = errors.New("serve: tenant already registered")
	// ErrUnknownPlan: the request references a plan id that is not in
	// the cache (never compiled, or evicted — compile again).
	ErrUnknownPlan = errors.New("serve: unknown plan")
	// ErrServerClosed: the server is shutting down.
	ErrServerClosed = errors.New("serve: server closed")
	// ErrServerDraining: the server is gracefully draining
	// (Server.Shutdown); in-flight runs finish, but new work is
	// rejected. Retry against another replica.
	ErrServerDraining = errors.New("serve: server draining")
	// ErrFrameTooLarge: a frame payload (request or response) exceeds
	// what the wire format or the configured frame cap can carry. The
	// frame was refused before any bytes hit the socket, so the stream
	// stays synchronized; send less per frame or raise the cap on both
	// sides.
	ErrFrameTooLarge = errors.New("serve: frame too large")
	// ErrOverloaded: the tenant's bounded admission queue is full. The
	// request was rejected immediately instead of queuing; back off and
	// retry (Client retry with WithRetry does this automatically).
	ErrOverloaded = errors.New("serve: overloaded")
	// ErrDeadlineExceeded: the request's deadline budget cannot be met —
	// either the admission estimator predicted the queue would eat the
	// budget (rejected in O(ms), before any work), or the deadline
	// expired mid-run. Not retryable without a larger budget.
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded")
	// ErrResourceExhausted: admitting the work would push the tenant
	// past its TenantPolicy.MaxBytes memory budget (registered key
	// bytes plus the working set of queued and executing runs). The
	// request was shed before any allocation; free capacity
	// (unregister, smaller plans, fewer concurrent batches) or raise
	// the budget.
	ErrResourceExhausted = errors.New("serve: tenant resource budget exhausted")
	// ErrInternal: a panic or invariant violation inside the server was
	// recovered and converted into this typed failure of the one
	// request that hit it. The daemon keeps serving; the error is also
	// counted in Stats (PanicsRecovered / RefcountBugs).
	ErrInternal = errors.New("serve: internal error")
)

func errToCode(err error) (byte, string) {
	switch {
	case errors.Is(err, heax.ErrCorrupt):
		return codeCorrupt, err.Error()
	case errors.Is(err, ErrOverloaded):
		return codeOverloaded, err.Error()
	case errors.Is(err, ErrDeadlineExceeded), errors.Is(err, context.DeadlineExceeded):
		return codeDeadline, err.Error()
	case errors.Is(err, ErrResourceExhausted):
		return codeResourceExhausted, err.Error()
	case errors.Is(err, ErrServerDraining):
		return codeDraining, err.Error()
	case errors.Is(err, ErrUnknownTenant):
		return codeUnknownTenant, err.Error()
	case errors.Is(err, ErrTenantExists):
		return codeTenantExists, err.Error()
	case errors.Is(err, ErrUnknownPlan):
		return codeUnknownPlan, err.Error()
	case errors.Is(err, heax.ErrKeyMissing):
		return codeKeyMissing, err.Error()
	case errors.Is(err, errCompile):
		return codeCompile, err.Error()
	default:
		return codeInternal, err.Error()
	}
}

// errCompile marks server-side compilation failures that are not key
// related (depth, scale, malformed DAG semantics).
var errCompile = errors.New("serve: compile failed")

func codeToErr(code byte, msg string) error {
	switch code {
	case codeCorrupt:
		return fmt.Errorf("serve: remote: %s: %w", msg, heax.ErrCorrupt)
	case codeUnknownTenant:
		return fmt.Errorf("serve: remote: %s: %w", msg, ErrUnknownTenant)
	case codeTenantExists:
		return fmt.Errorf("serve: remote: %s: %w", msg, ErrTenantExists)
	case codeUnknownPlan:
		return fmt.Errorf("serve: remote: %s: %w", msg, ErrUnknownPlan)
	case codeKeyMissing:
		return fmt.Errorf("serve: remote: %s: %w", msg, heax.ErrKeyMissing)
	case codeCompile:
		return fmt.Errorf("serve: remote: %s: %w", msg, errCompile)
	case codeCanceled:
		return fmt.Errorf("serve: remote: %s: %w", msg, context.Canceled)
	case codeOverloaded:
		return fmt.Errorf("serve: remote: %s: %w", msg, ErrOverloaded)
	case codeDeadline:
		return fmt.Errorf("serve: remote: %s: %w", msg, ErrDeadlineExceeded)
	case codeDraining:
		return fmt.Errorf("serve: remote: %s: %w", msg, ErrServerDraining)
	case codeResourceExhausted:
		return fmt.Errorf("serve: remote: %s: %w", msg, ErrResourceExhausted)
	case codeInternal:
		return fmt.Errorf("serve: remote: %s: %w", msg, ErrInternal)
	default:
		// An unrecognized code means the peer speaks a wire dialect this
		// side does not: treat it as protocol corruption so retry logic
		// refuses to hammer an incompatible endpoint.
		return fmt.Errorf("serve: remote: unknown error code %d: %s: %w", code, msg, heax.ErrCorrupt)
	}
}

// writeFrame emits one frame. The payload is fully assembled first so
// a failed encoder never leaves a half-written frame on the socket; a
// payload the u32 length field cannot carry is refused rather than
// silently truncated into a desynchronized stream.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if int64(len(payload)) > int64(^uint32(0)) {
		return fmt.Errorf("serve: frame payload of %d bytes exceeds the wire format's 4 GiB limit: %w", len(payload), ErrFrameTooLarge)
	}
	var hdr [9]byte
	binary.LittleEndian.PutUint32(hdr[0:4], frameMagic)
	hdr[4] = typ
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, rejecting bad magic and payloads larger
// than maxFrame before allocating.
func readFrame(r io.Reader, maxFrame int) (byte, []byte, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err // clean EOF at a frame boundary is not corruption
	}
	if got := binary.LittleEndian.Uint32(hdr[0:4]); got != frameMagic {
		return 0, nil, fmt.Errorf("serve: bad frame magic %#x: %w", got, heax.ErrCorrupt)
	}
	typ := hdr[4]
	n := binary.LittleEndian.Uint32(hdr[5:9])
	if int64(n) > int64(maxFrame) {
		return 0, nil, fmt.Errorf("serve: frame of %d bytes exceeds the %d-byte cap: %w", n, maxFrame, heax.ErrCorrupt)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("serve: truncated frame: %w: %w", err, heax.ErrCorrupt)
	}
	return typ, payload, nil
}

// Payload encoding: frames embed strings as [u32 length | bytes] and
// serialized heax objects (params, key sets, ciphertext batches) as
// length-prefixed blobs [u32 length | object bytes]. Blobs keep the
// payload parseable without trusting the embedded codec to consume an
// exact byte count, and let the parser hand each object a private
// sub-slice (the heax readers buffer internally and may read ahead).

const maxStringLen = 1 << 8

// payloadWriter accumulates a frame payload.
type payloadWriter struct {
	buf []byte
}

func (p *payloadWriter) u32(v uint32) {
	p.buf = binary.LittleEndian.AppendUint32(p.buf, v)
}

func (p *payloadWriter) u64(v uint64) {
	p.buf = binary.LittleEndian.AppendUint64(p.buf, v)
}

func (p *payloadWriter) bytes(b []byte) {
	p.buf = append(p.buf, b...)
}

func (p *payloadWriter) str(s string) error {
	if len(s) == 0 || len(s) > maxStringLen {
		return fmt.Errorf("serve: string field length %d out of range [1, %d]: %w", len(s), maxStringLen, heax.ErrCorrupt)
	}
	p.u32(uint32(len(s)))
	p.buf = append(p.buf, s...)
	return nil
}

func (p *payloadWriter) blob(b []byte) {
	p.u32(uint32(len(b)))
	p.buf = append(p.buf, b...)
}

// payloadReader parses a frame payload in place: strings and blobs are
// sub-slices of the frame buffer, so parsing allocates nothing beyond
// the frame itself and a corrupt length can never over-allocate.
type payloadReader struct {
	buf []byte
	off int
}

func (p *payloadReader) remaining() int { return len(p.buf) - p.off }

func (p *payloadReader) u32(what string) (uint32, error) {
	if p.remaining() < 4 {
		return 0, fmt.Errorf("serve: truncated %s: %w", what, heax.ErrCorrupt)
	}
	v := binary.LittleEndian.Uint32(p.buf[p.off:])
	p.off += 4
	return v, nil
}

func (p *payloadReader) u64(what string) (uint64, error) {
	if p.remaining() < 8 {
		return 0, fmt.Errorf("serve: truncated %s: %w", what, heax.ErrCorrupt)
	}
	v := binary.LittleEndian.Uint64(p.buf[p.off:])
	p.off += 8
	return v, nil
}

func (p *payloadReader) take(n int, what string) ([]byte, error) {
	if n < 0 || p.remaining() < n {
		return nil, fmt.Errorf("serve: %s claims %d bytes, %d remain: %w", what, n, p.remaining(), heax.ErrCorrupt)
	}
	b := p.buf[p.off : p.off+n]
	p.off += n
	return b, nil
}

func (p *payloadReader) str(what string) (string, error) {
	n, err := p.u32(what)
	if err != nil {
		return "", err
	}
	if n == 0 || n > maxStringLen {
		return "", fmt.Errorf("serve: %s length %d out of range [1, %d]: %w", what, n, maxStringLen, heax.ErrCorrupt)
	}
	b, err := p.take(int(n), what)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (p *payloadReader) blob(what string) ([]byte, error) {
	n, err := p.u32(what)
	if err != nil {
		return nil, err
	}
	return p.take(int(n), what)
}

// done rejects trailing garbage, so a framing bug surfaces as
// ErrCorrupt instead of a silent misparse.
func (p *payloadReader) done(what string) error {
	if p.remaining() != 0 {
		return fmt.Errorf("serve: %s carries %d trailing bytes: %w", what, p.remaining(), heax.ErrCorrupt)
	}
	return nil
}
