package serve

// The compiled-plan cache: LRU-bounded, keyed by (tenant, digest of
// the canonicalized circuit DAG). Hitting the cache skips parsing,
// validation and compilation entirely — the compile-once / run-many
// contract across connections and sessions of a tenant. Each cached
// plan holds one reference on its tenant's key registry entry;
// eviction (capacity or tenant eviction) releases it.

import (
	"container/list"
	"crypto/sha256"
	"sync"
	"sync/atomic"
	"time"

	"heax"
	"heax/obs"
)

// PlanID names a cached plan: the SHA-256 digest of the canonical
// (decode → re-encode) JSON of its circuit DAG. Identical circuits
// submitted by different tenants share an id but never a cache entry —
// entries are keyed by tenant too, because the compiled plan embeds
// tenant keys.
type PlanID [sha256.Size]byte

func digestCircuit(canonical []byte) PlanID { return sha256.Sum256(canonical) }

type cacheKey struct {
	tenant string
	id     PlanID
}

type cachedPlan struct {
	key    cacheKey
	plan   *heax.Plan
	tenant *tenantEntry // the registry reference this plan holds
	steps  int
	// hist is the plan's run-latency histogram child
	// (heax_serve_run_seconds{tenant,plan}), cached at compile so the
	// executor's success path observes without a vec lookup.
	hist *obs.Histogram
	// tag is the plan id rendered once as its metric label value.
	tag string
	// estNS is a moving estimate (EWMA, α=¼) of one input set's run
	// time through this plan, fed back by the executors and consumed by
	// the admitter's deadline shedding. 0 = no completed run yet.
	estNS atomic.Int64
}

// observe folds a completed run's duration into the moving estimate.
func (cp *cachedPlan) observe(d time.Duration) {
	old := cp.estNS.Load()
	if old == 0 {
		cp.estNS.Store(int64(d))
		return
	}
	cp.estNS.Store(old + (int64(d)-old)/4)
}

type planCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	byKey map[cacheKey]*list.Element

	// Hit/miss/eviction counts live under c.mu and are mirrored to the
	// obs counters inside the same critical section — Stats and a
	// /metrics scrape can disagree only by scrape timing, never by a
	// lost or double-counted event.
	hits      int64
	misses    int64
	evictions int64
	m         *serveMetrics
}

func newPlanCache(capacity int, m *serveMetrics) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{cap: capacity, order: list.New(), byKey: make(map[cacheKey]*list.Element), m: m}
}

// get returns the cached plan and refreshes its recency, counting the
// outcome. Only compile-path lookups call get — a hit rate diluted by
// executeRun's per-request plan fetches would measure protocol traffic,
// not cache effectiveness; those use lookup.
func (c *planCache) get(key cacheKey) (*cachedPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		c.m.cacheMisses.Inc()
		return nil, false
	}
	c.hits++
	c.m.cacheHits.Inc()
	c.order.MoveToFront(el)
	return el.Value.(*cachedPlan), true
}

// lookup is get without hit/miss accounting (run-path plan fetches).
func (c *planCache) lookup(key cacheKey) (*cachedPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cachedPlan), true
}

// add inserts a plan (replacing any racing duplicate) and returns the
// entries evicted to respect the capacity bound, so the caller can
// release their registry references outside the cache lock.
func (c *planCache) add(cp *cachedPlan) (evicted []*cachedPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[cp.key]; ok {
		// Two connections compiled the same circuit concurrently; keep
		// the incumbent and retire the newcomer.
		c.order.MoveToFront(el)
		return []*cachedPlan{cp}
	}
	c.byKey[cp.key] = c.order.PushFront(cp)
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		old := oldest.Value.(*cachedPlan)
		delete(c.byKey, old.key)
		c.evictions++
		c.m.cacheEvictions.Inc()
		evicted = append(evicted, old)
	}
	return evicted
}

// removeEntry drops one specific cached plan (pointer identity, so a
// fresh entry that reused the key after a re-registration is left
// alone) and reports whether it was present.
func (c *planCache) removeEntry(cp *cachedPlan) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[cp.key]
	if !ok || el.Value.(*cachedPlan) != cp {
		return false
	}
	c.order.Remove(el)
	delete(c.byKey, cp.key)
	c.evictions++
	c.m.cacheEvictions.Inc()
	return true
}

// purgeTenant drops every plan of a tenant (on eviction) and returns
// them for reference release.
func (c *planCache) purgeTenant(tenant string) (purged []*cachedPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		cp := el.Value.(*cachedPlan)
		if cp.key.tenant == tenant {
			c.order.Remove(el)
			delete(c.byKey, cp.key)
			c.evictions++
			c.m.cacheEvictions.Inc()
			purged = append(purged, cp)
		}
		el = next
	}
	return purged
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// stats snapshots the cache counters for Stats.
func (c *planCache) stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
