package serve_test

// Black-box observability tests: a real tenant flows through the wire
// protocol and the obs registry must tell the story — per-tenant
// admission counters, plan-cache hit/miss, run-latency histograms and
// per-step-kind tracing — consistently with Stats (satellite: the two
// views share one mutex discipline, so their counts must be equal, not
// merely close).

import (
	"bytes"
	"net"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"heax"
	"heax/obs"
	"heax/serve"
)

// startServerWithRegistry is startServer with a caller-visible server
// handle and obs registry.
func startServerWithRegistry(t testing.TB, params *heax.Params, opts ...serve.Option) (*serve.Server, string) {
	t.Helper()
	srv, err := serve.NewServer(params, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// scrape renders the registry and returns the exposition text.
func scrape(t testing.TB, reg *obs.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// sampleValue extracts the value of the first sample line matching the
// given prefix (family name, optionally with a label selector).
func sampleValue(t testing.TB, exposition, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, prefix) {
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("unparseable sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no sample with prefix %q in exposition:\n%s", prefix, exposition)
	return 0
}

func TestServeMetricsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr := startServerWithRegistry(t, testParams(t), serve.WithMetricsRegistry(reg))
	cl, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	kit := newTenantKit(t, cl.Params(), 97)
	if err := cl.Register("demo", kit.evk); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Compile("demo", kit.matvecCircuit())
	if err != nil {
		t.Fatal(err)
	}
	const nBatches = 3
	in, _ := kit.batches(t, 7, nBatches)
	if _, err := cl.Run("demo", info.ID, in); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Compile("demo", kit.matvecCircuit()); err != nil { // cache hit
		t.Fatal(err)
	}

	exp := scrape(t, reg)
	st := srv.Stats()

	// The exposition carries the acceptance-criteria families with the
	// tenant's labels.
	for _, want := range []struct {
		prefix string
		value  float64
	}{
		{`heax_serve_runs_queued_total{tenant="demo"}`, nBatches},
		{`heax_serve_runs_completed_total{tenant="demo"}`, nBatches},
		{`heax_serve_run_seconds_count{tenant="demo"`, nBatches},
		{`heax_serve_plan_cache_misses_total`, 1},
		{`heax_serve_plan_cache_hits_total`, 1},
		{`heax_serve_tenants`, 1},
	} {
		if got := sampleValue(t, exp, want.prefix); got != want.value {
			t.Errorf("%s = %v, want %v", want.prefix, got, want.value)
		}
	}
	if got := sampleValue(t, exp, `heax_serve_key_bytes`); got <= 0 {
		t.Errorf("heax_serve_key_bytes = %v, want > 0", got)
	}
	// The per-plan label is the 16-hex-char digest prefix.
	if ok, _ := regexp.MatchString(`heax_serve_run_seconds_count\{tenant="demo",plan="[0-9a-f]{16}"\}`, exp); !ok {
		t.Errorf("run_seconds sample lacks the hex plan label:\n%s", exp)
	}
	// Step tracing is on by default: the matvec plan executed real
	// MulPlain steps whose kernels must have been timed.
	if got := sampleValue(t, exp, `heax_plan_step_seconds_count{kind="MulPlain"}`); got == 0 {
		t.Error("step tracing on by default, but MulPlain observed no steps")
	}

	// Stats and obs agree exactly — one mutex discipline.
	if st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Errorf("Stats cache hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if st.CompletedRuns != nBatches {
		t.Errorf("Stats.CompletedRuns = %d, want %d", st.CompletedRuns, nBatches)
	}
	if st.KeyBytes != int64(sampleValue(t, exp, `heax_serve_key_bytes`)) {
		t.Errorf("Stats.KeyBytes = %d diverges from the exposition", st.KeyBytes)
	}
	if st.Draining {
		t.Error("Stats.Draining true on a live server")
	}

	// Eviction bounds cardinality: unregistering drops the tenant's
	// per-tenant children and its plan's run-latency series.
	if err := cl.Unregister("demo"); err != nil {
		t.Fatal(err)
	}
	exp = scrape(t, reg)
	if strings.Contains(exp, `tenant="demo"`) {
		t.Errorf("evicted tenant still exposed:\n%s", exp)
	}
	if got := sampleValue(t, exp, `heax_serve_tenants`); got != 0 {
		t.Errorf("heax_serve_tenants = %v after eviction, want 0", got)
	}
	if got := srv.Stats().CacheEvictions; got != 1 {
		t.Errorf("Stats.CacheEvictions = %d after tenant eviction, want 1", got)
	}
}

// TestServeMetricsTracingDisabled: WithStepTracing(false) leaves every
// step histogram empty — the seam is really off, not merely unsampled.
func TestServeMetricsTracingDisabled(t *testing.T) {
	reg := obs.NewRegistry()
	_, addr := startServerWithRegistry(t, testParams(t),
		serve.WithMetricsRegistry(reg), serve.WithStepTracing(false))
	cl, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	kit := newTenantKit(t, cl.Params(), 98)
	if err := cl.Register("quiet", kit.evk); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Compile("quiet", kit.matvecCircuit())
	if err != nil {
		t.Fatal(err)
	}
	in, _ := kit.batches(t, 8, 2)
	if _, err := cl.Run("quiet", info.ID, in); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(scrape(t, reg), "\n") {
		if strings.HasPrefix(line, "heax_plan_step_seconds_count") && !strings.HasSuffix(line, " 0") {
			t.Errorf("tracing disabled but steps were observed: %s", line)
		}
	}
}

// TestServeMetricsShedCounter: an overloaded tenant's rejections land
// on the per-reason shed counter and in Stats.ShedRuns alike.
func TestServeMetricsShedCounter(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr := startServerWithRegistry(t, testParams(t),
		serve.WithMetricsRegistry(reg),
		serve.WithDefaultTenantPolicy(serve.TenantPolicy{MaxQueued: 1}))
	cl, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	kit := newTenantKit(t, cl.Params(), 99)
	if err := cl.Register("burst", kit.evk); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Compile("burst", kit.matvecCircuit())
	if err != nil {
		t.Fatal(err)
	}
	// 2 batches > MaxQueued 1: all-or-nothing admission sheds the whole
	// request with ErrOverloaded.
	in, _ := kit.batches(t, 9, 2)
	if _, err := cl.Run("burst", info.ID, in); err == nil {
		t.Fatal("expected an overload rejection")
	}
	exp := scrape(t, reg)
	if got := sampleValue(t, exp, `heax_serve_runs_shed_total{tenant="burst",reason="overloaded"}`); got != 1 {
		t.Errorf("shed counter = %v, want 1", got)
	}
	if got := srv.Stats().ShedRuns; got != 1 {
		t.Errorf("Stats.ShedRuns = %d, want 1", got)
	}
}
