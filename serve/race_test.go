package serve

// Targeted concurrency tests (run under -race in CI) for two seams
// the chaos harness only grazes:
//
//   - dedup.go: retries joining an in-flight execution while the
//     completed-entry LRU is churning underneath them — a pinned
//     in-flight entry must never be evicted out from under a joiner,
//     and an error completion must hand exactly one re-claimant
//     ownership;
//   - admission.go: a tenant policy updated at runtime while the
//     tenant's backlog is draining — the already-queued jobs drain
//     under their original charges, new submissions see the new
//     policy immediately, and none of the accounting tears.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"heax/obs"
)

// TestDedupInFlightJoinRacesEviction: joiners pile onto one in-flight
// request id while churn goroutines complete enough other entries to
// cycle the 2-entry LRU many times over. The pinned in-flight entry
// must survive every eviction sweep, and when the owner completes,
// every joiner must observe the owner's exact response bytes.
func TestDedupInFlightJoinRacesEviction(t *testing.T) {
	d := newDedupCache(2)
	hot := dedupKey{tenant: "t", id: requestID{1}}
	e, owner := d.claim(hot)
	if !owner {
		t.Fatal("first claim must own the entry")
	}

	const joiners, churners, churnPerG = 8, 4, 200
	want := []byte("the one true response")
	var wg, claimed sync.WaitGroup
	claimed.Add(joiners)
	for j := 0; j < joiners; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			je, jOwner := d.claim(hot)
			claimed.Done()
			if jOwner {
				t.Error("a joiner stole ownership of an in-flight entry")
				return
			}
			<-je.done
			if je.err != nil || string(je.resp) != string(want) {
				t.Errorf("joiner observed resp=%q err=%v, want the owner's response", je.resp, je.err)
			}
		}()
	}
	// Churn: complete many distinct entries so the LRU evicts
	// constantly, and purge a foreign tenant for good measure.
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < churnPerG; i++ {
				key := dedupKey{tenant: "churn", id: requestID{2, byte(c), byte(i), byte(i >> 8)}}
				ce, cOwner := d.claim(key)
				if cOwner {
					d.complete(ce, []byte{byte(i)}, nil)
				}
				if i%16 == 0 {
					d.purgeTenant("other")
					d.len()
				}
			}
		}(c)
	}
	// Complete only after every joiner has joined the pinned entry (a
	// completed entry enters the LRU and may be evicted by the churn; a
	// claim after that would rightfully own a fresh execution).
	claimed.Wait()
	d.complete(e, want, nil)
	wg.Wait()
	if got := d.len(); got > 2 {
		t.Fatalf("dedup cache holds %d entries, capacity 2 — eviction lost to the churn", got)
	}

	// Error completions are not cached: after the owner of a fresh id
	// fails, exactly one concurrent re-claimant must win ownership.
	cold := dedupKey{tenant: "t", id: requestID{3}}
	ce, _ := d.claim(cold)
	d.complete(ce, nil, errors.New("transient"))
	var owners int
	var mu sync.Mutex
	for j := 0; j < joiners; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			re, rOwner := d.claim(cold)
			if rOwner {
				mu.Lock()
				owners++
				mu.Unlock()
				d.complete(re, []byte("second try"), nil)
			} else {
				<-re.done
			}
		}()
	}
	wg.Wait()
	if owners != 1 {
		t.Fatalf("%d goroutines claimed ownership after an error completion, want exactly 1", owners)
	}
}

// TestAdmitterPolicyUpdateMidBacklog: a backlog queued under a
// permissive policy keeps draining while setPolicy installs a tight
// byte budget and a new weight; submissions racing the update are
// either admitted (and charged) or shed typed, new submissions over
// the budget shed with ErrResourceExhausted, and once the backlog
// drains the books are exactly zero.
func TestAdmitterPolicyUpdateMidBacklog(t *testing.T) {
	const jobBytes, backlog = 100, 64
	adm := newAdmitter(2, TenantPolicy{MaxQueued: 1 << 10}, nil, newServeMetrics(obs.NewRegistry()))
	mk := func(n int) []*runJob {
		jobs := make([]*runJob, n)
		for i := range jobs {
			jobs[i] = &runJob{ctx: context.Background(), bytes: jobBytes, wg: &sync.WaitGroup{}}
		}
		return jobs
	}
	if err := adm.submit("t", mk(backlog), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if got := adm.liveBytesFor("t"); got != jobBytes*backlog {
		t.Fatalf("liveBytes = %d after submit, want %d", got, jobBytes*backlog)
	}

	// Tighten the policy while the backlog drains, from a racing
	// goroutine; the submitter keeps probing and must only ever see
	// clean admission or a typed shed.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < backlog; i++ {
			if i == backlog/4 {
				adm.setPolicy("t", TenantPolicy{Weight: 4, MaxBytes: jobBytes * 4})
			}
			err := adm.submit("t", mk(1), 0, 0, 0)
			if err != nil && !errors.Is(err, ErrResourceExhausted) {
				t.Errorf("racing submit: want nil or ErrResourceExhausted, got %v", err)
				return
			}
			if err == nil {
				adm.liveBytesFor("t") // exercise the read path under race
			}
		}
	}()
	drained := 0
	for {
		job, tq, ok := adm.next()
		if !ok {
			t.Fatal("admitter closed unexpectedly")
		}
		adm.done(tq, job.bytes)
		drained++
		// Stop once the queue is visibly empty and the submitter exited.
		adm.mu.Lock()
		empty := adm.queuedTotal == 0
		adm.mu.Unlock()
		if empty && drained >= backlog {
			break
		}
	}
	wg.Wait()
	// Drain whatever the racing submitter got admitted after our break.
	for {
		adm.mu.Lock()
		left := adm.queuedTotal
		adm.mu.Unlock()
		if left == 0 {
			break
		}
		job, tq, _ := adm.next()
		adm.done(tq, job.bytes)
	}

	if got := adm.liveBytesFor("t"); got != 0 {
		t.Fatalf("liveBytes = %d after full drain, want 0", got)
	}
	if pol := adm.policyFor("t"); pol.Weight != 4 || pol.MaxBytes != jobBytes*4 {
		t.Fatalf("policy after update = %+v, want Weight 4, MaxBytes %d", pol, jobBytes*4)
	}
	// The tight budget now rejects a submission that would exceed it...
	if err := adm.submit("t", mk(5), 0, 0, 0); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("5 jobs × %d bytes against a %d-byte budget must shed, got %v", jobBytes, jobBytes*4, err)
	}
	// ...admits one that fits, and charges key bytes against the same pot.
	if err := adm.submit("t", mk(4), 0, 0, 0); err != nil {
		t.Fatalf("4 jobs exactly at budget must admit, got %v", err)
	}
	for i := 0; i < 4; i++ {
		job, tq, _ := adm.next()
		adm.done(tq, job.bytes)
	}
	if err := adm.submit("t", mk(4), 1, 0, 0); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("key bytes must count against the budget, got %v", err)
	}
}
