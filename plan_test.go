package heax_test

// Black-box tests of the Circuit → Compile → Plan pipeline: value
// correctness against cleartext, compile-time structure (CSE, pruning,
// hoisting), the compile-time sentinels, and run-time input validation.

import (
	"errors"
	"math"
	"strings"
	"testing"

	"heax"
)

func encryptVals(t testing.TB, k *apiKit, vals []float64) *heax.Ciphertext {
	t.Helper()
	return k.encrypt(t, vals)
}

// TestPlanSquarePlusOne: y = x² + 1 with zero manual maintenance.
func TestPlanSquarePlusOne(t *testing.T) {
	k := newAPIKit(t)
	c := heax.NewCircuit()
	x := c.Input("x")
	c.Output("y", c.AddConst(c.MulRelin(x, x), 1))
	plan, err := c.Compile(k.params, k.evk)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.5, -1.25, 2.0}
	out, err := plan.Run(map[string]*heax.Ciphertext{"x": encryptVals(t, k, in)})
	if err != nil {
		t.Fatal(err)
	}
	got := k.decodeReal(t, out["y"], len(in))
	for i, v := range in {
		want := v*v + 1
		if math.Abs(got[i]-want) > 1e-3 {
			t.Fatalf("slot %d: got %g, want %g", i, got[i], want)
		}
	}
	if lv, _ := plan.OutputLevel("y"); lv != k.params.MaxLevel() {
		t.Fatalf("x²+1 should stay at the top level (unrescaled product), got %d", lv)
	}
}

// TestPlanDepthChain drives a chain of squarings through every level of
// Set-B and checks both the values and the inferred levels.
func TestPlanDepthChain(t *testing.T) {
	k := newAPIKit(t)
	c := heax.NewCircuit()
	x := c.Input("x")
	// ((x²)²)² consumes MaxLevel rescales when each square feeds the next.
	v := x
	for i := 0; i < k.params.MaxLevel(); i++ {
		v = c.MulRelin(v, v)
	}
	c.Output("y", v)
	plan, err := c.Compile(k.params, k.evk)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{1.1, -0.9}
	out, err := plan.Run(map[string]*heax.Ciphertext{"x": encryptVals(t, k, in)})
	if err != nil {
		t.Fatal(err)
	}
	got := k.decodeReal(t, out["y"], len(in))
	for i, val := range in {
		want := val
		for j := 0; j < k.params.MaxLevel(); j++ {
			want *= want
		}
		if math.Abs(got[i]-want) > 1e-2 {
			t.Fatalf("slot %d: got %g, want %g", i, got[i], want)
		}
	}
	// MaxLevel+1 squarings still fit — the final product may stay
	// unrescaled at level 0 — but one more has nowhere to go.
	c2 := heax.NewCircuit()
	x2 := c2.Input("x")
	v2 := x2
	for i := 0; i <= k.params.MaxLevel()+1; i++ {
		v2 = c2.MulRelin(v2, v2)
	}
	c2.Output("y", v2)
	if _, err := c2.Compile(k.params, k.evk); !errors.Is(err, heax.ErrLevelMismatch) {
		t.Fatalf("over-deep circuit: got %v, want ErrLevelMismatch", err)
	}
}

// TestPlanMixedLevelsAdd reconciles operands that live at different
// levels and tiers — the case that forces compiler-inserted lifts.
func TestPlanMixedLevelsAdd(t *testing.T) {
	k := newAPIKit(t)
	c := heax.NewCircuit()
	x := c.Input("x")
	cube := c.MulRelin(c.MulRelin(x, x), x) // two levels deep
	lin := c.MulConst(x, 0.5)               // shallow product
	c.Output("y", c.AddConst(c.Add(cube, lin), 0.25))
	plan, err := c.Compile(k.params, k.evk)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.75, -0.5, 1.25}
	out, err := plan.Run(map[string]*heax.Ciphertext{"x": encryptVals(t, k, in)})
	if err != nil {
		t.Fatal(err)
	}
	got := k.decodeReal(t, out["y"], len(in))
	for i, v := range in {
		want := v*v*v + 0.5*v + 0.25
		if math.Abs(got[i]-want) > 1e-3 {
			t.Fatalf("slot %d: got %g, want %g", i, got[i], want)
		}
	}
}

// TestPlanCSEAndPruning: duplicate subexpressions compile once, dead
// nodes compile to nothing.
func TestPlanCSEAndPruning(t *testing.T) {
	k := newAPIKit(t)

	build := func(dedup bool) *heax.Circuit {
		c := heax.NewCircuit()
		x := c.Input("x")
		y := c.Input("y")
		a := c.MulRelin(x, y)
		var b heax.Node
		if dedup {
			b = c.MulRelin(y, x) // commutative duplicate of a
		} else {
			b = a
		}
		c.Output("z", c.Add(a, b))
		return c
	}
	single, err := build(false).Compile(k.params, k.evk)
	if err != nil {
		t.Fatal(err)
	}
	dup, err := build(true).Compile(k.params, k.evk)
	if err != nil {
		t.Fatal(err)
	}
	if single.NumSteps() != dup.NumSteps() {
		t.Fatalf("CSE failed: %d steps with duplicate vs %d without\n%s", dup.NumSteps(), single.NumSteps(), dup.Describe())
	}

	// A dead branch (never reaching an output) adds no steps.
	c := heax.NewCircuit()
	x := c.Input("x")
	y := c.Input("y")
	a := c.MulRelin(x, y)
	c.InnerSum(c.MulRelin(a, a), 4) // dead
	c.Output("z", c.Add(a, a))
	pruned, err := c.Compile(k.params, k.evk)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NumSteps() != single.NumSteps() {
		t.Fatalf("pruning failed: %d steps, want %d\n%s", pruned.NumSteps(), single.NumSteps(), pruned.Describe())
	}
}

// TestPlanRotationHoisting: rotations sharing a source compile into one
// hoisted-decomposition batch; disabling hoisting keeps them separate.
func TestPlanRotationHoisting(t *testing.T) {
	k := newAPIKit(t)
	build := func() *heax.Circuit {
		c := heax.NewCircuit()
		x := c.Input("x")
		s := c.Add(c.Rotate(x, 1), c.Rotate(x, 2))
		c.Output("y", c.Add(s, x))
		return c
	}
	hoisted, err := build().Compile(k.params, k.evk)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := build().Compile(k.params, k.evk, heax.WithoutHoisting())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hoisted.Describe(), "RotateHoisted") {
		t.Fatalf("expected a hoisted batch:\n%s", hoisted.Describe())
	}
	if strings.Contains(plain.Describe(), "RotateHoisted") {
		t.Fatalf("WithoutHoisting must keep plain rotations:\n%s", plain.Describe())
	}
	if hoisted.NumSteps() != plain.NumSteps()-1 {
		t.Fatalf("hoisting should merge 2 rotations into 1 step: %d vs %d", hoisted.NumSteps(), plain.NumSteps())
	}

	in := map[string]*heax.Ciphertext{"x": encryptVals(t, k, []float64{1, 2, 3, 4})}
	outH, err := hoisted.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	outP, err := plain.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	gotH := k.decodeReal(t, outH["y"], 4)
	gotP := k.decodeReal(t, outP["y"], 4)
	for i := range gotH {
		if math.Abs(gotH[i]-gotP[i]) > 1e-4 {
			t.Fatalf("hoisted and plain plans diverge at slot %d: %g vs %g", i, gotH[i], gotP[i])
		}
	}
}

// TestPlanCompileSentinels: missing keys and impossible assignments are
// rejected at compile time with the PR-3 sentinels.
func TestPlanCompileSentinels(t *testing.T) {
	k := newAPIKit(t)

	c := heax.NewCircuit()
	x := c.Input("x")
	c.Output("y", c.MulRelin(x, x))
	if _, err := c.Compile(k.params, nil); !errors.Is(err, heax.ErrKeyMissing) {
		t.Fatalf("MulRelin without relin key: got %v, want ErrKeyMissing", err)
	}

	c2 := heax.NewCircuit()
	x2 := c2.Input("x")
	c2.Output("y", c2.Rotate(x2, 999))
	if _, err := c2.Compile(k.params, k.evk); !errors.Is(err, heax.ErrKeyMissing) {
		t.Fatalf("Rotate with missing step key: got %v, want ErrKeyMissing", err)
	}

	c3 := heax.NewCircuit()
	x3 := c3.Input("x")
	c3.Output("y", c3.InnerSum(x3, 8)) // needs steps 4, 2, 1; kit has 1, 2
	if _, err := c3.Compile(k.params, k.evk); !errors.Is(err, heax.ErrKeyMissing) {
		t.Fatalf("InnerSum with missing span keys: got %v, want ErrKeyMissing", err)
	}

	// Builder misuse surfaces at Compile.
	c4 := heax.NewCircuit()
	other := heax.NewCircuit()
	c4.Output("y", c4.Add(c4.Input("x"), other.Input("z")))
	if _, err := c4.Compile(k.params, k.evk); err == nil {
		t.Fatal("cross-circuit node must fail to compile")
	}

	// No outputs.
	c5 := heax.NewCircuit()
	c5.Input("x")
	if _, err := c5.Compile(k.params, k.evk); err == nil {
		t.Fatal("output-less circuit must fail to compile")
	}
}

// TestPlanRunValidation: Run rejects missing and malformed inputs with
// the usual sentinels.
func TestPlanRunValidation(t *testing.T) {
	k := newAPIKit(t)
	c := heax.NewCircuit()
	x := c.Input("x")
	c.Output("y", c.MulConst(x, 2))
	plan, err := c.Compile(k.params, k.evk)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := plan.Run(map[string]*heax.Ciphertext{}); err == nil {
		t.Fatal("missing input must fail")
	}
	dropped, err := k.eval.DropLevel(encryptVals(t, k, []float64{1}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Run(map[string]*heax.Ciphertext{"x": dropped}); !errors.Is(err, heax.ErrLevelMismatch) {
		t.Fatalf("low-level input: got %v, want ErrLevelMismatch", err)
	}
	pt, err := k.enc.EncodeReal([]float64{1}, k.params.MaxLevel(), 2*k.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	odd, err := k.encryptor.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Run(map[string]*heax.Ciphertext{"x": odd}); !errors.Is(err, heax.ErrScaleMismatch) {
		t.Fatalf("off-scale input: got %v, want ErrScaleMismatch", err)
	}
}

// TestPlanRunBatch streams several input sets and pins every batch to
// its single-run result.
func TestPlanRunBatch(t *testing.T) {
	k := newAPIKit(t)
	c := heax.NewCircuit()
	x := c.Input("x")
	y := c.Input("y")
	c.Output("z", c.AddConst(c.MulRelin(x, y), -0.5))
	plan, err := c.Compile(k.params, k.evk, heax.WithBatchWindow(3))
	if err != nil {
		t.Fatal(err)
	}

	const batches = 6
	ins := make([]map[string]*heax.Ciphertext, batches)
	for i := range ins {
		ins[i] = map[string]*heax.Ciphertext{
			"x": encryptVals(t, k, []float64{float64(i), 1}),
			"y": encryptVals(t, k, []float64{2, float64(-i)}),
		}
	}
	outs, err := plan.RunBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		single, err := plan.Run(ins[i])
		if err != nil {
			t.Fatal(err)
		}
		if !ctEqual(single["z"], out["z"]) {
			t.Fatalf("batch %d diverged from its single run", i)
		}
		got := k.decodeReal(t, out["z"], 2)
		want := []float64{float64(i)*2 - 0.5, float64(-i) - 0.5}
		for s := range want {
			if math.Abs(got[s]-want[s]) > 1e-3 {
				t.Fatalf("batch %d slot %d: got %g, want %g", i, s, got[s], want[s])
			}
		}
	}
}

// TestPlanOutputAliases: outputs naming an input or the same node twice
// still come back as distinct, caller-owned ciphertexts.
func TestPlanOutputAliases(t *testing.T) {
	k := newAPIKit(t)
	c := heax.NewCircuit()
	x := c.Input("x")
	d := c.MulConst(x, 3)
	c.Output("thrice", d)
	c.Output("same", d)
	c.Output("echo", x)
	plan, err := c.Compile(k.params, k.evk)
	if err != nil {
		t.Fatal(err)
	}
	ct := encryptVals(t, k, []float64{1.5})
	out, err := plan.Run(map[string]*heax.Ciphertext{"x": ct})
	if err != nil {
		t.Fatal(err)
	}
	if out["thrice"] == out["same"] || out["echo"] == ct {
		t.Fatal("outputs must be distinct, caller-owned ciphertexts")
	}
	if !ctEqual(out["thrice"], out["same"]) {
		t.Fatal("aliased outputs must hold equal values")
	}
	if got := k.decodeReal(t, out["echo"], 1); math.Abs(got[0]-1.5) > 1e-4 {
		t.Fatalf("echo output: got %g, want 1.5", got[0])
	}
}
